#include "linalg/spectral.h"

#include <algorithm>
#include <cmath>

#include "linalg/jacobi_eigen.h"
#include "linalg/lanczos.h"
#include "linalg/transition.h"
#include "rw/rng.h"
#include "util/check.h"

namespace geer {
namespace {

double ClampLambda(double lambda2, double lambda_n, double floor_gap) {
  const double raw = std::max(std::abs(lambda2), std::abs(lambda_n));
  return std::clamp(raw, 0.0, 1.0 - floor_gap);
}

}  // namespace

template <WeightPolicy WP>
SpectralBounds ComputeSpectralBoundsT(const typename WP::GraphT& graph,
                                      const SpectralOptions& options) {
  GEER_CHECK_GE(graph.NumNodes(), 2u);
  NormalizedAdjacencyOperatorT<WP> op(graph);
  LanczosOptions lopt;
  lopt.max_iterations = options.max_iterations;
  lopt.tolerance = options.tolerance;
  lopt.seed = options.seed;
  auto apply = [&op](const Vector& x, Vector* y) { op.Apply(x, y); };
  LanczosResult res = LanczosExtremeEigenvalues(
      apply, op.Dim(), {op.TopEigenvector()}, lopt);

  SpectralBounds out;
  out.lambda2 = std::min(res.max_eigenvalue, 1.0);
  out.lambda_n = std::max(res.min_eigenvalue, -1.0);
  out.lambda = ClampLambda(out.lambda2, out.lambda_n, options.floor_gap);
  out.lanczos_iterations = res.iterations;
  return out;
}

template <WeightPolicy WP>
SpectralBounds ComputeSpectralBoundsWarmT(const typename WP::GraphT& graph,
                                          std::uint64_t epoch,
                                          SpectralWarmState* state,
                                          const SpectralOptions& options) {
  GEER_CHECK_GE(graph.NumNodes(), 2u);
  GEER_CHECK(state != nullptr);
  NormalizedAdjacencyOperatorT<WP> op(graph);
  LanczosOptions lopt;
  lopt.max_iterations = options.max_iterations;
  lopt.tolerance = options.tolerance;
  // Per-epoch seed: the cold FALLBACK of the warm path is reproducible
  // for (seed, epoch) yet distinct from the construction-time run, which
  // uses options.seed unmixed (a fresh estimator knows no epoch).
  lopt.seed = MixSeed(options.seed, epoch);
  lopt.want_ritz_vectors = true;
  std::vector<Vector> warm;
  if (state->valid && state->max_ritz.size() == op.Dim() &&
      state->min_ritz.size() == op.Dim()) {
    warm.push_back(state->max_ritz);
    warm.push_back(state->min_ritz);
    lopt.warm_start = &warm;
    lopt.stagnation_tolerance = options.warm_stagnation_tolerance;
  }
  auto apply = [&op](const Vector& x, Vector* y) { op.Apply(x, y); };
  LanczosResult res = LanczosExtremeEigenvalues(
      apply, op.Dim(), {op.TopEigenvector()}, lopt);

  state->epoch = epoch;
  state->max_ritz = std::move(res.max_ritz_vector);
  state->min_ritz = std::move(res.min_ritz_vector);
  state->valid = !state->max_ritz.empty() && !state->min_ritz.empty();

  SpectralBounds out;
  out.lambda2 = std::min(res.max_eigenvalue, 1.0);
  out.lambda_n = std::max(res.min_eigenvalue, -1.0);
  out.lambda = ClampLambda(out.lambda2, out.lambda_n, options.floor_gap);
  out.lanczos_iterations = res.iterations;
  return out;
}

template <WeightPolicy WP>
SpectralBounds ComputeSpectralBoundsDenseT(const typename WP::GraphT& graph) {
  const NodeId n = graph.NumNodes();
  GEER_CHECK_GE(n, 2u);
  GEER_CHECK_LE(n, 4096u) << "dense spectral oracle limited to small graphs";
  Matrix normalized(n, n, 0.0);
  const auto& offsets = graph.Offsets();
  const auto& adj = graph.NeighborArray();
  for (NodeId u = 0; u < n; ++u) {
    const double wu = WP::NodeWeight(graph, u);
    GEER_CHECK(wu > 0.0);
    for (std::uint64_t k = offsets[u]; k < offsets[u + 1]; ++k) {
      const NodeId v = adj[k];
      normalized(u, v) =
          WP::ArcWeight(graph, k) / std::sqrt(wu * WP::NodeWeight(graph, v));
    }
  }
  EigenDecomposition eig = JacobiEigenSolve(normalized);
  SpectralBounds out;
  const std::size_t count = eig.eigenvalues.size();
  out.lambda_n = eig.eigenvalues.front();
  out.lambda2 = count >= 2 ? eig.eigenvalues[count - 2] : out.lambda_n;
  out.lambda = ClampLambda(out.lambda2, out.lambda_n, 1e-12);
  return out;
}

template SpectralBounds ComputeSpectralBoundsT<UnitWeight>(
    const Graph&, const SpectralOptions&);
template SpectralBounds ComputeSpectralBoundsT<EdgeWeight>(
    const WeightedGraph&, const SpectralOptions&);
template SpectralBounds ComputeSpectralBoundsWarmT<UnitWeight>(
    const Graph&, std::uint64_t, SpectralWarmState*, const SpectralOptions&);
template SpectralBounds ComputeSpectralBoundsWarmT<EdgeWeight>(
    const WeightedGraph&, std::uint64_t, SpectralWarmState*,
    const SpectralOptions&);
template SpectralBounds ComputeSpectralBoundsDenseT<UnitWeight>(const Graph&);
template SpectralBounds ComputeSpectralBoundsDenseT<EdgeWeight>(
    const WeightedGraph&);

}  // namespace geer
