// The asynchronous serving front end: QueryService accepts single PER
// queries from any number of client threads through a non-blocking
// Submit() -> std::future<QueryResult> API and answers them through the
// batch engine (core/batch_engine.h).
//
// A deadline-aware micro-batching scheduler sits between the two: queued
// queries coalesce until the batch fills (max_batch_size), the oldest
// query has lingered long enough (max_linger_seconds), or the earliest
// per-query deadline is about to expire — then the whole micro-batch is
// planned by the estimator's BatchPlan (same-source queries land in the
// same group, sharing walk populations / SpMV iterates) and dispatched
// over the work-stealing pool. The service's worker estimators persist
// across micro-batches with their session caches enabled
// (ErEstimator::EnableSessionCache), so EXACT/CG/RP preprocessing and
// SMM/GEER per-source iterate caches amortize across the whole session,
// not one batch.
//
// Determinism contract: every answer value equals the serial
// `estimator.Estimate(s, t)` for the construction seed, bit for bit —
// regardless of worker count, micro-batch boundaries, arrival order, or
// scheduler interleaving (estimators derive each query's random stream
// from (seed, s, t); serve_determinism_test enforces this under TSan).
// What IS timing-dependent: which queries get coalesced together, the
// cost instrumentation, and which deadline-carrying queries expire.

#ifndef GEER_SERVE_QUERY_SERVICE_H_
#define GEER_SERVE_QUERY_SERVICE_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "core/estimator.h"
#include "obs/metrics.h"
#include "serve/service_api.h"

namespace geer {

/// Deadline classes for miss accounting: expiry counts are broken down
/// by how tight the lapsed budget was, which is what an admission
/// controller needs (shedding load helps tight-deadline traffic first).
/// Classified at Submit() from the requested budget.
enum class DeadlineClass : std::uint8_t {
  kNone = 0,    ///< no deadline requested
  kTight = 1,   ///< budget < 10 ms
  kNormal = 2,  ///< 10 ms ≤ budget < 100 ms
  kLoose = 3,   ///< budget ≥ 100 ms
};
inline constexpr std::size_t kNumDeadlineClasses = 4;

DeadlineClass ClassifyDeadline(double deadline_seconds);
const char* DeadlineClassName(DeadlineClass c);

/// Scheduler and dispatch knobs for one QueryService.
struct ServeOptions {
  /// Flush as soon as this many queries are queued. 1 = no coalescing
  /// (the batch-size-1 baseline the serve bench compares against).
  std::size_t max_batch_size = 64;
  /// Flush once the oldest queued query has waited this long — the
  /// latency price of coalescing. ≤ 0 flushes as soon as the scheduler
  /// is free (load-adaptive batching: whatever queued during the
  /// previous dispatch rides together).
  double max_linger_seconds = 0.002;
  /// Scheduler worker threads for each dispatched micro-batch (engine
  /// workers; 0 = hardware concurrency). Worker 0 is the scheduler
  /// thread itself. Values are bit-identical at any count.
  int threads = 1;
  /// Backpressure: submissions beyond this many queued queries are
  /// rejected immediately (status kRejected) instead of queued.
  std::size_t max_queue = 1 << 16;
  /// Per-worker session-cache budget in bytes passed to
  /// ErEstimator::EnableSessionCache (0 disables session caches — every
  /// micro-batch then rebuilds its shared precomputation).
  std::size_t session_cache_bytes = 64ull << 20;
  /// Landmark nodes warmed and pinned in every worker's session cache at
  /// construction (ErEstimator::WarmLandmarks — enables the session
  /// cache even when session_cache_bytes is 0). Pick with
  /// SelectLandmarks (src/centrality/landmarks.h). Values are unchanged;
  /// queries touching a landmark skip its precomputation.
  std::vector<NodeId> landmarks;
};

// ServeStatus and QueryResult moved to serve/service_api.h — the
// transport-neutral surface shared with the wire codec and the CLI.
// Their numeric ServeStatus values are frozen there (wire stability).

/// Aggregate counters since construction (monotone; snapshot via
/// Metrics()).
struct ServeMetrics {
  std::uint64_t submitted = 0;
  std::uint64_t answered = 0;
  std::uint64_t unsupported = 0;
  std::uint64_t expired = 0;
  std::uint64_t rejected = 0;
  std::uint64_t cancelled = 0;
  std::uint64_t failed = 0;     ///< resolved kFailed (dispatch threw)
  std::uint64_t batches = 0;    ///< micro-batches dispatched
  std::uint64_t coalesced = 0;  ///< queries dispatched in those batches
  std::uint64_t max_batch = 0;  ///< largest micro-batch seen
  // Which trigger flushed each micro-batch.
  std::uint64_t flush_size = 0;      ///< batch filled to max_batch_size
  std::uint64_t flush_linger = 0;    ///< oldest query hit max_linger
  std::uint64_t flush_deadline = 0;  ///< earliest deadline was imminent
  std::uint64_t flush_drain = 0;     ///< explicit Flush()/Shutdown drain
  std::uint64_t flush_swap = 0;      ///< pre-swap barrier drain
  std::uint64_t epoch_swaps = 0;     ///< ApplyUpdates swaps applied
  /// RebindGraph calls across all workers that reused previous-epoch
  /// state instead of rebuilding cold (warm-started λ, incrementally
  /// updated factor/solver, selective visit-set session retention) —
  /// summed from ErEstimator::IncrementalRebinds after every swap. The
  /// incremental-epochs tests assert this is > 0 when
  /// GraphEpoch::incremental workloads actually take the fast path.
  std::uint64_t incremental_rebinds = 0;
  /// Session/landmark cache counters summed over all workers, refreshed
  /// after every dispatched micro-batch (ErEstimator::SessionCacheStats)
  /// and from Flush() when the workers are idle — so one-shot CLI runs
  /// that end on a Flush() report final cache state.
  /// hits/misses/evictions are monotone — LruByteCache keeps them across
  /// epoch flushes; bytes/entries/pinned are current-resident gauges.
  CacheStats session_cache;
  /// kExpired results broken down by DeadlineClass (indexed by its
  /// numeric value; sums to `expired`).
  std::array<std::uint64_t, kNumDeadlineClasses> expired_by_class{};
  /// Served latency (submit → answer) of every resolved query, from the
  /// obs registry's log2-bucketed histogram — quantiles via
  /// obs::HistogramQuantile. Shares the process-wide series, so in a
  /// multi-service process it aggregates across services of the same
  /// estimator method.
  obs::HistogramData served_latency;

  /// Mean coalesced micro-batch size.
  double AvgBatch() const {
    return batches > 0
               ? static_cast<double>(coalesced) / static_cast<double>(batches)
               : 0.0;
  }
};

/// The serving front end over one estimator. The service borrows the
/// estimator exclusively for its lifetime (it becomes dispatch worker 0
/// and may carry a session cache); don't query it concurrently.
///
/// QueryService is the in-process QuerySubmitter (serve/service_api.h):
/// workload drivers written against the submitter interface run
/// unchanged over this service or a networked net::NetSubmitter.
class QueryService : public QuerySubmitter {
 public:
  explicit QueryService(ErEstimator& estimator,
                        const ServeOptions& options = {});
  ~QueryService();  // Shutdown(): drains, then joins the scheduler

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Enqueues one query; the returned future resolves when it is
  /// answered, expired, or rejected. Never blocks on query work (only on
  /// the queue mutex). `deadline_seconds` ≤ 0 = no deadline; a deadline
  /// drops the query (kExpired) if it is still QUEUED when the budget
  /// lapses, and pulls the flush forward so it usually is not — work
  /// already dispatched runs to completion and may answer late.
  /// Thread-safe: any number of client threads may submit concurrently.
  std::future<QueryResult> Submit(QueryPair query,
                                  double deadline_seconds = 0.0) override;

  /// Asks the scheduler to dispatch whatever is queued without waiting
  /// for a flush trigger. Non-blocking.
  void Flush() override;

  /// Applied to every worker estimator during an epoch swap; returns
  /// false if the estimator cannot rebind (the swap is then abandoned
  /// with nothing mutated). Built by dyn/dyn_serve.h from a committed
  /// DynamicGraph snapshot.
  using EpochRebindFn = std::function<bool(ErEstimator&)>;

  /// Schedules an atomic epoch swap — the dynamic-graph entry point.
  /// The swap is applied by the scheduler BETWEEN micro-batches, never
  /// concurrently with dispatch, with linearized barrier semantics:
  /// every query submitted before this call is dispatched on the old
  /// epoch first (their linger is cut short, as by Flush()); every query
  /// submitted after it is answered on the new epoch. In-flight work is
  /// never disturbed, so readers always see one consistent snapshot.
  ///
  /// `epoch` stamps subsequent QueryResults and keys the shared-
  /// preprocessing rebuilds (must be monotone); `keep_alive` pins the
  /// snapshot the rebinder installs for as long as the service reads it
  /// (released on the NEXT swap or at destruction). The future resolves
  /// true once every worker rebound, false if the swap was abandoned
  /// (unsupported estimator, or shutdown before application). Multiple
  /// pending swaps apply in submission order. Thread-safe.
  std::future<bool> ApplyUpdates(std::uint64_t epoch, EpochRebindFn rebind,
                                 std::shared_ptr<const void> keep_alive =
                                     nullptr);

  /// Pure earliest-deadline-first selection (exposed for the dispatch-
  /// order unit test): indices of the `take` earliest-deadline entries —
  /// time_point::max() = no deadline, ties broken by index, i.e. by
  /// arrival — in dispatch order.
  static std::vector<std::size_t> EdfOrder(
      std::span<const std::chrono::steady_clock::time_point> deadlines,
      std::size_t take);

  /// Stops accepting new queries, answers everything already queued,
  /// then stops the scheduler. Idempotent; safe from any thread.
  void Shutdown();

  /// Shutdown without the drain: queued queries resolve kCancelled and
  /// the in-flight micro-batch is cut at its next query boundary via the
  /// engine's cancellation token.
  void ShutdownNow();

  /// Counter snapshot.
  ServeMetrics Metrics() const;

  /// Dispatch workers in use (1 + clones; ≤ options.threads when the
  /// estimator is not clonable).
  int workers() const override { return static_cast<int>(workers_.size()); }

 private:
  using Clock = std::chrono::steady_clock;

  struct Pending {
    QueryPair query;
    std::promise<QueryResult> promise;
    Clock::time_point submitted;
    Clock::time_point deadline;  // time_point::max() = none
    std::uint64_t seq = 0;       // submission order (for swap barriers)
    DeadlineClass dclass = DeadlineClass::kNone;  // for miss accounting
  };

  /// Metric ids registered once at construction (labeled with the
  /// estimator's method name); recording through them is wait-free.
  struct ObsIds {
    obs::Registry::MetricId submitted = 0;
    obs::Registry::MetricId answered = 0;
    obs::Registry::MetricId rejected = 0;
    obs::Registry::MetricId batches = 0;
    std::array<obs::Registry::MetricId, kNumDeadlineClasses> expired{};
    obs::Registry::MetricId served_latency_ns = 0;
    obs::Registry::MetricId queue_wait_ns = 0;
    obs::Registry::MetricId epoch_swap_ns = 0;
    std::string cache_bytes_gauge;  ///< gauge name (set by name, not id)
  };

  /// One scheduled ApplyUpdates call, applied between micro-batches once
  /// every query with seq < watermark has been dispatched.
  struct PendingSwap {
    std::uint64_t epoch = 0;
    EpochRebindFn rebind;
    std::shared_ptr<const void> keep_alive;
    std::uint64_t watermark = 0;
    std::promise<bool> done;
  };

  void SchedulerLoop();
  void DispatchBatch(std::vector<Pending> batch, std::uint64_t batch_id);
  /// Pops `take` of the first `limit` queued queries in EDF order
  /// (requires mu_ held) and refreshes earliest_deadline_.
  std::vector<Pending> PopBatchLocked(std::size_t take, std::size_t limit);
  void Fulfill(Pending& p, ServeStatus status, const QueryStats& stats,
               Clock::time_point dispatched, Clock::time_point done,
               std::uint32_t batch_size, std::uint64_t batch_id) const;

  ServeOptions options_;
  ErEstimator* primary_;
  std::vector<std::unique_ptr<ErEstimator>> session_clones_;
  std::vector<ErEstimator*> workers_;  // [primary_, clones…]

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Pending> queue_;
  std::deque<PendingSwap> swaps_;
  std::uint64_t next_seq_ = 0;        // submission counter
  std::uint64_t next_batch_id_ = 1;   // dispatched micro-batch counter
  /// Epoch currently served. Written only by the scheduler thread while
  /// applying a swap; read by the scheduler during dispatch.
  std::uint64_t current_epoch_ = 0;
  std::shared_ptr<const void> epoch_keep_alive_;
  /// Earliest deadline over queue_ (time_point::max() = none), maintained
  /// on push and recomputed once per batch pop — the scheduler wakes on
  /// every submission, so an O(queue) rescan per wakeup would be
  /// quadratic under load.
  std::chrono::steady_clock::time_point earliest_deadline_ =
      std::chrono::steady_clock::time_point::max();
  bool flush_requested_ = false;
  bool shutdown_ = false;
  /// True while the scheduler runs worker estimators outside mu_
  /// (dispatch or epoch rebind). Flush() reads cache stats from the
  /// estimators only when this is false — they are not thread-safe.
  bool workers_busy_ = false;
  ServeMetrics metrics_;
  ObsIds obs_;

  std::atomic<bool> cancel_{false};  // engine token for ShutdownNow()

  std::mutex lifecycle_mu_;  // serializes the scheduler join
  std::thread scheduler_;
};

}  // namespace geer

#endif  // GEER_SERVE_QUERY_SERVICE_H_
