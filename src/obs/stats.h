// Transport-neutral statistics snapshot: the value type the metrics
// registry (obs/metrics.h) produces, the kStatsReply wire message
// carries, the router merges across shards, and the Prometheus-style
// text dump renders. Lives below src/net/ on purpose — the obs
// subsystem has no network dependency, and the codec depends on it,
// not the other way around.
//
// Histograms use a FIXED log2 bucket scheme (bucket i holds nanosecond
// values whose bit width is i, i.e. [2^(i-1), 2^i); bucket 0 holds 0).
// Because every producer uses the same scheme, snapshots merge by plain
// bucket-wise addition, and quantiles survive the merge — the property
// the cross-shard stats scrape depends on. kHistogramSchemeId stamps
// the scheme on the wire so a future re-bucketing is a detectable
// protocol change, not silent corruption.

#ifndef GEER_OBS_STATS_H_
#define GEER_OBS_STATS_H_

#include <cstdint>
#include <map>
#include <span>
#include <string>
#include <vector>

namespace geer::obs {

/// Log2 bucket count: bucket 47 tops out at 2^47 ns ≈ 39 hours, beyond
/// any span this system times. Wire-stable together with the scheme id.
inline constexpr std::size_t kHistogramBuckets = 48;
/// Bucket-scheme version carried in kStatsReply; bump on any change to
/// the bucket boundaries above (receivers reject mismatches).
inline constexpr std::uint8_t kHistogramSchemeId = 1;

/// Bucket index for one nanosecond value under the scheme above.
std::size_t HistogramBucket(std::uint64_t ns);
/// Inclusive lower / exclusive upper bound of one bucket, in ns.
std::uint64_t HistogramBucketLower(std::size_t bucket);
std::uint64_t HistogramBucketUpper(std::size_t bucket);

/// One aggregated latency histogram.
struct HistogramData {
  std::vector<std::uint64_t> buckets;  ///< kHistogramBuckets counts
  std::uint64_t count = 0;             ///< total recorded values
  std::uint64_t sum_ns = 0;            ///< exact sum (mean = sum/count)

  HistogramData() : buckets(kHistogramBuckets, 0) {}
};

/// A full registry snapshot, keyed by metric name. Names carry their
/// Prometheus labels inline (`geer_serve_answered_total{method="GEER"}`),
/// so identically-labeled series from different shards merge by key.
/// std::map keeps iteration deterministic (golden tests, stable dumps).
struct StatsSnapshot {
  std::map<std::string, std::uint64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramData> histograms;
};

/// Bucket-wise sum of any number of snapshots: counters and histogram
/// buckets add; gauges add too (they are resident-bytes style quantities
/// where the cluster total is the useful aggregate).
StatsSnapshot MergeSnapshots(std::span<const StatsSnapshot> snapshots);

/// Quantile estimate in ns (q in [0, 1]) by cumulative bucket walk with
/// linear interpolation inside the containing bucket. 0 when empty.
double HistogramQuantile(const HistogramData& h, double q);

/// Prometheus-style exposition text: counters and gauges as
/// `name value`, histograms as `<family>_count`, `<family>_sum_ns` and
/// p50/p95/p99 `quantile` series (labels preserved). One trailing
/// newline; deterministic order.
std::string RenderPrometheusText(const StatsSnapshot& snapshot);

}  // namespace geer::obs

#endif  // GEER_OBS_STATS_H_
