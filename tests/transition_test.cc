#include "linalg/transition.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "rw/rng.h"
#include "test_util.h"

namespace geer {
namespace {

TEST(TransitionTest, DenseApplyIsRowStochasticTransposeAction) {
  // y = P x with x = 𝟙 gives 𝟙 (each row of P sums to 1).
  Graph g = testing::TriangleWithTail();
  TransitionOperator op(g);
  Vector x(g.NumNodes(), 1.0);
  Vector y;
  op.ApplyDense(x, &y);
  for (double v : y) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(TransitionTest, OneHotGivesColumnProbabilities) {
  // After one application of P to e_s: y(v) = P(v,s) = 1/d(v) if v~s.
  Graph g = testing::TriangleWithTail();
  TransitionOperator op(g);
  TransitionOperator::SparseVector x;
  x.InitOneHot(2, g);
  op.ApplyAuto(&x);
  // Node 2 has neighbors {0, 1, 3}; d(0)=2, d(1)=2, d(3)=2.
  EXPECT_NEAR(x.values[0], 0.5, 1e-12);
  EXPECT_NEAR(x.values[1], 0.5, 1e-12);
  EXPECT_NEAR(x.values[3], 0.5, 1e-12);
  EXPECT_NEAR(x.values[2], 0.0, 1e-12);
}

TEST(TransitionTest, SparseAndDenseAgree) {
  Graph g = gen::ErdosRenyi(60, 150, 3);
  TransitionOperator op(g);
  TransitionOperator::SparseVector sparse;
  sparse.InitOneHot(7, g);
  Vector dense(g.NumNodes(), 0.0);
  dense[7] = 1.0;
  Vector scratch;
  for (int iter = 0; iter < 6; ++iter) {
    op.ApplyAuto(&sparse);
    op.ApplyDense(dense, &scratch);
    dense.swap(scratch);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      ASSERT_NEAR(sparse.values[v], dense[v], 1e-12)
          << "iter " << iter << " node " << v;
    }
  }
}

TEST(TransitionTest, IteratedVectorIsWalkDistributionTransposed) {
  // s*(v) after i steps = p_i(v, s): each entry is the probability a walk
  // FROM v reaches s, so columns need not sum to one, but
  // Σ_v d(v)·s*(v) = d(s) by reversibility.
  Graph g = testing::DenseTestGraph(16);
  TransitionOperator op(g);
  const NodeId s = 3;
  TransitionOperator::SparseVector x;
  x.InitOneHot(s, g);
  for (int i = 0; i < 5; ++i) {
    op.ApplyAuto(&x);
    double weighted = 0.0;
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      weighted += static_cast<double>(g.Degree(v)) * x.values[v];
    }
    EXPECT_NEAR(weighted, static_cast<double>(g.Degree(s)), 1e-9);
  }
}

TEST(TransitionTest, SupportDegreeSumTracked) {
  // A path keeps the support below the dense-switch threshold, so the
  // sparse scatter path and its Eq. 17 cost bookkeeping stay exercised.
  Graph g = gen::Path(20);
  TransitionOperator op(g);
  TransitionOperator::SparseVector x;
  x.InitOneHot(10, g);  // interior node, degree 2
  EXPECT_EQ(x.support_degree_sum, 2u);
  op.ApplyAuto(&x);
  // Support is now {9, 11}, both interior: degree sum 4.
  EXPECT_FALSE(x.dense);
  EXPECT_EQ(x.support_degree_sum, 4u);
  op.ApplyAuto(&x);
  // Support {8, 10, 12}: degree sum 6.
  EXPECT_FALSE(x.dense);
  EXPECT_EQ(x.support_degree_sum, 6u);
}

TEST(TransitionTest, StarSaturatesToDenseImmediately) {
  // One hop from the hub reaches all leaves (> 25% of n), so the operator
  // flips to dense mode and charges the full arc count from then on.
  Graph g = gen::Star(6);
  TransitionOperator op(g);
  TransitionOperator::SparseVector x;
  x.InitOneHot(0, g);  // hub
  EXPECT_EQ(x.support_degree_sum, 5u);
  op.ApplyAuto(&x);
  op.ApplyAuto(&x);
  EXPECT_TRUE(x.dense);
  EXPECT_EQ(x.support_degree_sum, g.NumArcs());
}

TEST(TransitionTest, SwitchesToDenseOnSaturation) {
  Graph g = gen::Complete(20);
  TransitionOperator op(g);
  TransitionOperator::SparseVector x;
  x.InitOneHot(0, g);
  op.ApplyAuto(&x);  // support jumps to n−1 > 25% of n
  op.ApplyAuto(&x);
  EXPECT_TRUE(x.dense);
  EXPECT_EQ(x.support_degree_sum, g.NumArcs());
}

TEST(TransitionTest, StationaryVectorIsFixedPoint) {
  // π(v) = d(v)/2m satisfies P π = π... careful: our operator computes
  // y(u) = Σ_{v~u} x(v)/d(u); with x = π this gives y(u) = d(u)/2m / ...
  // Actually (Pπ)(u) = (1/d(u))Σ_{v~u} d(v)/2m which is NOT π in general.
  // The true invariant is x = 𝟙 (row-stochastic). For the reversed chain,
  // D^{-1}A fixes 𝟙; check a degree-weighted identity instead:
  // Σ_u d(u)(Px)(u) = Σ_v d(v)x(v).
  Graph g = gen::BarabasiAlbert(50, 3, 2);
  TransitionOperator op(g);
  Rng rng(4);
  Vector x(g.NumNodes());
  for (auto& v : x) v = rng.NextDouble();
  Vector y;
  op.ApplyDense(x, &y);
  double lhs = 0.0;
  double rhs = 0.0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    lhs += static_cast<double>(g.Degree(v)) * y[v];
    rhs += static_cast<double>(g.Degree(v)) * x[v];
  }
  EXPECT_NEAR(lhs, rhs, 1e-9);
}

TEST(NormalizedAdjacencyTest, TopEigenvectorIsFixed) {
  Graph g = gen::BarabasiAlbert(40, 2, 6);
  NormalizedAdjacencyOperator op(g);
  Vector y;
  op.Apply(op.TopEigenvector(), &y);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], op.TopEigenvector()[i], 1e-10);
  }
}

TEST(NormalizedAdjacencyTest, OperatorIsSymmetric) {
  Graph g = gen::ErdosRenyi(30, 80, 9);
  NormalizedAdjacencyOperator op(g);
  Rng rng(1);
  Vector x(g.NumNodes());
  Vector z(g.NumNodes());
  for (auto& v : x) v = rng.NextGaussian();
  for (auto& v : z) v = rng.NextGaussian();
  Vector nx;
  Vector nz;
  op.Apply(x, &nx);
  op.Apply(z, &nz);
  EXPECT_NEAR(Dot(z, nx), Dot(x, nz), 1e-9);
}

}  // namespace
}  // namespace geer
