// The wire-codec contract (net/frame.h + net/codec.h): every message
// round-trips bit-exactly; every decoder survives truncation at EVERY
// byte boundary, trailing garbage and random bytes without crashing;
// the FrameReader reassembles frames under arbitrary fragmentation
// (including 1-byte feeds), poisons itself permanently on a version
// mismatch or an impossible length prefix, and passes unknown frame
// types through for the dispatcher to reject (forward compatibility).
// Also pins the frozen numeric surface of protocol version 1: header
// sizes, FrameType values and the ServeStatus range check.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <random>
#include <string>
#include <vector>

#include "dyn/dynamic_graph.h"
#include "net/codec.h"
#include "net/frame.h"
#include "serve/service_api.h"

namespace geer::net {
namespace {

std::vector<std::uint8_t> Bytes(std::initializer_list<int> xs) {
  std::vector<std::uint8_t> out;
  for (int x : xs) out.push_back(static_cast<std::uint8_t>(x));
  return out;
}

/// Asserts the truncation-tolerance half of the codec contract: every
/// strict prefix of a valid encoding must decode to false, and one
/// trailing byte must too (strict-length decoders reject padding).
template <typename Msg, typename Decoder>
void ExpectRejectsTruncationAndPadding(const std::vector<std::uint8_t>& enc,
                                       Decoder decode) {
  for (std::size_t cut = 0; cut < enc.size(); ++cut) {
    Msg out;
    std::vector<std::uint8_t> prefix(enc.begin(),
                                     enc.begin() + static_cast<long>(cut));
    EXPECT_FALSE(decode(prefix, &out)) << "prefix of " << cut << " bytes";
  }
  std::vector<std::uint8_t> padded = enc;
  padded.push_back(0);
  Msg out;
  EXPECT_FALSE(decode(padded, &out)) << "trailing byte accepted";
}

// ---------------------------------------------------------------- frames

TEST(FrameTest, WireConstantsAreFrozen) {
  // Protocol version 1 numerics — a change here is a wire break and must
  // bump kServiceProtocolVersion, not edit this test.
  EXPECT_EQ(kServiceProtocolVersion, 1);
  EXPECT_EQ(kFrameHeaderBytes, 14u);
  EXPECT_EQ(kFrameLengthOverhead, 10u);
  EXPECT_EQ(static_cast<int>(FrameType::kHello), 1);
  EXPECT_EQ(static_cast<int>(FrameType::kHelloAck), 2);
  EXPECT_EQ(static_cast<int>(FrameType::kQuery), 3);
  EXPECT_EQ(static_cast<int>(FrameType::kQueryReply), 4);
  EXPECT_EQ(static_cast<int>(FrameType::kFlush), 5);
  EXPECT_EQ(static_cast<int>(FrameType::kFlushAck), 6);
  EXPECT_EQ(static_cast<int>(FrameType::kApplyUpdates), 7);
  EXPECT_EQ(static_cast<int>(FrameType::kApplyUpdatesAck), 8);
  EXPECT_EQ(static_cast<int>(FrameType::kShutdown), 9);
  EXPECT_EQ(static_cast<int>(FrameType::kShutdownAck), 10);
  EXPECT_EQ(static_cast<int>(FrameType::kError), 11);
  EXPECT_EQ(static_cast<int>(FrameType::kStats), 12);
  EXPECT_EQ(static_cast<int>(FrameType::kStatsReply), 13);
  EXPECT_TRUE(IsKnownFrameType(1));
  EXPECT_TRUE(IsKnownFrameType(11));
  EXPECT_TRUE(IsKnownFrameType(12));
  EXPECT_TRUE(IsKnownFrameType(13));
  EXPECT_FALSE(IsKnownFrameType(0));
  EXPECT_FALSE(IsKnownFrameType(14));
}

TEST(FrameTest, RoundTripWholeBuffer) {
  const auto payload = Bytes({1, 2, 3, 4, 5});
  const auto enc = EncodeFrame(FrameType::kQuery, 0xABCDEF0123456789ull,
                               payload);
  ASSERT_EQ(enc.size(), kFrameHeaderBytes + payload.size());

  FrameReader reader;
  reader.Feed(enc);
  Frame frame;
  ASSERT_EQ(reader.Next(&frame), FrameReader::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kQuery);
  EXPECT_EQ(frame.request_id, 0xABCDEF0123456789ull);
  EXPECT_EQ(frame.payload, payload);
  EXPECT_EQ(reader.buffered(), 0u);
  EXPECT_EQ(reader.Next(&frame), FrameReader::Status::kNeedMore);
}

TEST(FrameTest, EmptyPayloadRoundTrips) {
  const auto enc = EncodeFrame(FrameType::kFlush, 7, {});
  FrameReader reader;
  reader.Feed(enc);
  Frame frame;
  ASSERT_EQ(reader.Next(&frame), FrameReader::Status::kFrame);
  EXPECT_EQ(frame.type, FrameType::kFlush);
  EXPECT_EQ(frame.request_id, 7u);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(FrameTest, OneByteFeedsReassemble) {
  const auto payload = Bytes({9, 8, 7});
  const auto enc = EncodeFrame(FrameType::kQueryReply, 42, payload);
  FrameReader reader;
  Frame frame;
  for (std::size_t i = 0; i + 1 < enc.size(); ++i) {
    reader.Feed({&enc[i], 1});
    EXPECT_EQ(reader.Next(&frame), FrameReader::Status::kNeedMore)
        << "whole frame after only " << i + 1 << " bytes";
  }
  reader.Feed({&enc.back(), 1});
  ASSERT_EQ(reader.Next(&frame), FrameReader::Status::kFrame);
  EXPECT_EQ(frame.payload, payload);
}

TEST(FrameTest, EverySplitPointOfThreeFrames) {
  std::vector<std::uint8_t> stream;
  AppendFrame(stream, FrameType::kHello, 1, {});
  AppendFrame(stream, FrameType::kQuery, 2, Bytes({0xAA, 0xBB}));
  AppendFrame(stream, FrameType::kShutdown, 3, Bytes({1}));

  for (std::size_t cut = 0; cut <= stream.size(); ++cut) {
    FrameReader reader;
    reader.Feed({stream.data(), cut});
    reader.Feed({stream.data() + cut, stream.size() - cut});
    Frame frame;
    for (std::uint64_t want_id = 1; want_id <= 3; ++want_id) {
      ASSERT_EQ(reader.Next(&frame), FrameReader::Status::kFrame)
          << "cut at " << cut << ", frame " << want_id;
      EXPECT_EQ(frame.request_id, want_id);
    }
    EXPECT_EQ(reader.Next(&frame), FrameReader::Status::kNeedMore);
    EXPECT_EQ(reader.buffered(), 0u);
  }
}

TEST(FrameTest, VersionMismatchPoisonsPermanently) {
  auto enc = EncodeFrame(FrameType::kQuery, 5, Bytes({1, 2}));
  enc[4] = kServiceProtocolVersion + 1;  // version byte follows length
  FrameReader reader;
  reader.Feed(enc);
  Frame frame;
  std::string error;
  EXPECT_EQ(reader.Next(&frame, &error), FrameReader::Status::kMalformed);
  EXPECT_NE(error.find("version"), std::string::npos);

  // Poisoned: even a subsequently fed VALID frame is never surfaced.
  reader.Feed(EncodeFrame(FrameType::kQuery, 6, {}));
  EXPECT_EQ(reader.Next(&frame), FrameReader::Status::kMalformed);
}

TEST(FrameTest, OversizedLengthRejectedBeforeBuffering) {
  // A hostile length prefix must fail fast with only 4 bytes fed, not
  // request 16 MiB of "more bytes".
  std::vector<std::uint8_t> enc;
  wire::PutU32(enc, static_cast<std::uint32_t>(kFrameLengthOverhead +
                                               kMaxFramePayload + 1));
  FrameReader reader;
  reader.Feed(enc);
  Frame frame;
  std::string error;
  EXPECT_EQ(reader.Next(&frame, &error), FrameReader::Status::kMalformed);
  EXPECT_NE(error.find("length"), std::string::npos);
}

TEST(FrameTest, ImpossiblyShortLengthRejected) {
  for (std::uint32_t length : {0u, 1u, kFrameLengthOverhead - 1}) {
    std::vector<std::uint8_t> enc;
    wire::PutU32(enc, length);
    FrameReader reader;
    reader.Feed(enc);
    Frame frame;
    EXPECT_EQ(reader.Next(&frame), FrameReader::Status::kMalformed)
        << "length " << length;
  }
}

TEST(FrameTest, UnknownTypePassesThroughForDispatcher) {
  const auto enc = EncodeFrame(static_cast<FrameType>(200), 9, Bytes({1}));
  FrameReader reader;
  reader.Feed(enc);
  Frame frame;
  ASSERT_EQ(reader.Next(&frame), FrameReader::Status::kFrame);
  EXPECT_EQ(static_cast<std::uint8_t>(frame.type), 200);
  EXPECT_FALSE(IsKnownFrameType(static_cast<std::uint8_t>(frame.type)));
}

TEST(FrameTest, RandomGarbageNeverYieldsEndlessNeedMore) {
  // Deterministic garbage: the reader must terminate each stream in
  // kMalformed or a bounded kNeedMore — never crash, never loop. (A
  // random prefix can by chance form a valid header; draining frames
  // until a non-kFrame status is part of the contract.)
  std::mt19937 rng(20260809);
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<std::uint8_t> junk(1 + rng() % 64);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    FrameReader reader;
    reader.Feed(junk);
    Frame frame;
    int spins = 0;
    while (reader.Next(&frame) == FrameReader::Status::kFrame) {
      ASSERT_LT(++spins, 100);
    }
  }
}

// ---------------------------------------------------------------- codec

TEST(CodecTest, HelloAckRoundTrip) {
  HelloAckMsg msg;
  msg.num_nodes = 4039;
  msg.num_edges = 88234;
  msg.epoch = 17;
  msg.num_shards = 4;
  const auto enc = EncodeHelloAck(msg);
  HelloAckMsg out;
  ASSERT_TRUE(DecodeHelloAck(enc, &out));
  EXPECT_EQ(out.num_nodes, msg.num_nodes);
  EXPECT_EQ(out.num_edges, msg.num_edges);
  EXPECT_EQ(out.epoch, msg.epoch);
  EXPECT_EQ(out.num_shards, msg.num_shards);
  ExpectRejectsTruncationAndPadding<HelloAckMsg>(enc, DecodeHelloAck);
}

TEST(CodecTest, ApplyUpdatesRoundTripAllKinds) {
  ApplyUpdatesMsg msg;
  msg.incremental = true;
  msg.lambda = 0.123456789e-3;
  msg.updates = {
      {EdgeUpdateKind::kInsert, 1, 2, 1.0},
      {EdgeUpdateKind::kDelete, 3, 4, 1.0},
      {EdgeUpdateKind::kSetWeight, 5, 6, 2.5},
  };
  const auto enc = EncodeApplyUpdates(msg);
  ApplyUpdatesMsg out;
  ASSERT_TRUE(DecodeApplyUpdates(enc, &out));
  EXPECT_TRUE(out.incremental);
  ASSERT_TRUE(out.lambda.has_value());
  EXPECT_EQ(*out.lambda, *msg.lambda);  // bit-exact f64 round trip
  EXPECT_EQ(out.updates, msg.updates);
  ExpectRejectsTruncationAndPadding<ApplyUpdatesMsg>(enc, DecodeApplyUpdates);
}

TEST(CodecTest, ApplyUpdatesWithoutLambdaAndEmptyBatch) {
  ApplyUpdatesMsg msg;  // non-incremental, no lambda, no updates
  const auto enc = EncodeApplyUpdates(msg);
  ApplyUpdatesMsg out;
  out.lambda = 1.0;  // must be cleared by decode
  ASSERT_TRUE(DecodeApplyUpdates(enc, &out));
  EXPECT_FALSE(out.incremental);
  EXPECT_FALSE(out.lambda.has_value());
  EXPECT_TRUE(out.updates.empty());
}

TEST(CodecTest, ApplyUpdatesRejectsUnknownFlagBits) {
  auto enc = EncodeApplyUpdates({});
  enc[0] = 4;  // flags: only bits 0 and 1 are defined at version 1
  ApplyUpdatesMsg out;
  EXPECT_FALSE(DecodeApplyUpdates(enc, &out));
}

TEST(CodecTest, ApplyUpdatesRejectsUnknownUpdateKind) {
  ApplyUpdatesMsg msg;
  msg.updates = {{EdgeUpdateKind::kInsert, 1, 2, 1.0}};
  auto enc = EncodeApplyUpdates(msg);
  // kind byte of update 0 sits right after flags(1)+lambda(8)+count(4).
  enc[13] = 3;
  ApplyUpdatesMsg out;
  EXPECT_FALSE(DecodeApplyUpdates(enc, &out));
}

TEST(CodecTest, ApplyUpdatesRejectsHostileCount) {
  // count = 2^32-1 would reserve ~70 GiB; the decoder must refuse from
  // the count alone, before touching (absent) update bytes.
  std::vector<std::uint8_t> enc;
  wire::PutU8(enc, 0);
  wire::PutF64(enc, 0.0);
  wire::PutU32(enc, std::numeric_limits<std::uint32_t>::max());
  ApplyUpdatesMsg out;
  EXPECT_FALSE(DecodeApplyUpdates(enc, &out));
}

TEST(CodecTest, ApplyUpdatesAckRoundTrip) {
  for (bool ok : {false, true}) {
    ApplyUpdatesAckMsg msg;
    msg.ok = ok;
    msg.epoch = 3;
    const auto enc = EncodeApplyUpdatesAck(msg);
    ApplyUpdatesAckMsg out;
    ASSERT_TRUE(DecodeApplyUpdatesAck(enc, &out));
    EXPECT_EQ(out.ok, ok);
    EXPECT_EQ(out.epoch, 3u);
    ExpectRejectsTruncationAndPadding<ApplyUpdatesAckMsg>(
        enc, DecodeApplyUpdatesAck);
  }
}

TEST(CodecTest, ApplyUpdatesAckRejectsNonBooleanOkByte) {
  auto enc = EncodeApplyUpdatesAck({true, 3});
  enc[0] = 2;
  ApplyUpdatesAckMsg out;
  EXPECT_FALSE(DecodeApplyUpdatesAck(enc, &out));
}

TEST(CodecTest, ErrorRoundTrip) {
  ErrorMsg msg;
  msg.code = ErrorMsg::kOutOfRange;
  msg.message = "node 9999 >= num_nodes 4039";
  const auto enc = EncodeError(msg);
  ErrorMsg out;
  ASSERT_TRUE(DecodeError(enc, &out));
  EXPECT_EQ(out.code, ErrorMsg::kOutOfRange);
  EXPECT_EQ(out.message, msg.message);
  ExpectRejectsTruncationAndPadding<ErrorMsg>(enc, DecodeError);
}

TEST(CodecTest, ErrorWithEmptyMessage) {
  const auto enc = EncodeError({ErrorMsg::kInternal, ""});
  ErrorMsg out;
  ASSERT_TRUE(DecodeError(enc, &out));
  EXPECT_EQ(out.code, ErrorMsg::kInternal);
  EXPECT_TRUE(out.message.empty());
}

TEST(CodecTest, ServiceRequestRoundTrip) {
  ServiceRequest msg;
  msg.s = 12;
  msg.t = 4038;
  msg.deadline_seconds = 0.250;
  const auto enc = EncodeServiceRequest(msg);
  EXPECT_EQ(enc.size(), 16u);  // frozen version-1 layout
  ServiceRequest out;
  ASSERT_TRUE(DecodeServiceRequest(enc, &out));
  EXPECT_EQ(out.s, msg.s);
  EXPECT_EQ(out.t, msg.t);
  EXPECT_EQ(out.deadline_seconds, msg.deadline_seconds);
  ExpectRejectsTruncationAndPadding<ServiceRequest>(enc,
                                                    DecodeServiceRequest);
}

TEST(CodecTest, ServiceResponseRoundTripBitExactValue) {
  ServiceResponse msg;
  msg.status = static_cast<std::uint8_t>(ServeStatus::kAnswered);
  msg.value = 0.7236067977499789;  // irrational-ish; bit pattern matters
  msg.server_ms = 3.25;
  msg.batch_size = 32;
  msg.epoch = 2;
  msg.batch_id = 91;
  const auto enc = EncodeServiceResponse(msg);
  EXPECT_EQ(enc.size(), 37u);  // frozen version-1 layout
  ServiceResponse out;
  ASSERT_TRUE(DecodeServiceResponse(enc, &out));
  EXPECT_EQ(out.value, msg.value);  // bitwise, not approximate
  EXPECT_EQ(out.server_ms, msg.server_ms);
  EXPECT_EQ(out.batch_size, msg.batch_size);
  EXPECT_EQ(out.epoch, msg.epoch);
  EXPECT_EQ(out.batch_id, msg.batch_id);
  ExpectRejectsTruncationAndPadding<ServiceResponse>(enc,
                                                     DecodeServiceResponse);
}

TEST(CodecTest, ServiceResponseRejectsUnknownStatus) {
  ServiceResponse msg;
  auto enc = EncodeServiceResponse(msg);
  enc[0] = kNumServeStatusValues;  // first value beyond the frozen range
  ServiceResponse out;
  EXPECT_FALSE(DecodeServiceResponse(enc, &out));
}

TEST(CodecTest, StatsRequestRoundTrip) {
  for (const std::string& prefix : {std::string(""), std::string("geer_")}) {
    StatsRequestMsg msg;
    msg.prefix = prefix;
    const auto enc = EncodeStatsRequest(msg);
    StatsRequestMsg out;
    out.prefix = "stale";  // must be overwritten, even by the empty prefix
    ASSERT_TRUE(DecodeStatsRequest(enc, &out));
    EXPECT_EQ(out.prefix, prefix);
    if (!prefix.empty()) {
      // The empty prefix encodes to 4 bytes whose every strict prefix is
      // also a truncation of the non-empty encoding; one pass suffices.
      ExpectRejectsTruncationAndPadding<StatsRequestMsg>(enc,
                                                         DecodeStatsRequest);
    }
  }
}

TEST(CodecTest, StatsReplyRoundTrip) {
  StatsReplyMsg msg;
  msg.num_shards = 3;
  msg.snapshot.counters["geer_serve_answered_total{method=\"GEER\"}"] = 12345;
  msg.snapshot.counters["geer_serve_rejected_total"] = 0;
  msg.snapshot.gauges["geer_serve_session_cache_bytes"] = 4096.5;
  obs::HistogramData h;
  h.buckets[0] = 1;
  h.buckets[20] = 7;
  h.buckets[obs::kHistogramBuckets - 1] = 2;
  h.count = 10;
  h.sum_ns = 987654321;
  msg.snapshot.histograms["geer_serve_latency_ns"] = h;

  const auto enc = EncodeStatsReply(msg);
  StatsReplyMsg out;
  ASSERT_TRUE(DecodeStatsReply(enc, &out));
  EXPECT_EQ(out.num_shards, 3u);
  EXPECT_EQ(out.snapshot.counters, msg.snapshot.counters);
  EXPECT_EQ(out.snapshot.gauges, msg.snapshot.gauges);
  ASSERT_EQ(out.snapshot.histograms.size(), 1u);
  const obs::HistogramData& hd =
      out.snapshot.histograms.at("geer_serve_latency_ns");
  EXPECT_EQ(hd.buckets, h.buckets);
  EXPECT_EQ(hd.count, 10u);
  EXPECT_EQ(hd.sum_ns, 987654321u);
  ExpectRejectsTruncationAndPadding<StatsReplyMsg>(enc, DecodeStatsReply);
}

TEST(CodecTest, StatsReplyEmptySnapshotRoundTrips) {
  const auto enc = EncodeStatsReply({});
  StatsReplyMsg out;
  out.snapshot.counters["stale"] = 1;
  ASSERT_TRUE(DecodeStatsReply(enc, &out));
  EXPECT_EQ(out.num_shards, 1u);
  EXPECT_TRUE(out.snapshot.counters.empty());
  EXPECT_TRUE(out.snapshot.gauges.empty());
  EXPECT_TRUE(out.snapshot.histograms.empty());
}

TEST(CodecTest, StatsReplyRejectsForeignBucketScheme) {
  // A re-bucketed histogram must fail decode, never merge wrongly.
  auto enc = EncodeStatsReply({});
  enc[0] = obs::kHistogramSchemeId + 1;  // scheme byte leads the payload
  StatsReplyMsg out;
  EXPECT_FALSE(DecodeStatsReply(enc, &out));
}

TEST(CodecTest, StatsReplyRejectsWrongBucketCount) {
  StatsReplyMsg msg;
  msg.snapshot.histograms["h"] = obs::HistogramData{};
  auto enc = EncodeStatsReply(msg);
  // bucket-count byte: scheme(1)+shards(4)+counters(4)+gauges(4)+
  // histograms(4)+name_len(4)+"h"(1).
  ASSERT_EQ(enc[22], obs::kHistogramBuckets);
  enc[22] = obs::kHistogramBuckets - 1;
  StatsReplyMsg out;
  EXPECT_FALSE(DecodeStatsReply(enc, &out));
}

TEST(CodecTest, StatsReplyRejectsHostileCounts) {
  // A claimed 2^32-1 entries of any section must be refused from the
  // count alone, before any per-entry allocation.
  const std::uint32_t kHuge = std::numeric_limits<std::uint32_t>::max();
  for (int section = 0; section < 3; ++section) {
    std::vector<std::uint8_t> enc;
    wire::PutU8(enc, obs::kHistogramSchemeId);
    wire::PutU32(enc, 1);  // num_shards
    wire::PutU32(enc, section == 0 ? kHuge : 0);  // counters
    if (section >= 1) wire::PutU32(enc, section == 1 ? kHuge : 0);  // gauges
    if (section >= 2) wire::PutU32(enc, kHuge);  // histograms
    StatsReplyMsg out;
    EXPECT_FALSE(DecodeStatsReply(enc, &out)) << "section " << section;
  }
}

TEST(CodecTest, DecodersSurviveRandomGarbage) {
  std::mt19937 rng(987654321);
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> junk(rng() % 80);
    for (auto& b : junk) b = static_cast<std::uint8_t>(rng());
    // Any of these may "succeed" if the bytes happen to form a valid
    // message; the contract under test is no crash / no throw / no
    // unbounded allocation.
    HelloAckMsg hello;
    DecodeHelloAck(junk, &hello);
    ApplyUpdatesMsg updates;
    DecodeApplyUpdates(junk, &updates);
    ApplyUpdatesAckMsg ack;
    DecodeApplyUpdatesAck(junk, &ack);
    ErrorMsg error;
    DecodeError(junk, &error);
    ServiceRequest request;
    DecodeServiceRequest(junk, &request);
    ServiceResponse response;
    DecodeServiceResponse(junk, &response);
    StatsRequestMsg stats_request;
    DecodeStatsRequest(junk, &stats_request);
    StatsReplyMsg stats_reply;
    DecodeStatsReply(junk, &stats_reply);
  }
}

}  // namespace
}  // namespace geer::net
