// Compatibility shim: weighted GEER is now the EdgeWeight instantiation
// of the weight-generic GeerEstimatorT (core/geer.h); see
// graph/weight_policy.h. WeightedGeerEstimator is an alias defined there.

#ifndef GEER_WEIGHTED_WEIGHTED_GEER_SHIM_H_
#define GEER_WEIGHTED_WEIGHTED_GEER_SHIM_H_

#include "core/geer.h"
#include "weighted/weighted_estimator.h"

#endif  // GEER_WEIGHTED_WEIGHTED_GEER_SHIM_H_
