// The wire framing of the networked serving tier: every message between
// a client, the router and a shard server is one length-prefixed frame
//
//   ┌────────────┬─────────┬──────┬──────────────┬──────────────────┐
//   │ length:u32 │ ver:u8  │ t:u8 │ request_id:  │ payload          │
//   │ (LE)       │         │      │ u64 (LE)     │ (length−10 bytes)│
//   └────────────┴─────────┴──────┴──────────────┴──────────────────┘
//
// `length` counts every byte AFTER the length field (version + type +
// request_id + payload), so a reader always knows how much to buffer
// before touching the body. `ver` is kServiceProtocolVersion
// (serve/service_api.h) and is checked per frame; `request_id` echoes
// from request to reply so clients can pipeline. Frame payloads are the
// typed messages of net/codec.h.
//
// FrameReader is the transport-independent incremental decoder: feed it
// bytes in any fragmentation and it yields whole frames, flags
// truncation-in-progress as "need more", and rejects malformed input
// (bad version, oversized or impossible length) WITHOUT crashing — the
// contract the codec fuzz suite drives with garbage bytes.

#ifndef GEER_NET_FRAME_H_
#define GEER_NET_FRAME_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "serve/service_api.h"

namespace geer::net {

/// Frame types of protocol version 1. Values are wire-stable: never
/// renumber; append only.
enum class FrameType : std::uint8_t {
  kHello = 1,            ///< client → server: version handshake
  kHelloAck = 2,         ///< server → client: deployment info
  kQuery = 3,            ///< ServiceRequest payload
  kQueryReply = 4,       ///< ServiceResponse payload
  kFlush = 5,            ///< control: dispatch whatever is queued
  kFlushAck = 6,         ///< control ack (empty payload)
  kApplyUpdates = 7,     ///< control: edge updates + epoch swap
  kApplyUpdatesAck = 8,  ///< control ack: ok flag + new epoch
  kShutdown = 9,         ///< control: drain and stop serving
  kShutdownAck = 10,     ///< control ack (empty payload)
  kError = 11,           ///< server → client: code + message
  kStats = 12,           ///< control: scrape metrics (prefix filter)
  kStatsReply = 13,      ///< counters + gauges + histogram snapshot
};

/// True for the version-1 values above (dispatchers reply kError to
/// anything else instead of aborting — forward compatibility).
bool IsKnownFrameType(std::uint8_t type);

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kError;
  std::uint64_t request_id = 0;
  std::vector<std::uint8_t> payload;
};

/// Frame header: length(4) + version(1) + type(1) + request_id(8).
inline constexpr std::size_t kFrameHeaderBytes = 14;
/// Bytes of the header counted by the length field (everything after
/// the length prefix itself).
inline constexpr std::uint32_t kFrameLengthOverhead = 10;
/// Hard cap on one frame's payload (16 MiB) — a length prefix beyond it
/// is rejected as malformed rather than buffered, so a garbage or
/// hostile length cannot balloon server memory.
inline constexpr std::size_t kMaxFramePayload = 16u << 20;

/// Serializes one frame (header + payload) onto `out`.
void AppendFrame(std::vector<std::uint8_t>& out, FrameType type,
                 std::uint64_t request_id,
                 std::span<const std::uint8_t> payload);

/// Convenience: one frame as a fresh buffer.
std::vector<std::uint8_t> EncodeFrame(FrameType type,
                                      std::uint64_t request_id,
                                      std::span<const std::uint8_t> payload);

/// Incremental frame decoder over an arbitrarily fragmented byte
/// stream. Not thread-safe (one reader per connection).
class FrameReader {
 public:
  enum class Status {
    kFrame,     ///< *out holds the next whole frame
    kNeedMore,  ///< the buffered prefix is a valid partial frame
    kMalformed, ///< protocol violation; the connection should close
  };

  /// Appends raw bytes (any fragmentation, including 1 byte at a time).
  void Feed(std::span<const std::uint8_t> bytes);

  /// Pops the next frame if a whole one is buffered. On kMalformed,
  /// `error` (if non-null) describes the violation and the reader stays
  /// poisoned — every later Next() reports the same violation.
  Status Next(Frame* out, std::string* error = nullptr);

  /// Bytes currently buffered (tests).
  std::size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t consumed_ = 0;  // decoded prefix, compacted lazily
  bool poisoned_ = false;
  std::string poison_reason_;
};

}  // namespace geer::net

#endif  // GEER_NET_FRAME_H_
