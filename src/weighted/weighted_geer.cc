#include "weighted/weighted_geer.h"

#include "core/ell.h"
#include "core/geer.h"
#include "util/check.h"
#include "weighted/weighted_amc.h"
#include "weighted/weighted_smm.h"
#include "weighted/weighted_spectral.h"

namespace geer {

WeightedGeerEstimator::WeightedGeerEstimator(const WeightedGraph& graph,
                                             ErOptions options)
    : graph_(&graph), options_(options), op_(graph), walker_(graph) {
  ValidateOptions(options_);
  lambda_ = options_.lambda.has_value()
                ? *options_.lambda
                : ComputeWeightedSpectralBounds(graph).lambda;
}

QueryStats WeightedGeerEstimator::EstimateWithStats(NodeId s, NodeId t) {
  GEER_CHECK(s < graph_->NumNodes());
  GEER_CHECK(t < graph_->NumNodes());
  QueryStats stats;
  if (s == t) return stats;

  const double ws = graph_->Strength(s);
  const double wt = graph_->Strength(t);
  const std::uint32_t ell =
      options_.use_peng_ell
          ? PengEll(options_.epsilon, lambda_, options_.max_ell)
          : RefinedEllWeighted(options_.epsilon, lambda_, ws, wt,
                               options_.max_ell);
  stats.ell = ell;

  // SMM until the greedy rule (Eq. 17) fires or ℓ_b ≥ ℓ.
  WeightedSmmIterator smm(*graph_, &op_, s, t);
  const bool fixed_lb = options_.geer_fixed_lb >= 0;
  const std::uint32_t lb_target =
      fixed_lb ? std::min<std::uint32_t>(
                     static_cast<std::uint32_t>(options_.geer_fixed_lb), ell)
               : ell;
  while (smm.iterations() < lb_target) {
    if (!fixed_lb) {
      const std::uint32_t remaining = ell - smm.iterations();
      const auto [max1_s, max2_s] = TopTwo(smm.svec());
      const auto [max1_t, max2_t] = TopTwo(smm.tvec());
      const double psi =
          WeightedAmcPsi(remaining, max1_s, max2_s, ws, max1_t, max2_t, wt);
      const std::uint64_t budget = GeerEstimator::RemainingSampleBudget(
          options_.epsilon, options_.delta, options_.tau, psi);
      if (smm.NextIterationCost() > budget) break;
    }
    smm.Advance();
  }
  stats.ell_b = smm.iterations();
  stats.spmv_ops = smm.spmv_ops();

  // Weighted AMC on the tail with the live iterates as input vectors.
  AmcParams params;
  params.epsilon = options_.epsilon;
  params.delta = options_.delta;
  params.tau = options_.tau;
  params.ell_f = ell - smm.iterations();
  Rng rng(options_.seed ^ (static_cast<std::uint64_t>(s) << 32) ^ t);
  AmcRunResult run = RunWeightedAmc(*graph_, walker_, s, t, smm.svec(),
                                    smm.tvec(), params, rng);

  stats.value = run.r_f + smm.rb();
  stats.walks = run.walks;
  stats.walk_steps = run.steps;
  stats.eta_star = run.eta_star;
  stats.batches = run.batches;
  stats.early_stop = run.early_stop;
  return stats;
}

}  // namespace geer
