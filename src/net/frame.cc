#include "net/frame.h"

namespace geer::net {

bool IsKnownFrameType(std::uint8_t type) {
  return type >= static_cast<std::uint8_t>(FrameType::kHello) &&
         type <= static_cast<std::uint8_t>(FrameType::kStatsReply);
}

void AppendFrame(std::vector<std::uint8_t>& out, FrameType type,
                 std::uint64_t request_id,
                 std::span<const std::uint8_t> payload) {
  const std::uint32_t length =
      kFrameLengthOverhead + static_cast<std::uint32_t>(payload.size());
  out.reserve(out.size() + kFrameHeaderBytes + payload.size());
  wire::PutU32(out, length);
  wire::PutU8(out, kServiceProtocolVersion);
  wire::PutU8(out, static_cast<std::uint8_t>(type));
  wire::PutU64(out, request_id);
  out.insert(out.end(), payload.begin(), payload.end());
}

std::vector<std::uint8_t> EncodeFrame(FrameType type,
                                      std::uint64_t request_id,
                                      std::span<const std::uint8_t> payload) {
  std::vector<std::uint8_t> out;
  AppendFrame(out, type, request_id, payload);
  return out;
}

void FrameReader::Feed(std::span<const std::uint8_t> bytes) {
  if (poisoned_) return;  // connection is dead anyway; drop quietly
  // Compact once the decoded prefix dominates, so a long-lived
  // connection does not grow its buffer without bound.
  if (consumed_ > 0 && consumed_ >= buffer_.size() / 2) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

FrameReader::Status FrameReader::Next(Frame* out, std::string* error) {
  if (poisoned_) {
    if (error != nullptr) *error = poison_reason_;
    return Status::kMalformed;
  }
  const std::size_t avail = buffer_.size() - consumed_;
  if (avail < 4) return Status::kNeedMore;
  const std::span<const std::uint8_t> in(buffer_.data() + consumed_, avail);
  std::size_t at = 0;
  std::uint32_t length = 0;
  wire::GetU32(in, &at, &length);
  // Validate the length BEFORE waiting for the body: a garbage prefix
  // must fail fast, not demand 4 GiB of "more bytes".
  if (length < kFrameLengthOverhead ||
      length > kFrameLengthOverhead + kMaxFramePayload) {
    poisoned_ = true;
    poison_reason_ = "frame length " + std::to_string(length) +
                     " outside [" + std::to_string(kFrameLengthOverhead) +
                     ", " +
                     std::to_string(kFrameLengthOverhead + kMaxFramePayload) +
                     "]";
    if (error != nullptr) *error = poison_reason_;
    return Status::kMalformed;
  }
  if (avail < 4u + length) return Status::kNeedMore;

  std::uint8_t version = 0;
  std::uint8_t type = 0;
  std::uint64_t request_id = 0;
  wire::GetU8(in, &at, &version);
  wire::GetU8(in, &at, &type);
  wire::GetU64(in, &at, &request_id);
  if (version != kServiceProtocolVersion) {
    poisoned_ = true;
    poison_reason_ = "protocol version " + std::to_string(version) +
                     " != " + std::to_string(kServiceProtocolVersion);
    if (error != nullptr) *error = poison_reason_;
    return Status::kMalformed;
  }
  // Unknown types pass through as frames (the dispatcher answers kError)
  // so that a NEWER peer's new control frames degrade gracefully instead
  // of severing the connection mid-stream.
  out->type = static_cast<FrameType>(type);
  out->request_id = request_id;
  const std::size_t payload_bytes = length - kFrameLengthOverhead;
  out->payload.assign(in.begin() + static_cast<std::ptrdiff_t>(at),
                      in.begin() + static_cast<std::ptrdiff_t>(at) +
                          static_cast<std::ptrdiff_t>(payload_bytes));
  consumed_ += 4u + length;
  return Status::kFrame;
}

}  // namespace geer::net
