// Deterministic, fast pseudo-random number generation for Monte Carlo
// walk sampling. xoshiro256++ seeded via splitmix64: sub-nanosecond
// next(), 2^256−1 period, and reproducible across platforms — every
// randomized estimator in this library threads an explicit Rng so paper
// experiments replay bit-identically.

#ifndef GEER_RW_RNG_H_
#define GEER_RW_RNG_H_

#include <cstdint>

namespace geer {

/// Mixes two 64-bit words into a decorrelated stream seed (splitmix64
/// finalizer). Content-addressed random streams — "the k-th walk from
/// source v" — chain it: MixSeed(MixSeed(seed, v), k). Deterministic and
/// platform-independent, like everything else in this header.
inline std::uint64_t MixSeed(std::uint64_t a, std::uint64_t b) {
  std::uint64_t x = a + 0x9e3779b97f4a7c15ULL * (b + 0x632be59bd9b4e019ULL);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// xoshiro256++ PRNG (Blackman & Vigna). Not cryptographically secure.
class Rng {
 public:
  /// Seeds deterministically from `seed` via splitmix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  std::uint64_t Next();

  /// Uniform integer in [0, bound). `bound` must be positive. Uses
  /// Lemire's nearly-divisionless method with rejection (unbiased).
  std::uint64_t NextBounded(std::uint64_t bound);

  /// Uniform double in [0, 1) with 53 bits of precision.
  double NextDouble();

  /// Standard normal via Box–Muller (used by the RP baseline tests).
  double NextGaussian();

  /// Bernoulli(p).
  bool NextBernoulli(double p) { return NextDouble() < p; }

  /// Forks an independent stream (used to give each query its own stream).
  Rng Fork();

  // UniformRandomBitGenerator interface for <algorithm> interop.
  using result_type = std::uint64_t;
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~0ULL; }
  result_type operator()() { return Next(); }

 private:
  std::uint64_t state_[4];
  bool have_cached_gaussian_ = false;
  double cached_gaussian_ = 0.0;
};

}  // namespace geer

#endif  // GEER_RW_RNG_H_
