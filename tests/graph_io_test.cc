#include "graph/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "graph/generators.h"

namespace geer {
namespace {

TEST(IoTest, ParseBasicEdgeList) {
  auto g = ParseEdgeList("0 1\n1 2\n2 0\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumNodes(), 3u);
  EXPECT_EQ(g->NumEdges(), 3u);
}

TEST(IoTest, SkipsCommentsAndBlankLines) {
  auto g = ParseEdgeList(
      "# SNAP header\n"
      "# Nodes: 3 Edges: 2\n"
      "\n"
      "0\t1\n"
      "   \n"
      "1\t2\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumEdges(), 2u);
}

TEST(IoTest, RemapsSparseIds) {
  auto g = ParseEdgeList("1000000 42\n42 777\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumNodes(), 3u);
  EXPECT_EQ(g->NumEdges(), 2u);
}

TEST(IoTest, DropsDuplicatesAndSelfLoops) {
  auto g = ParseEdgeList("0 1\n1 0\n2 2\n0 1\n");
  ASSERT_TRUE(g.has_value());
  // Self-loop node 2 still interned as a node.
  EXPECT_EQ(g->NumNodes(), 3u);
  EXPECT_EQ(g->NumEdges(), 1u);
}

TEST(IoTest, MalformedLineFails) {
  EXPECT_FALSE(ParseEdgeList("0 1\nnot numbers\n").has_value());
}

TEST(IoTest, MissingFileFails) {
  EXPECT_FALSE(LoadEdgeList("/nonexistent/geer.txt").has_value());
}

TEST(IoTest, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "geer_io_test.txt").string();
  Graph original = gen::ErdosRenyi(50, 120, 3);
  ASSERT_TRUE(SaveEdgeList(original, path));
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->NumNodes(), original.NumNodes());
  EXPECT_EQ(loaded->NumEdges(), original.NumEdges());
  std::remove(path.c_str());
}

TEST(IoTest, EmptyInputGivesEmptyGraph) {
  auto g = ParseEdgeList("");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumNodes(), 0u);
}

}  // namespace
}  // namespace geer
