// Build-system smoke test: instantiate every estimator the registry knows
// about on the smallest interesting fixture (TriangleWithTail) and check
// each answer against the dense pseudo-inverse oracle. If a module fails
// to link into libgeer or a registry entry rots, this suite is the first
// to notice — it exercises core, graph, linalg, rw, and stats end to end
// from a single binary.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/registry.h"
#include "test_util.h"

namespace geer {
namespace {

ErOptions SmokeOptions() {
  ErOptions opt;
  opt.epsilon = 0.25;
  opt.delta = 0.05;
  opt.seed = 1234;
  // TP/TPC use Peng et al.'s generic sample constants, which explode on
  // the slow-mixing tail; scale them down so the smoke test stays fast
  // (the bounds are loose enough that ε still holds comfortably).
  opt.tp_scale = 0.01;
  opt.tpc_scale = 0.001;
  // MC's guarantee needs γ ≥ r(s,t); the farthest pair on TriangleWithTail
  // has r(0,4) = 2/3 + 2 ≈ 2.67.
  opt.mc_gamma_upper = 4.0;
  return opt;
}

TEST(BuildSmokeTest, RegistryListsThePapersAlgorithms) {
  const auto names = EstimatorNames();
  ASSERT_FALSE(names.empty());
  // The paper's own contributions must always be registered.
  for (const std::string required : {"GEER", "AMC", "SMM"}) {
    bool found = false;
    for (const auto& name : names) {
      if (name == required) found = true;
    }
    EXPECT_TRUE(found) << required << " missing from registry";
  }
}

TEST(BuildSmokeTest, EveryRegisteredEstimatorConstructs) {
  Graph g = testing::TriangleWithTail();
  const ErOptions opt = SmokeOptions();
  for (const auto& name : EstimatorNames()) {
    if (!EstimatorFeasible(name, g, opt)) continue;
    auto estimator = CreateEstimator(name, g, opt);
    ASSERT_NE(estimator, nullptr) << name;
    EXPECT_EQ(estimator->Name(), name);
  }
}

TEST(BuildSmokeTest, UnknownNameReturnsNull) {
  Graph g = testing::TriangleWithTail();
  EXPECT_EQ(CreateEstimator("NOT-AN-ALGORITHM", g, SmokeOptions()), nullptr);
}

TEST(BuildSmokeTest, EveryEstimatorMatchesExactOracle) {
  Graph g = testing::TriangleWithTail();
  const ErOptions opt = SmokeOptions();
  // An edge pair inside the triangle, an edge pair on the tail, and the
  // graph's diameter pair. MC2/HAY are edge-only and skip (0, 4) via
  // SupportsQuery.
  const std::pair<NodeId, NodeId> pairs[] = {{0, 1}, {3, 4}, {0, 4}};
  for (const auto& name : EstimatorNames()) {
    if (!EstimatorFeasible(name, g, opt)) continue;
    auto estimator = CreateEstimator(name, g, opt);
    ASSERT_NE(estimator, nullptr) << name;
    int answered = 0;
    for (auto [s, t] : pairs) {
      if (!estimator->SupportsQuery(s, t)) continue;
      ++answered;
      const double truth = testing::ExactEr(g, s, t);
      // RP's guarantee is relative (1±ε); everything else is additive ε.
      const double budget = name == "RP" ? opt.epsilon * truth + 0.05
                                         : opt.epsilon + 1e-9;
      EXPECT_NEAR(estimator->Estimate(s, t), truth, budget)
          << name << " (" << s << "," << t << ")";
    }
    EXPECT_GT(answered, 0) << name << " answered no smoke pair";
  }
}

}  // namespace
}  // namespace geer
