#include "net/client.h"

namespace geer::net {

bool Client::Connect(const std::string& host, std::uint16_t port,
                     std::string* error) {
  Close();
  sock_ = ConnectTo(host, port, error);
  if (!sock_.valid()) return false;
  broken_ = false;
  Frame reply;
  if (!Call(FrameType::kHello, {}, FrameType::kHelloAck, &reply, error)) {
    Close();
    return false;
  }
  if (!DecodeHelloAck(reply.payload, &info_)) {
    if (error != nullptr) *error = "undecodable hello ack";
    Close();
    return false;
  }
  return true;
}

bool Client::Call(FrameType type, std::span<const std::uint8_t> payload,
                  FrameType expect, Frame* reply, std::string* error) {
  if (!connected()) {
    if (error != nullptr) *error = "not connected";
    return false;
  }
  const std::uint64_t id = next_request_id_++;
  if (!SendFrame(sock_, type, id, payload)) {
    broken_ = true;
    if (error != nullptr) *error = "send failed";
    return false;
  }
  if (!RecvFrame(sock_, reader_, reply, error)) {
    broken_ = true;
    return false;
  }
  if (reply->request_id != id) {
    broken_ = true;
    if (error != nullptr) *error = "request id mismatch (desynced peer)";
    return false;
  }
  if (reply->type == FrameType::kError) {
    // Service-level rejection; the connection itself is still usable.
    ErrorMsg err;
    if (error != nullptr) {
      *error = DecodeError(reply->payload, &err)
                   ? "server error " + std::to_string(err.code) + ": " +
                         err.message
                   : "server error (undecodable)";
    }
    return false;
  }
  if (reply->type != expect) {
    broken_ = true;
    if (error != nullptr) *error = "unexpected reply frame type";
    return false;
  }
  return true;
}

bool Client::Query(const ServiceRequest& request, ServiceResponse* response,
                   std::string* error) {
  Frame reply;
  if (!Call(FrameType::kQuery, EncodeServiceRequest(request),
            FrameType::kQueryReply, &reply, error)) {
    return false;
  }
  if (!DecodeServiceResponse(reply.payload, response)) {
    broken_ = true;
    if (error != nullptr) *error = "undecodable query reply";
    return false;
  }
  return true;
}

bool Client::Flush(std::string* error) {
  Frame reply;
  return Call(FrameType::kFlush, {}, FrameType::kFlushAck, &reply, error);
}

bool Client::ApplyUpdates(const ApplyUpdatesMsg& msg, ApplyUpdatesAckMsg* ack,
                          std::string* error) {
  Frame reply;
  if (!Call(FrameType::kApplyUpdates, EncodeApplyUpdates(msg),
            FrameType::kApplyUpdatesAck, &reply, error)) {
    return false;
  }
  if (!DecodeApplyUpdatesAck(reply.payload, ack)) {
    broken_ = true;
    if (error != nullptr) *error = "undecodable apply-updates ack";
    return false;
  }
  return true;
}

bool Client::Stats(const StatsRequestMsg& msg, StatsReplyMsg* reply,
                   std::string* error) {
  Frame frame;
  if (!Call(FrameType::kStats, EncodeStatsRequest(msg), FrameType::kStatsReply,
            &frame, error)) {
    return false;
  }
  if (!DecodeStatsReply(frame.payload, reply)) {
    broken_ = true;
    if (error != nullptr) *error = "undecodable stats reply";
    return false;
  }
  return true;
}

bool Client::Shutdown(std::string* error) {
  Frame reply;
  return Call(FrameType::kShutdown, {}, FrameType::kShutdownAck, &reply,
              error);
}

void Client::Close() {
  sock_.Close();
  reader_ = FrameReader();
  broken_ = false;
}

ClientPool::ClientPool(std::string host, std::uint16_t port, int size)
    : host_(std::move(host)), port_(port) {
  if (size < 1) size = 1;
  slots_.reserve(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) {
    slots_.push_back(std::make_unique<Client>());
    free_.push_back(slots_.back().get());
  }
}

ClientPool::Lease ClientPool::Acquire() {
  Client* client = nullptr;
  {
    std::unique_lock<std::mutex> lock(mu_);
    free_cv_.wait(lock, [this] { return !free_.empty(); });
    client = free_.back();
    free_.pop_back();
  }
  if (!client->connected()) {
    std::string error;
    if (!client->Connect(host_, port_, &error)) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        last_error_ = error;
        free_.push_back(client);
      }
      free_cv_.notify_one();
      return Lease(nullptr, nullptr);
    }
  }
  return Lease(this, client);
}

void ClientPool::Return(Client* client) {
  if (client == nullptr) return;
  {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(client);
  }
  free_cv_.notify_one();
}

std::string ClientPool::last_error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return last_error_;
}

}  // namespace geer::net
