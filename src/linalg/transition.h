// The random-walk (transition) operator P = D^{-1} A applied to vectors,
// with two execution modes:
//
//  * sparse "scatter" mode — iterates only the support of x; cost
//    proportional to Σ_{v∈supp(x)} d(v), exactly the cost model GEER's
//    greedy switch rule (Eq. 17) charges per SMM iteration;
//  * dense "gather" mode — one cache-friendly sweep over the CSR arrays,
//    the mode the paper credits for SMM's locality on saturated iterates.
//
// ApplyAuto picks the mode from the support size, and reports the support
// degree-sum the greedy rule needs — so GEER never pays an extra pass.

#ifndef GEER_LINALG_TRANSITION_H_
#define GEER_LINALG_TRANSITION_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "linalg/dense.h"

namespace geer {

/// Applies P = D^{-1}A. Stateless w.r.t. queries; owns scratch buffers so
/// repeated applications do not allocate.
class TransitionOperator {
 public:
  explicit TransitionOperator(const Graph& graph);
  // Stores a pointer to `graph`; a temporary would dangle.
  explicit TransitionOperator(Graph&&) = delete;

  /// A vector together with its support (list of indices of non-zeros).
  /// The support list may over-approximate (contain zero entries) but
  /// never misses a non-zero.
  struct SparseVector {
    Vector values;                  ///< dense storage, length n
    std::vector<NodeId> support;    ///< indices with (possibly) non-zero value
    bool dense = false;             ///< true once support tracking stopped

    /// Σ_{v∈supp} d(v): the paper's per-iteration SMM cost (Eq. 17 LHS).
    std::uint64_t support_degree_sum = 0;

    /// Initializes to the one-hot vector e_v.
    void InitOneHot(NodeId v, const Graph& graph);
  };

  /// x ← P·x, choosing scatter vs gather from x's density, updating the
  /// support metadata. Returns the number of arc traversals performed.
  std::uint64_t ApplyAuto(SparseVector* x);

  /// Dense gather: y(u) = (1/d(u)) Σ_{v∈N(u)} x(v). Always touches all 2m
  /// arcs. `y` is resized to n.
  void ApplyDense(const Vector& x, Vector* y) const;

  /// Fraction of nodes in the support above which ApplyAuto switches to
  /// dense mode permanently.
  static constexpr double kDenseThreshold = 0.25;

  const Graph& graph() const { return *graph_; }

 private:
  // Scatter from the support of x into scratch_, producing the new support.
  void ApplySparse(SparseVector* x);

  const Graph* graph_;
  Vector scratch_;
  std::vector<NodeId> touched_;
  std::vector<char> touched_flag_;
};

/// Applies the symmetrically normalized adjacency N = D^{-1/2} A D^{-1/2}
/// (similar to P, hence same spectrum) — the operator Lanczos runs on.
class NormalizedAdjacencyOperator {
 public:
  explicit NormalizedAdjacencyOperator(const Graph& graph);
  // Stores a pointer to `graph`; a temporary would dangle.
  explicit NormalizedAdjacencyOperator(Graph&&) = delete;

  /// y ← N·x (dense).
  void Apply(const Vector& x, Vector* y) const;

  std::size_t Dim() const { return inv_sqrt_degree_.size(); }

  /// The known top eigenvector of N: entries ∝ √d(v), unit-normalized.
  const Vector& TopEigenvector() const { return top_eigenvector_; }

 private:
  const Graph* graph_;
  Vector inv_sqrt_degree_;
  Vector top_eigenvector_;
};

}  // namespace geer

#endif  // GEER_LINALG_TRANSITION_H_
