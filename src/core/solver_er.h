// High-accuracy ER via a preconditioned CG Laplacian solve per query.
// Not one of the paper's competitors; used as a scalable ground-truth
// cross-check for the SMM-based ground truth of §5.1.

#ifndef GEER_CORE_SOLVER_ER_H_
#define GEER_CORE_SOLVER_ER_H_

#include "core/estimator.h"
#include "core/options.h"
#include "linalg/laplacian_solver.h"

namespace geer {

class SolverEstimator : public ErEstimator {
 public:
  explicit SolverEstimator(const Graph& graph, ErOptions options = {});
  // Stores a pointer to `graph`; a temporary would dangle.
  explicit SolverEstimator(Graph&&, ErOptions = {}) = delete;

  std::string Name() const override { return "CG"; }
  QueryStats EstimateWithStats(NodeId s, NodeId t) override;

 private:
  LaplacianSolver solver_;
};

}  // namespace geer

#endif  // GEER_CORE_SOLVER_ER_H_
