// Command-line roles of the networked serving tier, shared by the
// `geer net <role>` subcommand (tools/geer_cli.cc) and the standalone
// geer_shard_server / geer_router binaries — one flag parser and run
// loop each, so the CLI and the launch scripts cannot drift apart.
//
//   shard   one ShardServer over a full graph replica
//   router  the partition-owning front end over N shards
//   client  a measurement client (open- or closed-loop, Zipf-skewed)
//
// Server roles support --port=0 (ephemeral) + --port-file=PATH: the
// actual port is written to the file once listening, which is how
// tools/start_servers_local.sh sequences a deployment without racing on
// fixed ports; --timeout-seconds is the CI teardown guard (the process
// exits on its own even if the teardown signal never arrives).

#ifndef GEER_NET_ROLES_H_
#define GEER_NET_ROLES_H_

#include <string>
#include <vector>

namespace geer::net {

/// Dispatches args[0] ∈ {shard, router, client}; prints usage and
/// returns 2 on anything else. Exit-code semantics of main().
int RunNetCommand(const std::vector<std::string>& args);

int RunShardRole(const std::vector<std::string>& args);
int RunRouterRole(const std::vector<std::string>& args);
int RunClientRole(const std::vector<std::string>& args);
int RunStatsRole(const std::vector<std::string>& args);

}  // namespace geer::net

#endif  // GEER_NET_ROLES_H_
