// Edge-list IO in the SNAP text format used by the paper's datasets:
// one "u v" pair per line, '#' comment lines ignored, arbitrary ids
// remapped to a dense [0, n) range.

#ifndef GEER_GRAPH_IO_H_
#define GEER_GRAPH_IO_H_

#include <optional>
#include <string>

#include "graph/graph.h"

namespace geer {

/// Loads an undirected graph from a SNAP-style edge list. Node ids are
/// remapped densely in first-appearance order; duplicate edges and
/// self-loops are normalized away. Returns std::nullopt if the file cannot
/// be opened or contains a malformed line.
std::optional<Graph> LoadEdgeList(const std::string& path);

/// Parses a SNAP-style edge list from an in-memory string (for tests).
std::optional<Graph> ParseEdgeList(const std::string& text);

/// Writes `graph` as a SNAP-style edge list (one undirected edge per line,
/// u < v). Returns false on IO failure.
bool SaveEdgeList(const Graph& graph, const std::string& path);

}  // namespace geer

#endif  // GEER_GRAPH_IO_H_
