#include "graph/builder.h"

#include <algorithm>

#include "util/check.h"

namespace geer {

void GraphBuilder::AddEdge(NodeId u, NodeId v) {
  // Endpoints count as nodes even when the edge itself is dropped (SNAP
  // files may mention a node only via a self-loop).
  num_nodes_ = std::max(num_nodes_, static_cast<NodeId>(std::max(u, v) + 1));
  if (u == v) return;  // Self-loops are not representable.
  if (u > v) std::swap(u, v);
  edges_.emplace_back(u, v);
}

void GraphBuilder::AddEdges(const std::vector<Edge>& edges) {
  for (const auto& [u, v] : edges) AddEdge(u, v);
}

Graph GraphBuilder::Build() const {
  // Deduplicate canonicalized (u < v) edges.
  std::vector<Edge> unique_edges = edges_;
  std::sort(unique_edges.begin(), unique_edges.end());
  unique_edges.erase(std::unique(unique_edges.begin(), unique_edges.end()),
                     unique_edges.end());

  const std::uint64_t n = num_nodes_;
  std::vector<std::uint64_t> offsets(n + 1, 0);
  for (const auto& [u, v] : unique_edges) {
    ++offsets[u + 1];
    ++offsets[v + 1];
  }
  for (std::uint64_t i = 0; i < n; ++i) offsets[i + 1] += offsets[i];

  std::vector<NodeId> neighbors(offsets[n]);
  std::vector<std::uint64_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [u, v] : unique_edges) {
    neighbors[cursor[u]++] = v;
    neighbors[cursor[v]++] = u;
  }
  for (std::uint64_t v = 0; v < n; ++v) {
    std::sort(neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[v]),
              neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]));
  }
  return Graph(std::move(offsets), std::move(neighbors));
}

Graph BuildGraph(NodeId num_nodes, const std::vector<Edge>& edges) {
  GraphBuilder builder(num_nodes);
  builder.AddEdges(edges);
  return builder.Build();
}

}  // namespace geer
