// HAY baseline [Hayashi, Akiba & Yoshida, IJCAI'16], edge queries only:
// by the matrix-tree theorem, w(e)·r(e) = Pr[e ∈ T] for a random
// spanning tree T drawn from the w-weighted tree measure (uniform on
// unweighted graphs). Sample trees with Wilson's algorithm under the
// policy's walk law; the hit fraction divided by w(e) is an unbiased
// estimate with Hoeffding sample bound ln(2/δ)/(2ε²)·(1/w(e))² — we keep
// the unweighted bound and let the contract tests police the weighted
// accuracy. Weight-generic over graph/weight_policy.h.

#ifndef GEER_CORE_HAY_H_
#define GEER_CORE_HAY_H_

#include <string>

#include "core/estimator.h"
#include "core/options.h"
#include "graph/weight_policy.h"
#include "rw/walker_policy.h"

namespace geer {

template <WeightPolicy WP>
class HayEstimatorT : public ErEstimator {
 public:
  using GraphT = typename WP::GraphT;

  explicit HayEstimatorT(const GraphT& graph, ErOptions options = {});
  // Stores a pointer to `graph`; a temporary would dangle.
  explicit HayEstimatorT(GraphT&&, ErOptions = {}) = delete;

  std::string Name() const override {
    return std::string(WP::kNamePrefix) + "HAY";
  }
  QueryStats EstimateWithStats(NodeId s, NodeId t) override;

  bool SupportsQuery(NodeId s, NodeId t) const override {
    return s != t && graph_->HasEdge(s, t);
  }

  std::unique_ptr<ErEstimator> CloneForBatch() const override {
    return std::make_unique<HayEstimatorT<WP>>(*graph_, options_);
  }

  /// Dynamic-graph hook: repoints at the new snapshot and rebuilds the
  /// walk sampler (Wilson's algorithm reads the graph per query).
  using ErEstimator::RebindGraph;
  bool RebindGraph(const GraphT& graph, const GraphEpoch& epoch) override;

  /// Number of spanning trees sampled per query under the options.
  std::uint64_t NumTrees() const;

 private:
  const GraphT* graph_;
  ErOptions options_;
  WalkerFor<WP> walker_;
};

/// The two stacks, by their historical names.
using HayEstimator = HayEstimatorT<UnitWeight>;
using WeightedHayEstimator = HayEstimatorT<EdgeWeight>;

extern template class HayEstimatorT<UnitWeight>;
extern template class HayEstimatorT<EdgeWeight>;

}  // namespace geer

#endif  // GEER_CORE_HAY_H_
