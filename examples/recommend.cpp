// Link recommendation by effective resistance (Fouss et al.; one of the
// paper's motivating applications): for a user node u, rank non-neighbor
// candidates by ascending r(u, v) — low ER means many short, heavy paths
// connect the pair, i.e. high similarity. Candidates are the 2-hop
// neighborhood; ERs come from GEER.
//
//   ./examples/recommend [user_node] [top_k]

#include <algorithm>
#include <cstdio>
#include <set>
#include <vector>

#include "core/geer.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "linalg/spectral.h"

int main(int argc, char** argv) {
  using namespace geer;

  // A caveman-style social graph: tight friend groups, sparse bridges.
  Graph graph = gen::Caveman(24, 12);
  const NodeId user =
      argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 5;
  const std::size_t top_k =
      argc > 2 ? static_cast<std::size_t>(std::atoi(argv[2])) : 5;
  std::printf("social graph: n=%u m=%llu; recommending for user %u\n",
              graph.NumNodes(),
              static_cast<unsigned long long>(graph.NumEdges()), user);

  // Candidate pool: 2-hop neighbors that are not already friends.
  std::set<NodeId> friends(graph.Neighbors(user).begin(),
                           graph.Neighbors(user).end());
  std::set<NodeId> candidates;
  for (NodeId f : friends) {
    for (NodeId ff : graph.Neighbors(f)) {
      if (ff != user && friends.count(ff) == 0) candidates.insert(ff);
    }
  }
  // Add a few far nodes as contrast.
  for (NodeId v : {graph.NumNodes() / 2, graph.NumNodes() - 1}) {
    if (v != user && friends.count(v) == 0) candidates.insert(v);
  }

  SpectralBounds spectral = ComputeSpectralBounds(graph);
  ErOptions opt;
  opt.epsilon = 0.05;
  opt.lambda = spectral.lambda;
  GeerEstimator geer(graph, opt);

  std::vector<std::pair<double, NodeId>> scored;
  for (NodeId v : candidates) {
    scored.emplace_back(geer.Estimate(user, v), v);
  }
  std::sort(scored.begin(), scored.end());

  std::printf("top-%zu recommendations (ascending effective resistance):\n",
              top_k);
  auto dist = BfsDistances(graph, user);
  for (std::size_t i = 0; i < std::min(top_k, scored.size()); ++i) {
    std::printf("  #%zu: node %u   r=%.4f   (%u hops away)\n", i + 1,
                scored[i].second, scored[i].first, dist[scored[i].second]);
  }
  std::printf("least similar candidate: node %u   r=%.4f   (%u hops)\n",
              scored.back().second, scored.back().first,
              dist[scored.back().second]);

  // Sanity: the nearest recommendation should beat the farthest contrast
  // node (ER respects community structure).
  return scored.front().first < scored.back().first ? 0 : 1;
}
