// Maximum truncated-walk lengths.
//
//  * Eq. (5) — Peng et al.'s generic bound, one ℓ for all pairs:
//        ℓ = ⌈ ln(4 / (ε(1−λ))) / ln(1/λ) − 1 ⌉
//  * Eq. (6) — this paper's refined per-pair bound (Theorem 3.1):
//        ℓ = ⌈ log( (2/d(s) + 2/d(t)) / (ε(1−λ)) ) / log(1/λ) − 1 ⌉
//
// with λ = max(|λ₂|, |λ_n|) of the transition matrix. Both guarantee
// |r(s,t) − r_ℓ(s,t)| ≤ ε/2. The refined bound shrinks with the degrees
// of the query pair — the paper's first contribution.

#ifndef GEER_CORE_ELL_H_
#define GEER_CORE_ELL_H_

#include <cstdint>

namespace geer {

/// Peng et al.'s generic maximum walk length (Eq. 5), clamped to
/// [0, max_ell]. Requires ε > 0 and λ ∈ [0, 1).
std::uint32_t PengEll(double epsilon, double lambda,
                      std::uint32_t max_ell = 200000);

/// The refined per-pair maximum walk length (Eq. 6), clamped to
/// [0, max_ell]. `degree_s`, `degree_t` are the query-node degrees.
std::uint32_t RefinedEll(double epsilon, double lambda,
                         std::uint64_t degree_s, std::uint64_t degree_t,
                         std::uint32_t max_ell = 200000);

/// True iff the requested length hit the safety cap (the estimate is then
/// best-effort; see ErOptions::max_ell). `weight_s`, `weight_t` are the
/// query-node weights — degrees on unweighted graphs, strengths on
/// weighted ones (ignored when use_peng).
bool EllWasTruncated(double epsilon, double lambda, double weight_s,
                     double weight_t, std::uint32_t max_ell, bool use_peng);

/// Weighted generalization of Eq. (6): degrees are replaced by the node
/// strengths w(s), w(t) (Theorem 3.1's proof only uses
/// Σ_k f_k²(v) = 2W/w(v), which holds verbatim for weighted walks).
std::uint32_t RefinedEllWeighted(double epsilon, double lambda,
                                 double strength_s, double strength_t,
                                 std::uint32_t max_ell = 200000);

}  // namespace geer

#endif  // GEER_CORE_ELL_H_
