// Spanning edge centrality — bulk all-edge effective resistance via
// uniform spanning-tree sampling (Hayashi, Akiba & Yoshida, IJCAI'16; the
// paper's HAY baseline generalized from one edge to all of E at once).
//
// For any edge e of a connected graph, Pr[e ∈ UST] = r(e) (Kirchhoff).
// Sampling N USTs with Wilson's algorithm and counting per-edge
// occurrences estimates every edge's ER simultaneously in
// O(N · mean hitting time): the natural bulk primitive when a workload
// needs r(e) for all edges (sparsification, spanning centrality ranking)
// and the graph is too large for the O(k) per-edge embedding table.

#ifndef GEER_CENTRALITY_SPANNING_EDGE_CENTRALITY_H_
#define GEER_CENTRALITY_SPANNING_EDGE_CENTRALITY_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace geer {

/// Options for the UST sampling sweep.
struct SpanningCentralityOptions {
  /// Additive error target on each r(e); drives the Hoeffding tree count
  /// ⌈ln(2m/δ)/(2ε²)⌉ when `num_trees` is 0 (union bound over edges).
  double epsilon = 0.05;

  /// Failure probability for the all-edges guarantee.
  double delta = 0.01;

  /// Explicit tree count (0 = derive from ε and δ).
  std::uint64_t num_trees = 0;

  /// Sampling seed.
  std::uint64_t seed = 1;
};

/// Per-edge spanning centrality estimates, indexed like Graph::Edges().
struct SpanningCentrality {
  std::vector<double> edge_er;  ///< r̂(e) = occurrences / trees
  std::uint64_t trees = 0;      ///< USTs sampled
};

/// The derived tree count for a graph with m edges under `options`.
std::uint64_t SpanningCentralityTreeCount(std::uint64_t num_edges,
                                          const SpanningCentralityOptions& o);

/// Estimates r(e) for every edge of the connected graph `graph`.
/// Deterministic in options.seed. Σ_e r̂(e) = n − 1 exactly (every
/// spanning tree has n − 1 edges), so Foster's theorem holds by
/// construction — a built-in sanity invariant, not a statistical one.
SpanningCentrality EstimateSpanningCentrality(
    const Graph& graph, const SpanningCentralityOptions& options = {});

}  // namespace geer

#endif  // GEER_CENTRALITY_SPANNING_EDGE_CENTRALITY_H_
