#include "core/ell.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace geer {
namespace {

// Shared core: ℓ = ⌈ ln(numerator / (ε(1−λ))) / ln(1/λ) − 1 ⌉, clamped.
std::uint32_t EllFromNumerator(double numerator, double epsilon,
                               double lambda, std::uint32_t max_ell) {
  GEER_CHECK(epsilon > 0.0);
  GEER_CHECK(lambda >= 0.0 && lambda < 1.0) << "lambda=" << lambda;
  if (lambda == 0.0) return 0;  // walks mix in one step; r_0 suffices
  const double ratio = numerator / (epsilon * (1.0 - lambda));
  if (ratio <= 1.0) return 0;  // truncation error already below ε/2 at ℓ=0
  const double raw = std::log(ratio) / std::log(1.0 / lambda) - 1.0;
  const double ceiled = std::ceil(raw);
  if (ceiled <= 0.0) return 0;
  if (ceiled >= static_cast<double>(max_ell)) return max_ell;
  return static_cast<std::uint32_t>(ceiled);
}

}  // namespace

std::uint32_t PengEll(double epsilon, double lambda, std::uint32_t max_ell) {
  return EllFromNumerator(4.0, epsilon, lambda, max_ell);
}

std::uint32_t RefinedEll(double epsilon, double lambda,
                         std::uint64_t degree_s, std::uint64_t degree_t,
                         std::uint32_t max_ell) {
  GEER_CHECK_GT(degree_s, 0u);
  GEER_CHECK_GT(degree_t, 0u);
  const double numerator = 2.0 / static_cast<double>(degree_s) +
                           2.0 / static_cast<double>(degree_t);
  return EllFromNumerator(numerator, epsilon, lambda, max_ell);
}

std::uint32_t RefinedEllWeighted(double epsilon, double lambda,
                                 double strength_s, double strength_t,
                                 std::uint32_t max_ell) {
  GEER_CHECK_GT(strength_s, 0.0);
  GEER_CHECK_GT(strength_t, 0.0);
  const double numerator = 2.0 / strength_s + 2.0 / strength_t;
  return EllFromNumerator(numerator, epsilon, lambda, max_ell);
}

bool EllWasTruncated(double epsilon, double lambda, double weight_s,
                     double weight_t, std::uint32_t max_ell, bool use_peng) {
  const std::uint32_t capped =
      use_peng
          ? PengEll(epsilon, lambda, max_ell)
          : RefinedEllWeighted(epsilon, lambda, weight_s, weight_t, max_ell);
  if (capped < max_ell) return false;
  // Recompute with a much larger cap to see if the cap actually bound it.
  const std::uint32_t uncapped =
      use_peng ? PengEll(epsilon, lambda, ~0u)
               : RefinedEllWeighted(epsilon, lambda, weight_s, weight_t, ~0u);
  return uncapped > max_ell;
}

}  // namespace geer
