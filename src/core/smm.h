// SMM (Alg. 2): deterministic computation of the truncated effective
// resistance r_ℓ(s,t) by iterated sparse matrix–vector products with the
// transition matrix P. After i iterations the iterates satisfy
// s*(v) = p_i(v, s) and t*(v) = p_i(v, t), and
//   r_b(s,t) = Σ_{j=0}^{i} [ s*_j(s)/w(s) + t*_j(t)/w(t)
//                            − s*_j(t)/w(s) − t*_j(s)/w(t) ]
// with w = d on unweighted inputs and w = strength on weighted ones
// (the body is a template over graph/weight_policy.h).
//
// SmmIteratorT exposes the iteration one step at a time so GEER can apply
// its greedy stopping rule (Eq. 17) between steps and hand the live
// iterates to AMC.
//
// Batching: the iterate sequence {P^j e_x} is a pure function of the
// node x, so EstimateBatch keys SmmSourceCacheT streams by node and
// reuses them for the s- AND t-side of every query in the batch (and,
// with a session enabled, across batches). Queries are evaluated in
// canonical endpoint order (min, max) with a fixed accumulation order,
// making Estimate(s, t) ≡ Estimate(t, s) bitwise — so one cached stream
// serves a node regardless of which side of a query it appears on. The
// cached vectors are produced by the same ApplyAuto call sequence a
// serial query would run, so batched values stay bit-identical to
// serial ones.

#ifndef GEER_CORE_SMM_H_
#define GEER_CORE_SMM_H_

#include <initializer_list>
#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/options.h"
#include "graph/weight_policy.h"
#include "linalg/spectral.h"
#include "linalg/transition.h"

namespace geer {

/// Lazily materialized source-side iterate sequence {P^j e_source},
/// shared by the queries of a same-source group (SMM and GEER both use
/// it through SmmIteratorT). Stores one dense vector per iterate plus
/// the Eq. 17 support cost, growing to the deepest ℓ_b any query needs
/// — but never past max_cached_iterations(), which bounds the cache to
/// ~256 MB regardless of n and ℓ_b (the serial path runs in O(n)
/// memory; a group cache must not turn that into gigabytes). Queries
/// that iterate deeper continue on a private copy of the boundary state
/// (bit-identical, just unshared past the cap).
template <WeightPolicy WP>
class SmmSourceCacheT {
 public:
  using GraphT = typename WP::GraphT;
  using SparseVector = typename TransitionOperatorT<WP>::SparseVector;

  /// `max_cached` = 0 derives the memory-bounded default; tests pass a
  /// tiny cap to exercise the past-the-cap spill path.
  SmmSourceCacheT(const GraphT& graph, TransitionOperatorT<WP>* op,
                  NodeId source, std::uint32_t max_cached = 0);
  // The operator outlives the cache; a temporary graph would dangle.
  SmmSourceCacheT(GraphT&&, TransitionOperatorT<WP>*, NodeId,
                  std::uint32_t = 0) = delete;

  NodeId source() const { return source_; }

  /// Deepest iterate index this cache will materialize.
  std::uint32_t max_cached_iterations() const { return max_cached_; }

  /// Materializes iterates up to index min(j, max_cached_iterations()),
  /// adding the newly performed arc traversals (0 when already cached)
  /// to *fresh_ops.
  void EnsureIterations(std::uint32_t j, std::uint64_t* fresh_ops);

  /// Iterate j (requires EnsureIterations(j) and j ≤ the cap); j = 0 is
  /// e_source.
  const Vector& Iterate(std::uint32_t j) const { return iterates_[j]; }

  /// Σ_{v∈supp} d(v) of iterate j — its Eq. 17 LHS contribution.
  std::uint64_t SupportCost(std::uint32_t j) const {
    return support_costs_[j];
  }

  /// The live sparse state at the deepest materialized iterate — the
  /// hand-off for past-the-cap iteration. Requires
  /// EnsureIterations(max_cached_iterations()).
  const SparseVector& BoundaryState() const { return live_; }

  /// True iff this cache's dependency set — the union of every
  /// materialized iterate's support, i.e. every vertex whose row or
  /// degree the cached sequence read — intersects the sorted `touched`
  /// list, or support tracking went dense (dependency unknown). The
  /// dynamic-graph invalidation predicate: a cache for which this is
  /// FALSE is bit-exact on the new epoch (all rows it read are
  /// unchanged, and any touched vertex outside the supports contributes
  /// exactly zero to every cached iterate on both graphs).
  bool DependsOn(std::span<const NodeId> touched) const;

  /// Resident dense-iterate bytes — the session pool's accounting unit.
  std::size_t ApproxBytes() const {
    return iterates_.size() * dep_mark_.size() * sizeof(double);
  }

 private:
  /// Folds live_'s current support into the dependency marks.
  void AbsorbSupport();

  NodeId source_;
  TransitionOperatorT<WP>* op_;
  std::uint32_t max_cached_;
  SparseVector live_;
  std::vector<Vector> iterates_;
  std::vector<std::uint64_t> support_costs_;
  std::vector<char> dep_mark_;  // n flags: vertex ∈ dependency set
  bool dep_dense_ = false;      // an iterate stopped support tracking
};

/// A byte-budgeted pool of per-node iterate caches — the cross-batch
/// session state behind ErEstimator::EnableSessionCache for SMM and
/// GEER, and the batch-local sharing pool of one-shot EstimateBatch
/// runs. Entries are keyed by NODE (not "source"): a query pulls the
/// caches for both of its endpoints, so the serving layer's recurring
/// endpoints hit warm streams regardless of query side. Admission and
/// eviction run through the shared LruByteCache; landmark entries are
/// pinned (budget-exempt) by WarmLandmarks. Retained state never
/// changes answer values — deeper queries spill onto a private copy of
/// the boundary state exactly as in the uncached path.
template <WeightPolicy WP>
class SmmSessionCacheT {
 public:
  using GraphT = typename WP::GraphT;

  /// Budget split used to derive each entry's iterate-depth cap: a
  /// session sized for `budget_bytes` keeps kMaxSources streams of the
  /// per-entry cap resident before the LRU starts evicting.
  static constexpr std::size_t kMaxSources = 8;

  /// `budget_bytes` = 0 picks the 64 MB default. With `deep_entries`
  /// each entry caps its depth by the one-shot SmmSourceCacheT default
  /// (~256 MB of iterates) instead of the session split — the
  /// batch-local pool uses this so one-shot runs keep the historical
  /// per-source depth.
  SmmSessionCacheT(const GraphT& graph, TransitionOperatorT<WP>* op,
                   std::size_t budget_bytes = 0, bool deep_entries = false);
  // The operator outlives the session; a temporary graph would dangle.
  SmmSessionCacheT(GraphT&&, TransitionOperatorT<WP>*, std::size_t = 0,
                   bool = false) = delete;

  /// The pool's cache for `node`: the retained one (bumped to most
  /// recently used, counted as a hit) or a fresh one (a miss). Never
  /// evicts — a query holds both endpoints' pointers at once; call
  /// Sweep() once they are released.
  SmmSourceCacheT<WP>* CacheFor(NodeId node, bool pin = false);

  /// The retained cache for `node` if one is resident (bumped + counted
  /// like CacheFor), nullptr otherwise — never creates. The admission
  /// policy in SMM/GEER EstimateBatch uses this for batch-singleton
  /// endpoints: a warm stream is free to read, but a one-off node is
  /// not worth materializing a dense stream for.
  SmmSourceCacheT<WP>* Lookup(NodeId node) { return cache_.Find(node); }

  /// Re-records the grown entries' bytes and evicts LRU unpinned
  /// entries over budget. Call between queries, with no CacheFor
  /// pointers outstanding.
  void Sweep(std::initializer_list<NodeId> grown);

  /// Drops every retained cache (hit/miss counters persist).
  void Clear() { cache_.Clear(); }

  /// Dynamic-epoch invalidation: repoints at the new snapshot and evicts
  /// ONLY the entries whose dependency set intersects epoch.touched —
  /// pinned landmarks included; they re-warm lazily on next use — or
  /// all of them when the node count changed (the dense iterate vectors
  /// are sized to the old n). Surviving caches answer bit-identically
  /// on the new epoch; dyn_consistency_test enforces it.
  void Rebind(const GraphT& graph, const GraphEpoch& epoch);
  void Rebind(GraphT&&, const GraphEpoch&) = delete;

  std::size_t num_sources() const { return cache_.size(); }

  /// Iterate-depth cap applied to each retained entry.
  std::uint32_t per_source_iterate_cap() const { return per_source_cap_; }

  /// Hit/miss/byte counters (ServeMetrics feed).
  CacheStats stats() const { return cache_.stats(); }

 private:
  const GraphT* graph_;
  TransitionOperatorT<WP>* op_;
  std::uint32_t per_source_cap_;
  LruByteCache<NodeId, SmmSourceCacheT<WP>> cache_;
};

/// Step-at-a-time driver for Alg. 2 on a fixed query pair.
template <WeightPolicy WP>
class SmmIteratorT {
 public:
  using GraphT = typename WP::GraphT;

  /// Positions the iterator at ℓ_b = 0 (the i=0 term is already folded
  /// into rb()). Requires s ≠ t handled by the caller. When `s_cache` /
  /// `t_cache` are given (each must be for its node), that side's
  /// iterates are read from the cache — only freshly materialized cache
  /// steps charge spmv_ops(). Each side spills independently past its
  /// cache's depth cap.
  SmmIteratorT(const GraphT& graph, TransitionOperatorT<WP>* op, NodeId s,
               NodeId t, SmmSourceCacheT<WP>* s_cache = nullptr,
               SmmSourceCacheT<WP>* t_cache = nullptr);
  // Stores a pointer to `graph`; a temporary would dangle.
  SmmIteratorT(GraphT&&, TransitionOperatorT<WP>*, NodeId, NodeId,
               SmmSourceCacheT<WP>* = nullptr,
               SmmSourceCacheT<WP>* = nullptr) = delete;

  /// Truncated ER accumulated so far: r_{ℓb}(s, t).
  double rb() const { return rb_; }

  /// Iterations performed so far (ℓ_b).
  std::uint32_t iterations() const { return iterations_; }

  /// Arc traversals charged by all iterations so far.
  std::uint64_t spmv_ops() const { return spmv_ops_; }

  /// Cost of the NEXT iteration under the paper's model:
  /// Σ_{v∈supp(s*)} d(v) + Σ_{v∈supp(t*)} d(v)  (Eq. 17 LHS).
  std::uint64_t NextIterationCost() const {
    const std::uint64_t s_cost = ReadsSCache()
                                     ? s_cache_->SupportCost(iterations_)
                                     : s_vec_.support_degree_sum;
    const std::uint64_t t_cost = ReadsTCache()
                                     ? t_cache_->SupportCost(iterations_)
                                     : t_vec_.support_degree_sum;
    return s_cost + t_cost;
  }

  /// Performs one iteration: s* ← P s*, t* ← P t*, accumulates into rb.
  void Advance();

  /// Live iterates (s*(v) = p_{ℓb}(v, s), t*(v) = p_{ℓb}(v, t)).
  const Vector& svec() const {
    return ReadsSCache() ? s_cache_->Iterate(iterations_) : s_vec_.values;
  }
  const Vector& tvec() const {
    return ReadsTCache() ? t_cache_->Iterate(iterations_) : t_vec_.values;
  }

 private:
  using SparseVector = typename TransitionOperatorT<WP>::SparseVector;

  /// True while a side is served by its cache (not yet past the cap).
  bool ReadsSCache() const { return s_cache_ != nullptr && !s_spilled_; }
  bool ReadsTCache() const { return t_cache_ != nullptr && !t_spilled_; }

  /// One side's ApplyAuto step — through the cache while it lasts, on
  /// the private (possibly spilled) vector otherwise.
  void AdvanceSide(SmmSourceCacheT<WP>* cache, bool& spilled,
                   SparseVector& vec);

  const GraphT* graph_;
  TransitionOperatorT<WP>* op_;
  NodeId s_;
  NodeId t_;
  double inv_ws_;
  double inv_wt_;
  SmmSourceCacheT<WP>* s_cache_;  // nullable; replaces s_vec_ when set
  SmmSourceCacheT<WP>* t_cache_;  // nullable; replaces t_vec_ when set
  bool s_spilled_ = false;  // iterated past the cap on a private copy
  bool t_spilled_ = false;
  SparseVector s_vec_;
  SparseVector t_vec_;
  double rb_ = 0.0;
  std::uint32_t iterations_ = 0;
  std::uint64_t spmv_ops_ = 0;
};

/// The standalone SMM competitor: runs Alg. 2 for ℓ_b = ℓ iterations
/// (refined ℓ of Eq. 6 by default, Peng et al.'s Eq. 5 with
/// options.use_peng_ell — the Fig. 11 comparison; or a fixed count with
/// options.smm_iterations, which is how the paper builds ground truth).
template <WeightPolicy WP>
class SmmEstimatorT : public ErEstimator {
 public:
  using GraphT = typename WP::GraphT;

  explicit SmmEstimatorT(const GraphT& graph, ErOptions options = {});
  // Stores a pointer to `graph`; a temporary would dangle.
  explicit SmmEstimatorT(GraphT&&, ErOptions = {}) = delete;

  std::string Name() const override {
    return std::string(WP::kNamePrefix) +
           (options_.use_peng_ell ? "SMM-PengEll" : "SMM");
  }
  QueryStats EstimateWithStats(NodeId s, NodeId t) override;

  /// Shares node-keyed iterate sequences across the batch for BOTH query
  /// sides via an SmmSessionCacheT pool (the session when enabled, a
  /// batch-local pool otherwise).
  std::size_t EstimateBatch(std::span<const QueryPair> queries,
                            std::span<QueryStats> stats,
                            const BatchContext& context = {}) override;
  BatchPlan PlanBatch(std::span<const QueryPair> queries) const override {
    return BatchPlan::GroupByEndpoint(queries);
  }
  bool SharesBatchWork() const override { return true; }
  std::unique_ptr<ErEstimator> CloneForBatch() const override {
    ErOptions opt = options_;
    opt.lambda = lambda_;  // clones never re-run Lanczos
    return std::make_unique<SmmEstimatorT<WP>>(*graph_, opt);
  }

  /// Retains source iterate caches across EstimateBatch calls in an
  /// SmmSessionCacheT (the serving layer's session state).
  void EnableSessionCache(std::size_t budget_bytes = 0) override {
    session_ = std::make_unique<SmmSessionCacheT<WP>>(*graph_, &op_,
                                                      budget_bytes);
  }
  void ClearSessionCache() override {
    if (session_ != nullptr) session_->Clear();
  }
  bool SessionCacheEnabled() const override { return session_ != nullptr; }
  CacheStats SessionCacheStats() const override {
    return session_ != nullptr ? session_->stats() : CacheStats{};
  }

  /// Pins prebuilt iterate streams for the landmarks in the session
  /// cache (enabling it if off) so queries touching a hub endpoint
  /// start from a warm stream.
  std::size_t WarmLandmarks(std::span<const NodeId> landmarks) override;

  /// Dynamic-graph hook: repoints at the new snapshot, rebuilds the
  /// transition operator, re-derives λ, and invalidates the session
  /// selectively (only entries whose iterate supports were touched).
  using ErEstimator::RebindGraph;
  bool RebindGraph(const GraphT& graph, const GraphEpoch& epoch) override;

  std::uint64_t IncrementalRebinds() const override {
    return incremental_rebinds_.load(std::memory_order_relaxed);
  }

  /// λ in use (from options or computed at construction).
  double lambda() const { return lambda_; }

 private:
  QueryStats EstimateWithCache(NodeId s, NodeId t,
                               SmmSourceCacheT<WP>* s_cache,
                               SmmSourceCacheT<WP>* t_cache);
  bool IsLandmark(NodeId v) const {
    return v < is_landmark_.size() && is_landmark_[v] != 0;
  }

  const GraphT* graph_;
  ErOptions options_;
  double lambda_;
  TransitionOperatorT<WP> op_;
  std::unique_ptr<SmmSessionCacheT<WP>> session_;
  std::vector<char> is_landmark_;
  std::atomic<std::uint64_t> incremental_rebinds_{0};
};

/// The two stacks, by their historical names.
using SmmIterator = SmmIteratorT<UnitWeight>;
using SmmEstimator = SmmEstimatorT<UnitWeight>;
using SmmSourceCache = SmmSourceCacheT<UnitWeight>;
using SmmSessionCache = SmmSessionCacheT<UnitWeight>;
using WeightedSmmIterator = SmmIteratorT<EdgeWeight>;
using WeightedSmmEstimator = SmmEstimatorT<EdgeWeight>;
using WeightedSmmSourceCache = SmmSourceCacheT<EdgeWeight>;
using WeightedSmmSessionCache = SmmSessionCacheT<EdgeWeight>;

extern template class SmmSourceCacheT<UnitWeight>;
extern template class SmmSourceCacheT<EdgeWeight>;
extern template class SmmSessionCacheT<UnitWeight>;
extern template class SmmSessionCacheT<EdgeWeight>;
extern template class SmmIteratorT<UnitWeight>;
extern template class SmmIteratorT<EdgeWeight>;
extern template class SmmEstimatorT<UnitWeight>;
extern template class SmmEstimatorT<EdgeWeight>;

}  // namespace geer

#endif  // GEER_CORE_SMM_H_
