// The dynamic-graph subsystem: versioned mutable graphs over the
// immutable CSR substrate every estimator runs on.
//
// A DynamicGraphT holds one PUBLISHED snapshot — a plain Graph /
// WeightedGraph behind a shared_ptr, so readers (estimators, the serving
// layer) keep using the exact representation they already understand —
// plus a pending delta of edge insertions / deletions / weight changes
// and an append-only log of every update ever applied. Commit() folds
// the pending delta into a NEW epoch-numbered snapshot with an
// incremental CSR rebuild: only the rows of touched vertices (endpoints
// of changed edges) are re-merged; every untouched row is block-copied
// from the previous snapshot's arrays. Readers holding the old snapshot
// are never disturbed — epochs are immutable once published.
//
// Correctness contract (dyn_consistency_test): after ANY update
// sequence, the committed snapshot's CSR arrays are identical to the
// arrays a from-scratch build from the final edge list produces
// (BuildFromScratch()), so every estimator — all 12 algorithms, both
// weight modes — answers bit-identically on the committed DynamicGraph
// and on the rebuilt graph. Updates carry absolute weights (SetWeight
// overwrites, never accumulates), so logically commuting updates applied
// in any order converge to the same floating-point arrays.
//
// Concurrency: one writer thread mutates and commits; Current() may be
// called from any thread (the published pointer sits behind a mutex).
// The epoch swap through the serving layer lives in dyn/dyn_serve.h.

#ifndef GEER_DYN_DYNAMIC_GRAPH_H_
#define GEER_DYN_DYNAMIC_GRAPH_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "graph/weight_policy.h"
#include "rw/rng.h"

namespace geer {

/// One edge mutation in a dynamic-graph update stream.
enum class EdgeUpdateKind : std::uint8_t {
  kInsert,     ///< add edge {u, v} with `weight` (1.0 on unit-weight graphs)
  kDelete,     ///< remove edge {u, v}
  kSetWeight,  ///< overwrite the weight of existing edge {u, v} (weighted)
};

struct EdgeUpdate {
  EdgeUpdateKind kind = EdgeUpdateKind::kInsert;
  NodeId u = 0;
  NodeId v = 0;
  double weight = 1.0;

  friend bool operator==(const EdgeUpdate&, const EdgeUpdate&) = default;
};

/// One published epoch: an immutable graph plus the commit's footprint.
/// `touched` is the sorted list of vertices whose CSR rows differ from
/// the PREVIOUS epoch — exactly the invalidation set estimator caches
/// key on (core/estimator.h GraphEpoch).
template <WeightPolicy WP>
struct DynSnapshotT {
  using GraphT = typename WP::GraphT;

  std::uint64_t epoch = 0;
  std::shared_ptr<const GraphT> graph;
  std::vector<NodeId> touched;   ///< sorted rows rewritten vs epoch − 1
  bool resized = false;          ///< node count grew vs epoch − 1
  std::size_t num_updates = 0;   ///< log entries folded into this commit
};

/// A versioned mutable graph: published snapshot + pending delta + log.
template <WeightPolicy WP>
class DynamicGraphT {
 public:
  using GraphT = typename WP::GraphT;
  using Snapshot = DynSnapshotT<WP>;

  /// Publishes `initial` as epoch 0 (empty touched set).
  explicit DynamicGraphT(GraphT initial);

  DynamicGraphT(const DynamicGraphT&) = delete;
  DynamicGraphT& operator=(const DynamicGraphT&) = delete;

  // --- Pending-state mutators (single writer) -----------------------------

  /// Stages insertion of edge {u, v}. The edge must be absent from the
  /// pending view; self-loops are rejected. Node ids beyond the current
  /// count grow the graph (new nodes start isolated). On unit-weight
  /// graphs `weight` must be 1.0.
  void InsertEdge(NodeId u, NodeId v, double weight = 1.0);

  /// Stages deletion of edge {u, v}, which must be present in the
  /// pending view.
  void DeleteEdge(NodeId u, NodeId v);

  /// Stages an absolute weight overwrite of the present edge {u, v}.
  /// Only meaningful on the EdgeWeight instantiation (unit-weight graphs
  /// accept only 1.0, a no-op).
  void SetWeight(NodeId u, NodeId v, double weight);

  /// Routes one logged update through the typed mutators.
  void Apply(const EdgeUpdate& update);

  // --- Pending view --------------------------------------------------------

  /// Edge presence in the pending (uncommitted) state.
  bool HasEdge(NodeId u, NodeId v) const;

  /// Pending-state weight of {u, v}; 0 if absent (1.0 for present edges
  /// of the unit-weight instantiation).
  double PendingWeight(NodeId u, NodeId v) const;

  /// Node count of the pending state (≥ the published snapshot's).
  NodeId NumNodes() const { return pending_num_nodes_; }

  /// Staged-but-uncommitted edge mutations.
  std::size_t PendingUpdates() const { return pending_.size(); }

  // --- Publication ---------------------------------------------------------

  /// Folds the pending delta into a new epoch via the incremental CSR
  /// rebuild and publishes it. With nothing pending, returns the current
  /// snapshot unchanged. Cost: O(n + m) array assembly dominated by
  /// block copies of untouched rows — no edge-list sort, no per-row
  /// re-sort of untouched rows (bench/dyn_update.cc quantifies the win
  /// over BuildFromScratch on small-touch batches).
  std::shared_ptr<const Snapshot> Commit();

  /// The currently published snapshot. Thread-safe.
  std::shared_ptr<const Snapshot> Current() const;

  /// Epoch of the published snapshot. Thread-safe.
  std::uint64_t Epoch() const;

  /// Oracle / baseline: builds the PENDING state from its full edge list
  /// through the ordinary builder (sort + dedup + per-row sort). The
  /// consistency suite asserts Commit() produces identical CSR arrays;
  /// the bench uses it as the full-rebuild baseline.
  GraphT BuildFromScratch() const;

  /// Append-only log of every update accepted so far (committed and
  /// pending).
  const std::vector<EdgeUpdate>& Log() const { return log_; }

 private:
  /// Pending override for one canonical (u < v) edge: the edge's new
  /// absolute weight, or nullopt for deletion.
  using Override = std::optional<double>;

  /// Presence/weight of {u, v} (canonical order enforced by callers).
  double LookupPending(NodeId u, NodeId v) const;

  std::shared_ptr<const Snapshot> published_;  // guarded by mu_
  mutable std::mutex mu_;

  // Writer-side state (no locking: single writer by contract).
  NodeId pending_num_nodes_ = 0;
  std::map<Edge, Override> pending_;  // canonical u < v keys, ordered
  std::vector<EdgeUpdate> log_;
  std::size_t committed_log_size_ = 0;  // log prefix already published
};

/// The two stacks, by the library's naming convention.
using DynamicGraph = DynamicGraphT<UnitWeight>;
using WeightedDynamicGraph = DynamicGraphT<EdgeWeight>;
using DynSnapshot = DynSnapshotT<UnitWeight>;
using WeightedDynSnapshot = DynSnapshotT<EdgeWeight>;

/// Deterministic update-stream generator for benches, tests and the CLI:
/// alternates insertions of fresh random non-edges with deletions and
/// (on weighted graphs) weight overwrites of edges THIS generator
/// previously inserted — original edges are never deleted, so a
/// connected input stays connected under any generated stream.
template <WeightPolicy WP>
class UpdateGeneratorT {
 public:
  /// Generates against `graph`'s pending view. The caller must apply
  /// each batch before requesting the next one.
  UpdateGeneratorT(const DynamicGraphT<WP>& graph, std::uint64_t seed)
      : graph_(&graph), rng_(MixSeed(seed, 0x44594eull /* "DYN" */)) {}
  // The generator reads the graph for its whole lifetime.
  UpdateGeneratorT(DynamicGraphT<WP>&&, std::uint64_t) = delete;

  /// The next `count` updates against the current pending state.
  std::vector<EdgeUpdate> NextBatch(std::size_t count);

 private:
  const DynamicGraphT<WP>* graph_;
  Rng rng_;
  std::vector<Edge> inserted_;  // generator-owned edges still present
};

using UpdateGenerator = UpdateGeneratorT<UnitWeight>;
using WeightedUpdateGenerator = UpdateGeneratorT<EdgeWeight>;

extern template class DynamicGraphT<UnitWeight>;
extern template class DynamicGraphT<EdgeWeight>;
extern template class UpdateGeneratorT<UnitWeight>;
extern template class UpdateGeneratorT<EdgeWeight>;

}  // namespace geer

#endif  // GEER_DYN_DYNAMIC_GRAPH_H_
