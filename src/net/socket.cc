#include "net/socket.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace geer::net {
namespace {

std::string ErrnoMessage(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

void SetNoDelay(int fd) {
  int one = 1;
  (void)setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_.store(other.fd_.exchange(-1), std::memory_order_release);
  }
  return *this;
}

bool Socket::SendAll(const std::uint8_t* data, std::size_t size) {
  const int fd = fd_.load(std::memory_order_acquire);
  std::size_t sent = 0;
  while (sent < size) {
    // MSG_NOSIGNAL: a vanished peer surfaces as EPIPE, not a process-
    // killing SIGPIPE.
    const ssize_t n =
        ::send(fd, data + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    if (n == 0) return false;
    sent += static_cast<std::size_t>(n);
  }
  return true;
}

long Socket::Recv(std::uint8_t* data, std::size_t size) {
  const int fd = fd_.load(std::memory_order_acquire);
  while (true) {
    const ssize_t n = ::recv(fd, data, size, 0);
    if (n < 0 && errno == EINTR) continue;
    return static_cast<long>(n);
  }
}

void Socket::ShutdownBoth() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd >= 0) (void)::shutdown(fd, SHUT_RDWR);
}

void Socket::Close() {
  // exchange: exactly one caller gets the live fd to close, however
  // the destructor races with a cross-thread stop path.
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) (void)::close(fd);
}

Socket ConnectTo(const std::string& host, std::uint16_t port,
                 std::string* error) {
  struct addrinfo hints;
  std::memset(&hints, 0, sizeof(hints));
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = ::getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res);
  if (rc != 0 || res == nullptr) {
    if (error != nullptr) {
      *error = "getaddrinfo(" + host + "): " + ::gai_strerror(rc);
    }
    return Socket();
  }
  int fd = -1;
  for (struct addrinfo* ai = res; ai != nullptr; ai = ai->ai_next) {
    fd = ::socket(ai->ai_family, ai->ai_socktype, ai->ai_protocol);
    if (fd < 0) continue;
    if (::connect(fd, ai->ai_addr, ai->ai_addrlen) == 0) break;
    (void)::close(fd);
    fd = -1;
  }
  ::freeaddrinfo(res);
  if (fd < 0) {
    if (error != nullptr) {
      *error = ErrnoMessage(("connect " + host + ":" + port_str).c_str());
    }
    return Socket();
  }
  SetNoDelay(fd);
  return Socket(fd);
}

bool Listener::Bind(const std::string& host, std::uint16_t port,
                    std::string* error) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    if (error != nullptr) *error = ErrnoMessage("socket");
    return false;
  }
  int one = 1;
  (void)setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    (void)::close(fd);
    if (error != nullptr) *error = "bad bind address: " + host;
    return false;
  }
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    if (error != nullptr) *error = ErrnoMessage("bind");
    (void)::close(fd);
    return false;
  }
  if (::listen(fd, SOMAXCONN) != 0) {
    if (error != nullptr) *error = ErrnoMessage("listen");
    (void)::close(fd);
    return false;
  }
  // Port 0 = let the kernel pick; read the actual port back so tests
  // and launch scripts never race on a fixed number.
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    if (error != nullptr) *error = ErrnoMessage("getsockname");
    (void)::close(fd);
    return false;
  }
  sock_ = Socket(fd);
  port_ = ntohs(addr.sin_port);
  return true;
}

Socket Listener::Accept() {
  while (true) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd < 0) {
      if (errno == EINTR) continue;
      return Socket();
    }
    SetNoDelay(fd);
    return Socket(fd);
  }
}

bool SendFrame(Socket& sock, FrameType type, std::uint64_t request_id,
               std::span<const std::uint8_t> payload) {
  const std::vector<std::uint8_t> bytes =
      EncodeFrame(type, request_id, payload);
  return sock.SendAll(bytes.data(), bytes.size());
}

bool RecvFrame(Socket& sock, FrameReader& reader, Frame* out,
               std::string* error) {
  while (true) {
    const FrameReader::Status status = reader.Next(out, error);
    if (status == FrameReader::Status::kFrame) return true;
    if (status == FrameReader::Status::kMalformed) return false;
    std::uint8_t chunk[4096];
    const long n = sock.Recv(chunk, sizeof(chunk));
    if (n <= 0) {
      if (error != nullptr) {
        *error = n == 0 ? "peer closed" : ErrnoMessage("recv");
      }
      return false;
    }
    reader.Feed(std::span<const std::uint8_t>(
        chunk, static_cast<std::size_t>(n)));
  }
}

}  // namespace geer::net
