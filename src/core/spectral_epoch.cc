#include "core/spectral_epoch.h"

namespace geer {

template <WeightPolicy WP>
double EpochLambdaShared(EpochShared<EpochSpectral>& holder,
                         const typename WP::GraphT& graph,
                         const GraphEpoch& epoch, bool* warm_used) {
  const std::shared_ptr<const EpochSpectral> entry = holder.GetOrUpdate(
      epoch.epoch,
      [&](const std::shared_ptr<const EpochSpectral>& prev)
          -> std::shared_ptr<const EpochSpectral> {
        auto next = std::make_shared<EpochSpectral>();
        if (epoch.incremental && !epoch.resized) {
          // Warm path: seed from the previous epoch's Ritz vectors when
          // available, else a per-epoch-seeded cold start that still
          // records Ritz vectors for the next epoch.
          if (prev != nullptr) next->warm = prev->warm;
          next->bounds = ComputeSpectralBoundsWarmT<WP>(
              graph, epoch.epoch, &next->warm);
          next->warm_started = prev != nullptr && prev->warm.valid;
        } else {
          // Cold path: the exact construction-time computation, so the
          // adopted λ is bit-identical to a fresh estimator's. No Ritz
          // recording — the warm chain starts at the first incremental
          // epoch. A resize also lands here: previous-dimension Ritz
          // vectors are meaningless for the new operator.
          next->bounds = ComputeSpectralBoundsT<WP>(graph);
        }
        return next;
      });
  if (warm_used != nullptr) *warm_used = entry->warm_started;
  return entry->bounds.lambda;
}

template <WeightPolicy WP>
double RebindLambda(const typename WP::GraphT& graph, const GraphEpoch& epoch,
                    bool* warm_used) {
  if (warm_used != nullptr) *warm_used = false;
  if (epoch.lambda.has_value()) return *epoch.lambda;
  if (epoch.spectral != nullptr) {
    return EpochLambdaShared<WP>(*epoch.spectral, graph, epoch, warm_used);
  }
  return ComputeSpectralBoundsT<WP>(graph).lambda;
}

template double EpochLambdaShared<UnitWeight>(EpochShared<EpochSpectral>&,
                                              const Graph&, const GraphEpoch&,
                                              bool*);
template double EpochLambdaShared<EdgeWeight>(EpochShared<EpochSpectral>&,
                                              const WeightedGraph&,
                                              const GraphEpoch&, bool*);
template double RebindLambda<UnitWeight>(const Graph&, const GraphEpoch&,
                                         bool*);
template double RebindLambda<EdgeWeight>(const WeightedGraph&,
                                         const GraphEpoch&, bool*);

}  // namespace geer
