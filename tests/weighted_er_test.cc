// End-to-end accuracy tests for the weighted estimators (W-SMM, W-AMC,
// W-GEER) against the W-CG oracle, plus cross-checks against the
// unweighted stack on unit-weight inputs and circuit-theory laws.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <tuple>

#include "core/geer.h"
#include "core/smm.h"
#include "graph/generators.h"
#include "core/amc.h"
#include "core/solver_er.h"
#include "graph/weighted_generators.h"

namespace geer {
namespace {

std::unique_ptr<ErEstimator> MakeWeighted(const std::string& name,
                                                  const WeightedGraph& g,
                                                  const ErOptions& opt) {
  if (name == "W-SMM") return std::make_unique<WeightedSmmEstimator>(g, opt);
  if (name == "W-AMC") return std::make_unique<WeightedAmcEstimator>(g, opt);
  if (name == "W-GEER") {
    return std::make_unique<WeightedGeerEstimator>(g, opt);
  }
  return nullptr;
}

WeightedGraph WeightedFamily(const std::string& family) {
  if (family == "tri-grid") {
    return gen::TriangulatedGridCircuit(5, 5, 0.5, 2.0, 11);
  }
  if (family == "ba-weighted") {
    return gen::WithUniformWeights(gen::BarabasiAlbert(60, 4, 9), 0.25, 4.0,
                                   13);
  }
  // "skewed": dense core with two orders of magnitude weight spread.
  return gen::WithUniformWeights(gen::ErdosRenyi(40, 300, 17), 0.05, 5.0, 19);
}

using Param = std::tuple<std::string /*method*/, std::string /*family*/,
                         double /*epsilon*/>;

class WeightedConsistencyTest : public ::testing::TestWithParam<Param> {};

TEST_P(WeightedConsistencyTest, WithinEpsilonOfCgOracle) {
  const auto& [method, family, epsilon] = GetParam();
  WeightedGraph g = WeightedFamily(family);
  ErOptions opt;
  opt.epsilon = epsilon;
  opt.delta = 0.01;
  opt.seed = 99;
  auto estimator = MakeWeighted(method, g, opt);
  ASSERT_NE(estimator, nullptr);
  WeightedSolverEstimator oracle(g);

  const std::pair<NodeId, NodeId> pairs[] = {{0, 1}, {2, 17}, {5, 11}};
  for (auto [s, t] : pairs) {
    const double truth = oracle.Estimate(s, t);
    const double value = estimator->Estimate(s, t);
    EXPECT_LE(std::abs(value - truth), epsilon + 1e-9)
        << method << " on " << family << " (" << s << "," << t << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WeightedConsistencyTest,
    ::testing::Combine(::testing::Values("W-SMM", "W-AMC", "W-GEER"),
                       ::testing::Values("tri-grid", "ba-weighted", "skewed"),
                       ::testing::Values(0.5, 0.2, 0.1)),
    [](const ::testing::TestParamInfo<Param>& info) {
      std::string name = std::get<0>(info.param) + "_" +
                         std::get<1>(info.param) + "_eps" +
                         std::to_string(static_cast<int>(
                             std::get<2>(info.param) * 100));
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(WeightedSmmTest, UnitWeightsMatchUnweightedSmmExactly) {
  // Same λ seed, same deterministic iteration: the two stacks must agree
  // to floating-point noise, not just within ε.
  Graph g = gen::BarabasiAlbert(50, 3, 21);
  ErOptions opt;
  opt.epsilon = 0.1;
  SmmEstimator unweighted(g, opt);
  WeightedGraph wg = FromUnweighted(g);  // estimators keep a pointer
  WeightedSmmEstimator weighted(wg, opt);
  for (auto [s, t] : {std::pair<NodeId, NodeId>{0, 25}, {3, 44}, {7, 9}}) {
    QueryStats a = unweighted.EstimateWithStats(s, t);
    QueryStats b = weighted.EstimateWithStats(s, t);
    EXPECT_EQ(a.ell, b.ell);
    EXPECT_NEAR(a.value, b.value, 1e-9);
  }
}

TEST(WeightedSmmTest, MatchesCircuitOracleOnSeries) {
  // Estimators assume non-bipartite inputs; a chain is bipartite, so add
  // a shortcut triangle at one end and check against CG rather than the
  // closed form.
  WeightedGraphBuilder b;
  b.AddEdge(0, 1, 1.0).AddEdge(1, 2, 0.5).AddEdge(2, 3, 0.25);
  b.AddEdge(0, 2, 0.1);  // makes a triangle: non-bipartite
  WeightedGraph g = b.Build();
  WeightedSolverEstimator oracle(g);
  ErOptions opt;
  opt.epsilon = 0.05;
  WeightedSmmEstimator smm(g, opt);
  for (auto [s, t] : {std::pair<NodeId, NodeId>{0, 3}, {1, 3}, {0, 2}}) {
    EXPECT_NEAR(smm.Estimate(s, t), oracle.Estimate(s, t), opt.epsilon);
  }
}

TEST(WeightedAmcTest, HeavierPairsGetShorterWalks) {
  // The refined weighted ℓ shrinks with the strengths of the query pair.
  WeightedGraph g = WeightedFamily("ba-weighted");
  ErOptions opt;
  opt.epsilon = 0.2;
  WeightedAmcEstimator amc(g, opt);
  // Find a high-strength and a low-strength node.
  NodeId heavy = 0, light = 0;
  for (NodeId v = 1; v < g.NumNodes(); ++v) {
    if (g.Strength(v) > g.Strength(heavy)) heavy = v;
    if (g.Strength(v) < g.Strength(light)) light = v;
  }
  const NodeId other = heavy == 0 ? 1 : 0;
  const NodeId other2 = light == g.NumNodes() - 1 ? g.NumNodes() - 2
                                                  : g.NumNodes() - 1;
  QueryStats heavy_stats = amc.EstimateWithStats(heavy, other);
  QueryStats light_stats = amc.EstimateWithStats(light, other2);
  EXPECT_LE(heavy_stats.ell, light_stats.ell);
}

TEST(WeightedGeerTest, SwitchesToWalksOnExpansiveGraphs) {
  // On a weighted expander with moderate ε GEER should not run SMM to ℓ.
  WeightedGraph g = WeightedFamily("skewed");
  ErOptions opt;
  opt.epsilon = 0.2;
  WeightedGeerEstimator geer(g, opt);
  QueryStats stats = geer.EstimateWithStats(0, 20);
  EXPECT_LE(stats.ell_b, stats.ell);
}

TEST(WeightedGeerTest, FixedLbOverrideRespected) {
  WeightedGraph g = WeightedFamily("tri-grid");
  ErOptions opt;
  opt.epsilon = 0.2;
  opt.geer_fixed_lb = 2;
  WeightedGeerEstimator geer(g, opt);
  QueryStats stats = geer.EstimateWithStats(0, 24);
  EXPECT_EQ(stats.ell_b, std::min<std::uint32_t>(2, stats.ell));
}

TEST(WeightedGeerTest, AgreesWithUnweightedGeerOnUnitWeights) {
  Graph g = gen::ErdosRenyi(50, 250, 23);
  ErOptions opt;
  opt.epsilon = 0.2;
  opt.seed = 5;
  GeerEstimator unweighted(g, opt);
  WeightedGraph wg = FromUnweighted(g);  // estimators keep a pointer
  WeightedGeerEstimator weighted(wg, opt);
  // Different RNG consumption patterns ⇒ different samples; both must
  // still land within ε of each other’s contract (2ε of each other).
  for (auto [s, t] : {std::pair<NodeId, NodeId>{0, 30}, {4, 41}}) {
    EXPECT_NEAR(weighted.Estimate(s, t), unweighted.Estimate(s, t),
                2.0 * opt.epsilon);
  }
}

TEST(WeightedEstimatorTest, SameNodeIsZero) {
  WeightedGraph g = WeightedFamily("tri-grid");
  ErOptions opt;
  opt.epsilon = 0.3;
  WeightedAmcEstimator amc(g, opt);
  WeightedGeerEstimator geer(g, opt);
  WeightedSmmEstimator smm(g, opt);
  EXPECT_DOUBLE_EQ(amc.Estimate(6, 6), 0.0);
  EXPECT_DOUBLE_EQ(geer.Estimate(6, 6), 0.0);
  EXPECT_DOUBLE_EQ(smm.Estimate(6, 6), 0.0);
}

TEST(WeightedEstimatorTest, DeterministicAcrossRepeats) {
  WeightedGraph g = WeightedFamily("ba-weighted");
  ErOptions opt;
  opt.epsilon = 0.3;
  opt.seed = 123;
  WeightedGeerEstimator geer(g, opt);
  const double first = geer.Estimate(2, 31);
  const double second = geer.Estimate(2, 31);
  EXPECT_DOUBLE_EQ(first, second);
}

TEST(WeightedEstimatorTest, ConductanceScalingLawHoldsWithinEpsilon) {
  // r(s,t; c·w) = r(s,t; w)/c — check the estimators track the oracle
  // under a global conductance rescale.
  WeightedGraph base = WeightedFamily("tri-grid");
  WeightedGraphBuilder scaled_builder;
  const double c = 4.0;
  for (const auto& e : base.Edges()) {
    scaled_builder.AddEdge(e.u, e.v, c * e.weight);
  }
  WeightedGraph scaled = scaled_builder.Build();
  ErOptions opt;
  opt.epsilon = 0.1;
  WeightedGeerEstimator geer(scaled, opt);
  WeightedSolverEstimator oracle(base);
  for (auto [s, t] : {std::pair<NodeId, NodeId>{0, 24}, {3, 17}}) {
    EXPECT_NEAR(geer.Estimate(s, t), oracle.Estimate(s, t) / c,
                opt.epsilon + 1e-9);
  }
}

}  // namespace
}  // namespace geer
