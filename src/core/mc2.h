// MC2 baseline [Peng et al., KDD'21], edge queries only: for (s,t) ∈ E,
// r(s,t) equals the probability that a walk from s first visits t via the
// direct edge (s,t). With γ a lower bound on r(s,t) (worst case 1/(2m)),
// 3 log(1/δ)/(ε² γ) first-visit trials give an ε-approximation w.h.p.

#ifndef GEER_CORE_MC2_H_
#define GEER_CORE_MC2_H_

#include "core/estimator.h"
#include "core/options.h"
#include "rw/walker.h"

namespace geer {

class Mc2Estimator : public ErEstimator {
 public:
  Mc2Estimator(const Graph& graph, ErOptions options = {});
  // Stores a pointer to `graph`; a temporary would dangle.
  Mc2Estimator(Graph&&, ErOptions = {}) = delete;

  std::string Name() const override { return "MC2"; }
  QueryStats EstimateWithStats(NodeId s, NodeId t) override;

  /// MC2 answers only pairs joined by an edge.
  bool SupportsQuery(NodeId s, NodeId t) const override {
    return s != t && graph_->HasEdge(s, t);
  }

  /// Trial count under the options' γ (0 ⇒ the worst-case 1/(2m)).
  std::uint64_t NumTrials() const;

 private:
  const Graph* graph_;
  ErOptions options_;
  Walker walker_;
};

}  // namespace geer

#endif  // GEER_CORE_MC2_H_
