#include "core/geer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/amc.h"
#include "core/smm.h"
#include "graph/generators.h"
#include "stats/bounds.h"
#include "test_util.h"

namespace geer {
namespace {

TEST(GeerTest, WithinEpsilonOfTruth) {
  Graph g = testing::DenseTestGraph(20);
  for (double eps : {0.5, 0.2, 0.1}) {
    ErOptions opt;
    opt.epsilon = eps;
    GeerEstimator geer(g, opt);
    const std::pair<NodeId, NodeId> pairs[] = {{0, 10}, {2, 15}, {1, 19}};
    for (auto [s, t] : pairs) {
      const double truth = testing::ExactEr(g, s, t);
      EXPECT_LE(std::abs(geer.Estimate(s, t) - truth), eps)
          << "eps=" << eps << " (" << s << "," << t << ")";
    }
  }
}

TEST(GeerTest, SameNodeZero) {
  // Regression: passing a temporary graph left the estimator with a
  // dangling pointer (caught by ASan); now rejected at compile time.
  Graph g = gen::Complete(8);
  GeerEstimator geer(g);
  EXPECT_DOUBLE_EQ(geer.Estimate(2, 2), 0.0);
}

TEST(GeerTest, SwitchPointWithinRange) {
  Graph g = testing::DenseTestGraph(24);
  ErOptions opt;
  opt.epsilon = 0.1;
  GeerEstimator geer(g, opt);
  QueryStats stats = geer.EstimateWithStats(0, 12);
  EXPECT_LE(stats.ell_b, stats.ell);
}

TEST(GeerTest, FixedLbOverrideHonored) {
  Graph g = testing::DenseTestGraph(24);
  ErOptions opt;
  opt.epsilon = 0.1;
  opt.geer_fixed_lb = 2;
  GeerEstimator geer(g, opt);
  QueryStats stats = geer.EstimateWithStats(0, 12);
  EXPECT_EQ(stats.ell_b, 2u);
}

TEST(GeerTest, FixedLbZeroDegradesToAmc) {
  // ℓ_b = 0 ⇒ pure AMC with one-hot inputs: identical estimates for the
  // same seed.
  Graph g = testing::DenseTestGraph(16);
  ErOptions opt;
  opt.epsilon = 0.3;
  opt.seed = 7;
  opt.geer_fixed_lb = 0;
  GeerEstimator geer(g, opt);
  AmcEstimator amc(g, opt);
  EXPECT_NEAR(geer.Estimate(0, 9), amc.Estimate(0, 9), 1e-12);
}

TEST(GeerTest, FixedLbFullDegradesToSmm) {
  // ℓ_b = ℓ ⇒ pure SMM: deterministic and equal to SMM's r_ℓ.
  Graph g = testing::DenseTestGraph(16);
  ErOptions opt;
  opt.epsilon = 0.2;
  opt.geer_fixed_lb = 1 << 20;  // clamped to ℓ
  GeerEstimator geer(g, opt);
  SmmEstimator smm(g, opt);
  QueryStats gs = geer.EstimateWithStats(0, 9);
  QueryStats ss = smm.EstimateWithStats(0, 9);
  EXPECT_EQ(gs.ell_b, ss.ell);
  EXPECT_NEAR(gs.value, ss.value, 1e-12);
  EXPECT_EQ(gs.walks, 0u);
}

TEST(GeerTest, DecomposesExactly) {
  // r' = r_b(ℓ_b) + r_f where E[r_f] = r_ℓ − r_{ℓb}: run GEER with a fixed
  // switch point, average r' over seeds, compare to SMM's r_ℓ.
  Graph g = testing::DenseTestGraph(14);
  ErOptions smm_opt;
  smm_opt.epsilon = 0.2;
  SmmEstimator smm(g, smm_opt);
  const double r_ell = smm.Estimate(0, 7);

  double sum = 0.0;
  const int reps = 30;
  for (int rep = 0; rep < reps; ++rep) {
    ErOptions opt;
    opt.epsilon = 0.2;
    opt.geer_fixed_lb = 2;
    opt.seed = 5000 + rep;
    GeerEstimator geer(g, opt);
    sum += geer.Estimate(0, 7);
  }
  EXPECT_NEAR(sum / reps, r_ell, 0.04);
}

TEST(GeerTest, UsesFewerWalksThanAmc) {
  // The headline claim: seeding AMC with flat iterates slashes ψ and thus
  // the sample budget.
  Graph g = gen::BarabasiAlbert(400, 8, 11);
  ErOptions opt;
  opt.epsilon = 0.05;
  GeerEstimator geer(g, opt);
  AmcEstimator amc(g, opt);
  const QueryStats gs = geer.EstimateWithStats(3, 200);
  const QueryStats as = amc.EstimateWithStats(3, 200);
  if (gs.ell_b > 0 && gs.ell > gs.ell_b) {
    EXPECT_LT(gs.eta_star, as.eta_star);
  }
  EXPECT_LE(gs.walks, as.walks);
}

TEST(GeerTest, RemainingSampleBudgetFormula) {
  // h(ℓf) = (2^τ − 1)⌈η*/2^{τ−1}⌉.
  const double eps = 0.1;
  const double delta = 0.01;
  const int tau = 5;
  const double psi = 1.0;
  const std::uint64_t eta_star = AmcMaxSamples(eps, psi, delta, tau);
  const std::uint64_t eta =
      static_cast<std::uint64_t>(std::ceil(eta_star / 16.0));
  EXPECT_EQ(GeerEstimator::RemainingSampleBudget(eps, delta, tau, psi),
            31 * eta);
  EXPECT_EQ(GeerEstimator::RemainingSampleBudget(eps, delta, tau, 0.0), 0u);
}

TEST(GeerTest, DeterministicPerSeed) {
  Graph g = testing::DenseTestGraph(16);
  ErOptions opt;
  opt.epsilon = 0.2;
  opt.seed = 42;
  GeerEstimator a(g, opt);
  GeerEstimator b(g, opt);
  EXPECT_DOUBLE_EQ(a.Estimate(1, 9), b.Estimate(1, 9));
}

TEST(GeerTest, HandlesAdjacentPairs) {
  Graph g = testing::DenseTestGraph(16);
  ErOptions opt;
  opt.epsilon = 0.1;
  GeerEstimator geer(g, opt);
  const double truth = testing::ExactEr(g, 0, 1);
  EXPECT_LE(std::abs(geer.Estimate(0, 1) - truth), 0.1);
}

TEST(GeerTest, HighDegreePairGetsShortEll) {
  // On a dense graph with big ε the refined ℓ can be tiny or zero; GEER
  // must still return the correct i=0-dominated value.
  Graph g = gen::Complete(200);
  ErOptions opt;
  opt.epsilon = 0.5;
  GeerEstimator geer(g, opt);
  QueryStats stats = geer.EstimateWithStats(0, 100);
  EXPECT_LE(stats.ell, 2u);
  EXPECT_NEAR(stats.value, 2.0 / 200.0, 0.5);
}

}  // namespace
}  // namespace geer
