#include "util/check.h"

#include <cstdio>
#include <cstdlib>

namespace geer {
namespace internal {

void CheckFailed(const char* file, int line, const char* expr,
                 const std::string& message) {
  std::fprintf(stderr, "[geer] CHECK failed at %s:%d: %s", file, line, expr);
  if (!message.empty()) {
    std::fprintf(stderr, " — %s", message.c_str());
  }
  std::fprintf(stderr, "\n");
  std::fflush(stderr);
  std::abort();
}

}  // namespace internal
}  // namespace geer
