#include "core/registry.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "test_util.h"

namespace geer {
namespace {

TEST(RegistryTest, AllNamesConstruct) {
  Graph g = testing::DenseTestGraph(12);
  ErOptions opt;
  opt.epsilon = 0.5;
  opt.tp_scale = 0.001;
  opt.tpc_scale = 0.001;
  opt.rp_dimensions = 16;
  for (const std::string& name : EstimatorNames()) {
    auto est = CreateEstimator(name, g, opt);
    ASSERT_NE(est, nullptr) << name;
    if (name == "SMM-PengEll") {
      EXPECT_EQ(est->Name(), "SMM-PengEll");
    } else {
      EXPECT_EQ(est->Name(), name);
    }
  }
}

TEST(RegistryTest, UnknownNameReturnsNull) {
  Graph g = gen::Complete(5);
  EXPECT_EQ(CreateEstimator("NOPE", g, {}), nullptr);
}

TEST(RegistryTest, EdgeOnlyMethodsFlagNonEdges) {
  Graph g = testing::DenseTestGraph(12);
  ErOptions opt;
  auto mc2 = CreateEstimator("MC2", g, opt);
  auto hay = CreateEstimator("HAY", g, opt);
  auto geer_est = CreateEstimator("GEER", g, opt);
  ASSERT_FALSE(g.HasEdge(0, 9));
  EXPECT_FALSE(mc2->SupportsQuery(0, 9));
  EXPECT_FALSE(hay->SupportsQuery(0, 9));
  EXPECT_TRUE(geer_est->SupportsQuery(0, 9));
}

TEST(RegistryTest, FeasibilityChecks) {
  Graph small = testing::DenseTestGraph(12);
  ErOptions opt;
  opt.epsilon = 0.5;
  EXPECT_TRUE(EstimatorFeasible("EXACT", small, opt));
  EXPECT_TRUE(EstimatorFeasible("GEER", small, opt));
  EXPECT_FALSE(EstimatorFeasible("NOPE", small, opt));

  ErOptions tight = opt;
  tight.epsilon = 0.01;
  tight.rp_max_bytes = 1024;
  EXPECT_FALSE(EstimatorFeasible("RP", small, tight));
}

TEST(RegistryTest, SmmPengVariantUsesPengEll) {
  Graph g = testing::DenseTestGraph(16);
  ErOptions opt;
  opt.epsilon = 0.1;
  auto refined = CreateEstimator("SMM", g, opt);
  auto peng = CreateEstimator("SMM-PengEll", g, opt);
  QueryStats a = refined->EstimateWithStats(0, 1);
  QueryStats b = peng->EstimateWithStats(0, 1);
  EXPECT_LT(a.ell, b.ell);
}

}  // namespace
}  // namespace geer
