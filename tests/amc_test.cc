#include "core/amc.h"

#include <gtest/gtest.h>

#include <cmath>

#include "core/smm.h"
#include "graph/generators.h"
#include "linalg/spectral.h"
#include "stats/accumulator.h"
#include "test_util.h"

namespace geer {
namespace {

TEST(AmcPsiTest, OneHotMatchesClosedForm) {
  // With e_s, e_t inputs: ψ = 2⌈ℓ/2⌉(1/ds + 1/dt).
  const double psi = AmcPsi(9, 1.0, 0.0, 4, 1.0, 0.0, 8);
  EXPECT_NEAR(psi, 2.0 * 5.0 * (0.25 + 0.125), 1e-12);
}

TEST(AmcPsiTest, EvenLengthSplitsHalves) {
  const double psi = AmcPsi(10, 0.5, 0.25, 2, 0.5, 0.25, 2);
  // 2·5·(0.25+0.25) + 2·5·(0.125+0.125).
  EXPECT_NEAR(psi, 5.0 + 2.5, 1e-12);
}

TEST(AmcPsiTest, FlatVectorsShrinkPsi) {
  // GEER's effect: flat iterates (max ≈ 0.1) vs one-hot (max = 1).
  const double onehot = AmcPsi(20, 1.0, 0.0, 4, 1.0, 0.0, 4);
  const double flat = AmcPsi(20, 0.1, 0.1, 4, 0.1, 0.1, 4);
  EXPECT_LT(flat, 0.25 * onehot);
}

TEST(AmcZkBoundTest, SampleValuesWithinPsiOverTwo) {
  // Lemma 3.3 ⇒ |Z_k| ≤ ψ/2. Verify empirically on random inputs.
  Graph g = testing::DenseTestGraph(14);
  Rng vec_rng(3);
  Vector svec(g.NumNodes());
  Vector tvec(g.NumNodes());
  for (auto& v : svec) v = vec_rng.NextDouble();
  for (auto& v : tvec) v = vec_rng.NextDouble();
  const NodeId s = 0;
  const NodeId t = 9;
  const auto [m1s, m2s] = TopTwo(svec);
  const auto [m1t, m2t] = TopTwo(tvec);
  const std::uint32_t ell = 7;
  const double psi =
      AmcPsi(ell, m1s, m2s, g.Degree(s), m1t, m2t, g.Degree(t));
  Walker walker(g);
  Rng rng(4);
  const double inv_ds = 1.0 / g.Degree(s);
  const double inv_dt = 1.0 / g.Degree(t);
  for (int k = 0; k < 5000; ++k) {
    double z = 0.0;
    NodeId cur = s;
    for (std::uint32_t i = 0; i < ell; ++i) {
      cur = walker.Step(cur, rng);
      z += svec[cur] * inv_ds - tvec[cur] * inv_dt;
    }
    cur = t;
    for (std::uint32_t i = 0; i < ell; ++i) {
      cur = walker.Step(cur, rng);
      z += tvec[cur] * inv_dt - svec[cur] * inv_ds;
    }
    ASSERT_LE(std::abs(z), psi / 2.0 + 1e-12);
  }
}

TEST(RunAmcTest, ZeroLengthReturnsZero) {
  Graph g = gen::Complete(6);
  Vector e0(6, 0.0);
  Vector e1(6, 0.0);
  e0[0] = 1.0;
  e1[1] = 1.0;
  AmcParams params;
  params.ell_f = 0;
  Rng rng(1);
  AmcRunResult res = RunAmc(g, 0, 1, e0, e1, params, rng);
  EXPECT_DOUBLE_EQ(res.r_f, 0.0);
  EXPECT_EQ(res.walks, 0u);
}

TEST(RunAmcTest, UnbiasedForQst) {
  // E[r_f] = q(s,t) = r_ℓ(s,t) − (1/ds + 1/dt). Average many runs.
  Graph g = testing::DenseTestGraph(12);
  const NodeId s = 0;
  const NodeId t = 7;
  const std::uint32_t ell = 6;
  // Exact q via SMM partial sums.
  TransitionOperator op(g);
  SmmIterator iter(g, &op, s, t);
  for (std::uint32_t i = 0; i < ell; ++i) iter.Advance();
  const double q_exact = iter.rb() - (1.0 / g.Degree(s) + 1.0 / g.Degree(t));

  Vector es(g.NumNodes(), 0.0);
  Vector et(g.NumNodes(), 0.0);
  es[s] = 1.0;
  et[t] = 1.0;
  AmcParams params;
  params.epsilon = 0.3;
  params.delta = 0.1;
  params.tau = 3;
  params.ell_f = ell;
  MeanVarWelford mean_of_runs;
  for (std::uint64_t rep = 0; rep < 40; ++rep) {
    Rng rng(1000 + rep);
    mean_of_runs.Add(RunAmc(g, s, t, es, et, params, rng).r_f);
  }
  EXPECT_NEAR(mean_of_runs.Mean(), q_exact, 0.03);
}

TEST(RunAmcTest, RespectsEtaStarCap) {
  Graph g = testing::DenseTestGraph(12);
  Vector es(g.NumNodes(), 0.0);
  Vector et(g.NumNodes(), 0.0);
  es[0] = 1.0;
  et[5] = 1.0;
  AmcParams params;
  params.epsilon = 0.2;
  params.delta = 0.01;
  params.tau = 5;
  params.ell_f = 8;
  Rng rng(2);
  AmcRunResult res = RunAmc(g, 0, 5, es, et, params, rng);
  // Total walk pairs over all batches < 2η* ⇒ walks < 4η*.
  EXPECT_LT(res.walks, 4 * res.eta_star);
  EXPECT_GE(res.batches, 1);
  EXPECT_LE(res.batches, params.tau);
}

TEST(RunAmcTest, EarlyStopOnLowVariance) {
  // Constant input vectors with equal-degree endpoints make every Z_k
  // exactly 0 (the s- and t-walk contributions cancel per step), so the
  // empirical variance is 0 while ψ — computed from the vector maxima —
  // stays large. Hoeffding then demands far more samples than Bernstein:
  // η* ≈ 2ψ²log(2τ/δ)/ε² vs the variance-free 6ψ log(3τ/δ)/ε, and the
  // Bernstein rule must fire batches before the η* cap.
  Graph g = gen::Complete(30);  // all degrees 29
  const double c = 29.0;        // ψ = 2(⌈2⌉+⌊2⌋)·(2c/29) = 16
  Vector sv(g.NumNodes(), c);
  Vector tv(g.NumNodes(), c);
  AmcParams params;
  params.epsilon = 0.4;
  params.delta = 0.01;
  params.tau = 6;
  params.ell_f = 4;
  Rng rng(3);
  AmcRunResult res = RunAmc(g, 0, 1, sv, tv, params, rng);
  EXPECT_DOUBLE_EQ(res.r_f, 0.0);
  EXPECT_TRUE(res.early_stop);
  EXPECT_LT(res.batches, params.tau);
  EXPECT_LT(res.walks, res.eta_star);  // the whole point of adaptivity
}

TEST(AmcEstimatorTest, WithinEpsilonHighProbability) {
  Graph g = testing::DenseTestGraph(16);
  for (double eps : {0.5, 0.2}) {
    ErOptions opt;
    opt.epsilon = eps;
    opt.delta = 0.01;
    AmcEstimator amc(g, opt);
    int failures = 0;
    const std::pair<NodeId, NodeId> pairs[] = {{0, 8}, {1, 9}, {2, 12}};
    for (auto [s, t] : pairs) {
      const double truth = testing::ExactEr(g, s, t);
      if (std::abs(amc.Estimate(s, t) - truth) > eps) ++failures;
    }
    EXPECT_EQ(failures, 0) << "eps=" << eps;
  }
}

TEST(AmcEstimatorTest, SameNodeZero) {
  // Regression: passing a temporary graph left the estimator with a
  // dangling pointer (caught by ASan); now rejected at compile time.
  Graph g = gen::Complete(8);
  AmcEstimator amc(g);
  EXPECT_DOUBLE_EQ(amc.Estimate(3, 3), 0.0);
}

TEST(AmcEstimatorTest, DeterministicPerSeedAndPair) {
  Graph g = testing::DenseTestGraph(12);
  ErOptions opt;
  opt.epsilon = 0.3;
  opt.seed = 99;
  AmcEstimator a(g, opt);
  AmcEstimator b(g, opt);
  EXPECT_DOUBLE_EQ(a.Estimate(0, 5), b.Estimate(0, 5));
  // Answer independent of any earlier queries on the same estimator.
  AmcEstimator c(g, opt);
  c.Estimate(1, 2);
  EXPECT_DOUBLE_EQ(c.Estimate(0, 5), a.Estimate(0, 5));
}

TEST(AmcEstimatorTest, FewerWalksThanTpTheory) {
  // The Remark in §3.3.2: AMC's sample count is far below TP's
  // 40ℓ³ln(8ℓ/δ)/ε² for the same ε.
  Graph g = testing::DenseTestGraph(20);
  ErOptions opt;
  opt.epsilon = 0.2;
  AmcEstimator amc(g, opt);
  QueryStats stats = amc.EstimateWithStats(0, 10);
  const double ell = stats.ell;
  const double tp_walks = 40.0 * ell * ell * ell *
                          std::log(8.0 * ell / opt.delta) /
                          (opt.epsilon * opt.epsilon);
  EXPECT_LT(static_cast<double>(stats.walks), tp_walks / 10.0);
}

}  // namespace
}  // namespace geer
