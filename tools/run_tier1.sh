#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full ctest suite.
# This is the CI entry point; it exits non-zero as soon as any stage fails.
#
# Usage: tools/run_tier1.sh [--asan] [build-dir]
#   --asan      build and test with AddressSanitizer + UBSan
#               (default build dir then becomes "build-asan")
#   build-dir   defaults to "build" (relative to the repo root)
#
# Environment:
#   JOBS        parallelism for build and ctest (default: nproc)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"

ASAN=0
BUILD_DIR=""
for arg in "$@"; do
  case "$arg" in
    --asan) ASAN=1 ;;
    -*) echo "unknown flag: $arg" >&2; exit 2 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done

CMAKE_ARGS=()
if [[ "$ASAN" == 1 ]]; then
  BUILD_DIR="${BUILD_DIR:-build-asan}"
  SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  CMAKE_ARGS+=("-DCMAKE_CXX_FLAGS=${SAN_FLAGS}"
               "-DCMAKE_EXE_LINKER_FLAGS=${SAN_FLAGS}")
else
  BUILD_DIR="${BUILD_DIR:-build}"
fi

cd "$REPO_ROOT"

echo "== tier-1: configure (${BUILD_DIR}) =="
# ${arr[@]+...} guard: expanding an empty array trips `set -u` on
# bash < 4.4 (e.g. macOS /bin/bash 3.2).
cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}

echo "== tier-1: build (-j${JOBS}) =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== tier-1: ctest (-j${JOBS}) =="
# cd instead of `ctest --test-dir`: the latter needs CTest >= 3.20 while
# the build itself accepts CMake 3.16.
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

echo "== tier-1: PASS =="
