#include "graph/weighted_io.h"

#include <cmath>
#include <cstdlib>
#include <cstdint>
#include <fstream>
#include <sstream>
#include <unordered_map>

namespace geer {
namespace {

std::optional<WeightedGraph> ParseStream(std::istream& in) {
  WeightedGraphBuilder builder;
  std::unordered_map<std::uint64_t, NodeId> remap;
  auto intern = [&remap](std::uint64_t raw) {
    auto [it, inserted] =
        remap.emplace(raw, static_cast<NodeId>(remap.size()));
    (void)inserted;
    return it->second;
  };

  std::string line;
  while (std::getline(in, line)) {
    const std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string::npos || line[first] == '#') continue;
    std::istringstream fields(line);
    std::uint64_t u_raw = 0;
    std::uint64_t v_raw = 0;
    if (!(fields >> u_raw >> v_raw)) return std::nullopt;
    double weight = 1.0;  // missing column: plain SNAP file
    std::string weight_token;
    if (fields >> weight_token) {
      // Parse via strtod so a malformed token is an error, not silently
      // zero (a failed istream extraction writes 0 since C++11).
      char* end = nullptr;
      weight = std::strtod(weight_token.c_str(), &end);
      if (end != weight_token.c_str() + weight_token.size() ||
          !std::isfinite(weight) || weight <= 0.0) {
        return std::nullopt;
      }
    }
    const NodeId u = intern(u_raw);
    const NodeId v = intern(v_raw);
    if (u == v) continue;  // endpoints interned; the loop itself dropped
    builder.AddEdge(u, v, weight);
  }
  // Interning may have seen self-loop-only nodes the builder missed.
  WeightedGraph graph = builder.Build();
  if (graph.NumNodes() >= remap.size()) return graph;
  WeightedGraphBuilder padded(static_cast<NodeId>(remap.size()));
  for (const auto& e : graph.Edges()) padded.AddEdge(e.u, e.v, e.weight);
  return padded.Build();
}

}  // namespace

std::optional<WeightedGraph> LoadWeightedEdgeList(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  return ParseStream(in);
}

std::optional<WeightedGraph> ParseWeightedEdgeList(const std::string& text) {
  std::istringstream in(text);
  return ParseStream(in);
}

bool SaveWeightedEdgeList(const WeightedGraph& graph,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << "# geer weighted edge list: " << graph.NumNodes() << " nodes, "
      << graph.NumEdges() << " edges\n";
  out.precision(17);
  for (const auto& e : graph.Edges()) {
    out << e.u << '\t' << e.v << '\t' << e.weight << '\n';
  }
  return static_cast<bool>(out);
}

}  // namespace geer
