#include "core/smm.h"

#include <gtest/gtest.h>

#include "core/ell.h"
#include "graph/generators.h"
#include "linalg/spectral.h"
#include "test_util.h"

namespace geer {
namespace {

TEST(SmmIteratorTest, IteratesMatchTransitionPowers) {
  // s*(v) after i iterations = p_i(v, s).
  Graph g = testing::TriangleWithTail();
  TransitionOperator op(g);
  SmmIterator iter(g, &op, 0, 4);
  iter.Advance();
  // p_1(v, 0) = 1/d(v) for v ∈ N(0) = {1, 2}.
  EXPECT_NEAR(iter.svec()[1], 0.5, 1e-12);
  EXPECT_NEAR(iter.svec()[2], 1.0 / 3.0, 1e-12);
  EXPECT_NEAR(iter.svec()[0], 0.0, 1e-12);
}

TEST(SmmIteratorTest, RbConvergesToTrueEr) {
  Graph g = testing::DenseTestGraph(16);
  const double truth = testing::ExactEr(g, 0, 9);
  TransitionOperator op(g);
  SmmIterator iter(g, &op, 0, 9);
  for (int i = 0; i < 400; ++i) iter.Advance();
  EXPECT_NEAR(iter.rb(), truth, 1e-9);
}

TEST(SmmIteratorTest, RbMonotoneTowardLimitOnNonBipartite) {
  // Partial sums approach r from below... not guaranteed monotone in
  // general, but the truncation error bound shrinks geometrically; check
  // the error after k iterations is ≤ C λ^k.
  Graph g = testing::DenseTestGraph(16);
  SpectralBounds sb = ComputeSpectralBounds(g);
  const double truth = testing::ExactEr(g, 2, 11);
  TransitionOperator op(g);
  SmmIterator iter(g, &op, 2, 11);
  for (int i = 0; i < 60; ++i) iter.Advance();
  const double tail_bound = std::pow(sb.lambda, 61.0) / (1.0 - sb.lambda) *
                            (1.0 / g.Degree(2) + 1.0 / g.Degree(11));
  EXPECT_LE(std::abs(iter.rb() - truth), tail_bound + 1e-9);
}

TEST(SmmIteratorTest, SpmvOpsAccumulate) {
  Graph g = gen::Complete(12);
  TransitionOperator op(g);
  SmmIterator iter(g, &op, 0, 1);
  EXPECT_EQ(iter.spmv_ops(), 0u);
  iter.Advance();
  EXPECT_GT(iter.spmv_ops(), 0u);
  const std::uint64_t after_one = iter.spmv_ops();
  iter.Advance();
  EXPECT_GT(iter.spmv_ops(), after_one);
}

TEST(SmmIteratorTest, NextIterationCostIsSupportDegreeSum) {
  Graph g = gen::Star(8);
  TransitionOperator op(g);
  SmmIterator iter(g, &op, 0, 3);  // hub and a leaf
  // supp(s*) = {0} (deg 7), supp(t*) = {3} (deg 1).
  EXPECT_EQ(iter.NextIterationCost(), 8u);
}

TEST(SmmEstimatorTest, WithinEpsilonOfTruth) {
  Graph g = testing::DenseTestGraph(20);
  for (double eps : {0.5, 0.1, 0.02}) {
    ErOptions opt;
    opt.epsilon = eps;
    SmmEstimator smm(g, opt);
    for (auto [s, t] :
         {std::pair<NodeId, NodeId>{0, 10}, {1, 5}, {15, 19}}) {
      const double truth = testing::ExactEr(g, s, t);
      // SMM is deterministic: |r − r_ℓ| ≤ ε/2 guaranteed.
      EXPECT_LE(std::abs(smm.Estimate(s, t) - truth), eps / 2 + 1e-9)
          << "eps=" << eps << " s=" << s << " t=" << t;
    }
  }
}

TEST(SmmEstimatorTest, SameNodeZero) {
  // Regression: passing a temporary graph left the estimator with a
  // dangling pointer (caught by ASan); now rejected at compile time.
  Graph g = gen::Complete(6);
  SmmEstimator smm(g);
  EXPECT_DOUBLE_EQ(smm.Estimate(4, 4), 0.0);
}

TEST(SmmEstimatorTest, PengEllRunsLonger) {
  Graph g = testing::DenseTestGraph(24);
  ErOptions refined;
  refined.epsilon = 0.1;
  ErOptions peng = refined;
  peng.use_peng_ell = true;
  SmmEstimator smm_refined(g, refined);
  SmmEstimator smm_peng(g, peng);
  // High-degree pair: refined ℓ strictly shorter (Fig. 11's effect).
  QueryStats a = smm_refined.EstimateWithStats(0, 1);
  QueryStats b = smm_peng.EstimateWithStats(0, 1);
  EXPECT_LT(a.ell, b.ell);
  EXPECT_LE(a.spmv_ops, b.spmv_ops);
  // Both still within the deterministic guarantee.
  const double truth = testing::ExactEr(g, 0, 1);
  EXPECT_LE(std::abs(a.value - truth), 0.05 + 1e-9);
  EXPECT_LE(std::abs(b.value - truth), 0.05 + 1e-9);
}

TEST(SmmEstimatorTest, FixedIterationOverride) {
  Graph g = testing::DenseTestGraph(16);
  ErOptions opt;
  opt.smm_iterations = 123;
  SmmEstimator smm(g, opt);
  QueryStats stats = smm.EstimateWithStats(0, 5);
  EXPECT_EQ(stats.ell, 123u);
  EXPECT_EQ(stats.ell_b, 123u);
}

TEST(SmmEstimatorTest, GroundTruthModeIsVeryAccurate) {
  Graph g = gen::BarabasiAlbert(60, 4, 3);
  ErOptions opt;
  opt.smm_iterations = 1000;  // the paper's ground-truth recipe
  SmmEstimator smm(g, opt);
  const double truth = testing::ExactEr(g, 5, 50);
  EXPECT_NEAR(smm.Estimate(5, 50), truth, 1e-6);
}

}  // namespace
}  // namespace geer
