#include "embed/er_embedding.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "core/exact.h"
#include "graph/generators.h"
#include "graph/weighted_generators.h"
#include "linalg/laplacian_solver.h"

namespace geer {
namespace {

TEST(ErEmbeddingTest, DimensionDerivation) {
  ErEmbeddingOptions opt;
  opt.epsilon = 0.5;
  const int k = ErEmbedding::DeriveDimensions(1000, opt);
  EXPECT_EQ(k, static_cast<int>(std::ceil(24.0 * std::log(1000.0) / 0.25)));
  opt.dimensions = 77;
  EXPECT_EQ(ErEmbedding::DeriveDimensions(1000, opt), 77);
}

TEST(ErEmbeddingTest, PairwiseWithinRelativeError) {
  Graph g = gen::BarabasiAlbert(60, 4, 3);
  ErEmbeddingOptions opt;
  opt.epsilon = 0.25;
  opt.seed = 7;
  ErEmbedding embedding(g, opt);
  ExactEstimator exact(g);
  for (auto [s, t] :
       {std::pair<NodeId, NodeId>{0, 30}, {5, 59}, {12, 13}, {7, 40}}) {
    const double truth = exact.Estimate(s, t);
    EXPECT_NEAR(embedding.PairwiseEr(s, t), truth,
                opt.epsilon * truth + 0.02)
        << "(" << s << "," << t << ")";
  }
}

TEST(ErEmbeddingTest, SelfDistanceZero) {
  Graph g = gen::Complete(10);
  ErEmbedding embedding(g, {.dimensions = 32});
  EXPECT_DOUBLE_EQ(embedding.PairwiseEr(4, 4), 0.0);
}

TEST(ErEmbeddingTest, SingleSourceMatchesPairwise) {
  Graph g = gen::ErdosRenyi(50, 200, 5);
  ErEmbedding embedding(g, {.dimensions = 64, .seed = 9});
  Vector er;
  embedding.SingleSource(17, &er);
  ASSERT_EQ(er.size(), g.NumNodes());
  EXPECT_DOUBLE_EQ(er[17], 0.0);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_NEAR(er[v], embedding.PairwiseEr(17, v), 1e-12);
  }
}

TEST(ErEmbeddingTest, TopKNearestSortedAndConsistent) {
  Graph g = gen::BarabasiAlbert(80, 3, 11);
  ErEmbedding embedding(g, {.dimensions = 48, .seed = 13});
  const auto top = embedding.TopKNearest(0, 10);
  ASSERT_EQ(top.size(), 10u);
  Vector er;
  embedding.SingleSource(0, &er);
  for (std::size_t i = 0; i < top.size(); ++i) {
    EXPECT_NE(top[i].node, 0u);
    EXPECT_NEAR(top[i].er, er[top[i].node], 1e-12);
    if (i > 0) EXPECT_GE(top[i].er, top[i - 1].er);
  }
  // Nothing outside the top-10 may beat the 10th.
  for (NodeId v = 1; v < g.NumNodes(); ++v) {
    const bool in_top =
        std::any_of(top.begin(), top.end(),
                    [v](const ErNeighbor& nb) { return nb.node == v; });
    if (!in_top) EXPECT_GE(er[v], top.back().er - 1e-12);
  }
}

TEST(ErEmbeddingTest, TopKNearestPrefersDirectNeighborsOnStarlike) {
  // On a star-with-ring, the hub's nearest nodes by ER are its spokes.
  Graph g = gen::Complete(12);
  ErEmbedding embedding(g, {.dimensions = 64, .seed = 15});
  const auto top = embedding.TopKNearest(3, 11);
  EXPECT_EQ(top.size(), 11u);  // everyone else, all at ER 2/12
  for (const auto& nb : top) EXPECT_NEAR(nb.er, 2.0 / 12.0, 0.05);
}

TEST(ErEmbeddingTest, CountLargerThanGraphClamps) {
  Graph g = gen::Complete(6);
  ErEmbedding embedding(g, {.dimensions = 16});
  EXPECT_EQ(embedding.TopKNearest(0, 100).size(), 5u);
}

TEST(ErEmbeddingTest, AllEdgeErMatchesPairwiseInEdgeOrder) {
  Graph g = gen::ErdosRenyi(40, 100, 17);
  ErEmbedding embedding(g, {.dimensions = 40, .seed = 19});
  const auto edge_er = embedding.AllEdgeEr();
  const auto edges = g.Edges();
  ASSERT_EQ(edge_er.size(), edges.size());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    EXPECT_NEAR(edge_er[e],
                embedding.PairwiseEr(edges[e].first, edges[e].second),
                1e-12);
  }
}

TEST(ErEmbeddingTest, DeterministicInSeed) {
  Graph g = gen::BarabasiAlbert(40, 3, 23);
  ErEmbedding a(g, {.dimensions = 24, .seed = 42});
  ErEmbedding b(g, {.dimensions = 24, .seed = 42});
  ErEmbedding c(g, {.dimensions = 24, .seed = 43});
  EXPECT_DOUBLE_EQ(a.PairwiseEr(1, 20), b.PairwiseEr(1, 20));
  EXPECT_NE(a.PairwiseEr(1, 20), c.PairwiseEr(1, 20));
}

TEST(ErEmbeddingTest, WeightedEmbeddingTracksWeightedOracle) {
  WeightedGraph g = gen::TriangulatedGridCircuit(5, 5, 0.5, 2.0, 25);
  ErEmbeddingOptions opt;
  opt.epsilon = 0.25;
  opt.seed = 27;
  ErEmbedding embedding(g, opt);
  WeightedLaplacianSolver oracle(g);
  for (auto [s, t] : {std::pair<NodeId, NodeId>{0, 24}, {3, 17}, {10, 11}}) {
    const double truth = oracle.EffectiveResistance(s, t);
    EXPECT_NEAR(embedding.PairwiseEr(s, t), truth,
                opt.epsilon * truth + 0.02);
  }
}

TEST(ErEmbeddingTest, WeightedUnitWeightsMatchUnweightedStatistically) {
  Graph g = gen::ErdosRenyi(40, 150, 29);
  WeightedGraph wg = FromUnweighted(g);
  ErEmbedding uw(g, {.dimensions = 256, .seed = 31});
  ErEmbedding w(wg, {.dimensions = 256, .seed = 31});
  // Same seed and unit weights: identical projection rows, identical
  // tables up to solver tolerance.
  for (auto [s, t] : {std::pair<NodeId, NodeId>{0, 20}, {7, 35}}) {
    EXPECT_NEAR(uw.PairwiseEr(s, t), w.PairwiseEr(s, t), 1e-6);
  }
}

TEST(ErEmbeddingDeathTest, MemoryBudgetEnforced) {
  Graph g = gen::Complete(64);
  ErEmbeddingOptions opt;
  opt.dimensions = 1024;
  opt.max_bytes = 1024;  // absurdly small
  EXPECT_DEATH(ErEmbedding(g, opt), "max_bytes");
}

}  // namespace
}  // namespace geer
