// Once-per-epoch spectral recomputation shared across batch/serve clones,
// with opt-in warm starting (incremental epochs). Every λ-reading
// estimator (GEER/AMC/SMM/TP/TPC) funnels its RebindGraph λ derivation
// through EpochLambdaShared when the caller attached a holder to the
// GraphEpoch: the first rebinder of an epoch runs Lanczos — warm-started
// from the previous epoch's Ritz vectors when epoch.incremental, cold
// and bit-identical to a fresh construction otherwise — and every other
// clone adopts the result. The holder outlives epochs (caller-owned), so
// it is also the vehicle that carries SpectralWarmState forward.

#ifndef GEER_CORE_SPECTRAL_EPOCH_H_
#define GEER_CORE_SPECTRAL_EPOCH_H_

#include <memory>

#include "core/epoch_shared.h"
#include "core/estimator.h"
#include "graph/weight_policy.h"
#include "linalg/spectral.h"

namespace geer {

/// One epoch's shared spectral artifacts: the bounds every adopter reads
/// plus the warm state the NEXT epoch's first rebinder will seed from.
struct EpochSpectral {
  SpectralBounds bounds;
  SpectralWarmState warm;
  bool warm_started = false;  ///< this epoch's run reused prior Ritz vectors
};

/// Creates a holder suitable for GraphEpoch::spectral. Starts empty: the
/// first epoch routed through it runs cold (recording Ritz vectors for
/// its successors when incremental).
inline std::shared_ptr<EpochShared<EpochSpectral>> MakeSharedSpectral() {
  return std::make_shared<EpochShared<EpochSpectral>>(nullptr);
}

/// λ for `graph` at `epoch`, computed at most once per epoch across every
/// caller sharing the holder. Non-incremental epochs run the exact same
/// cold computation as ComputeSpectralBoundsT (bit-identical λ);
/// incremental epochs run the warm-started, per-epoch-seeded variant and
/// may drift within the Lanczos tolerance. `warm_used`, when non-null,
/// reports whether this epoch's value was warm-started (same answer for
/// every adopter — it is a property of the epoch's single run).
template <WeightPolicy WP>
double EpochLambdaShared(EpochShared<EpochSpectral>& holder,
                         const typename WP::GraphT& graph,
                         const GraphEpoch& epoch, bool* warm_used = nullptr);

/// The λ a RebindGraph must adopt: epoch.lambda verbatim when the caller
/// precomputed it; else through epoch.spectral when a holder is attached
/// (once per epoch across every clone, warm-started when
/// epoch.incremental); else a private cold Lanczos run — the historical
/// per-worker behavior. `warm_used` (optional) reports whether the
/// holder path warm-started this epoch's value.
template <WeightPolicy WP>
double RebindLambda(const typename WP::GraphT& graph, const GraphEpoch& epoch,
                    bool* warm_used = nullptr);

extern template double EpochLambdaShared<UnitWeight>(
    EpochShared<EpochSpectral>&, const Graph&, const GraphEpoch&, bool*);
extern template double EpochLambdaShared<EdgeWeight>(
    EpochShared<EpochSpectral>&, const WeightedGraph&, const GraphEpoch&,
    bool*);
extern template double RebindLambda<UnitWeight>(const Graph&,
                                                const GraphEpoch&, bool*);
extern template double RebindLambda<EdgeWeight>(const WeightedGraph&,
                                                const GraphEpoch&, bool*);

}  // namespace geer

#endif  // GEER_CORE_SPECTRAL_EPOCH_H_
