// Fig. 4: running time vs ε for RANDOM pair queries, all datasets,
// methods GEER, AMC, SMM, TP, TPC, RP, EXACT. Prints one table per
// dataset with per-ε average query time in ms ("*" = deadline partial,
// DNF = skipped/over budget, OOM = infeasible — matching the paper's
// missing points). TP/TPC run with scaled sample constants; the extra
// "TP(x1)"/"TPC(x1)" rows extrapolate to the paper's constants.

#include <cstdio>

#include "bench/bench_common.h"
#include "eval/queries.h"
#include "eval/table.h"
#include "util/format.h"

namespace geer {
namespace {

void Run(const bench::BenchArgs& args) {
  const std::vector<std::string> methods = {"GEER", "AMC", "SMM",
                                            "TP",   "TPC", "RP", "EXACT"};
  for (const Dataset& ds : args.LoadDatasets()) {
    std::printf("== Fig.4 | %s\n", DescribeDataset(ds).c_str());
    auto queries = RandomPairs(ds.graph, args.num_queries, args.seed);

    std::vector<std::string> header = {"method"};
    for (double eps : args.epsilons) header.push_back("eps=" + FormatSig(eps, 2));
    TextTable table(header);

    for (const std::string& method : methods) {
      std::vector<std::string> row = {method};
      std::vector<std::string> extrapolated_row = {method + "(x1)"};
      bool any_scaled = false;
      for (double eps : args.epsilons) {
        ErOptions opt = args.BaseOptions(eps);
        if (bench::ProjectedOpsPerQuery(method, ds, opt) >
            args.ops_budget) {
          row.push_back("DNF");
          extrapolated_row.push_back("DNF");
          continue;
        }
        RunConfig config;
        config.deadline_seconds = args.deadline_seconds;
        config.collect_errors = false;
        MethodResult res = RunMethod(ds, method, opt, queries, {}, config);
        row.push_back(bench::Cell(res));
        if (res.sample_scale != 1.0) {
          any_scaled = true;
          extrapolated_row.push_back(bench::Cell(res, /*extrapolate=*/true));
        } else {
          extrapolated_row.push_back(row.back());
        }
      }
      table.AddRow(row);
      if (any_scaled) table.AddRow(extrapolated_row);
    }
    std::fputs(args.csv ? table.RenderCsv().c_str()
                        : table.Render().c_str(),
               stdout);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace geer

int main(int argc, char** argv) {
  auto args = geer::bench::BenchArgs::Parse(argc, argv);
  std::printf("Fig. 4 reproduction: avg running time (ms) vs epsilon, "
              "random queries (%zu per dataset, scale=%.3g, "
              "tp-scale=%.3g)\n\n",
              args.num_queries, args.scale, args.tp_scale);
  geer::Run(args);
  return 0;
}
