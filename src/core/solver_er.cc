#include "core/solver_er.h"

namespace geer {
namespace {

template <WeightPolicy WP>
typename LaplacianSolverT<WP>::Options SolverOptionsFor(
    const ErOptions& options) {
  typename LaplacianSolverT<WP>::Options sopt;
  // Solve far below the query tolerance so this can serve as ground truth.
  sopt.tolerance = 1e-12;
  sopt.max_iterations = 20000;
  (void)options;
  return sopt;
}

}  // namespace

template <WeightPolicy WP>
SolverEstimatorT<WP>::SolverEstimatorT(const GraphT& graph,
                                       ErOptions options)
    : solver_(std::make_shared<const LaplacianSolverT<WP>>(
          graph, SolverOptionsFor<WP>(options))) {
  ValidateOptions(options);
  shared_solver_ =
      std::make_shared<EpochShared<LaplacianSolverT<WP>>>(solver_);
}

template <WeightPolicy WP>
bool SolverEstimatorT<WP>::RebindGraph(const GraphT& graph,
                                       const GraphEpoch& epoch) {
  solver_ = shared_solver_->GetOrBuild(epoch.epoch, [&graph]() {
    // Solver options are derived from fixed constants (see
    // SolverOptionsFor), so the rebuild needs only the graph.
    return std::make_shared<const LaplacianSolverT<WP>>(
        graph, SolverOptionsFor<WP>(ErOptions{}));
  });
  return true;
}

template <WeightPolicy WP>
QueryStats SolverEstimatorT<WP>::EstimateWithStats(NodeId s, NodeId t) {
  QueryStats stats;
  CgStats cg;
  stats.value = solver_->EffectiveResistance(s, t, &cg);
  stats.truncated = !cg.converged && s != t;
  return stats;
}

template class SolverEstimatorT<UnitWeight>;
template class SolverEstimatorT<EdgeWeight>;

}  // namespace geer
