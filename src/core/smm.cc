#include "core/smm.h"

#include "core/ell.h"
#include "util/check.h"

namespace geer {

template <WeightPolicy WP>
SmmIteratorT<WP>::SmmIteratorT(const GraphT& graph,
                               TransitionOperatorT<WP>* op, NodeId s,
                               NodeId t)
    : graph_(&graph), op_(op), s_(s), t_(t) {
  GEER_CHECK(s < graph.NumNodes());
  GEER_CHECK(t < graph.NumNodes());
  inv_ws_ = 1.0 / WP::NodeWeight(graph, s);
  inv_wt_ = 1.0 / WP::NodeWeight(graph, t);
  s_vec_.InitOneHot(s, graph);
  t_vec_.InitOneHot(t, graph);
  // i = 0 term of Eq. (4): p_0(s,s)/w(s) + p_0(t,t)/w(t)
  //                        − p_0(s,t)/w(s) − p_0(t,s)/w(t).
  rb_ = s_vec_.values[s_] * inv_ws_ + t_vec_.values[t_] * inv_wt_ -
        s_vec_.values[t_] * inv_ws_ - t_vec_.values[s_] * inv_wt_;
}

template <WeightPolicy WP>
void SmmIteratorT<WP>::Advance() {
  spmv_ops_ += op_->ApplyAuto(&s_vec_);
  spmv_ops_ += op_->ApplyAuto(&t_vec_);
  ++iterations_;
  rb_ += s_vec_.values[s_] * inv_ws_ + t_vec_.values[t_] * inv_wt_ -
         s_vec_.values[t_] * inv_ws_ - t_vec_.values[s_] * inv_wt_;
}

template <WeightPolicy WP>
SmmEstimatorT<WP>::SmmEstimatorT(const GraphT& graph, ErOptions options)
    : graph_(&graph), options_(options), op_(graph) {
  ValidateOptions(options_);
  lambda_ = options_.lambda.has_value()
                ? *options_.lambda
                : ComputeSpectralBoundsT<WP>(graph).lambda;
}

template <WeightPolicy WP>
QueryStats SmmEstimatorT<WP>::EstimateWithStats(NodeId s, NodeId t) {
  QueryStats stats;
  if (s == t) return stats;
  const double ws = WP::NodeWeight(*graph_, s);
  const double wt = WP::NodeWeight(*graph_, t);
  std::uint32_t ell;
  if (options_.smm_iterations > 0) {
    ell = options_.smm_iterations;
  } else if (options_.use_peng_ell) {
    ell = PengEll(options_.epsilon, lambda_, options_.max_ell);
    stats.truncated = EllWasTruncated(options_.epsilon, lambda_, 1, 1,
                                      options_.max_ell, /*use_peng=*/true);
  } else {
    ell = RefinedEllWeighted(options_.epsilon, lambda_, ws, wt,
                             options_.max_ell);
    stats.truncated = EllWasTruncated(options_.epsilon, lambda_, ws, wt,
                                      options_.max_ell, /*use_peng=*/false);
  }
  SmmIteratorT<WP> iter(*graph_, &op_, s, t);
  for (std::uint32_t i = 0; i < ell; ++i) iter.Advance();
  stats.value = iter.rb();
  stats.ell = ell;
  stats.ell_b = iter.iterations();
  stats.spmv_ops = iter.spmv_ops();
  return stats;
}

template class SmmIteratorT<UnitWeight>;
template class SmmIteratorT<EdgeWeight>;
template class SmmEstimatorT<UnitWeight>;
template class SmmEstimatorT<EdgeWeight>;

}  // namespace geer
