#include "eval/ground_truth.h"

#include <atomic>
#include <thread>

#include "core/options.h"
#include "core/smm.h"
#include "linalg/laplacian_solver.h"
#include "util/check.h"

namespace geer {
namespace {

int ResolveThreads(int requested, std::size_t work_items) {
  int threads = requested > 0
                    ? requested
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (threads <= 0) threads = 1;
  if (static_cast<std::size_t>(threads) > work_items) {
    threads = static_cast<int>(work_items);
  }
  return std::max(threads, 1);
}

// Runs `fn(query_index)` over all queries with a shared work queue.
template <typename Fn>
void ParallelFor(std::size_t count, int num_threads, const Fn& fn) {
  if (count == 0) return;
  const int threads = ResolveThreads(num_threads, count);
  if (threads == 1) {
    for (std::size_t i = 0; i < count; ++i) fn(i);
    return;
  }
  std::atomic<std::size_t> next(0);
  std::vector<std::thread> pool;
  pool.reserve(static_cast<std::size_t>(threads));
  for (int w = 0; w < threads; ++w) {
    pool.emplace_back([&next, count, &fn]() {
      for (std::size_t i = next.fetch_add(1); i < count;
           i = next.fetch_add(1)) {
        fn(i);
      }
    });
  }
  for (auto& th : pool) th.join();
}

}  // namespace

std::vector<double> GroundTruthCg(const Graph& graph,
                                  const std::vector<QueryPair>& queries,
                                  int num_threads) {
  std::vector<double> truth(queries.size(), 0.0);
  LaplacianSolver::Options opt;
  opt.tolerance = 1e-12;
  opt.max_iterations = 50000;
  // One solver per worker thread (solvers hold no per-query state but
  // Solve allocates; constructing per thread keeps it simple and safe).
  ParallelFor(queries.size(), num_threads, [&](std::size_t i) {
    thread_local std::unique_ptr<LaplacianSolver> solver;
    thread_local const Graph* solver_graph = nullptr;
    if (solver_graph != &graph) {
      solver = std::make_unique<LaplacianSolver>(graph, opt);
      solver_graph = &graph;
    }
    truth[i] = solver->EffectiveResistance(queries[i].s, queries[i].t);
  });
  return truth;
}

std::vector<double> GroundTruthSmm(const Graph& graph,
                                   const std::vector<QueryPair>& queries,
                                   std::uint32_t iterations,
                                   int num_threads) {
  GEER_CHECK_GT(iterations, 0u);
  std::vector<double> truth(queries.size(), 0.0);
  ParallelFor(queries.size(), num_threads, [&](std::size_t i) {
    TransitionOperator op(graph);
    SmmIterator iter(graph, &op, queries[i].s, queries[i].t);
    for (std::uint32_t k = 0; k < iterations; ++k) iter.Advance();
    truth[i] = iter.rb();
  });
  return truth;
}

}  // namespace geer
