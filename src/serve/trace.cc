#include "serve/trace.h"

#include <cmath>

#include "rw/rng.h"

namespace geer {

std::vector<TraceEvent> MakeOpenLoopTrace(std::span<const QueryPair> queries,
                                          double qps, std::uint64_t seed) {
  std::vector<TraceEvent> trace;
  trace.reserve(queries.size());
  Rng rng(MixSeed(seed, 0x7261636521ULL));  // "race!"
  double t = 0.0;
  for (const QueryPair& q : queries) {
    if (qps > 0.0) {
      // Inverse-CDF exponential gap; 1 − u keeps the argument in (0, 1].
      t += -std::log(1.0 - rng.NextDouble()) / qps;
    }
    trace.push_back({t, q});
  }
  return trace;
}

std::vector<TraceEvent> ShuffleTracePayloads(std::span<const TraceEvent> trace,
                                             std::uint64_t seed) {
  std::vector<QueryPair> payloads;
  payloads.reserve(trace.size());
  for (const TraceEvent& e : trace) payloads.push_back(e.query);
  Rng rng(MixSeed(seed, 0x73687566ULL));  // "shuf"
  for (std::size_t i = payloads.size(); i > 1; --i) {
    const std::size_t j = rng.NextBounded(i);
    std::swap(payloads[i - 1], payloads[j]);
  }
  std::vector<TraceEvent> out(trace.begin(), trace.end());
  for (std::size_t i = 0; i < out.size(); ++i) out[i].query = payloads[i];
  return out;
}

}  // namespace geer
