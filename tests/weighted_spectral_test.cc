#include "linalg/spectral.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"
#include "graph/weighted_generators.h"

namespace geer {
namespace {

TEST(WeightedSpectralTest, UnitWeightsMatchUnweighted) {
  Graph g = gen::BarabasiAlbert(50, 3, 3);
  SpectralBounds unweighted = ComputeSpectralBounds(g);
  SpectralBounds weighted = ComputeWeightedSpectralBounds(FromUnweighted(g));
  EXPECT_NEAR(weighted.lambda2, unweighted.lambda2, 1e-8);
  EXPECT_NEAR(weighted.lambda_n, unweighted.lambda_n, 1e-8);
  EXPECT_NEAR(weighted.lambda, unweighted.lambda, 1e-8);
}

TEST(WeightedSpectralTest, LanczosMatchesDenseOracle) {
  WeightedGraph g = gen::TriangulatedGridCircuit(4, 5, 0.5, 2.0, 5);
  SpectralBounds lanczos = ComputeWeightedSpectralBounds(g);
  SpectralBounds dense = ComputeWeightedSpectralBoundsDense(g);
  EXPECT_NEAR(lanczos.lambda2, dense.lambda2, 1e-7);
  EXPECT_NEAR(lanczos.lambda_n, dense.lambda_n, 1e-7);
}

TEST(WeightedSpectralTest, NonBipartiteCircuitHasLambdaBelowOne) {
  WeightedGraph g = gen::TriangulatedGridCircuit(4, 4, 0.5, 2.0, 7);
  SpectralBounds bounds = ComputeWeightedSpectralBounds(g);
  EXPECT_LT(bounds.lambda, 1.0);
  EXPECT_GT(bounds.lambda, 0.0);
}

TEST(WeightedSpectralTest, BipartiteGridHasLambdaNMinusOne) {
  // Weights cannot cure bipartiteness: the grid's walk spectrum keeps
  // λ_n = −1 (period 2), so estimators must reject / cap on such inputs.
  WeightedGraph g = gen::GridCircuit(4, 4, 0.5, 2.0, 9);
  SpectralBounds dense = ComputeWeightedSpectralBoundsDense(g);
  EXPECT_NEAR(dense.lambda_n, -1.0, 1e-9);
}

TEST(WeightedSpectralTest, ExtremeWeightSkewSlowsMixing) {
  // A near-cut: two cliques joined by a tiny conductance — λ₂ approaches 1
  // as the bridge weakens, the weighted analogue of the barbell.
  auto barbell_lambda = [](double bridge_conductance) {
    WeightedGraphBuilder b;
    for (NodeId u = 0; u < 6; ++u) {
      for (NodeId v = u + 1; v < 6; ++v) {
        b.AddEdge(u, v, 1.0);           // clique A
        b.AddEdge(u + 6, v + 6, 1.0);   // clique B
      }
    }
    b.AddEdge(0, 6, bridge_conductance);
    return ComputeWeightedSpectralBoundsDense(b.Build()).lambda2;
  };
  const double strong = barbell_lambda(1.0);
  const double weak = barbell_lambda(0.01);
  EXPECT_GT(weak, strong);
  EXPECT_GT(weak, 0.99);
}

}  // namespace
}  // namespace geer
