// Fig. 7: actual average absolute error vs ε for edge queries, methods
// GEER, AMC, SMM, MC2, HAY.

#include <cstdio>

#include "bench/bench_common.h"
#include "eval/ground_truth.h"
#include "eval/queries.h"
#include "eval/table.h"
#include "util/format.h"

namespace geer {
namespace {

void Run(const bench::BenchArgs& args) {
  const std::vector<std::string> methods = {"GEER", "AMC", "SMM", "MC2",
                                            "HAY"};
  for (const Dataset& ds : args.LoadDatasets()) {
    std::printf("== Fig.7 | %s\n", DescribeDataset(ds).c_str());
    auto queries = RandomEdges(ds.graph, args.num_queries, args.seed + 1);
    auto truth = GroundTruthCg(ds.graph, queries);

    std::vector<std::string> header = {"method"};
    for (double eps : args.epsilons) {
      header.push_back("eps=" + FormatSig(eps, 2));
    }
    TextTable table(header);
    for (const std::string& method : methods) {
      std::vector<std::string> row = {method};
      for (double eps : args.epsilons) {
        ErOptions opt = args.BaseOptions(eps);
        opt.mc2_gamma_lower = eps;
        if (bench::ProjectedOpsPerQuery(method, ds, opt) >
            args.ops_budget) {
          row.push_back("DNF");
          continue;
        }
        RunConfig config;
        config.deadline_seconds = args.deadline_seconds;
        MethodResult res = RunMethod(ds, method, opt, queries, truth,
                                     config);
        if (!res.feasible) {
          row.push_back("OOM");
        } else if (res.queries_answered == 0) {
          row.push_back("DNF");
        } else {
          std::string cell = FormatSig(res.avg_abs_error, 3);
          if (res.avg_abs_error > eps) cell += "!";
          if (!res.completed) cell += "*";
          row.push_back(cell);
        }
      }
      table.AddRow(row);
    }
    std::fputs(args.csv ? table.RenderCsv().c_str()
                        : table.Render().c_str(),
               stdout);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace geer

int main(int argc, char** argv) {
  auto args = geer::bench::BenchArgs::Parse(argc, argv);
  std::printf("Fig. 7 reproduction: avg absolute error vs epsilon, edge "
              "queries ('!' marks error above the eps threshold)\n\n");
  geer::Run(args);
  return 0;
}
