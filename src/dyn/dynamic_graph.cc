#include "dyn/dynamic_graph.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "graph/builder.h"
#include "util/check.h"

namespace geer {
namespace {

Edge Canonical(NodeId u, NodeId v) {
  return u < v ? Edge{u, v} : Edge{v, u};
}

}  // namespace

template <WeightPolicy WP>
DynamicGraphT<WP>::DynamicGraphT(GraphT initial) {
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->graph = std::make_shared<const GraphT>(std::move(initial));
  pending_num_nodes_ = snapshot->graph->NumNodes();
  published_ = std::move(snapshot);
}

template <WeightPolicy WP>
double DynamicGraphT<WP>::LookupPending(NodeId u, NodeId v) const {
  const auto it = pending_.find(Canonical(u, v));
  if (it != pending_.end()) {
    return it->second.has_value() ? *it->second : 0.0;
  }
  const GraphT& graph = *published_->graph;
  if (u >= graph.NumNodes() || v >= graph.NumNodes()) return 0.0;
  return WP::EdgeConductance(graph, u, v);
}

template <WeightPolicy WP>
bool DynamicGraphT<WP>::HasEdge(NodeId u, NodeId v) const {
  return u != v && LookupPending(u, v) > 0.0;
}

template <WeightPolicy WP>
double DynamicGraphT<WP>::PendingWeight(NodeId u, NodeId v) const {
  return u == v ? 0.0 : LookupPending(u, v);
}

template <WeightPolicy WP>
void DynamicGraphT<WP>::InsertEdge(NodeId u, NodeId v, double weight) {
  GEER_CHECK(u != v) << "self-loops are not representable";
  GEER_CHECK(std::isfinite(weight) && weight > 0.0)
      << "edge weight must be positive and finite, got " << weight;
  if constexpr (!WP::kWeighted) {
    GEER_CHECK_EQ(weight, 1.0) << "unit-weight graphs take weight 1 only";
  }
  GEER_CHECK(!HasEdge(u, v))
      << "InsertEdge(" << u << ", " << v << "): edge already present";
  pending_num_nodes_ = std::max(pending_num_nodes_,
                                static_cast<NodeId>(std::max(u, v) + 1));
  pending_[Canonical(u, v)] = weight;
  log_.push_back({EdgeUpdateKind::kInsert, u, v, weight});
}

template <WeightPolicy WP>
void DynamicGraphT<WP>::DeleteEdge(NodeId u, NodeId v) {
  GEER_CHECK(HasEdge(u, v))
      << "DeleteEdge(" << u << ", " << v << "): edge not present";
  const Edge key = Canonical(u, v);
  const GraphT& graph = *published_->graph;
  const bool in_snapshot = key.second < graph.NumNodes() &&
                           WP::EdgeConductance(graph, key.first,
                                               key.second) > 0.0;
  if (in_snapshot) {
    pending_[key] = std::nullopt;  // row rewrite drops the edge
  } else {
    pending_.erase(key);  // inserted-then-deleted: net no-op
  }
  log_.push_back({EdgeUpdateKind::kDelete, u, v, 0.0});
}

template <WeightPolicy WP>
void DynamicGraphT<WP>::SetWeight(NodeId u, NodeId v, double weight) {
  GEER_CHECK(std::isfinite(weight) && weight > 0.0)
      << "edge weight must be positive and finite, got " << weight;
  GEER_CHECK(HasEdge(u, v))
      << "SetWeight(" << u << ", " << v << "): edge not present";
  if constexpr (!WP::kWeighted) {
    // The only representable weight is 1, which the edge already has.
    GEER_CHECK_EQ(weight, 1.0) << "unit-weight graphs take weight 1 only";
    log_.push_back({EdgeUpdateKind::kSetWeight, u, v, weight});
    return;
  }
  pending_[Canonical(u, v)] = weight;
  log_.push_back({EdgeUpdateKind::kSetWeight, u, v, weight});
}

template <WeightPolicy WP>
void DynamicGraphT<WP>::Apply(const EdgeUpdate& update) {
  switch (update.kind) {
    case EdgeUpdateKind::kInsert:
      InsertEdge(update.u, update.v, update.weight);
      break;
    case EdgeUpdateKind::kDelete:
      DeleteEdge(update.u, update.v);
      break;
    case EdgeUpdateKind::kSetWeight:
      SetWeight(update.u, update.v, update.weight);
      break;
  }
}

template <WeightPolicy WP>
std::shared_ptr<const DynSnapshotT<WP>> DynamicGraphT<WP>::Current() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_;
}

template <WeightPolicy WP>
std::uint64_t DynamicGraphT<WP>::Epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return published_->epoch;
}

template <WeightPolicy WP>
std::shared_ptr<const DynSnapshotT<WP>> DynamicGraphT<WP>::Commit() {
  const GraphT& old = *published_->graph;
  const NodeId old_n = old.NumNodes();
  const NodeId new_n = pending_num_nodes_;
  if (pending_.empty() && new_n == old_n) {
    // Nothing changed a row or the node count; fold any collapsed log
    // entries (insert-then-delete pairs) away so they are not counted
    // against a later commit.
    committed_log_size_ = log_.size();
    std::lock_guard<std::mutex> lock(mu_);
    return published_;
  }
  // Note: pending_ may be empty here with new_n > old_n (an inserted
  // edge to a fresh node was deleted again) — the commit then publishes
  // the pure node growth, keeping Commit() ≡ BuildFromScratch().
  const auto& old_offsets = old.Offsets();
  const auto& old_adj = old.NeighborArray();

  // Per-row delta of every touched vertex: (neighbor, override) with
  // override = new weight or nullopt for deletion. Both endpoints of a
  // changed edge are touched by construction.
  struct RowDelta {
    std::vector<std::pair<NodeId, Override>> ops;  // sorted by neighbor
    std::int64_t degree_delta = 0;
  };
  std::map<NodeId, RowDelta> deltas;
  for (const auto& [edge, override_w] : pending_) {
    const auto [u, v] = edge;
    const bool in_old =
        v < old_n && WP::EdgeConductance(old, u, v) > 0.0;
    std::int64_t degree_delta = 0;
    if (!override_w.has_value()) {
      GEER_DCHECK(in_old);
      degree_delta = -1;
    } else if (!in_old) {
      degree_delta = +1;
    }  // else: weight overwrite, degree unchanged
    deltas[u].ops.emplace_back(v, override_w);
    deltas[u].degree_delta += degree_delta;
    deltas[v].ops.emplace_back(u, override_w);
    deltas[v].degree_delta += degree_delta;
  }
  std::vector<NodeId> touched;
  touched.reserve(deltas.size());
  for (auto& [vertex, delta] : deltas) {
    std::sort(delta.ops.begin(), delta.ops.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    touched.push_back(vertex);
  }

  // New offsets in one prefix pass: untouched rows keep their old degree,
  // touched rows apply their delta.
  std::vector<std::uint64_t> offsets(static_cast<std::size_t>(new_n) + 1, 0);
  {
    auto delta_it = deltas.begin();
    for (NodeId v = 0; v < new_n; ++v) {
      std::int64_t degree =
          v < old_n
              ? static_cast<std::int64_t>(old_offsets[v + 1] - old_offsets[v])
              : 0;
      if (delta_it != deltas.end() && delta_it->first == v) {
        degree += delta_it->second.degree_delta;
        ++delta_it;
      }
      GEER_DCHECK(degree >= 0);
      offsets[v + 1] = offsets[v] + static_cast<std::uint64_t>(degree);
    }
  }
  const std::uint64_t new_arcs = offsets[new_n];

  std::vector<NodeId> neighbors(new_arcs);
  std::vector<double> weights;
  if constexpr (WP::kWeighted) weights.resize(new_arcs);

  // Assemble rows: block-copy maximal runs of untouched rows (their new
  // offsets are the old ones plus a constant shift, so one copy moves
  // the whole run's arcs), merge each touched row against its delta.
  auto copy_untouched_run = [&](NodeId first, NodeId last) {
    if (first >= last) return;
    const std::uint64_t src_begin = old_offsets[first];
    const std::uint64_t src_end = old_offsets[last];
    std::copy(old_adj.begin() + static_cast<std::ptrdiff_t>(src_begin),
              old_adj.begin() + static_cast<std::ptrdiff_t>(src_end),
              neighbors.begin() + static_cast<std::ptrdiff_t>(offsets[first]));
    if constexpr (WP::kWeighted) {
      const auto& old_weights = old.WeightArray();
      std::copy(
          old_weights.begin() + static_cast<std::ptrdiff_t>(src_begin),
          old_weights.begin() + static_cast<std::ptrdiff_t>(src_end),
          weights.begin() + static_cast<std::ptrdiff_t>(offsets[first]));
    }
  };
  auto merge_touched_row = [&](NodeId vertex, const RowDelta& delta) {
    std::uint64_t out = offsets[vertex];
    auto emit = [&](NodeId neighbor, [[maybe_unused]] double weight) {
      neighbors[out] = neighbor;
      if constexpr (WP::kWeighted) weights[out] = weight;
      ++out;
    };
    const std::uint64_t row_begin =
        vertex < old_n ? old_offsets[vertex] : old_adj.size();
    const std::uint64_t row_end =
        vertex < old_n ? old_offsets[vertex + 1] : old_adj.size();
    std::uint64_t k = row_begin;
    std::size_t d = 0;
    while (k < row_end || d < delta.ops.size()) {
      if (d == delta.ops.size() ||
          (k < row_end && old_adj[k] < delta.ops[d].first)) {
        // Unchanged arc.
        double w = 1.0;
        if constexpr (WP::kWeighted) w = old.WeightArray()[k];
        emit(old_adj[k], w);
        ++k;
        continue;
      }
      if (k < row_end && old_adj[k] == delta.ops[d].first) {
        // Deletion (skip the old arc) or weight overwrite.
        if (delta.ops[d].second.has_value()) {
          emit(delta.ops[d].first, *delta.ops[d].second);
        }
        ++k;
        ++d;
        continue;
      }
      // Insertion of an arc absent from the old row.
      GEER_DCHECK(delta.ops[d].second.has_value());
      emit(delta.ops[d].first, *delta.ops[d].second);
      ++d;
    }
    GEER_DCHECK(out == offsets[vertex + 1]);
  };

  NodeId run_start = 0;
  for (const auto& [vertex, delta] : deltas) {
    copy_untouched_run(run_start, std::min(vertex, old_n));
    merge_touched_row(vertex, delta);
    run_start = vertex + 1;
  }
  copy_untouched_run(std::min(run_start, old_n), old_n);
  // Rows in [old_n, new_n) without a delta are new isolated nodes —
  // empty by construction of `offsets`.

  auto make_graph = [&]() {
    if constexpr (WP::kWeighted) {
      return GraphT(std::move(offsets), std::move(neighbors),
                    std::move(weights));
    } else {
      return GraphT(std::move(offsets), std::move(neighbors));
    }
  };
  auto snapshot = std::make_shared<Snapshot>();
  snapshot->epoch = published_->epoch + 1;
  snapshot->graph = std::make_shared<const GraphT>(make_graph());
  snapshot->touched = std::move(touched);
  snapshot->resized = new_n > old_n;
  snapshot->num_updates = log_.size() - committed_log_size_;

  pending_.clear();
  committed_log_size_ = log_.size();
  std::lock_guard<std::mutex> lock(mu_);
  published_ = snapshot;
  return snapshot;
}

template <WeightPolicy WP>
typename WP::GraphT DynamicGraphT<WP>::BuildFromScratch() const {
  const GraphT& old = *published_->graph;
  auto overridden = [&](NodeId u, NodeId v) {
    return pending_.find(Canonical(u, v)) != pending_.end();
  };
  if constexpr (WP::kWeighted) {
    WeightedGraphBuilder builder(pending_num_nodes_);
    for (const WeightedEdge& e : old.Edges()) {
      if (!overridden(e.u, e.v)) builder.AddEdge(e.u, e.v, e.weight);
    }
    for (const auto& [edge, override_w] : pending_) {
      if (override_w.has_value()) {
        builder.AddEdge(edge.first, edge.second, *override_w);
      }
    }
    return builder.Build();
  } else {
    GraphBuilder builder(pending_num_nodes_);
    for (const Edge& e : old.Edges()) {
      if (!overridden(e.first, e.second)) builder.AddEdge(e.first, e.second);
    }
    for (const auto& [edge, override_w] : pending_) {
      if (override_w.has_value()) builder.AddEdge(edge.first, edge.second);
    }
    return builder.Build();
  }
}

template <WeightPolicy WP>
std::vector<EdgeUpdate> UpdateGeneratorT<WP>::NextBatch(std::size_t count) {
  std::vector<EdgeUpdate> batch;
  batch.reserve(count);
  const NodeId n = graph_->NumNodes();
  GEER_CHECK_GE(n, 2u) << "update generation needs at least two nodes";
  // Batch-local view of edges this stream owns, so a batch is valid when
  // applied in order even though nothing is applied while generating.
  std::vector<Edge> inserted = inserted_;
  auto in_batch = [&batch](NodeId u, NodeId v) {
    for (const EdgeUpdate& op : batch) {
      if (Canonical(op.u, op.v) == Canonical(u, v)) return true;
    }
    return false;
  };
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t roll = rng_.NextBounded(4);
    if (!inserted.empty() && roll == 1) {
      // Delete a generator-owned edge: original edges are never removed,
      // so connectivity is preserved.
      const std::size_t pick = rng_.NextBounded(inserted.size());
      const Edge e = inserted[pick];
      inserted.erase(inserted.begin() + static_cast<std::ptrdiff_t>(pick));
      batch.push_back({EdgeUpdateKind::kDelete, e.first, e.second, 0.0});
      continue;
    }
    if constexpr (WP::kWeighted) {
      if (!inserted.empty() && roll == 2) {
        const Edge e = inserted[rng_.NextBounded(inserted.size())];
        const double w = 0.25 + 4.0 * rng_.NextDouble();
        batch.push_back({EdgeUpdateKind::kSetWeight, e.first, e.second, w});
        continue;
      }
    }
    // Insert a fresh non-edge (bounded retry; dense graphs may fail to
    // find one, in which case the batch just comes back shorter).
    bool placed = false;
    for (int attempt = 0; attempt < 64 && !placed; ++attempt) {
      const NodeId u = static_cast<NodeId>(rng_.NextBounded(n));
      const NodeId v = static_cast<NodeId>(rng_.NextBounded(n));
      if (u == v || graph_->HasEdge(u, v) || in_batch(u, v)) continue;
      double w = 1.0;
      if constexpr (WP::kWeighted) w = 0.25 + 4.0 * rng_.NextDouble();
      batch.push_back({EdgeUpdateKind::kInsert, u, v, w});
      inserted.push_back(Canonical(u, v));
      placed = true;
    }
  }
  inserted_ = std::move(inserted);
  return batch;
}

template class DynamicGraphT<UnitWeight>;
template class DynamicGraphT<EdgeWeight>;
template class UpdateGeneratorT<UnitWeight>;
template class UpdateGeneratorT<EdgeWeight>;

}  // namespace geer
