#include "rw/wilson.h"

#include "rw/walker.h"

namespace geer {

SpanningTree SampleUniformSpanningTree(const Graph& graph, NodeId root,
                                       Rng& rng) {
  const Walker walker(graph);
  return SampleSpanningTree(walker, root, rng);
}

}  // namespace geer
