// TPC baseline [Peng et al., KDD'21]: the collision refinement of TP.
// Each length-i probability in Eq. (4) is expressed through two
// half-length walk populations using reversibility
// (p_b(v,x) = w(x) p_b(x,v)/w(v) with a = ⌈i/2⌉, b = ⌊i/2⌋, a + b = i):
//
//   p_i(x,y)/w(y) = Σ_v p_a(x,v) · p_b(y,v) / w(v),
//
// estimated by the collision statistic Σ_v cntA(v)·cntB(v)/w(v) / N².
// The per-length sample count is 40000·(ℓ√(ℓβ_i)/ε + ℓ³β_i^{3/2}/ε²)
// where β_i ≥ max{Σ_v p_i(s,v)²/w(v), Σ_v p_i(t,v)²/w(v)} is unknown in
// practice (paper §2.3.2); we use the documented heuristic
//   β_i = max(1/(2W), 2^{-i}·max(1/w(s), 1/w(t)))
// which interpolates the i=0 value toward the stationary limit 1/(2W),
// and options.tpc_scale rescales the constant. With heuristic β the
// ε-guarantee is forfeited — exactly the caveat the paper states.
//
// Perf + batching: every cached walk is content-addressed — walk k of
// the (source, side) population steps through its own RNG stream seeded
// from (seed, source, side, k) — so a population's first n endpoints at
// length L are a pure function of (seed, source, side, n, L), never of
// which query (or thread) asked first. Walks are still EXTENDED in place
// as the half-length grows (the PR-2 perf win: a query costs O(Σ_i η_i)
// steps, not O(Σ_i η_i·i)), and a query group sharing an endpoint on
// EITHER side additionally shares that key's A/B populations: the group
// advances in lockstep over i, each query colliding its own other-side
// populations against the shared prefix it would have simulated
// serially. The cross collision always pairs A of the smaller endpoint
// with B of the larger, so Estimate(s, t) ≡ Estimate(t, s) bitwise. The
// A and B sides stay mutually independent, which is all the collision
// statistic's unbiasedness needs. Weight-generic over
// graph/weight_policy.h.

#ifndef GEER_CORE_TPC_H_
#define GEER_CORE_TPC_H_

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "core/estimator.h"
#include "core/options.h"
#include "graph/weight_policy.h"
#include "rw/rng.h"
#include "rw/walker_policy.h"
#include "util/lru_byte_cache.h"
#include "util/visit_filter.h"

namespace geer {

/// Cross-batch session state for TPC (ErEstimator::EnableSessionCache):
/// per-(node, side) walk populations that RECORD each walk's endpoint at
/// every half-length as they extend, so later batches can collide any
/// (length, walk-count) prefix without re-simulating — the cross-batch
/// generalization of the in-place extension the one-shot path uses.
/// Content-addressed streams (walk k of a population owns
/// Rng(MixSeed(stream_base, k))) make every recorded endpoint a pure
/// function of (seed, node, side, k, length), so retained populations
/// never change answer values. LRU over (node, side) under a byte
/// budget (LruByteCache admission layer), enforced between groups
/// (Reaccount) so pointers handed out during a group stay valid. Pinned
/// landmark populations are exempt from eviction.
template <WeightPolicy WP>
class TpcSessionCacheT {
 public:
  struct Population {
    NodeId node = 0;
    std::uint64_t side = 0;
    std::uint64_t stream_base = 0;
    /// ends_at[len][k]: endpoint of walk k at length len (len 0 = node).
    /// Row len holds exactly the walks whose recorded length is ≥ len,
    /// which is always a prefix of the walk index space.
    std::vector<std::vector<NodeId>> ends_at;
    std::vector<Rng> rngs;                 ///< live stream per walk
    std::vector<std::uint32_t> cur_len;    ///< recorded length per walk
    /// Every node the walks stepped FROM (the source included; live
    /// endpoints excluded — their rows feed future extensions, which
    /// read the new graph either way). On an epoch swap the population
    /// stays valid iff this set is disjoint from epoch.touched.
    VisitFilter visits;
    std::size_t bytes = 0;
  };

  /// `budget_bytes` = 0 picks the 64 MB default.
  explicit TpcSessionCacheT(std::size_t budget_bytes);

  /// The population for (node, side), created empty on first use; bumped
  /// to most recently used (counts a hit or a miss). The pointer stays
  /// valid until Reaccount(). `pinned` marks the population budget-exempt
  /// (landmarks).
  Population* GetOrCreate(NodeId node, std::uint64_t side,
                          std::uint64_t stream_base, bool pinned = false);

  /// Re-accounts the byte usage of exactly the populations a group used
  /// (duplicates are fine — the update is idempotent) and evicts the
  /// least recently used unpinned populations beyond the budget.
  /// O(grown), not O(cache).
  void Reaccount(std::span<Population* const> grown);

  void Clear() { cache_.Clear(); }

  /// Removes every population (pinned included) matching
  /// pred(key, population) — the epoch-swap selective-invalidation hook.
  /// Returns the number removed.
  template <typename Pred>
  std::size_t EvictIf(Pred&& pred) {
    return cache_.EvictIf(std::forward<Pred>(pred));
  }

  std::size_t num_populations() const { return cache_.size(); }
  std::size_t bytes_retained() const { return cache_.bytes(); }
  CacheStats stats() const { return cache_.stats(); }

 private:
  static std::uint64_t Key(NodeId node, std::uint64_t side) {
    return (static_cast<std::uint64_t>(node) << 1) | (side & 1);
  }

  LruByteCache<std::uint64_t, Population> cache_;
};

template <WeightPolicy WP>
class TpcEstimatorT : public ErEstimator {
 public:
  using GraphT = typename WP::GraphT;

  explicit TpcEstimatorT(const GraphT& graph, ErOptions options = {});
  // Stores a pointer to `graph`; a temporary would dangle.
  explicit TpcEstimatorT(GraphT&&, ErOptions = {}) = delete;

  std::string Name() const override {
    return std::string(WP::kNamePrefix) + "TPC";
  }
  QueryStats EstimateWithStats(NodeId s, NodeId t) override;

  /// Shares the key-side walk populations across consecutive queries
  /// with a common endpoint — on EITHER side (see the header comment).
  std::size_t EstimateBatch(std::span<const QueryPair> queries,
                            std::span<QueryStats> stats,
                            const BatchContext& context = {}) override;
  BatchPlan PlanBatch(std::span<const QueryPair> queries) const override {
    return BatchPlan::GroupByEndpoint(queries);
  }
  bool SharesBatchWork() const override { return true; }
  std::unique_ptr<ErEstimator> CloneForBatch() const override {
    ErOptions opt = options_;
    opt.lambda = lambda_;  // clones never re-run Lanczos
    return std::make_unique<TpcEstimatorT<WP>>(*graph_, opt);
  }

  /// Retains per-(node, side) walk populations across EstimateBatch
  /// calls — the serving layer's session state. Retained walks never
  /// change answer values, only the steps charged.
  void EnableSessionCache(std::size_t budget_bytes = 0) override {
    session_ = std::make_unique<TpcSessionCacheT<WP>>(budget_bytes);
  }
  void ClearSessionCache() override {
    if (session_ != nullptr) session_->Clear();
  }
  bool SessionCacheEnabled() const override { return session_ != nullptr; }
  CacheStats SessionCacheStats() const override {
    return session_ != nullptr ? session_->stats() : CacheStats{};
  }

  /// Pins A/B walk populations for the landmarks in the session cache
  /// (enabling it if off), advanced to the full per-length schedule at
  /// the landmark's own β. Queries extend them in place if they need
  /// more walks — content-addressed streams keep values unchanged.
  std::size_t WarmLandmarks(std::span<const NodeId> landmarks) override;

  /// Dynamic-graph hook: repoints at the new snapshot, rebuilds the walk
  /// sampler, and re-derives λ (through epoch.spectral when attached —
  /// warm-started when epoch.incremental). Session populations are
  /// invalidated SELECTIVELY via their recorded visit sets: populations
  /// are prefix-pure (recorded snapshots stay valid at any (length,
  /// walk-count) prefix even when λ changes the schedule — the schedule
  /// only decides how far queries read or extend), so only populations
  /// whose walks stepped from a touched row are evicted. A resize still
  /// flushes wholesale.
  using ErEstimator::RebindGraph;
  bool RebindGraph(const GraphT& graph, const GraphEpoch& epoch) override;

  std::uint64_t IncrementalRebinds() const override {
    return incremental_rebinds_.load(std::memory_order_relaxed);
  }

  double lambda() const { return lambda_; }

  /// The heuristic β_i used for the sample-count formula.
  double BetaHeuristic(std::uint32_t i, NodeId s, NodeId t) const;

  /// Walks per population for length i (after scaling).
  std::uint64_t WalksForLength(std::uint32_t i, std::uint32_t ell, NodeId s,
                               NodeId t) const;

 private:
  /// A lazily grown walk population from one (source, side): walk k owns
  /// stream Rng(MixSeed(stream_base, k)), its current endpoint and
  /// length. Prefixes are content-addressed (see the header comment).
  struct Population {
    NodeId source = 0;
    std::uint64_t stream_base = 0;
    std::vector<NodeId> ends;
    std::vector<std::uint32_t> lengths;
    std::vector<Rng> rngs;
  };

  using SessionPopulation = typename TpcSessionCacheT<WP>::Population;

  /// A population in either storage mode: a group-local one-shot
  /// Population (endpoints in place, O(η) memory) or a session
  /// population (per-length endpoint snapshots, reusable across
  /// batches). Both expose Advance + the endpoint prefix at a length.
  struct PopHandle {
    Population* local = nullptr;
    SessionPopulation* session = nullptr;
  };

  /// side: 0 = A (length ⌈i/2⌉), 1 = B (length ⌊i/2⌋).
  Population MakePopulation(NodeId source, std::uint64_t side) const;

  /// Brings walks [0, n_walks) of `pop` to at least `length` (spawning
  /// missing walks, extending short ones from their own streams),
  /// charging the work to `stats`. Walks beyond n_walks are left as-is.
  void AdvancePopulation(Population* pop, std::uint32_t length,
                         std::uint64_t n_walks, QueryStats* stats);

  /// Session analogue of AdvancePopulation: extends walks one step at a
  /// time (stream-identical), recording the endpoint at every length.
  /// Already-recorded (length, walk) cells cost nothing.
  void AdvanceSessionPopulation(SessionPopulation* pop, std::uint32_t length,
                                std::uint64_t n_walks, QueryStats* stats);

  void Advance(const PopHandle& pop, std::uint32_t length,
               std::uint64_t n_walks, QueryStats* stats);

  /// First n endpoints of `pop` at `length` (the caller advanced it).
  std::span<const NodeId> Ends(const PopHandle& pop, std::uint32_t length,
                               std::uint64_t n) const;

  /// Collision statistic Σ_v cntA(v)·cntB(v)/w(v) / n² between two
  /// independent endpoint prefixes (spans of equal length n).
  double Collide(std::span<const NodeId> a_ends,
                 std::span<const NodeId> b_ends);

  /// Answers a run of queries sharing endpoint `key` (on either side) in
  /// lockstep over the length i, sharing the key-side A/B populations.
  /// The cross collision pairs A of the smaller endpoint with B of the
  /// larger, so the value is independent of which endpoint is the key
  /// and Estimate(s, t) ≡ Estimate(t, s) bitwise. Shared-side cost is
  /// charged to the first live query of the run.
  void EstimateKeyGroup(NodeId key, std::span<const QueryPair> queries,
                        std::span<QueryStats> stats);

  std::uint64_t StreamBase(NodeId node, std::uint64_t side) const;
  bool IsLandmark(NodeId v) const {
    return v < is_landmark_.size() && is_landmark_[v] != 0;
  }

  const GraphT* graph_;
  ErOptions options_;
  double lambda_;
  WalkerFor<WP> walker_;
  std::unique_ptr<TpcSessionCacheT<WP>> session_;
  // Scratch: endpoint histograms with touched-lists, reused across calls.
  std::vector<std::uint32_t> count_a_;
  std::vector<std::uint32_t> count_b_;
  std::vector<NodeId> touched_;
  std::vector<char> is_landmark_;
  // RebindGraph calls that reused previous-epoch state (warm λ and/or
  // selective session retention). Atomic: serve workers may read the
  // metric while another thread rebinds.
  std::atomic<std::uint64_t> incremental_rebinds_{0};
};

/// The two stacks, by their historical names.
using TpcEstimator = TpcEstimatorT<UnitWeight>;
using WeightedTpcEstimator = TpcEstimatorT<EdgeWeight>;
using TpcSessionCache = TpcSessionCacheT<UnitWeight>;
using WeightedTpcSessionCache = TpcSessionCacheT<EdgeWeight>;

extern template class TpcSessionCacheT<UnitWeight>;
extern template class TpcSessionCacheT<EdgeWeight>;
extern template class TpcEstimatorT<UnitWeight>;
extern template class TpcEstimatorT<EdgeWeight>;

}  // namespace geer

#endif  // GEER_CORE_TPC_H_
