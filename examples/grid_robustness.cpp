// Electric-network robustness analysis (the paper's power-grid
// motivation): model a transmission grid, score every line by its
// spanning-edge centrality r(e) — a line with r(e) ≈ 1 is a near-bridge
// whose loss disconnects or severely stresses the network — and compare
// the network's Kirchhoff-index degradation when removing the most vs
// least critical line.
//
//   ./examples/grid_robustness

#include <algorithm>
#include <cstdio>
#include <vector>

#include "core/geer.h"
#include "core/solver_er.h"
#include "graph/algorithms.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "linalg/spectral.h"

namespace {

// Sampled Kirchhoff-index proxy: mean r(s,t) over fixed probe pairs.
double KirchhoffProxy(const geer::Graph& g) {
  geer::SolverEstimator cg(g);
  double total = 0.0;
  int count = 0;
  for (geer::NodeId s = 0; s < g.NumNodes(); s += g.NumNodes() / 8 + 1) {
    for (geer::NodeId t = s + 3; t < g.NumNodes();
         t += g.NumNodes() / 8 + 1) {
      total += cg.Estimate(s, t);
      ++count;
    }
  }
  return total / count;
}

}  // namespace

int main() {
  using namespace geer;

  // Grid backbone + a few long-distance interconnects, made non-bipartite
  // (real grids have odd cycles; the 4-neighbor lattice alone does not).
  Graph base = gen::Grid(12, 12);
  GraphBuilder builder(base.NumNodes());
  builder.AddEdges(base.Edges());
  builder.AddEdge(0, 143);    // interconnects
  builder.AddEdge(11, 132);
  builder.AddEdge(5, 77);
  builder.AddEdge(60, 83);
  Graph grid = builder.Build();
  if (IsBipartite(grid)) grid = EnsureNonBipartite(grid);
  std::printf("grid: n=%u lines=%llu\n", grid.NumNodes(),
              static_cast<unsigned long long>(grid.NumEdges()));

  SpectralBounds spectral = ComputeSpectralBounds(grid);
  ErOptions opt;
  opt.epsilon = 0.05;
  opt.lambda = spectral.lambda;
  GeerEstimator geer(grid, opt);

  // Line criticality = spanning-edge centrality r(e).
  std::vector<Edge> lines = grid.Edges();
  std::vector<std::pair<double, std::size_t>> criticality;
  for (std::size_t e = 0; e < lines.size(); ++e) {
    criticality.emplace_back(
        geer.Estimate(lines[e].first, lines[e].second), e);
  }
  std::sort(criticality.rbegin(), criticality.rend());
  std::printf("most critical lines (r(e) -> 1 means near-bridge):\n");
  for (int i = 0; i < 5; ++i) {
    const auto& [r, e] = criticality[i];
    std::printf("  (%u,%u)  r=%.4f\n", lines[e].first, lines[e].second, r);
  }

  // Contingency analysis: drop the most / least critical line (if the
  // network stays connected) and measure the Kirchhoff-proxy increase.
  const double baseline = KirchhoffProxy(grid);
  auto drop_line = [&](std::size_t skip) {
    GraphBuilder b(grid.NumNodes());
    for (std::size_t e = 0; e < lines.size(); ++e) {
      if (e != skip) b.AddEdge(lines[e].first, lines[e].second);
    }
    return b.Build();
  };
  std::size_t worst_removable = criticality.front().second;
  for (const auto& [r, e] : criticality) {
    Graph without = drop_line(e);
    if (IsConnected(without)) {
      worst_removable = e;
      break;
    }
  }
  Graph without_worst = drop_line(worst_removable);
  Graph without_best = drop_line(criticality.back().second);
  const double degraded_worst = KirchhoffProxy(without_worst);
  const double degraded_best = KirchhoffProxy(without_best);
  std::printf("mean pairwise ER: baseline=%.4f  after losing critical "
              "line=%.4f (+%.1f%%)  after losing redundant line=%.4f "
              "(+%.2f%%)\n",
              baseline, degraded_worst,
              100.0 * (degraded_worst / baseline - 1.0), degraded_best,
              100.0 * (degraded_best / baseline - 1.0));
  // Robustness ranking must order the two contingencies correctly.
  return degraded_worst >= degraded_best ? 0 : 1;
}
