// RP baseline [Spielman & Srivastava, STOC'08]: approximate all-pairs ER
// via Johnson–Lindenstrauss projection of W^{1/2} B L†. Preprocessing
// builds a k×n sketch with k = ⌈24 ln n / ε²⌉ (one Laplacian solve per
// row); queries are then O(k). Memory for the sketch is the bottleneck
// the paper reports (OOM on Orkut/LiveJournal/Friendster).

#ifndef GEER_CORE_RP_H_
#define GEER_CORE_RP_H_

#include <optional>

#include "core/estimator.h"
#include "core/options.h"
#include "linalg/dense.h"
#include "linalg/laplacian_solver.h"

namespace geer {

class RpEstimator : public ErEstimator {
 public:
  /// Builds the sketch. Aborts if the k×n sketch exceeds
  /// options.rp_max_bytes — use Feasible() to pre-check (the benchmark
  /// harness reports those configurations as OOM, like the paper).
  explicit RpEstimator(const Graph& graph, ErOptions options = {});
  // Stores a pointer to `graph`; a temporary would dangle.
  explicit RpEstimator(Graph&&, ErOptions = {}) = delete;

  std::string Name() const override { return "RP"; }
  QueryStats EstimateWithStats(NodeId s, NodeId t) override;

  /// Projection dimension in use.
  int Dimensions() const { return k_; }

  /// Derived sketch size in bytes for the given graph/options.
  static std::uint64_t SketchBytes(const Graph& graph,
                                   const ErOptions& options);

  /// True iff the sketch fits the options' memory budget.
  static bool Feasible(const Graph& graph, const ErOptions& options) {
    return SketchBytes(graph, options) <= options.rp_max_bytes;
  }

  /// The projection dimension k implied by the options (paper's
  /// 24 ln n / ε² unless overridden).
  static int DeriveDimensions(const Graph& graph, const ErOptions& options);

 private:
  const Graph* graph_;
  int k_ = 0;
  // Row-major k×n sketch Z̃; r̂(s,t) = Σ_j (Z̃(j,s) − Z̃(j,t))².
  Matrix sketch_;
};

}  // namespace geer

#endif  // GEER_CORE_RP_H_
