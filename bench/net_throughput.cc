// Networked-serving bench: what the wire + router hop costs over the
// in-process QueryService, on the same Zipf workload. Each method cell
// replays ONE shuffled Zipf query set in three serving configurations:
//
//   inproc:     QueryService submitted to directly (the PR-7 serving
//               tier) through the closed-loop driver
//   net_closed: a full loopback deployment — two shard replicas + a
//               router on ephemeral ports — driven through NetSubmitter
//               by the SAME closed-loop driver (K clients, one query in
//               flight each)
//   net_open:   the same deployment under the open-loop burst driver
//               (every query submitted at once; measures pipelining of
//               the sender pool + server-side micro-batching)
//
// Before reporting, every networked answer is checked BIT-IDENTICAL to
// the in-process one — the wire tier's determinism contract (the λ each
// replica would derive is pre-derived once here and shipped in options,
// matching what the shards compute; net_determinism_test pins the
// derivation itself). The numbers land in EXPERIMENTS.md ("Networked
// serving") and in the CI BENCH JSON as net/<dataset>/<mode>/* series.
//
//   bench_net_throughput [--scale=f] [--seed=n] [--tp-scale=f]
//                        [--threads=n] [--clients=n] [--rounds=n] [--csv]

#include <cstdio>
#include <cstring>
#include <numeric>

#include "bench/bench_common.h"
#include "core/registry.h"
#include "eval/experiment.h"
#include "linalg/spectral.h"
#include "net/router.h"
#include "net/shard_service.h"
#include "net/submitter.h"
#include "serve/query_service.h"
#include "serve/trace.h"
#include "util/check.h"

namespace geer {
namespace {

std::vector<QueryPair> ZipfQueries(NodeId n, int rounds, std::uint64_t seed) {
  std::vector<NodeId> ranking(n);
  std::iota(ranking.begin(), ranking.end(), NodeId{0});
  return MakeZipfQueries(ranking, static_cast<std::size_t>(128) * rounds, 0.8,
                         seed);
}

void Report(bool csv, const char* method, const char* dataset, double epsilon,
            const char* mode, std::size_t queries,
            const ServedWorkloadResult& r) {
  const double ms_per_q =
      r.answered > 0 ? r.wall_seconds * 1e3 / static_cast<double>(r.answered)
                     : 0.0;
  if (csv) {
    std::printf("%s,%s,%g,%s,%zu,%.1f,%.4f,%.4f,%.4f,%.2f,%.4f\n", method,
                dataset, epsilon, mode, queries, r.throughput_qps, r.p50_ms,
                r.p95_ms, r.p99_ms, r.avg_batch, ms_per_q);
  } else {
    std::printf("%-8s %-10s %6g %-11s %12.1f %9.3f %9.3f %9.3f %9.2f %9.4f\n",
                method, dataset, epsilon, mode, r.throughput_qps, r.p50_ms,
                r.p95_ms, r.p99_ms, r.avg_batch, ms_per_q);
  }
}

int Main(int argc, char** argv) {
  bench::BenchArgs args;
  int threads = 2;
  int clients = 4;
  int rounds = 2;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string(key) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = value("--scale")) {
      args.scale = std::atof(v->c_str());
    } else if (auto v = value("--seed")) {
      args.seed = static_cast<std::uint64_t>(std::atoll(v->c_str()));
    } else if (auto v = value("--tp-scale")) {
      args.tp_scale = std::atof(v->c_str());
      args.tpc_scale = args.tp_scale;
    } else if (auto v = value("--threads")) {
      threads = std::atoi(v->c_str());
    } else if (auto v = value("--clients")) {
      clients = std::atoi(v->c_str());
    } else if (auto v = value("--rounds")) {
      rounds = std::atoi(v->c_str());
    } else if (arg == "--csv") {
      args.csv = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  struct Cell {
    const char* method;
    const char* dataset;
    double epsilon;
  };
  const Cell cells[] = {
      {"GEER", "facebook", 0.2},
      {"SMM", "dblp", 0.05},
  };

  if (args.csv) {
    std::printf(
        "method,dataset,epsilon,mode,queries,throughput_qps,p50_ms,p95_ms,"
        "p99_ms,avg_batch,ms_per_q\n");
  } else {
    std::printf(
        "# zipf(0.8) trace: %d queries; 2 shard replicas + router on "
        "loopback; threads=%d clients=%d tp/tpc scale=%g\n",
        128 * rounds, threads, clients, args.tp_scale);
    std::printf("%-8s %-10s %6s %-11s %12s %9s %9s %9s %9s %9s\n", "method",
                "dataset", "eps", "mode", "qps", "p50_ms", "p95_ms", "p99_ms",
                "avg_batch", "ms/q");
  }

  for (const Cell& cell : cells) {
    auto ds = MakeDataset(cell.dataset, args.scale > 0 ? args.scale : 0.1);
    GEER_CHECK(ds.has_value());
    const NodeId n = ds->graph.NumNodes();
    const std::vector<QueryPair> queries = ZipfQueries(n, rounds, args.seed);

    // One λ, derived the way a shard would and shipped in options to
    // every replica AND the in-process service — identical inputs are
    // the precondition of the bit-identity check below.
    ErOptions opt = args.BaseOptions(cell.epsilon);
    opt.lambda = ComputeSpectralBoundsT<UnitWeight>(ds->graph).lambda;

    ServeOptions serve;
    serve.threads = threads;
    serve.max_batch_size = 32;
    serve.max_linger_seconds = 0.0;

    // inproc: the QueryService is the submitter.
    auto estimator = CreateEstimator(cell.method, ds->graph, opt);
    GEER_CHECK(estimator != nullptr);
    ServedWorkloadResult inproc;
    {
      QueryService service(*estimator, serve);
      inproc = RunClosedLoopWorkload(service, queries, clients);
    }
    GEER_CHECK_EQ(inproc.answered, queries.size()) << cell.method;
    Report(args.csv, cell.method, cell.dataset, cell.epsilon, "inproc",
           queries.size(), inproc);

    // Loopback deployment: two full replicas + a router.
    net::ShardOptions shard;
    shard.num_shards = 2;
    shard.method = cell.method;
    shard.er = opt;
    shard.serve = serve;
    std::string error;
    net::ShardServer shard0(ds->graph, shard);
    shard.shard_id = 1;
    net::ShardServer shard1(ds->graph, shard);
    GEER_CHECK(shard0.Start(&error)) << error;
    GEER_CHECK(shard1.Start(&error)) << error;
    net::RouterOptions router_options;
    router_options.connections_per_shard = clients;
    net::Router router({{"127.0.0.1", shard0.port()},
                        {"127.0.0.1", shard1.port()}},
                       router_options);
    GEER_CHECK(router.Start(&error)) << error;

    const struct {
      const char* name;
      bool closed;
    } net_modes[] = {{"net_closed", true}, {"net_open", false}};
    for (const auto& mode : net_modes) {
      net::NetSubmitter submitter("127.0.0.1", router.port(), clients);
      GEER_CHECK(submitter.Connect(&error)) << error;
      ServedWorkloadResult net_result;
      if (mode.closed) {
        net_result = RunClosedLoopWorkload(submitter, queries, clients);
      } else {
        const auto trace = MakeOpenLoopTrace(queries, /*qps=*/0.0, args.seed);
        net_result = RunServedWorkload(submitter, trace,
                                       /*deadline_seconds=*/0.0,
                                       /*realtime=*/false);
      }
      submitter.Close();
      GEER_CHECK_EQ(net_result.answered, queries.size())
          << cell.method << " " << mode.name;
      for (std::size_t i = 0; i < queries.size(); ++i) {
        GEER_CHECK(net_result.values[i] == inproc.values[i])
            << cell.method << " " << mode.name
            << " networked answer diverged from in-process at query " << i;
      }
      Report(args.csv, cell.method, cell.dataset, cell.epsilon, mode.name,
             queries.size(), net_result);
    }

    router.Stop();
    router.Wait();
    shard0.Stop();
    shard0.Wait();
    shard1.Stop();
    shard1.Wait();
  }
  return 0;
}

}  // namespace
}  // namespace geer

int main(int argc, char** argv) { return geer::Main(argc, argv); }
