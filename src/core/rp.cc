#include "core/rp.h"

#include <cmath>

#include "rw/rng.h"
#include "util/check.h"

namespace geer {

template <WeightPolicy WP>
int RpEstimatorT<WP>::DeriveDimensions(const GraphT& graph,
                                       const ErOptions& options) {
  if (options.rp_dimensions > 0) return options.rp_dimensions;
  const double n = static_cast<double>(graph.NumNodes());
  const double k =
      std::ceil(24.0 * std::log(n) / (options.epsilon * options.epsilon));
  return static_cast<int>(k);
}

template <WeightPolicy WP>
std::uint64_t RpEstimatorT<WP>::SketchBytes(const GraphT& graph,
                                            const ErOptions& options) {
  return static_cast<std::uint64_t>(DeriveDimensions(graph, options)) *
         graph.NumNodes() * sizeof(double);
}

template <WeightPolicy WP>
RpEstimatorT<WP>::RpEstimatorT(const GraphT& graph, ErOptions options)
    : graph_(&graph), options_(options) {
  ValidateOptions(options);
  k_ = DeriveDimensions(graph, options);
  GEER_CHECK(Feasible(graph, options))
      << "RP sketch of " << SketchBytes(graph, options)
      << " bytes exceeds the rp_max_bytes budget (paper: out of memory)";
  sketch_ = BuildSketch(graph, options, k_);
  shared_sketch_ = std::make_shared<EpochShared<Matrix>>(sketch_);
}

template <WeightPolicy WP>
bool RpEstimatorT<WP>::RebindGraph(const GraphT& graph,
                                   const GraphEpoch& epoch) {
  const int k = DeriveDimensions(graph, options_);
  GEER_CHECK(Feasible(graph, options_))
      << "RP sketch of " << SketchBytes(graph, options_)
      << " bytes exceeds the rp_max_bytes budget (paper: out of memory)";
  sketch_ = shared_sketch_->GetOrBuild(epoch.epoch, [this, &graph, k]() {
    return BuildSketch(graph, options_, k);
  });
  k_ = k;
  graph_ = &graph;
  return true;
}

template <WeightPolicy WP>
std::shared_ptr<const Matrix> RpEstimatorT<WP>::BuildSketch(
    const GraphT& graph, const ErOptions& options, int k_dims) {
  const NodeId n = graph.NumNodes();
  Matrix sketch(static_cast<std::size_t>(k_dims), n, 0.0);

  typename LaplacianSolverT<WP>::Options sopt;
  // The JL distortion already costs ε; solve well below it.
  sopt.tolerance = 1e-8;
  LaplacianSolverT<WP> solver(graph, sopt);
  Rng rng(options.seed ^ 0x9d2c5680cafef00dULL);
  const double scale = 1.0 / std::sqrt(static_cast<double>(k_dims));

  // Row j of Q W^{1/2} B has entry +q_e·√w_e at e's lower endpoint and
  // −q_e·√w_e at the upper one, q_e = ±1/√k (√w_e ≡ 1 unweighted). Solve
  // L z = row for each of the k rows.
  const auto& offsets = graph.Offsets();
  const auto& adj = graph.NeighborArray();
  Vector row(n, 0.0);
  for (int j = 0; j < k_dims; ++j) {
    std::fill(row.begin(), row.end(), 0.0);
    for (NodeId u = 0; u < n; ++u) {
      for (std::uint64_t k = offsets[u]; k < offsets[u + 1]; ++k) {
        const NodeId v = adj[k];
        if (u >= v) continue;
        const double magnitude =
            scale * std::sqrt(WP::ArcWeight(graph, k));
        const double q = rng.NextBernoulli(0.5) ? magnitude : -magnitude;
        row[u] += q;
        row[v] -= q;
      }
    }
    Vector z = solver.Solve(row);
    double* out = sketch.Row(static_cast<std::size_t>(j));
    for (NodeId v = 0; v < n; ++v) out[v] = z[v];
  }
  return std::make_shared<const Matrix>(std::move(sketch));
}

template <WeightPolicy WP>
QueryStats RpEstimatorT<WP>::EstimateWithStats(NodeId s, NodeId t) {
  GEER_CHECK(s < graph_->NumNodes());
  GEER_CHECK(t < graph_->NumNodes());
  QueryStats stats;
  if (s == t) return stats;
  double acc = 0.0;
  for (int j = 0; j < k_; ++j) {
    const double* row = sketch_->Row(static_cast<std::size_t>(j));
    const double diff = row[s] - row[t];
    acc += diff * diff;
  }
  stats.value = acc;
  return stats;
}

template class RpEstimatorT<UnitWeight>;
template class RpEstimatorT<EdgeWeight>;

}  // namespace geer
