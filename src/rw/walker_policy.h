// Maps a weight policy (graph/weight_policy.h) to the walk sampler that
// realizes its transition matrix: uniform-neighbor stepping for
// UnitWeight, alias-table stepping for EdgeWeight. Estimator templates
// declare their sampler as `WalkerFor<WP>` and stay weight-generic; the
// unit-weight instantiation keeps the branch-free uniform step with no
// alias-table memory or weight loads.

#ifndef GEER_RW_WALKER_POLICY_H_
#define GEER_RW_WALKER_POLICY_H_

#include "graph/weight_policy.h"
#include "rw/alias.h"
#include "rw/walker.h"

namespace geer {

template <WeightPolicy WP>
struct WalkerSelector;

template <>
struct WalkerSelector<UnitWeight> {
  using type = Walker;
};

template <>
struct WalkerSelector<EdgeWeight> {
  using type = WeightedWalker;
};

/// The walk sampler for weight policy WP. Both samplers share the same
/// surface: Step, WalkEndpoint, WalkPath, EscapeTrial, FirstVisitTrial,
/// graph().
template <WeightPolicy WP>
using WalkerFor = typename WalkerSelector<WP>::type;

}  // namespace geer

#endif  // GEER_RW_WALKER_POLICY_H_
