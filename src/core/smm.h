// SMM (Alg. 2): deterministic computation of the truncated effective
// resistance r_ℓ(s,t) by iterated sparse matrix–vector products with the
// transition matrix P. After i iterations the iterates satisfy
// s*(v) = p_i(v, s) and t*(v) = p_i(v, t), and
//   r_b(s,t) = Σ_{j=0}^{i} [ s*_j(s)/d(s) + t*_j(t)/d(t)
//                            − s*_j(t)/d(s) − t*_j(s)/d(t) ].
//
// SmmIterator exposes the iteration one step at a time so GEER can apply
// its greedy stopping rule (Eq. 17) between steps and hand the live
// iterates to AMC.

#ifndef GEER_CORE_SMM_H_
#define GEER_CORE_SMM_H_

#include "core/estimator.h"
#include "core/options.h"
#include "linalg/spectral.h"
#include "linalg/transition.h"

namespace geer {

/// Step-at-a-time driver for Alg. 2 on a fixed query pair.
class SmmIterator {
 public:
  /// Positions the iterator at ℓ_b = 0 (the i=0 term is already folded
  /// into rb()). Requires s ≠ t handled by the caller.
  SmmIterator(const Graph& graph, TransitionOperator* op, NodeId s, NodeId t);
  // Stores a pointer to `graph`; a temporary would dangle.
  SmmIterator(Graph&&, TransitionOperator*, NodeId, NodeId) = delete;

  /// Truncated ER accumulated so far: r_{ℓb}(s, t).
  double rb() const { return rb_; }

  /// Iterations performed so far (ℓ_b).
  std::uint32_t iterations() const { return iterations_; }

  /// Arc traversals charged by all iterations so far.
  std::uint64_t spmv_ops() const { return spmv_ops_; }

  /// Cost of the NEXT iteration under the paper's model:
  /// Σ_{v∈supp(s*)} d(v) + Σ_{v∈supp(t*)} d(v)  (Eq. 17 LHS).
  std::uint64_t NextIterationCost() const {
    return s_vec_.support_degree_sum + t_vec_.support_degree_sum;
  }

  /// Performs one iteration: s* ← P s*, t* ← P t*, accumulates into rb.
  void Advance();

  /// Live iterates (s*(v) = p_{ℓb}(v, s), t*(v) = p_{ℓb}(v, t)).
  const Vector& svec() const { return s_vec_.values; }
  const Vector& tvec() const { return t_vec_.values; }

 private:
  const Graph* graph_;
  TransitionOperator* op_;
  NodeId s_;
  NodeId t_;
  double inv_ds_;
  double inv_dt_;
  TransitionOperator::SparseVector s_vec_;
  TransitionOperator::SparseVector t_vec_;
  double rb_ = 0.0;
  std::uint32_t iterations_ = 0;
  std::uint64_t spmv_ops_ = 0;
};

/// The standalone SMM competitor: runs Alg. 2 for ℓ_b = ℓ iterations
/// (refined ℓ of Eq. 6 by default, Peng et al.'s Eq. 5 with
/// options.use_peng_ell — the Fig. 11 comparison; or a fixed count with
/// options.smm_iterations, which is how the paper builds ground truth).
class SmmEstimator : public ErEstimator {
 public:
  SmmEstimator(const Graph& graph, ErOptions options = {});
  // Stores a pointer to `graph`; a temporary would dangle.
  SmmEstimator(Graph&&, ErOptions = {}) = delete;

  std::string Name() const override {
    return options_.use_peng_ell ? "SMM-PengEll" : "SMM";
  }
  QueryStats EstimateWithStats(NodeId s, NodeId t) override;

  /// λ in use (from options or computed at construction).
  double lambda() const { return lambda_; }

 private:
  const Graph* graph_;
  ErOptions options_;
  double lambda_;
  TransitionOperator op_;
};

}  // namespace geer

#endif  // GEER_CORE_SMM_H_
