// Weighted SMM (Alg. 2 with strengths): deterministic computation of the
// truncated weighted effective resistance
//   r_ℓ(s,t) = Σ_{i=0}^{ℓ} [p_i(s,s)/w(s) + p_i(t,t)/w(t)
//                           − p_i(s,t)/w(t) − p_i(t,s)/w(s)]
// by iterated SpMV with the weighted transition matrix P = D_w^{-1} A_w.
// Mirrors core/smm.h.

#ifndef GEER_WEIGHTED_WEIGHTED_SMM_H_
#define GEER_WEIGHTED_WEIGHTED_SMM_H_

#include "core/options.h"
#include "weighted/weighted_estimator.h"
#include "weighted/weighted_transition.h"

namespace geer {

/// Step-at-a-time driver for weighted Alg. 2 on a fixed query pair.
class WeightedSmmIterator {
 public:
  WeightedSmmIterator(const WeightedGraph& graph,
                      WeightedTransitionOperator* op, NodeId s, NodeId t);
  // Stores a pointer to `graph`; a temporary would dangle.
  WeightedSmmIterator(WeightedGraph&&, WeightedTransitionOperator*, NodeId,
                      NodeId) = delete;

  /// Truncated ER accumulated so far: r_{ℓb}(s, t).
  double rb() const { return rb_; }

  /// Iterations performed so far (ℓ_b).
  std::uint32_t iterations() const { return iterations_; }

  /// Arc traversals charged by all iterations so far.
  std::uint64_t spmv_ops() const { return spmv_ops_; }

  /// Cost of the NEXT iteration (Eq. 17 LHS).
  std::uint64_t NextIterationCost() const {
    return s_vec_.support_degree_sum + t_vec_.support_degree_sum;
  }

  /// Performs one iteration: s* ← P s*, t* ← P t*, accumulates into rb.
  void Advance();

  /// Live iterates (s*(v) = p_{ℓb}(v, s), t*(v) = p_{ℓb}(v, t)).
  const Vector& svec() const { return s_vec_.values; }
  const Vector& tvec() const { return t_vec_.values; }

 private:
  const WeightedGraph* graph_;
  WeightedTransitionOperator* op_;
  NodeId s_;
  NodeId t_;
  double inv_ws_;
  double inv_wt_;
  WeightedTransitionOperator::SparseVector s_vec_;
  WeightedTransitionOperator::SparseVector t_vec_;
  double rb_ = 0.0;
  std::uint32_t iterations_ = 0;
  std::uint64_t spmv_ops_ = 0;
};

/// Standalone weighted SMM estimator (deterministic competitor and
/// ground-truth builder, as in the unweighted module).
class WeightedSmmEstimator : public WeightedErEstimator {
 public:
  explicit WeightedSmmEstimator(const WeightedGraph& graph,
                                ErOptions options = {});
  // Stores a pointer to `graph`; a temporary would dangle.
  explicit WeightedSmmEstimator(WeightedGraph&&, ErOptions = {}) = delete;

  std::string Name() const override { return "W-SMM"; }
  QueryStats EstimateWithStats(NodeId s, NodeId t) override;

  /// λ in use (from options or computed at construction).
  double lambda() const { return lambda_; }

 private:
  const WeightedGraph* graph_;
  ErOptions options_;
  double lambda_;
  WeightedTransitionOperator op_;
};

}  // namespace geer

#endif  // GEER_WEIGHTED_WEIGHTED_SMM_H_
