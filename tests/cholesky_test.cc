#include "linalg/cholesky.h"

#include <gtest/gtest.h>

#include "rw/rng.h"

namespace geer {
namespace {

TEST(CholeskyTest, SolvesIdentity) {
  Matrix m(3, 3, 0.0);
  for (int i = 0; i < 3; ++i) m(i, i) = 1.0;
  auto f = CholeskyFactor::Factorize(m);
  ASSERT_TRUE(f.has_value());
  Vector x = f->Solve({1.0, 2.0, 3.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(CholeskyTest, SolvesKnownSpdSystem) {
  Matrix m(2, 2, 0.0);
  m(0, 0) = 4.0;
  m(0, 1) = 2.0;
  m(1, 0) = 2.0;
  m(1, 1) = 3.0;
  auto f = CholeskyFactor::Factorize(m);
  ASSERT_TRUE(f.has_value());
  // Solution of [4 2; 2 3] x = [10; 8]: x = [7/4; 3/2].
  Vector x = f->Solve({10.0, 8.0});
  EXPECT_NEAR(x[0], 1.75, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix m(2, 2, 0.0);
  m(0, 0) = 1.0;
  m(1, 1) = -1.0;
  EXPECT_FALSE(CholeskyFactor::Factorize(m).has_value());
}

TEST(CholeskyTest, RejectsSingular) {
  Matrix m(2, 2, 1.0);  // rank 1
  EXPECT_FALSE(CholeskyFactor::Factorize(m).has_value());
}

TEST(CholeskyTest, RandomSpdRoundTrip) {
  // M = AᵀA + I is SPD; check M·Solve(b) ≈ b.
  Rng rng(77);
  const std::size_t n = 20;
  Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.NextGaussian();
  }
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = i == j ? 1.0 : 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += a(k, i) * a(k, j);
      m(i, j) = acc;
    }
  }
  auto f = CholeskyFactor::Factorize(m);
  ASSERT_TRUE(f.has_value());
  Vector b(n);
  for (auto& v : b) v = rng.NextGaussian();
  Vector x = f->Solve(b);
  Vector back = MatVec(m, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], b[i], 1e-8);
}

// M = AᵀA + c·I, deterministically seeded — SPD by construction.
Matrix RandomSpd(std::size_t n, std::uint64_t seed, double diag) {
  Rng rng(seed);
  Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.NextGaussian();
  }
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = i == j ? diag : 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += a(k, i) * a(k, j);
      m(i, j) = acc;
    }
  }
  return m;
}

TEST(CholeskyTest, RankOneUpdateMatchesRefactorize) {
  const std::size_t n = 12;
  Matrix m = RandomSpd(n, 101, 1.0);
  auto f = CholeskyFactor::Factorize(m);
  ASSERT_TRUE(f.has_value());

  // x = √δ(e_u − e_v): the shape every edge delta produces.
  Vector x(n, 0.0);
  x[3] = 1.5;
  x[9] = -1.5;
  f->RankOneUpdate(x);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) += x[i] * x[j];
  }
  auto fresh = CholeskyFactor::Factorize(m);
  ASSERT_TRUE(fresh.has_value());

  Rng rng(7);
  Vector b(n);
  for (auto& v : b) v = rng.NextGaussian();
  const Vector got = f->Solve(b);
  const Vector want = fresh->Solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(got[i], want[i], 1e-9);
}

TEST(CholeskyTest, RankOneDowndateMatchesRefactorize) {
  const std::size_t n = 12;
  // Heavy diagonal keeps M − xxᵀ comfortably PD.
  Matrix m = RandomSpd(n, 202, 25.0);
  auto f = CholeskyFactor::Factorize(m);
  ASSERT_TRUE(f.has_value());

  Vector x(n, 0.0);
  x[1] = 0.8;
  x[6] = -0.8;
  ASSERT_TRUE(f->RankOneDowndate(x));
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) -= x[i] * x[j];
  }
  auto fresh = CholeskyFactor::Factorize(m);
  ASSERT_TRUE(fresh.has_value());

  Rng rng(8);
  Vector b(n);
  for (auto& v : b) v = rng.NextGaussian();
  const Vector got = f->Solve(b);
  const Vector want = fresh->Solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(got[i], want[i], 1e-9);
}

TEST(CholeskyTest, UpdateThenDowndateRoundTrips) {
  const std::size_t n = 8;
  const Matrix m = RandomSpd(n, 303, 4.0);
  auto f = CholeskyFactor::Factorize(m);
  ASSERT_TRUE(f.has_value());
  Vector x(n, 0.0);
  x[0] = 2.0;
  x[5] = -2.0;
  f->RankOneUpdate(x);
  ASSERT_TRUE(f->RankOneDowndate(x));
  auto fresh = CholeskyFactor::Factorize(m);
  ASSERT_TRUE(fresh.has_value());
  Vector b(n, 1.0);
  const Vector got = f->Solve(b);
  const Vector want = fresh->Solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(got[i], want[i], 1e-9);
}

TEST(CholeskyTest, DowndateRejectsIndefiniteResult) {
  // M = I; removing 2·e₀e₀ᵀ would leave a negative pivot.
  Matrix m(3, 3, 0.0);
  for (int i = 0; i < 3; ++i) m(i, i) = 1.0;
  auto f = CholeskyFactor::Factorize(m);
  ASSERT_TRUE(f.has_value());
  Vector x(3, 0.0);
  x[0] = 1.5;
  EXPECT_FALSE(f->RankOneDowndate(x));
}

TEST(CholeskyTest, ManyRankOneUpdatesStayAccurate) {
  const std::size_t n = 10;
  Matrix m = RandomSpd(n, 404, 2.0);
  auto f = CholeskyFactor::Factorize(m);
  ASSERT_TRUE(f.has_value());
  Rng rng(55);
  for (int round = 0; round < 20; ++round) {
    const std::size_t u = static_cast<std::size_t>(rng.NextBounded(n));
    std::size_t v = static_cast<std::size_t>(rng.NextBounded(n));
    if (v == u) v = (u + 1) % n;
    const double s = 0.5 + 0.5 * (round % 3);
    Vector x(n, 0.0);
    x[u] = s;
    x[v] = -s;
    f->RankOneUpdate(x);
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = 0; j < n; ++j) m(i, j) += x[i] * x[j];
    }
  }
  auto fresh = CholeskyFactor::Factorize(m);
  ASSERT_TRUE(fresh.has_value());
  Vector b(n);
  for (auto& v : b) v = rng.NextGaussian();
  const Vector got = f->Solve(b);
  const Vector want = fresh->Solve(b);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(got[i], want[i], 1e-8);
}

}  // namespace
}  // namespace geer
