// The tracing contract (obs/trace.h): nothing records until a Tracer is
// installed (Span is a no-op); installed, spans land in per-thread rings
// with distinct lanes, Drain() returns them oldest-first sorted by start
// time, rings overwrite their oldest events when they wrap, and
// ToChromeJson() emits well-formed Chrome trace_event JSON with
// timestamps relative to the earliest span.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/trace.h"

namespace geer::obs {
namespace {

/// Installs a tracer for one test body and guarantees uninstall — the
/// active tracer is process-wide state.
class ScopedTracer {
 public:
  ScopedTracer() { Tracer::Install(&tracer_); }
  ~ScopedTracer() { Tracer::Install(nullptr); }
  Tracer& get() { return tracer_; }

 private:
  Tracer tracer_;
};

SpanEvent MakeEvent(const char* name, std::uint64_t start,
                    std::uint64_t dur) {
  SpanEvent e;
  e.name = name;
  e.start_ns = start;
  e.dur_ns = dur;
  return e;
}

TEST(TraceTest, NoTracerMeansNoCurrentAndSpanIsNoOp) {
  ASSERT_EQ(Tracer::Current(), nullptr);
  {
    Span span("orphan");  // must not crash or record anywhere
    span.Arg("k", 1);
  }
  EXPECT_EQ(Tracer::Current(), nullptr);
}

TEST(TraceTest, InstallPublishesAndUninstallClears) {
  Tracer tracer;
  Tracer::Install(&tracer);
  EXPECT_EQ(Tracer::Current(), &tracer);
  Tracer::Install(nullptr);
  EXPECT_EQ(Tracer::Current(), nullptr);
}

TEST(TraceTest, SpanRecordsNameTimingAndArgs) {
  ScopedTracer scoped;
  {
    Span span("unit_work");
    span.Arg("batch", 7);
    span.Arg("size", 32);
    span.Arg("ignored", 99);  // only the first two args stick
  }
  const std::vector<SpanEvent> events = scoped.get().Drain();
  ASSERT_EQ(events.size(), 1u);
  const SpanEvent& e = events[0];
  EXPECT_EQ(std::string(e.name), "unit_work");
  EXPECT_GT(e.start_ns, 0u);
  EXPECT_NE(e.tid, 0u);  // tid 0 is resolved to the thread's lane
  EXPECT_EQ(std::string(e.arg_key0), "batch");
  EXPECT_EQ(e.arg_val0, 7u);
  EXPECT_EQ(std::string(e.arg_key1), "size");
  EXPECT_EQ(e.arg_val1, 32u);
}

TEST(TraceTest, DrainSortsByStartAcrossThreads) {
  ScopedTracer scoped;
  Tracer& tracer = scoped.get();
  tracer.Record(MakeEvent("late", 300, 10));
  tracer.Record(MakeEvent("early", 100, 10));
  std::thread other([&tracer] {
    tracer.Record(MakeEvent("middle", 200, 10));
  });
  other.join();
  const std::vector<SpanEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(std::string(events[0].name), "early");
  EXPECT_EQ(std::string(events[1].name), "middle");
  EXPECT_EQ(std::string(events[2].name), "late");
  // The two recording threads got distinct lanes.
  EXPECT_NE(events[0].tid, events[1].tid);
}

TEST(TraceTest, ExplicitTidOverridesThreadLane) {
  ScopedTracer scoped;
  SpanEvent e = MakeEvent("query", 50, 5);
  e.tid = 10007;  // synthetic per-query lane
  scoped.get().Record(e);
  const std::vector<SpanEvent> events = scoped.get().Drain();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].tid, 10007u);
}

TEST(TraceTest, RingWrapsKeepingNewestEvents) {
  ScopedTracer scoped;
  Tracer& tracer = scoped.get();
  const std::size_t total = Tracer::kRingCapacity + 10;
  for (std::size_t i = 0; i < total; ++i) {
    tracer.Record(MakeEvent("e", i + 1, 1));
  }
  const std::vector<SpanEvent> events = tracer.Drain();
  ASSERT_EQ(events.size(), Tracer::kRingCapacity);
  // The 10 oldest were overwritten; order is oldest-surviving first.
  EXPECT_EQ(events.front().start_ns, 11u);
  EXPECT_EQ(events.back().start_ns, total);
}

TEST(TraceTest, DrainWhileRecordingIsSafe) {
  // The per-ring mutexes must make a Drain() racing live Record()s
  // well-defined — this is the case the TSan CI filter exercises.
  ScopedTracer scoped;
  Tracer& tracer = scoped.get();
  constexpr int kThreads = 4;
  constexpr int kEventsPerThread = 2000;
  std::vector<std::thread> writers;
  for (int t = 0; t < kThreads; ++t) {
    writers.emplace_back([&tracer] {
      for (int i = 0; i < kEventsPerThread; ++i) {
        Span span("racy");
        span.Arg("i", static_cast<std::uint64_t>(i));
      }
    });
  }
  std::size_t drained = 0;
  for (int i = 0; i < 50; ++i) drained = tracer.Drain().size();
  for (auto& w : writers) w.join();
  (void)drained;  // intermediate sizes are racy by design; final is exact
  EXPECT_EQ(tracer.Drain().size(),
            static_cast<std::size_t>(kThreads) * kEventsPerThread);
}

TEST(TraceTest, ChromeJsonSchemaAndRelativeTimestamps) {
  ScopedTracer scoped;
  Tracer& tracer = scoped.get();
  // 1.5 µs and 2.5 µs after an arbitrary epoch; earliest pins ts 0.
  tracer.Record(MakeEvent("first", 1000000, 1500));
  SpanEvent second = MakeEvent("second", 1002500, 500);
  second.arg_key0 = "batch";
  second.arg_val0 = 3;
  tracer.Record(second);

  const std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("{\"traceEvents\":["), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"first\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"second\""), std::string::npos);
  // Relative µs with sub-µs precision: first at 0.000, dur 1.500;
  // second 2.5 µs later.
  EXPECT_NE(json.find("\"ts\":0.000"), std::string::npos);
  EXPECT_NE(json.find("\"dur\":1.500"), std::string::npos);
  EXPECT_NE(json.find("\"ts\":2.500"), std::string::npos);
  EXPECT_NE(json.find("\"args\":{\"batch\":3}"), std::string::npos);
  EXPECT_EQ(json.back(), '\n');

  // Structural sanity a JSON loader depends on: balanced braces and
  // brackets, no raw control characters.
  int braces = 0;
  int brackets = 0;
  for (const char c : json) {
    braces += c == '{' ? 1 : c == '}' ? -1 : 0;
    brackets += c == '[' ? 1 : c == ']' ? -1 : 0;
    EXPECT_TRUE(c == '\n' || static_cast<unsigned char>(c) >= 0x20);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
}

TEST(TraceTest, EmptyTracerRendersValidEmptyTrace) {
  Tracer tracer;
  EXPECT_EQ(tracer.ToChromeJson(), "{\"traceEvents\":[]}\n");
}

TEST(TraceTest, WriteChromeTraceRoundTripsThroughFile) {
  ScopedTracer scoped;
  scoped.get().Record(MakeEvent("persisted", 10, 5));
  const std::string path = ::testing::TempDir() + "geer_trace_test.json";
  ASSERT_TRUE(scoped.get().WriteChromeTrace(path));
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), scoped.get().ToChromeJson());
  std::remove(path.c_str());
}

TEST(TraceTest, WriteChromeTraceFailsCleanlyOnBadPath) {
  Tracer tracer;
  EXPECT_FALSE(tracer.WriteChromeTrace("/nonexistent-dir/trace.json"));
}

}  // namespace
}  // namespace geer::obs
