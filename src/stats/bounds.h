// Concentration bounds used by the estimators:
//  * Hoeffding's inequality (Lemma 2.3) — a-priori sample-size bounds;
//  * the empirical Bernstein inequality of Audibert et al. (Lemma 3.2) —
//    AMC's data-dependent stopping rule f(η, σ̂², ψ, δ) (Eq. 7).

#ifndef GEER_STATS_BOUNDS_H_
#define GEER_STATS_BOUNDS_H_

#include <cstdint>

namespace geer {

/// Empirical Bernstein half-width (Eq. 7):
///   f(n, σ̂², ψ, δ) = sqrt(2 σ̂² log(3/δ) / n) + 3 ψ log(3/δ) / n
/// for i.i.d. variables in [0, ψ] with empirical variance σ̂².
double EmpiricalBernsteinBound(std::uint64_t num_samples,
                               double empirical_variance, double range_psi,
                               double delta);

/// Hoeffding half-width for n i.i.d. variables in an interval of width ψ:
///   ε(n, ψ, δ) = ψ sqrt(log(2/δ) / (2n)).
double HoeffdingBound(std::uint64_t num_samples, double range_psi,
                      double delta);

/// Hoeffding sample-size bound: smallest n with ε(n, ψ, δ) ≤ ε, i.e.
///   n = ⌈ψ² log(2/δ) / (2 ε²)⌉.
std::uint64_t HoeffdingSampleCount(double epsilon, double range_psi,
                                   double delta);

/// AMC's maximum sample count η* (Eq. 8): 2 ψ² log(2τ/δ) / ε², the
/// Hoeffding count that makes the τ-th batch alone ε/2-accurate with
/// failure probability δ/τ.
std::uint64_t AmcMaxSamples(double epsilon, double range_psi, double delta,
                            int num_batches_tau);

}  // namespace geer

#endif  // GEER_STATS_BOUNDS_H_
