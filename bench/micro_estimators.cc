// Micro-benchmarks (google-benchmark) for whole-query latency of each
// estimator at fixed ε, on a mid-size power-law graph. Complements the
// figure harnesses with stable, repeatable single-query numbers.

#include <benchmark/benchmark.h>

#include "core/registry.h"
#include "graph/generators.h"
#include "graph/weighted_graph.h"
#include "linalg/spectral.h"
#include "graph/weighted_generators.h"

namespace geer {
namespace {

struct Fixture {
  Graph graph = gen::RMat(12, 16, 3);  // ~4k nodes, ~65k edges
  SpectralBounds spectral = ComputeSpectralBounds(graph);
};

Fixture& SharedFixture() {
  static Fixture fixture;
  return fixture;
}

void RunEstimator(benchmark::State& state, const std::string& name,
                  double epsilon) {
  Fixture& fx = SharedFixture();
  ErOptions opt;
  opt.epsilon = epsilon;
  opt.lambda = fx.spectral.lambda;
  opt.tp_scale = 0.01;
  opt.tpc_scale = 0.01;
  auto est = CreateEstimator(name, fx.graph, opt);
  const NodeId s = 17;
  const NodeId t = 2048 % fx.graph.NumNodes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(est->Estimate(s, t));
  }
}

void BM_Geer(benchmark::State& state) {
  RunEstimator(state, "GEER", 1.0 / state.range(0));
}
BENCHMARK(BM_Geer)->Arg(2)->Arg(10)->Arg(50);

void BM_Amc(benchmark::State& state) {
  RunEstimator(state, "AMC", 1.0 / state.range(0));
}
BENCHMARK(BM_Amc)->Arg(2)->Arg(10);

void BM_Smm(benchmark::State& state) {
  RunEstimator(state, "SMM", 1.0 / state.range(0));
}
BENCHMARK(BM_Smm)->Arg(2)->Arg(10);

void BM_SmmPengEll(benchmark::State& state) {
  RunEstimator(state, "SMM-PengEll", 1.0 / state.range(0));
}
BENCHMARK(BM_SmmPengEll)->Arg(2)->Arg(10);

void BM_TpScaled(benchmark::State& state) {
  RunEstimator(state, "TP", 1.0 / state.range(0));
}
BENCHMARK(BM_TpScaled)->Arg(2);

// Exercises the cached-population rewrite: per-length walk populations
// are extended instead of re-simulated, so per-query cost is O(Σ η_i)
// steps instead of O(Σ η_i·i).
void BM_TpcScaled(benchmark::State& state) {
  RunEstimator(state, "TPC", 1.0 / state.range(0));
}
BENCHMARK(BM_TpcScaled)->Arg(2);

void BM_Cg(benchmark::State& state) { RunEstimator(state, "CG", 0.1); }
BENCHMARK(BM_Cg);

// Weighted (EdgeWeight-instantiation) counterpart on the same topology
// with Uniform[0.25, 4] conductances — the "write it once, run it on
// both" payoff of the weight-generic refactor, for eyeballing the alias
// sampler and strength-normalized SpMV against the unit-weight numbers.
void RunWeightedEstimator(benchmark::State& state, const std::string& name,
                          double epsilon) {
  static const WeightedGraph wg =
      gen::WithUniformWeights(SharedFixture().graph, 0.25, 4.0, 7);
  static const SpectralBounds spectral = ComputeWeightedSpectralBounds(wg);
  ErOptions opt;
  opt.epsilon = epsilon;
  opt.lambda = spectral.lambda;
  auto est = CreateWeightedEstimator(name, wg, opt);
  const NodeId s = 17;
  const NodeId t = 2048 % wg.NumNodes();
  for (auto _ : state) {
    benchmark::DoNotOptimize(est->Estimate(s, t));
  }
}

void BM_WeightedGeer(benchmark::State& state) {
  RunWeightedEstimator(state, "GEER", 1.0 / state.range(0));
}
BENCHMARK(BM_WeightedGeer)->Arg(2)->Arg(10);

void BM_WeightedSmm(benchmark::State& state) {
  RunWeightedEstimator(state, "SMM", 1.0 / state.range(0));
}
BENCHMARK(BM_WeightedSmm)->Arg(2)->Arg(10);

}  // namespace
}  // namespace geer

BENCHMARK_MAIN();
