// Write-then-read round trips for both edge-list formats (graph/io.h and
// weighted/weighted_io.h), beyond the label-invariant summaries the
// per-module IO tests check:
//   * exact structural equality where the loader's first-appearance
//     interning provably yields the identity mapping,
//   * save∘load idempotence (the second round trip must be exact for any
//     graph, because interning is deterministic),
//   * cross-format reads (the unweighted loader drops a weight column;
//     the weighted loader defaults a missing one to 1).

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "graph/generators.h"
#include "graph/graph.h"
#include "graph/io.h"
#include "test_util.h"
#include "graph/weighted_generators.h"
#include "graph/weighted_graph.h"
#include "graph/weighted_io.h"

namespace geer {
namespace {

std::string ScratchPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

// On Path(n) and Complete(n) the save order (u ascending, u < v) interns
// nodes in identity order, so the reloaded graph must be bit-identical.
TEST(IoRoundTripTest, IdentityOrderFamiliesRoundTripExactly) {
  const std::string path = ScratchPath("geer_rt_exact.txt");
  for (Graph original : {gen::Path(17), gen::Complete(9)}) {
    ASSERT_TRUE(SaveEdgeList(original, path));
    auto loaded = LoadEdgeList(path);
    ASSERT_TRUE(loaded.has_value());
    ASSERT_EQ(loaded->NumNodes(), original.NumNodes());
    EXPECT_EQ(loaded->Edges(), original.Edges());
    EXPECT_EQ(loaded->Offsets(), original.Offsets());
    EXPECT_EQ(loaded->NeighborArray(), original.NeighborArray());
  }
  std::remove(path.c_str());
}

// First-appearance interning over the edge list the saver emits (u
// ascending, u < v). Applying it by hand to the original graph gives the
// exact labeled graph the loader must return — an exact structural
// round-trip check that works for arbitrary graphs, not just families
// where the permutation happens to be the identity.
std::vector<NodeId> SaveOrderInterning(const std::vector<Edge>& edges,
                                       NodeId num_nodes) {
  std::vector<NodeId> perm(num_nodes, num_nodes);
  NodeId next = 0;
  for (const auto& [u, v] : edges) {
    if (perm[u] == num_nodes) perm[u] = next++;
    if (perm[v] == num_nodes) perm[v] = next++;
  }
  return perm;
}

std::vector<Edge> MapEdges(const std::vector<Edge>& edges,
                           const std::vector<NodeId>& perm) {
  std::vector<Edge> out;
  for (const auto& [u, v] : edges) {
    const NodeId pu = perm[u];
    const NodeId pv = perm[v];
    out.emplace_back(std::min(pu, pv), std::max(pu, pv));
  }
  std::sort(out.begin(), out.end());
  return out;
}

TEST(IoRoundTripTest, ArbitraryGraphRoundTripsExactlyUpToInterning) {
  const std::string path = ScratchPath("geer_rt_perm.txt");
  Graph original = gen::BarabasiAlbert(60, 3, 11);
  ASSERT_TRUE(SaveEdgeList(original, path));
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->NumNodes(), original.NumNodes());
  const auto perm =
      SaveOrderInterning(original.Edges(), original.NumNodes());
  EXPECT_EQ(loaded->Edges(), MapEdges(original.Edges(), perm));
  // Loading the same file twice must give bit-identical graphs.
  auto again = LoadEdgeList(path);
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->Edges(), loaded->Edges());
  EXPECT_EQ(again->Offsets(), loaded->Offsets());
  std::remove(path.c_str());
}

// Regression for a seed bug: ParseStream interned endpoints inside the
// argument list of AddEdge, so GCC's right-to-left argument evaluation
// assigned first-appearance ids in v-then-u order and scrambled labels.
// Pin the documented contract: ids map in the file's reading order.
TEST(IoRoundTripTest, InterningFollowsFirstAppearanceOrder) {
  auto g = ParseEdgeList("10 20\n20 30\n30 10\n40 30\n");
  ASSERT_TRUE(g.has_value());
  // 10→0, 20→1, 30→2, 40→3.
  const std::vector<Edge> expected = {{0, 1}, {0, 2}, {1, 2}, {2, 3}};
  EXPECT_EQ(g->Edges(), expected);
}

// Effective resistance is invariant under the loader's relabeling, so the
// multiset of resistances from any cycle node must match the closed form
// {k(n−k)/n : k = 1..n−1} regardless of how labels permuted.
TEST(IoRoundTripTest, RoundTripPreservesEffectiveResistance) {
  const std::string path = ScratchPath("geer_rt_er.txt");
  const NodeId n = 12;
  Graph original = gen::Cycle(n);
  ASSERT_TRUE(SaveEdgeList(original, path));
  auto loaded = LoadEdgeList(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->NumNodes(), n);
  std::vector<double> got;
  std::vector<double> want;
  for (NodeId k = 1; k < n; ++k) {
    got.push_back(testing::ExactEr(*loaded, 0, k));
    want.push_back(testing::CycleEr(n, 0, k));
  }
  std::sort(got.begin(), got.end());
  std::sort(want.begin(), want.end());
  for (std::size_t i = 0; i < got.size(); ++i) {
    EXPECT_NEAR(got[i], want[i], 1e-9) << "rank " << i;
  }
  std::remove(path.c_str());
}

// SeriesChain writes edges (0,1), (1,2), ... — identity interning — so
// every weight must survive the round trip bit-for-bit.
TEST(IoRoundTripTest, WeightedChainRoundTripsWeightsExactly) {
  const std::string path = ScratchPath("geer_rt_wchain.txt");
  const std::vector<double> resistances = {0.125, 2.0, 0.5, 8.0, 1.0};
  WeightedGraph original = gen::SeriesChain(resistances);
  ASSERT_TRUE(SaveWeightedEdgeList(original, path));
  auto loaded = LoadWeightedEdgeList(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->NumNodes(), original.NumNodes());
  ASSERT_EQ(loaded->NumEdges(), original.NumEdges());
  for (NodeId u = 0; u + 1 < original.NumNodes(); ++u) {
    EXPECT_DOUBLE_EQ(loaded->EdgeWeight(u, u + 1),
                     original.EdgeWeight(u, u + 1))
        << "edge (" << u << "," << u + 1 << ")";
  }
  EXPECT_DOUBLE_EQ(loaded->TotalWeight(), original.TotalWeight());
  std::remove(path.c_str());
}

TEST(IoRoundTripTest, WeightedGraphRoundTripsExactlyUpToInterning) {
  const std::string path = ScratchPath("geer_rt_wperm.txt");
  WeightedGraph original = gen::GridCircuit(4, 5, 0.25, 4.0, 7);
  ASSERT_TRUE(SaveWeightedEdgeList(original, path));
  auto loaded = LoadWeightedEdgeList(path);
  ASSERT_TRUE(loaded.has_value());
  ASSERT_EQ(loaded->NumNodes(), original.NumNodes());
  ASSERT_EQ(loaded->NumEdges(), original.NumEdges());
  std::vector<Edge> plain;
  for (const auto& e : original.Edges()) plain.emplace_back(e.u, e.v);
  const auto perm = SaveOrderInterning(plain, original.NumNodes());
  // Every edge must reappear under the interning map with its weight
  // preserved to full precision (the saver may round only in ways the
  // loader reads back identically; pin that here).
  for (const auto& e : original.Edges()) {
    EXPECT_DOUBLE_EQ(loaded->EdgeWeight(perm[e.u], perm[e.v]), e.weight)
        << "edge (" << e.u << "," << e.v << ")";
  }
  std::remove(path.c_str());
}

// The unweighted parser reads "u v" and ignores trailing columns, so a
// weighted file loads as its topology; the weighted parser defaults a
// missing third column to weight 1, so an unweighted file loads with unit
// conductances. Both directions are part of the documented format contract.
TEST(IoRoundTripTest, CrossFormatReadsAgreeOnTopology) {
  const std::string wpath = ScratchPath("geer_rt_cross_w.txt");
  const std::string upath = ScratchPath("geer_rt_cross_u.txt");
  WeightedGraph weighted = gen::Ladder(6, 0.5, 2.0);
  ASSERT_TRUE(SaveWeightedEdgeList(weighted, wpath));

  auto topology = LoadEdgeList(wpath);
  ASSERT_TRUE(topology.has_value());
  EXPECT_EQ(topology->NumNodes(), weighted.NumNodes());
  EXPECT_EQ(topology->NumEdges(), weighted.NumEdges());

  ASSERT_TRUE(SaveEdgeList(*topology, upath));
  auto unit = LoadWeightedEdgeList(upath);
  ASSERT_TRUE(unit.has_value());
  EXPECT_EQ(unit->NumNodes(), topology->NumNodes());
  EXPECT_EQ(unit->NumEdges(), topology->NumEdges());
  for (NodeId v = 0; v < unit->NumNodes(); ++v) {
    // Unit weights: strength == degree.
    EXPECT_DOUBLE_EQ(unit->Strength(v), static_cast<double>(unit->Degree(v)));
  }
  std::remove(wpath.c_str());
  std::remove(upath.c_str());
}

}  // namespace
}  // namespace geer
