#include "linalg/dense.h"

#include <gtest/gtest.h>

namespace geer {
namespace {

TEST(DenseVectorTest, DotAndNorm) {
  Vector x = {1.0, 2.0, 3.0};
  Vector y = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(x, y), 4.0 - 10.0 + 18.0);
  EXPECT_DOUBLE_EQ(Norm2({3.0, 4.0}), 5.0);
}

TEST(DenseVectorTest, AxpyAndScale) {
  Vector x = {1.0, 2.0};
  Vector y = {10.0, 20.0};
  Axpy(2.0, x, &y);
  EXPECT_DOUBLE_EQ(y[0], 12.0);
  EXPECT_DOUBLE_EQ(y[1], 24.0);
  Scale(0.5, &y);
  EXPECT_DOUBLE_EQ(y[0], 6.0);
  EXPECT_DOUBLE_EQ(y[1], 12.0);
}

TEST(DenseVectorTest, SumMinMax) {
  Vector x = {3.0, -1.0, 2.0};
  EXPECT_DOUBLE_EQ(Sum(x), 4.0);
  EXPECT_DOUBLE_EQ(Min(x), -1.0);
  EXPECT_DOUBLE_EQ(Max(x), 3.0);
}

TEST(DenseVectorTest, TopTwoBasic) {
  auto [m1, m2] = TopTwo({0.1, 0.7, 0.3, 0.7});
  EXPECT_DOUBLE_EQ(m1, 0.7);
  EXPECT_DOUBLE_EQ(m2, 0.7);  // duplicates count separately
}

TEST(DenseVectorTest, TopTwoSingleElementSecondIsZero) {
  auto [m1, m2] = TopTwo({0.4});
  EXPECT_DOUBLE_EQ(m1, 0.4);
  EXPECT_DOUBLE_EQ(m2, 0.0);
}

TEST(DenseVectorTest, TopTwoOneHot) {
  Vector e(10, 0.0);
  e[4] = 1.0;
  auto [m1, m2] = TopTwo(e);
  EXPECT_DOUBLE_EQ(m1, 1.0);
  EXPECT_DOUBLE_EQ(m2, 0.0);
}

TEST(DenseVectorTest, RemoveMeanCentersVector) {
  Vector x = {1.0, 2.0, 3.0};
  RemoveMean(&x);
  EXPECT_NEAR(Sum(x), 0.0, 1e-15);
  EXPECT_DOUBLE_EQ(x[0], -1.0);
}

TEST(DenseMatrixTest, IndexingAndMatVec) {
  Matrix m(2, 3, 0.0);
  m(0, 0) = 1.0;
  m(0, 2) = 2.0;
  m(1, 1) = 3.0;
  Vector y = MatVec(m, {1.0, 1.0, 1.0});
  EXPECT_DOUBLE_EQ(y[0], 3.0);
  EXPECT_DOUBLE_EQ(y[1], 3.0);
}

TEST(DenseMatrixTest, RowPointerIsRowMajor) {
  Matrix m(2, 2, 0.0);
  m(1, 0) = 7.0;
  EXPECT_DOUBLE_EQ(m.Row(1)[0], 7.0);
}

}  // namespace
}  // namespace geer
