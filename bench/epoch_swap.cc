// Epoch-swap latency bench: quantifies the incremental spectral
// maintenance claim — with GraphEpoch::incremental, swapping a
// small-touch epoch into a bound estimator is O(touched)-ish, not
// O(graph).
//
//  1. λ-dominated rebinds (SMM, which rederives λ on every swap): for
//     touch fractions of ~0.1% / 1% of m, commit a generated update
//     batch and time RebindGraph in `full` mode (no holder: private
//     cold Lanczos per swap, the pre-incremental behavior) vs `incr`
//     mode (shared spectral holder carried across epochs: warm-started
//     Lanczos seeded from the previous epoch's Ritz vectors).
//
//  2. Factor-dominated rebinds (EXACT): same sweep, `full` = fresh
//     O(n³) Cholesky per swap vs `incr` = rank-1 update/downdate per
//     changed edge behind the max(4, n/4) crossover heuristic.
//
//   bench_epoch_swap [--scale=F] [--seed=N] [--rounds=N] [--csv]
//
// CSV rows: metric,dataset,param,value — consumed by tools/run_bench.sh
// into the BENCH_pr<N>.json perf trajectory (dyn/<ds>/<param>/swap_ms,
// lower is better; dyn/<ds>/<param>/swap_speedup = full/incr, higher is
// better). One warm-up epoch precedes the timed rounds in both modes so
// `incr` never charges its first (necessarily cold) swap.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <vector>

#include "core/exact.h"
#include "core/smm.h"
#include "core/spectral_epoch.h"
#include "dyn/dynamic_graph.h"
#include "eval/datasets.h"
#include "util/check.h"
#include "util/timer.h"

namespace geer {
namespace {

struct Args {
  double scale = 0.25;
  std::uint64_t seed = 1;
  int rounds = 3;
  bool csv = false;
};

void Emit(const Args& args, const char* metric, const char* dataset,
          const std::string& param, double value) {
  if (args.csv) {
    std::printf("%s,%s,%s,%.6g\n", metric, dataset, param.c_str(), value);
  } else {
    std::printf("  %-16s %-10s %-22s %12.4g\n", metric, dataset,
                param.c_str(), value);
  }
}

GraphEpoch EpochInfo(const DynSnapshot& snapshot, bool incremental,
                     const std::shared_ptr<EpochShared<EpochSpectral>>& sp) {
  GraphEpoch epoch;
  epoch.epoch = snapshot.epoch;
  epoch.touched = std::span<const NodeId>(snapshot.touched);
  epoch.resized = snapshot.resized;
  epoch.incremental = incremental;
  epoch.spectral = sp;
  return epoch;
}

// Replays `rounds`+1 identical-seeded update epochs against a fresh
// estimator and returns the best post-warm-up swap latency. The factory
// builds the estimator on the initial snapshot; `incremental` selects
// the maintenance mode (and, for λ-readers, attaches a cross-epoch
// spectral holder).
template <typename MakeEstimator>
double TimeSwaps(const Args& args, const Graph& base, double frac,
                 bool incremental, bool attach_spectral,
                 MakeEstimator&& make) {
  DynamicGraph dyn{Graph(base)};
  auto snapshot = dyn.Current();
  auto estimator = make(*snapshot->graph);
  auto spectral = attach_spectral ? MakeSharedSpectral() : nullptr;
  UpdateGenerator generator(dyn, args.seed ^ 0x5a5a);
  const std::size_t count = std::max<std::size_t>(
      static_cast<std::size_t>(frac * static_cast<double>(base.NumEdges())),
      1);
  double best = 1e300;
  for (int round = 0; round <= args.rounds; ++round) {
    for (const EdgeUpdate& op : generator.NextBatch(count)) dyn.Apply(op);
    // The previous snapshot must outlive the rebind: EXACT diffs the old
    // CSR rows against the new ones to derive its rank-1 updates.
    auto prev = snapshot;
    snapshot = dyn.Commit();
    const GraphEpoch epoch = EpochInfo(*snapshot, incremental, spectral);
    Timer timer;
    GEER_CHECK(estimator->RebindGraph(*snapshot->graph, epoch));
    const double ms = timer.ElapsedMillis();
    if (round > 0) best = std::min(best, ms);  // round 0 = warm-up
  }
  return best;
}

template <typename MakeEstimator>
void BenchMode(const Args& args, const char* dataset, const char* name,
               const Graph& base, bool attach_spectral, MakeEstimator&& make) {
  for (const double frac : {0.001, 0.01}) {
    const double full =
        TimeSwaps(args, base, frac, /*incremental=*/false,
                  /*attach_spectral=*/false, make);
    const double incr = TimeSwaps(args, base, frac, /*incremental=*/true,
                                  attach_spectral, make);
    char param[64];
    std::snprintf(param, sizeof(param), "%s_touch%g%%_full", name,
                  frac * 100.0);
    Emit(args, "swap_ms", dataset, param, full);
    std::snprintf(param, sizeof(param), "%s_touch%g%%_incr", name,
                  frac * 100.0);
    Emit(args, "swap_ms", dataset, param, incr);
    std::snprintf(param, sizeof(param), "%s_touch%g%%", name, frac * 100.0);
    Emit(args, "swap_speedup", dataset, param, incr > 0 ? full / incr : 0.0);
  }
}

int Main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string(key) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = value("--scale")) {
      args.scale = std::atof(v->c_str());
    } else if (auto v = value("--seed")) {
      args.seed = static_cast<std::uint64_t>(std::atoll(v->c_str()));
    } else if (auto v = value("--rounds")) {
      args.rounds = std::atoi(v->c_str());
    } else if (arg == "--csv") {
      args.csv = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  if (args.csv) {
    std::printf("metric,dataset,param,value\n");
  } else {
    std::printf("# epoch_swap: full-rebuild vs incremental RebindGraph "
                "(rounds=%d, best-of, 1 warm-up)\n",
                args.rounds);
  }

  ErOptions smm_options;
  smm_options.epsilon = 0.1;
  smm_options.seed = args.seed;
  auto make_smm = [&smm_options](const Graph& graph) {
    return std::make_unique<SmmEstimator>(graph, smm_options);
  };
  ErOptions exact_options;
  exact_options.seed = args.seed;
  auto make_exact = [&exact_options](const Graph& graph) {
    return std::make_unique<ExactEstimator>(graph, exact_options,
                                            graph.NumNodes());
  };

  // λ-dominated swaps on both serve datasets (dblp is the largest the
  // pinned suite runs); factor-dominated on facebook, where EXACT's
  // dense factor fits comfortably.
  auto facebook = MakeDataset("facebook", args.scale);
  GEER_CHECK(facebook.has_value());
  auto dblp = MakeDataset("dblp", args.scale);
  GEER_CHECK(dblp.has_value());
  BenchMode(args, "facebook", "smm", facebook->graph,
            /*attach_spectral=*/true, make_smm);
  BenchMode(args, "dblp", "smm", dblp->graph, /*attach_spectral=*/true,
            make_smm);
  BenchMode(args, "facebook", "exact", facebook->graph,
            /*attach_spectral=*/false, make_exact);
  return 0;
}

}  // namespace
}  // namespace geer

int main(int argc, char** argv) { return geer::Main(argc, argv); }
