// Query interface for weighted ε-approximate PER estimators. Reuses the
// unweighted QueryStats instrumentation so the bench harness can print
// weighted and unweighted runs side by side.

#ifndef GEER_WEIGHTED_WEIGHTED_ESTIMATOR_H_
#define GEER_WEIGHTED_WEIGHTED_ESTIMATOR_H_

#include <string>

#include "core/estimator.h"
#include "weighted/weighted_graph.h"
#include "weighted/weighted_laplacian.h"

namespace geer {

/// Interface for ε-approximate effective-resistance estimators on
/// weighted (conductance) graphs. Same contract as ErEstimator.
class WeightedErEstimator {
 public:
  virtual ~WeightedErEstimator() = default;

  /// Short algorithm name ("W-GEER", "W-AMC", "W-SMM", "W-CG").
  virtual std::string Name() const = 0;

  /// Answers the ε-approximate PER query for pair (s, t).
  virtual QueryStats EstimateWithStats(NodeId s, NodeId t) = 0;

  /// Convenience: just the estimate.
  double Estimate(NodeId s, NodeId t) { return EstimateWithStats(s, t).value; }
};

/// High-accuracy oracle: one CG solve per query on the weighted Laplacian.
/// Deterministic; the ground truth for weighted tests and benches.
class WeightedSolverEstimator : public WeightedErEstimator {
 public:
  explicit WeightedSolverEstimator(
      const WeightedGraph& graph,
      WeightedLaplacianSolver::Options options = {.max_iterations = 20000,
                                                  .tolerance = 1e-12})
      : solver_(graph, options) {}
  // The solver stores a pointer to `graph`; a temporary would dangle.
  explicit WeightedSolverEstimator(
      WeightedGraph&&, WeightedLaplacianSolver::Options = {}) = delete;

  std::string Name() const override { return "W-CG"; }

  QueryStats EstimateWithStats(NodeId s, NodeId t) override {
    QueryStats stats;
    stats.value = solver_.EffectiveResistance(s, t);
    return stats;
  }

 private:
  WeightedLaplacianSolver solver_;
};

}  // namespace geer

#endif  // GEER_WEIGHTED_WEIGHTED_ESTIMATOR_H_
