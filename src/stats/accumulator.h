// Streaming statistics accumulators.

#ifndef GEER_STATS_ACCUMULATOR_H_
#define GEER_STATS_ACCUMULATOR_H_

#include <cstdint>

namespace geer {

/// Accumulates mean and (biased, 1/n) empirical variance in one pass using
/// the Σz / Σz² identity the paper exploits (Alg. 1, lines 8–12). For the
/// bounded variables AMC feeds it, the cancellation risk of the naive
/// formula is negligible; `MeanVarWelford` exists for the general case and
/// the two are cross-checked in tests.
class MeanVarAccumulator {
 public:
  void Add(double z) {
    sum_ += z;
    sum_sq_ += z * z;
    ++count_;
  }

  void Reset() {
    sum_ = 0.0;
    sum_sq_ = 0.0;
    count_ = 0;
  }

  std::uint64_t Count() const { return count_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / Count64(); }

  /// Biased empirical variance σ̂² = (Σz²)/n − mean², clamped at 0.
  double Variance() const {
    if (count_ == 0) return 0.0;
    const double mean = Mean();
    const double var = sum_sq_ / Count64() - mean * mean;
    return var < 0.0 ? 0.0 : var;
  }

 private:
  double Count64() const { return static_cast<double>(count_); }
  double sum_ = 0.0;
  double sum_sq_ = 0.0;
  std::uint64_t count_ = 0;
};

/// Numerically stable Welford mean/variance (population, 1/n).
class MeanVarWelford {
 public:
  void Add(double z) {
    ++count_;
    const double delta = z - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (z - mean_);
  }

  void Reset() {
    mean_ = 0.0;
    m2_ = 0.0;
    count_ = 0;
  }

  std::uint64_t Count() const { return count_; }
  double Mean() const { return count_ == 0 ? 0.0 : mean_; }
  double Variance() const {
    return count_ == 0 ? 0.0 : m2_ / static_cast<double>(count_);
  }

 private:
  double mean_ = 0.0;
  double m2_ = 0.0;
  std::uint64_t count_ = 0;
};

/// Min/max/mean tracker for benchmark summaries.
class SummaryAccumulator {
 public:
  void Add(double v);
  std::uint64_t Count() const { return count_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / count_; }
  double Min() const { return min_; }
  double Max() const { return max_; }
  double Sum() const { return sum_; }

 private:
  double sum_ = 0.0;
  double min_ = 1e300;
  double max_ = -1e300;
  std::uint64_t count_ = 0;
};

}  // namespace geer

#endif  // GEER_STATS_ACCUMULATOR_H_
