// Figs. 8 & 9: sensitivity of AMC and GEER to the batch count τ ∈ 1..8,
// at ε = 0.2 (Fig. 8) and ε = 0.02 (Fig. 9), on the DBLP-, YouTube- and
// Orkut-like datasets. The paper's finding: τ ≈ 5 is a good default; at
// small ε more batches help AMC a lot.

#include <cstdio>

#include "bench/bench_common.h"
#include "eval/queries.h"
#include "eval/table.h"
#include "util/format.h"

namespace geer {
namespace {

void RunForEpsilon(const bench::BenchArgs& args, double epsilon) {
  std::printf("-- epsilon = %.3g (Fig. %s)\n", epsilon,
              epsilon >= 0.1 ? "8" : "9");
  for (const Dataset& ds : args.LoadDatasets()) {
    std::printf("== %s\n", DescribeDataset(ds).c_str());
    auto queries = RandomPairs(ds.graph, args.num_queries, args.seed);
    std::vector<std::string> header = {"method"};
    for (int tau = 1; tau <= 8; ++tau) {
      header.push_back("tau=" + std::to_string(tau));
    }
    TextTable table(header);
    for (const char* method : {"GEER", "AMC"}) {
      std::vector<std::string> row = {method};
      for (int tau = 1; tau <= 8; ++tau) {
        ErOptions opt = args.BaseOptions(epsilon);
        opt.tau = tau;
        if (bench::ProjectedOpsPerQuery(method, ds, opt) >
            args.ops_budget) {
          row.push_back("DNF");
          continue;
        }
        RunConfig config;
        config.deadline_seconds = args.deadline_seconds;
        config.collect_errors = false;
        MethodResult res = RunMethod(ds, method, opt, queries, {}, config);
        row.push_back(bench::Cell(res));
      }
      table.AddRow(row);
    }
    std::fputs(args.csv ? table.RenderCsv().c_str()
                        : table.Render().c_str(),
               stdout);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace geer

int main(int argc, char** argv) {
  auto args = geer::bench::BenchArgs::Parse(argc, argv);
  // Paper uses DBLP / YouTube / Orkut for this experiment.
  if (args.graph_path.empty() && args.datasets == geer::DatasetNames()) {
    args.datasets = {"dblp", "youtube", "orkut"};
  }
  std::printf("Figs. 8-9 reproduction: avg running time (ms) vs tau "
              "(batches), %zu random queries per dataset\n\n",
              args.num_queries);
  const bool custom_eps = args.epsilons.size() <= 2;
  if (custom_eps) {
    for (double eps : args.epsilons) geer::RunForEpsilon(args, eps);
  } else {
    geer::RunForEpsilon(args, 0.2);   // Fig. 8
    geer::RunForEpsilon(args, 0.02);  // Fig. 9
  }
  return 0;
}
