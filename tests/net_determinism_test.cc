// The networked bit-identity contract, end to end: a router over two
// in-process shard servers (full replicas, loopback ephemeral ports)
// answers a shuffled Zipf trace BIT-IDENTICALLY to the in-process
// QueryService built from the same graph, seed and options — including
// across a router-coordinated epoch swap (non-incremental ApplyUpdates
// broadcast to every shard, each deriving the same λ deterministically
// exactly as net/shard_service.cc does). Also pins the epoch stamps a
// client observes (0 before the swap, the committed epoch after), the
// aggregate HelloAck, the ok=false ack for an invalid update stream
// (with the cluster still serving the old epoch afterwards), the
// kFailed outcome for an out-of-range query, and the fail-fast Hello
// verification when replicas disagree. Runs under ThreadSanitizer in CI
// (router fan-out + shard handlers + submitter senders all exercise the
// swap barrier concurrently).

#include <gtest/gtest.h>

#include <cstdint>
#include <numeric>
#include <optional>
#include <string>
#include <vector>

#include "core/registry.h"
#include "dyn/dyn_serve.h"
#include "dyn/dynamic_graph.h"
#include "eval/datasets.h"
#include "linalg/spectral.h"
#include "net/codec.h"
#include "net/router.h"
#include "net/shard_service.h"
#include "net/submitter.h"
#include "serve/query_service.h"
#include "serve/trace.h"
#include "test_util.h"

namespace geer::net {
namespace {

constexpr std::uint64_t kSeed = 20260809;

ErOptions TestErOptions() {
  ErOptions opt;
  opt.epsilon = 0.5;
  opt.delta = 0.1;
  opt.seed = kSeed;
  opt.tp_scale = 0.01;  // scaled constants keep the suite fast
  return opt;
}

ServeOptions TestServeOptions() {
  ServeOptions opt;
  opt.threads = 2;
  opt.max_batch_size = 8;
  opt.max_linger_seconds = 0.0;
  return opt;
}

/// The shuffled Zipf query order both transports replay.
std::vector<QueryPair> TestQueries(NodeId n, std::size_t count) {
  std::vector<NodeId> ranking(n);
  std::iota(ranking.begin(), ranking.end(), NodeId{0});
  const auto queries = MakeZipfQueries(ranking, count, 0.8, kSeed);
  const auto trace = ShuffleTracePayloads(
      MakeOpenLoopTrace(queries, /*qps=*/0.0, kSeed), kSeed + 1);
  std::vector<QueryPair> shuffled;
  shuffled.reserve(trace.size());
  for (const TraceEvent& event : trace) shuffled.push_back(event.query);
  return shuffled;
}

std::vector<QueryResult> SubmitAll(QuerySubmitter& submitter,
                                   std::span<const QueryPair> queries) {
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(queries.size());
  for (const QueryPair& q : queries) futures.push_back(submitter.Submit(q));
  submitter.Flush();
  std::vector<QueryResult> results;
  results.reserve(queries.size());
  for (auto& f : futures) results.push_back(f.get());
  return results;
}

/// The in-process truth, built EXACTLY the way a shard server builds its
/// replica (net/shard_service.cc): λ derived cold via
/// ComputeSpectralBoundsT on the served snapshot when the method reads
/// it, estimator from the registry, epoch swaps through ApplyEpochUpdate
/// with a freshly derived λ. Any divergence here is a divergence in the
/// contract itself.
class InProcessTruth {
 public:
  explicit InProcessTruth(Graph graph) : dyn_(std::move(graph)) {
    snapshot_ = dyn_.Current();
    reads_lambda_ = EstimatorReadsLambda("GEER");
    ErOptions build = TestErOptions();
    if (reads_lambda_ && !build.lambda.has_value()) {
      build.lambda =
          ComputeSpectralBoundsT<UnitWeight>(*snapshot_->graph).lambda;
    }
    estimator_ = CreateEstimator("GEER", *snapshot_->graph, build);
    service_ = std::make_unique<QueryService>(*estimator_, TestServeOptions());
  }

  DynamicGraph& dyn() { return dyn_; }
  QueryService& service() { return *service_; }

  /// Mirrors ShardServer::HandleApplyUpdates for the non-incremental
  /// path: apply + commit + cold λ + barrier swap.
  bool ApplyAndSwap(const std::vector<EdgeUpdate>& updates) {
    for (const EdgeUpdate& op : updates) dyn_.Apply(op);
    auto snapshot = dyn_.Commit();
    std::optional<double> lambda;
    if (reads_lambda_) {
      lambda = ComputeSpectralBoundsT<UnitWeight>(*snapshot->graph).lambda;
    }
    const bool ok = ApplyEpochUpdate<UnitWeight>(*service_, snapshot, lambda,
                                                 /*incremental=*/false,
                                                 nullptr)
                        .get();
    if (ok) snapshot_ = snapshot;
    return ok;
  }

 private:
  DynamicGraph dyn_;
  std::shared_ptr<const DynSnapshot> snapshot_;
  bool reads_lambda_ = false;
  std::unique_ptr<ErEstimator> estimator_;
  std::unique_ptr<QueryService> service_;
};

/// A 2-shard deployment on loopback: two full-replica shard servers and
/// a router, all in-process, all on ephemeral ports.
class Cluster {
 public:
  explicit Cluster(const Graph& graph) {
    ShardOptions shard;
    shard.num_shards = 2;
    shard.er = TestErOptions();
    shard.serve = TestServeOptions();
    for (int i = 0; i < 2; ++i) {
      shard.shard_id = i;
      shards_.push_back(std::make_unique<ShardServer>(graph, shard));
      std::string error;
      EXPECT_TRUE(shards_.back()->Start(&error)) << error;
    }
    RouterOptions opt;
    opt.strategy = PartitionStrategy::kRange;
    opt.connections_per_shard = 2;
    router_ = std::make_unique<Router>(
        std::vector<ShardAddress>{{"127.0.0.1", shards_[0]->port()},
                                  {"127.0.0.1", shards_[1]->port()}},
        opt);
    std::string error;
    EXPECT_TRUE(router_->Start(&error)) << error;
  }

  ~Cluster() {
    router_->Stop();
    router_->Wait();
    for (auto& shard : shards_) {
      shard->Stop();
      shard->Wait();
    }
  }

  std::uint16_t router_port() const { return router_->port(); }

 private:
  std::vector<std::unique_ptr<ShardServer>> shards_;
  std::unique_ptr<Router> router_;
};

TEST(NetDeterminismTest, ClusterMatchesInProcessServiceBitwiseAcrossSwap) {
  auto dataset = MakeDataset("facebook", 0.05);
  ASSERT_TRUE(dataset.has_value());
  const NodeId n = dataset->graph.NumNodes();
  const auto queries = TestQueries(n, 48);

  InProcessTruth truth(dataset->graph);
  // One update batch, generated once and shipped to BOTH transports.
  UpdateGenerator generator(truth.dyn(), kSeed);
  const std::vector<EdgeUpdate> batch = generator.NextBatch(12);

  const auto truth_before = SubmitAll(truth.service(), queries);
  ASSERT_TRUE(truth.ApplyAndSwap(batch));
  const auto truth_after = SubmitAll(truth.service(), queries);

  Cluster cluster(dataset->graph);
  NetSubmitter submitter("127.0.0.1", cluster.router_port(), 3);
  std::string error;
  ASSERT_TRUE(submitter.Connect(&error)) << error;

  // Aggregate HelloAck: the router reports the deployment, not a shard.
  EXPECT_EQ(submitter.info().num_nodes, n);
  EXPECT_EQ(submitter.info().num_edges, dataset->graph.NumEdges());
  EXPECT_EQ(submitter.info().epoch, 0u);
  EXPECT_EQ(submitter.info().num_shards, 2u);

  const auto net_before = SubmitAll(submitter, queries);
  ASSERT_EQ(net_before.size(), truth_before.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(net_before[i].status, ServeStatus::kAnswered)
        << "query " << i << " (" << queries[i].s << "," << queries[i].t << ")";
    ASSERT_EQ(truth_before[i].status, ServeStatus::kAnswered);
    // THE contract: the networked answer is the in-process answer, to
    // the last bit, whatever replica and micro-batch it rode through.
    EXPECT_EQ(net_before[i].stats.value, truth_before[i].stats.value)
        << "query " << i << " diverged over the wire (epoch 0)";
    EXPECT_EQ(net_before[i].epoch, 0u);
  }

  // Router-coordinated swap: broadcast, all-acks, new epoch everywhere.
  ApplyUpdatesMsg msg;
  msg.updates = batch;
  ApplyUpdatesAckMsg ack;
  ASSERT_TRUE(submitter.ApplyUpdates(msg, &ack, &error)) << error;
  EXPECT_TRUE(ack.ok);
  EXPECT_EQ(ack.epoch, 1u);

  const auto net_after = SubmitAll(submitter, queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(net_after[i].status, ServeStatus::kAnswered) << "query " << i;
    ASSERT_EQ(truth_after[i].status, ServeStatus::kAnswered);
    EXPECT_EQ(net_after[i].stats.value, truth_after[i].stats.value)
        << "query " << i << " diverged over the wire (epoch 1)";
    EXPECT_EQ(net_after[i].epoch, 1u);
  }

  // Out-of-range endpoints come back as a serving outcome, not a hang or
  // a dead connection: the router replies kError(kOutOfRange), the
  // submitter resolves kFailed, and the next query still works.
  QueryResult bad = submitter.Submit({n, 0}).get();
  EXPECT_EQ(bad.status, ServeStatus::kFailed);
  QueryResult good = submitter.Submit(queries[0]).get();
  EXPECT_EQ(good.status, ServeStatus::kAnswered);
  EXPECT_EQ(good.stats.value, truth_after[0].stats.value);

  submitter.Close();
}

TEST(NetDeterminismTest, InvalidUpdateStreamAcksFalseAndKeepsServing) {
  const Graph graph = geer::testing::DenseTestGraph(24);
  const NodeId n = graph.NumNodes();
  const auto queries = TestQueries(n, 12);

  InProcessTruth truth(graph);
  const auto want = SubmitAll(truth.service(), queries);

  Cluster cluster(graph);
  NetSubmitter submitter("127.0.0.1", cluster.router_port(), 2);
  std::string error;
  ASSERT_TRUE(submitter.Connect(&error)) << error;

  // Deleting an absent edge is a contract violation: the shard must
  // pre-validate and ack ok=false — never abort, never half-apply.
  ApplyUpdatesMsg msg;
  msg.updates = {{EdgeUpdateKind::kDelete, 0, 13, 1.0}};
  ASSERT_FALSE(graph.HasEdge(0, 13));
  ApplyUpdatesAckMsg ack;
  ASSERT_TRUE(submitter.ApplyUpdates(msg, &ack, &error)) << error;
  EXPECT_FALSE(ack.ok);
  EXPECT_EQ(ack.epoch, 0u);

  // The cluster still serves epoch 0, bit-identical to the truth.
  const auto got = SubmitAll(submitter, queries);
  for (std::size_t i = 0; i < queries.size(); ++i) {
    ASSERT_EQ(got[i].status, ServeStatus::kAnswered) << "query " << i;
    EXPECT_EQ(got[i].stats.value, want[i].stats.value) << "query " << i;
    EXPECT_EQ(got[i].epoch, 0u);
  }
  submitter.Close();
}

TEST(NetDeterminismTest, RouterRejectsDisagreeingReplicas) {
  // A mis-deployed cluster (shards serving different graphs) must fail
  // the Hello verification at Start, not answer garbage later.
  ShardOptions opt;
  opt.num_shards = 2;
  opt.er = TestErOptions();
  opt.serve = TestServeOptions();
  ShardServer small(geer::testing::DenseTestGraph(16), opt);
  ShardServer large(geer::testing::DenseTestGraph(24), opt);
  std::string error;
  ASSERT_TRUE(small.Start(&error)) << error;
  ASSERT_TRUE(large.Start(&error)) << error;

  Router router({{"127.0.0.1", small.port()}, {"127.0.0.1", large.port()}},
                RouterOptions{});
  error.clear();
  EXPECT_FALSE(router.Start(&error));
  EXPECT_FALSE(error.empty());

  small.Stop();
  small.Wait();
  large.Stop();
  large.Wait();
}

}  // namespace
}  // namespace geer::net
