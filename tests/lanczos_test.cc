#include "linalg/lanczos.h"

#include <gtest/gtest.h>

#include "linalg/jacobi_eigen.h"
#include "rw/rng.h"

namespace geer {
namespace {

// Wraps a dense symmetric matrix as an operator.
std::function<void(const Vector&, Vector*)> AsOperator(const Matrix& m) {
  return [&m](const Vector& x, Vector* y) { *y = MatVec(m, x); };
}

Matrix RandomSymmetric(std::size_t n, std::uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.NextGaussian();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  return m;
}

TEST(LanczosTest, DiagonalExtremes) {
  Matrix m(5, 5, 0.0);
  const double diag[5] = {-2.0, 0.5, 1.0, 3.0, -1.0};
  for (int i = 0; i < 5; ++i) m(i, i) = diag[i];
  LanczosResult res = LanczosExtremeEigenvalues(AsOperator(m), 5, {});
  EXPECT_NEAR(res.max_eigenvalue, 3.0, 1e-8);
  EXPECT_NEAR(res.min_eigenvalue, -2.0, 1e-8);
}

TEST(LanczosTest, MatchesJacobiOnRandomSymmetric) {
  const std::size_t n = 30;
  Matrix m = RandomSymmetric(n, 123);
  EigenDecomposition dense = JacobiEigenSolve(m);
  LanczosResult res = LanczosExtremeEigenvalues(AsOperator(m), n, {});
  EXPECT_NEAR(res.max_eigenvalue, dense.eigenvalues.back(), 1e-7);
  EXPECT_NEAR(res.min_eigenvalue, dense.eigenvalues.front(), 1e-7);
}

TEST(LanczosTest, DeflationExposesSecondEigenvalue) {
  const std::size_t n = 25;
  Matrix m = RandomSymmetric(n, 321);
  EigenDecomposition dense = JacobiEigenSolve(m);
  // Deflate the top eigenvector; the max Ritz value is then λ_{n−1}.
  Vector top(n);
  for (std::size_t i = 0; i < n; ++i) {
    top[i] = dense.eigenvectors(i, n - 1);
  }
  LanczosResult res = LanczosExtremeEigenvalues(AsOperator(m), n, {top});
  EXPECT_NEAR(res.max_eigenvalue, dense.eigenvalues[n - 2], 1e-7);
}

TEST(LanczosTest, ConvergesOnLowRank) {
  // Rank-1 matrix v vᵀ: eigenvalues {‖v‖², 0,…}; Lanczos must stop early.
  const std::size_t n = 40;
  Rng rng(9);
  Vector v(n);
  for (auto& e : v) e = rng.NextGaussian();
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) m(i, j) = v[i] * v[j];
  }
  LanczosResult res = LanczosExtremeEigenvalues(AsOperator(m), n, {});
  EXPECT_TRUE(res.converged);
  EXPECT_LT(res.iterations, 5);
  EXPECT_NEAR(res.max_eigenvalue, Dot(v, v), 1e-6);
}

TEST(LanczosTest, IterationCapRespected) {
  const std::size_t n = 50;
  Matrix m = RandomSymmetric(n, 8);
  LanczosOptions opt;
  opt.max_iterations = 10;
  LanczosResult res = LanczosExtremeEigenvalues(AsOperator(m), n, {}, opt);
  EXPECT_LE(res.iterations, 10);
}

}  // namespace
}  // namespace geer
