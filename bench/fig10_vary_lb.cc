// Fig. 10: ablation of GEER's greedy switch point. For each query, first
// run greedy GEER to obtain its ℓ*_b, then re-run with the switch point
// fixed to ℓ*_b + offset for offset ∈ {−6, −4, −2, 0, +2, +4, +6}. The
// paper's finding: the greedy ℓ*_b sits at (or next to) the runtime
// minimum — smaller ℓ_b degrades toward AMC, larger drowns in SpMVs.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "core/registry.h"
#include "eval/queries.h"
#include "eval/table.h"
#include "util/format.h"
#include "util/timer.h"

namespace geer {
namespace {

void Run(const bench::BenchArgs& args) {
  const int offsets[] = {-6, -4, -2, 0, 2, 4, 6};
  for (const Dataset& ds : args.LoadDatasets()) {
    std::printf("== Fig.10 | %s\n", DescribeDataset(ds).c_str());
    auto queries = RandomPairs(ds.graph, args.num_queries, args.seed);
    std::vector<std::string> header = {"epsilon"};
    for (int off : offsets) {
      header.push_back(off == 0 ? "lb*" :
                       (off > 0 ? "lb*+" + std::to_string(off)
                                : "lb*-" + std::to_string(-off)));
    }
    TextTable table(header);
    for (double eps : args.epsilons) {
      ErOptions greedy_opt = args.BaseOptions(eps);
      greedy_opt.lambda = ds.spectral.lambda;
      auto greedy = CreateEstimator("GEER", ds.graph, greedy_opt);
      // Probe each query's greedy switch point once.
      std::vector<std::uint32_t> lb_star(queries.size(), 0);
      Deadline probe_deadline(args.deadline_seconds);
      std::size_t usable = queries.size();
      for (std::size_t i = 0; i < queries.size(); ++i) {
        lb_star[i] =
            greedy->EstimateWithStats(queries[i].s, queries[i].t).ell_b;
        if (probe_deadline.Expired()) {
          usable = i + 1;
          break;
        }
      }
      std::vector<std::string> row = {FormatSig(eps, 2)};
      for (int off : offsets) {
        Deadline deadline(args.deadline_seconds);
        double total_ms = 0.0;
        std::size_t answered = 0;
        bool completed = true;
        for (std::size_t i = 0; i < usable; ++i) {
          ErOptions opt = args.BaseOptions(eps);
          opt.lambda = ds.spectral.lambda;
          opt.geer_fixed_lb = std::max<std::int64_t>(
              0, static_cast<std::int64_t>(lb_star[i]) + off);
          auto est = CreateEstimator("GEER", ds.graph, opt);
          Timer timer;
          est->Estimate(queries[i].s, queries[i].t);
          total_ms += timer.ElapsedMillis();
          ++answered;
          if (deadline.Expired() && i + 1 < usable) {
            completed = false;
            break;
          }
        }
        std::string cell =
            answered == 0 ? "DNF" : FormatSig(total_ms / answered, 3);
        if (!completed) cell += "*";
        row.push_back(cell);
      }
      table.AddRow(row);
    }
    std::fputs(args.csv ? table.RenderCsv().c_str()
                        : table.Render().c_str(),
               stdout);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace geer

int main(int argc, char** argv) {
  auto args = geer::bench::BenchArgs::Parse(argc, argv);
  if (args.graph_path.empty() && args.datasets == geer::DatasetNames()) {
    args.datasets = {"facebook", "dblp", "livejournal", "orkut"};
  }
  if (args.epsilons.size() > 3) args.epsilons = {0.2, 0.05, 0.01};
  std::printf("Fig. 10 reproduction: GEER avg query time (ms) with the "
              "switch point fixed at lb* + offset\n\n");
  geer::Run(args);
  return 0;
}
