// Self-test for the vendored test framework (tests/gtest/gtest.h). The
// framework is the foundation every other suite stands on, so its own
// semantics are pinned here: comparison helpers, the 4-ULP double
// comparison, generator materialization order, first-class skip state,
// and the fork-based death-test machinery (exercised from both sides).

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <limits>
#include <stdexcept>
#include <string>
#include <tuple>
#include <vector>

namespace {

using ::testing::internal::AlmostEqualDoubles;
using ::testing::internal::CmpHelperEQ;
using ::testing::internal::CmpHelperLE;
using ::testing::internal::CmpHelperNear;
using ::testing::internal::RunDeathTest;

TEST(FrameworkSelfTest, CmpHelpersReturnEmptyOnSuccess) {
  EXPECT_TRUE(CmpHelperEQ("a", "b", 3, 3).empty());
  EXPECT_TRUE(CmpHelperLE("a", "b", 2, 3).empty());
  EXPECT_TRUE(CmpHelperNear("a", "b", "tol", 1.0, 1.05, 0.1).empty());
}

TEST(FrameworkSelfTest, CmpHelpersDescribeFailures) {
  const std::string msg = CmpHelperEQ("lhs_expr", "rhs_expr", 3, 4);
  EXPECT_NE(msg.find("lhs_expr"), std::string::npos);
  EXPECT_NE(msg.find("rhs_expr"), std::string::npos);
  EXPECT_NE(msg.find("3"), std::string::npos);
  EXPECT_NE(msg.find("4"), std::string::npos);
  EXPECT_FALSE(CmpHelperNear("a", "b", "tol", 1.0, 2.0, 0.5).empty());
}

TEST(FrameworkSelfTest, DoubleEqIsUlpBasedNotExact) {
  const double one_third = 1.0 / 3.0;
  // Accumulating 1/3 three times lands within a few ULPs of 1, not at 1.
  EXPECT_TRUE(AlmostEqualDoubles(one_third * 3.0,
                                 one_third + one_third + one_third));
  EXPECT_TRUE(AlmostEqualDoubles(0.0, -0.0));
  EXPECT_FALSE(AlmostEqualDoubles(1.0, 1.0 + 1e-9));
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(AlmostEqualDoubles(nan, nan));
  EXPECT_FALSE(AlmostEqualDoubles(1.0, -1.0));
}

TEST(FrameworkSelfTest, ThrowHelpersClassifyOutcomes) {
  using ::testing::internal::NoThrowTestFailure;
  using ::testing::internal::ThrowTestFailure;
  const auto throws_runtime = [] { throw std::runtime_error("x"); };
  const auto throws_int = [] { throw 42; };
  const auto benign = [] {};
  EXPECT_TRUE(
      ThrowTestFailure<std::runtime_error>(throws_runtime, "s", "t").empty());
  EXPECT_NE(ThrowTestFailure<std::runtime_error>(benign, "s", "t")
                .find("throws nothing"),
            std::string::npos);
  EXPECT_NE(ThrowTestFailure<std::runtime_error>(throws_int, "s", "t")
                .find("different exception type"),
            std::string::npos);
  EXPECT_TRUE(NoThrowTestFailure(benign, "s").empty());
  EXPECT_FALSE(NoThrowTestFailure(throws_runtime, "s").empty());
  // The macro spellings over the same helpers.
  EXPECT_THROW(throw std::runtime_error("x"), std::runtime_error);
  EXPECT_NO_THROW((void)0);
}

TEST(FrameworkSelfTest, ValuesMaterializesInOrder) {
  const auto gen = ::testing::Values(5, 1, 3);
  const std::vector<int> expected = {5, 1, 3};
  EXPECT_EQ(gen.Materialize(), expected);
}

TEST(FrameworkSelfTest, CombineIsCartesianLastAxisFastest) {
  const auto gen = ::testing::Combine(::testing::Values(std::string("a"),
                                                        std::string("b")),
                                      ::testing::Values(1, 2, 3));
  const auto tuples = gen.Materialize();
  ASSERT_EQ(tuples.size(), 6u);
  // GoogleTest order: the last generator varies fastest.
  EXPECT_EQ(std::get<0>(tuples[0]), "a");
  EXPECT_EQ(std::get<1>(tuples[0]), 1);
  EXPECT_EQ(std::get<1>(tuples[1]), 2);
  EXPECT_EQ(std::get<0>(tuples[3]), "b");
  EXPECT_EQ(std::get<1>(tuples[5]), 3);
}

TEST(FrameworkSelfTest, DeathTestDetectsAbort) {
  std::string why;
  EXPECT_TRUE(RunDeathTest(
      [] {
        std::fprintf(stderr, "fatal: invariant violated\n");
        std::abort();
      },
      "invariant", &why))
      << why;
}

TEST(FrameworkSelfTest, DeathTestRejectsSurvivingStatement) {
  std::string why;
  EXPECT_FALSE(RunDeathTest([] { /* lives */ }, ".*", &why));
  EXPECT_NE(why.find("without dying"), std::string::npos);
}

TEST(FrameworkSelfTest, DeathTestRejectsWrongMessage) {
  std::string why;
  EXPECT_FALSE(RunDeathTest(
      [] {
        std::fprintf(stderr, "some other complaint\n");
        std::abort();
      },
      "the expected pattern", &why));
  EXPECT_NE(why.find("did not match"), std::string::npos);
}

// A failing assertion inside a forked child makes the child's runner exit
// non-zero — which is exactly what a death test can observe. This closes
// the loop: the framework's failure path is itself verified to be fatal
// at the process level, so CTest can trust exit codes.
TEST(FrameworkSelfTest, FailedExpectationIsRecordedAndReported) {
  EXPECT_DEATH(
      {
        EXPECT_EQ(1, 2) << "deliberate mismatch";
        std::exit(::testing::internal::CurrentTest::Get().result ==
                          ::testing::internal::TestResult::kFailed
                      ? 7
                      : 0);
      },
      "deliberate mismatch");
}

TEST(FrameworkSelfTest, SkipShortCircuitsTheBody) {
  GTEST_SKIP() << "skip is a first-class result, not a failure";
  ADD_FAILURE() << "unreachable: GTEST_SKIP must return";
}

class FixtureSelfTest : public ::testing::Test {
 protected:
  void SetUp() override { setup_ran_ = true; }
  bool setup_ran_ = false;
};

TEST_F(FixtureSelfTest, SetUpRunsBeforeBody) { EXPECT_TRUE(setup_ran_); }

class ParamSelfTest : public ::testing::TestWithParam<int> {};

TEST_P(ParamSelfTest, ReceivesEachValue) {
  EXPECT_GE(GetParam(), 10);
  EXPECT_LE(GetParam(), 30);
}

INSTANTIATE_TEST_SUITE_P(Range, ParamSelfTest,
                         ::testing::Values(10, 20, 30),
                         [](const ::testing::TestParamInfo<int>& info) {
                           return "v" + std::to_string(info.param);
                         });

TEST(FrameworkSelfTest, ParamSuiteInstantiationIsTracked) {
  const auto& suites = ::testing::internal::ParamSuiteInstantiated();
  const auto it = suites.find("ParamSelfTest");
  ASSERT_NE(it, suites.end());
  EXPECT_TRUE(it->second) << "INSTANTIATE_TEST_SUITE_P did not mark suite";
}

// Regression: INSTANTIATE_TEST_SUITE_P naming a suite with no TEST_P used
// to register zero tests silently; it must now enqueue a failing test.
TEST(FrameworkSelfTest, InstantiatingUnknownSuiteRegistersAFailure) {
  auto& registry = ::testing::internal::Registry();
  const std::size_t before = registry.size();
  ::testing::internal::ParamRegistry<int>::Instance().Instantiate(
      "Typo", "NoSuchSuite", {1, 2}, nullptr);
  ASSERT_EQ(registry.size(), before + 1);
  EXPECT_EQ(registry.back().suite, "Typo/NoSuchSuite");
  EXPECT_EQ(registry.back().name, "NoMatchingTestP");
  // Drop the synthetic failure so this (passing) binary stays green.
  registry.pop_back();
}

TEST(FrameworkSelfTest, FilterSpecMatchesLikeGoogleTest) {
  using ::testing::internal::MatchesFilterSpec;
  EXPECT_TRUE(MatchesFilterSpec("Suite.Name", "*"));
  EXPECT_TRUE(MatchesFilterSpec("Suite.Name", "Suite.*"));
  EXPECT_TRUE(MatchesFilterSpec("Suite.Name", "Suite.Name"));
  EXPECT_FALSE(MatchesFilterSpec("Suite.Name", "Other.*"));
  EXPECT_TRUE(MatchesFilterSpec("Suite.Name", "Other.*:Suite.*"));
  EXPECT_FALSE(MatchesFilterSpec("Suite.Name", "*-Suite.Name"));
  EXPECT_TRUE(MatchesFilterSpec("Suite.Other", "*-Suite.Name"));
  EXPECT_TRUE(MatchesFilterSpec("Suite.Name", "-Other.*"));
}

// Regression: TearDown must run even when the body throws, so fixtures
// can rely on cleanup. The probe runs in a forked child that aborts (with
// a marker on stderr) only if TearDown executed.
class ThrowingBodyFixture : public ::testing::Test {
 public:
  void TestBody() override { throw std::runtime_error("boom"); }

 protected:
  void TearDown() override {
    std::fprintf(stderr, "teardown-did-run\n");
  }
};

TEST(FrameworkSelfTest, TearDownRunsWhenBodyThrows) {
  EXPECT_DEATH(
      {
        ::testing::internal::RunOneTest<ThrowingBodyFixture>();
        std::abort();  // death expected; stderr must carry the marker
      },
      "teardown-did-run");
}

TEST(FrameworkSelfTest, TempDirIsUsable) {
  const std::string dir = ::testing::TempDir();
  ASSERT_FALSE(dir.empty());
  const std::string path = dir + "/geer_framework_selftest.txt";
  std::FILE* f = std::fopen(path.c_str(), "w");
  ASSERT_NE(f, nullptr);
  std::fputs("ok", f);
  std::fclose(f);
  std::remove(path.c_str());
}

}  // namespace
