// Blocking RPC client for the frame protocol: one Client = one TCP
// connection with a request/reply-in-turn discipline (request ids are
// still stamped and verified so a desynced peer is caught, not silently
// mismatched). Concurrency is via ClientPool — a fixed set of
// connections to one endpoint handed out under RAII leases, which is
// how the router fans queries out to a shard and how NetSubmitter
// (net/submitter.h) runs multi-client load.
//
// Every call returns false on transport error or protocol violation and
// leaves the client marked broken; a broken pooled connection is
// redialed on the next lease.

#ifndef GEER_NET_CLIENT_H_
#define GEER_NET_CLIENT_H_

#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "net/codec.h"
#include "net/socket.h"

namespace geer::net {

class Client {
 public:
  Client() = default;

  /// Dials host:port and runs the kHello handshake; the server's
  /// deployment info lands in info(). False (and *error) on failure.
  bool Connect(const std::string& host, std::uint16_t port,
               std::string* error);

  bool connected() const { return sock_.valid() && !broken_; }
  const HelloAckMsg& info() const { return info_; }

  /// One effective-resistance query. On success fills *response
  /// (whose status may still be a non-kAnswered ServeStatus — transport
  /// success, service-level verdict). On kError from the server, fills
  /// *error with the server's message and returns false.
  bool Query(const ServiceRequest& request, ServiceResponse* response,
             std::string* error);

  /// Drains the server's pending batch (QueryService::Flush).
  bool Flush(std::string* error);

  /// Ships an update batch and blocks until the epoch swap is acked.
  bool ApplyUpdates(const ApplyUpdatesMsg& msg, ApplyUpdatesAckMsg* ack,
                    std::string* error);

  /// Scrapes the server's metrics snapshot (merged across shards when
  /// the peer is a router).
  bool Stats(const StatsRequestMsg& msg, StatsReplyMsg* reply,
             std::string* error);

  /// Asks the server to shut down (acked before the server exits).
  bool Shutdown(std::string* error);

  void Close();

 private:
  /// Sends `type`+payload, blocks for the reply, verifies the echoed
  /// request id, rejects kError replies (decoding the server message
  /// into *error). Marks the client broken on any failure.
  bool Call(FrameType type, std::span<const std::uint8_t> payload,
            FrameType expect, Frame* reply, std::string* error);

  Socket sock_;
  FrameReader reader_;
  HelloAckMsg info_;
  std::uint64_t next_request_id_ = 1;
  bool broken_ = false;
};

/// Fixed-size pool of connections to one endpoint. Lease() blocks until
/// a connection is free; the lease returns it on destruction. Broken
/// connections are redialed transparently at lease time.
class ClientPool {
 public:
  ClientPool(std::string host, std::uint16_t port, int size);

  class Lease {
   public:
    Lease(ClientPool* pool, Client* client) : pool_(pool), client_(client) {}
    ~Lease() {
      if (pool_ != nullptr) pool_->Return(client_);
    }
    Lease(const Lease&) = delete;
    Lease& operator=(const Lease&) = delete;
    Lease(Lease&& other) noexcept
        : pool_(other.pool_), client_(other.client_) {
      other.pool_ = nullptr;
      other.client_ = nullptr;
    }

    /// Null when the (re)dial failed; the error is in pool->last_error().
    Client* get() const { return client_; }
    Client* operator->() const { return client_; }
    explicit operator bool() const { return client_ != nullptr; }

   private:
    ClientPool* pool_;
    Client* client_;
  };

  /// Blocks for a free slot, (re)connecting it if needed. A lease with a
  /// null client means the dial failed.
  Lease Acquire();

  const std::string& host() const { return host_; }
  std::uint16_t port() const { return port_; }
  int size() const { return static_cast<int>(slots_.size()); }
  std::string last_error() const;

 private:
  friend class Lease;
  void Return(Client* client);

  const std::string host_;
  const std::uint16_t port_;
  mutable std::mutex mu_;
  std::condition_variable free_cv_;
  std::vector<std::unique_ptr<Client>> slots_;
  std::vector<Client*> free_;
  std::string last_error_;
};

}  // namespace geer::net

#endif  // GEER_NET_CLIENT_H_
