// TPC baseline [Peng et al., KDD'21]: the collision refinement of TP.
// Each length-i probability in Eq. (4) is expressed through two
// half-length walk populations using reversibility
// (p_b(v,x) = d(x) p_b(x,v)/d(v) with a = ⌈i/2⌉, b = ⌊i/2⌋, a + b = i):
//
//   p_i(x,y)/d(y) = Σ_v p_a(x,v) · p_b(y,v) / d(v),
//
// estimated by the collision statistic Σ_v cntA(v)·cntB(v)/d(v) / N².
// The per-length sample count is 40000·(ℓ√(ℓβ_i)/ε + ℓ³β_i^{3/2}/ε²)
// where β_i ≥ max{Σ_v p_i(s,v)²/d(v), Σ_v p_i(t,v)²/d(v)} is unknown in
// practice (paper §2.3.2); we use the documented heuristic
//   β_i = max(1/(2m), 2^{-i}·max(1/d(s), 1/d(t)))
// which interpolates the i=0 value toward the stationary limit 1/(2m),
// and options.tpc_scale rescales the constant. With heuristic β the
// ε-guarantee is forfeited — exactly the caveat the paper states.

#ifndef GEER_CORE_TPC_H_
#define GEER_CORE_TPC_H_

#include "core/estimator.h"
#include "core/options.h"
#include "rw/walker.h"

namespace geer {

class TpcEstimator : public ErEstimator {
 public:
  TpcEstimator(const Graph& graph, ErOptions options = {});
  // Stores a pointer to `graph`; a temporary would dangle.
  TpcEstimator(Graph&&, ErOptions = {}) = delete;

  std::string Name() const override { return "TPC"; }
  QueryStats EstimateWithStats(NodeId s, NodeId t) override;

  double lambda() const { return lambda_; }

  /// The heuristic β_i used for the sample-count formula.
  double BetaHeuristic(std::uint32_t i, NodeId s, NodeId t) const;

  /// Walks per population for length i (after scaling).
  std::uint64_t WalksForLength(std::uint32_t i, std::uint32_t ell, NodeId s,
                               NodeId t) const;

 private:
  const Graph* graph_;
  ErOptions options_;
  double lambda_;
  Walker walker_;
  // Scratch: endpoint histograms with touched-lists, reused across calls.
  std::vector<std::uint32_t> count_a_;
  std::vector<std::uint32_t> count_b_;
  std::vector<NodeId> touched_;
};

}  // namespace geer

#endif  // GEER_CORE_TPC_H_
