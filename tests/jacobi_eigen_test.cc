#include "linalg/jacobi_eigen.h"

#include <gtest/gtest.h>

#include <cmath>

#include "rw/rng.h"

namespace geer {
namespace {

TEST(JacobiEigenTest, DiagonalMatrix) {
  Matrix m(3, 3, 0.0);
  m(0, 0) = 3.0;
  m(1, 1) = 1.0;
  m(2, 2) = 2.0;
  EigenDecomposition eig = JacobiEigenSolve(m);
  ASSERT_EQ(eig.eigenvalues.size(), 3u);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 2.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[2], 3.0, 1e-12);
}

TEST(JacobiEigenTest, TwoByTwoClosedForm) {
  Matrix m(2, 2, 0.0);
  m(0, 0) = 2.0;
  m(0, 1) = 1.0;
  m(1, 0) = 1.0;
  m(1, 1) = 2.0;
  EigenDecomposition eig = JacobiEigenSolve(m);
  EXPECT_NEAR(eig.eigenvalues[0], 1.0, 1e-12);
  EXPECT_NEAR(eig.eigenvalues[1], 3.0, 1e-12);
}

TEST(JacobiEigenTest, EigenpairsSatisfyDefinition) {
  Rng rng(5);
  const std::size_t n = 12;
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.NextGaussian();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  EigenDecomposition eig = JacobiEigenSolve(m);
  for (std::size_t k = 0; k < n; ++k) {
    Vector v(n);
    for (std::size_t i = 0; i < n; ++i) v[i] = eig.eigenvectors(i, k);
    Vector mv = MatVec(m, v);
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(mv[i], eig.eigenvalues[k] * v[i], 1e-8);
    }
  }
}

TEST(JacobiEigenTest, TraceEqualsEigenvalueSum) {
  Rng rng(9);
  const std::size_t n = 10;
  Matrix m(n, n, 0.0);
  double trace = 0.0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.NextGaussian();
      m(i, j) = v;
      m(j, i) = v;
    }
    trace += m(i, i);
  }
  EigenDecomposition eig = JacobiEigenSolve(m);
  EXPECT_NEAR(Sum(eig.eigenvalues), trace, 1e-9);
}

TEST(JacobiEigenTest, EigenvectorsOrthonormal) {
  Rng rng(31);
  const std::size_t n = 8;
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i; j < n; ++j) {
      const double v = rng.NextGaussian();
      m(i, j) = v;
      m(j, i) = v;
    }
  }
  EigenDecomposition eig = JacobiEigenSolve(m);
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t b = 0; b < n; ++b) {
      double dot = 0.0;
      for (std::size_t i = 0; i < n; ++i) {
        dot += eig.eigenvectors(i, a) * eig.eigenvectors(i, b);
      }
      EXPECT_NEAR(dot, a == b ? 1.0 : 0.0, 1e-9);
    }
  }
}

}  // namespace
}  // namespace geer
