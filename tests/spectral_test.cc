#include "linalg/spectral.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/generators.h"

namespace geer {
namespace {

TEST(SpectralTest, CompleteGraphClosedForm) {
  // K_n: P has eigenvalues 1 and −1/(n−1) (n−1 times).
  const NodeId n = 10;
  SpectralBounds sb = ComputeSpectralBounds(gen::Complete(n));
  EXPECT_NEAR(sb.lambda2, -1.0 / (n - 1.0), 1e-8);
  EXPECT_NEAR(sb.lambda_n, -1.0 / (n - 1.0), 1e-8);
  EXPECT_NEAR(sb.lambda, 1.0 / (n - 1.0), 1e-8);
}

TEST(SpectralTest, OddCycleClosedForm) {
  // C_n: eigenvalues cos(2πk/n); for odd n, λ₂ = cos(2π/n) and
  // λ_n = cos(π(n−1)/n).
  const NodeId n = 9;
  SpectralBounds sb = ComputeSpectralBounds(gen::Cycle(n));
  EXPECT_NEAR(sb.lambda2, std::cos(2.0 * M_PI / n), 1e-8);
  EXPECT_NEAR(sb.lambda_n, std::cos(2.0 * M_PI * 4.0 / n), 1e-8);
}

TEST(SpectralTest, BipartiteReportsMinusOne) {
  SpectralBounds sb = ComputeSpectralBounds(gen::Cycle(8));
  EXPECT_NEAR(sb.lambda_n, -1.0, 1e-8);
  // λ is clamped below 1 so the ℓ formulas stay finite.
  EXPECT_LT(sb.lambda, 1.0);
}

TEST(SpectralTest, MatchesDenseOracleOnRandomGraphs) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    Graph g = gen::ErdosRenyi(60, 180, seed);
    SpectralBounds lanczos = ComputeSpectralBounds(g);
    SpectralBounds dense = ComputeSpectralBoundsDense(g);
    EXPECT_NEAR(lanczos.lambda2, dense.lambda2, 1e-6) << "seed " << seed;
    EXPECT_NEAR(lanczos.lambda_n, dense.lambda_n, 1e-6) << "seed " << seed;
    EXPECT_NEAR(lanczos.lambda, dense.lambda, 1e-6) << "seed " << seed;
  }
}

TEST(SpectralTest, BarbellMixesSlowly) {
  // The barbell's bottleneck pushes λ₂ toward 1.
  SpectralBounds sb = ComputeSpectralBounds(gen::Barbell(8, 4));
  EXPECT_GT(sb.lambda2, 0.9);
}

TEST(SpectralTest, DenseExpanderMixesFast) {
  SpectralBounds sb = ComputeSpectralBounds(gen::ErdosRenyi(100, 1200, 5));
  EXPECT_LT(sb.lambda, 0.6);
}

TEST(SpectralTest, LambdaWithinUnitInterval) {
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    Graph g = gen::BarabasiAlbert(80, 3, seed);
    SpectralBounds sb = ComputeSpectralBounds(g);
    EXPECT_GE(sb.lambda, 0.0);
    EXPECT_LT(sb.lambda, 1.0);
    EXPECT_LE(sb.lambda2, 1.0);
    EXPECT_GE(sb.lambda_n, -1.0);
  }
}

}  // namespace
}  // namespace geer
