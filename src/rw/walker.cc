#include "rw/walker.h"

namespace geer {

NodeId Walker::WalkEndpoint(NodeId source, std::uint32_t length,
                            Rng& rng) const {
  NodeId cur = source;
  for (std::uint32_t i = 0; i < length; ++i) cur = Step(cur, rng);
  return cur;
}

void Walker::WalkPath(NodeId source, std::uint32_t length, Rng& rng,
                      std::vector<NodeId>* out) const {
  out->clear();
  out->reserve(length);
  NodeId cur = source;
  for (std::uint32_t i = 0; i < length; ++i) {
    cur = Step(cur, rng);
    out->push_back(cur);
  }
}

Walker::Absorption Walker::EscapeTrial(NodeId source, NodeId target,
                                       std::uint64_t max_steps,
                                       Rng& rng) const {
  GEER_DCHECK(source != target);
  NodeId cur = Step(source, rng);
  for (std::uint64_t step = 1; step <= max_steps; ++step) {
    if (cur == target) return Absorption::kHitTarget;
    if (cur == source) return Absorption::kReturned;
    cur = Step(cur, rng);
  }
  return Absorption::kStepLimit;
}

Walker::FirstVisit Walker::FirstVisitTrial(NodeId source, NodeId target,
                                           std::uint64_t max_steps,
                                           Rng& rng) const {
  GEER_DCHECK(source != target);
  FirstVisit result;
  NodeId prev = source;
  NodeId cur = Step(source, rng);
  while (result.steps < max_steps) {
    ++result.steps;
    if (cur == target) {
      result.hit = true;
      result.used_direct_edge = (prev == source);
      return result;
    }
    prev = cur;
    cur = Step(cur, rng);
  }
  return result;
}

}  // namespace geer
