// Glue between the dynamic-graph subsystem and the serving front end:
// turns a committed DynSnapshotT into the type-erased epoch swap
// QueryService::ApplyUpdates consumes. The swap rebinds every worker
// estimator in place (ErEstimator::RebindGraph) between micro-batches,
// with the snapshot kept alive for as long as the service reads it.

#ifndef GEER_DYN_DYN_SERVE_H_
#define GEER_DYN_DYN_SERVE_H_

#include <future>
#include <memory>
#include <optional>

#include "dyn/dynamic_graph.h"
#include "serve/query_service.h"

namespace geer {

/// Schedules `snapshot` (a DynamicGraphT<WP>::Commit() result) onto the
/// service. `lambda` is the precomputed λ of the snapshot's graph — pass
/// it when the estimator reads λ (registry EstimatorReadsLambda) so the
/// Lanczos preprocessing runs once per epoch instead of once per worker;
/// leave it empty otherwise (or to let each worker recompute). See
/// QueryService::ApplyUpdates for the barrier semantics; the returned
/// future resolves true once every worker serves the new epoch.
template <WeightPolicy WP>
std::future<bool> ApplyEpochUpdate(
    QueryService& service,
    std::shared_ptr<const DynSnapshotT<WP>> snapshot,
    std::optional<double> lambda = std::nullopt);

extern template std::future<bool> ApplyEpochUpdate<UnitWeight>(
    QueryService&, std::shared_ptr<const DynSnapshotT<UnitWeight>>,
    std::optional<double>);
extern template std::future<bool> ApplyEpochUpdate<EdgeWeight>(
    QueryService&, std::shared_ptr<const DynSnapshotT<EdgeWeight>>,
    std::optional<double>);

}  // namespace geer

#endif  // GEER_DYN_DYN_SERVE_H_
