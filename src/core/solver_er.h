// High-accuracy ER via a preconditioned CG Laplacian solve per query.
// Not one of the paper's competitors; used as a scalable ground-truth
// cross-check for the SMM-based ground truth of §5.1, in both weight
// modes (the EdgeWeight instantiation is the weighted W-CG oracle).

#ifndef GEER_CORE_SOLVER_ER_H_
#define GEER_CORE_SOLVER_ER_H_

#include <memory>
#include <string>

#include "core/epoch_shared.h"
#include "core/estimator.h"
#include "core/options.h"
#include "graph/weight_policy.h"
#include "linalg/laplacian_solver.h"

namespace geer {

template <WeightPolicy WP>
class SolverEstimatorT : public ErEstimator {
 public:
  using GraphT = typename WP::GraphT;

  explicit SolverEstimatorT(const GraphT& graph, ErOptions options = {});
  // Stores a pointer to `graph`; a temporary would dangle.
  explicit SolverEstimatorT(GraphT&&, ErOptions = {}) = delete;

  std::string Name() const override {
    return std::string(WP::kNamePrefix) + "CG";
  }
  QueryStats EstimateWithStats(NodeId s, NodeId t) override;

  /// Batch workers share the solver (graph view + Jacobi preconditioner);
  /// Solve() is const and allocates per call, so sharing is race-free.
  std::unique_ptr<ErEstimator> CloneForBatch() const override {
    return std::unique_ptr<ErEstimator>(new SolverEstimatorT<WP>(*this));
  }

  /// Dynamic-graph hook: the solver's preconditioner depends on the
  /// whole graph, so any epoch change rebuilds it — once per epoch
  /// across every clone sharing it (core/epoch_shared.h).
  using ErEstimator::RebindGraph;
  bool RebindGraph(const GraphT& graph, const GraphEpoch& epoch) override;

 private:
  // Clone constructor: adopts the shared solver and its epoch holder.
  SolverEstimatorT(const SolverEstimatorT& other) = default;

  std::shared_ptr<const LaplacianSolverT<WP>> solver_;
  std::shared_ptr<EpochShared<LaplacianSolverT<WP>>> shared_solver_;
};

/// The two stacks, by their historical names. The EdgeWeight
/// instantiation is the weighted ground-truth oracle ("W-CG").
using SolverEstimator = SolverEstimatorT<UnitWeight>;
using WeightedSolverEstimator = SolverEstimatorT<EdgeWeight>;

extern template class SolverEstimatorT<UnitWeight>;
extern template class SolverEstimatorT<EdgeWeight>;

}  // namespace geer

#endif  // GEER_CORE_SOLVER_ER_H_
