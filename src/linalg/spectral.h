// Spectral preprocessing (paper §3.1): compute λ = max(|λ₂|, |λ_n|) of
// the transition matrix P once per graph; it parameterizes the maximum
// walk lengths of Eq. (5) and Eq. (6). P is similar to the symmetric
// N = D_w^{-1/2} A_w D_w^{-1/2}, so Lanczos on N (with the known top
// eigenvector deflated) yields λ₂ and λ_n exactly as the paper's ARPACK
// setup does. Weight-generic: the same code serves the unweighted and
// weighted (conductance) stacks through graph/weight_policy.h.

#ifndef GEER_LINALG_SPECTRAL_H_
#define GEER_LINALG_SPECTRAL_H_

#include <cstdint>

#include "graph/weight_policy.h"
#include "linalg/dense.h"

namespace geer {

/// The spectral quantities reused across all queries on a graph.
struct SpectralBounds {
  double lambda2 = 0.0;   ///< second-largest eigenvalue of P
  double lambda_n = 0.0;  ///< smallest eigenvalue of P
  double lambda = 0.0;    ///< max(|λ₂|, |λ_n|), clamped into [0, 1)
  int lanczos_iterations = 0;
};

struct SpectralOptions {
  int max_iterations = 300;
  double tolerance = 1e-10;
  std::uint64_t seed = 42;
  /// Safety margin: λ is clamped to ≤ 1 − `floor_gap` so the walk-length
  /// formulas stay finite even if Lanczos slightly overshoots.
  double floor_gap = 1e-9;
  /// Ritz-value stagnation tolerance for WARM-started runs only (see
  /// LanczosOptions::stagnation_tolerance): with the previous epoch's
  /// Ritz vectors as the start, the extremes stabilize within a few
  /// iterations and the run exits early instead of spending the full
  /// Krylov budget — the O(touched)-ish half of the incremental-epoch
  /// swap. Cold runs (fresh construction, invalid warm state) never use
  /// it, keeping their λ bit-identical.
  double warm_stagnation_tolerance = 1e-9;
};

/// Computes λ₂, λ_n and λ for a connected graph under weight policy WP.
/// Non-bipartite inputs get λ < 1; bipartite inputs report λ_n = −1 (the
/// caller should reject them for walk-based estimators, or run
/// EnsureNonBipartite first).
template <WeightPolicy WP>
SpectralBounds ComputeSpectralBoundsT(const typename WP::GraphT& graph,
                                      const SpectralOptions& options = {});

/// Exact (dense Jacobi) spectral bounds for small graphs; test oracle.
template <WeightPolicy WP>
SpectralBounds ComputeSpectralBoundsDenseT(const typename WP::GraphT& graph);

/// Carry-over state for warm-started spectral maintenance across dynamic
/// epochs: the previous epoch's extreme Ritz vectors of N. A small edge
/// update perturbs N locally, so these vectors are near-eigenvectors of
/// the new operator and Lanczos converges in a handful of iterations
/// instead of a cold O(dozens). Invalidated (valid = false) whenever the
/// node count changes or the previous run produced no usable vectors.
struct SpectralWarmState {
  bool valid = false;
  std::uint64_t epoch = 0;  ///< epoch whose run produced the vectors
  Vector max_ritz;          ///< Ritz vector of the largest deflated Ritz value
  Vector min_ritz;          ///< Ritz vector of the smallest Ritz value
};

/// Warm-started spectral bounds for epoch `epoch` of a dynamic graph.
/// Reads `state` (when valid and dimension-matched) to seed the Lanczos
/// start vector, and overwrites it with this epoch's Ritz vectors on
/// return. The Lanczos seed is mixed with the epoch number, so both the
/// warm path and its deterministic cold fallback (state invalid /
/// resized graph) are reproducible AND distinguishable from the
/// construction-time cold run of ComputeSpectralBoundsT. The returned λ
/// generally differs from the cold λ in the last bits (documented drift
/// ≤ the Lanczos tolerance) — callers opt in via GraphEpoch::incremental.
template <WeightPolicy WP>
SpectralBounds ComputeSpectralBoundsWarmT(const typename WP::GraphT& graph,
                                          std::uint64_t epoch,
                                          SpectralWarmState* state,
                                          const SpectralOptions& options = {});

/// Unweighted entry points (historical names).
inline SpectralBounds ComputeSpectralBounds(
    const Graph& graph, const SpectralOptions& options = {}) {
  return ComputeSpectralBoundsT<UnitWeight>(graph, options);
}
inline SpectralBounds ComputeSpectralBoundsDense(const Graph& graph) {
  return ComputeSpectralBoundsDenseT<UnitWeight>(graph);
}

/// Weighted entry points. With unit weights the results match the
/// unweighted functions on the skeleton exactly.
inline SpectralBounds ComputeWeightedSpectralBounds(
    const WeightedGraph& graph, const SpectralOptions& options = {}) {
  return ComputeSpectralBoundsT<EdgeWeight>(graph, options);
}
inline SpectralBounds ComputeWeightedSpectralBoundsDense(
    const WeightedGraph& graph) {
  return ComputeSpectralBoundsDenseT<EdgeWeight>(graph);
}

extern template SpectralBounds ComputeSpectralBoundsT<UnitWeight>(
    const Graph&, const SpectralOptions&);
extern template SpectralBounds ComputeSpectralBoundsT<EdgeWeight>(
    const WeightedGraph&, const SpectralOptions&);
extern template SpectralBounds ComputeSpectralBoundsWarmT<UnitWeight>(
    const Graph&, std::uint64_t, SpectralWarmState*, const SpectralOptions&);
extern template SpectralBounds ComputeSpectralBoundsWarmT<EdgeWeight>(
    const WeightedGraph&, std::uint64_t, SpectralWarmState*,
    const SpectralOptions&);
extern template SpectralBounds ComputeSpectralBoundsDenseT<UnitWeight>(
    const Graph&);
extern template SpectralBounds ComputeSpectralBoundsDenseT<EdgeWeight>(
    const WeightedGraph&);

}  // namespace geer

#endif  // GEER_LINALG_SPECTRAL_H_
