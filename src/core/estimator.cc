#include "core/estimator.h"

#include <unordered_map>

#include "util/check.h"
#include "util/timer.h"

namespace geer {

bool BatchContext::Cancelled() const {
  // The external token is a hard stop: it fires regardless of the ≥ 1
  // answered-query rule (its owner — the serving layer — applies its own
  // progress policy before setting it).
  if (external_cancel_ != nullptr &&
      external_cancel_->load(std::memory_order_relaxed)) {
    return true;
  }
  if (cancel_ == nullptr) return false;
  if (cancel_->load(std::memory_order_relaxed)) return true;
  // The deadline only fires once at least one query has completed
  // batch-wide, preserving the harness's "answer ≥ 1 query" rule.
  if (deadline_ != nullptr && deadline_->Expired() &&
      (answered_ == nullptr ||
       answered_->load(std::memory_order_relaxed) > 0)) {
    cancel_->store(true, std::memory_order_relaxed);
    return true;
  }
  return false;
}

BatchPlan BatchPlan::Trivial(std::size_t num_queries) {
  BatchPlan plan;
  plan.order.resize(num_queries);
  plan.group_offsets.resize(num_queries + 1);
  for (std::size_t i = 0; i < num_queries; ++i) {
    plan.order[i] = static_cast<std::uint32_t>(i);
    plan.group_offsets[i] = static_cast<std::uint32_t>(i);
  }
  plan.group_offsets[num_queries] = static_cast<std::uint32_t>(num_queries);
  return plan;
}

BatchPlan BatchPlan::GroupBySource(std::span<const QueryPair> queries) {
  // Stable bucketing: groups ordered by first appearance of the source,
  // original order kept within a group — deterministic in the input.
  std::unordered_map<NodeId, std::uint32_t> group_of;
  std::vector<std::vector<std::uint32_t>> buckets;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    auto [it, inserted] = group_of.try_emplace(
        queries[i].s, static_cast<std::uint32_t>(buckets.size()));
    if (inserted) buckets.emplace_back();
    buckets[it->second].push_back(static_cast<std::uint32_t>(i));
  }
  BatchPlan plan;
  plan.order.reserve(queries.size());
  plan.group_offsets.reserve(buckets.size() + 1);
  plan.group_offsets.push_back(0);
  for (const auto& bucket : buckets) {
    plan.order.insert(plan.order.end(), bucket.begin(), bucket.end());
    plan.group_offsets.push_back(
        static_cast<std::uint32_t>(plan.order.size()));
  }
  return plan;
}

BatchPlan BatchPlan::GroupByEndpoint(std::span<const QueryPair> queries) {
  // Connected components over the endpoint-sharing relation, via a small
  // union-find on provisional group ids. Unions keep the SMALLER id as
  // root, so a component's id is the id minted at its first query —
  // groups then order by first appearance, exactly like GroupBySource,
  // and the result is deterministic in the input order.
  std::unordered_map<NodeId, std::uint32_t> group_of_node;
  std::vector<std::uint32_t> parent;
  auto find = [&parent](std::uint32_t g) {
    while (parent[g] != g) {
      parent[g] = parent[parent[g]];
      g = parent[g];
    }
    return g;
  };
  auto unite = [&parent, &find](std::uint32_t a, std::uint32_t b) {
    a = find(a);
    b = find(b);
    if (a == b) return a;
    if (b < a) std::swap(a, b);
    parent[b] = a;
    return a;
  };
  for (const QueryPair& q : queries) {
    auto s_it = group_of_node.find(q.s);
    auto t_it = group_of_node.find(q.t);
    std::uint32_t g;
    if (s_it == group_of_node.end() && t_it == group_of_node.end()) {
      g = static_cast<std::uint32_t>(parent.size());
      parent.push_back(g);
    } else if (s_it == group_of_node.end()) {
      g = find(t_it->second);
    } else if (t_it == group_of_node.end()) {
      g = find(s_it->second);
    } else {
      g = unite(s_it->second, t_it->second);
    }
    group_of_node[q.s] = g;
    group_of_node[q.t] = g;
  }
  // Second pass: roots are final; bucket queries by root, groups ordered
  // by first appearance of the root.
  std::unordered_map<std::uint32_t, std::uint32_t> bucket_of_root;
  std::vector<std::vector<std::uint32_t>> buckets;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    const std::uint32_t root = find(group_of_node.at(queries[i].s));
    auto [it, inserted] = bucket_of_root.try_emplace(
        root, static_cast<std::uint32_t>(buckets.size()));
    if (inserted) buckets.emplace_back();
    buckets[it->second].push_back(static_cast<std::uint32_t>(i));
  }
  BatchPlan plan;
  plan.order.reserve(queries.size());
  plan.group_offsets.reserve(buckets.size() + 1);
  plan.group_offsets.push_back(0);
  for (const auto& bucket : buckets) {
    plan.order.insert(plan.order.end(), bucket.begin(), bucket.end());
    plan.group_offsets.push_back(
        static_cast<std::uint32_t>(plan.order.size()));
  }
  return plan;
}

std::size_t EstimateBySourceRuns(
    std::span<const QueryPair> queries, std::span<QueryStats> stats,
    const BatchContext& context,
    const std::function<std::size_t(NodeId, std::span<const QueryPair>,
                                    std::span<QueryStats>)>& run_fn) {
  GEER_CHECK(stats.size() >= queries.size());
  std::size_t i = 0;
  while (i < queries.size()) {
    if (context.Cancelled()) return i;
    std::size_t j = i + 1;
    while (j < queries.size() && queries[j].s == queries[i].s) ++j;
    const std::size_t run = j - i;
    const std::size_t done = run_fn(queries[i].s, queries.subspan(i, run),
                                    stats.subspan(i, run));
    i += done;
    if (done < run) return i;
  }
  return i;
}

std::size_t EstimateByEndpointRuns(
    std::span<const QueryPair> queries, std::span<QueryStats> stats,
    const BatchContext& context,
    const std::function<std::size_t(NodeId, std::span<const QueryPair>,
                                    std::span<QueryStats>)>& run_fn) {
  GEER_CHECK(stats.size() >= queries.size());
  std::size_t i = 0;
  while (i < queries.size()) {
    if (context.Cancelled()) return i;
    // Grow the run while a common endpoint survives the intersection.
    NodeId common[2] = {queries[i].s, queries[i].t};
    std::size_t num_common = queries[i].s == queries[i].t ? 1 : 2;
    std::size_t j = i + 1;
    for (; j < queries.size(); ++j) {
      NodeId kept[2];
      std::size_t num_kept = 0;
      for (std::size_t c = 0; c < num_common; ++c) {
        if (common[c] == queries[j].s || common[c] == queries[j].t) {
          kept[num_kept++] = common[c];
        }
      }
      if (num_kept == 0) break;
      num_common = num_kept;
      common[0] = kept[0];
      if (num_common == 2) common[1] = kept[1];
    }
    NodeId key = common[0];
    if (num_common == 2 && common[1] < key) key = common[1];
    const std::size_t run = j - i;
    const std::size_t done =
        run_fn(key, queries.subspan(i, run), stats.subspan(i, run));
    i += done;
    if (done < run) return i;
  }
  return i;
}

std::size_t ErEstimator::EstimateBatch(std::span<const QueryPair> queries,
                                       std::span<QueryStats> stats,
                                       const BatchContext& context) {
  GEER_CHECK(stats.size() >= queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (context.Cancelled()) return i;
    const QueryPair& q = queries[i];
    stats[i] = SupportsQuery(q.s, q.t) ? EstimateWithStats(q.s, q.t)
                                       : QueryStats{};
    context.ReportAnswered();
  }
  return queries.size();
}

}  // namespace geer
