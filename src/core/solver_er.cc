#include "core/solver_er.h"

#include <algorithm>

#include "util/check.h"

namespace geer {
namespace {

template <WeightPolicy WP>
typename LaplacianSolverT<WP>::Options SolverOptionsFor(
    const ErOptions& options) {
  typename LaplacianSolverT<WP>::Options sopt;
  // Solve far below the query tolerance so this can serve as ground truth.
  sopt.tolerance = 1e-12;
  sopt.max_iterations = 20000;
  (void)options;
  return sopt;
}

}  // namespace

template <WeightPolicy WP>
SolverEstimatorT<WP>::SolverEstimatorT(const GraphT& graph,
                                       ErOptions options)
    : graph_(&graph),
      solver_(std::make_shared<const LaplacianSolverT<WP>>(
          graph, SolverOptionsFor<WP>(options))) {
  ValidateOptions(options);
  shared_solver_ = std::make_shared<EpochShared<SolverEntry>>(
      std::make_shared<const SolverEntry>(SolverEntry{solver_, false}));
}

template <WeightPolicy WP>
bool SolverEstimatorT<WP>::RebindGraph(const GraphT& graph,
                                       const GraphEpoch& epoch) {
  const auto entry = shared_solver_->GetOrUpdate(
      epoch.epoch,
      [&graph, &epoch](const std::shared_ptr<const SolverEntry>& prev)
          -> std::shared_ptr<const SolverEntry> {
        // Touched-row Jacobi refresh: bit-identical to a fresh build
        // (each diagonal entry is a pure function of its row), so it
        // applies whether or not the caller opted into epoch.incremental.
        if (prev != nullptr && prev->solver != nullptr && !epoch.resized) {
          return std::make_shared<const SolverEntry>(SolverEntry{
              std::make_shared<const LaplacianSolverT<WP>>(
                  graph, *prev->solver, epoch.touched),
              true});
        }
        // Solver options are derived from fixed constants (see
        // SolverOptionsFor), so the rebuild needs only the graph.
        return std::make_shared<const SolverEntry>(SolverEntry{
            std::make_shared<const LaplacianSolverT<WP>>(
                graph, SolverOptionsFor<WP>(ErOptions{})),
            false});
      });
  solver_ = entry->solver;
  if (entry->incremental) {
    incremental_rebinds_.fetch_add(1, std::memory_order_relaxed);
  }
  graph_ = &graph;
  // Columns are solutions against the old Laplacian: flush wholesale.
  // Landmark columns re-warm lazily (pin-on-miss via is_landmark_).
  if (session_ != nullptr) session_->Clear();
  return true;
}

template <WeightPolicy WP>
typename SolverEstimatorT<WP>::Column SolverEstimatorT<WP>::SolveColumn(
    NodeId node) const {
  Vector b(graph_->NumNodes(), 0.0);
  b[node] = 1.0;
  Column col;
  CgStats cg;
  // Solve() centers b onto 𝟙^⊥, so y = L† ê_node; the centering parts
  // cancel when two columns are differenced.
  col.y = solver_->Solve(b, &cg);
  col.converged = cg.converged;
  return col;
}

template <WeightPolicy WP>
const typename SolverEstimatorT<WP>::Column* SolverEstimatorT<WP>::ColumnFor(
    NodeId node, Column* scratch) {
  if (session_ == nullptr) {
    *scratch = SolveColumn(node);
    return scratch;
  }
  if (const Column* hit = session_->Find(node)) return hit;
  Column col = SolveColumn(node);
  const std::size_t bytes = col.y.size() * sizeof(double) + sizeof(Column);
  return session_->Insert(node, std::move(col), bytes, IsLandmark(node));
}

template <WeightPolicy WP>
std::size_t SolverEstimatorT<WP>::WarmLandmarks(
    std::span<const NodeId> landmarks) {
  if (session_ == nullptr) EnableSessionCache();
  is_landmark_.assign(graph_->NumNodes(), 0);
  for (const NodeId lm : landmarks) {
    GEER_CHECK(lm < graph_->NumNodes());
    is_landmark_[lm] = 1;
  }
  Column scratch;
  for (const NodeId lm : landmarks) {
    (void)ColumnFor(lm, &scratch);  // solve + pin (counts hit or miss)
  }
  session_->EvictOverBudget();
  return landmarks.size();
}

template <WeightPolicy WP>
QueryStats SolverEstimatorT<WP>::EstimateWithStats(NodeId s, NodeId t) {
  GEER_CHECK(s < graph_->NumNodes());
  GEER_CHECK(t < graph_->NumNodes());
  QueryStats stats;
  if (s == t) return stats;
  const NodeId u = std::min(s, t);
  const NodeId v = std::max(s, t);
  Column scratch_u;
  Column scratch_v;
  const Column* yu = ColumnFor(u, &scratch_u);
  const Column* yv = ColumnFor(v, &scratch_v);
  stats.value = (yu->y[u] - yu->y[v]) - (yv->y[u] - yv->y[v]);
  stats.truncated = !(yu->converged && yv->converged);
  if (session_ != nullptr) session_->EvictOverBudget();
  return stats;
}

template class SolverEstimatorT<UnitWeight>;
template class SolverEstimatorT<EdgeWeight>;

}  // namespace geer
