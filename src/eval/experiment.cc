#include "eval/experiment.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <thread>

#include "core/batch_engine.h"
#include "core/registry.h"
#include "eval/percentile.h"
#include "util/check.h"
#include "util/timer.h"

namespace geer {
namespace {

// The shared measurement loop: answer `queries` through the batch engine
// under the deadline, accumulating the paper's per-query statistics.
// With threads == 1 this is the serial loop of old (worker 0 is the
// calling thread, values bit-identical by the estimator contract);
// higher thread counts change wall time only.
void MeasureQueries(ErEstimator* estimator,
                    const std::vector<QueryPair>& queries,
                    const std::vector<double>& ground_truth,
                    const RunConfig& config, MethodResult* result) {
  const bool check_errors =
      config.collect_errors && ground_truth.size() == queries.size();

  BatchOptions batch_options;
  batch_options.threads = config.threads;
  batch_options.deadline_seconds = config.deadline_seconds;
  std::vector<QueryStats> stats(queries.size());
  Timer timer;
  const BatchReport report =
      RunQueryBatch(*estimator, queries, stats, batch_options);
  const double wall_millis = timer.ElapsedMillis();

  result->threads = report.workers;
  result->shares_batch_work = estimator->SharesBatchWork();
  result->completed = report.completed;
  double sum_err = 0.0;
  double sum_walks = 0.0;
  double sum_spmv = 0.0;
  double sum_ell = 0.0;
  double sum_ell_b = 0.0;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (!report.processed[i]) continue;  // deadline cut
    const QueryPair& q = queries[i];
    if (!estimator->SupportsQuery(q.s, q.t)) {
      continue;  // skipped, not failed: edge-only methods on non-edges
    }
    if (check_errors) {
      const double err = std::abs(stats[i].value - ground_truth[i]);
      sum_err += err;
      result->max_abs_error = std::max(result->max_abs_error, err);
    }
    sum_walks += static_cast<double>(stats[i].walks);
    sum_spmv += static_cast<double>(stats[i].spmv_ops);
    sum_ell += stats[i].ell;
    sum_ell_b += stats[i].ell_b;
    ++result->queries_answered;
  }
  if (result->queries_answered > 0) {
    const double n = static_cast<double>(result->queries_answered);
    result->avg_millis = wall_millis / n;
    result->avg_abs_error = sum_err / n;
    result->total_walks = sum_walks / n;
    result->total_spmv_ops = sum_spmv / n;
    result->avg_ell = sum_ell / n;
    result->avg_ell_b = sum_ell_b / n;
  }
}

MethodResult InitResult(const std::string& method,
                        const std::string& dataset_name,
                        const ErOptions& options) {
  MethodResult result;
  result.method = method;
  result.dataset = dataset_name;
  result.epsilon = options.epsilon;
  if (method == "TP") result.sample_scale = options.tp_scale;
  if (method == "TPC") result.sample_scale = options.tpc_scale;
  return result;
}

// Weight-mode dispatch onto the registry's two factory/feasibility
// pairs (the registry keys on the concrete graph type, not the policy).
bool FeasibleFor(const std::string& method, const Graph& graph,
                 const ErOptions& options) {
  return EstimatorFeasible(method, graph, options);
}
bool FeasibleFor(const std::string& method, const WeightedGraph& graph,
                 const ErOptions& options) {
  return WeightedEstimatorFeasible(method, graph, options);
}
std::unique_ptr<ErEstimator> CreateFor(const std::string& method,
                                       const Graph& graph,
                                       const ErOptions& options) {
  return CreateEstimator(method, graph, options);
}
std::unique_ptr<ErEstimator> CreateFor(const std::string& method,
                                       const WeightedGraph& graph,
                                       const ErOptions& options) {
  return CreateWeightedEstimator(method, graph, options);
}

}  // namespace

template <WeightPolicy WP>
MethodResult RunMethodT(const typename WP::GraphT& graph,
                        const std::string& dataset_name,
                        const std::string& method, const ErOptions& options,
                        const std::vector<QueryPair>& queries,
                        const std::vector<double>& ground_truth,
                        const RunConfig& config) {
  MethodResult result = InitResult(method, dataset_name, options);

  if (!FeasibleFor(method, graph, options)) {
    result.feasible = false;
    result.completed = false;
    return result;
  }
  std::unique_ptr<ErEstimator> estimator = CreateFor(method, graph, options);
  GEER_CHECK(estimator != nullptr) << "unknown estimator " << method;

  MeasureQueries(estimator.get(), queries, ground_truth, config, &result);
  return result;
}

template MethodResult RunMethodT<UnitWeight>(
    const Graph&, const std::string&, const std::string&, const ErOptions&,
    const std::vector<QueryPair>&, const std::vector<double>&,
    const RunConfig&);
template MethodResult RunMethodT<EdgeWeight>(
    const WeightedGraph&, const std::string&, const std::string&,
    const ErOptions&, const std::vector<QueryPair>&,
    const std::vector<double>&, const RunConfig&);

MethodResult RunMethod(const Dataset& dataset, const std::string& method,
                       const ErOptions& options,
                       const std::vector<QueryPair>& queries,
                       const std::vector<double>& ground_truth,
                       const RunConfig& config) {
  ErOptions opt = options;
  if (!opt.lambda.has_value()) opt.lambda = dataset.spectral.lambda;
  return RunMethodT<UnitWeight>(dataset.graph, dataset.name, method, opt,
                                queries, ground_truth, config);
}

MethodResult RunWeightedMethod(const WeightedGraph& graph,
                               const std::string& dataset_name,
                               const std::string& method,
                               const ErOptions& options,
                               const std::vector<QueryPair>& queries,
                               const std::vector<double>& ground_truth,
                               const RunConfig& config) {
  return RunMethodT<EdgeWeight>(graph, dataset_name, method, options, queries,
                                ground_truth, config);
}

namespace {

/// Records one terminal QueryResult into slot `i` and folds the tail
/// statistics shared by the open- and closed-loop drivers.
void RecordOutcome(const QueryResult& r, std::size_t i,
                   ServedWorkloadResult* result,
                   std::vector<double>* answered_latencies) {
  result->statuses[i] = r.status;
  switch (r.status) {
    case ServeStatus::kAnswered:
      ++result->answered;
      result->values[i] = r.stats.value;
      result->latency_ms[i] = r.total_ms;
      // Accumulated here, averaged in FinishAggregates — the
      // client-observed mean micro-batch (the service overload replaces
      // it with the authoritative server-side ServeMetrics figure).
      result->avg_batch += static_cast<double>(r.batch_size);
      answered_latencies->push_back(r.total_ms);
      break;
    case ServeStatus::kUnsupported:
      ++result->unsupported;
      break;
    case ServeStatus::kRejected:
      ++result->rejected;
      break;
    case ServeStatus::kFailed:
      ++result->failed;
      break;
    default:  // kExpired / kCancelled / kShutdown
      ++result->expired;
      break;
  }
}

void FinishAggregates(std::vector<double>& answered_latencies,
                      ServedWorkloadResult* result) {
  if (result->wall_seconds > 0.0) {
    result->throughput_qps =
        static_cast<double>(result->answered) / result->wall_seconds;
  }
  if (result->answered > 0) {
    result->avg_batch /= static_cast<double>(result->answered);
  }
  if (!answered_latencies.empty()) {
    std::sort(answered_latencies.begin(), answered_latencies.end());
    double sum = 0.0;
    for (const double ms : answered_latencies) sum += ms;
    result->mean_ms = sum / static_cast<double>(answered_latencies.size());
    result->p50_ms = NearestRankPercentile(answered_latencies, 0.50);
    result->p95_ms = NearestRankPercentile(answered_latencies, 0.95);
    result->p99_ms = NearestRankPercentile(answered_latencies, 0.99);
    result->max_ms = answered_latencies.back();
  }
}

ServedWorkloadResult InitServedResult(std::size_t num_events) {
  const double kNaN = std::numeric_limits<double>::quiet_NaN();
  ServedWorkloadResult result;
  result.num_events = num_events;
  result.values.assign(num_events, kNaN);
  result.latency_ms.assign(num_events, kNaN);
  result.statuses.assign(num_events, ServeStatus::kShutdown);
  return result;
}

}  // namespace

ServedWorkloadResult RunServedWorkload(QuerySubmitter& submitter,
                                       std::span<const TraceEvent> trace,
                                       double deadline_seconds,
                                       bool realtime) {
  ServedWorkloadResult result = InitServedResult(trace.size());
  if (trace.empty()) return result;
  result.workers = submitter.workers();

  // Open-loop driver: submissions happen at their recorded offsets (or
  // back-to-back when compressed) regardless of how far the service has
  // fallen behind — queueing delay lands in the latency numbers instead
  // of silently throttling the clients.
  std::vector<std::future<QueryResult>> futures;
  futures.reserve(trace.size());
  Timer wall;
  const auto start = std::chrono::steady_clock::now();
  for (const TraceEvent& event : trace) {
    if (realtime && event.arrival_seconds > 0.0) {
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(event.arrival_seconds)));
    }
    futures.push_back(submitter.Submit(event.query, deadline_seconds));
  }
  submitter.Flush();

  std::vector<double> answered_latencies;
  answered_latencies.reserve(trace.size());
  for (std::size_t i = 0; i < futures.size(); ++i) {
    RecordOutcome(futures[i].get(), i, &result, &answered_latencies);
  }
  result.wall_seconds = wall.ElapsedSeconds();
  FinishAggregates(answered_latencies, &result);
  return result;
}

ServedWorkloadResult RunServedWorkload(ErEstimator& estimator,
                                       std::span<const TraceEvent> trace,
                                       const ServeOptions& serve_options,
                                       double deadline_seconds,
                                       bool realtime) {
  if (trace.empty()) {
    ServedWorkloadResult result = InitServedResult(0);
    result.method = estimator.Name();
    return result;
  }
  QueryService service(estimator, serve_options);
  ServedWorkloadResult result =
      RunServedWorkload(service, trace, deadline_seconds, realtime);
  service.Shutdown();
  // Service-side extras the transport-neutral driver can't see.
  result.method = estimator.Name();
  result.avg_batch = service.Metrics().AvgBatch();
  result.session_cache = service.Metrics().session_cache;
  return result;
}

ServedWorkloadResult RunClosedLoopWorkload(QuerySubmitter& submitter,
                                           std::span<const QueryPair> queries,
                                           int clients,
                                           double deadline_seconds) {
  ServedWorkloadResult result = InitServedResult(queries.size());
  if (queries.empty()) return result;
  result.workers = submitter.workers();
  if (clients < 1) clients = 1;
  const std::size_t stride = static_cast<std::size_t>(clients);

  // One QueryResult slot per query, written by exactly one client
  // thread (disjoint strided slices — no locking needed).
  std::vector<QueryResult> outcomes(queries.size());
  Timer wall;
  std::vector<std::thread> threads;
  threads.reserve(stride);
  for (std::size_t c = 0; c < stride; ++c) {
    threads.emplace_back([&, c] {
      for (std::size_t i = c; i < queries.size(); i += stride) {
        outcomes[i] =
            submitter.Submit(queries[i], deadline_seconds).get();
      }
    });
  }
  for (std::thread& t : threads) t.join();
  result.wall_seconds = wall.ElapsedSeconds();

  std::vector<double> answered_latencies;
  answered_latencies.reserve(queries.size());
  for (std::size_t i = 0; i < outcomes.size(); ++i) {
    RecordOutcome(outcomes[i], i, &result, &answered_latencies);
  }
  FinishAggregates(answered_latencies, &result);
  return result;
}

}  // namespace geer
