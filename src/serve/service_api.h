// The transport-neutral serving API: the one surface in-process callers
// (serve/query_service.h), the wire codec (net/codec.h) and the CLI all
// compile against. It owns
//
//   * the WIRE-STABLE ServeStatus enum (values frozen — see below),
//   * the QueryResult a client's future resolves to,
//   * POD request/response structs with explicit little-endian
//     serialize/parse helpers and the protocol version byte, and
//   * the QuerySubmitter interface: the abstract "submit a query, get a
//     future" contract that an in-process QueryService and a networked
//     net::NetSubmitter implement identically, so one workload driver
//     (eval/experiment.h RunServedWorkload) replays traces against
//     either.
//
// Wire stability contract: kServiceProtocolVersion is bumped whenever
// any serialized layout below changes; ServeStatus numeric values are
// FROZEN at the documented numbers and may only be appended to. Every
// multi-byte field is little-endian on the wire regardless of host
// order (the Put*/Get* helpers below are the only (de)serializers).

#ifndef GEER_SERVE_SERVICE_API_H_
#define GEER_SERVE_SERVICE_API_H_

#include <cstdint>
#include <cstring>
#include <future>
#include <span>
#include <vector>

#include "core/estimator.h"

namespace geer {

/// Version byte carried in every frame header (net/frame.h) and checked
/// on both ends of a connection. Bump on ANY wire layout change.
inline constexpr std::uint8_t kServiceProtocolVersion = 1;

/// Terminal state of one submitted query.
///
/// WIRE-STABLE: these numeric values travel inside ServiceResponse
/// frames and are frozen at protocol version 1. Never renumber or
/// reorder; new states append after kFailed.
enum class ServeStatus : std::uint8_t {
  kAnswered = 0,     ///< stats.value is the estimate
  kUnsupported = 1,  ///< SupportsQuery(s, t) is false (edge-only methods)
  kExpired = 2,      ///< per-query deadline passed before the answer
  kRejected = 3,     ///< queue was full at submission
  kCancelled = 4,    ///< ShutdownNow() discarded it
  kShutdown = 5,     ///< submitted after Shutdown()
  kFailed = 6,       ///< dispatch threw, or the transport failed
};

/// Number of wire-stable ServeStatus values at protocol version 1 (for
/// parse-time range checks; values >= this are rejected as garbage).
inline constexpr std::uint8_t kNumServeStatusValues = 7;

/// What a client's future resolves to.
struct QueryResult {
  ServeStatus status = ServeStatus::kShutdown;
  QueryStats stats;        ///< valid iff status == kAnswered
  double queue_ms = 0.0;   ///< submission → dispatch (server-side)
  double total_ms = 0.0;   ///< submission → completion (client latency)
  std::uint32_t batch_size = 0;  ///< micro-batch the query rode in
  /// Graph epoch the answer was computed on (0 until the first
  /// ApplyUpdates) — how dynamic-workload clients pair an answer with
  /// the snapshot that produced it.
  std::uint64_t epoch = 0;
  /// Monotone id of the dispatched micro-batch (1-based; 0 = the query
  /// never reached a dispatch). Later batch ⇒ later dispatch, which is
  /// what the EDF dispatch-order tests observe.
  std::uint64_t batch_id = 0;
};

// --------------------------------------------------------------------------
// Little-endian (de)serialization helpers — the codec's only primitives.
// --------------------------------------------------------------------------

namespace wire {

inline void PutU8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
inline void PutU16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
inline void PutU32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
inline void PutU64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
  }
}
/// IEEE-754 bit pattern, little-endian — bit-exact round trip, which the
/// end-to-end determinism suite depends on.
inline void PutF64(std::vector<std::uint8_t>& out, double v) {
  std::uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  PutU64(out, bits);
}

/// Each Get* consumes from `in` at `*offset`, advancing it on success.
/// Returns false (offset untouched) when fewer bytes remain — the
/// truncation-tolerant contract the codec fuzz tests exercise.
inline bool GetU8(std::span<const std::uint8_t> in, std::size_t* offset,
                  std::uint8_t* out) {
  if (*offset + 1 > in.size()) return false;
  *out = in[*offset];
  *offset += 1;
  return true;
}
inline bool GetU16(std::span<const std::uint8_t> in, std::size_t* offset,
                   std::uint16_t* out) {
  if (in.size() < 2 || *offset > in.size() - 2) return false;
  *out = static_cast<std::uint16_t>(
      static_cast<std::uint16_t>(in[*offset]) |
      (static_cast<std::uint16_t>(in[*offset + 1]) << 8));
  *offset += 2;
  return true;
}
inline bool GetU32(std::span<const std::uint8_t> in, std::size_t* offset,
                   std::uint32_t* out) {
  if (in.size() < 4 || *offset > in.size() - 4) return false;
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(in[*offset + i]) << (8 * i);
  }
  *out = v;
  *offset += 4;
  return true;
}
inline bool GetU64(std::span<const std::uint8_t> in, std::size_t* offset,
                   std::uint64_t* out) {
  if (in.size() < 8 || *offset > in.size() - 8) return false;
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(in[*offset + i]) << (8 * i);
  }
  *out = v;
  *offset += 8;
  return true;
}
inline bool GetF64(std::span<const std::uint8_t> in, std::size_t* offset,
                   double* out) {
  std::uint64_t bits = 0;
  if (!GetU64(in, offset, &bits)) return false;
  std::memcpy(out, &bits, sizeof(bits));
  return true;
}

}  // namespace wire

// --------------------------------------------------------------------------
// POD request/response — the payloads of kQuery / kQueryReply frames.
// --------------------------------------------------------------------------

/// One PER query as it travels the wire (protocol version 1 layout:
/// s:u32 | t:u32 | deadline_seconds:f64 — 16 bytes).
struct ServiceRequest {
  NodeId s = 0;
  NodeId t = 0;
  /// Per-query deadline in seconds; <= 0 = none (QueryService::Submit
  /// semantics, applied server-side from arrival).
  double deadline_seconds = 0.0;

  void AppendTo(std::vector<std::uint8_t>& out) const {
    wire::PutU32(out, s);
    wire::PutU32(out, t);
    wire::PutF64(out, deadline_seconds);
  }
  /// Consumes from `in` at `*offset`; false on truncation.
  bool ParseFrom(std::span<const std::uint8_t> in, std::size_t* offset) {
    std::size_t at = *offset;
    if (!wire::GetU32(in, &at, &s) || !wire::GetU32(in, &at, &t) ||
        !wire::GetF64(in, &at, &deadline_seconds)) {
      return false;
    }
    *offset = at;
    return true;
  }

  QueryPair pair() const { return {s, t}; }
};

/// One answer as it travels the wire (protocol version 1 layout:
/// status:u8 | value:f64 | server_ms:f64 | batch_size:u32 | epoch:u64 |
/// batch_id:u64 — 37 bytes). `value` is the IEEE-754 bit pattern of the
/// server's estimate, so networked answers are bit-identical to
/// in-process ones. Cost instrumentation beyond `server_ms` stays
/// server-side (ServeMetrics) — the wire carries what a remote client
/// can act on.
struct ServiceResponse {
  std::uint8_t status = static_cast<std::uint8_t>(ServeStatus::kShutdown);
  double value = 0.0;
  double server_ms = 0.0;  ///< server-side submission → completion
  std::uint32_t batch_size = 0;
  std::uint64_t epoch = 0;
  std::uint64_t batch_id = 0;

  void AppendTo(std::vector<std::uint8_t>& out) const {
    wire::PutU8(out, status);
    wire::PutF64(out, value);
    wire::PutF64(out, server_ms);
    wire::PutU32(out, batch_size);
    wire::PutU64(out, epoch);
    wire::PutU64(out, batch_id);
  }
  /// Consumes from `in` at `*offset`; false on truncation or a status
  /// byte outside the frozen value range.
  bool ParseFrom(std::span<const std::uint8_t> in, std::size_t* offset) {
    std::size_t at = *offset;
    ServiceResponse r;
    if (!wire::GetU8(in, &at, &r.status) ||
        !wire::GetF64(in, &at, &r.value) ||
        !wire::GetF64(in, &at, &r.server_ms) ||
        !wire::GetU32(in, &at, &r.batch_size) ||
        !wire::GetU64(in, &at, &r.epoch) ||
        !wire::GetU64(in, &at, &r.batch_id)) {
      return false;
    }
    if (r.status >= kNumServeStatusValues) return false;
    *this = r;
    *offset = at;
    return true;
  }

  static ServiceResponse FromQueryResult(const QueryResult& r) {
    ServiceResponse out;
    out.status = static_cast<std::uint8_t>(r.status);
    out.value = r.stats.value;
    out.server_ms = r.total_ms;
    out.batch_size = r.batch_size;
    out.epoch = r.epoch;
    out.batch_id = r.batch_id;
    return out;
  }
  /// The client-side QueryResult. total_ms is left 0 — the transport
  /// fills it with the measured round trip.
  QueryResult ToQueryResult() const {
    QueryResult r;
    r.status = static_cast<ServeStatus>(status);
    r.stats.value = value;
    r.queue_ms = 0.0;
    r.total_ms = 0.0;
    r.batch_size = batch_size;
    r.epoch = epoch;
    r.batch_id = batch_id;
    return r;
  }
};

// --------------------------------------------------------------------------
// QuerySubmitter — the transport-neutral submission surface.
// --------------------------------------------------------------------------

/// Abstract "submit one query, get a future" contract. QueryService
/// implements it in-process; net::NetSubmitter implements it over a
/// router/shard connection pool. Workload drivers
/// (RunServedWorkload / RunClosedLoopWorkload) accept a QuerySubmitter,
/// so the SAME driver replays a trace against either transport — the
/// end-to-end determinism suite is literally one driver, two submitters.
class QuerySubmitter {
 public:
  virtual ~QuerySubmitter() = default;

  /// Enqueues one query; the future resolves to its terminal state.
  /// Never blocks on query work. `deadline_seconds` <= 0 = none.
  /// Thread-safe: any number of client threads may submit concurrently.
  virtual std::future<QueryResult> Submit(QueryPair query,
                                          double deadline_seconds = 0.0) = 0;

  /// Asks the backend to dispatch whatever is queued without waiting for
  /// a flush trigger. Non-blocking where the transport allows.
  virtual void Flush() {}

  /// Parallelism the backend answers with (dispatch workers in-process,
  /// pooled connections over the wire) — reporting only.
  virtual int workers() const { return 1; }
};

}  // namespace geer

#endif  // GEER_SERVE_SERVICE_API_H_
