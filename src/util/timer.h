// Wall-clock timing utilities for the benchmark harnesses.

#ifndef GEER_UTIL_TIMER_H_
#define GEER_UTIL_TIMER_H_

#include <chrono>
#include <cstdint>

namespace geer {

/// Monotonic wall-clock stopwatch. Started on construction.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Elapsed time since construction or the last Reset, in seconds.
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds (the unit the paper reports).
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Elapsed time in integral microseconds.
  std::int64_t ElapsedMicros() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(Clock::now() -
                                                                 start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// A soft deadline: benchmark loops poll Expired() to skip configurations
/// that would run past their budget (mirrors the paper's one-day cutoff).
class Deadline {
 public:
  /// A deadline `budget_seconds` from now. Non-positive budgets never expire.
  explicit Deadline(double budget_seconds)
      : budget_seconds_(budget_seconds) {}

  bool Expired() const {
    return budget_seconds_ > 0.0 && timer_.ElapsedSeconds() > budget_seconds_;
  }

  double RemainingSeconds() const {
    if (budget_seconds_ <= 0.0) return 1e30;
    return budget_seconds_ - timer_.ElapsedSeconds();
  }

 private:
  double budget_seconds_;
  Timer timer_;
};

}  // namespace geer

#endif  // GEER_UTIL_TIMER_H_
