// Dynamic-workload replay: drives a QueryService over a DynamicGraphT
// with an interleaved stream of queries and update batches. Each update
// event is applied to the dynamic graph, committed (incremental CSR
// rebuild), and swapped into the service as a new epoch; queries before
// the event are answered on the old epoch, queries after it on the new
// one (QueryService::ApplyUpdates barrier semantics). The result carries
// per-epoch latency percentiles plus commit/swap costs — the
// dynamic-scenario counterpart of RunServedWorkload — and the per-event
// (value, epoch) pairs the dyn-serve determinism suite compares against
// serial estimates on each epoch's snapshot.

#ifndef GEER_EVAL_DYNAMIC_WORKLOAD_H_
#define GEER_EVAL_DYNAMIC_WORKLOAD_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "core/options.h"
#include "dyn/dynamic_graph.h"
#include "serve/query_service.h"

namespace geer {

/// One event of a dynamic trace: a client query, or an update batch that
/// is applied and committed (publishing the next epoch) at this point of
/// the stream.
struct DynTraceEvent {
  double arrival_seconds = 0.0;  ///< offset from replay start
  bool is_update = false;
  QueryPair query;                  ///< valid when !is_update
  std::vector<EdgeUpdate> updates;  ///< applied + committed when is_update

  static DynTraceEvent Query(QueryPair q, double at = 0.0) {
    DynTraceEvent event;
    event.arrival_seconds = at;
    event.query = q;
    return event;
  }
  static DynTraceEvent Update(std::vector<EdgeUpdate> ops, double at = 0.0) {
    DynTraceEvent event;
    event.arrival_seconds = at;
    event.is_update = true;
    event.updates = std::move(ops);
    return event;
  }
};

/// Per-epoch slice of a dynamic replay.
struct DynEpochStats {
  std::uint64_t epoch = 0;
  std::size_t updates = 0;    ///< update ops folded into this epoch
  std::size_t touched = 0;    ///< CSR rows rewritten by the commit
  double commit_ms = 0.0;     ///< DynamicGraph::Commit wall time
  double swap_ms = 0.0;       ///< barrier drain + all-worker rebind
  std::size_t answered = 0;   ///< queries answered on this epoch
  double p50_ms = 0.0;        ///< client latency percentiles (answered)
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
};

struct DynamicWorkloadResult {
  std::string method;
  std::size_t num_events = 0;
  std::size_t num_queries = 0;
  std::size_t commits = 0;
  std::size_t answered = 0;
  std::size_t unsupported = 0;
  std::size_t expired = 0;
  std::size_t rejected = 0;
  std::size_t failed = 0;

  double wall_seconds = 0.0;
  double throughput_qps = 0.0;  ///< answered / wall
  int workers = 1;
  /// Final ServeMetrics.incremental_rebinds snapshot: worker rebinds
  /// that reused previous-epoch state (only ever > 0 when the replay ran
  /// with incremental_epochs, or for the always-on exact paths).
  std::uint64_t incremental_rebinds = 0;

  /// One entry per epoch the replay served (epoch 0 first), in order.
  std::vector<DynEpochStats> epochs;

  /// Per trace event, trace order: the answer (NaN for updates and
  /// unanswered queries) and the epoch it was computed on.
  std::vector<double> values;
  std::vector<std::uint64_t> value_epochs;
  std::vector<ServeStatus> statuses;  ///< kShutdown placeholder for updates
};

/// Replays `trace` through a QueryService over an estimator of `method`
/// (a registry name of the matching weight mode) built on `graph`'s
/// current snapshot. Updates are applied from the replay thread (the
/// single writer); `options.lambda` is ignored in favor of a per-epoch λ
/// computed for methods that read it, so every answer is bit-identical
/// to a from-scratch estimator on that epoch's snapshot — UNLESS
/// `incremental_epochs` is set, which opts every swap into the
/// incremental maintenance paths (GraphEpoch::incremental: warm-started
/// Lanczos carried across epochs via a shared spectral holder,
/// rank-1-updated factors). Swaps are then O(touched) instead of
/// O(graph) but answers may drift within the documented tolerances
/// (README "Incremental epochs"). realtime=false replays back-to-back
/// (determinism suites, max-throughput benches).
template <WeightPolicy WP>
DynamicWorkloadResult RunDynamicWorkload(
    DynamicGraphT<WP>& graph, const std::string& method,
    const ErOptions& options, std::span<const DynTraceEvent> trace,
    const ServeOptions& serve_options, double deadline_seconds = 0.0,
    bool realtime = false, bool incremental_epochs = false);

extern template DynamicWorkloadResult RunDynamicWorkload<UnitWeight>(
    DynamicGraphT<UnitWeight>&, const std::string&, const ErOptions&,
    std::span<const DynTraceEvent>, const ServeOptions&, double, bool, bool);
extern template DynamicWorkloadResult RunDynamicWorkload<EdgeWeight>(
    DynamicGraphT<EdgeWeight>&, const std::string&, const ErOptions&,
    std::span<const DynTraceEvent>, const ServeOptions&, double, bool, bool);

}  // namespace geer

#endif  // GEER_EVAL_DYNAMIC_WORKLOAD_H_
