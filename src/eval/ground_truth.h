// Ground-truth ER values for query sets. The paper (§5.1) builds ground
// truth with SMM at 1000 iterations "in parallel"; we provide that, plus
// a CG-based route (exact up to 1e-12 relative residual) that is cheaper
// on large graphs and is cross-checked against SMM in tests. Both are
// parallelized over queries.

#ifndef GEER_EVAL_GROUND_TRUTH_H_
#define GEER_EVAL_GROUND_TRUTH_H_

#include <vector>

#include "eval/queries.h"
#include "graph/graph.h"

namespace geer {

/// CG ground truth: one Laplacian solve per query, multithreaded.
std::vector<double> GroundTruthCg(const Graph& graph,
                                  const std::vector<QueryPair>& queries,
                                  int num_threads = 0);

/// Paper-faithful ground truth: SMM with `iterations` power iterations
/// per query (default 1000), multithreaded. O(iterations·m) per query —
/// prefer GroundTruthCg beyond small graphs.
std::vector<double> GroundTruthSmm(const Graph& graph,
                                   const std::vector<QueryPair>& queries,
                                   std::uint32_t iterations = 1000,
                                   int num_threads = 0);

}  // namespace geer

#endif  // GEER_EVAL_GROUND_TRUTH_H_
