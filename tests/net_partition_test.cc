// The partition map's routing contract (net/partition.h): every node
// has exactly one owner in [0, k); both strategies cover all shards and
// stay reasonably balanced; ShardOf is a pure function of (n, k,
// strategy, node) — the determinism the router's "same query, same
// shard" bit-identity rule rests on; and HomeShard implements the
// documented replica rule (common owner for same-shard pairs, owner of
// min(s,t) otherwise, symmetric in its arguments).

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/partition.h"

namespace geer::net {
namespace {

TEST(PartitionTest, ParseStrategyNamesRoundTrip) {
  ASSERT_TRUE(ParseStrategy("range").has_value());
  ASSERT_TRUE(ParseStrategy("hash").has_value());
  EXPECT_EQ(*ParseStrategy("range"), PartitionStrategy::kRange);
  EXPECT_EQ(*ParseStrategy("hash"), PartitionStrategy::kHash);
  EXPECT_FALSE(ParseStrategy("Range").has_value());
  EXPECT_FALSE(ParseStrategy("").has_value());
  EXPECT_FALSE(ParseStrategy("modulo").has_value());
  EXPECT_EQ(std::string(StrategyName(PartitionStrategy::kRange)), "range");
  EXPECT_EQ(std::string(StrategyName(PartitionStrategy::kHash)), "hash");
}

TEST(PartitionTest, EveryNodeOwnedByExactlyOneValidShard) {
  for (PartitionStrategy strategy :
       {PartitionStrategy::kRange, PartitionStrategy::kHash}) {
    for (int k : {1, 2, 3, 7}) {
      const NodeId n = 1000;
      PartitionMap map(n, k, strategy);
      for (NodeId node = 0; node < n; ++node) {
        const int shard = map.ShardOf(node);
        EXPECT_GE(shard, 0);
        EXPECT_LT(shard, k);
      }
    }
  }
}

TEST(PartitionTest, RangeStrategyIsContiguousCeilBlocks) {
  // n=10, k=3 → block=ceil(10/3)=4: [0..3]→0, [4..7]→1, [8..9]→2.
  PartitionMap map(10, 3, PartitionStrategy::kRange);
  const std::vector<int> want = {0, 0, 0, 0, 1, 1, 1, 1, 2, 2};
  for (NodeId node = 0; node < 10; ++node) {
    EXPECT_EQ(map.ShardOf(node), want[node]) << "node " << node;
  }
}

TEST(PartitionTest, RangeStrategyClampsLastBlock) {
  // n=9, k=4 → block=3: shards 0..2 take 3 nodes each and shard 3 would
  // start at node 9 — the clamp keeps every owner < k with no empty gap
  // in the id space.
  PartitionMap map(9, 4, PartitionStrategy::kRange);
  for (NodeId node = 0; node < 9; ++node) {
    EXPECT_EQ(map.ShardOf(node), static_cast<int>(node / 3));
  }
}

TEST(PartitionTest, BothStrategiesCoverAllShardsAndStayBalanced) {
  const NodeId n = 4096;
  for (PartitionStrategy strategy :
       {PartitionStrategy::kRange, PartitionStrategy::kHash}) {
    for (int k : {2, 4, 8}) {
      PartitionMap map(n, k, strategy);
      std::vector<int> counts(k, 0);
      for (NodeId node = 0; node < n; ++node) ++counts[map.ShardOf(node)];
      const int lo = *std::min_element(counts.begin(), counts.end());
      const int hi = *std::max_element(counts.begin(), counts.end());
      EXPECT_GT(lo, 0) << StrategyName(strategy) << " k=" << k
                       << ": some shard owns nothing";
      // Loose balance bound: no shard more than 2x the ideal share.
      EXPECT_LE(hi, 2 * static_cast<int>(n) / k)
          << StrategyName(strategy) << " k=" << k;
    }
  }
}

TEST(PartitionTest, ShardOfIsDeterministicAcrossInstances) {
  // Two maps with identical parameters must agree node-by-node — the
  // property that lets a rebuilt router keep routing queries to the same
  // replicas (and keeps answers bit-identical across restarts).
  for (PartitionStrategy strategy :
       {PartitionStrategy::kRange, PartitionStrategy::kHash}) {
    PartitionMap a(2048, 5, strategy);
    PartitionMap b(2048, 5, strategy);
    for (NodeId node = 0; node < 2048; ++node) {
      ASSERT_EQ(a.ShardOf(node), b.ShardOf(node));
    }
  }
}

TEST(PartitionTest, SingleShardOwnsEverything) {
  for (PartitionStrategy strategy :
       {PartitionStrategy::kRange, PartitionStrategy::kHash}) {
    PartitionMap map(123, 1, strategy);
    for (NodeId node = 0; node < 123; ++node) {
      EXPECT_EQ(map.ShardOf(node), 0);
    }
    EXPECT_EQ(map.HomeShard({0, 122}), 0);
  }
}

TEST(PartitionTest, HomeShardFollowsReplicaRule) {
  for (PartitionStrategy strategy :
       {PartitionStrategy::kRange, PartitionStrategy::kHash}) {
    PartitionMap map(512, 4, strategy);
    for (NodeId s = 0; s < 512; s += 7) {
      for (NodeId t = 1; t < 512; t += 13) {
        const int home = map.HomeShard({s, t});
        if (map.SameShard({s, t})) {
          EXPECT_EQ(home, map.ShardOf(s));
          EXPECT_EQ(home, map.ShardOf(t));
        } else {
          EXPECT_EQ(home, map.ShardOf(std::min(s, t)));
        }
        // Symmetric: r(s,t) = r(t,s), so the route must not depend on
        // argument order either.
        EXPECT_EQ(home, map.HomeShard({t, s}));
      }
    }
  }
}

}  // namespace
}  // namespace geer::net
