// Node-similarity search with the ER embedding — the recommender-system
// use case the paper cites ([24, 36]: collaborative filtering via
// electrical networks). One embedding build (k Laplacian solves) turns
// "who is most similar to v?" into a dense top-k scan, versus one GEER
// query per candidate.
//
// The workload is a modular interaction graph (a ring of dense cliques):
// effective resistance within a clique is ~2/size, while reaching another
// clique pays for the sparse bridges, so the nearest nodes by ER should be
// exactly the query's clique-mates. (On expander-like graphs ER saturates
// to 1/d(s)+1/d(t) — Section 5.3 of the paper — and is not a useful
// similarity there; modular graphs are where ER-based recommendation
// makes sense.)
//
//   ./examples/similarity_search [num_cliques]

#include <cstdio>
#include <cstdlib>

#include "core/geer.h"
#include "embed/er_embedding.h"
#include "graph/generators.h"
#include "linalg/spectral.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace geer;
  const NodeId cliques =
      argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 40;
  const NodeId size = 10;

  Graph graph = gen::Caveman(cliques, size);
  std::printf("interaction graph: %u cliques of %u, n=%u m=%llu\n", cliques,
              size, graph.NumNodes(),
              static_cast<unsigned long long>(graph.NumEdges()));

  Timer build_timer;
  ErEmbeddingOptions eopt;
  eopt.dimensions = 128;
  eopt.seed = 3;
  ErEmbedding embedding(graph, eopt);
  std::printf("embedding: k=%d dims, built in %.0f ms\n",
              embedding.Dimensions(), build_timer.ElapsedMillis());

  // Query a node in the middle of clique 5; its clique-mates are
  // [5·size, 6·size).
  const NodeId query = 5 * size + 3;
  Timer topk_timer;
  const auto top = embedding.TopKNearest(query, size - 1);
  const double topk_ms = topk_timer.ElapsedMillis();

  std::printf("\ntop-%u most similar to node %u (%.1f ms single-source "
              "scan):\n", size - 1, query, topk_ms);
  int same_clique = 0;
  for (const auto& nb : top) {
    const bool same = nb.node / size == query / size;
    same_clique += same ? 1 : 0;
    std::printf("  node %5u  r̂=%.4f  %s\n", nb.node, nb.er,
                same ? "(same clique)" : "(OTHER clique)");
  }
  std::printf("%d/%u recommendations are the query's clique-mates\n",
              same_clique, size - 1);

  // Cross-check the top hit against a fresh GEER query.
  SpectralBounds spectral = ComputeSpectralBounds(graph);
  ErOptions gopt;
  gopt.epsilon = 0.05;
  gopt.lambda = spectral.lambda;
  GeerEstimator geer(graph, gopt);
  Timer geer_timer;
  const double geer_value = geer.Estimate(query, top.front().node);
  std::printf("\ncross-check vs GEER: r(%u,%u) embedding=%.4f geer=%.4f "
              "(%.1f ms per pair)\n",
              query, top.front().node, top.front().er, geer_value,
              geer_timer.ElapsedMillis());
  return same_clique >= static_cast<int>(size) - 2 ? 0 : 1;
}
