// Structural graph algorithms needed to normalize inputs to the ergodicity
// assumptions of the paper (connected + non-bipartite) and by tests.

#ifndef GEER_GRAPH_ALGORITHMS_H_
#define GEER_GRAPH_ALGORITHMS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace geer {

/// True iff the graph is connected (the empty graph counts as connected,
/// a single node as connected).
bool IsConnected(const Graph& graph);

/// True iff the graph is bipartite (2-colorable). Bipartite graphs have
/// λ_n = −1, making the truncated-walk length ℓ of Eq. (5)/(6) unbounded.
bool IsBipartite(const Graph& graph);

/// Connected-component label per node; labels are dense in [0, #components).
std::vector<std::uint32_t> ConnectedComponents(const Graph& graph);

/// Extracts the largest connected component with nodes relabelled densely.
/// Ties broken toward the component containing the smallest node id.
Graph LargestConnectedComponent(const Graph& graph);

/// Returns a graph guaranteed non-bipartite: if `graph` is bipartite, adds
/// one edge closing an odd cycle (between two same-color nodes at minimal
/// id); otherwise returns the input unchanged. The graph must have ≥ 3
/// nodes and at least one edge for a fix to exist.
Graph EnsureNonBipartite(const Graph& graph);

/// BFS hop distances from `source` (`UINT32_MAX` for unreachable nodes).
std::vector<std::uint32_t> BfsDistances(const Graph& graph, NodeId source);

/// Graph diameter estimated by a double-sweep BFS (exact on trees; a lower
/// bound in general). Requires a connected, non-empty graph.
std::uint32_t ApproxDiameter(const Graph& graph);

}  // namespace geer

#endif  // GEER_GRAPH_ALGORITHMS_H_
