// Compatibility shim: the weighted Laplacian CG solver is now the
// EdgeWeight instantiation of the weight-generic LaplacianSolverT in
// linalg/laplacian_solver.h (see graph/weight_policy.h); the historical
// name WeightedLaplacianSolver is an alias defined there.

#ifndef GEER_WEIGHTED_WEIGHTED_LAPLACIAN_SHIM_H_
#define GEER_WEIGHTED_WEIGHTED_LAPLACIAN_SHIM_H_

#include "linalg/laplacian_solver.h"

#endif  // GEER_WEIGHTED_WEIGHTED_LAPLACIAN_SHIM_H_
