#include "graph/weighted_graph.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "graph/weighted_generators.h"

namespace geer {
namespace {

TEST(WeightedGraphTest, EmptyGraph) {
  WeightedGraph g;
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 0.0);
}

TEST(WeightedGraphTest, BuilderBasicTriangle) {
  WeightedGraphBuilder b;
  b.AddEdge(0, 1, 2.0).AddEdge(1, 2, 3.0).AddEdge(0, 2, 5.0);
  WeightedGraph g = b.Build();
  EXPECT_EQ(g.NumNodes(), 3u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_EQ(g.NumArcs(), 6u);
  EXPECT_DOUBLE_EQ(g.Strength(0), 7.0);
  EXPECT_DOUBLE_EQ(g.Strength(1), 5.0);
  EXPECT_DOUBLE_EQ(g.Strength(2), 8.0);
  EXPECT_DOUBLE_EQ(g.TotalWeight(), 10.0);
}

TEST(WeightedGraphTest, ParallelEdgesMergeBySummingConductance) {
  // Two parallel resistors of 4Ω and 4Ω (conductance 0.25 each) behave as
  // one 2Ω resistor (conductance 0.5).
  WeightedGraphBuilder b;
  b.AddEdge(0, 1, 0.25).AddEdge(1, 0, 0.25).AddEdge(1, 2, 1.0);
  WeightedGraph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 2u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 0.5);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 0), 0.5);
}

TEST(WeightedGraphTest, SelfLoopsDroppedButNodeInterned) {
  WeightedGraphBuilder b;
  b.AddEdge(0, 1, 1.0).AddEdge(2, 2, 9.0);
  WeightedGraph g = b.Build();
  EXPECT_EQ(g.NumNodes(), 3u);  // node 2 exists, isolated
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.Degree(2), 0u);
  EXPECT_DOUBLE_EQ(g.Strength(2), 0.0);
}

TEST(WeightedGraphTest, EdgeWeightLookup) {
  WeightedGraphBuilder b;
  b.AddEdge(0, 1, 1.5).AddEdge(0, 3, 2.5).AddEdge(0, 2, 3.5);
  WeightedGraph g = b.Build();
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 1.5);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 2), 3.5);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 3), 2.5);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2), 0.0);
  EXPECT_FALSE(g.HasEdge(2, 3));
  EXPECT_TRUE(g.HasEdge(3, 0));
}

TEST(WeightedGraphTest, AdjacencySortedWithParallelWeights) {
  WeightedGraphBuilder b;
  b.AddEdge(2, 0, 1.0).AddEdge(2, 3, 2.0).AddEdge(2, 1, 3.0);
  WeightedGraph g = b.Build();
  const auto nbrs = g.Neighbors(2);
  ASSERT_EQ(nbrs.size(), 3u);
  EXPECT_EQ(nbrs[0], 0u);
  EXPECT_EQ(nbrs[1], 1u);
  EXPECT_EQ(nbrs[2], 3u);
  const auto wts = g.Weights(2);
  EXPECT_DOUBLE_EQ(wts[0], 1.0);
  EXPECT_DOUBLE_EQ(wts[1], 3.0);
  EXPECT_DOUBLE_EQ(wts[2], 2.0);
}

TEST(WeightedGraphTest, EdgesListsCanonicalOrder) {
  WeightedGraphBuilder b;
  b.AddEdge(3, 1, 0.5).AddEdge(0, 1, 1.5).AddEdge(2, 0, 2.5);
  const auto edges = b.Build().Edges();
  ASSERT_EQ(edges.size(), 3u);
  EXPECT_EQ(edges[0], (WeightedEdge{0, 1, 1.5}));
  EXPECT_EQ(edges[1], (WeightedEdge{0, 2, 2.5}));
  EXPECT_EQ(edges[2], (WeightedEdge{1, 3, 0.5}));
}

TEST(WeightedGraphTest, FromUnweightedMatchesSkeleton) {
  Graph g = gen::BarabasiAlbert(50, 3, 7);
  WeightedGraph wg = FromUnweighted(g);
  EXPECT_EQ(wg.NumNodes(), g.NumNodes());
  EXPECT_EQ(wg.NumEdges(), g.NumEdges());
  EXPECT_DOUBLE_EQ(wg.TotalWeight(), static_cast<double>(g.NumEdges()));
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    EXPECT_DOUBLE_EQ(wg.Strength(v), static_cast<double>(g.Degree(v)));
  }
  Graph back = wg.Skeleton();
  EXPECT_EQ(back.NumEdges(), g.NumEdges());
  EXPECT_EQ(back.NeighborArray(), g.NeighborArray());
}

TEST(WeightedGraphTest, StrengthSumsToTwiceTotalWeight) {
  WeightedGraph g = gen::GridCircuit(5, 7, 0.5, 2.0, 11);
  double sum = 0.0;
  for (NodeId v = 0; v < g.NumNodes(); ++v) sum += g.Strength(v);
  EXPECT_NEAR(sum, 2.0 * g.TotalWeight(), 1e-9);
}

TEST(WeightedGraphDeathTest, RejectsNonPositiveWeight) {
  WeightedGraphBuilder b;
  EXPECT_DEATH(b.AddEdge(0, 1, 0.0), "positive");
  EXPECT_DEATH(b.AddEdge(0, 1, -1.0), "positive");
}

TEST(WeightedGeneratorsTest, SeriesChainTopology) {
  WeightedGraph g = gen::SeriesChain({1.0, 2.0, 4.0});
  EXPECT_EQ(g.NumNodes(), 4u);
  EXPECT_EQ(g.NumEdges(), 3u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(2, 3), 0.25);
}

TEST(WeightedGeneratorsTest, ParallelPathsTopology) {
  WeightedGraph g = gen::ParallelPaths({1.0, 1.0, 2.0});
  EXPECT_EQ(g.NumNodes(), 5u);
  EXPECT_EQ(g.NumEdges(), 6u);
  // Each path contributes two series halves with conductance 2/R.
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 2), 2.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(2, 1), 2.0);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 4), 1.0);
}

TEST(WeightedGeneratorsTest, LadderTopology) {
  WeightedGraph g = gen::Ladder(4, 2.0, 0.5);
  EXPECT_EQ(g.NumNodes(), 8u);
  EXPECT_EQ(g.NumEdges(), 3u + 3u + 4u);
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 1), 2.0);   // rail
  EXPECT_DOUBLE_EQ(g.EdgeWeight(0, 4), 0.5);   // rung
}

TEST(WeightedGeneratorsTest, GridCircuitDeterministicInSeed) {
  WeightedGraph a = gen::GridCircuit(4, 4, 0.5, 2.0, 3);
  WeightedGraph b = gen::GridCircuit(4, 4, 0.5, 2.0, 3);
  WeightedGraph c = gen::GridCircuit(4, 4, 0.5, 2.0, 4);
  EXPECT_EQ(a.WeightArray(), b.WeightArray());
  EXPECT_NE(a.WeightArray(), c.WeightArray());
  for (const double w : a.WeightArray()) {
    EXPECT_GE(w, 0.5);
    EXPECT_LE(w, 2.0);
  }
}

TEST(WeightedGeneratorsTest, TriangulatedGridHasDiagonals) {
  WeightedGraph g = gen::TriangulatedGridCircuit(3, 3, 1.0, 1.0, 1);
  // 3x3: 12 axis edges + 4 diagonals.
  EXPECT_EQ(g.NumEdges(), 16u);
  EXPECT_TRUE(g.HasEdge(0, 4));  // (0,0) -> (1,1)
}

TEST(WeightedGeneratorsTest, WithUniformWeightsPreservesTopology) {
  Graph g = gen::ErdosRenyi(40, 120, 5);
  WeightedGraph wg = gen::WithUniformWeights(g, 0.1, 1.0, 9);
  EXPECT_EQ(wg.NumEdges(), g.NumEdges());
  EXPECT_EQ(wg.NeighborArray(), g.NeighborArray());
  for (const double w : wg.WeightArray()) {
    EXPECT_GE(w, 0.1);
    EXPECT_LE(w, 1.0);
  }
}

}  // namespace
}  // namespace geer
