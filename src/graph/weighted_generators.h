// Weighted-graph builders for tests, benches and the circuit example:
// random conductances over any unweighted topology, plus classic resistor
// networks (chains, ladders, grids) whose equivalent resistance has a
// closed form or a well-known reduction — the oracles the weighted test
// suite checks against.

#ifndef GEER_WEIGHTED_WEIGHTED_GENERATORS_H_
#define GEER_WEIGHTED_WEIGHTED_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"
#include "graph/weighted_graph.h"

namespace geer::gen {

/// Assigns an independent Uniform[lo, hi] conductance to every edge of
/// `graph` (deterministic in `seed`). Requires 0 < lo ≤ hi.
WeightedGraph WithUniformWeights(const Graph& graph, double lo, double hi,
                                 std::uint64_t seed);

/// A series chain of resistors: nodes 0..k, edge (i, i+1) with resistance
/// `resistances[i]` (conductance 1/R). Equivalent resistance between the
/// endpoints is Σ R_i — the series-reduction oracle.
WeightedGraph SeriesChain(const std::vector<double>& resistances);

/// Two nodes joined by `k` parallel unit-length paths with per-path
/// resistance `resistances[i]`, realized as length-2 paths through
/// distinct middle nodes (parallel edges would merge). Equivalent
/// resistance is 1 / Σ (1/R_i) — the parallel-reduction oracle.
WeightedGraph ParallelPaths(const std::vector<double>& resistances);

/// A ladder network with `rungs` rungs: two rails of `rungs` nodes each,
/// rail edges with conductance `rail`, rung edges with conductance `rung`.
WeightedGraph Ladder(NodeId rungs, double rail, double rung);

/// rows × cols grid with independent Uniform[lo, hi] conductances — the
/// "sheet of resistive material" workload of the electrical application.
/// NOTE: grids are bipartite; fine for the Laplacian solver, but the
/// walk-based estimators need non-bipartite inputs — use
/// TriangulatedGridCircuit for those.
WeightedGraph GridCircuit(NodeId rows, NodeId cols, double lo, double hi,
                          std::uint64_t seed);

/// GridCircuit plus one diagonal brace per cell. The triangles make the
/// graph non-bipartite, so λ < 1 and the truncated-walk machinery applies.
WeightedGraph TriangulatedGridCircuit(NodeId rows, NodeId cols, double lo,
                                      double hi, std::uint64_t seed);

}  // namespace geer::gen

#endif  // GEER_WEIGHTED_WEIGHTED_GENERATORS_H_
