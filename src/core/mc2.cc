#include "core/mc2.h"

#include <cmath>

#include "util/check.h"

namespace geer {

template <WeightPolicy WP>
Mc2EstimatorT<WP>::Mc2EstimatorT(const GraphT& graph, ErOptions options)
    : graph_(&graph), options_(options), walker_(graph) {
  ValidateOptions(options_);
}

template <WeightPolicy WP>
bool Mc2EstimatorT<WP>::RebindGraph(const GraphT& graph,
                                    const GraphEpoch& epoch) {
  (void)epoch;
  graph_ = &graph;
  walker_ = WalkerFor<WP>(graph);
  return true;
}

template <WeightPolicy WP>
std::uint64_t Mc2EstimatorT<WP>::NumTrials() const {
  double gamma = options_.mc2_gamma_lower;
  if (gamma <= 0.0) {
    gamma = 1.0 / WP::TotalNodeWeight(*graph_);  // 1/(2W)
  }
  const double eta = 3.0 * std::log(1.0 / options_.delta) /
                     (options_.epsilon * options_.epsilon * gamma);
  return static_cast<std::uint64_t>(std::ceil(std::max(eta, 1.0)));
}

template <WeightPolicy WP>
QueryStats Mc2EstimatorT<WP>::EstimateWithStats(NodeId s, NodeId t) {
  GEER_CHECK(SupportsQuery(s, t))
      << "MC2 answers edge queries only: (" << s << "," << t << ") ∉ E";
  QueryStats stats;
  const std::uint64_t eta = NumTrials();
  Rng rng(options_.seed ^ (static_cast<std::uint64_t>(s) << 32) ^ t);
  std::uint64_t direct = 0;
  for (std::uint64_t k = 0; k < eta; ++k) {
    const WalkFirstVisit trial = walker_.FirstVisitTrial(
        s, t, options_.mc2_max_steps_per_trial, rng);
    ++stats.walks;
    stats.walk_steps += trial.steps;
    if (!trial.hit) {
      stats.truncated = true;  // step cap reached; trial counts as miss
      continue;
    }
    if (trial.used_direct_edge) ++direct;
  }
  // Pr[first visit via the direct edge] = w(s,t)·r(s,t).
  stats.value = static_cast<double>(direct) / static_cast<double>(eta) /
                WP::EdgeConductance(*graph_, s, t);
  return stats;
}

template class Mc2EstimatorT<UnitWeight>;
template class Mc2EstimatorT<EdgeWeight>;

}  // namespace geer
