#include "core/hay.h"

#include <cmath>

#include "rw/wilson.h"
#include "util/check.h"

namespace geer {

HayEstimator::HayEstimator(const Graph& graph, ErOptions options)
    : graph_(&graph), options_(options) {
  ValidateOptions(options_);
}

std::uint64_t HayEstimator::NumTrees() const {
  if (options_.hay_num_trees > 0) return options_.hay_num_trees;
  const double n = std::log(2.0 / options_.delta) /
                   (2.0 * options_.epsilon * options_.epsilon);
  return static_cast<std::uint64_t>(std::ceil(std::max(n, 1.0)));
}

QueryStats HayEstimator::EstimateWithStats(NodeId s, NodeId t) {
  GEER_CHECK(SupportsQuery(s, t))
      << "HAY answers edge queries only: (" << s << "," << t << ") ∉ E";
  QueryStats stats;
  const std::uint64_t trees = NumTrees();
  Rng rng(options_.seed ^ (static_cast<std::uint64_t>(s) << 32) ^ t);
  std::uint64_t hits = 0;
  for (std::uint64_t k = 0; k < trees; ++k) {
    const SpanningTree tree = SampleUniformSpanningTree(*graph_, s, rng);
    if (tree.ContainsEdge(s, t)) ++hits;
  }
  stats.walks = trees;  // one loop-erased-walk forest per tree
  stats.value = static_cast<double>(hits) / static_cast<double>(trees);
  return stats;
}

}  // namespace geer
