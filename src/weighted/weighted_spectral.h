// Weighted spectral preprocessing: λ = max(|λ₂|, |λ_n|) of the weighted
// transition matrix P = D_w^{-1} A_w, via Lanczos on the similar symmetric
// operator N = D_w^{-1/2} A_w D_w^{-1/2} with the known top eigenvector
// (∝ √w(v)) deflated. Mirrors linalg/spectral.h.

#ifndef GEER_WEIGHTED_WEIGHTED_SPECTRAL_H_
#define GEER_WEIGHTED_WEIGHTED_SPECTRAL_H_

#include "linalg/spectral.h"
#include "weighted/weighted_graph.h"

namespace geer {

/// Computes λ₂, λ_n and λ of the weighted transition matrix for a
/// connected weighted graph, reusing SpectralBounds/SpectralOptions from
/// the unweighted module. With unit weights the result matches
/// ComputeSpectralBounds on the skeleton exactly.
SpectralBounds ComputeWeightedSpectralBounds(
    const WeightedGraph& graph, const SpectralOptions& options = {});

/// Exact (dense Jacobi) weighted spectral bounds for small graphs; oracle.
SpectralBounds ComputeWeightedSpectralBoundsDense(const WeightedGraph& graph);

}  // namespace geer

#endif  // GEER_WEIGHTED_WEIGHTED_SPECTRAL_H_
