// Wilson's algorithm: exact random spanning tree sampling via loop-erased
// random walks. With uniform stepping the sampled tree is a uniform
// spanning tree (UST); with conductance-weighted stepping it is drawn
// with probability proportional to Π_{e∈T} w(e) — the weighted tree
// measure of the matrix-tree theorem, for which Pr[e ∈ T] = w(e)·r(e).
// Substrate for the HAY baseline in both weight modes.

#ifndef GEER_RW_WILSON_H_
#define GEER_RW_WILSON_H_

#include <vector>

#include "graph/graph.h"
#include "rw/rng.h"
#include "util/check.h"

namespace geer {

/// A spanning tree represented by a parent pointer per node; the root's
/// parent is itself.
struct SpanningTree {
  NodeId root = 0;
  std::vector<NodeId> parent;

  /// True iff the undirected edge {u, v} is a tree edge.
  bool ContainsEdge(NodeId u, NodeId v) const {
    return parent[u] == v || parent[v] == u;
  }
};

/// Samples a random spanning tree of the (connected) graph behind
/// `walker`, rooted at `root`, using Wilson's loop-erased random-walk
/// algorithm under the walker's step law. Uniform stepping yields a UST;
/// weighted stepping yields the w-weighted tree measure. Expected time
/// O(mean hitting time). `walker` is any sampler with Step() and graph()
/// (Walker or WeightedWalker).
template <typename WalkerT>
SpanningTree SampleSpanningTree(const WalkerT& walker, NodeId root,
                                Rng& rng) {
  const auto& graph = walker.graph();
  const NodeId n = graph.NumNodes();
  GEER_CHECK(root < n);
  SpanningTree tree;
  tree.root = root;
  tree.parent.assign(n, root);
  std::vector<char> in_tree(n, 0);
  in_tree[root] = 1;
  tree.parent[root] = root;

  // Classic Wilson: from each not-yet-covered node, random-walk until the
  // current tree is hit, then retrace the loop-erased path via the
  // remembered successor ("next") pointers.
  std::vector<NodeId> next(n, 0);
  for (NodeId start = 0; start < n; ++start) {
    if (in_tree[start]) continue;
    // Checking the start suffices: every later node was entered over an
    // edge, so it has positive degree. Keeping the check out of the walk
    // loop spares a redundant degree load per step.
    GEER_CHECK(graph.Degree(start) > 0)
        << "Wilson requires a connected graph";
    NodeId u = start;
    while (!in_tree[u]) {
      next[u] = walker.Step(u, rng);
      u = next[u];
    }
    u = start;
    while (!in_tree[u]) {
      in_tree[u] = 1;
      tree.parent[u] = next[u];
      u = next[u];
    }
  }
  return tree;
}

/// Compat wrapper: uniform spanning tree of an unweighted graph.
SpanningTree SampleUniformSpanningTree(const Graph& graph, NodeId root,
                                       Rng& rng);

}  // namespace geer

#endif  // GEER_RW_WILSON_H_
