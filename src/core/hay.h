// HAY baseline [Hayashi, Akiba & Yoshida, IJCAI'16], edge queries only:
// by the matrix-tree theorem, r(e) = Pr[e ∈ T] for a uniformly random
// spanning tree T. Sample USTs with Wilson's algorithm; the hit fraction
// is an unbiased estimate with Hoeffding sample bound ln(2/δ)/(2ε²).

#ifndef GEER_CORE_HAY_H_
#define GEER_CORE_HAY_H_

#include "core/estimator.h"
#include "core/options.h"

namespace geer {

class HayEstimator : public ErEstimator {
 public:
  HayEstimator(const Graph& graph, ErOptions options = {});
  // Stores a pointer to `graph`; a temporary would dangle.
  HayEstimator(Graph&&, ErOptions = {}) = delete;

  std::string Name() const override { return "HAY"; }
  QueryStats EstimateWithStats(NodeId s, NodeId t) override;

  bool SupportsQuery(NodeId s, NodeId t) const override {
    return s != t && graph_->HasEdge(s, t);
  }

  /// Number of spanning trees sampled per query under the options.
  std::uint64_t NumTrees() const;

 private:
  const Graph* graph_;
  ErOptions options_;
};

}  // namespace geer

#endif  // GEER_CORE_HAY_H_
