// Serving-throughput bench: quantifies what the micro-batching scheduler
// buys over batch-size-1 dispatch on grouped-by-source traffic, per
// algorithm that shares batch work. Each method cell replays the SAME
// compressed burst trace through RunServedWorkload in three serving
// configurations:
//
//   batch1:    max_batch_size = 1, session caches off — every query
//              dispatched alone, shared precomputation rebuilt per call
//              (the naive serving baseline the ISSUE motivates against)
//   coalesced: max_batch_size = 32, session caches off — same-source
//              queries ride one micro-batch and share walk populations /
//              SpMV iterates within it
//   session:   coalesced + per-worker session caches — SMM/GEER source
//              iterates additionally persist across micro-batches
//
// and verifies the three answer vectors are bit-identical to the serial
// Estimate loop before reporting throughput, client-latency percentiles
// and mean micro-batch size. The numbers land in EXPERIMENTS.md and in
// the CI BENCH JSON (tools/run_bench.sh).
//
// The trace repeats a grouped-by-source query set (8 sources × 16
// targets) over --rounds rounds, so sources RECUR across micro-batches —
// the access pattern session caches exist for.
//
// --obs-overhead switches to the instrumentation-overhead harness: two
// cells (GEER/dblp, TP/facebook) run the session configuration twice,
// once with the metrics registry gated off (mode "obs_off") and once
// recording (mode "obs_on"), same CSV columns. tools/run_bench.sh turns
// the qps delta into the obs/<dataset>/overhead_pct series that
// tools/check_bench.sh pins to ≤2%.
//
//   bench_serve_throughput [--scale=f] [--seed=n] [--tp-scale=f]
//                          [--threads=n] [--rounds=n] [--csv]
//                          [--obs-overhead]

#include <cmath>
#include <cstdio>
#include <cstring>
#include <optional>
#include <span>

#include "bench/bench_common.h"
#include "core/registry.h"
#include "eval/experiment.h"
#include "obs/metrics.h"
#include "serve/trace.h"
#include "util/check.h"

namespace geer {
namespace {

// The batch_shared bench's workload shape, repeated so sources recur.
std::vector<QueryPair> GroupedQueries(NodeId n, int rounds) {
  const NodeId kSources = 8;
  const NodeId kTargetsPerSource = 16;
  std::vector<QueryPair> queries;
  for (int r = 0; r < rounds; ++r) {
    for (NodeId i = 0; i < kSources; ++i) {
      const NodeId s = static_cast<NodeId>((i * n) / kSources);
      for (NodeId j = 0; j < kTargetsPerSource; ++j) {
        const NodeId t = static_cast<NodeId>((s + 1 + 37 * j) % n);
        if (t != s) queries.push_back({s, t});
      }
    }
  }
  return queries;
}

struct Mode {
  const char* name;
  std::size_t max_batch_size;
  std::size_t session_cache_bytes;
};

int Main(int argc, char** argv) {
  bench::BenchArgs args;
  int threads = 1;
  int rounds = 2;
  bool obs_overhead = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string(key) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = value("--scale")) {
      args.scale = std::atof(v->c_str());
    } else if (auto v = value("--seed")) {
      args.seed = static_cast<std::uint64_t>(std::atoll(v->c_str()));
    } else if (auto v = value("--tp-scale")) {
      args.tp_scale = std::atof(v->c_str());
      args.tpc_scale = args.tp_scale;
    } else if (auto v = value("--threads")) {
      threads = std::atoi(v->c_str());
    } else if (auto v = value("--rounds")) {
      rounds = std::atoi(v->c_str());
    } else if (arg == "--csv") {
      args.csv = true;
    } else if (arg == "--obs-overhead") {
      obs_overhead = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  struct Cell {
    const char* method;
    const char* dataset;
    double epsilon;
  };
  const Cell scheduler_cells[] = {
      {"GEER", "dblp", 0.05},
      {"SMM", "dblp", 0.05},
      {"TP", "facebook", 0.2},
      {"TPC", "facebook", 0.2},
  };
  const Mode scheduler_modes[] = {
      {"batch1", 1, 0},
      {"coalesced", 32, 0},
      {"session", 32, 64ull << 20},
  };
  // Overhead harness: the production serving configuration (session),
  // gated off vs recording. Two method families suffice — one walk-based
  // cache-heavy (GEER) and one SpMV-based (TP).
  const Cell obs_cells[] = {
      {"GEER", "dblp", 0.05},
      {"TP", "facebook", 0.2},
  };
  const Mode obs_modes[] = {
      {"obs_off", 32, 64ull << 20},
      {"obs_on", 32, 64ull << 20},
  };
  const std::span<const Cell> cells =
      obs_overhead ? std::span<const Cell>(obs_cells)
                   : std::span<const Cell>(scheduler_cells);
  const std::span<const Mode> modes =
      obs_overhead ? std::span<const Mode>(obs_modes)
                   : std::span<const Mode>(scheduler_modes);

  if (args.csv) {
    std::printf(
        "method,dataset,epsilon,mode,queries,throughput_qps,p50_ms,p95_ms,"
        "p99_ms,avg_batch,ms_per_q\n");
  } else {
    std::printf(
        "# grouped trace: 8 sources x 16 targets x %d rounds (burst); "
        "tp/tpc scale=%g, threads=%d\n",
        rounds, args.tp_scale, threads);
    std::printf("%-8s %-10s %6s %-10s %12s %9s %9s %9s %9s %9s\n", "method",
                "dataset", "eps", "mode", "qps", "p50_ms", "p95_ms",
                "p99_ms", "avg_batch", "ms/q");
  }

  for (const Cell& cell : cells) {
    auto ds = MakeDataset(cell.dataset, args.scale > 0 ? args.scale : 0.1);
    GEER_CHECK(ds.has_value());
    const std::vector<QueryPair> queries =
        GroupedQueries(ds->graph.NumNodes(), rounds);
    const std::vector<TraceEvent> trace =
        MakeOpenLoopTrace(queries, /*qps=*/0.0, args.seed);
    ErOptions opt = args.BaseOptions(cell.epsilon);
    opt.lambda = ds->spectral.lambda;

    // Serial ground truth the served modes must reproduce bit for bit.
    std::vector<double> serial_values(queries.size());
    {
      auto estimator = CreateEstimator(cell.method, ds->graph, opt);
      for (std::size_t i = 0; i < queries.size(); ++i) {
        serial_values[i] =
            estimator->Estimate(queries[i].s, queries[i].t);
      }
    }

    for (const Mode& mode : modes) {
      if (obs_overhead) {
        obs::SetEnabled(std::strcmp(mode.name, "obs_on") == 0);
      }
      auto estimator = CreateEstimator(cell.method, ds->graph, opt);
      ServeOptions serve_options;
      serve_options.max_batch_size = mode.max_batch_size;
      serve_options.max_linger_seconds = 0.0;
      serve_options.threads = threads;
      serve_options.session_cache_bytes = mode.session_cache_bytes;
      const ServedWorkloadResult served =
          RunServedWorkload(*estimator, trace, serve_options,
                            /*deadline_seconds=*/0.0, /*realtime=*/false);
      GEER_CHECK_EQ(served.answered, queries.size())
          << cell.method << " " << mode.name;
      for (std::size_t i = 0; i < queries.size(); ++i) {
        GEER_CHECK(served.values[i] == serial_values[i])
            << cell.method << " " << mode.name
            << " served answer diverged from serial at query " << i;
      }
      const double ms_per_q =
          served.wall_seconds * 1e3 / static_cast<double>(served.answered);
      if (args.csv) {
        std::printf("%s,%s,%g,%s,%zu,%.1f,%.4f,%.4f,%.4f,%.2f,%.4f\n",
                    cell.method, cell.dataset, cell.epsilon, mode.name,
                    queries.size(), served.throughput_qps, served.p50_ms,
                    served.p95_ms, served.p99_ms, served.avg_batch,
                    ms_per_q);
      } else {
        std::printf(
            "%-8s %-10s %6g %-10s %12.1f %9.3f %9.3f %9.3f %9.2f %9.4f\n",
            cell.method, cell.dataset, cell.epsilon, mode.name,
            served.throughput_qps, served.p50_ms, served.p95_ms,
            served.p99_ms, served.avg_batch, ms_per_q);
      }
    }
  }
  obs::SetEnabled(true);  // leave the process-wide gate as found
  return 0;
}

}  // namespace
}  // namespace geer

int main(int argc, char** argv) { return geer::Main(argc, argv); }
