#include "embed/er_embedding.h"

#include <algorithm>
#include <cmath>
#include <functional>

#include "linalg/laplacian_solver.h"
#include "rw/rng.h"
#include "util/check.h"

namespace geer {

int ErEmbedding::DeriveDimensions(NodeId num_nodes,
                                  const ErEmbeddingOptions& options) {
  if (options.dimensions > 0) return options.dimensions;
  GEER_CHECK(options.epsilon > 0.0);
  const double n = std::max<double>(num_nodes, 2.0);
  return static_cast<int>(
      std::ceil(24.0 * std::log(n) / (options.epsilon * options.epsilon)));
}

void ErEmbedding::Build(const std::vector<EdgeRef>& edges,
                        const std::function<Vector(const Vector&)>& solve,
                        const ErEmbeddingOptions& options) {
  k_ = DeriveDimensions(num_nodes_, options);
  GEER_CHECK(TableBytes(num_nodes_, k_) <= options.max_bytes)
      << "embedding table of " << TableBytes(num_nodes_, k_)
      << " bytes exceeds max_bytes";
  table_.assign(static_cast<std::size_t>(num_nodes_) * k_, 0.0);

  Rng rng(options.seed ^ 0x51b9a5e3c0ffee17ULL);
  const double inv_sqrt_k = 1.0 / std::sqrt(static_cast<double>(k_));
  Vector row(num_nodes_, 0.0);
  for (int j = 0; j < k_; ++j) {
    std::fill(row.begin(), row.end(), 0.0);
    // Row j of Q W^{1/2} B: ±√(w_e)/√k at e's endpoints, opposite signs.
    for (const EdgeRef& e : edges) {
      const double q =
          (rng.NextBernoulli(0.5) ? inv_sqrt_k : -inv_sqrt_k) *
          std::sqrt(e.weight);
      row[e.u] += q;
      row[e.v] -= q;
    }
    const Vector z = solve(row);
    // Scatter the solve into column j of the row-major node table.
    for (NodeId v = 0; v < num_nodes_; ++v) {
      table_[static_cast<std::size_t>(v) * k_ + j] = z[v];
    }
  }
}

ErEmbedding::ErEmbedding(const Graph& graph, ErEmbeddingOptions options)
    : num_nodes_(graph.NumNodes()) {
  edges_.reserve(graph.NumEdges());
  for (const auto& [u, v] : graph.Edges()) edges_.push_back({u, v, 1.0});
  LaplacianSolver::Options sopt;
  sopt.tolerance = options.solve_tolerance;
  LaplacianSolver solver(graph, sopt);
  Build(edges_, [&solver](const Vector& b) { return solver.Solve(b); },
        options);
}

ErEmbedding::ErEmbedding(const WeightedGraph& graph,
                         ErEmbeddingOptions options)
    : num_nodes_(graph.NumNodes()) {
  edges_.reserve(graph.NumEdges());
  for (const auto& e : graph.Edges()) edges_.push_back({e.u, e.v, e.weight});
  WeightedLaplacianSolver::Options sopt;
  sopt.tolerance = options.solve_tolerance;
  WeightedLaplacianSolver solver(graph, sopt);
  Build(edges_, [&solver](const Vector& b) { return solver.Solve(b); },
        options);
}

double ErEmbedding::PairwiseEr(NodeId s, NodeId t) const {
  GEER_CHECK(s < num_nodes_);
  GEER_CHECK(t < num_nodes_);
  if (s == t) return 0.0;
  const double* zs = table_.data() + static_cast<std::size_t>(s) * k_;
  const double* zt = table_.data() + static_cast<std::size_t>(t) * k_;
  double acc = 0.0;
  for (int j = 0; j < k_; ++j) {
    const double diff = zs[j] - zt[j];
    acc += diff * diff;
  }
  return acc;
}

void ErEmbedding::SingleSource(NodeId s, Vector* out) const {
  GEER_CHECK(s < num_nodes_);
  out->assign(num_nodes_, 0.0);
  const double* zs = table_.data() + static_cast<std::size_t>(s) * k_;
  const double* row = table_.data();
  for (NodeId v = 0; v < num_nodes_; ++v, row += k_) {
    double acc = 0.0;
    for (int j = 0; j < k_; ++j) {
      const double diff = zs[j] - row[j];
      acc += diff * diff;
    }
    (*out)[v] = acc;
  }
  (*out)[s] = 0.0;
}

std::vector<ErNeighbor> ErEmbedding::TopKNearest(NodeId s,
                                                 std::size_t count) const {
  Vector er;
  SingleSource(s, &er);
  std::vector<ErNeighbor> all;
  all.reserve(num_nodes_ > 0 ? num_nodes_ - 1 : 0);
  for (NodeId v = 0; v < num_nodes_; ++v) {
    if (v != s) all.push_back({v, er[v]});
  }
  const std::size_t take = std::min(count, all.size());
  auto by_er = [](const ErNeighbor& a, const ErNeighbor& b) {
    return a.er != b.er ? a.er < b.er : a.node < b.node;
  };
  std::partial_sort(all.begin(), all.begin() + take, all.end(), by_er);
  all.resize(take);
  return all;
}

std::vector<double> ErEmbedding::AllEdgeEr() const {
  std::vector<double> out;
  out.reserve(edges_.size());
  for (const EdgeRef& e : edges_) out.push_back(PairwiseEr(e.u, e.v));
  return out;
}

}  // namespace geer
