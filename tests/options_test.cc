// Contract tests for ErOptions validation: every estimator calls
// ValidateOptions at construction, so these death tests pin down the
// fail-fast surface of the whole library.

#include "core/options.h"

#include <gtest/gtest.h>

namespace geer {
namespace {

ErOptions Valid() { return ErOptions{}; }

TEST(OptionsTest, DefaultsAreValid) { ValidateOptions(Valid()); }

TEST(OptionsTest, PaperExperimentalDefaults) {
  // §5.1: δ = 0.01, τ = 5 — pin the defaults the benches rely on.
  const ErOptions opt;
  EXPECT_DOUBLE_EQ(opt.delta, 0.01);
  EXPECT_EQ(opt.tau, 5);
  EXPECT_FALSE(opt.use_peng_ell);
  EXPECT_EQ(opt.geer_fixed_lb, -1);
}

TEST(OptionsDeathTest, RejectsNonPositiveEpsilon) {
  ErOptions opt = Valid();
  opt.epsilon = 0.0;
  EXPECT_DEATH(ValidateOptions(opt), "epsilon");
  opt.epsilon = -0.1;
  EXPECT_DEATH(ValidateOptions(opt), "epsilon");
}

TEST(OptionsDeathTest, RejectsDeltaOutsideUnitInterval) {
  ErOptions opt = Valid();
  opt.delta = 0.0;
  EXPECT_DEATH(ValidateOptions(opt), "delta");
  opt.delta = 1.0;
  EXPECT_DEATH(ValidateOptions(opt), "delta");
}

TEST(OptionsDeathTest, RejectsBadTau) {
  ErOptions opt = Valid();
  opt.tau = 0;
  EXPECT_DEATH(ValidateOptions(opt), "tau");
  opt.tau = 63;  // 2^τ would overflow the sample-count arithmetic
  EXPECT_DEATH(ValidateOptions(opt), "tau");
}

TEST(OptionsDeathTest, RejectsLambdaOutsideRange) {
  ErOptions opt = Valid();
  opt.lambda = 1.0;  // walk-length formulas divide by log(1/λ)
  EXPECT_DEATH(ValidateOptions(opt), "lambda");
  opt.lambda = -0.1;
  EXPECT_DEATH(ValidateOptions(opt), "lambda");
}

TEST(OptionsTest, LambdaJustBelowOneAccepted) {
  ErOptions opt = Valid();
  opt.lambda = 1.0 - 1e-9;
  ValidateOptions(opt);  // must not die — near-bipartite graphs hit this
}

TEST(OptionsDeathTest, RejectsZeroMaxEll) {
  ErOptions opt = Valid();
  opt.max_ell = 0;
  EXPECT_DEATH(ValidateOptions(opt), "max_ell");
}

TEST(OptionsDeathTest, RejectsNonPositiveSampleScales) {
  ErOptions opt = Valid();
  opt.tp_scale = 0.0;
  EXPECT_DEATH(ValidateOptions(opt), "tp_scale");
  opt = Valid();
  opt.tpc_scale = -1.0;
  EXPECT_DEATH(ValidateOptions(opt), "tpc_scale");
}

TEST(OptionsDeathTest, RejectsNegativeRpDimensions) {
  ErOptions opt = Valid();
  opt.rp_dimensions = -8;
  EXPECT_DEATH(ValidateOptions(opt), "rp_dimensions");
}

}  // namespace
}  // namespace geer
