#include "core/smm.h"

#include <algorithm>
#include <optional>
#include <unordered_map>

#include "core/ell.h"
#include "core/spectral_epoch.h"
#include "util/check.h"

namespace geer {

template <WeightPolicy WP>
SmmSessionCacheT<WP>::SmmSessionCacheT(const GraphT& graph,
                                       TransitionOperatorT<WP>* op,
                                       std::size_t budget_bytes,
                                       bool deep_entries)
    : graph_(&graph), op_(op), cache_(budget_bytes) {
  constexpr std::size_t kDefaultBudgetBytes = 64ull << 20;
  if (budget_bytes == 0) {
    budget_bytes = kDefaultBudgetBytes;
    cache_.set_budget_bytes(budget_bytes);
  }
  // Depth cap per entry: the session splits its budget across
  // kMaxSources resident streams; the one-shot pool instead grants each
  // stream the historical standalone SmmSourceCacheT budget (~256 MB)
  // so batch-local runs keep their depth.
  constexpr std::uint64_t kDeepEntryBytes = 256ull << 20;
  const std::uint64_t entry_budget =
      deep_entries ? kDeepEntryBytes : budget_bytes / kMaxSources;
  const std::uint64_t per_iterate =
      static_cast<std::uint64_t>(graph.NumNodes()) * sizeof(double);
  const std::uint64_t derived =
      entry_budget / std::max<std::uint64_t>(per_iterate, 1);
  // Floor of 2 so there is always something to share.
  per_source_cap_ = static_cast<std::uint32_t>(
      std::clamp<std::uint64_t>(derived, 2, 1u << 20));
}

template <WeightPolicy WP>
void SmmSessionCacheT<WP>::Rebind(const GraphT& graph,
                                  const GraphEpoch& epoch) {
  graph_ = &graph;
  if (epoch.resized) {
    cache_.Clear();  // dense iterates are sized to the old node count
    return;
  }
  cache_.EvictIf([&epoch](NodeId, const SmmSourceCacheT<WP>& cache) {
    return cache.DependsOn(epoch.touched);
  });
}

template <WeightPolicy WP>
SmmSourceCacheT<WP>* SmmSessionCacheT<WP>::CacheFor(NodeId node, bool pin) {
  SmmSourceCacheT<WP>* cache = cache_.GetOrCreate(node, [this, node] {
    return SmmSourceCacheT<WP>(*graph_, op_, node, per_source_cap_);
  });
  if (pin) cache_.Pin(node);
  return cache;
}

template <WeightPolicy WP>
void SmmSessionCacheT<WP>::Sweep(std::initializer_list<NodeId> grown) {
  for (const NodeId node : grown) {
    if (const SmmSourceCacheT<WP>* cache = cache_.Peek(node)) {
      cache_.SetBytes(node, cache->ApproxBytes());
    }
  }
  cache_.EvictOverBudget();
}

template <WeightPolicy WP>
SmmSourceCacheT<WP>::SmmSourceCacheT(const GraphT& graph,
                                     TransitionOperatorT<WP>* op,
                                     NodeId source, std::uint32_t max_cached)
    : source_(source), op_(op) {
  GEER_CHECK(source < graph.NumNodes());
  if (max_cached > 0) {
    max_cached_ = max_cached;
  } else {
    // ~256 MB of cached dense iterates: deep enough for every ℓ_b that
    // arises on graphs small enough for the cache to be cheap, and a
    // hard bound on the ones where it would not be (the floor is 2 so
    // there is always SOMETHING to share — never enough to break the
    // byte budget by more than one iterate).
    constexpr std::uint64_t kMaxCachedBytes = 256ull << 20;
    const std::uint64_t per_iterate =
        static_cast<std::uint64_t>(graph.NumNodes()) * sizeof(double);
    const std::uint64_t derived = kMaxCachedBytes / std::max<std::uint64_t>(
                                                        per_iterate, 1);
    max_cached_ = static_cast<std::uint32_t>(
        std::clamp<std::uint64_t>(derived, 2, 1u << 20));
  }
  live_.InitOneHot(source, graph);
  iterates_.push_back(live_.values);
  support_costs_.push_back(live_.support_degree_sum);
  dep_mark_.assign(graph.NumNodes(), 0);
  AbsorbSupport();
}

template <WeightPolicy WP>
void SmmSourceCacheT<WP>::AbsorbSupport() {
  if (live_.dense) {
    dep_dense_ = true;  // support tracking stopped; dependency unknown
    return;
  }
  for (const NodeId v : live_.support) dep_mark_[v] = 1;
}

template <WeightPolicy WP>
bool SmmSourceCacheT<WP>::DependsOn(std::span<const NodeId> touched) const {
  if (dep_dense_) return true;
  for (const NodeId v : touched) {
    if (v < dep_mark_.size() && dep_mark_[v] != 0) return true;
  }
  return false;
}

template <WeightPolicy WP>
void SmmSourceCacheT<WP>::EnsureIterations(std::uint32_t j,
                                           std::uint64_t* fresh_ops) {
  const std::uint32_t target = std::min(j, max_cached_);
  while (iterates_.size() <= target) {
    *fresh_ops += op_->ApplyAuto(&live_);
    iterates_.push_back(live_.values);
    support_costs_.push_back(live_.support_degree_sum);
    AbsorbSupport();
  }
}

template <WeightPolicy WP>
SmmIteratorT<WP>::SmmIteratorT(const GraphT& graph,
                               TransitionOperatorT<WP>* op, NodeId s,
                               NodeId t, SmmSourceCacheT<WP>* s_cache,
                               SmmSourceCacheT<WP>* t_cache)
    : graph_(&graph),
      op_(op),
      s_(s),
      t_(t),
      s_cache_(s_cache),
      t_cache_(t_cache) {
  GEER_CHECK(s < graph.NumNodes());
  GEER_CHECK(t < graph.NumNodes());
  inv_ws_ = 1.0 / WP::NodeWeight(graph, s);
  inv_wt_ = 1.0 / WP::NodeWeight(graph, t);
  if (s_cache_ != nullptr) {
    GEER_CHECK_EQ(s_cache_->source(), s);
  } else {
    s_vec_.InitOneHot(s, graph);
  }
  if (t_cache_ != nullptr) {
    GEER_CHECK_EQ(t_cache_->source(), t);
  } else {
    t_vec_.InitOneHot(t, graph);
  }
  // i = 0 term of Eq. (4): p_0(s,s)/w(s) + p_0(t,t)/w(t)
  //                        − p_0(s,t)/w(s) − p_0(t,s)/w(t).
  const Vector& sv = svec();
  const Vector& tv = tvec();
  rb_ = sv[s_] * inv_ws_ + tv[t_] * inv_wt_ -
        sv[t_] * inv_ws_ - tv[s_] * inv_wt_;
}

template <WeightPolicy WP>
void SmmIteratorT<WP>::AdvanceSide(SmmSourceCacheT<WP>* cache,
                                   bool& spilled, SparseVector& vec) {
  const bool reads_cache = cache != nullptr && !spilled;
  if (reads_cache && iterations_ + 1 > cache->max_cached_iterations()) {
    // Past the cache's memory cap: continue on a private copy of the
    // boundary state. The copy is the exact live state a serial query
    // would hold at this depth, so the remaining iteration stays
    // bit-identical — it just stops being shared.
    vec = cache->BoundaryState();
    spilled = true;
  }
  if (cache != nullptr && !spilled) {
    // Only freshly materialized cache steps cost anything — the point of
    // node-keyed sharing. The cached vector is produced by the same
    // ApplyAuto sequence the uncached path runs, so rb stays
    // bit-identical.
    std::uint64_t fresh = 0;
    cache->EnsureIterations(iterations_ + 1, &fresh);
    spmv_ops_ += fresh;
  } else {
    spmv_ops_ += op_->ApplyAuto(&vec);
  }
}

template <WeightPolicy WP>
void SmmIteratorT<WP>::Advance() {
  AdvanceSide(s_cache_, s_spilled_, s_vec_);
  AdvanceSide(t_cache_, t_spilled_, t_vec_);
  ++iterations_;
  const Vector& sv = svec();
  const Vector& tv = tvec();
  rb_ += sv[s_] * inv_ws_ + tv[t_] * inv_wt_ -
         sv[t_] * inv_ws_ - tv[s_] * inv_wt_;
}

template <WeightPolicy WP>
SmmEstimatorT<WP>::SmmEstimatorT(const GraphT& graph, ErOptions options)
    : graph_(&graph), options_(options), op_(graph) {
  ValidateOptions(options_);
  lambda_ = options_.lambda.has_value()
                ? *options_.lambda
                : ComputeSpectralBoundsT<WP>(graph).lambda;
}

template <WeightPolicy WP>
bool SmmEstimatorT<WP>::RebindGraph(const GraphT& graph,
                                    const GraphEpoch& epoch) {
  graph_ = &graph;
  op_ = TransitionOperatorT<WP>(graph);  // member address is stable, so
                                         // retained caches keep their op_
  bool warm = false;
  lambda_ = RebindLambda<WP>(graph, epoch, &warm);
  if (warm) incremental_rebinds_.fetch_add(1, std::memory_order_relaxed);
  if (session_ != nullptr) session_->Rebind(graph, epoch);
  return true;
}

template <WeightPolicy WP>
QueryStats SmmEstimatorT<WP>::EstimateWithCache(
    NodeId s, NodeId t, SmmSourceCacheT<WP>* s_cache,
    SmmSourceCacheT<WP>* t_cache) {
  QueryStats stats;
  if (s == t) return stats;
  const double ws = WP::NodeWeight(*graph_, s);
  const double wt = WP::NodeWeight(*graph_, t);
  std::uint32_t ell;
  if (options_.smm_iterations > 0) {
    ell = options_.smm_iterations;
  } else if (options_.use_peng_ell) {
    ell = PengEll(options_.epsilon, lambda_, options_.max_ell);
    stats.truncated = EllWasTruncated(options_.epsilon, lambda_, 1, 1,
                                      options_.max_ell, /*use_peng=*/true);
  } else {
    ell = RefinedEllWeighted(options_.epsilon, lambda_, ws, wt,
                             options_.max_ell);
    stats.truncated = EllWasTruncated(options_.epsilon, lambda_, ws, wt,
                                      options_.max_ell, /*use_peng=*/false);
  }
  SmmIteratorT<WP> iter(*graph_, &op_, s, t, s_cache, t_cache);
  for (std::uint32_t i = 0; i < ell; ++i) iter.Advance();
  stats.value = iter.rb();
  stats.ell = ell;
  stats.ell_b = iter.iterations();
  stats.spmv_ops = iter.spmv_ops();
  return stats;
}

template <WeightPolicy WP>
QueryStats SmmEstimatorT<WP>::EstimateWithStats(NodeId s, NodeId t) {
  GEER_CHECK(s < graph_->NumNodes());
  GEER_CHECK(t < graph_->NumNodes());
  // Canonical endpoint order with a fixed accumulation order makes
  // Estimate(s, t) ≡ Estimate(t, s) bitwise — the symmetry the
  // node-keyed batch caches rely on.
  const NodeId u = std::min(s, t);
  const NodeId v = std::max(s, t);
  return EstimateWithCache(u, v, nullptr, nullptr);
}

template <WeightPolicy WP>
std::size_t SmmEstimatorT<WP>::EstimateBatch(
    std::span<const QueryPair> queries, std::span<QueryStats> stats,
    const BatchContext& context) {
  GEER_CHECK(stats.size() >= queries.size());
  // Every endpoint's iterate stream lives in a node-keyed pool — the
  // session when enabled, a batch-local pool otherwise — so both query
  // sides reuse streams across the whole batch. The canonical (min, max)
  // evaluation order matches the serial path bit-for-bit.
  std::optional<SmmSessionCacheT<WP>> local;
  SmmSessionCacheT<WP>* pool = session_.get();
  if (pool == nullptr) {
    constexpr std::size_t kOneShotPoolBytes = 256ull << 20;
    local.emplace(*graph_, &op_, kOneShotPoolBytes, /*deep_entries=*/true);
    pool = &*local;
  }
  // Admission: a cached stream materializes every iterate densely, which
  // only pays off when the stream is read more than once. Create one for
  // a node that recurs in this batch or is a pinned landmark; a
  // batch-singleton endpoint reads a stream another batch left resident
  // (Lookup) but iterates privately in place otherwise — both paths run
  // the identical ApplyAuto sequence, so the answer never moves.
  std::unordered_map<NodeId, std::uint32_t> uses;
  for (const QueryPair& q : queries) {
    if (q.s == q.t) continue;
    ++uses[q.s];
    ++uses[q.t];
  }
  const auto stream_for = [&](NodeId node) -> SmmSourceCacheT<WP>* {
    if (IsLandmark(node) || uses[node] > 1) {
      return pool->CacheFor(node, IsLandmark(node));
    }
    return pool->Lookup(node);
  };
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (context.Cancelled()) return i;
    const QueryPair& q = queries[i];
    GEER_CHECK(q.s < graph_->NumNodes());
    GEER_CHECK(q.t < graph_->NumNodes());
    if (q.s == q.t) {
      stats[i] = QueryStats{};
      context.ReportAnswered();
      continue;
    }
    const NodeId u = std::min(q.s, q.t);
    const NodeId v = std::max(q.s, q.t);
    SmmSourceCacheT<WP>* u_cache = stream_for(u);
    SmmSourceCacheT<WP>* v_cache = stream_for(v);
    stats[i] = EstimateWithCache(u, v, u_cache, v_cache);
    pool->Sweep({u, v});
    context.ReportAnswered();
  }
  return queries.size();
}

template <WeightPolicy WP>
std::size_t SmmEstimatorT<WP>::WarmLandmarks(
    std::span<const NodeId> landmarks) {
  if (session_ == nullptr) EnableSessionCache();
  is_landmark_.assign(graph_->NumNodes(), 0);
  for (const NodeId lm : landmarks) {
    GEER_CHECK(lm < graph_->NumNodes());
    is_landmark_[lm] = 1;
  }
  // Warm to the depth a PengEll-budgeted query would iterate (the
  // pair-independent bound; refined per-pair ℓ never exceeds it),
  // clamped by the per-entry cap — deeper demands spill as usual.
  std::uint32_t depth = options_.smm_iterations > 0
                            ? options_.smm_iterations
                            : PengEll(options_.epsilon, lambda_,
                                      options_.max_ell);
  depth = std::min(depth, session_->per_source_iterate_cap());
  for (const NodeId lm : landmarks) {
    SmmSourceCacheT<WP>* cache = session_->CacheFor(lm, /*pin=*/true);
    std::uint64_t fresh = 0;
    cache->EnsureIterations(depth, &fresh);
    session_->Sweep({lm});
  }
  return landmarks.size();
}

template class SmmSourceCacheT<UnitWeight>;
template class SmmSourceCacheT<EdgeWeight>;
template class SmmSessionCacheT<UnitWeight>;
template class SmmSessionCacheT<EdgeWeight>;
template class SmmIteratorT<UnitWeight>;
template class SmmIteratorT<EdgeWeight>;
template class SmmEstimatorT<UnitWeight>;
template class SmmEstimatorT<EdgeWeight>;

}  // namespace geer
