// The public query interface every ER algorithm implements, plus the
// per-query instrumentation the benchmark harness and the paper's
// cost-model analysis rely on, and the batch-query surface the engine in
// core/batch_engine.h drives.

#ifndef GEER_CORE_ESTIMATOR_H_
#define GEER_CORE_ESTIMATOR_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.h"
#include "util/lru_byte_cache.h"

namespace geer {

class Deadline;
class WeightedGraph;
template <typename T>
class EpochShared;
struct EpochSpectral;

/// Describes one published epoch of a dynamic graph (src/dyn/) for
/// ErEstimator::RebindGraph. `touched` must cover every vertex whose CSR
/// row differs from the graph the estimator is currently bound to —
/// callers that skip epochs pass the union of the skipped commits'
/// touched sets. Epoch numbers must be monotone per logical graph: the
/// shared-preprocessing estimators (EXACT/CG/RP) key their rebuilt state
/// on it so clones sharing a holder rebuild once per epoch, not once per
/// worker.
struct GraphEpoch {
  std::uint64_t epoch = 0;
  /// Sorted vertices whose rows changed (endpoints of changed edges).
  std::span<const NodeId> touched;
  /// True when the node count changed — dense per-node caches must then
  /// flush wholesale regardless of `touched`.
  bool resized = false;
  /// Precomputed λ = max(|λ₂|, |λ_n|) for the NEW graph. When absent,
  /// estimators that read λ re-run the Lanczos preprocessing themselves
  /// (deterministic, so every worker converges to the same value — just
  /// slower than computing it once per epoch).
  std::optional<double> lambda;
  /// Opt-in incremental maintenance: estimators may derive the new
  /// epoch's numerical state from the previous epoch's instead of
  /// rebuilding cold — warm-started Lanczos for λ, rank-k-updated
  /// Cholesky factors for EXACT. Answers may then drift from a freshly
  /// constructed estimator within the documented tolerances (README
  /// "Incremental epochs"); leave false for the strict bit-identity
  /// contract. Structurally exact incremental paths (CG's touched-row
  /// Jacobi refresh, TP/TPC visit-set retention) are always on — they
  /// are bit-identical by construction. Lifetime: the first rebinder of
  /// an incremental epoch diffs the PREVIOUS graph's CSR rows against
  /// the new ones, so the caller must keep the outgoing graph alive
  /// until RebindGraph returns (the serving tier does this by retaining
  /// the old snapshot until the swap completes).
  bool incremental = false;
  /// Optional caller-owned per-epoch spectral holder, shared across all
  /// clones rebound with this epoch (and across epochs by the caller —
  /// it carries the warm state). Estimators that read λ and find
  /// `lambda` absent compute it through this holder once per epoch:
  /// warm-started when `incremental`, cold (bit-identical to a fresh
  /// construction) otherwise. Null ⇒ each estimator re-runs Lanczos
  /// privately, as before.
  std::shared_ptr<EpochShared<EpochSpectral>> spectral;
};

/// A single PER query (s, t).
struct QueryPair {
  NodeId s = 0;
  NodeId t = 0;
};

/// Result and cost instrumentation for a single ε-approximate PER query.
struct QueryStats {
  double value = 0.0;            ///< the estimate r'(s, t)
  std::uint64_t walks = 0;       ///< random walks simulated
  std::uint64_t walk_steps = 0;  ///< total walk steps taken
  std::uint64_t spmv_ops = 0;    ///< arc traversals in SpMV iterations
  std::uint32_t ell = 0;         ///< maximum walk length in effect
  std::uint32_t ell_b = 0;       ///< SMM iterations performed (SMM/GEER)
  std::uint64_t eta_star = 0;    ///< Hoeffding cap η* (AMC/GEER)
  int batches = 0;               ///< adaptive batches executed (AMC/GEER)
  bool early_stop = false;       ///< Bernstein rule fired before η* (AMC)
  bool truncated = false;        ///< hit a safety cap; estimate best-effort
};

/// Cooperative-cancellation state shared by every worker of one batch
/// run. Estimators poll Cancelled() between queries and report progress
/// so the deadline rule ("answer at least one query, then stop as soon
/// as the budget is spent") holds across threads. The default-constructed
/// context never cancels.
class BatchContext {
 public:
  BatchContext() = default;
  BatchContext(std::atomic<bool>* cancel, const Deadline* deadline,
               std::atomic<std::uint64_t>* answered,
               const std::atomic<bool>* external_cancel = nullptr)
      : cancel_(cancel),
        external_cancel_(external_cancel),
        deadline_(deadline),
        answered_(answered) {}

  /// True once the batch should stop issuing new queries: a caller
  /// cancelled (the run's own flag or an external token — the serving
  /// layer's shutdown / expired-deadline signal), or the deadline
  /// expired after at least one query completed batch-wide.
  bool Cancelled() const;

  /// Records `n` completed queries (drives the ≥ 1-query deadline rule).
  void ReportAnswered(std::uint64_t n = 1) const {
    if (answered_ != nullptr) {
      answered_->fetch_add(n, std::memory_order_relaxed);
    }
  }

 private:
  std::atomic<bool>* cancel_ = nullptr;
  const std::atomic<bool>* external_cancel_ = nullptr;
  const Deadline* deadline_ = nullptr;
  std::atomic<std::uint64_t>* answered_ = nullptr;
};

/// A query-execution plan: a permutation of the batch's query indices
/// partitioned into groups of queries that share precomputation. Groups
/// are the engine's scheduling unit — all queries of a group run on the
/// same worker, in order, so the estimator's shared state (per-source
/// walk populations, SpMV iterates, …) is actually reused.
struct BatchPlan {
  /// Permutation of [0, n): execution order of the batch.
  std::vector<std::uint32_t> order;
  /// Group g covers order[group_offsets[g] .. group_offsets[g+1]).
  /// Size is #groups + 1; group_offsets.front() == 0,
  /// group_offsets.back() == n.
  std::vector<std::uint32_t> group_offsets;

  std::size_t NumGroups() const {
    return group_offsets.empty() ? 0 : group_offsets.size() - 1;
  }

  /// The no-sharing plan: identity order, one group per query.
  static BatchPlan Trivial(std::size_t num_queries);

  /// Groups queries by their source node s, keeping the original order
  /// within a group and ordering groups by first appearance — the plan
  /// for estimators whose source-side work is reusable across a group.
  static BatchPlan GroupBySource(std::span<const QueryPair> queries);

  /// Groups queries by EITHER endpoint: two queries land in the same
  /// group iff they are connected through shared endpoints (connected
  /// components of the query-endpoint graph). Strictly coarser than
  /// GroupBySource — a shareable pair (any common endpoint) is never
  /// split across groups — so node-keyed caches (walk populations,
  /// iterate streams) are reused for s- AND t-sides. Original order is
  /// kept within a group; groups are ordered by first appearance.
  static BatchPlan GroupByEndpoint(std::span<const QueryPair> queries);
};

/// Splits `queries` into maximal runs of consecutive same-source queries
/// and feeds each run to `run_fn(source, run_queries, run_stats)`, which
/// answers a prefix of its run and returns that prefix's length (the
/// EstimateBatch contract, per run). Stops between runs once
/// `context.Cancelled()`, or as soon as a run stops short; returns the
/// total prefix answered. The same-source-sharing estimators implement
/// EstimateBatch as this plus their per-run executor.
std::size_t EstimateBySourceRuns(
    std::span<const QueryPair> queries, std::span<QueryStats> stats,
    const BatchContext& context,
    const std::function<std::size_t(NodeId, std::span<const QueryPair>,
                                    std::span<QueryStats>)>& run_fn);

/// Like EstimateBySourceRuns, but a run extends while all its queries
/// still share at least one COMMON endpoint (s or t): the run's common
/// set starts as {s_0, t_0} and is intersected with each next query's
/// endpoint pair until empty. The run key passed to `run_fn` is the
/// smallest node id in the final common set — deterministic regardless
/// of which endpoint position the key occupied. Lockstep group
/// executors (TP/TPC) use this to share the key side across a run that
/// mixes "key as source" and "key as target" queries.
std::size_t EstimateByEndpointRuns(
    std::span<const QueryPair> queries, std::span<QueryStats> stats,
    const BatchContext& context,
    const std::function<std::size_t(NodeId, std::span<const QueryPair>,
                                    std::span<QueryStats>)>& run_fn);

/// Interface for ε-approximate pairwise effective resistance estimators.
///
/// Estimators are constructed per graph (amortizing preprocessing such as
/// the λ spectral bound) and answer repeated queries. Estimate() calls are
/// deterministic given the seed in the options: each query derives its
/// stream from (seed, s, t), so shuffling query order does not change
/// individual answers — and EstimateBatch() returns values bit-identical
/// to serial Estimate() at any thread count (the batch-determinism suite
/// enforces this for every registered algorithm).
class ErEstimator {
 public:
  virtual ~ErEstimator() = default;

  /// Short algorithm name as used in the paper ("GEER", "AMC", "TP", …).
  virtual std::string Name() const = 0;

  /// Answers the ε-approximate PER query for pair (s, t) with
  /// instrumentation. Requires SupportsQuery(s, t).
  virtual QueryStats EstimateWithStats(NodeId s, NodeId t) = 0;

  /// Convenience: just the estimate.
  double Estimate(NodeId s, NodeId t) { return EstimateWithStats(s, t).value; }

  /// True iff the algorithm can answer this pair. Edge-only baselines
  /// (MC2, HAY) require (s, t) ∈ E; everything else accepts any pair.
  virtual bool SupportsQuery(NodeId s, NodeId t) const {
    (void)s;
    (void)t;
    return true;
  }

  /// Answers a prefix of `queries` in order, writing stats[i] for query
  /// i, and returns the prefix length. Stops early (between queries)
  /// once `context.Cancelled()`; unsupported queries inside the prefix
  /// get zeroed stats. The default loops EstimateWithStats; overrides
  /// share precomputation across queries (same-source walk populations,
  /// SpMV push vectors, …) while returning per-query values
  /// bit-identical to the serial loop. `stats.size() >= queries.size()`.
  virtual std::size_t EstimateBatch(std::span<const QueryPair> queries,
                                    std::span<QueryStats> stats,
                                    const BatchContext& context = {});

  /// Groups `queries` by shared structure for the batch engine. The
  /// default plan shares nothing (one group per query); estimators with
  /// an EstimateBatch override return the grouping their sharing needs
  /// (typically BatchPlan::GroupBySource).
  virtual BatchPlan PlanBatch(std::span<const QueryPair> queries) const {
    return BatchPlan::Trivial(queries.size());
  }

  /// True iff EstimateBatch amortizes work across the queries of a plan
  /// group (capability reporting for the harness; the registry mirrors
  /// it as EstimatorSharesBatchWork).
  virtual bool SharesBatchWork() const { return false; }

  /// An independent estimator answering queries with identical values,
  /// for one worker thread of a parallel batch: clones share immutable
  /// preprocessing (the graph, λ, EXACT's factorization, CG's solver,
  /// RP's sketch) but no mutable scratch. Returns nullptr if the
  /// estimator cannot be cloned — the engine then runs single-threaded.
  virtual std::unique_ptr<ErEstimator> CloneForBatch() const {
    return nullptr;
  }

  /// Retains EstimateBatch's shared per-source precomputation (SMM/GEER
  /// iterate caches) inside this instance so later batches on recurring
  /// sources reuse it instead of rebuilding per call — the serving
  /// layer's session state. Off by default so one-shot batch runs keep
  /// their O(n) memory profile. `budget_bytes` bounds the retained
  /// memory (0 = the implementation default); retained state never
  /// changes answer VALUES, only the cost charged for them. A no-op for
  /// estimators with nothing to retain (construction-time state —
  /// EXACT's factorization, CG's solver, RP's sketch — already persists
  /// for the instance's lifetime).
  virtual void EnableSessionCache(std::size_t budget_bytes = 0) {
    (void)budget_bytes;
  }

  /// Drops any state retained by EnableSessionCache (the cache stays
  /// enabled; subsequent batches repopulate it).
  virtual void ClearSessionCache() {}

  /// True iff this instance currently retains cross-batch session state.
  virtual bool SessionCacheEnabled() const { return false; }

  /// Aggregated hit/miss/byte counters over this instance's session and
  /// landmark caches (zeroes when it has none). hits/misses/evictions
  /// are monotone for the instance's lifetime; bytes/entries/pinned are
  /// current gauges. The serving layer snapshots these per worker into
  /// ServeMetrics.
  virtual CacheStats SessionCacheStats() const { return {}; }

  /// Precomputes and PINS per-landmark state in the session cache so
  /// high-centrality hubs (src/centrality/landmarks.h) are answered from
  /// warm state: solver columns for EXACT/CG (queries combine the two
  /// endpoint columns, so a landmark endpoint never re-solves), walk
  /// populations for TP/TPC and iterate streams for SMM/GEER (the
  /// node-keyed side of a query hits the warm entry). Pinned entries are
  /// exempt from LRU eviction but epoch RebindGraph still invalidates a
  /// landmark whose dependency set intersects epoch.touched — it is then
  /// re-warmed lazily (and re-pinned) on next use. Warming never changes
  /// answer VALUES, only who pays for them. Enables the session cache if
  /// it is off. Returns the number of landmarks warmed (0 for estimators
  /// without warmable state).
  virtual std::size_t WarmLandmarks(std::span<const NodeId> landmarks) {
    (void)landmarks;
    return 0;
  }

  /// Rebinds this estimator to a new epoch of the (logically same) graph
  /// it was constructed on — the dynamic-graph hook (src/dyn/). On
  /// success the estimator answers every subsequent query bit-identically
  /// to a freshly constructed estimator on `graph` with the construction
  /// options (λ is re-derived for the new graph: from epoch.lambda when
  /// provided, else by re-running Lanczos). Construction-time
  /// preprocessing is rebuilt as needed — EXACT/CG/RP rebuild their
  /// factorization/solver/sketch once per epoch across every clone
  /// sharing it — while session caches are invalidated selectively:
  /// SMM/GEER evict only per-source entries whose dependency set
  /// intersects epoch.touched, and TP/TPC evict only walk populations
  /// whose recorded visit set intersects it (their walk streams are
  /// content-addressed by (seed, node), so a population no changed row
  /// ever influenced replays bit-identically). Resized graphs flush
  /// wholesale. Precondition mirrors construction: `graph` must satisfy
  /// the estimator's feasibility checks.
  ///
  /// The weight mode must match the construction graph; the non-matching
  /// overload returns false (as does the default for estimators without
  /// dynamic support). `graph` must outlive the estimator, exactly like
  /// the construction graph.
  virtual bool RebindGraph(const Graph& graph, const GraphEpoch& epoch) {
    (void)graph;
    (void)epoch;
    return false;
  }
  virtual bool RebindGraph(const WeightedGraph& graph,
                           const GraphEpoch& epoch) {
    (void)graph;
    (void)epoch;
    return false;
  }

  /// Number of RebindGraph calls on this instance that reused previous-
  /// epoch state instead of rebuilding it cold: a warm-started λ, an
  /// incrementally updated factor/solver, or selective (visit-set)
  /// session retention. Monotone; the serving layer sums it per worker
  /// into ServeMetrics.incremental_rebinds so tests can assert the
  /// incremental path is actually exercised.
  virtual std::uint64_t IncrementalRebinds() const { return 0; }
};

}  // namespace geer

#endif  // GEER_CORE_ESTIMATOR_H_
