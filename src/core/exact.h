// EXACT baseline: effective resistance from a dense factorization of
// M = L_w + (1/n)𝟙𝟙ᵀ, which is SPD for connected graphs and agrees with
// L_w† on 𝟙^⊥ (L_w = D_w − A_w; unit weights give the paper's unweighted
// Laplacian). O(n³) setup, O(n²) memory — only viable for small graphs,
// reproducing the paper's OOM behaviour on everything but Facebook-scale.

#ifndef GEER_CORE_EXACT_H_
#define GEER_CORE_EXACT_H_

#include <memory>
#include <string>
#include <vector>

#include "core/epoch_shared.h"
#include "core/estimator.h"
#include "core/options.h"
#include "graph/weight_policy.h"
#include "linalg/cholesky.h"
#include "util/lru_byte_cache.h"

namespace geer {

template <WeightPolicy WP>
class ExactEstimatorT : public ErEstimator {
 public:
  using GraphT = typename WP::GraphT;

  /// Factorizes the augmented Laplacian. Aborts if the graph exceeds
  /// `max_nodes` (the library's stand-in for running out of memory) or if
  /// the graph is disconnected (M then not PD).
  explicit ExactEstimatorT(const GraphT& graph, ErOptions options = {},
                           NodeId max_nodes = 8192);
  // Stores a pointer to `graph`; a temporary would dangle.
  explicit ExactEstimatorT(GraphT&&, ErOptions = {}, NodeId = 8192) = delete;

  std::string Name() const override {
    return std::string(WP::kNamePrefix) + "EXACT";
  }

  /// r(s, t) = (y_u[u] − y_u[v]) − (y_v[u] − y_v[v]) from the two solver
  /// COLUMNS y_x = M⁻¹ e_x with (u, v) = (min, max): exact by linearity
  /// (M⁻¹𝟙 = 𝟙, so the rank-one parts cancel in the difference), bitwise
  /// symmetric in (s, t), and — because a column is a pure function of
  /// its node — identical whether the columns come from the session
  /// cache, a pinned landmark, or a direct solve.
  QueryStats EstimateWithStats(NodeId s, NodeId t) override;

  /// Batch workers share the O(n²) factorization — the only per-graph
  /// state — instead of redoing the O(n³) setup per thread. The clone's
  /// column cache starts cold (per-worker, no sharing races).
  std::unique_ptr<ErEstimator> CloneForBatch() const override {
    return std::unique_ptr<ErEstimator>(new ExactEstimatorT<WP>(*this));
  }

  /// Retains solver columns M⁻¹ e_v per node across queries. Values are
  /// unchanged: the direct path combines the same two columns.
  void EnableSessionCache(std::size_t budget_bytes = 0) override {
    session_ = std::make_unique<LruByteCache<NodeId, Vector>>(
        budget_bytes == 0 ? 64ull << 20 : budget_bytes);
  }
  void ClearSessionCache() override {
    if (session_ != nullptr) session_->Clear();
  }
  bool SessionCacheEnabled() const override { return session_ != nullptr; }
  CacheStats SessionCacheStats() const override {
    return session_ != nullptr ? session_->stats() : CacheStats{};
  }

  /// Solves and pins the landmarks' columns in the session cache
  /// (enabling it if off). Any (s, t) query combining a landmark column
  /// is exact — not an approximation — by the linearity argument above.
  std::size_t WarmLandmarks(std::span<const NodeId> landmarks) override;

  /// Dynamic-graph hook: the factorization depends on the WHOLE graph,
  /// so any epoch change invalidates it — but it is rebuilt exactly once
  /// per epoch across every clone sharing it (core/epoch_shared.h), not
  /// once per worker. With epoch.incremental and a small touched set
  /// (≤ n/4 changed edges — the rank-1 pass costs ~n²/2 vs n³/6 for a
  /// refactorization), the new factor is derived from the previous one
  /// by rank-1 edge updates/downdates instead of BuildFactor; values may
  /// then drift from a fresh factorization within ~1e-9 relative (README
  /// "Incremental epochs"). Falls back to the full rebuild whenever the
  /// heuristic, a resize, or a downdate losing positive-definiteness
  /// says so. Aborts like construction if the new snapshot exceeds the
  /// max_nodes cap — pre-check with Feasible().
  using ErEstimator::RebindGraph;
  bool RebindGraph(const GraphT& graph, const GraphEpoch& epoch) override;

  std::uint64_t IncrementalRebinds() const override {
    return incremental_rebinds_.load(std::memory_order_relaxed);
  }

  /// True iff the dense factorization would fit under `max_nodes`.
  static bool Feasible(const GraphT& graph, NodeId max_nodes = 8192) {
    return graph.NumNodes() <= max_nodes;
  }

 private:
  // Clone constructor: adopts the shared factorization and its
  // epoch-keyed holder; the column cache and landmark set start empty
  // (per-worker state).
  ExactEstimatorT(const ExactEstimatorT& other)
      : graph_(other.graph_),
        max_nodes_(other.max_nodes_),
        factor_(other.factor_),
        shared_factor_(other.shared_factor_) {}

  // One epoch's shared factor plus its provenance (full rebuild vs
  // rank-k update) — adopters read the flag into their rebind counters.
  struct FactorEntry {
    std::shared_ptr<const CholeskyFactor> factor;
    bool incremental = false;
  };

  static std::shared_ptr<const CholeskyFactor> BuildFactor(
      const GraphT& graph, NodeId max_nodes);

  /// The previous factor updated to `after` by rank-1 edge passes, or
  /// null when the crossover heuristic (or a failed downdate) demands
  /// the full rebuild. `before` is the graph the factor was built for.
  static std::shared_ptr<const CholeskyFactor> TryIncrementalFactor(
      const CholeskyFactor& prev, const GraphT& before, const GraphT& after,
      std::span<const NodeId> touched);

  /// M⁻¹ e_node — from the session cache when enabled (inserting, and
  /// pinning landmarks, on miss), else into `scratch`. The returned
  /// pointer stays valid across one more ColumnFor call (list-backed).
  const Vector* ColumnFor(NodeId node, Vector* scratch);
  Vector SolveColumn(NodeId node) const;
  bool IsLandmark(NodeId v) const {
    return v < is_landmark_.size() && is_landmark_[v] != 0;
  }

  const GraphT* graph_;
  NodeId max_nodes_ = 8192;
  std::shared_ptr<const CholeskyFactor> factor_;
  std::shared_ptr<EpochShared<FactorEntry>> shared_factor_;
  std::unique_ptr<LruByteCache<NodeId, Vector>> session_;
  std::vector<char> is_landmark_;
  std::atomic<std::uint64_t> incremental_rebinds_{0};
};

/// The two stacks, by their historical names.
using ExactEstimator = ExactEstimatorT<UnitWeight>;
using WeightedExactEstimator = ExactEstimatorT<EdgeWeight>;

extern template class ExactEstimatorT<UnitWeight>;
extern template class ExactEstimatorT<EdgeWeight>;

}  // namespace geer

#endif  // GEER_CORE_EXACT_H_
