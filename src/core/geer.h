// GEER (Alg. 3): Greedy Estimation of Effective Resistance — the paper's
// main contribution, weight-generic. Splits r_ℓ(s,t) at a switch point
// ℓ_b:
//
//   r*_b = Σ_{i=0}^{ℓb} (…)   computed deterministically by SMM,
//   r*_f = Σ_{i=ℓb+1}^{ℓ} (…) estimated by AMC seeded with the SMM
//          iterates s*, t* (walk lengths shrink to ℓ−ℓb, and ψ and the
//          empirical variance collapse because the iterates are flat),
//
// choosing ℓ_b greedily: keep iterating SMM while one more SpMV costs
// less than the remaining AMC sampling budget (Eq. 17):
//   Σ_{v∈supp(s*)} d(v) + Σ_{v∈supp(t*)} d(v)  >  h(ℓ − ℓb)
// where h(ℓf) = (2^τ − 1)⌈η*(ℓf)/2^{τ−1}⌉ is AMC's worst-case sample
// count for the remaining tail. On weighted graphs every 1/d(·) becomes
// 1/w(·) and walks step through the alias sampler; the control flow is
// byte-for-byte the same template.

#ifndef GEER_CORE_GEER_H_
#define GEER_CORE_GEER_H_

#include <string>

#include "core/estimator.h"
#include "core/options.h"
#include "core/smm.h"
#include "graph/weight_policy.h"
#include "linalg/transition.h"
#include "rw/walker_policy.h"

namespace geer {

/// AMC's worst-case remaining sample count h(ℓf) for the given range
/// bound ψ — the RHS of the greedy rule (Eq. 17). Exposed for tests and
/// the cost-model ablation bench.
std::uint64_t GeerRemainingSampleBudget(double epsilon, double delta,
                                        int tau, double psi);

template <WeightPolicy WP>
class GeerEstimatorT : public ErEstimator {
 public:
  using GraphT = typename WP::GraphT;

  explicit GeerEstimatorT(const GraphT& graph, ErOptions options = {});
  // Stores a pointer to `graph`; a temporary would dangle.
  explicit GeerEstimatorT(GraphT&&, ErOptions = {}) = delete;

  std::string Name() const override {
    return std::string(WP::kNamePrefix) + "GEER";
  }
  QueryStats EstimateWithStats(NodeId s, NodeId t) override;

  /// Shares node-keyed SMM iterate sequences for BOTH query sides via an
  /// SmmSessionCacheT pool (the session when enabled, a batch-local pool
  /// otherwise); the AMC tail still runs per query on its canonical
  /// (seed, min, max) stream, so batched values are bit-identical to
  /// serial ones.
  std::size_t EstimateBatch(std::span<const QueryPair> queries,
                            std::span<QueryStats> stats,
                            const BatchContext& context = {}) override;
  BatchPlan PlanBatch(std::span<const QueryPair> queries) const override {
    return BatchPlan::GroupByEndpoint(queries);
  }
  bool SharesBatchWork() const override { return true; }
  std::unique_ptr<ErEstimator> CloneForBatch() const override {
    ErOptions opt = options_;
    opt.lambda = lambda_;  // clones never re-run Lanczos
    return std::make_unique<GeerEstimatorT<WP>>(*graph_, opt);
  }

  /// Retains source iterate caches across EstimateBatch calls in an
  /// SmmSessionCacheT (the serving layer's session state). The AMC tail
  /// still runs per query on its (seed, s, t) stream, so retained state
  /// never changes answer values.
  void EnableSessionCache(std::size_t budget_bytes = 0) override {
    session_ = std::make_unique<SmmSessionCacheT<WP>>(*graph_, &op_,
                                                      budget_bytes);
  }
  void ClearSessionCache() override {
    if (session_ != nullptr) session_->Clear();
  }
  bool SessionCacheEnabled() const override { return session_ != nullptr; }
  CacheStats SessionCacheStats() const override {
    return session_ != nullptr ? session_->stats() : CacheStats{};
  }

  /// Pins prebuilt SMM iterate streams for the landmarks in the session
  /// cache (enabling it if off); the AMC tail is per query either way.
  std::size_t WarmLandmarks(std::span<const NodeId> landmarks) override;

  /// Dynamic-graph hook: repoints at the new snapshot, rebuilds the
  /// transition operator and walk sampler, re-derives λ, and invalidates
  /// the SMM session selectively (only entries whose iterate supports
  /// were touched; the AMC tail carries no cross-query state).
  using ErEstimator::RebindGraph;
  bool RebindGraph(const GraphT& graph, const GraphEpoch& epoch) override;

  std::uint64_t IncrementalRebinds() const override {
    return incremental_rebinds_.load(std::memory_order_relaxed);
  }

  double lambda() const { return lambda_; }

  /// Compat spelling of GeerRemainingSampleBudget.
  static std::uint64_t RemainingSampleBudget(double epsilon, double delta,
                                             int tau, double psi) {
    return GeerRemainingSampleBudget(epsilon, delta, tau, psi);
  }

 private:
  QueryStats EstimateWithCache(NodeId s, NodeId t,
                               SmmSourceCacheT<WP>* s_cache,
                               SmmSourceCacheT<WP>* t_cache);
  bool IsLandmark(NodeId v) const {
    return v < is_landmark_.size() && is_landmark_[v] != 0;
  }

  const GraphT* graph_;
  ErOptions options_;
  double lambda_;
  TransitionOperatorT<WP> op_;
  WalkerFor<WP> walker_;
  std::unique_ptr<SmmSessionCacheT<WP>> session_;
  std::vector<char> is_landmark_;
  std::atomic<std::uint64_t> incremental_rebinds_{0};
};

/// The two stacks, by their historical names.
using GeerEstimator = GeerEstimatorT<UnitWeight>;
using WeightedGeerEstimator = GeerEstimatorT<EdgeWeight>;

extern template class GeerEstimatorT<UnitWeight>;
extern template class GeerEstimatorT<EdgeWeight>;

}  // namespace geer

#endif  // GEER_CORE_GEER_H_
