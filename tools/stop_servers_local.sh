#!/usr/bin/env bash
# Tears down a deployment started by start_servers_local.sh. Prefers the
# protocol-level teardown — one kShutdown to the router, which
# propagates to every shard and lets each drain its in-flight queries —
# and falls back to signals for anything still alive (TERM, then KILL
# after a grace period). Removes the run dir afterwards.
#
#   tools/stop_servers_local.sh [--run-dir=/tmp/geer_net] [--build-dir=build]

set -euo pipefail

BUILD_DIR="build"
RUN_DIR="/tmp/geer_net"
for arg in "$@"; do
  case "$arg" in
    --build-dir=*) BUILD_DIR="${arg#*=}" ;;
    --run-dir=*)   RUN_DIR="${arg#*=}" ;;
    *) echo "unknown flag: $arg" >&2; exit 2 ;;
  esac
done

[[ -d "$RUN_DIR" ]] || { echo "no run dir $RUN_DIR — nothing to stop"; exit 0; }

CLI_BIN="$BUILD_DIR/geer_cli"
if [[ -x "$CLI_BIN" && -s "$RUN_DIR/router.addr" ]]; then
  # Graceful path: 0 queries, just the propagated shutdown.
  "$CLI_BIN" net client --connect="$(cat "$RUN_DIR/router.addr")" \
      --queries=0 --shutdown > /dev/null 2>&1 || true
fi

pids=()
for pidfile in "$RUN_DIR"/*.pid; do
  [[ -e "$pidfile" ]] || continue
  pids+=("$(cat "$pidfile")")
done

# Grace period for the protocol-level drain, then escalate.
deadline=$((SECONDS + 10))
for pid in "${pids[@]:-}"; do
  while kill -0 "$pid" 2>/dev/null && (( SECONDS < deadline )); do
    sleep 0.1
  done
  if kill -0 "$pid" 2>/dev/null; then
    echo "pid $pid ignored shutdown; sending TERM"
    kill "$pid" 2>/dev/null || true
    sleep 1
    kill -9 "$pid" 2>/dev/null || true
  fi
done

rm -rf "$RUN_DIR"
echo "deployment stopped"
