#include "sparsify/spectral_sparsifier.h"

#include <algorithm>
#include <cmath>
#include <vector>

#include "linalg/dense.h"
#include "linalg/laplacian_solver.h"
#include "rw/rng.h"
#include "util/check.h"

namespace geer {
namespace {

struct WeightedEdgeRef {
  NodeId u;
  NodeId v;
  double weight;
};

WeightedGraph SampleSparsifier(NodeId num_nodes,
                               const std::vector<WeightedEdgeRef>& edges,
                               std::span<const double> edge_er,
                               const SparsifierOptions& options) {
  GEER_CHECK_EQ(edges.size(), edge_er.size())
      << "one ER value per edge required";
  GEER_CHECK(options.epsilon > 0.0);

  // Leverage-score sampling distribution p_e ∝ w_e·r(e). Negative or NaN
  // ER estimates (possible from randomized estimators at loose ε) are
  // floored: every edge keeps a tiny escape probability so connectivity
  // is never structurally impossible.
  std::vector<double> cumulative(edges.size(), 0.0);
  double total = 0.0;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    const double r = edge_er[e];
    const double score =
        std::isfinite(r) ? std::max(r, 1e-12) * edges[e].weight : 1e-12;
    total += score;
    cumulative[e] = total;
  }
  GEER_CHECK_GT(total, 0.0);

  const std::uint64_t q = options.samples > 0
                              ? options.samples
                              : SparsifierSampleCount(num_nodes, options);
  Rng rng(options.seed ^ 0x5a4c1f1e2d3b4a59ULL);
  WeightedGraphBuilder builder(num_nodes);
  const double inv_q = 1.0 / static_cast<double>(q);
  for (std::uint64_t i = 0; i < q; ++i) {
    const double u = rng.NextDouble() * total;
    const std::size_t e = static_cast<std::size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    const std::size_t idx = std::min(e, edges.size() - 1);
    const double p = (cumulative[idx] - (idx == 0 ? 0.0 : cumulative[idx - 1])) /
                     total;
    builder.AddEdge(edges[idx].u, edges[idx].v,
                    edges[idx].weight * inv_q / p);
  }
  return builder.Build();
}

}  // namespace

std::uint64_t SparsifierSampleCount(NodeId num_nodes,
                                    const SparsifierOptions& options) {
  const double n = std::max<double>(num_nodes, 2.0);
  const double q = options.oversample * 9.0 * n * std::log(n) /
                   (options.epsilon * options.epsilon);
  return static_cast<std::uint64_t>(std::ceil(std::max(q, 1.0)));
}

WeightedGraph SparsifyByEffectiveResistance(const Graph& graph,
                                            std::span<const double> edge_er,
                                            const SparsifierOptions& options) {
  std::vector<WeightedEdgeRef> edges;
  edges.reserve(graph.NumEdges());
  for (const auto& [u, v] : graph.Edges()) edges.push_back({u, v, 1.0});
  return SampleSparsifier(graph.NumNodes(), edges, edge_er, options);
}

WeightedGraph SparsifyByEffectiveResistance(const WeightedGraph& graph,
                                            std::span<const double> edge_er,
                                            const SparsifierOptions& options) {
  std::vector<WeightedEdgeRef> edges;
  edges.reserve(graph.NumEdges());
  for (const auto& e : graph.Edges()) edges.push_back({e.u, e.v, e.weight});
  return SampleSparsifier(graph.NumNodes(), edges, edge_er, options);
}

namespace {

template <typename ApplyOriginal>
SparsifierQuality Evaluate(NodeId num_nodes, std::uint64_t original_edges,
                           const ApplyOriginal& apply_original,
                           const WeightedGraph& sparsifier, int probes,
                           std::uint64_t seed) {
  GEER_CHECK_EQ(sparsifier.NumNodes(), num_nodes);
  GEER_CHECK_GT(probes, 0);
  Rng rng(seed ^ 0x7e57a11ce5b0a7d1ULL);
  SparsifierQuality quality;
  quality.kept_edges = sparsifier.NumEdges();
  quality.kept_fraction =
      original_edges == 0
          ? 0.0
          : static_cast<double>(sparsifier.NumEdges()) /
                static_cast<double>(original_edges);

  // xᵀL_H x computed edge-wise (works even if H has isolated nodes).
  const auto edges = sparsifier.Edges();
  double ratio_sum = 0.0;
  for (int p = 0; p < probes; ++p) {
    Vector x(num_nodes);
    for (auto& v : x) v = rng.NextGaussian();
    RemoveMean(&x);
    const double original = apply_original(x);
    double sparse = 0.0;
    for (const auto& e : edges) {
      const double diff = x[e.u] - x[e.v];
      sparse += e.weight * diff * diff;
    }
    const double ratio = sparse / original;
    ratio_sum += ratio;
    quality.worst_ratio =
        std::max(quality.worst_ratio, std::max(ratio, 1.0 / ratio));
  }
  quality.mean_ratio = ratio_sum / probes;
  return quality;
}

}  // namespace

SparsifierQuality EvaluateSparsifier(const Graph& original,
                                     const WeightedGraph& sparsifier,
                                     int probes, std::uint64_t seed) {
  LaplacianSolver solver(original);
  auto apply = [&solver](const Vector& x) {
    Vector lx;
    solver.ApplyLaplacian(x, &lx);
    return Dot(x, lx);
  };
  return Evaluate(original.NumNodes(), original.NumEdges(), apply,
                  sparsifier, probes, seed);
}

SparsifierQuality EvaluateSparsifier(const WeightedGraph& original,
                                     const WeightedGraph& sparsifier,
                                     int probes, std::uint64_t seed) {
  WeightedLaplacianSolver solver(original);
  auto apply = [&solver](const Vector& x) {
    Vector lx;
    solver.ApplyLaplacian(x, &lx);
    return Dot(x, lx);
  };
  return Evaluate(original.NumNodes(), original.NumEdges(), apply,
                  sparsifier, probes, seed);
}

}  // namespace geer
