// Fig. 11: SMM driven by our refined ℓ (Eq. 6) vs Peng et al.'s generic
// ℓ (Eq. 5), at ε = 0.5 and ε = 0.05, on Facebook-, DBLP-, YouTube-,
// Orkut- and LiveJournal-like datasets. Expected shape: the refined ℓ
// wins everywhere, most on high-average-degree graphs.

#include <cstdio>

#include "bench/bench_common.h"
#include "eval/queries.h"
#include "eval/table.h"
#include "util/format.h"

namespace geer {
namespace {

void Run(const bench::BenchArgs& args) {
  for (double eps : args.epsilons) {
    std::printf("-- epsilon = %.3g\n", eps);
    TextTable table({"dataset", "our-ell(ms)", "peng-ell(ms)", "speedup",
                     "our-ell", "peng-ell"});
    for (const Dataset& ds : args.LoadDatasets()) {
      auto queries = RandomPairs(ds.graph, args.num_queries, args.seed);
      ErOptions opt = args.BaseOptions(eps);
      RunConfig config;
      config.deadline_seconds = args.deadline_seconds;
      config.collect_errors = false;
      MethodResult ours = RunMethod(ds, "SMM", opt, queries, {}, config);
      MethodResult peng =
          RunMethod(ds, "SMM-PengEll", opt, queries, {}, config);
      const double speedup = ours.avg_millis > 0
                                 ? peng.avg_millis / ours.avg_millis
                                 : 0.0;
      table.AddRow({ds.name, bench::Cell(ours), bench::Cell(peng),
                    FormatSig(speedup, 3) + "x",
                    FormatSig(ours.avg_ell, 3),
                    FormatSig(peng.avg_ell, 3)});
    }
    std::fputs(args.csv ? table.RenderCsv().c_str()
                        : table.Render().c_str(),
               stdout);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace geer

int main(int argc, char** argv) {
  auto args = geer::bench::BenchArgs::Parse(argc, argv);
  if (args.graph_path.empty() && args.datasets == geer::DatasetNames()) {
    args.datasets = {"facebook", "dblp", "youtube", "orkut", "livejournal"};
  }
  if (args.epsilons.size() > 2) args.epsilons = {0.5, 0.05};
  std::printf("Fig. 11 reproduction: SMM with our refined ell (Eq. 6) vs "
              "Peng et al.'s ell (Eq. 5)\n\n");
  geer::Run(args);
  return 0;
}
