#include "net/router.h"

#include <mutex>
#include <thread>
#include <utility>

namespace geer::net {

Router::Router(std::vector<ShardAddress> shards, const RouterOptions& options)
    : shards_(std::move(shards)), options_(options) {}

bool Router::Start(std::string* error) {
  if (shards_.empty()) {
    if (error != nullptr) *error = "router needs at least one shard";
    return false;
  }
  pools_.clear();
  pools_.reserve(shards_.size());
  for (std::size_t i = 0; i < shards_.size(); ++i) {
    pools_.push_back(std::make_unique<ClientPool>(
        shards_[i].host, shards_[i].port, options_.connections_per_shard));
    ClientPool::Lease lease = pools_[i]->Acquire();
    if (!lease) {
      if (error != nullptr) {
        *error = "shard " + std::to_string(i) + " (" + shards_[i].host + ":" +
                 std::to_string(shards_[i].port) +
                 ") unreachable: " + pools_[i]->last_error();
      }
      return false;
    }
    const HelloAckMsg& info = lease->info();
    if (i == 0) {
      cluster_ = info;
    } else if (info.num_nodes != cluster_.num_nodes ||
               info.num_edges != cluster_.num_edges ||
               info.epoch != cluster_.epoch) {
      // Shards are full replicas: disagreement means a mis-deployed
      // cluster, and routing over it would return inconsistent answers.
      if (error != nullptr) {
        *error = "shard " + std::to_string(i) +
                 " replica mismatch (n/m/epoch differ from shard 0)";
      }
      return false;
    }
  }
  cluster_.num_shards = static_cast<std::uint32_t>(shards_.size());
  epoch_ = cluster_.epoch;
  // The partition map is FIXED at deployment time: node growth in later
  // epochs routes through ShardOf's clamp (range) or the hash — the map
  // never rebuilds, so a node's home shard is stable for the cluster's
  // lifetime.
  partition_ = std::make_unique<PartitionMap>(
      cluster_.num_nodes, static_cast<int>(shards_.size()),
      options_.strategy);
  return server_.Start(options_.host, options_.port,
                       [this](const Frame& frame) { return Handle(frame); },
                       error);
}

HandlerReply Router::Error(std::uint16_t code, std::string message) {
  HandlerReply reply;
  reply.type = FrameType::kError;
  reply.payload = EncodeError({code, std::move(message)});
  return reply;
}

HandlerReply Router::Handle(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kHello: {
      std::shared_lock<std::shared_mutex> lock(swap_mu_);
      return {FrameType::kHelloAck, EncodeHelloAck(cluster_), false};
    }
    case FrameType::kQuery:
      return HandleQuery(frame);
    case FrameType::kFlush: {
      std::shared_lock<std::shared_mutex> lock(swap_mu_);
      std::vector<std::string> errors(pools_.size());
      // Not vector<bool>: the per-shard threads write concurrently, and
      // packed bits of one word are not distinct memory locations.
      std::vector<unsigned char> oks(pools_.size(), 0);
      std::vector<std::thread> threads;
      threads.reserve(pools_.size());
      for (std::size_t i = 0; i < pools_.size(); ++i) {
        threads.emplace_back([this, i, &errors, &oks] {
          ClientPool::Lease lease = pools_[i]->Acquire();
          oks[i] = (lease && lease->Flush(&errors[i])) ? 1 : 0;
        });
      }
      for (std::thread& t : threads) t.join();
      for (std::size_t i = 0; i < oks.size(); ++i) {
        if (!oks[i]) {
          return Error(ErrorMsg::kUpstream,
                       "flush failed on shard " + std::to_string(i) + ": " +
                           errors[i]);
        }
      }
      return {FrameType::kFlushAck, {}, false};
    }
    case FrameType::kApplyUpdates:
      return HandleApplyUpdates(frame);
    case FrameType::kStats: {
      StatsRequestMsg request;
      if (!DecodeStatsRequest(frame.payload, &request)) {
        return Error(ErrorMsg::kBadRequest, "undecodable stats payload");
      }
      std::shared_lock<std::shared_mutex> lock(swap_mu_);
      std::vector<obs::StatsSnapshot> snapshots(pools_.size());
      std::vector<std::string> errors(pools_.size());
      std::vector<unsigned char> oks(pools_.size(), 0);
      std::vector<std::thread> threads;
      threads.reserve(pools_.size());
      for (std::size_t i = 0; i < pools_.size(); ++i) {
        threads.emplace_back([this, i, &request, &snapshots, &errors, &oks] {
          ClientPool::Lease lease = pools_[i]->Acquire();
          if (!lease) {
            errors[i] = pools_[i]->last_error();
            return;
          }
          StatsReplyMsg shard_reply;
          if (lease->Stats(request, &shard_reply, &errors[i])) {
            snapshots[i] = std::move(shard_reply.snapshot);
            oks[i] = 1;
          }
        });
      }
      for (std::thread& t : threads) t.join();
      for (std::size_t i = 0; i < oks.size(); ++i) {
        if (!oks[i]) {
          return Error(ErrorMsg::kUpstream,
                       "stats failed on shard " + std::to_string(i) + ": " +
                           errors[i]);
        }
      }
      StatsReplyMsg reply;
      reply.snapshot = obs::MergeSnapshots(snapshots);
      reply.num_shards = static_cast<std::uint32_t>(pools_.size());
      return {FrameType::kStatsReply, EncodeStatsReply(reply), false};
    }
    case FrameType::kShutdown: {
      if (options_.propagate_shutdown) {
        std::unique_lock<std::shared_mutex> lock(swap_mu_);
        for (std::size_t i = 0; i < pools_.size(); ++i) {
          ClientPool::Lease lease = pools_[i]->Acquire();
          std::string err;
          if (lease) (void)lease->Shutdown(&err);
        }
      }
      return {FrameType::kShutdownAck, {}, true};
    }
    default:
      return Error(ErrorMsg::kUnknownType,
                   "unhandled frame type " +
                       std::to_string(static_cast<unsigned>(frame.type)));
  }
}

HandlerReply Router::HandleQuery(const Frame& frame) {
  ServiceRequest request;
  if (!DecodeServiceRequest(frame.payload, &request)) {
    return Error(ErrorMsg::kBadRequest, "undecodable query payload");
  }
  // Shared side of the swap barrier: a forward in flight here blocks any
  // epoch swap, and a swap in progress blocks this forward — so every
  // query observes a fully swapped (or fully unswapped) cluster.
  std::shared_lock<std::shared_mutex> lock(swap_mu_);
  if (request.s >= cluster_.num_nodes || request.t >= cluster_.num_nodes) {
    return Error(ErrorMsg::kOutOfRange,
                 "query endpoint out of range (n=" +
                     std::to_string(cluster_.num_nodes) + ")");
  }
  const int shard = partition_->HomeShard(request.pair());
  ClientPool::Lease lease = pools_[static_cast<std::size_t>(shard)]->Acquire();
  if (!lease) {
    return Error(ErrorMsg::kUpstream,
                 "shard " + std::to_string(shard) +
                     " unreachable: " + pools_[shard]->last_error());
  }
  ServiceResponse response;
  std::string err;
  if (!lease->Query(request, &response, &err)) {
    return Error(ErrorMsg::kUpstream,
                 "shard " + std::to_string(shard) + ": " + err);
  }
  return {FrameType::kQueryReply, EncodeServiceResponse(response), false};
}

HandlerReply Router::HandleApplyUpdates(const Frame& frame) {
  ApplyUpdatesMsg msg;
  if (!DecodeApplyUpdates(frame.payload, &msg)) {
    return Error(ErrorMsg::kBadRequest, "undecodable apply-updates payload");
  }
  // Exclusive side of the barrier: waits out every in-flight forward,
  // then holds new queries back until EVERY shard acked its swap — the
  // cross-shard extension of QueryService's submission barrier.
  std::unique_lock<std::shared_mutex> lock(swap_mu_);
  std::vector<ApplyUpdatesAckMsg> acks(pools_.size());
  std::vector<std::string> errors(pools_.size());
  std::vector<int> status(pools_.size(), 0);  // 0 fail, 1 ok
  std::vector<std::thread> threads;
  threads.reserve(pools_.size());
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    threads.emplace_back([this, i, &msg, &acks, &errors, &status] {
      ClientPool::Lease lease = pools_[i]->Acquire();
      if (!lease) {
        errors[i] = pools_[i]->last_error();
        return;
      }
      if (lease->ApplyUpdates(msg, &acks[i], &errors[i])) status[i] = 1;
    });
  }
  for (std::thread& t : threads) t.join();
  for (std::size_t i = 0; i < pools_.size(); ++i) {
    if (status[i] == 0) {
      return Error(ErrorMsg::kUpstream,
                   "apply-updates transport failure on shard " +
                       std::to_string(i) + ": " + errors[i]);
    }
  }
  bool all_ok = true;
  for (const ApplyUpdatesAckMsg& ack : acks) all_ok = all_ok && ack.ok;
  if (!all_ok) {
    // A shard rejected the batch (validation failure). Shards that DID
    // swap and shards that did not now disagree — surface ok=false with
    // the pre-swap epoch; a deployment hitting this has fed an invalid
    // stream and must be rebuilt (documented in README).
    return {FrameType::kApplyUpdatesAck,
            EncodeApplyUpdatesAck({false, epoch_}), false};
  }
  epoch_ = acks[0].epoch;
  // Refresh the aggregate view (node inserts may have grown n): one
  // fresh Hello against shard 0, still under the exclusive lock.
  Client probe;
  std::string err;
  if (probe.Connect(shards_[0].host, shards_[0].port, &err)) {
    cluster_.num_nodes = probe.info().num_nodes;
    cluster_.num_edges = probe.info().num_edges;
  }
  cluster_.epoch = epoch_;
  return {FrameType::kApplyUpdatesAck, EncodeApplyUpdatesAck({true, epoch_}),
          false};
}

}  // namespace geer::net
