#include "util/thread_pool.h"

#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.h"

namespace geer {
namespace {

// Mutex-guarded deque: contention is per-task-pop, and tasks in this
// library (query groups) are orders of magnitude heavier than a lock, so
// the simple TSan-friendly implementation wins over a lock-free one.
struct TaskDeque {
  std::mutex mu;
  std::deque<std::size_t> tasks;

  bool PopFront(std::size_t* out) {
    std::lock_guard<std::mutex> lock(mu);
    if (tasks.empty()) return false;
    *out = tasks.front();
    tasks.pop_front();
    return true;
  }

  bool StealBack(std::size_t* out) {
    std::lock_guard<std::mutex> lock(mu);
    if (tasks.empty()) return false;
    *out = tasks.back();
    tasks.pop_back();
    return true;
  }
};

}  // namespace

int ResolveWorkerCount(int requested, std::size_t num_tasks) {
  int workers = requested > 0
                    ? requested
                    : static_cast<int>(std::thread::hardware_concurrency());
  if (workers <= 0) workers = 1;
  if (static_cast<std::size_t>(workers) > num_tasks) {
    workers = static_cast<int>(num_tasks);
  }
  return workers < 1 ? 1 : workers;
}

void WorkStealingPool::Run(
    int workers, std::size_t num_tasks,
    const std::function<void(int, std::size_t)>& fn) {
  if (num_tasks == 0) return;
  workers = ResolveWorkerCount(workers, num_tasks);
  if (workers == 1) {
    for (std::size_t i = 0; i < num_tasks; ++i) fn(0, i);
    return;
  }

  std::vector<TaskDeque> deques(static_cast<std::size_t>(workers));
  // Round-robin deal preserves rough order within each worker while
  // spreading adjacent (often similarly sized) tasks across workers.
  for (std::size_t i = 0; i < num_tasks; ++i) {
    deques[i % workers].tasks.push_back(i);
  }

  auto worker_loop = [&deques, &fn, workers](int id) {
    std::size_t task = 0;
    for (;;) {
      if (deques[id].PopFront(&task)) {
        fn(id, task);
        continue;
      }
      bool stole = false;
      for (int off = 1; off < workers; ++off) {
        const int victim = (id + off) % workers;
        if (deques[victim].StealBack(&task)) {
          stole = true;
          break;
        }
      }
      if (!stole) return;  // all deques empty: done (no task re-entry)
      fn(id, task);
    }
  };

  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(workers) - 1);
  for (int id = 1; id < workers; ++id) {
    threads.emplace_back(worker_loop, id);
  }
  worker_loop(0);  // the caller is worker 0
  for (auto& th : threads) th.join();
}

}  // namespace geer
