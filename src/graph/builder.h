// GraphBuilder normalizes raw undirected edge lists into CSR Graphs:
// deduplicates parallel edges, drops self-loops, sorts adjacency lists.

#ifndef GEER_GRAPH_BUILDER_H_
#define GEER_GRAPH_BUILDER_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace geer {

/// Incrementally collects undirected edges and materializes a Graph.
///
/// Usage:
///   GraphBuilder b(5);
///   b.AddEdge(0, 1);
///   b.AddEdge(1, 0);     // duplicate: kept once
///   b.AddEdge(2, 2);     // self-loop: dropped
///   Graph g = b.Build();
class GraphBuilder {
 public:
  /// Creates a builder for a graph with at least `num_nodes` nodes. The
  /// node count grows automatically if AddEdge sees a larger endpoint.
  explicit GraphBuilder(NodeId num_nodes = 0) : num_nodes_(num_nodes) {}

  /// Records the undirected edge {u, v}. Self-loops are silently dropped;
  /// duplicates collapse at Build() time.
  void AddEdge(NodeId u, NodeId v);

  /// Records every edge in `edges`.
  void AddEdges(const std::vector<Edge>& edges);

  /// Current node count (max endpoint seen + 1, or the constructor hint).
  NodeId NumNodes() const { return num_nodes_; }

  /// Number of (possibly duplicated) edges recorded so far.
  std::size_t NumRecordedEdges() const { return edges_.size(); }

  /// Materializes the CSR graph. The builder may be reused afterwards;
  /// recorded edges are retained.
  Graph Build() const;

 private:
  NodeId num_nodes_ = 0;
  std::vector<Edge> edges_;
};

/// Convenience: builds a graph from an edge list with `num_nodes` nodes.
Graph BuildGraph(NodeId num_nodes, const std::vector<Edge>& edges);

}  // namespace geer

#endif  // GEER_GRAPH_BUILDER_H_
