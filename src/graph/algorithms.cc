#include "graph/algorithms.h"

#include <algorithm>
#include <limits>
#include <queue>

#include "graph/builder.h"
#include "util/check.h"

namespace geer {

namespace {
constexpr std::uint32_t kUnvisited = std::numeric_limits<std::uint32_t>::max();
}  // namespace

bool IsConnected(const Graph& graph) {
  const NodeId n = graph.NumNodes();
  if (n <= 1) return true;
  std::vector<std::uint32_t> dist = BfsDistances(graph, 0);
  return std::none_of(dist.begin(), dist.end(),
                      [](std::uint32_t d) { return d == kUnvisited; });
}

bool IsBipartite(const Graph& graph) {
  const NodeId n = graph.NumNodes();
  std::vector<std::int8_t> color(n, -1);
  std::queue<NodeId> queue;
  for (NodeId start = 0; start < n; ++start) {
    if (color[start] != -1) continue;
    color[start] = 0;
    queue.push(start);
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop();
      for (NodeId v : graph.Neighbors(u)) {
        if (color[v] == -1) {
          color[v] = static_cast<std::int8_t>(1 - color[u]);
          queue.push(v);
        } else if (color[v] == color[u]) {
          return false;
        }
      }
    }
  }
  return true;
}

std::vector<std::uint32_t> ConnectedComponents(const Graph& graph) {
  const NodeId n = graph.NumNodes();
  std::vector<std::uint32_t> label(n, kUnvisited);
  std::uint32_t next_label = 0;
  std::vector<NodeId> stack;
  for (NodeId start = 0; start < n; ++start) {
    if (label[start] != kUnvisited) continue;
    label[start] = next_label;
    stack.push_back(start);
    while (!stack.empty()) {
      NodeId u = stack.back();
      stack.pop_back();
      for (NodeId v : graph.Neighbors(u)) {
        if (label[v] == kUnvisited) {
          label[v] = next_label;
          stack.push_back(v);
        }
      }
    }
    ++next_label;
  }
  return label;
}

Graph LargestConnectedComponent(const Graph& graph) {
  const NodeId n = graph.NumNodes();
  if (n == 0) return graph;
  std::vector<std::uint32_t> label = ConnectedComponents(graph);
  std::uint32_t num_components =
      *std::max_element(label.begin(), label.end()) + 1;
  std::vector<std::uint64_t> size(num_components, 0);
  for (std::uint32_t c : label) ++size[c];
  std::uint32_t best = static_cast<std::uint32_t>(
      std::max_element(size.begin(), size.end()) - size.begin());

  std::vector<NodeId> remap(n, 0);
  NodeId next_id = 0;
  for (NodeId v = 0; v < n; ++v) {
    if (label[v] == best) remap[v] = next_id++;
  }
  GraphBuilder builder(next_id);
  for (NodeId u = 0; u < n; ++u) {
    if (label[u] != best) continue;
    for (NodeId v : graph.Neighbors(u)) {
      if (u < v) builder.AddEdge(remap[u], remap[v]);
    }
  }
  return builder.Build();
}

Graph EnsureNonBipartite(const Graph& graph) {
  if (!IsBipartite(graph)) return graph;
  const NodeId n = graph.NumNodes();
  GEER_CHECK_GE(n, 3u) << "cannot break bipartiteness with fewer than 3 nodes";
  // 2-color, then connect the two smallest same-color non-adjacent nodes
  // that share a component with an edge, closing an odd cycle.
  std::vector<std::int8_t> color(n, -1);
  std::vector<std::uint32_t> comp = ConnectedComponents(graph);
  std::queue<NodeId> queue;
  for (NodeId start = 0; start < n; ++start) {
    if (color[start] != -1) continue;
    color[start] = 0;
    queue.push(start);
    while (!queue.empty()) {
      NodeId u = queue.front();
      queue.pop();
      for (NodeId v : graph.Neighbors(u)) {
        if (color[v] == -1) {
          color[v] = static_cast<std::int8_t>(1 - color[u]);
          queue.push(v);
        }
      }
    }
  }
  for (NodeId u = 0; u < n; ++u) {
    for (NodeId w = u + 1; w < n; ++w) {
      if (comp[u] == comp[w] && color[u] == color[w] && !graph.HasEdge(u, w)) {
        GraphBuilder builder(n);
        builder.AddEdges(graph.Edges());
        builder.AddEdge(u, w);
        return builder.Build();
      }
    }
  }
  GEER_CHECK(false) << "no odd-cycle-closing edge exists (graph too small)";
  return graph;  // Unreachable.
}

std::vector<std::uint32_t> BfsDistances(const Graph& graph, NodeId source) {
  const NodeId n = graph.NumNodes();
  GEER_CHECK(source < n);
  std::vector<std::uint32_t> dist(n, kUnvisited);
  std::queue<NodeId> queue;
  dist[source] = 0;
  queue.push(source);
  while (!queue.empty()) {
    NodeId u = queue.front();
    queue.pop();
    for (NodeId v : graph.Neighbors(u)) {
      if (dist[v] == kUnvisited) {
        dist[v] = dist[u] + 1;
        queue.push(v);
      }
    }
  }
  return dist;
}

std::uint32_t ApproxDiameter(const Graph& graph) {
  GEER_CHECK_GT(graph.NumNodes(), 0u);
  GEER_CHECK(IsConnected(graph)) << "diameter of a disconnected graph";
  auto farthest = [&graph](NodeId from) {
    std::vector<std::uint32_t> dist = BfsDistances(graph, from);
    auto it = std::max_element(dist.begin(), dist.end());
    return std::make_pair(static_cast<NodeId>(it - dist.begin()), *it);
  };
  auto [far_node, d1] = farthest(0);
  auto [ignored, d2] = farthest(far_node);
  (void)ignored;
  (void)d1;
  return d2;
}

}  // namespace geer
