// Synthetic graph generators.
//
// These serve two roles: (1) deterministic families with closed-form
// effective resistances (path, cycle, complete, grid, …) used as oracles
// in tests; (2) random families (Barabási–Albert, R-MAT, Watts–Strogatz,
// Erdős–Rényi, SBM) that act as scaled stand-ins for the SNAP datasets the
// paper evaluates on (see DESIGN.md §5 for the substitution rationale).
//
// All random generators take an explicit seed and are deterministic.

#ifndef GEER_GRAPH_GENERATORS_H_
#define GEER_GRAPH_GENERATORS_H_

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace geer {
namespace gen {

// ---------------------------------------------------------------------------
// Deterministic families (closed-form ER oracles; several are bipartite —
// wrap with EnsureNonBipartite before running walk-based estimators).
// ---------------------------------------------------------------------------

/// Path P_n: 0–1–…–(n−1). Bipartite. r(i,j) = |i−j|.
Graph Path(NodeId n);

/// Cycle C_n. Bipartite iff n even. r(i,j) = k(n−k)/n with k = hop distance.
Graph Cycle(NodeId n);

/// Complete graph K_n. r(u,v) = 2/n for all u ≠ v.
Graph Complete(NodeId n);

/// Star S_n: node 0 is the hub. Bipartite. r(0,leaf) = 1, r(leaf,leaf) = 2.
Graph Star(NodeId n);

/// rows×cols 4-neighbor grid. Bipartite.
Graph Grid(NodeId rows, NodeId cols);

/// Two K_k cliques joined by a length-`bridge` path (bridge ≥ 1).
/// The classic slow-mixing family; stresses the ℓ bound.
Graph Barbell(NodeId k, NodeId bridge);

/// Lollipop: a K_k clique with a length-`tail` path attached.
Graph Lollipop(NodeId k, NodeId tail);

/// Complete binary tree with `levels` levels (2^levels − 1 nodes).
/// Bipartite; tree ⇒ r(u,v) = hop distance.
Graph BalancedBinaryTree(std::uint32_t levels);

/// Complete bipartite graph K_{a,b} (nodes 0..a−1 vs a..a+b−1).
/// r(u,v) has closed forms used in tests.
Graph CompleteBipartite(NodeId a, NodeId b);

/// Connected caveman: `cliques` cliques of size `size` in a ring, adjacent
/// cliques joined by one edge.
Graph Caveman(NodeId cliques, NodeId size);

// ---------------------------------------------------------------------------
// Random families (SNAP-dataset substitutes).
// ---------------------------------------------------------------------------

/// Erdős–Rényi G(n, m): m distinct uniform edges (plus a Hamiltonian-cycle
/// backbone if `connect` to guarantee connectivity).
Graph ErdosRenyi(NodeId n, std::uint64_t m, std::uint64_t seed,
                 bool connect = true);

/// Barabási–Albert preferential attachment: each new node attaches
/// `edges_per_node` edges to existing nodes ∝ degree. Connected,
/// heavy-tailed, high clustering — the Facebook-like stand-in.
Graph BarabasiAlbert(NodeId n, NodeId edges_per_node, std::uint64_t seed);

/// Watts–Strogatz small world: ring lattice with `k` nearest neighbors a
/// side rewired with probability `beta`. Low-degree small-world — the
/// DBLP-like stand-in.
Graph WattsStrogatz(NodeId n, NodeId k, double beta, std::uint64_t seed);

/// R-MAT power-law generator (Chakrabarti et al.) over 2^scale nodes with
/// `edge_factor`·2^scale edges and quadrant probabilities (a,b,c).
/// The standard SNAP-scale social-graph substitute.
Graph RMat(std::uint32_t scale, std::uint64_t edge_factor, std::uint64_t seed,
           double a = 0.57, double b = 0.19, double c = 0.19);

/// Stochastic block model: `blocks` blocks of `block_size` nodes, intra- /
/// inter-block edge probabilities p_in / p_out.
Graph StochasticBlockModel(NodeId blocks, NodeId block_size, double p_in,
                           double p_out, std::uint64_t seed);

/// The 11-node running-example graph of the paper's Fig. 2: query pair
/// (s,t) with d(s)=2, d(t)=7 and nodes v1..v9. Returns the graph and the
/// ids of s and t. (The exact toy topology is not fully specified in the
/// paper; this reconstruction matches the stated degrees and the path
/// growth pattern: s has 2 neighbors, t has 7.)
struct RunningExample {
  Graph graph;
  NodeId s = 0;
  NodeId t = 0;
};
RunningExample Fig2RunningExample();

}  // namespace gen
}  // namespace geer

#endif  // GEER_GRAPH_GENERATORS_H_
