// The batch-determinism contract, enforced for every registered
// algorithm in both weight modes: EstimateBatch through the engine
// returns per-query values BIT-IDENTICAL to the serial Estimate loop —
// at 1, 2 and 8 worker threads, under a shuffled query order, and after
// interleaving batch and serial calls on the same instance. The
// shared-precomputation overrides (TP/TPC walk populations, SMM/GEER
// push vectors) must additionally do strictly less work on a
// grouped-by-source set than the serial loop.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "core/batch_engine.h"
#include "core/registry.h"
#include "core/smm.h"
#include "graph/generators.h"
#include "graph/weighted_generators.h"
#include "linalg/spectral.h"
#include "test_util.h"

namespace geer {
namespace {

ErOptions TestOptions() {
  ErOptions opt;
  opt.epsilon = 0.5;
  opt.delta = 0.1;
  opt.seed = 20260801;
  opt.tp_scale = 0.01;   // scaled constants keep the suite fast; this
  opt.tpc_scale = 0.01;  // suite checks determinism, not accuracy
  opt.mc_gamma_upper = 8.0;
  return opt;
}

// Same-source block (with a duplicate), scattered pairs, an s == t
// query, two genuine edges (so the edge-only baselines answer
// something), and a non-consecutive return to the shared source.
std::vector<QueryPair> TestQueries(const Graph& skeleton) {
  std::vector<QueryPair> queries = {{3, 1},  {3, 5},  {3, 9}, {3, 13},
                                    {3, 17}, {3, 5},  {7, 2}, {11, 4},
                                    {0, 19}, {6, 6},  {3, 2}};
  queries.push_back({0, skeleton.NeighborAt(0, 0)});
  queries.push_back({4, skeleton.NeighborAt(4, 0)});
  return queries;
}

// Answers the queries one at a time — the ground truth every batch mode
// must reproduce exactly. Unsupported queries keep NaN.
std::vector<double> SerialValues(ErEstimator* estimator,
                                 const std::vector<QueryPair>& queries) {
  std::vector<double> values(queries.size(),
                             std::numeric_limits<double>::quiet_NaN());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (!estimator->SupportsQuery(queries[i].s, queries[i].t)) continue;
    values[i] = estimator->Estimate(queries[i].s, queries[i].t);
  }
  return values;
}

template <typename Factory>
void CheckBitIdentical(const Graph& skeleton, const std::string& name,
                       const Factory& make) {
  const std::vector<QueryPair> queries = TestQueries(skeleton);
  auto serial_estimator = make();
  ASSERT_NE(serial_estimator, nullptr) << name;
  const std::vector<double> expected =
      SerialValues(serial_estimator.get(), queries);

  for (const int threads : {1, 2, 8}) {
    auto estimator = make();
    std::vector<QueryStats> stats(queries.size());
    BatchOptions options;
    options.threads = threads;
    const BatchReport report =
        RunQueryBatch(*estimator, queries, stats, options);
    EXPECT_TRUE(report.completed) << name << " threads=" << threads;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (std::isnan(expected[i])) continue;  // unsupported
      EXPECT_EQ(stats[i].value, expected[i])
          << name << " threads=" << threads << " query #" << i << " ("
          << queries[i].s << "," << queries[i].t << ")";
    }
    // The batch must not perturb subsequent serial queries on the same
    // instance (no state leakage from the shared caches).
    EXPECT_EQ(estimator->Estimate(queries[0].s, queries[0].t), expected[0])
        << name << " serial-after-batch, threads=" << threads;
  }

  // Shuffled order: per-query answers must not move.
  std::vector<std::size_t> perm(queries.size());
  for (std::size_t i = 0; i < perm.size(); ++i) perm[i] = i;
  std::reverse(perm.begin(), perm.end());
  std::swap(perm[0], perm[perm.size() / 2]);
  std::vector<QueryPair> shuffled(queries.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    shuffled[i] = queries[perm[i]];
  }
  auto estimator = make();
  std::vector<QueryStats> stats(shuffled.size());
  BatchOptions options;
  options.threads = 2;
  RunQueryBatch(*estimator, shuffled, stats, options);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (std::isnan(expected[perm[i]])) continue;
    EXPECT_EQ(stats[i].value, expected[perm[i]])
        << name << " shuffled query #" << i;
  }
}

// The fixture is a fast-mixing dense ER graph: determinism (not
// accuracy) is under test, and a moderate λ keeps Peng's generic ℓ —
// which TP/TPC take as walk budget — small but NON-zero, so the walk
// machinery is actually exercised (ℓ explodes on slow-mixing fixtures;
// that is the paper's complaint about those baselines, not a batching
// property).
TEST(BatchDeterminismTest, UnweightedBitIdenticalAtAnyThreadCount) {
  const Graph graph = gen::ErdosRenyi(40, 400, 9);
  ErOptions opt = TestOptions();
  opt.lambda = ComputeSpectralBounds(graph).lambda;
  for (const std::string& name : EstimatorNames()) {
    CheckBitIdentical(graph, name, [&]() {
      return CreateEstimator(name, graph, opt);
    });
  }
}

TEST(BatchDeterminismTest, WeightedBitIdenticalAtAnyThreadCount) {
  const Graph skeleton = gen::ErdosRenyi(40, 400, 9);
  const WeightedGraph graph =
      gen::WithUniformWeights(skeleton, 0.5, 2.0, 99);
  ErOptions opt = TestOptions();
  opt.lambda = ComputeWeightedSpectralBounds(graph).lambda;
  for (const std::string& name : WeightedEstimatorNames()) {
    CheckBitIdentical(skeleton, "W-" + name, [&]() {
      return CreateWeightedEstimator(name, graph, opt);
    });
  }
}

TEST(BatchDeterminismTest, RegistryCapabilityMatchesInstances) {
  const Graph graph = testing::DenseTestGraph(16);
  const WeightedGraph wgraph =
      gen::WithUniformWeights(graph, 0.5, 2.0, 7);
  ErOptions opt = TestOptions();
  opt.lambda = ComputeSpectralBounds(graph).lambda;
  for (const std::string& name : EstimatorNames()) {
    auto est = CreateEstimator(name, graph, opt);
    ASSERT_NE(est, nullptr) << name;
    EXPECT_EQ(est->SharesBatchWork(), EstimatorSharesBatchWork(name))
        << name;
    EXPECT_EQ(est->SharesBatchWork(),
              EstimatorSharesBatchWork("W-" + name))
        << name;
    auto west = CreateWeightedEstimator(name, wgraph, opt);
    ASSERT_NE(west, nullptr) << name;
    EXPECT_EQ(west->SharesBatchWork(), EstimatorSharesBatchWork(name))
        << name;
  }
}

// On a grouped-by-source set, the sharing overrides must do strictly
// less total walk/SpMV work than the serial loop while returning the
// same values (the savings the EXPERIMENTS.md micro bench quantifies).
// SMM/GEER get the slow-mixing dense fixture (deep SpMV iterate
// sequences to share); TP/TPC get the dense ER fixture for the ℓ reason
// above (their per-length walk populations shared either way).
TEST(BatchDeterminismTest, SharedPrecomputationDoesStrictlyLessWork) {
  const Graph dense = testing::DenseTestGraph(20);
  const Graph er = gen::ErdosRenyi(40, 400, 9);
  ErOptions dense_opt = TestOptions();
  dense_opt.lambda = ComputeSpectralBounds(dense).lambda;
  ErOptions er_opt = TestOptions();
  er_opt.lambda = ComputeSpectralBounds(er).lambda;
  std::vector<QueryPair> queries;
  for (NodeId t = 0; t < 12; ++t) {
    if (t != 3) queries.push_back({3, t});  // one source, many targets
  }
  for (const std::string& name : EstimatorNames()) {
    if (!EstimatorSharesBatchWork(name)) continue;
    const bool walk_based = name == "TP" || name == "TPC";
    const Graph& graph = walk_based ? er : dense;
    const ErOptions& opt = walk_based ? er_opt : dense_opt;
    auto serial = CreateEstimator(name, graph, opt);
    std::uint64_t serial_work = 0;
    for (const QueryPair& q : queries) {
      const QueryStats st = serial->EstimateWithStats(q.s, q.t);
      serial_work += st.walk_steps + st.spmv_ops;
    }
    auto batched = CreateEstimator(name, graph, opt);
    std::vector<QueryStats> stats(queries.size());
    RunQueryBatch(*batched, queries, stats);
    std::uint64_t batch_work = 0;
    for (const QueryStats& st : stats) {
      batch_work += st.walk_steps + st.spmv_ops;
    }
    EXPECT_LT(batch_work, serial_work) << name;
    EXPECT_GT(batch_work, 0u) << name;
  }
}

// The iterate cache is memory-bounded; iterating past its cap hands the
// query a private copy of the boundary state. The spilled tail must stay
// bit-identical to the uncached iterator at every depth (the default cap
// never triggers on test-sized graphs, so pin a tiny one here).
TEST(BatchDeterminismTest, SmmSourceCacheSpillsBitIdentically) {
  const Graph graph = testing::DenseTestGraph(20);
  TransitionOperator op_cached(graph);
  TransitionOperator op_plain(graph);
  SmmSourceCache cache(graph, &op_cached, /*source=*/3, /*max_cached=*/2);
  EXPECT_EQ(cache.max_cached_iterations(), 2u);
  SmmIterator cached(graph, &op_cached, 3, 7, &cache);
  SmmIterator plain(graph, &op_plain, 3, 7);
  for (std::uint32_t j = 0; j < 8; ++j) {  // well past the cap of 2
    EXPECT_EQ(cached.rb(), plain.rb()) << "depth " << j;
    EXPECT_EQ(cached.NextIterationCost(), plain.NextIterationCost())
        << "depth " << j;
    cached.Advance();
    plain.Advance();
  }
  EXPECT_EQ(cached.rb(), plain.rb());
  // A second query on the same cache re-reads the cached prefix and
  // spills again, still bit-identically.
  SmmIterator cached2(graph, &op_cached, 3, 11, &cache);
  SmmIterator plain2(graph, &op_plain, 3, 11);
  for (std::uint32_t j = 0; j < 6; ++j) {
    cached2.Advance();
    plain2.Advance();
  }
  EXPECT_EQ(cached2.rb(), plain2.rb());
}

}  // namespace
}  // namespace geer
