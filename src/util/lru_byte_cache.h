// Shared byte-budgeted LRU admission layer for the session/landmark
// caches (SMM iterate streams, TP/TPC walk populations, EXACT/CG solver
// columns). One template replaces the three hand-rolled per-estimator
// LRU lists so eviction policy, byte accounting and hit/miss counters
// behave identically everywhere.
//
// Semantics the estimators rely on:
//   * Entries live in a std::list, so Value pointers stay stable across
//     Find/GetOrCreate/Insert/SetBytes — a caller may hold two entries
//     (both endpoints of a query) at once.
//   * Nothing evicts implicitly. GetOrCreate/Insert only add or replace;
//     the caller invokes EvictOverBudget() at a point where it holds no
//     entry pointers (between queries / after a group finishes).
//   * Pinned entries (landmarks) are exempt from the byte budget and from
//     EvictOverBudget, but NOT from EvictIf/Clear — epoch invalidation
//     must be able to drop a stale landmark.
//   * Clear()/eviction reset the resident gauges (bytes/entries) but the
//     hit/miss/eviction counters are monotone for the lifetime of the
//     cache, so ServeMetrics snapshots never move backwards across a
//     RebindGraph.

#ifndef GEER_UTIL_LRU_BYTE_CACHE_H_
#define GEER_UTIL_LRU_BYTE_CACHE_H_

#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <unordered_map>
#include <utility>

namespace geer {

// Counters exposed by every cache; aggregated across serve workers into
// ServeMetrics. hits/misses/evictions are monotone; bytes/entries/pinned
// are current-resident gauges.
struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t bytes = 0;
  std::uint64_t entries = 0;
  std::uint64_t pinned = 0;

  CacheStats& operator+=(const CacheStats& other) {
    hits += other.hits;
    misses += other.misses;
    evictions += other.evictions;
    bytes += other.bytes;
    entries += other.entries;
    pinned += other.pinned;
    return *this;
  }
};

template <typename Key, typename Value, typename Hash = std::hash<Key>>
class LruByteCache {
 public:
  explicit LruByteCache(std::size_t budget_bytes)
      : budget_bytes_(budget_bytes) {}

  // Looks `key` up, bumping it to most-recently-used and counting a hit;
  // counts a miss and returns nullptr when absent.
  Value* Find(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) {
      ++misses_;
      return nullptr;
    }
    ++hits_;
    entries_.splice(entries_.begin(), entries_, it->second);
    return &it->second->value;
  }

  // Find() that neither counts nor reorders — for introspection/tests.
  const Value* Peek(const Key& key) const {
    auto it = index_.find(key);
    return it == index_.end() ? nullptr : &it->second->value;
  }

  // Returns the resident entry (hit) or move-inserts `make()` at zero
  // recorded bytes (miss; call SetBytes once the payload is sized).
  // Never evicts: the caller may already hold another entry's pointer.
  template <typename Make>
  Value* GetOrCreate(const Key& key, Make&& make) {
    if (Value* hit = Find(key)) return hit;
    entries_.emplace_front(Entry{key, make(), /*bytes=*/0,
                                 /*pinned=*/false});
    index_.emplace(key, entries_.begin());
    return &entries_.front().value;
  }

  // Replace-or-insert with explicit byte accounting. Keeps the entry's
  // pin state on replace unless `pinned` asks for more. Does not evict.
  Value* Insert(const Key& key, Value value, std::size_t bytes,
                bool pinned = false) {
    auto it = index_.find(key);
    if (it != index_.end()) {
      Entry& entry = *it->second;
      AccountBytes(entry, bytes);
      entry.value = std::move(value);
      if (pinned && !entry.pinned) Pin(key);
      entries_.splice(entries_.begin(), entries_, it->second);
      return &entry.value;
    }
    entries_.emplace_front(Entry{key, std::move(value), 0, false});
    index_.emplace(key, entries_.begin());
    AccountBytes(entries_.front(), bytes);
    if (pinned) Pin(key);
    return &entries_.front().value;
  }

  // Re-records an entry's payload size after it grew/shrank in place.
  void SetBytes(const Key& key, std::size_t bytes) {
    auto it = index_.find(key);
    if (it == index_.end()) return;
    AccountBytes(*it->second, bytes);
  }

  // Marks an entry budget-exempt (landmark). No-op when absent.
  void Pin(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end() || it->second->pinned) return;
    it->second->pinned = true;
    ++pinned_count_;
    pinned_bytes_ += it->second->bytes;
  }

  void Unpin(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end() || !it->second->pinned) return;
    it->second->pinned = false;
    --pinned_count_;
    pinned_bytes_ -= it->second->bytes;
  }

  // Drops least-recently-used unpinned entries until the unpinned
  // resident bytes fit the budget. Call only with no entry pointers
  // outstanding.
  void EvictOverBudget() {
    auto it = entries_.end();
    while (total_bytes_ - pinned_bytes_ > budget_bytes_ &&
           it != entries_.begin()) {
      --it;
      if (it->pinned) continue;
      it = Remove(it);
      ++evictions_;
    }
  }

  // Removes every entry (pinned included) matching pred(key, value) —
  // the epoch-invalidation hook. Returns the number removed.
  template <typename Pred>
  std::size_t EvictIf(Pred&& pred) {
    std::size_t removed = 0;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (pred(static_cast<const Key&>(it->key), it->value)) {
        it = Remove(it);
        ++evictions_;
        ++removed;
      } else {
        ++it;
      }
    }
    return removed;
  }

  bool Erase(const Key& key) {
    auto it = index_.find(key);
    if (it == index_.end()) return false;
    Remove(it->second);
    return true;
  }

  // Drops all entries. Monotone counters (hits/misses/evictions) are
  // intentionally preserved; only the resident gauges reset.
  void Clear() {
    entries_.clear();
    index_.clear();
    total_bytes_ = 0;
    pinned_bytes_ = 0;
    pinned_count_ = 0;
  }

  // Visits entries most- to least-recently-used.
  template <typename Fn>
  void ForEach(Fn&& fn) const {
    for (const Entry& entry : entries_) fn(entry.key, entry.value);
  }

  void set_budget_bytes(std::size_t budget_bytes) {
    budget_bytes_ = budget_bytes;
  }
  std::size_t budget_bytes() const { return budget_bytes_; }
  std::size_t size() const { return entries_.size(); }
  std::size_t bytes() const { return total_bytes_; }

  CacheStats stats() const {
    CacheStats s;
    s.hits = hits_;
    s.misses = misses_;
    s.evictions = evictions_;
    s.bytes = total_bytes_;
    s.entries = entries_.size();
    s.pinned = pinned_count_;
    return s;
  }

 private:
  struct Entry {
    Key key;
    Value value;
    std::size_t bytes = 0;
    bool pinned = false;
  };
  using EntryList = std::list<Entry>;

  void AccountBytes(Entry& entry, std::size_t bytes) {
    total_bytes_ = total_bytes_ - entry.bytes + bytes;
    if (entry.pinned) pinned_bytes_ = pinned_bytes_ - entry.bytes + bytes;
    entry.bytes = bytes;
  }

  typename EntryList::iterator Remove(typename EntryList::iterator it) {
    if (it->pinned) {
      --pinned_count_;
      pinned_bytes_ -= it->bytes;
    }
    total_bytes_ -= it->bytes;
    index_.erase(it->key);
    return entries_.erase(it);
  }

  std::size_t budget_bytes_;
  EntryList entries_;  // front = most recently used
  std::unordered_map<Key, typename EntryList::iterator, Hash> index_;
  std::size_t total_bytes_ = 0;
  std::size_t pinned_bytes_ = 0;
  std::uint64_t pinned_count_ = 0;
  std::uint64_t hits_ = 0;
  std::uint64_t misses_ = 0;
  std::uint64_t evictions_ = 0;
};

}  // namespace geer

#endif  // GEER_UTIL_LRU_BYTE_CACHE_H_
