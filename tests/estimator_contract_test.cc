// Cross-cutting contract tests every registered estimator must satisfy:
// determinism under a fixed seed, query-order independence (each query
// derives its own stream), symmetry within the accuracy budget, zero at
// s = t, and honest instrumentation. These pin the ErEstimator interface
// promises that the bench harness and downstream users rely on.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <type_traits>

#include "core/amc.h"
#include "core/exact.h"
#include "core/geer.h"
#include "core/hay.h"
#include "core/mc.h"
#include "core/mc2.h"
#include "core/registry.h"
#include "core/rp.h"
#include "core/smm.h"
#include "core/solver_er.h"
#include "core/tp.h"
#include "core/tpc.h"
#include "graph/generators.h"
#include "linalg/laplacian_solver.h"
#include "linalg/transition.h"
#include "rw/alias.h"
#include "rw/walker.h"
#include "test_util.h"
#include "graph/weighted_generators.h"

namespace geer {
namespace {

// PR 1's dangling-temporary guard, kept by every weight-generic template:
// graph-storing classes delete their rvalue overloads, so passing a
// temporary graph is a compile error. These static_asserts are the
// compile-fail check — if a template loses its deleted overload, this
// file stops compiling.
template <typename T, typename G>
constexpr bool kRejectsTemporaryGraph =
    !std::is_constructible_v<T, G&&, ErOptions> &&
    std::is_constructible_v<T, const G&, ErOptions>;

static_assert(kRejectsTemporaryGraph<GeerEstimator, Graph>);
static_assert(kRejectsTemporaryGraph<AmcEstimator, Graph>);
static_assert(kRejectsTemporaryGraph<SmmEstimator, Graph>);
static_assert(kRejectsTemporaryGraph<McEstimator, Graph>);
static_assert(kRejectsTemporaryGraph<Mc2Estimator, Graph>);
static_assert(kRejectsTemporaryGraph<TpEstimator, Graph>);
static_assert(kRejectsTemporaryGraph<TpcEstimator, Graph>);
static_assert(kRejectsTemporaryGraph<HayEstimator, Graph>);
static_assert(kRejectsTemporaryGraph<RpEstimator, Graph>);
static_assert(kRejectsTemporaryGraph<ExactEstimator, Graph>);
static_assert(kRejectsTemporaryGraph<SolverEstimator, Graph>);
static_assert(kRejectsTemporaryGraph<GeerEstimatorT<EdgeWeight>, WeightedGraph>);
static_assert(kRejectsTemporaryGraph<AmcEstimatorT<EdgeWeight>, WeightedGraph>);
static_assert(kRejectsTemporaryGraph<SmmEstimatorT<EdgeWeight>, WeightedGraph>);
static_assert(kRejectsTemporaryGraph<McEstimatorT<EdgeWeight>, WeightedGraph>);
static_assert(kRejectsTemporaryGraph<Mc2EstimatorT<EdgeWeight>, WeightedGraph>);
static_assert(kRejectsTemporaryGraph<TpEstimatorT<EdgeWeight>, WeightedGraph>);
static_assert(kRejectsTemporaryGraph<TpcEstimatorT<EdgeWeight>, WeightedGraph>);
static_assert(kRejectsTemporaryGraph<HayEstimatorT<EdgeWeight>, WeightedGraph>);
static_assert(kRejectsTemporaryGraph<RpEstimatorT<EdgeWeight>, WeightedGraph>);
static_assert(
    kRejectsTemporaryGraph<ExactEstimatorT<EdgeWeight>, WeightedGraph>);
static_assert(
    kRejectsTemporaryGraph<SolverEstimatorT<EdgeWeight>, WeightedGraph>);
// Substrate classes carry the same guard.
static_assert(!std::is_constructible_v<TransitionOperator, Graph&&>);
static_assert(!std::is_constructible_v<WeightedTransitionOperator,
                                       WeightedGraph&&>);
static_assert(!std::is_constructible_v<LaplacianSolver, Graph&&>);
static_assert(
    !std::is_constructible_v<WeightedLaplacianSolver, WeightedGraph&&>);
static_assert(!std::is_constructible_v<Walker, Graph&&>);
static_assert(!std::is_constructible_v<WeightedWalker, WeightedGraph&&>);

ErOptions FastOptions() {
  ErOptions opt;
  opt.epsilon = 0.3;
  opt.delta = 0.05;
  opt.seed = 2024;
  opt.tp_scale = 0.01;
  opt.tpc_scale = 0.001;
  opt.mc_gamma_upper = 8.0;
  return opt;
}

class EstimatorContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  // Fast-mixing dense ER graph (λ ≈ 0.35): the contract properties under
  // test are mixing-independent, and a small Peng ℓ keeps TP/TPC cheap.
  void SetUp() override { graph_ = gen::ErdosRenyi(40, 400, 9); }
  Graph graph_;
};

TEST_P(EstimatorContractTest, DeterministicUnderFixedSeed) {
  ErOptions opt = FastOptions();
  auto a = CreateEstimator(GetParam(), graph_, opt);
  auto b = CreateEstimator(GetParam(), graph_, opt);
  ASSERT_NE(a, nullptr);
  for (auto [s, t] : {std::pair<NodeId, NodeId>{0, 1}, {2, 9}}) {
    if (!a->SupportsQuery(s, t)) continue;
    EXPECT_DOUBLE_EQ(a->Estimate(s, t), b->Estimate(s, t))
        << GetParam() << " (" << s << "," << t << ")";
  }
}

TEST_P(EstimatorContractTest, QueryOrderDoesNotChangeAnswers) {
  ErOptions opt = FastOptions();
  auto forward = CreateEstimator(GetParam(), graph_, opt);
  auto backward = CreateEstimator(GetParam(), graph_, opt);
  const std::pair<NodeId, NodeId> pairs[] = {{0, 1}, {2, 9}, {4, 12}};
  double fwd[3] = {0, 0, 0};
  double bwd[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    if (!forward->SupportsQuery(pairs[i].first, pairs[i].second)) continue;
    fwd[i] = forward->Estimate(pairs[i].first, pairs[i].second);
  }
  for (int i = 2; i >= 0; --i) {
    if (!backward->SupportsQuery(pairs[i].first, pairs[i].second)) continue;
    bwd[i] = backward->Estimate(pairs[i].first, pairs[i].second);
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(fwd[i], bwd[i]) << GetParam() << " query " << i;
  }
}

TEST_P(EstimatorContractTest, SameNodeIsZero) {
  auto estimator = CreateEstimator(GetParam(), graph_, FastOptions());
  if (estimator->SupportsQuery(5, 5)) {
    EXPECT_DOUBLE_EQ(estimator->Estimate(5, 5), 0.0) << GetParam();
  }
}

TEST_P(EstimatorContractTest, SymmetricWithinAccuracyBudget) {
  // r(s,t) = r(t,s); two randomized runs may differ by 2ε at most
  // (both within ε of the truth w.h.p.).
  ErOptions opt = FastOptions();
  auto estimator = CreateEstimator(GetParam(), graph_, opt);
  const NodeId s = 1, t = 10;
  if (!estimator->SupportsQuery(s, t)) GTEST_SKIP();
  const double forward = estimator->Estimate(s, t);
  const double backward = estimator->Estimate(t, s);
  const double budget =
      GetParam() == "RP" ? 0.7 * std::max(forward, backward) + 0.05
                         : 2.0 * opt.epsilon + 1e-9;
  EXPECT_NEAR(forward, backward, budget) << GetParam();
}

TEST_P(EstimatorContractTest, StatsValueMatchesEstimate) {
  auto a = CreateEstimator(GetParam(), graph_, FastOptions());
  auto b = CreateEstimator(GetParam(), graph_, FastOptions());
  if (!a->SupportsQuery(0, 9)) GTEST_SKIP();
  const QueryStats stats = a->EstimateWithStats(0, 9);
  EXPECT_DOUBLE_EQ(stats.value, b->Estimate(0, 9)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllEstimators, EstimatorContractTest,
    ::testing::Values("GEER", "AMC", "SMM", "SMM-PengEll", "TP", "TPC", "MC",
                      "MC2", "HAY", "RP", "EXACT", "CG"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Weighted contract suite: every registry name must construct through
// CreateWeightedEstimator, answer deterministically, agree with the
// weighted CG oracle (W-CG) on a conductance fixture, and — on the
// unit-weight lift of the same topology — agree with the unweighted EXACT
// oracle. This pins the "write it once, run it on both" guarantee of the
// weight-generic refactor.
// ---------------------------------------------------------------------------

class WeightedEstimatorContractTest
    : public ::testing::TestWithParam<std::string> {
 protected:
  // Fast-mixing dense ER topology (as above) with conductances in
  // [1, 4]: w(e) ≥ 1 keeps the edge-only estimators' additive guarantee
  // on w(e)·r(e) an additive guarantee on r(e) too.
  void SetUp() override {
    topology_ = gen::ErdosRenyi(40, 400, 9);
    weighted_ = gen::WithUniformWeights(topology_, 1.0, 4.0, 21);
    unit_ = FromUnweighted(topology_);
  }

  Graph topology_;
  WeightedGraph weighted_;
  WeightedGraph unit_;
};

TEST_P(WeightedEstimatorContractTest, ConstructsWithWeightedName) {
  auto estimator =
      CreateWeightedEstimator(GetParam(), weighted_, FastOptions());
  ASSERT_NE(estimator, nullptr) << GetParam();
  EXPECT_EQ(estimator->Name(), "W-" + GetParam());
  // The "W-" display spelling is accepted as an alias.
  auto aliased =
      CreateWeightedEstimator("W-" + GetParam(), weighted_, FastOptions());
  ASSERT_NE(aliased, nullptr);
  EXPECT_EQ(aliased->Name(), "W-" + GetParam());
}

TEST_P(WeightedEstimatorContractTest, DeterministicUnderFixedSeed) {
  ErOptions opt = FastOptions();
  auto a = CreateWeightedEstimator(GetParam(), weighted_, opt);
  auto b = CreateWeightedEstimator(GetParam(), weighted_, opt);
  ASSERT_NE(a, nullptr);
  for (auto [s, t] : {std::pair<NodeId, NodeId>{0, 1}, {2, 9}}) {
    if (!a->SupportsQuery(s, t)) continue;
    EXPECT_DOUBLE_EQ(a->Estimate(s, t), b->Estimate(s, t))
        << GetParam() << " (" << s << "," << t << ")";
  }
}

TEST_P(WeightedEstimatorContractTest, AgreesWithWeightedCgOracle) {
  ErOptions opt = FastOptions();
  auto estimator = CreateWeightedEstimator(GetParam(), weighted_, opt);
  ASSERT_NE(estimator, nullptr);
  WeightedSolverEstimator oracle(weighted_);
  const std::pair<NodeId, NodeId> pairs[] = {{0, 1}, {2, 9}, {4, 12}};
  int answered = 0;
  for (auto [s, t] : pairs) {
    if (!estimator->SupportsQuery(s, t)) continue;
    ++answered;
    const double truth = oracle.Estimate(s, t);
    // RP's guarantee is relative (1±ε); everything else is additive ε.
    const double budget = GetParam() == "RP"
                              ? opt.epsilon * truth + 0.02
                              : opt.epsilon + 1e-9;
    EXPECT_NEAR(estimator->Estimate(s, t), truth, budget)
        << GetParam() << " (" << s << "," << t << ")";
  }
  EXPECT_GT(answered, 0) << GetParam();
}

TEST_P(WeightedEstimatorContractTest, UnitWeightsMatchUnweightedExact) {
  // On the unit-conductance lift the weighted instantiation answers the
  // SAME question as the unweighted stack; EXACT on the topology is the
  // oracle for both.
  ErOptions opt = FastOptions();
  auto estimator = CreateWeightedEstimator(GetParam(), unit_, opt);
  ASSERT_NE(estimator, nullptr);
  ExactEstimator exact(topology_);
  const std::pair<NodeId, NodeId> pairs[] = {{0, 1}, {5, 11}};
  for (auto [s, t] : pairs) {
    if (!estimator->SupportsQuery(s, t)) continue;
    const double truth = exact.Estimate(s, t);
    const double budget = GetParam() == "RP"
                              ? opt.epsilon * truth + 0.02
                              : opt.epsilon + 1e-9;
    EXPECT_NEAR(estimator->Estimate(s, t), truth, budget)
        << GetParam() << " (" << s << "," << t << ")";
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllWeighted, WeightedEstimatorContractTest,
    ::testing::Values("GEER", "AMC", "SMM", "SMM-PengEll", "TP", "TPC", "MC",
                      "MC2", "HAY", "RP", "EXACT", "CG"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(WeightedOracleCrossCheckTest, CgAndExactAgreeOnConductances) {
  // The two deterministic oracles bound each other: CG at 1e-12 tolerance
  // and the dense augmented-Laplacian factorization must coincide.
  WeightedGraph g =
      gen::WithUniformWeights(gen::ErdosRenyi(40, 400, 9), 0.25, 4.0, 33);
  WeightedSolverEstimator cg(g);
  ExactEstimatorT<EdgeWeight> exact(g);
  for (auto [s, t] : {std::pair<NodeId, NodeId>{0, 1}, {3, 17}, {8, 29}}) {
    EXPECT_NEAR(cg.Estimate(s, t), exact.Estimate(s, t), 1e-8)
        << "(" << s << "," << t << ")";
  }
}

TEST(WeightedRegistryTest, ListsEveryUnweightedName) {
  const auto unweighted = EstimatorNames();
  const auto weighted = WeightedEstimatorNames();
  EXPECT_EQ(unweighted, weighted)
      << "every registered algorithm must be weight-generalizable";
  Graph topology = testing::TriangleWithTail();
  WeightedGraph lifted = FromUnweighted(topology);
  for (const auto& name : weighted) {
    if (!WeightedEstimatorFeasible(name, lifted, FastOptions())) continue;
    EXPECT_NE(CreateWeightedEstimator(name, lifted, FastOptions()), nullptr)
        << name;
  }
  EXPECT_EQ(CreateWeightedEstimator("NOT-AN-ALGORITHM", lifted,
                                    FastOptions()),
            nullptr);
}

TEST(EstimatorInstrumentationTest, GeerSplitsLengthBetweenSmmAndAmc) {
  Graph g = testing::DenseTestGraph(18);
  ErOptions opt = FastOptions();
  opt.epsilon = 0.1;
  auto geer = CreateEstimator("GEER", g, opt);
  const QueryStats stats = geer->EstimateWithStats(0, 9);
  EXPECT_LE(stats.ell_b, stats.ell);
  if (stats.ell_b > 0) EXPECT_GT(stats.spmv_ops, 0u);
  if (stats.ell_b == stats.ell) EXPECT_EQ(stats.walks, 0u);
}

TEST(EstimatorInstrumentationTest, AmcBatchesBounded) {
  Graph g = testing::DenseTestGraph(18);
  ErOptions opt = FastOptions();
  auto amc = CreateEstimator("AMC", g, opt);
  const QueryStats stats = amc->EstimateWithStats(0, 9);
  EXPECT_GE(stats.batches, 1);
  EXPECT_LE(stats.batches, opt.tau);
  EXPECT_EQ(stats.walks % 2, 0u);  // always paired: one from s, one from t
  EXPECT_EQ(stats.walk_steps, stats.walks * stats.ell);
}

TEST(EstimatorInstrumentationTest, TruncationFlagOnNearBipartiteInput) {
  // A long odd cycle has λ ≈ 1: the required ℓ blows past a tiny cap and
  // estimators must disclose the truncation instead of silently lying.
  Graph g = gen::Cycle(401);
  ErOptions opt;
  opt.epsilon = 0.1;
  opt.max_ell = 32;
  for (const char* name : {"GEER", "AMC", "SMM"}) {
    auto estimator = CreateEstimator(name, g, opt);
    const QueryStats stats = estimator->EstimateWithStats(0, 200);
    EXPECT_TRUE(stats.truncated) << name;
    EXPECT_EQ(stats.ell, 32u) << name;
  }
}

}  // namespace
}  // namespace geer
