// Landmark (hub) selection for the sublinear serving layer: the K
// highest-centrality nodes, precomputed/pinned by
// ErEstimator::WarmLandmarks so Zipf-skewed traffic answers its hub side
// from warm cache state.
//
// Two interchangeable scores, both fully deterministic:
//   * Node weight (degree / strength) — O(n), the default the serving
//     layer uses. Matches the rank order Zipf workload generators use,
//     so popular endpoints and warm landmarks coincide.
//   * Spanning centrality — Σ over incident edges of the UST-sampled
//     edge ER (src/centrality/spanning_edge_centrality.h), deterministic
//     in its seed; picks articulation-heavy hubs rather than merely
//     high-degree ones. Unweighted graphs only.
//
// Ties always break toward the SMALLER node id, so selection is a pure
// function of the graph (+ seed) — identical across runs, thread counts
// and processes, which the landmark determinism suite enforces.

#ifndef GEER_CENTRALITY_LANDMARKS_H_
#define GEER_CENTRALITY_LANDMARKS_H_

#include <cstddef>
#include <vector>

#include "centrality/spanning_edge_centrality.h"
#include "graph/graph.h"
#include "graph/weighted_graph.h"

namespace geer {

/// The `count` nodes of largest node weight (degree for Graph, strength
/// for WeightedGraph), descending, ties broken by ascending node id.
/// `count` >= n returns all nodes — i.e. the full popularity ranking.
std::vector<NodeId> SelectLandmarks(const Graph& graph, std::size_t count);
std::vector<NodeId> SelectLandmarks(const WeightedGraph& graph,
                                    std::size_t count);

/// The `count` nodes of largest spanning centrality (sum of incident
/// edges' UST-sampled ER), descending, ties by ascending node id.
/// Deterministic in `options.seed`.
std::vector<NodeId> SelectLandmarksBySpanningCentrality(
    const Graph& graph, std::size_t count,
    const SpanningCentralityOptions& options = {});

}  // namespace geer

#endif  // GEER_CENTRALITY_LANDMARKS_H_
