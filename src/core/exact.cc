#include "core/exact.h"

#include "util/check.h"

namespace geer {

template <WeightPolicy WP>
std::shared_ptr<const CholeskyFactor> ExactEstimatorT<WP>::BuildFactor(
    const GraphT& graph, NodeId max_nodes) {
  const NodeId n = graph.NumNodes();
  GEER_CHECK_GE(n, 2u);
  GEER_CHECK_LE(n, max_nodes)
      << "EXACT needs an n×n dense factorization; " << n
      << " nodes exceeds the memory stand-in cap of " << max_nodes;
  const double shift = 1.0 / static_cast<double>(n);
  Matrix m(n, n, shift);
  const auto& offsets = graph.Offsets();
  const auto& adj = graph.NeighborArray();
  for (NodeId u = 0; u < n; ++u) {
    m(u, u) += WP::NodeWeight(graph, u);
    for (std::uint64_t k = offsets[u]; k < offsets[u + 1]; ++k) {
      m(u, adj[k]) -= WP::ArcWeight(graph, k);
    }
  }
  auto factor = CholeskyFactor::Factorize(m);
  GEER_CHECK(factor.has_value())
      << "augmented Laplacian not PD — is the graph connected?";
  return std::make_shared<const CholeskyFactor>(std::move(*factor));
}

template <WeightPolicy WP>
ExactEstimatorT<WP>::ExactEstimatorT(const GraphT& graph, ErOptions options,
                                     NodeId max_nodes)
    : graph_(&graph), max_nodes_(max_nodes) {
  ValidateOptions(options);
  factor_ = BuildFactor(graph, max_nodes);
  shared_factor_ = std::make_shared<EpochShared<CholeskyFactor>>(factor_);
}

template <WeightPolicy WP>
bool ExactEstimatorT<WP>::RebindGraph(const GraphT& graph,
                                      const GraphEpoch& epoch) {
  factor_ = shared_factor_->GetOrBuild(epoch.epoch, [this, &graph]() {
    return BuildFactor(graph, max_nodes_);
  });
  graph_ = &graph;
  return true;
}

template <WeightPolicy WP>
QueryStats ExactEstimatorT<WP>::EstimateWithStats(NodeId s, NodeId t) {
  GEER_CHECK(s < graph_->NumNodes());
  GEER_CHECK(t < graph_->NumNodes());
  QueryStats stats;
  if (s == t) return stats;
  Vector b(graph_->NumNodes(), 0.0);
  b[s] = 1.0;
  b[t] = -1.0;
  // (e_s − e_t) ⊥ 𝟙, so M⁻¹ agrees with L† on it.
  Vector x = factor_->Solve(b);
  stats.value = x[s] - x[t];
  return stats;
}

template class ExactEstimatorT<UnitWeight>;
template class ExactEstimatorT<EdgeWeight>;

}  // namespace geer
