// Quickstart: build a graph, run the spectral preprocessing once, and
// answer ε-approximate pairwise effective resistance queries with GEER,
// cross-checked against the exact dense solver.
//
//   ./examples/quickstart [path/to/snap_edgelist.txt]
//
// Without an argument it generates a small scale-free graph.

#include <cstdio>

#include "core/exact.h"
#include "core/geer.h"
#include "core/options.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "linalg/spectral.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace geer;

  // 1. Obtain a graph: load SNAP edge list or generate one.
  Graph graph;
  if (argc > 1) {
    auto loaded = LoadEdgeList(argv[1]);
    if (!loaded.has_value()) {
      std::fprintf(stderr, "cannot read %s\n", argv[1]);
      return 1;
    }
    graph = std::move(*loaded);
  } else {
    graph = gen::BarabasiAlbert(2000, 8, /*seed=*/7);
  }

  // 2. Normalize to the paper's assumptions: connected + non-bipartite.
  if (!IsConnected(graph)) graph = LargestConnectedComponent(graph);
  if (IsBipartite(graph)) graph = EnsureNonBipartite(graph);
  std::printf("graph: n=%u, m=%llu, avg degree %.2f\n", graph.NumNodes(),
              static_cast<unsigned long long>(graph.NumEdges()),
              graph.AverageDegree());

  // 3. One-time spectral preprocessing: lambda = max(|l2|, |ln|).
  Timer pre_timer;
  SpectralBounds spectral = ComputeSpectralBounds(graph);
  std::printf("lambda = %.6f (computed in %.1f ms)\n", spectral.lambda,
              pre_timer.ElapsedMillis());

  // 4. Answer queries with GEER at epsilon = 0.05.
  ErOptions options;
  options.epsilon = 0.05;
  options.delta = 0.01;
  options.lambda = spectral.lambda;  // reuse the preprocessing
  GeerEstimator geer(graph, options);

  const bool have_exact = ExactEstimator::Feasible(graph);
  ExactEstimator* exact = nullptr;
  // The estimator keeps a pointer to its graph, so the tiny stand-in for
  // the infeasible branch must outlive exact_storage too.
  Graph standin = gen::Complete(3);
  ExactEstimator exact_storage =
      have_exact ? ExactEstimator(graph) : ExactEstimator(standin);
  if (have_exact) exact = &exact_storage;

  const std::pair<NodeId, NodeId> pairs[] = {
      {0, graph.NumNodes() / 2},
      {1, graph.NumNodes() - 1},
      {graph.NumNodes() / 4, 3 * (graph.NumNodes() / 4)},
  };
  for (auto [s, t] : pairs) {
    Timer timer;
    QueryStats stats = geer.EstimateWithStats(s, t);
    std::printf(
        "r(%u, %u) ~= %.5f   [%.2f ms, ell=%u, switch lb=%u, walks=%llu]",
        s, t, stats.value, timer.ElapsedMillis(), stats.ell, stats.ell_b,
        static_cast<unsigned long long>(stats.walks));
    if (exact != nullptr) {
      const double truth = exact->Estimate(s, t);
      std::printf("   exact=%.5f  |err|=%.5f", truth,
                  std::abs(stats.value - truth));
    }
    std::printf("\n");
  }
  return 0;
}
