// Shared-precomputation micro bench: quantifies what the batch engine
// saves on a grouped-by-source query set, per algorithm that shares work
// (TP/TPC reuse the source's walk populations, SMM/GEER the source-side
// SpMV push vectors). For each method it answers the SAME query set
// query-at-a-time and through RunQueryBatch, verifies the values are
// bit-identical, and reports per-query walks / walk_steps / spmv_ops and
// amortized milliseconds for both modes. The numbers land in
// EXPERIMENTS.md.
//
// Each method gets the cell that makes its sharing observable: GEER/SMM
// need a slow-mixing dataset and tight ε so ℓ_b > 0 (there is no SpMV
// phase to share otherwise), while TP/TPC take Peng's generic ℓ as their
// walk budget and need a fast-mixing dataset to finish at all — the
// paper's own reason for benching them on separate regimes.
//
//   bench_batch_shared [--scale=f] [--seed=n] [--tp-scale=f] [--csv]
//                      [--threads=n]

#include <cstdio>
#include <cstring>

#include "bench/bench_common.h"
#include "core/batch_engine.h"
#include "core/registry.h"
#include "util/check.h"
#include "util/timer.h"

namespace geer {
namespace {

struct Tally {
  double wall_ms = 0.0;
  double walks = 0.0;
  double walk_steps = 0.0;
  double spmv_ops = 0.0;

  void Add(const QueryStats& st) {
    walks += static_cast<double>(st.walks);
    walk_steps += static_cast<double>(st.walk_steps);
    spmv_ops += static_cast<double>(st.spmv_ops);
  }
};

// A few sources with a fan of targets each — the paper's workload shape
// (every figure cell answers many queries) with the source skew of a
// real query log.
std::vector<QueryPair> GroupedQueries(NodeId n) {
  const NodeId kSources = 8;
  const NodeId kTargetsPerSource = 16;
  std::vector<QueryPair> queries;
  for (NodeId i = 0; i < kSources; ++i) {
    const NodeId s = static_cast<NodeId>((i * n) / kSources);
    for (NodeId j = 0; j < kTargetsPerSource; ++j) {
      const NodeId t = static_cast<NodeId>((s + 1 + 37 * j) % n);
      if (t != s) queries.push_back({s, t});
    }
  }
  return queries;
}

int Main(int argc, char** argv) {
  bench::BenchArgs args;
  int threads = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&arg](const char* key) -> std::optional<std::string> {
      const std::string prefix = std::string(key) + "=";
      if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
      return std::nullopt;
    };
    if (auto v = value("--scale")) {
      args.scale = std::atof(v->c_str());
    } else if (auto v = value("--seed")) {
      args.seed = static_cast<std::uint64_t>(std::atoll(v->c_str()));
    } else if (auto v = value("--tp-scale")) {
      args.tp_scale = std::atof(v->c_str());
      args.tpc_scale = args.tp_scale;
    } else if (auto v = value("--threads")) {
      threads = std::atoi(v->c_str());
    } else if (arg == "--csv") {
      args.csv = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }

  struct Cell {
    const char* method;
    const char* dataset;
    double epsilon;
  };
  const Cell cells[] = {
      {"GEER", "dblp", 0.05},
      {"SMM", "dblp", 0.05},
      {"TP", "facebook", 0.2},
      {"TPC", "facebook", 0.2},
  };

  if (args.csv) {
    std::printf(
        "method,dataset,epsilon,mode,queries,walks_per_q,walk_steps_per_q,"
        "spmv_per_q,ms_per_q\n");
  } else {
    std::printf("# grouped query set: 8 sources x 16 targets; "
                "tp/tpc scale=%g, threads=%d\n",
                args.tp_scale, threads);
    std::printf("%-8s %-10s %6s %-8s %12s %14s %12s %10s\n", "method",
                "dataset", "eps", "mode", "walks/q", "walk_steps/q",
                "spmv/q", "ms/q");
  }

  for (const Cell& cell : cells) {
    auto ds = MakeDataset(cell.dataset, args.scale > 0 ? args.scale : 0.1);
    GEER_CHECK(ds.has_value());
    const std::vector<QueryPair> queries = GroupedQueries(ds->graph.NumNodes());
    const double nq = static_cast<double>(queries.size());
    ErOptions opt = args.BaseOptions(cell.epsilon);
    opt.lambda = ds->spectral.lambda;

    // Query-at-a-time: the pre-batch-engine serial loop.
    Tally serial;
    std::vector<double> serial_values(queries.size());
    {
      auto estimator = CreateEstimator(cell.method, ds->graph, opt);
      Timer timer;
      for (std::size_t i = 0; i < queries.size(); ++i) {
        const QueryStats st =
            estimator->EstimateWithStats(queries[i].s, queries[i].t);
        serial.Add(st);
        serial_values[i] = st.value;
      }
      serial.wall_ms = timer.ElapsedMillis();
    }
    // Batched: grouped by source, shared precomputation.
    Tally batched;
    {
      auto estimator = CreateEstimator(cell.method, ds->graph, opt);
      std::vector<QueryStats> stats(queries.size());
      BatchOptions bopt;
      bopt.threads = threads;
      Timer timer;
      RunQueryBatch(*estimator, queries, stats, bopt);
      batched.wall_ms = timer.ElapsedMillis();
      for (std::size_t i = 0; i < stats.size(); ++i) {
        batched.Add(stats[i]);
        GEER_CHECK(stats[i].value == serial_values[i])
            << cell.method << " batch answer diverged from serial at query "
            << i;
      }
    }
    for (const auto* mode : {"serial", "batched"}) {
      const Tally& t = std::strcmp(mode, "serial") == 0 ? serial : batched;
      if (args.csv) {
        std::printf("%s,%s,%g,%s,%zu,%.1f,%.1f,%.1f,%.4f\n", cell.method,
                    cell.dataset, cell.epsilon, mode, queries.size(),
                    t.walks / nq, t.walk_steps / nq, t.spmv_ops / nq,
                    t.wall_ms / nq);
      } else {
        std::printf("%-8s %-10s %6g %-8s %12.1f %14.1f %12.1f %10.4f\n",
                    cell.method, cell.dataset, cell.epsilon, mode,
                    t.walks / nq, t.walk_steps / nq, t.spmv_ops / nq,
                    t.wall_ms / nq);
      }
    }
  }
  return 0;
}

}  // namespace
}  // namespace geer

int main(int argc, char** argv) { return geer::Main(argc, argv); }
