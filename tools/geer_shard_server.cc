// Standalone shard server: one QueryService over a full graph replica,
// speaking the frame protocol (src/net/). Identical to `geer net shard`
// — both run net::RunShardRole — but as its own binary so launch
// scripts (tools/start_servers_local.sh) and process supervisors get a
// dedicated executable name to manage.

#include <string>
#include <vector>

#include "net/roles.h"

int main(int argc, char** argv) {
  return geer::net::RunShardRole(
      std::vector<std::string>(argv + 1, argv + argc));
}
