// Micro-benchmarks (google-benchmark) for the substrate kernels the
// estimators are built on: RNG throughput, walk stepping, sparse vs
// dense SpMV, Laplacian CG solve, Lanczos preprocessing, and Wilson's
// UST sampling.

#include <benchmark/benchmark.h>

#include "eval/datasets.h"
#include "graph/generators.h"
#include "linalg/laplacian_solver.h"
#include "linalg/spectral.h"
#include "linalg/transition.h"
#include "rw/rng.h"
#include "rw/walker.h"
#include "rw/wilson.h"

namespace geer {
namespace {

const Graph& BenchGraph() {
  static const Graph graph = gen::RMat(13, 16, 7);  // ~8k nodes, ~130k edges
  return graph;
}

void BM_RngNext(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.Next());
  }
}
BENCHMARK(BM_RngNext);

void BM_RngBounded(benchmark::State& state) {
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.NextBounded(12345));
  }
}
BENCHMARK(BM_RngBounded);

void BM_WalkStep(benchmark::State& state) {
  const Graph& g = BenchGraph();
  Walker walker(g);
  Rng rng(2);
  NodeId cur = 0;
  for (auto _ : state) {
    cur = walker.Step(cur, rng);
    benchmark::DoNotOptimize(cur);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WalkStep);

void BM_TruncatedWalk(benchmark::State& state) {
  const Graph& g = BenchGraph();
  Walker walker(g);
  Rng rng(3);
  const std::uint32_t length = static_cast<std::uint32_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(walker.WalkEndpoint(0, length, rng));
  }
  state.SetItemsProcessed(state.iterations() * length);
}
BENCHMARK(BM_TruncatedWalk)->Arg(8)->Arg(32)->Arg(128);

void BM_SpmvDense(benchmark::State& state) {
  const Graph& g = BenchGraph();
  TransitionOperator op(g);
  Vector x(g.NumNodes(), 1.0 / g.NumNodes());
  Vector y;
  for (auto _ : state) {
    op.ApplyDense(x, &y);
    benchmark::DoNotOptimize(y.data());
  }
  state.SetItemsProcessed(state.iterations() * g.NumArcs());
}
BENCHMARK(BM_SpmvDense);

void BM_SpmvSparseFrontier(benchmark::State& state) {
  // Cost of the first `hops` sparse iterations from a one-hot vector —
  // the regime GEER's greedy rule lives in.
  const Graph& g = BenchGraph();
  TransitionOperator op(g);
  const int hops = static_cast<int>(state.range(0));
  for (auto _ : state) {
    TransitionOperator::SparseVector x;
    x.InitOneHot(42, g);
    for (int i = 0; i < hops; ++i) op.ApplyAuto(&x);
    benchmark::DoNotOptimize(x.values.data());
  }
}
BENCHMARK(BM_SpmvSparseFrontier)->Arg(1)->Arg(2)->Arg(3);

void BM_LaplacianCgSolve(benchmark::State& state) {
  const Graph& g = BenchGraph();
  LaplacianSolver solver(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(solver.EffectiveResistance(0, 999));
  }
}
BENCHMARK(BM_LaplacianCgSolve);

void BM_SpectralPreprocessing(benchmark::State& state) {
  const Graph& g = BenchGraph();
  for (auto _ : state) {
    benchmark::DoNotOptimize(ComputeSpectralBounds(g).lambda);
  }
}
BENCHMARK(BM_SpectralPreprocessing);

void BM_WilsonUst(benchmark::State& state) {
  const Graph& g = BenchGraph();
  Rng rng(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SampleUniformSpanningTree(g, 0, rng).parent);
  }
}
BENCHMARK(BM_WilsonUst);

}  // namespace
}  // namespace geer

BENCHMARK_MAIN();
