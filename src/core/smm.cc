#include "core/smm.h"

#include "core/ell.h"
#include "util/check.h"

namespace geer {

SmmIterator::SmmIterator(const Graph& graph, TransitionOperator* op,
                         NodeId s, NodeId t)
    : graph_(&graph), op_(op), s_(s), t_(t) {
  GEER_CHECK(s < graph.NumNodes());
  GEER_CHECK(t < graph.NumNodes());
  inv_ds_ = 1.0 / static_cast<double>(graph.Degree(s));
  inv_dt_ = 1.0 / static_cast<double>(graph.Degree(t));
  s_vec_.InitOneHot(s, graph);
  t_vec_.InitOneHot(t, graph);
  // i = 0 term of Eq. (4): p_0(s,s)/d(s) + p_0(t,t)/d(t)
  //                        − p_0(s,t)/d(s) − p_0(t,s)/d(t).
  rb_ = s_vec_.values[s_] * inv_ds_ + t_vec_.values[t_] * inv_dt_ -
        s_vec_.values[t_] * inv_ds_ - t_vec_.values[s_] * inv_dt_;
}

void SmmIterator::Advance() {
  spmv_ops_ += op_->ApplyAuto(&s_vec_);
  spmv_ops_ += op_->ApplyAuto(&t_vec_);
  ++iterations_;
  rb_ += s_vec_.values[s_] * inv_ds_ + t_vec_.values[t_] * inv_dt_ -
         s_vec_.values[t_] * inv_ds_ - t_vec_.values[s_] * inv_dt_;
}

SmmEstimator::SmmEstimator(const Graph& graph, ErOptions options)
    : graph_(&graph), options_(options), op_(graph) {
  ValidateOptions(options_);
  lambda_ = options_.lambda.has_value()
                ? *options_.lambda
                : ComputeSpectralBounds(graph).lambda;
}

QueryStats SmmEstimator::EstimateWithStats(NodeId s, NodeId t) {
  QueryStats stats;
  if (s == t) return stats;
  std::uint32_t ell;
  if (options_.smm_iterations > 0) {
    ell = options_.smm_iterations;
  } else if (options_.use_peng_ell) {
    ell = PengEll(options_.epsilon, lambda_, options_.max_ell);
    stats.truncated = EllWasTruncated(options_.epsilon, lambda_, 1, 1,
                                      options_.max_ell, /*use_peng=*/true);
  } else {
    ell = RefinedEll(options_.epsilon, lambda_, graph_->Degree(s),
                     graph_->Degree(t), options_.max_ell);
    stats.truncated =
        EllWasTruncated(options_.epsilon, lambda_, graph_->Degree(s),
                        graph_->Degree(t), options_.max_ell,
                        /*use_peng=*/false);
  }
  SmmIterator iter(*graph_, &op_, s, t);
  for (std::uint32_t i = 0; i < ell; ++i) iter.Advance();
  stats.value = iter.rb();
  stats.ell = ell;
  stats.ell_b = iter.iterations();
  stats.spmv_ops = iter.spmv_ops();
  return stats;
}

}  // namespace geer
