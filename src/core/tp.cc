#include "core/tp.h"

#include <cmath>

#include "core/ell.h"
#include "linalg/spectral.h"
#include "util/check.h"

namespace geer {
namespace {

// Domain-separation tag for TP's per-source walk streams (keeps them
// decorrelated from TPC's per-walk streams on the same seed and source).
constexpr std::uint64_t kTpStreamTag = 0x5450u;  // "TP"

}  // namespace

template <WeightPolicy WP>
TpEstimatorT<WP>::TpEstimatorT(const GraphT& graph, ErOptions options)
    : graph_(&graph), options_(options), walker_(graph) {
  ValidateOptions(options_);
  lambda_ = options_.lambda.has_value()
                ? *options_.lambda
                : ComputeSpectralBoundsT<WP>(graph).lambda;
}

template <WeightPolicy WP>
std::uint64_t TpEstimatorT<WP>::WalksPerLength(std::uint32_t ell) const {
  if (ell == 0) return 0;
  const double l = static_cast<double>(ell);
  const double raw = 40.0 * l * l * std::log(8.0 * l / options_.delta) /
                     (options_.epsilon * options_.epsilon);
  return static_cast<std::uint64_t>(
      std::ceil(std::max(raw * options_.tp_scale, 1.0)));
}

template <WeightPolicy WP>
void TpEstimatorT<WP>::EstimateSourceGroup(NodeId s,
                                           std::span<const QueryPair> queries,
                                           std::span<QueryStats> stats) {
  const NodeId n = graph_->NumNodes();
  GEER_CHECK(s < n);
  const std::uint32_t ell =
      PengEll(options_.epsilon, lambda_, options_.max_ell);
  const bool truncated =
      EllWasTruncated(options_.epsilon, lambda_, 1, 1, options_.max_ell,
                      /*use_peng=*/true);
  const std::uint64_t eta = WalksPerLength(ell);
  const double inv_eta = 1.0 / static_cast<double>(eta);
  const double inv_ws = 1.0 / WP::NodeWeight(*graph_, s);
  const std::size_t m = queries.size();

  // Per-query live state; the i = 0 term of Eq. (4) seeds the estimate.
  struct QueryState {
    bool live = false;
    double inv_wt = 0.0;
    double estimate = 0.0;
    Rng rng_t{0};
  };
  std::vector<QueryState> state(m);
  if (target_head_.size() != n) target_head_.assign(n, 0);
  target_next_.assign(m, 0);
  target_touched_.clear();
  std::size_t first_live = m;
  for (std::size_t j = 0; j < m; ++j) {
    const QueryPair& q = queries[j];
    GEER_CHECK(q.s < n);
    GEER_CHECK(q.t < n);
    GEER_CHECK_EQ(q.s, s);
    stats[j] = QueryStats{};
    if (q.s == q.t) continue;  // r(v, v) = 0, zero stats like serial
    QueryState& st = state[j];
    st.live = true;
    st.inv_wt = 1.0 / WP::NodeWeight(*graph_, q.t);
    st.estimate = inv_ws + st.inv_wt;
    // The target side keeps the same per-source stream law as the shared
    // side, so (t, x) queries elsewhere in the batch reuse nothing but
    // stay bit-identical.
    st.rng_t = Rng(MixSeed(MixSeed(options_.seed, kTpStreamTag), q.t));
    stats[j].ell = ell;
    stats[j].truncated = truncated;
    // Chain query j under its target node for the shared counting pass.
    target_next_[j] = target_head_[q.t];
    target_head_[q.t] = static_cast<std::uint32_t>(j) + 1;
    target_touched_.push_back(q.t);
    if (first_live == m) first_live = j;
  }
  if (first_live == m) return;  // every query was s == t

  Rng rng_s(MixSeed(MixSeed(options_.seed, kTpStreamTag), s));
  QueryStats shared;  // source-side cost, charged to the first live query
  std::vector<std::uint64_t> count_st(m, 0);

  for (std::uint32_t i = 1; i <= ell; ++i) {
    // Source side once for the whole group: count walks ending at s and,
    // through the target chains, at every live query's t.
    std::uint64_t count_ss = 0;
    std::fill(count_st.begin(), count_st.end(), 0);
    for (std::uint64_t k = 0; k < eta; ++k) {
      const NodeId end = walker_.WalkEndpoint(s, i, rng_s);
      if (end == s) ++count_ss;
      for (std::uint32_t idx = target_head_[end]; idx != 0;
           idx = target_next_[idx - 1]) {
        ++count_st[idx - 1];
      }
    }
    shared.walks += eta;
    shared.walk_steps += eta * i;

    // Target sides per query.
    for (std::size_t j = 0; j < m; ++j) {
      QueryState& st = state[j];
      if (!st.live) continue;
      const NodeId t = queries[j].t;
      std::uint64_t count_tt = 0;
      std::uint64_t count_ts = 0;
      for (std::uint64_t k = 0; k < eta; ++k) {
        const NodeId end = walker_.WalkEndpoint(t, i, st.rng_t);
        if (end == t) ++count_tt;
        if (end == s) ++count_ts;
      }
      stats[j].walks += eta;
      stats[j].walk_steps += eta * i;
      // Eq. (4) term for length i with the empirical probabilities.
      st.estimate += (static_cast<double>(count_ss) * inv_ws +
                      static_cast<double>(count_tt) * st.inv_wt -
                      static_cast<double>(count_st[j]) * st.inv_wt -
                      static_cast<double>(count_ts) * inv_ws) *
                     inv_eta;
    }
  }

  for (std::size_t j = 0; j < m; ++j) {
    if (state[j].live) stats[j].value = state[j].estimate;
  }
  stats[first_live].walks += shared.walks;
  stats[first_live].walk_steps += shared.walk_steps;
  for (const NodeId t : target_touched_) target_head_[t] = 0;
}

template <WeightPolicy WP>
QueryStats TpEstimatorT<WP>::EstimateWithStats(NodeId s, NodeId t) {
  const QueryPair query{s, t};
  QueryStats stats;
  EstimateSourceGroup(s, std::span<const QueryPair>(&query, 1),
                      std::span<QueryStats>(&stats, 1));
  return stats;
}

template <WeightPolicy WP>
std::size_t TpEstimatorT<WP>::EstimateBatch(
    std::span<const QueryPair> queries, std::span<QueryStats> stats,
    const BatchContext& context) {
  // Groups are answered in lockstep, so a run is all-or-nothing — the
  // deadline's cut granularity is one same-source group.
  return EstimateBySourceRuns(
      queries, stats, context,
      [this, &context](NodeId s, std::span<const QueryPair> run_queries,
                       std::span<QueryStats> run_stats) {
        EstimateSourceGroup(s, run_queries, run_stats);
        context.ReportAnswered(run_queries.size());
        return run_queries.size();
      });
}

template class TpEstimatorT<UnitWeight>;
template class TpEstimatorT<EdgeWeight>;

}  // namespace geer
