#include "core/registry.h"

#include "core/amc.h"
#include "core/exact.h"
#include "core/geer.h"
#include "core/hay.h"
#include "core/mc.h"
#include "core/mc2.h"
#include "core/rp.h"
#include "core/smm.h"
#include "core/solver_er.h"
#include "core/tp.h"
#include "core/tpc.h"

namespace geer {
namespace {

// One factory body for both weight modes: the registry IS the list of
// weight-generic templates, instantiated per policy.
template <WeightPolicy WP>
std::unique_ptr<ErEstimator> CreateEstimatorT(
    const std::string& name, const typename WP::GraphT& graph,
    const ErOptions& options) {
  if (name == "GEER") {
    return std::make_unique<GeerEstimatorT<WP>>(graph, options);
  }
  if (name == "AMC") return std::make_unique<AmcEstimatorT<WP>>(graph, options);
  if (name == "SMM") return std::make_unique<SmmEstimatorT<WP>>(graph, options);
  if (name == "SMM-PengEll") {
    ErOptions opt = options;
    opt.use_peng_ell = true;
    return std::make_unique<SmmEstimatorT<WP>>(graph, opt);
  }
  if (name == "TP") return std::make_unique<TpEstimatorT<WP>>(graph, options);
  if (name == "TPC") {
    return std::make_unique<TpcEstimatorT<WP>>(graph, options);
  }
  if (name == "MC") return std::make_unique<McEstimatorT<WP>>(graph, options);
  if (name == "MC2") return std::make_unique<Mc2EstimatorT<WP>>(graph, options);
  if (name == "HAY") return std::make_unique<HayEstimatorT<WP>>(graph, options);
  if (name == "RP") return std::make_unique<RpEstimatorT<WP>>(graph, options);
  if (name == "EXACT") {
    return std::make_unique<ExactEstimatorT<WP>>(graph, options);
  }
  if (name == "CG") {
    return std::make_unique<SolverEstimatorT<WP>>(graph, options);
  }
  return nullptr;
}

template <WeightPolicy WP>
bool EstimatorFeasibleT(const std::string& name,
                        const typename WP::GraphT& graph,
                        const ErOptions& options) {
  if (name == "EXACT") return ExactEstimatorT<WP>::Feasible(graph);
  if (name == "RP") return RpEstimatorT<WP>::Feasible(graph, options);
  for (const std::string& known : EstimatorNames()) {
    if (known == name) return true;
  }
  return false;
}

}  // namespace

std::string CanonicalEstimatorName(const std::string& name) {
  if (name.rfind("W-", 0) == 0) return name.substr(2);
  return name;
}

bool EstimatorReadsLambda(const std::string& name) {
  const std::string canonical = CanonicalEstimatorName(name);
  return canonical == "GEER" || canonical == "AMC" || canonical == "SMM" ||
         canonical == "SMM-PengEll" || canonical == "TP" ||
         canonical == "TPC";
}

bool EstimatorSharesBatchWork(const std::string& name) {
  // Keep in sync with the SharesBatchWork overrides (registry_test
  // cross-checks this against constructed instances).
  const std::string canonical = CanonicalEstimatorName(name);
  return canonical == "GEER" || canonical == "SMM" ||
         canonical == "SMM-PengEll" || canonical == "TP" ||
         canonical == "TPC";
}

std::unique_ptr<ErEstimator> CreateEstimator(const std::string& name,
                                             const Graph& graph,
                                             const ErOptions& options) {
  return CreateEstimatorT<UnitWeight>(name, graph, options);
}

std::vector<std::string> EstimatorNames() {
  return {"GEER", "AMC", "SMM", "SMM-PengEll", "TP",    "TPC",
          "MC",   "MC2", "HAY", "RP",          "EXACT", "CG"};
}

bool EstimatorFeasible(const std::string& name, const Graph& graph,
                       const ErOptions& options) {
  return EstimatorFeasibleT<UnitWeight>(name, graph, options);
}

std::unique_ptr<ErEstimator> CreateWeightedEstimator(
    const std::string& name, const WeightedGraph& graph,
    const ErOptions& options) {
  return CreateEstimatorT<EdgeWeight>(CanonicalEstimatorName(name), graph,
                                      options);
}

std::vector<std::string> WeightedEstimatorNames() {
  // Every registered algorithm generalizes: degrees become strengths and
  // walks step through the alias sampler.
  return EstimatorNames();
}

bool WeightedEstimatorFeasible(const std::string& name,
                               const WeightedGraph& graph,
                               const ErOptions& options) {
  return EstimatorFeasibleT<EdgeWeight>(CanonicalEstimatorName(name), graph,
                                        options);
}

}  // namespace geer
