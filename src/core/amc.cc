#include "core/amc.h"

#include <cmath>

#include "core/ell.h"
#include "core/spectral_epoch.h"
#include "linalg/spectral.h"
#include "stats/accumulator.h"
#include "stats/bounds.h"
#include "util/check.h"

namespace geer {

double AmcPsi(std::uint32_t ell_f, double max1_s, double max2_s,
              double weight_s, double max1_t, double max2_t,
              double weight_t) {
  const double half_up = std::ceil(ell_f / 2.0);
  const double half_down = std::floor(ell_f / 2.0);
  return 2.0 * half_up * (max1_s / weight_s + max1_t / weight_t) +
         2.0 * half_down * (max2_s / weight_s + max2_t / weight_t);
}

template <WeightPolicy WP>
AmcRunResult RunAmcT(const typename WP::GraphT& graph,
                     const WalkerFor<WP>& walker, NodeId s, NodeId t,
                     const Vector& svec, const Vector& tvec,
                     const AmcParams& params, Rng& rng) {
  GEER_CHECK_NE(s, t);
  GEER_CHECK_EQ(svec.size(), static_cast<std::size_t>(graph.NumNodes()));
  GEER_CHECK_EQ(tvec.size(), static_cast<std::size_t>(graph.NumNodes()));
  GEER_CHECK(params.epsilon > 0.0);
  GEER_CHECK(params.delta > 0.0 && params.delta < 1.0);
  GEER_CHECK_GE(params.tau, 1);

  AmcRunResult result;
  if (params.ell_f == 0) return result;  // q over an empty length range

  const double ws = WP::NodeWeight(graph, s);
  const double wt = WP::NodeWeight(graph, t);
  const double inv_ws = 1.0 / ws;
  const double inv_wt = 1.0 / wt;

  const auto [max1_s, max2_s] = TopTwo(svec);
  const auto [max1_t, max2_t] = TopTwo(tvec);
  const double psi =
      AmcPsi(params.ell_f, max1_s, max2_s, ws, max1_t, max2_t, wt);
  result.psi = psi;
  if (psi <= 0.0) return result;  // |Z_k| ≤ ψ/2 = 0: q is exactly 0

  // Line 1: η* by Eq. (8), ψ by Eq. (9). Line 2: η ← ⌈η*/2^{τ−1}⌉.
  const std::uint64_t eta_star =
      AmcMaxSamples(params.epsilon, psi, params.delta, params.tau);
  result.eta_star = eta_star;
  const double pow_tau = std::pow(2.0, params.tau - 1);
  std::uint64_t eta = static_cast<std::uint64_t>(
      std::ceil(static_cast<double>(eta_star) / pow_tau));
  if (eta == 0) eta = 1;

  const double per_batch_delta = params.delta / params.tau;
  MeanVarAccumulator acc;

  double z_mean = 0.0;
  for (int batch = 1; batch <= params.tau; ++batch) {
    // Lines 4–12: fresh batch; previous samples are discarded.
    acc.Reset();
    for (std::uint64_t k = 0; k < eta; ++k) {
      // Walk S_k from s and T_k from t, both of length ℓf; accumulate
      //   Z_k = Σ_{u∈S_k} (s(u)/w(s) − t(u)/w(t))
      //       + Σ_{u∈T_k} (t(u)/w(t) − s(u)/w(s)).
      double z = 0.0;
      NodeId cur = s;
      for (std::uint32_t step = 0; step < params.ell_f; ++step) {
        cur = walker.Step(cur, rng);
        z += svec[cur] * inv_ws - tvec[cur] * inv_wt;
      }
      cur = t;
      for (std::uint32_t step = 0; step < params.ell_f; ++step) {
        cur = walker.Step(cur, rng);
        z += tvec[cur] * inv_wt - svec[cur] * inv_ws;
      }
      acc.Add(z);
    }
    result.walks += 2 * eta;
    result.steps += 2 * eta * params.ell_f;
    result.batches = batch;
    z_mean = acc.Mean();
    // Line 13: Bernstein stopping rule. The shift Z' = Z + ψ/2 ∈ [0, ψ]
    // leaves the empirical variance unchanged, so f applies directly.
    const double bound = EmpiricalBernsteinBound(eta, acc.Variance(), psi,
                                                 per_batch_delta);
    if (bound <= params.epsilon / 2.0) {
      result.early_stop = batch < params.tau;
      break;
    }
    eta *= 2;  // Line 14.
  }
  result.r_f = z_mean;
  return result;
}

template <WeightPolicy WP>
AmcEstimatorT<WP>::AmcEstimatorT(const GraphT& graph, ErOptions options)
    : graph_(&graph),
      options_(options),
      walker_(graph),
      svec_(graph.NumNodes(), 0.0),
      tvec_(graph.NumNodes(), 0.0) {
  ValidateOptions(options_);
  lambda_ = options_.lambda.has_value()
                ? *options_.lambda
                : ComputeSpectralBoundsT<WP>(graph).lambda;
}

template <WeightPolicy WP>
bool AmcEstimatorT<WP>::RebindGraph(const GraphT& graph,
                                    const GraphEpoch& epoch) {
  graph_ = &graph;
  walker_ = WalkerFor<WP>(graph);
  // λ belongs to the graph, not the options: a stale construction-time
  // (or clone-baked) value would change walk lengths vs a fresh build.
  bool warm = false;
  lambda_ = RebindLambda<WP>(graph, epoch, &warm);
  if (warm) incremental_rebinds_.fetch_add(1, std::memory_order_relaxed);
  svec_.assign(graph.NumNodes(), 0.0);
  tvec_.assign(graph.NumNodes(), 0.0);
  return true;
}

template <WeightPolicy WP>
QueryStats AmcEstimatorT<WP>::EstimateWithStats(NodeId s, NodeId t) {
  GEER_CHECK(s < graph_->NumNodes());
  GEER_CHECK(t < graph_->NumNodes());
  QueryStats stats;
  if (s == t) return stats;

  const double ws = WP::NodeWeight(*graph_, s);
  const double wt = WP::NodeWeight(*graph_, t);
  const std::uint32_t ell =
      options_.use_peng_ell
          ? PengEll(options_.epsilon, lambda_, options_.max_ell)
          : RefinedEllWeighted(options_.epsilon, lambda_, ws, wt,
                               options_.max_ell);
  stats.ell = ell;
  stats.truncated = EllWasTruncated(options_.epsilon, lambda_, ws, wt,
                                    options_.max_ell, options_.use_peng_ell);

  svec_[s] = 1.0;
  tvec_[t] = 1.0;
  AmcParams params;
  params.epsilon = options_.epsilon;
  params.delta = options_.delta;
  params.tau = options_.tau;
  params.ell_f = ell;
  // Per-query deterministic stream: reordering queries never changes an
  // individual answer.
  Rng rng(options_.seed ^ (static_cast<std::uint64_t>(s) << 32) ^ t);
  AmcRunResult run =
      RunAmcT<WP>(*graph_, walker_, s, t, svec_, tvec_, params, rng);
  svec_[s] = 0.0;
  tvec_[t] = 0.0;

  // Theorem 3.4: add the i = 0 term 1_{s≠t}(1/w(s) + 1/w(t)).
  stats.value = run.r_f + 1.0 / ws + 1.0 / wt;
  stats.walks = run.walks;
  stats.walk_steps = run.steps;
  stats.eta_star = run.eta_star;
  stats.batches = run.batches;
  stats.early_stop = run.early_stop;
  return stats;
}

template AmcRunResult RunAmcT<UnitWeight>(const Graph&, const Walker&,
                                          NodeId, NodeId, const Vector&,
                                          const Vector&, const AmcParams&,
                                          Rng&);
template AmcRunResult RunAmcT<EdgeWeight>(const WeightedGraph&,
                                          const WeightedWalker&, NodeId,
                                          NodeId, const Vector&,
                                          const Vector&, const AmcParams&,
                                          Rng&);
template class AmcEstimatorT<UnitWeight>;
template class AmcEstimatorT<EdgeWeight>;

}  // namespace geer
