#include "core/exact.h"

#include <algorithm>

#include "util/check.h"

namespace geer {

template <WeightPolicy WP>
std::shared_ptr<const CholeskyFactor> ExactEstimatorT<WP>::BuildFactor(
    const GraphT& graph, NodeId max_nodes) {
  const NodeId n = graph.NumNodes();
  GEER_CHECK_GE(n, 2u);
  GEER_CHECK_LE(n, max_nodes)
      << "EXACT needs an n×n dense factorization; " << n
      << " nodes exceeds the memory stand-in cap of " << max_nodes;
  const double shift = 1.0 / static_cast<double>(n);
  Matrix m(n, n, shift);
  const auto& offsets = graph.Offsets();
  const auto& adj = graph.NeighborArray();
  for (NodeId u = 0; u < n; ++u) {
    m(u, u) += WP::NodeWeight(graph, u);
    for (std::uint64_t k = offsets[u]; k < offsets[u + 1]; ++k) {
      m(u, adj[k]) -= WP::ArcWeight(graph, k);
    }
  }
  auto factor = CholeskyFactor::Factorize(m);
  GEER_CHECK(factor.has_value())
      << "augmented Laplacian not PD — is the graph connected?";
  return std::make_shared<const CholeskyFactor>(std::move(*factor));
}

template <WeightPolicy WP>
ExactEstimatorT<WP>::ExactEstimatorT(const GraphT& graph, ErOptions options,
                                     NodeId max_nodes)
    : graph_(&graph), max_nodes_(max_nodes) {
  ValidateOptions(options);
  factor_ = BuildFactor(graph, max_nodes);
  shared_factor_ = std::make_shared<EpochShared<CholeskyFactor>>(factor_);
}

template <WeightPolicy WP>
bool ExactEstimatorT<WP>::RebindGraph(const GraphT& graph,
                                      const GraphEpoch& epoch) {
  factor_ = shared_factor_->GetOrBuild(epoch.epoch, [this, &graph]() {
    return BuildFactor(graph, max_nodes_);
  });
  graph_ = &graph;
  // Columns are functions of the whole factorization: flush wholesale.
  // Landmark columns re-warm lazily (pin-on-miss via is_landmark_).
  if (session_ != nullptr) session_->Clear();
  return true;
}

template <WeightPolicy WP>
Vector ExactEstimatorT<WP>::SolveColumn(NodeId node) const {
  Vector b(graph_->NumNodes(), 0.0);
  b[node] = 1.0;
  // M⁻¹ e_node = L† e_node + 𝟙/n (M⁻¹𝟙 = 𝟙); the rank-one part cancels
  // when two columns are differenced, so the combination is exact.
  return factor_->Solve(b);
}

template <WeightPolicy WP>
const Vector* ExactEstimatorT<WP>::ColumnFor(NodeId node, Vector* scratch) {
  if (session_ == nullptr) {
    *scratch = SolveColumn(node);
    return scratch;
  }
  if (const Vector* hit = session_->Find(node)) return hit;
  Vector col = SolveColumn(node);
  const std::size_t bytes = col.size() * sizeof(double) + sizeof(Vector);
  return session_->Insert(node, std::move(col), bytes, IsLandmark(node));
}

template <WeightPolicy WP>
std::size_t ExactEstimatorT<WP>::WarmLandmarks(
    std::span<const NodeId> landmarks) {
  if (session_ == nullptr) EnableSessionCache();
  is_landmark_.assign(graph_->NumNodes(), 0);
  for (const NodeId lm : landmarks) {
    GEER_CHECK(lm < graph_->NumNodes());
    is_landmark_[lm] = 1;
  }
  Vector scratch;
  for (const NodeId lm : landmarks) {
    (void)ColumnFor(lm, &scratch);  // solve + pin (counts hit or miss)
  }
  session_->EvictOverBudget();
  return landmarks.size();
}

template <WeightPolicy WP>
QueryStats ExactEstimatorT<WP>::EstimateWithStats(NodeId s, NodeId t) {
  GEER_CHECK(s < graph_->NumNodes());
  GEER_CHECK(t < graph_->NumNodes());
  QueryStats stats;
  if (s == t) return stats;
  const NodeId u = std::min(s, t);
  const NodeId v = std::max(s, t);
  Vector scratch_u;
  Vector scratch_v;
  const Vector* yu = ColumnFor(u, &scratch_u);
  const Vector* yv = ColumnFor(v, &scratch_v);
  // r(u,v) = (e_u − e_v)ᵀ M⁻¹ (e_u − e_v), combined column-wise in fixed
  // canonical order — bitwise symmetric and cache-independent.
  stats.value = ((*yu)[u] - (*yu)[v]) - ((*yv)[u] - (*yv)[v]);
  if (session_ != nullptr) session_->EvictOverBudget();
  return stats;
}

template class ExactEstimatorT<UnitWeight>;
template class ExactEstimatorT<EdgeWeight>;

}  // namespace geer
