#include "linalg/cholesky.h"

#include <gtest/gtest.h>

#include "rw/rng.h"

namespace geer {
namespace {

TEST(CholeskyTest, SolvesIdentity) {
  Matrix m(3, 3, 0.0);
  for (int i = 0; i < 3; ++i) m(i, i) = 1.0;
  auto f = CholeskyFactor::Factorize(m);
  ASSERT_TRUE(f.has_value());
  Vector x = f->Solve({1.0, 2.0, 3.0});
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
  EXPECT_NEAR(x[2], 3.0, 1e-12);
}

TEST(CholeskyTest, SolvesKnownSpdSystem) {
  Matrix m(2, 2, 0.0);
  m(0, 0) = 4.0;
  m(0, 1) = 2.0;
  m(1, 0) = 2.0;
  m(1, 1) = 3.0;
  auto f = CholeskyFactor::Factorize(m);
  ASSERT_TRUE(f.has_value());
  // Solution of [4 2; 2 3] x = [10; 8]: x = [7/4; 3/2].
  Vector x = f->Solve({10.0, 8.0});
  EXPECT_NEAR(x[0], 1.75, 1e-12);
  EXPECT_NEAR(x[1], 1.5, 1e-12);
}

TEST(CholeskyTest, RejectsIndefinite) {
  Matrix m(2, 2, 0.0);
  m(0, 0) = 1.0;
  m(1, 1) = -1.0;
  EXPECT_FALSE(CholeskyFactor::Factorize(m).has_value());
}

TEST(CholeskyTest, RejectsSingular) {
  Matrix m(2, 2, 1.0);  // rank 1
  EXPECT_FALSE(CholeskyFactor::Factorize(m).has_value());
}

TEST(CholeskyTest, RandomSpdRoundTrip) {
  // M = AᵀA + I is SPD; check M·Solve(b) ≈ b.
  Rng rng(77);
  const std::size_t n = 20;
  Matrix a(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) a(i, j) = rng.NextGaussian();
  }
  Matrix m(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = 0; j < n; ++j) {
      double acc = i == j ? 1.0 : 0.0;
      for (std::size_t k = 0; k < n; ++k) acc += a(k, i) * a(k, j);
      m(i, j) = acc;
    }
  }
  auto f = CholeskyFactor::Factorize(m);
  ASSERT_TRUE(f.has_value());
  Vector b(n);
  for (auto& v : b) v = rng.NextGaussian();
  Vector x = f->Solve(b);
  Vector back = MatVec(m, x);
  for (std::size_t i = 0; i < n; ++i) EXPECT_NEAR(back[i], b[i], 1e-8);
}

}  // namespace
}  // namespace geer
