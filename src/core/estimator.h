// The public query interface every ER algorithm implements, plus the
// per-query instrumentation the benchmark harness and the paper's
// cost-model analysis rely on.

#ifndef GEER_CORE_ESTIMATOR_H_
#define GEER_CORE_ESTIMATOR_H_

#include <cstdint>
#include <string>

#include "graph/graph.h"

namespace geer {

/// Result and cost instrumentation for a single ε-approximate PER query.
struct QueryStats {
  double value = 0.0;            ///< the estimate r'(s, t)
  std::uint64_t walks = 0;       ///< random walks simulated
  std::uint64_t walk_steps = 0;  ///< total walk steps taken
  std::uint64_t spmv_ops = 0;    ///< arc traversals in SpMV iterations
  std::uint32_t ell = 0;         ///< maximum walk length in effect
  std::uint32_t ell_b = 0;       ///< SMM iterations performed (SMM/GEER)
  std::uint64_t eta_star = 0;    ///< Hoeffding cap η* (AMC/GEER)
  int batches = 0;               ///< adaptive batches executed (AMC/GEER)
  bool early_stop = false;       ///< Bernstein rule fired before η* (AMC)
  bool truncated = false;        ///< hit a safety cap; estimate best-effort
};

/// Interface for ε-approximate pairwise effective resistance estimators.
///
/// Estimators are constructed per graph (amortizing preprocessing such as
/// the λ spectral bound) and answer repeated queries. Estimate() calls are
/// deterministic given the seed in the options: each query derives its
/// stream from (seed, s, t), so shuffling query order does not change
/// individual answers.
class ErEstimator {
 public:
  virtual ~ErEstimator() = default;

  /// Short algorithm name as used in the paper ("GEER", "AMC", "TP", …).
  virtual std::string Name() const = 0;

  /// Answers the ε-approximate PER query for pair (s, t) with
  /// instrumentation. Requires SupportsQuery(s, t).
  virtual QueryStats EstimateWithStats(NodeId s, NodeId t) = 0;

  /// Convenience: just the estimate.
  double Estimate(NodeId s, NodeId t) { return EstimateWithStats(s, t).value; }

  /// True iff the algorithm can answer this pair. Edge-only baselines
  /// (MC2, HAY) require (s, t) ∈ E; everything else accepts any pair.
  virtual bool SupportsQuery(NodeId s, NodeId t) const {
    (void)s;
    (void)t;
    return true;
  }
};

}  // namespace geer

#endif  // GEER_CORE_ESTIMATOR_H_
