#include "core/batch_engine.h"

#include <atomic>
#include <memory>

#include "obs/trace.h"
#include "util/check.h"
#include "util/thread_pool.h"
#include "util/timer.h"

namespace geer {
namespace {

// Validates that `plan` is a permutation of [0, n) partitioned into
// contiguous groups — a malformed override would silently drop or
// double-answer queries otherwise.
void ValidatePlan(const BatchPlan& plan, std::size_t n) {
  GEER_CHECK_EQ(plan.order.size(), n);
  GEER_CHECK(!plan.group_offsets.empty());
  GEER_CHECK_EQ(plan.group_offsets.front(), 0u);
  GEER_CHECK_EQ(plan.group_offsets.back(), n);
  for (std::size_t g = 1; g < plan.group_offsets.size(); ++g) {
    GEER_CHECK(plan.group_offsets[g - 1] <= plan.group_offsets[g]);
  }
  std::vector<std::uint8_t> seen(n, 0);
  for (const std::uint32_t i : plan.order) {
    GEER_CHECK(i < n);
    GEER_CHECK(!seen[i]) << "duplicate query index in batch plan";
    seen[i] = 1;
  }
}

}  // namespace

BatchReport RunQueryBatch(ErEstimator& estimator,
                          std::span<const QueryPair> queries,
                          std::span<QueryStats> stats,
                          const BatchOptions& options) {
  const std::size_t n = queries.size();
  GEER_CHECK(stats.size() >= n);
  BatchReport report;
  report.processed.assign(n, 0);
  if (n == 0) return report;

  obs::Tracer* const tracer = obs::Tracer::Current();
  const std::uint64_t plan_start = tracer != nullptr ? obs::NowNs() : 0;
  const BatchPlan plan = options.use_plan
                             ? estimator.PlanBatch(queries)
                             : BatchPlan::Trivial(n);
  ValidatePlan(plan, n);
  const std::size_t num_groups = plan.NumGroups();
  if (tracer != nullptr) {
    obs::SpanEvent plan_ev;
    plan_ev.name = "plan";
    plan_ev.start_ns = plan_start;
    plan_ev.dur_ns = obs::NowNs() - plan_start;
    plan_ev.arg_key0 = "queries";
    plan_ev.arg_val0 = n;
    plan_ev.arg_key1 = "groups";
    plan_ev.arg_val1 = num_groups;
    tracer->Record(plan_ev);
  }

  // Worker estimators: caller-provided session workers (persisting their
  // caches across engine runs), or ad-hoc clones. Workers 1… answer on
  // independent clones; worker 0 reuses the caller's estimator, so the
  // single-thread path has zero construction overhead.
  int workers;
  std::vector<std::unique_ptr<ErEstimator>> clones;
  std::vector<ErEstimator*> worker_estimators;
  if (!options.session_workers.empty()) {
    workers = ResolveWorkerCount(
        static_cast<int>(options.session_workers.size()), num_groups);
    worker_estimators.assign(options.session_workers.begin(),
                             options.session_workers.begin() + workers);
  } else {
    workers = ResolveWorkerCount(options.threads, num_groups);
    worker_estimators.push_back(&estimator);
    if (workers > 1) {
      clones.reserve(static_cast<std::size_t>(workers) - 1);
      for (int w = 1; w < workers; ++w) {
        std::unique_ptr<ErEstimator> clone = estimator.CloneForBatch();
        if (clone == nullptr) {  // not clonable: degrade to single-threaded
          clones.clear();
          workers = 1;
          break;
        }
        clones.push_back(std::move(clone));
        worker_estimators.push_back(clones.back().get());
      }
      if (workers == 1) worker_estimators.resize(1);
    }
  }

  const Deadline deadline(options.deadline_seconds);
  std::atomic<bool> cancel(false);
  std::atomic<std::uint64_t> answered_counter(0);
  const BatchContext context(
      &cancel, options.deadline_seconds > 0.0 ? &deadline : nullptr,
      &answered_counter, options.cancel);

  // Per-worker gather/scatter scratch: groups reference arbitrary input
  // positions, while EstimateBatch wants contiguous spans.
  struct WorkerScratch {
    std::vector<QueryPair> queries;
    std::vector<QueryStats> stats;
  };
  std::vector<WorkerScratch> scratch(static_cast<std::size_t>(workers));

  WorkStealingPool::Run(
      workers, num_groups, [&](int worker, std::size_t g) {
        if (context.Cancelled()) return;
        ErEstimator* est = worker_estimators[worker];
        const std::uint32_t begin = plan.group_offsets[g];
        const std::uint32_t end = plan.group_offsets[g + 1];
        obs::Span estimate_span("estimate");
        estimate_span.Arg("group", g);
        estimate_span.Arg("queries", end - begin);
        WorkerScratch& ws = scratch[worker];
        ws.queries.clear();
        for (std::uint32_t k = begin; k < end; ++k) {
          ws.queries.push_back(queries[plan.order[k]]);
        }
        ws.stats.assign(ws.queries.size(), QueryStats{});
        const std::size_t done = SubmitGroup(*est, ws.queries, ws.stats,
                                             context);
        for (std::size_t k = 0; k < done; ++k) {
          const std::uint32_t q = plan.order[begin + k];
          stats[q] = ws.stats[k];
          report.processed[q] = 1;  // workers own disjoint plan slots
        }
      });

  for (const std::uint8_t p : report.processed) report.answered += p;
  report.completed = report.answered == n;
  report.workers = workers;
  return report;
}

std::size_t SubmitGroup(ErEstimator& estimator,
                        std::span<const QueryPair> queries,
                        std::span<QueryStats> stats,
                        const BatchContext& context) {
  GEER_CHECK(stats.size() >= queries.size());
  return estimator.EstimateBatch(queries, stats, context);
}

}  // namespace geer
