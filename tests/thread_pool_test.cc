// Direct coverage for util/thread_pool — until now it was exercised only
// through batch_determinism_test. Pins down the pieces the batch engine
// and the serving scheduler rely on: every task runs exactly once at any
// worker count, the single-worker path is inline on the caller, an idle
// worker steals from a busy victim's deque, Run nests, and a throwing
// task surfaces on the calling thread instead of terminating the process.

#include <gtest/gtest.h>

#include <atomic>
#include <cstddef>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace geer {
namespace {

TEST(ResolveWorkerCountTest, ClampsToTaskCountAndFloorsAtOne) {
  EXPECT_EQ(ResolveWorkerCount(5, 3), 3);
  EXPECT_EQ(ResolveWorkerCount(1, 100), 1);
  EXPECT_EQ(ResolveWorkerCount(4, 100), 4);
  EXPECT_EQ(ResolveWorkerCount(4, 0), 1);   // never zero workers
  EXPECT_GE(ResolveWorkerCount(0, 1000000), 1);  // 0 = hardware concurrency
  EXPECT_LE(ResolveWorkerCount(0, 2), 2);
}

TEST(WorkStealingPoolTest, RunsEveryTaskExactlyOnceAtAnyWorkerCount) {
  constexpr std::size_t kTasks = 100;
  for (const int workers : {1, 2, 3, 8}) {
    std::vector<std::atomic<int>> runs(kTasks);
    std::atomic<bool> bad_worker_id(false);
    WorkStealingPool::Run(workers, kTasks, [&](int worker, std::size_t t) {
      if (worker < 0 || worker >= workers) bad_worker_id = true;
      runs[t].fetch_add(1, std::memory_order_relaxed);
    });
    EXPECT_FALSE(bad_worker_id.load()) << "workers=" << workers;
    for (std::size_t t = 0; t < kTasks; ++t) {
      EXPECT_EQ(runs[t].load(), 1) << "workers=" << workers << " task " << t;
    }
  }
}

TEST(WorkStealingPoolTest, SingleWorkerRunsInlineInOrder) {
  const std::thread::id caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  bool off_thread = false;
  WorkStealingPool::Run(1, 5, [&](int worker, std::size_t t) {
    if (std::this_thread::get_id() != caller) off_thread = true;
    EXPECT_EQ(worker, 0);
    order.push_back(t);
  });
  EXPECT_FALSE(off_thread);
  ASSERT_EQ(order.size(), 5u);
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(WorkStealingPoolTest, ZeroTasksIsANoOp) {
  bool called = false;
  WorkStealingPool::Run(4, 0, [&](int, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

// Forces a steal deterministically: with 2 workers and 4 tasks the deal
// is deque0 = [0, 2], deque1 = [1, 3]. Task 0 blocks until task 2
// completes, and steals pop the BACK of the victim's deque — so worker 0
// can never reach task 2 itself (it either blocks in task 0 first, or
// worker 1 has already stolen both). Task 2 is therefore always run by
// worker 1, whatever the interleaving.
TEST(WorkStealingPoolTest, IdleWorkerStealsFromBusyVictim) {
  std::atomic<bool> task2_done(false);
  std::vector<std::atomic<int>> runner(4);
  for (auto& r : runner) r.store(-1);
  WorkStealingPool::Run(2, 4, [&](int worker, std::size_t t) {
    if (t == 0) {
      while (!task2_done.load(std::memory_order_acquire)) {
        std::this_thread::yield();
      }
    }
    runner[t].store(worker, std::memory_order_relaxed);
    if (t == 2) task2_done.store(true, std::memory_order_release);
  });
  EXPECT_EQ(runner[2].load(), 1);  // stolen while worker 0 was blocked
  for (int t = 0; t < 4; ++t) EXPECT_NE(runner[t].load(), -1);
}

TEST(WorkStealingPoolTest, NestedRunInsideATask) {
  constexpr std::size_t kOuter = 4;
  constexpr std::size_t kInner = 8;
  std::atomic<std::uint64_t> inner_runs(0);
  WorkStealingPool::Run(2, kOuter, [&](int, std::size_t) {
    WorkStealingPool::Run(2, kInner, [&](int, std::size_t) {
      inner_runs.fetch_add(1, std::memory_order_relaxed);
    });
  });
  EXPECT_EQ(inner_runs.load(), kOuter * kInner);
}

TEST(WorkStealingPoolTest, TaskExceptionPropagatesToCaller) {
  std::atomic<int> executed(0);
  EXPECT_THROW(
      WorkStealingPool::Run(2, 16,
                            [&](int, std::size_t t) {
                              if (t == 5) throw std::runtime_error("boom");
                              executed.fetch_add(1,
                                                 std::memory_order_relaxed);
                            }),
      std::runtime_error);
  // Tasks not yet started when the throw landed are skipped, never
  // double-run.
  EXPECT_LE(executed.load(), 15);
  // The pool carries no state across runs: a later Run is unaffected.
  std::atomic<int> after(0);
  EXPECT_NO_THROW(WorkStealingPool::Run(2, 8, [&](int, std::size_t) {
    after.fetch_add(1, std::memory_order_relaxed);
  }));
  EXPECT_EQ(after.load(), 8);
}

TEST(WorkStealingPoolTest, ExceptionOnInlinePathStopsRemainingTasks) {
  int executed = 0;
  EXPECT_THROW(WorkStealingPool::Run(1, 4,
                                     [&](int, std::size_t t) {
                                       if (t == 2) {
                                         throw std::runtime_error("boom");
                                       }
                                       ++executed;
                                     }),
               std::runtime_error);
  EXPECT_EQ(executed, 2);
}

TEST(WorkStealingPoolTest, ManyConcurrentThrowsSurfaceExactlyOne) {
  // Every task throws from every worker; exactly one exception must reach
  // the caller (no std::terminate, no leak of the others).
  EXPECT_THROW(WorkStealingPool::Run(4, 8,
                                     [&](int, std::size_t) {
                                       throw std::runtime_error("each");
                                     }),
               std::runtime_error);
}

}  // namespace
}  // namespace geer
