// Dispatch-order contract of the serving scheduler: when a flush cannot
// take the whole queue, batches are filled earliest-deadline-first (no
// deadline = last, ties by arrival) — a tight-deadline query is never
// stuck behind a full linger window of earlier loose ones. EdfOrder is
// the pure selection function the scheduler pops with; the integration
// test observes the reordering end-to-end through QueryResult::batch_id.

#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <vector>

#include "core/registry.h"
#include "graph/generators.h"
#include "linalg/spectral.h"
#include "serve/query_service.h"

namespace geer {
namespace {

using TimePoint = std::chrono::steady_clock::time_point;

TimePoint At(int seconds) {
  return TimePoint() + std::chrono::seconds(seconds);
}

constexpr TimePoint kNone = TimePoint::max();

TEST(ServeEdfTest, TightDeadlinesDispatchFirst) {
  //            idx:   0      1       2      3       4
  const std::vector<TimePoint> deadlines = {kNone, At(30), kNone, At(10),
                                            At(20)};
  // Full order: deadlines ascending, no-deadline entries by arrival.
  EXPECT_EQ(QueryService::EdfOrder(deadlines, 5),
            (std::vector<std::size_t>{3, 4, 1, 0, 2}));
  // A partial take picks exactly the tightest ones.
  EXPECT_EQ(QueryService::EdfOrder(deadlines, 2),
            (std::vector<std::size_t>{3, 4}));
}

TEST(ServeEdfTest, TiesBreakByArrival) {
  const std::vector<TimePoint> deadlines = {At(10), At(10), kNone, At(10)};
  EXPECT_EQ(QueryService::EdfOrder(deadlines, 3),
            (std::vector<std::size_t>{0, 1, 3}));
}

TEST(ServeEdfTest, AllLooseIsFifo) {
  const std::vector<TimePoint> deadlines = {kNone, kNone, kNone};
  EXPECT_EQ(QueryService::EdfOrder(deadlines, 3),
            (std::vector<std::size_t>{0, 1, 2}));
  EXPECT_TRUE(QueryService::EdfOrder({}, 4).empty());
}

// End-to-end: with one-query batches, a deadline-carrying query
// submitted AFTER a loose one still jumps the queue — under FIFO the
// later-submitted tight query could never dispatch first. Deterministic
// (no timing races): an epoch swap whose rebind callback blocks on a
// latch pins the scheduler thread between micro-batches; both queries
// are queued while it waits, so the first post-release pop must choose
// by deadline.
TEST(ServeEdfTest, DeadlineJumpsLooseQueueEndToEnd) {
  const Graph graph = gen::ErdosRenyi(60, 700, 3);
  ErOptions options;
  options.epsilon = 0.5;
  options.delta = 0.1;
  options.seed = 7;
  options.lambda = ComputeSpectralBounds(graph).lambda;
  auto estimator = CreateEstimator("GEER", graph, options);

  ServeOptions serve_options;
  serve_options.threads = 1;
  serve_options.max_batch_size = 1;  // one dispatch per query
  serve_options.max_linger_seconds = 0.0;
  QueryService service(*estimator, serve_options);

  // The swap's rebind runs on the scheduler thread; holding it there is
  // a legal (if unusual) use of the hook — nothing is rebound, the swap
  // just bumps the epoch.
  std::promise<void> release;
  std::shared_future<void> released = release.get_future().share();
  std::future<bool> swap =
      service.ApplyUpdates(1, [released](ErEstimator&) {
        released.wait();
        return true;
      });
  auto loose = service.Submit({5, 17});                     // no deadline
  auto tight = service.Submit({5, 23}, /*deadline=*/30.0);  // submitted last
  release.set_value();
  ASSERT_TRUE(swap.get());

  const QueryResult loose_result = loose.get();
  const QueryResult tight_result = tight.get();
  EXPECT_EQ(tight_result.status, ServeStatus::kAnswered);
  EXPECT_EQ(loose_result.status, ServeStatus::kAnswered);
  EXPECT_LT(tight_result.batch_id, loose_result.batch_id)
      << "the deadline query must be dispatched before the loose one "
         "submitted ahead of it";
  service.Shutdown();
}

}  // namespace
}  // namespace geer
