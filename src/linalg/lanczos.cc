#include "linalg/lanczos.h"

#include <algorithm>
#include <cmath>

#include "rw/rng.h"
#include "util/check.h"

namespace geer {
namespace {

// Eigenvalues of a symmetric tridiagonal matrix by bisection-free QL with
// implicit shifts (standard tql1/tql2-style routine). When `z` is
// non-null it must be the k×k identity on entry; the plane rotations are
// accumulated into it (tql2) so column j of the permuted result holds the
// eigenvector of the j-th smallest eigenvalue. The z accumulation never
// feeds back into diag/off, so the returned eigenvalues are bit-identical
// with and without it. Returns the sorted eigenvalues together with the
// sort permutation (identity when z is null — the values alone don't
// need it).
std::vector<double> TridiagonalEigenvalues(std::vector<double> diag,
                                           std::vector<double> off,
                                           Matrix* z = nullptr,
                                           std::vector<int>* perm = nullptr) {
  const int n = static_cast<int>(diag.size());
  if (n == 0) return {};
  off.push_back(0.0);  // off[i] couples i and i+1; pad.
  for (int l = 0; l < n; ++l) {
    int iter = 0;
    int m = 0;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::abs(diag[m]) + std::abs(diag[m + 1]);
        if (std::abs(off[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        GEER_CHECK_LT(iter++, 100) << "tridiagonal QL failed to converge";
        double g = (diag[l + 1] - diag[l]) / (2.0 * off[l]);
        double r = std::hypot(g, 1.0);
        g = diag[m] - diag[l] + off[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        int i = m - 1;
        for (; i >= l; --i) {
          double f = s * off[i];
          const double b = c * off[i];
          r = std::hypot(f, g);
          off[i + 1] = r;
          if (r == 0.0) {
            diag[i + 1] -= p;
            off[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = diag[i + 1] - p;
          r = (diag[i] - g) * s + 2.0 * c * b;
          p = s * r;
          diag[i + 1] = g + p;
          g = c * r - b;
          if (z != nullptr) {
            for (int k = 0; k < n; ++k) {
              f = (*z)(k, i + 1);
              (*z)(k, i + 1) = s * (*z)(k, i) + c * f;
              (*z)(k, i) = c * (*z)(k, i) - s * f;
            }
          }
        }
        if (r == 0.0 && i >= l) continue;
        diag[l] -= p;
        off[l] = g;
        off[m] = 0.0;
      }
    } while (m != l);
  }
  if (perm != nullptr) {
    perm->resize(n);
    for (int i = 0; i < n; ++i) (*perm)[i] = i;
    std::sort(perm->begin(), perm->end(),
              [&diag](int a, int b) { return diag[a] < diag[b]; });
    std::vector<double> sorted(n);
    for (int i = 0; i < n; ++i) sorted[i] = diag[(*perm)[i]];
    return sorted;
  }
  std::sort(diag.begin(), diag.end());
  return diag;
}

void OrthogonalizeAgainst(const std::vector<Vector>& basis, Vector* v) {
  for (const Vector& b : basis) {
    const double coeff = Dot(b, *v);
    Axpy(-coeff, b, v);
  }
}

}  // namespace

LanczosResult LanczosExtremeEigenvalues(
    const std::function<void(const Vector&, Vector*)>& apply,
    std::size_t dim, const std::vector<Vector>& deflate,
    const LanczosOptions& options) {
  GEER_CHECK_GT(dim, 0u);
  LanczosResult result;

  // Start vector: warm (sum of the caller's carried-over Ritz vectors,
  // deflated) when provided and usable, else the seeded random vector.
  Vector v(dim, 0.0);
  double norm = 0.0;
  if (options.warm_start != nullptr && !options.warm_start->empty()) {
    bool usable = true;
    for (const Vector& w0 : *options.warm_start) {
      if (w0.size() != dim) {
        usable = false;
        break;
      }
    }
    if (usable) {
      for (const Vector& w0 : *options.warm_start) Axpy(1.0, w0, &v);
      OrthogonalizeAgainst(deflate, &v);
      norm = Norm2(v);
      if (norm >= options.tolerance) result.warm_started = true;
    }
  }
  if (!result.warm_started) {
    // Random start vector, deflated and normalized.
    Rng rng(options.seed);
    for (double& e : v) e = rng.NextDouble() - 0.5;
    OrthogonalizeAgainst(deflate, &v);
    norm = Norm2(v);
    if (norm < options.tolerance) {
      // Deflation space covers the start vector (tiny graphs): retry once
      // with a different seed, else report the trivial subspace.
      Rng retry(options.seed + 0x51ed2700);
      for (double& e : v) e = retry.NextDouble() - 0.5;
      OrthogonalizeAgainst(deflate, &v);
      norm = Norm2(v);
      if (norm < options.tolerance) {
        result.converged = true;
        return result;
      }
    }
  }
  Scale(1.0 / norm, &v);

  std::vector<Vector> basis;
  basis.push_back(v);
  std::vector<double> alpha;
  std::vector<double> beta;
  Vector w(dim, 0.0);

  const int max_iter =
      std::min<int>(options.max_iterations, static_cast<int>(dim));
  double prev_lo = 0.0;
  double prev_hi = 0.0;
  bool have_prev_ritz = false;
  for (int j = 0; j < max_iter; ++j) {
    apply(basis.back(), &w);
    const double a = Dot(basis.back(), w);
    alpha.push_back(a);
    // w ← w − a·v_j − β_{j−1}·v_{j−1}, then fully reorthogonalize against
    // the deflation space and all previous basis vectors.
    Axpy(-a, basis.back(), &w);
    if (j > 0) Axpy(-beta.back(), basis[basis.size() - 2], &w);
    OrthogonalizeAgainst(deflate, &w);
    OrthogonalizeAgainst(basis, &w);
    const double b = Norm2(w);
    if (b < options.tolerance) {
      result.converged = true;  // Invariant subspace found: exact values.
      result.iterations = j + 1;
      break;
    }
    beta.push_back(b);
    Scale(1.0 / b, &w);
    basis.push_back(w);
    result.iterations = j + 1;
    // Stagnation early exit: once the extreme Ritz values stop moving,
    // further Krylov growth only polishes interior values the caller
    // never reads. Ritz extremes are monotone in k (Cauchy interlacing),
    // so a sub-tolerance step is a reliable convergence signal when the
    // start vector is already near the extreme eigenvectors.
    if (options.stagnation_tolerance > 0.0 && alpha.size() >= 3) {
      std::vector<double> off(beta.begin(),
                              beta.begin() + (alpha.size() - 1));
      const std::vector<double> ritz = TridiagonalEigenvalues(alpha, off);
      const double lo = ritz.front();
      const double hi = ritz.back();
      if (have_prev_ritz &&
          std::abs(hi - prev_hi) <=
              options.stagnation_tolerance * std::max(1.0, std::abs(hi)) &&
          std::abs(lo - prev_lo) <=
              options.stagnation_tolerance * std::max(1.0, std::abs(lo))) {
        result.converged = true;
        break;
      }
      prev_lo = lo;
      prev_hi = hi;
      have_prev_ritz = true;
    }
  }
  if (!alpha.empty()) {
    const int k = static_cast<int>(alpha.size());
    std::vector<double> off(beta.begin(),
                            beta.begin() + (alpha.size() - 1));
    if (options.want_ritz_vectors) {
      Matrix z(k, k, 0.0);
      for (int i = 0; i < k; ++i) z(i, i) = 1.0;
      std::vector<int> perm;
      std::vector<double> ritz =
          TridiagonalEigenvalues(alpha, off, &z, &perm);
      result.min_eigenvalue = ritz.front();
      result.max_eigenvalue = ritz.back();
      // Ritz vector = Σ_j basis_j · z(j, idx), in operator coordinates.
      const auto combine = [&](int col) {
        Vector out(dim, 0.0);
        for (int j = 0; j < k; ++j) Axpy(z(j, col), basis[j], &out);
        return out;
      };
      result.min_ritz_vector = combine(perm.front());
      result.max_ritz_vector = combine(perm.back());
    } else {
      std::vector<double> ritz = TridiagonalEigenvalues(alpha, off);
      result.min_eigenvalue = ritz.front();
      result.max_eigenvalue = ritz.back();
    }
    if (result.iterations >= max_iter) result.converged = true;
  }
  return result;
}

}  // namespace geer
