// Unit suite for the shared byte-budgeted LRU admission layer
// (src/util/lru_byte_cache.h) every session/landmark cache now sits on.
// Pins the semantics the estimators rely on: exact LRU eviction order,
// byte accounting under replace/erase/SetBytes, pin exemption from the
// budget (but not from EvictIf/Clear), zero-capacity and single-entry
// edge cases, and the monotone hit/miss/eviction counters that make
// ServeMetrics snapshots never move backwards across a graph rebind.

#include "util/lru_byte_cache.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

namespace geer {
namespace {

using Cache = LruByteCache<int, std::string>;

std::vector<int> KeysMruFirst(const Cache& cache) {
  std::vector<int> keys;
  cache.ForEach([&](int key, const std::string&) { keys.push_back(key); });
  return keys;
}

TEST(LruByteCacheTest, FindCountsHitsAndMissesAndBumpsRecency) {
  Cache cache(/*budget_bytes=*/100);
  EXPECT_EQ(cache.Find(1), nullptr);
  cache.Insert(1, "a", 10);
  cache.Insert(2, "b", 10);
  ASSERT_NE(cache.Find(1), nullptr);  // bumps 1 to MRU
  EXPECT_EQ(*cache.Find(1), "a");
  const CacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 2u);
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(KeysMruFirst(cache), (std::vector<int>{1, 2}));
}

TEST(LruByteCacheTest, PeekNeitherCountsNorReorders) {
  Cache cache(100);
  cache.Insert(1, "a", 10);
  cache.Insert(2, "b", 10);
  ASSERT_NE(cache.Peek(1), nullptr);
  EXPECT_EQ(*cache.Peek(1), "a");
  EXPECT_EQ(cache.stats().hits, 0u);
  EXPECT_EQ(cache.stats().misses, 0u);
  EXPECT_EQ(KeysMruFirst(cache), (std::vector<int>{2, 1}));
}

TEST(LruByteCacheTest, EvictsInExactLruOrder) {
  Cache cache(30);
  cache.Insert(1, "a", 10);
  cache.Insert(2, "b", 10);
  cache.Insert(3, "c", 10);
  (void)cache.Find(1);  // LRU order is now (oldest first): 2, 3, 1
  cache.Insert(4, "d", 10);
  cache.EvictOverBudget();  // 40 resident, budget 30 → drop exactly 2
  EXPECT_EQ(cache.Peek(2), nullptr);
  EXPECT_NE(cache.Peek(3), nullptr);
  cache.Insert(5, "e", 10);
  cache.EvictOverBudget();  // next victim is 3
  EXPECT_EQ(cache.Peek(3), nullptr);
  EXPECT_NE(cache.Peek(1), nullptr);
  EXPECT_EQ(cache.stats().evictions, 2u);
  EXPECT_EQ(cache.bytes(), 30u);
}

TEST(LruByteCacheTest, ByteAccountingUnderReplaceEraseAndSetBytes) {
  Cache cache(1000);
  cache.Insert(1, "a", 10);
  cache.Insert(2, "b", 20);
  EXPECT_EQ(cache.bytes(), 30u);
  cache.Insert(1, "aa", 50);  // replace re-accounts, not accumulates
  EXPECT_EQ(cache.bytes(), 70u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(*cache.Peek(1), "aa");
  cache.SetBytes(2, 5);  // payload shrank in place
  EXPECT_EQ(cache.bytes(), 55u);
  cache.SetBytes(99, 100);  // absent key: no-op
  EXPECT_EQ(cache.bytes(), 55u);
  EXPECT_TRUE(cache.Erase(1));
  EXPECT_EQ(cache.bytes(), 5u);
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_FALSE(cache.Erase(1));  // already gone
}

TEST(LruByteCacheTest, ZeroCapacityRetainsNothingAfterEviction) {
  Cache cache(/*budget_bytes=*/0);
  cache.Insert(1, "a", 10);
  // Insert never evicts — the caller may hold the returned pointer.
  EXPECT_NE(cache.Peek(1), nullptr);
  cache.EvictOverBudget();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.bytes(), 0u);
  // Zero-byte entries fit any budget, including zero.
  cache.Insert(2, "b", 0);
  cache.EvictOverBudget();
  EXPECT_NE(cache.Peek(2), nullptr);
}

TEST(LruByteCacheTest, SingleEntryLargerThanBudgetIsEvicted) {
  Cache cache(100);
  cache.Insert(1, "huge", 1000);
  EXPECT_EQ(cache.size(), 1u);
  cache.EvictOverBudget();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.stats().evictions, 1u);
}

TEST(LruByteCacheTest, PinnedEntriesAreBudgetExempt) {
  Cache cache(30);
  cache.Insert(1, "lm", 100, /*pinned=*/true);
  cache.Insert(2, "a", 10);
  cache.Insert(3, "b", 10);
  cache.Insert(4, "c", 10);
  cache.EvictOverBudget();
  // Pinned bytes don't count against the budget: the 30 unpinned bytes
  // fit, so nothing is evicted even though 130 > 30 are resident.
  EXPECT_EQ(cache.size(), 4u);
  cache.Insert(5, "d", 10);
  cache.EvictOverBudget();  // now 40 unpinned — LRU unpinned entry (2) goes
  EXPECT_EQ(cache.Peek(2), nullptr);
  EXPECT_NE(cache.Peek(1), nullptr);
  EXPECT_EQ(cache.stats().pinned, 1u);
  cache.Unpin(1);
  cache.EvictOverBudget();  // 130 resident, all unpinned → evict down to 30
  EXPECT_EQ(cache.Peek(1), nullptr);
  EXPECT_LE(cache.bytes(), 30u);
}

TEST(LruByteCacheTest, InsertKeepsPinUnlessAskedForMore) {
  Cache cache(100);
  cache.Insert(1, "lm", 10, /*pinned=*/true);
  cache.Insert(1, "lm2", 10, /*pinned=*/false);  // replace keeps the pin
  EXPECT_EQ(cache.stats().pinned, 1u);
  cache.Insert(2, "a", 10, /*pinned=*/false);
  cache.Insert(2, "a2", 10, /*pinned=*/true);  // replace may add a pin
  EXPECT_EQ(cache.stats().pinned, 2u);
}

TEST(LruByteCacheTest, GetOrCreateStartsAtZeroBytesUntilSetBytes) {
  Cache cache(100);
  bool made = false;
  std::string* v = cache.GetOrCreate(7, [&] {
    made = true;
    return std::string("fresh");
  });
  ASSERT_NE(v, nullptr);
  EXPECT_TRUE(made);
  EXPECT_EQ(cache.bytes(), 0u);
  EXPECT_EQ(cache.stats().misses, 1u);
  made = false;
  std::string* again = cache.GetOrCreate(7, [&] {
    made = true;
    return std::string("never");
  });
  EXPECT_EQ(again, v);  // list-backed: pointer stable across the hit
  EXPECT_FALSE(made);
  EXPECT_EQ(cache.stats().hits, 1u);
  cache.SetBytes(7, 42);
  EXPECT_EQ(cache.bytes(), 42u);
}

TEST(LruByteCacheTest, ValuePointersSurviveOtherInsertions) {
  Cache cache(1 << 20);
  std::string* a = cache.Insert(1, "a", 8);
  for (int k = 2; k < 200; ++k) cache.Insert(k, "x", 8);
  // std::list storage: the first entry never moved despite 198 inserts
  // (the two-endpoints-held-at-once contract the estimators rely on).
  EXPECT_EQ(*a, "a");
  EXPECT_EQ(a, cache.Peek(1));
}

TEST(LruByteCacheTest, EvictIfRemovesMatchingIncludingPinned) {
  Cache cache(1000);
  cache.Insert(1, "lm", 10, /*pinned=*/true);
  cache.Insert(2, "a", 10);
  cache.Insert(3, "b", 10);
  // Rebind-style selective invalidation: keys touching {1, 3} go, pinned
  // or not — epoch invalidation must be able to drop a stale landmark.
  const std::size_t removed = cache.EvictIf(
      [](int key, const std::string&) { return key == 1 || key == 3; });
  EXPECT_EQ(removed, 2u);
  EXPECT_EQ(cache.Peek(1), nullptr);
  EXPECT_NE(cache.Peek(2), nullptr);
  EXPECT_EQ(cache.stats().pinned, 0u);
  EXPECT_EQ(cache.bytes(), 10u);
  EXPECT_EQ(cache.stats().evictions, 2u);
}

TEST(LruByteCacheTest, ClearResetsGaugesButKeepsMonotoneCounters) {
  Cache cache(20);
  (void)cache.Find(1);  // miss
  cache.Insert(1, "a", 10, /*pinned=*/true);
  cache.Insert(2, "b", 10);
  cache.Insert(3, "c", 30);
  (void)cache.Find(2);  // hit
  cache.EvictOverBudget();
  const CacheStats before = cache.stats();
  EXPECT_GT(before.evictions, 0u);
  cache.Clear();
  const CacheStats after = cache.stats();
  // Monotone counters survive the epoch flush (ServeMetrics contract)...
  EXPECT_EQ(after.hits, before.hits);
  EXPECT_EQ(after.misses, before.misses);
  EXPECT_EQ(after.evictions, before.evictions);
  // ...while the resident gauges reset.
  EXPECT_EQ(after.bytes, 0u);
  EXPECT_EQ(after.entries, 0u);
  EXPECT_EQ(after.pinned, 0u);
  // And the cache is fully usable after the flush.
  cache.Insert(4, "d", 5);
  EXPECT_NE(cache.Find(4), nullptr);
}

TEST(LruByteCacheTest, StatsAccumulateAcrossWorkers) {
  CacheStats total;
  Cache a(100);
  Cache b(100);
  a.Insert(1, "x", 10);
  (void)a.Find(1);
  (void)b.Find(9);
  total += a.stats();
  total += b.stats();
  EXPECT_EQ(total.hits, 1u);
  EXPECT_EQ(total.misses, 1u);
  EXPECT_EQ(total.entries, 1u);
  EXPECT_EQ(total.bytes, 10u);
}

}  // namespace
}  // namespace geer
