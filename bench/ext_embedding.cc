// Extension bench: ER embedding + spectral sparsifier pipeline. No paper
// counterpart (the paper only runs RP as a single-pair baseline); this
// bench quantifies what the embedding buys as a *bulk* primitive:
//
//   table 1 — embedding build cost and per-query latency vs k;
//   table 2 — sparsifier quality/size as the sample budget shrinks
//             (the ablation DESIGN.md calls out for the sparsify module).
//
//   ./bench/ext_embedding [--n=N] [--seed=N]

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>
#include <vector>

#include "embed/er_embedding.h"
#include "graph/generators.h"
#include "linalg/laplacian_solver.h"
#include "rw/rng.h"
#include "sparsify/spectral_sparsifier.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace geer;
  NodeId n = 3000;
  std::uint64_t seed = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--n=", 4) == 0) {
      n = static_cast<NodeId>(std::atoi(argv[i] + 4));
    } else if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      seed = static_cast<std::uint64_t>(std::atoll(argv[i] + 7));
    }
  }

  Graph g = gen::BarabasiAlbert(n, 8, seed);
  std::printf("# ext_embedding: BA graph n=%u m=%llu\n\n", g.NumNodes(),
              static_cast<unsigned long long>(g.NumEdges()));

  // --- Table 1: build + query cost vs dimension k -----------------------
  std::printf("%-6s %10s %14s %14s %14s %12s\n", "k", "build ms",
              "pair query us", "single-src ms", "top-32 ms", "rel err");
  LaplacianSolver exact(g);
  Rng rng(seed ^ 77);
  for (const int k : {16, 32, 64, 128, 256}) {
    ErEmbeddingOptions opt;
    opt.dimensions = k;
    opt.seed = seed;
    Timer build;
    ErEmbedding embedding(g, opt);
    const double build_ms = build.ElapsedMillis();

    // Pair-query latency and relative error over random pairs.
    double err_sum = 0.0;
    const int pairs = 32;
    Timer pair_timer;
    double sink = 0.0;
    std::vector<std::pair<NodeId, NodeId>> qs;
    for (int i = 0; i < pairs; ++i) {
      NodeId s = static_cast<NodeId>(rng.NextBounded(n));
      NodeId t = static_cast<NodeId>(rng.NextBounded(n));
      if (s == t) t = (t + 1) % n;
      qs.emplace_back(s, t);
    }
    pair_timer.Reset();
    for (auto [s, t] : qs) sink += embedding.PairwiseEr(s, t);
    const double pair_us = pair_timer.ElapsedMillis() * 1000.0 / pairs;
    for (auto [s, t] : qs) {
      const double truth = exact.EffectiveResistance(s, t);
      err_sum += std::abs(embedding.PairwiseEr(s, t) - truth) / truth;
    }

    Timer ss_timer;
    Vector er;
    embedding.SingleSource(0, &er);
    const double ss_ms = ss_timer.ElapsedMillis();
    Timer topk_timer;
    (void)embedding.TopKNearest(0, 32);
    const double topk_ms = topk_timer.ElapsedMillis();
    std::printf("%-6d %10.0f %14.2f %14.2f %14.2f %12.4f\n", k, build_ms,
                pair_us, ss_ms, topk_ms, err_sum / pairs);
    (void)sink;
  }

  // --- Table 2: sparsifier quality vs sample budget ---------------------
  // Sparsification pays off when m ≫ n log n / ε²; use a dense ER graph so
  // the kept fraction actually drops as the budget shrinks.
  const NodeId n2 = std::max<NodeId>(n / 5, 200);
  Graph dense = gen::ErdosRenyi(n2, static_cast<std::uint64_t>(n2) * n2 / 8,
                                seed + 1);
  std::printf("\n# sparsifier input: dense ER n=%u m=%llu\n",
              dense.NumNodes(),
              static_cast<unsigned long long>(dense.NumEdges()));
  std::printf("%-12s %12s %12s %12s %12s\n", "oversample", "samples",
              "kept edges", "kept frac", "worst ratio");
  ErEmbedding dense_embedding(dense, {.dimensions = 128, .seed = seed});
  const auto edge_er = dense_embedding.AllEdgeEr();
  for (const double oversample : {2.0, 1.0, 0.5, 0.25, 0.1}) {
    SparsifierOptions sopt;
    sopt.epsilon = 1.0;
    sopt.oversample = oversample;
    sopt.seed = seed;
    WeightedGraph h = SparsifyByEffectiveResistance(dense, edge_er, sopt);
    const SparsifierQuality q = EvaluateSparsifier(dense, h, 8, seed ^ 99);
    std::printf("%-12.2f %12llu %12llu %12.3f %12.3f\n", oversample,
                static_cast<unsigned long long>(
                    SparsifierSampleCount(dense.NumNodes(), sopt)),
                static_cast<unsigned long long>(q.kept_edges),
                q.kept_fraction, q.worst_ratio);
  }
  return 0;
}
