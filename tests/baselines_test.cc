// Tests for the competitor algorithms: MC, MC2, TP, TPC, HAY, RP.

#include <gtest/gtest.h>

#include <cmath>

#include "core/hay.h"
#include "core/mc.h"
#include "core/mc2.h"
#include "core/rp.h"
#include "core/tp.h"
#include "core/tpc.h"
#include "graph/generators.h"
#include "test_util.h"

namespace geer {
namespace {

// Shared fixture graph: well-connected, non-bipartite, 16 nodes.
class BaselinesTest : public ::testing::Test {
 protected:
  void SetUp() override { graph_ = testing::DenseTestGraph(16); }
  Graph graph_;
};

TEST_F(BaselinesTest, McWithinEpsilon) {
  ErOptions opt;
  opt.epsilon = 0.2;
  opt.mc_gamma_upper = 2.0;
  McEstimator mc(graph_, opt);
  for (auto [s, t] : {std::pair<NodeId, NodeId>{0, 8}, {1, 12}}) {
    const double truth = testing::ExactEr(graph_, s, t);
    EXPECT_NEAR(mc.Estimate(s, t), truth, opt.epsilon);
  }
}

TEST_F(BaselinesTest, McSameNodeZero) {
  McEstimator mc(graph_);
  EXPECT_DOUBLE_EQ(mc.Estimate(4, 4), 0.0);
}

TEST_F(BaselinesTest, McTrialCountFormula) {
  ErOptions opt;
  opt.epsilon = 0.1;
  opt.delta = 0.01;
  opt.mc_gamma_upper = 4.0;
  McEstimator mc(graph_, opt);
  const double expected = std::ceil(3.0 * 4.0 * 6.0 * std::log(100.0) / 0.01);
  EXPECT_EQ(mc.NumTrials(6), static_cast<std::uint64_t>(expected));
}

TEST_F(BaselinesTest, Mc2EdgeQueryAccuracy) {
  ErOptions opt;
  opt.epsilon = 0.1;
  Mc2Estimator mc2(graph_, opt);
  ASSERT_TRUE(mc2.SupportsQuery(0, 1));
  const double truth = testing::ExactEr(graph_, 0, 1);
  EXPECT_NEAR(mc2.Estimate(0, 1), truth, opt.epsilon);
}

TEST_F(BaselinesTest, Mc2RejectsNonEdges) {
  Mc2Estimator mc2(graph_);
  // DenseTestGraph core is nodes 0..7 complete + ring; 0 and 9 are not
  // adjacent (9 is outside the core, ring neighbors of 0 are 1 and 15).
  ASSERT_FALSE(graph_.HasEdge(0, 9));
  EXPECT_FALSE(mc2.SupportsQuery(0, 9));
  EXPECT_FALSE(mc2.SupportsQuery(3, 3));
}

TEST_F(BaselinesTest, Mc2TrialCountUsesWorstCaseGamma) {
  ErOptions opt;
  opt.epsilon = 0.5;
  opt.delta = 0.1;
  opt.mc2_gamma_lower = 0.0;  // fall back to 1/(2m)
  Mc2Estimator mc2(graph_, opt);
  const double gamma = 1.0 / static_cast<double>(graph_.NumArcs());
  const double expected = std::ceil(3.0 * std::log(10.0) / (0.25 * gamma));
  EXPECT_EQ(mc2.NumTrials(), static_cast<std::uint64_t>(expected));
}

TEST_F(BaselinesTest, TpWithinEpsilon) {
  ErOptions opt;
  opt.epsilon = 0.3;
  opt.tp_scale = 0.002;  // keep the test fast; bound still holds easily
  TpEstimator tp(graph_, opt);
  const double truth = testing::ExactEr(graph_, 0, 9);
  EXPECT_NEAR(tp.Estimate(0, 9), truth, opt.epsilon);
}

TEST_F(BaselinesTest, TpWalkBudgetFormula) {
  ErOptions opt;
  opt.epsilon = 0.2;
  opt.delta = 0.01;
  opt.tp_scale = 1.0;
  TpEstimator tp(graph_, opt);
  const std::uint32_t ell = 10;
  const double expected =
      std::ceil(40.0 * 100.0 * std::log(8.0 * 10.0 / 0.01) / 0.04);
  EXPECT_EQ(tp.WalksPerLength(ell), static_cast<std::uint64_t>(expected));
}

TEST_F(BaselinesTest, TpSameNodeZero) {
  ErOptions opt;
  opt.tp_scale = 0.001;
  TpEstimator tp(graph_, opt);
  EXPECT_DOUBLE_EQ(tp.Estimate(5, 5), 0.0);
}

TEST_F(BaselinesTest, TpcWithinEpsilon) {
  ErOptions opt;
  opt.epsilon = 0.3;
  // The 40000× collision-sample constant makes full-scale TPC take hours
  // even here (the paper's point); a 2e-4 scale still leaves thousands of
  // samples per length, far more than needed empirically for ε = 0.3.
  opt.tpc_scale = 2e-4;
  TpcEstimator tpc(graph_, opt);
  const double truth = testing::ExactEr(graph_, 2, 11);
  EXPECT_NEAR(tpc.Estimate(2, 11), truth, opt.epsilon);
}

TEST_F(BaselinesTest, TpcBetaHeuristicBounds) {
  TpcEstimator tpc(graph_);
  // β decays with i but never below the stationary floor 1/(2m).
  const double floor = 1.0 / static_cast<double>(graph_.NumArcs());
  double prev = 1e9;
  for (std::uint32_t i = 1; i <= 20; ++i) {
    const double beta = tpc.BetaHeuristic(i, 0, 9);
    EXPECT_GE(beta, floor);
    EXPECT_LE(beta, prev + 1e-15);
    prev = beta;
  }
}

TEST_F(BaselinesTest, HayEdgeQueryAccuracy) {
  ErOptions opt;
  opt.epsilon = 0.05;
  HayEstimator hay(graph_, opt);
  ASSERT_TRUE(hay.SupportsQuery(0, 1));
  const double truth = testing::ExactEr(graph_, 0, 1);
  EXPECT_NEAR(hay.Estimate(0, 1), truth, opt.epsilon);
}

TEST_F(BaselinesTest, HayTreeCountFormula) {
  ErOptions opt;
  opt.epsilon = 0.1;
  opt.delta = 0.01;
  HayEstimator hay(graph_, opt);
  const double expected = std::ceil(std::log(200.0) / 0.02);
  EXPECT_EQ(hay.NumTrees(), static_cast<std::uint64_t>(expected));
  opt.hay_num_trees = 500;
  HayEstimator fixed(graph_, opt);
  EXPECT_EQ(fixed.NumTrees(), 500u);
}

TEST_F(BaselinesTest, HayBridgeEdgeIsOne) {
  Graph g = testing::TriangleWithTail();
  ErOptions opt;
  opt.hay_num_trees = 200;
  HayEstimator hay(g, opt);
  // Bridge (3,4) lies in every spanning tree: estimate exactly 1.
  EXPECT_DOUBLE_EQ(hay.Estimate(3, 4), 1.0);
}

TEST_F(BaselinesTest, HayRejectsNonEdges) {
  HayEstimator hay(graph_);
  EXPECT_FALSE(hay.SupportsQuery(0, 9));
}

TEST_F(BaselinesTest, RpWithinJlError) {
  ErOptions opt;
  opt.epsilon = 0.25;  // RP's guarantee is (1±ε) relative
  RpEstimator rp(graph_, opt);
  for (auto [s, t] : {std::pair<NodeId, NodeId>{0, 8}, {3, 13}}) {
    const double truth = testing::ExactEr(graph_, s, t);
    EXPECT_NEAR(rp.Estimate(s, t), truth, opt.epsilon * truth + 0.05);
  }
}

TEST_F(BaselinesTest, RpDimensionFormula) {
  ErOptions opt;
  opt.epsilon = 0.5;
  const int k = RpEstimator::DeriveDimensions(graph_, opt);
  const double expected =
      std::ceil(24.0 * std::log(static_cast<double>(graph_.NumNodes())) / 0.25);
  EXPECT_EQ(k, static_cast<int>(expected));
  opt.rp_dimensions = 64;
  EXPECT_EQ(RpEstimator::DeriveDimensions(graph_, opt), 64);
}

TEST_F(BaselinesTest, RpMemoryBudgetEnforced) {
  ErOptions opt;
  opt.epsilon = 0.01;  // k ≈ 24 ln n / 1e-4: enormous
  opt.rp_max_bytes = 1 << 20;
  EXPECT_FALSE(RpEstimator::Feasible(graph_, opt));
  opt.epsilon = 0.5;
  opt.rp_max_bytes = 64ull << 20;
  EXPECT_TRUE(RpEstimator::Feasible(graph_, opt));
}

TEST_F(BaselinesTest, RpSameNodeZero) {
  ErOptions opt;
  opt.rp_dimensions = 32;
  RpEstimator rp(graph_, opt);
  EXPECT_DOUBLE_EQ(rp.Estimate(6, 6), 0.0);
}

}  // namespace
}  // namespace geer
