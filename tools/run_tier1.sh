#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full ctest suite.
# This is the CI entry point; it exits non-zero as soon as any stage fails.
#
# Usage: tools/run_tier1.sh [--asan | --tsan] [--strict] [build-dir]
#   --asan      build and test with AddressSanitizer + UBSan
#               (default build dir then becomes "build-asan")
#   --tsan      build and test with ThreadSanitizer — the configuration
#               the batch/serve determinism suites run under in CI
#               (default build dir then becomes "build-tsan")
#   --strict    configure with -DGEER_CI_STRICT=ON (warnings are errors;
#               what the CI workflow passes)
#   build-dir   defaults to "build" (relative to the repo root)
#
# Environment:
#   JOBS          parallelism for build and ctest (default: nproc)
#   CTEST_FILTER  optional ctest -R regex; applied UNIFORMLY in every
#                 mode — plain, --asan and --tsan all honor it the same
#                 way (e.g. CTEST_FILTER='(batch|serve)_determinism' for
#                 the TSan CI job). Default runs everything.
#   GEER_NO_CCACHE  set to 1 to skip the automatic ccache compiler
#                 launcher (used whenever ccache is on PATH)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
JOBS="${JOBS:-$(nproc)}"

ASAN=0
TSAN=0
STRICT=0
BUILD_DIR=""
for arg in "$@"; do
  case "$arg" in
    --asan) ASAN=1 ;;
    --tsan) TSAN=1 ;;
    --strict) STRICT=1 ;;
    -*) echo "unknown flag: $arg" >&2; exit 2 ;;
    *) BUILD_DIR="$arg" ;;
  esac
done
if [[ "$ASAN" == 1 && "$TSAN" == 1 ]]; then
  echo "--asan and --tsan are mutually exclusive" >&2
  exit 2
fi

CMAKE_ARGS=()
if [[ "$ASAN" == 1 ]]; then
  BUILD_DIR="${BUILD_DIR:-build-asan}"
  SAN_FLAGS="-fsanitize=address,undefined -fno-sanitize-recover=all -fno-omit-frame-pointer"
  CMAKE_ARGS+=("-DCMAKE_CXX_FLAGS=${SAN_FLAGS}"
               "-DCMAKE_EXE_LINKER_FLAGS=${SAN_FLAGS}")
elif [[ "$TSAN" == 1 ]]; then
  BUILD_DIR="${BUILD_DIR:-build-tsan}"
  SAN_FLAGS="-fsanitize=thread -fno-omit-frame-pointer"
  CMAKE_ARGS+=("-DCMAKE_CXX_FLAGS=${SAN_FLAGS}"
               "-DCMAKE_EXE_LINKER_FLAGS=${SAN_FLAGS}")
else
  BUILD_DIR="${BUILD_DIR:-build}"
fi
if [[ "$STRICT" == 1 ]]; then
  CMAKE_ARGS+=("-DGEER_CI_STRICT=ON")
fi
if [[ "${GEER_NO_CCACHE:-0}" != 1 ]] && command -v ccache >/dev/null 2>&1; then
  CMAKE_ARGS+=("-DCMAKE_CXX_COMPILER_LAUNCHER=ccache")
fi

cd "$REPO_ROOT"

echo "== tier-1: configure (${BUILD_DIR}) =="
# ${arr[@]+...} guard: expanding an empty array trips `set -u` on
# bash < 4.4 (e.g. macOS /bin/bash 3.2).
cmake -B "$BUILD_DIR" -S . ${CMAKE_ARGS[@]+"${CMAKE_ARGS[@]}"}

echo "== tier-1: build (-j${JOBS}) =="
cmake --build "$BUILD_DIR" -j "$JOBS"

CTEST_ARGS=(--output-on-failure -j "$JOBS")
if [[ -n "${CTEST_FILTER:-}" ]]; then
  CTEST_ARGS+=(-R "$CTEST_FILTER")
fi

echo "== tier-1: ctest (-j${JOBS}${CTEST_FILTER:+, -R $CTEST_FILTER}) =="
# cd instead of `ctest --test-dir`: the latter needs CTest >= 3.20 while
# the build itself accepts CMake 3.16.
(cd "$BUILD_DIR" && ctest "${CTEST_ARGS[@]}")

echo "== tier-1: PASS =="
