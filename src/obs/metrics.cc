#include "obs/metrics.h"

#include <array>

#include "util/check.h"

namespace geer::obs {
namespace {

/// Registry instances get process-unique ids so the thread_local cache
/// below can never confuse a dead registry's address with a live one
/// reallocated at the same spot (tests build short-lived registries).
std::atomic<std::uint64_t> g_next_registry_id{1};

struct TlsCache {
  std::uint64_t registry_id = 0;
  void* block = nullptr;
};
thread_local TlsCache t_cache;

}  // namespace

struct Registry::ThreadBlock {
  std::array<std::atomic<std::uint64_t>, Registry::kMaxCells> cells{};
};

Registry::Registry() : id_(g_next_registry_id.fetch_add(1)) {}

Registry::~Registry() = default;

Registry& Registry::Global() {
  static Registry* registry = new Registry();  // never destroyed: worker
  return *registry;  // threads may record during static teardown
}

Registry::MetricId Registry::Counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const MetricInfo& m : metrics_) {
    if (m.name == name) {
      GEER_CHECK(!m.is_histogram)
          << "metric '" << name << "' already registered as a histogram";
      return m.base;
    }
  }
  GEER_CHECK(next_cell_ + 1 <= kMaxCells) << "metric cell budget exhausted";
  MetricInfo info;
  info.name = name;
  info.is_histogram = false;
  info.base = next_cell_;
  next_cell_ += 1;
  metrics_.push_back(std::move(info));
  return metrics_.back().base;
}

Registry::MetricId Registry::Histogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const MetricInfo& m : metrics_) {
    if (m.name == name) {
      GEER_CHECK(m.is_histogram)
          << "metric '" << name << "' already registered as a counter";
      return m.base;
    }
  }
  // Layout: kHistogramBuckets bucket cells followed by one sum cell.
  GEER_CHECK(next_cell_ + kHistogramBuckets + 1 <= kMaxCells)
      << "metric cell budget exhausted";
  MetricInfo info;
  info.name = name;
  info.is_histogram = true;
  info.base = next_cell_;
  next_cell_ += static_cast<MetricId>(kHistogramBuckets + 1);
  metrics_.push_back(std::move(info));
  return metrics_.back().base;
}

void Registry::SetGauge(const std::string& name, double value) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = value;
}

Registry::ThreadBlock* Registry::AttachCurrentThread() {
  auto block = std::make_unique<ThreadBlock>();
  ThreadBlock* raw = block.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    blocks_.push_back(std::move(block));
  }
  t_cache.registry_id = id_;
  t_cache.block = raw;
  return raw;
}

void Registry::AddSlow(MetricId counter, std::uint64_t delta) {
  ThreadBlock* block = t_cache.registry_id == id_
                           ? static_cast<ThreadBlock*>(t_cache.block)
                           : AttachCurrentThread();
  block->cells[counter].fetch_add(delta, std::memory_order_relaxed);
}

void Registry::RecordNsSlow(MetricId histogram, std::uint64_t ns) {
  ThreadBlock* block = t_cache.registry_id == id_
                           ? static_cast<ThreadBlock*>(t_cache.block)
                           : AttachCurrentThread();
  const std::size_t bucket = HistogramBucket(ns);
  block->cells[histogram + bucket].fetch_add(1, std::memory_order_relaxed);
  block->cells[histogram + kHistogramBuckets].fetch_add(
      ns, std::memory_order_relaxed);
}

std::uint64_t Registry::SumCell(MetricId cell) const {
  std::uint64_t total = 0;
  for (const auto& block : blocks_) {
    total += block->cells[cell].load(std::memory_order_relaxed);
  }
  return total;
}

StatsSnapshot Registry::Snapshot(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  StatsSnapshot out;
  for (const MetricInfo& m : metrics_) {
    if (!prefix.empty() && m.name.rfind(prefix, 0) != 0) continue;
    if (!m.is_histogram) {
      out.counters[m.name] = SumCell(m.base);
      continue;
    }
    HistogramData h;
    for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
      h.buckets[b] = SumCell(m.base + static_cast<MetricId>(b));
      h.count += h.buckets[b];
    }
    h.sum_ns = SumCell(m.base + static_cast<MetricId>(kHistogramBuckets));
    out.histograms[m.name] = std::move(h);
  }
  for (const auto& [name, value] : gauges_) {
    if (!prefix.empty() && name.rfind(prefix, 0) != 0) continue;
    out.gauges[name] = value;
  }
  return out;
}

HistogramData Registry::ReadHistogram(MetricId histogram) const {
  std::lock_guard<std::mutex> lock(mu_);
  HistogramData h;
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    h.buckets[b] = SumCell(histogram + static_cast<MetricId>(b));
    h.count += h.buckets[b];
  }
  h.sum_ns = SumCell(histogram + static_cast<MetricId>(kHistogramBuckets));
  return h;
}

}  // namespace geer::obs
