// Effective-resistance embeddings (extension module).
//
// The Spielman–Srivastava projection [62] the RP baseline uses for single
// pairs is far more useful as a reusable *embedding*: after one
// preprocessing pass (k Laplacian solves, k = O(log n / ε²)), every node
// owns a k-dimensional coordinate vector z_v with
//     r(s, t) ≈ ‖z_s − z_t‖²   (1 ± ε relative error w.h.p.)
// which turns single-source ER (one O(nk) scan), top-k most-similar-node
// queries, and bulk edge-ER sweeps (for sparsification) into dense vector
// arithmetic. This module packages that as a first-class API over both
// unweighted and weighted (conductance) graphs.

#ifndef GEER_EMBED_ER_EMBEDDING_H_
#define GEER_EMBED_ER_EMBEDDING_H_

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "graph/graph.h"
#include "linalg/dense.h"
#include "graph/weighted_graph.h"

namespace geer {

/// Options controlling embedding construction.
struct ErEmbeddingOptions {
  /// Relative error target ε; drives k = ⌈24 ln n / ε²⌉ when
  /// `dimensions` is 0.
  double epsilon = 0.3;

  /// Explicit projection dimension (0 = derive from ε). Lower values
  /// trade accuracy for memory and speed.
  int dimensions = 0;

  /// Seed for the ±1/√k projection.
  std::uint64_t seed = 1;

  /// Relative residual tolerance of the per-row Laplacian solves.
  double solve_tolerance = 1e-8;

  /// Memory cap for the n×k table; construction aborts beyond it.
  std::uint64_t max_bytes = 4ull << 30;
};

/// A (node, effective-resistance) pair returned by similarity queries.
struct ErNeighbor {
  NodeId node = 0;
  double er = 0.0;

  friend bool operator==(const ErNeighbor&, const ErNeighbor&) = default;
};

/// Immutable ER embedding of a fixed graph. Rows (node coordinates) are
/// stored contiguously, so single-source scans stream linearly.
class ErEmbedding {
 public:
  /// Embeds an unweighted graph.
  explicit ErEmbedding(const Graph& graph, ErEmbeddingOptions options = {});

  /// Embeds a weighted (conductance) graph: the projected matrix is
  /// Q W^{1/2} B L_w†, so ‖z_s − z_t‖² estimates the weighted ER.
  explicit ErEmbedding(const WeightedGraph& graph,
                       ErEmbeddingOptions options = {});

  /// Number of embedded nodes.
  NodeId NumNodes() const { return num_nodes_; }

  /// Projection dimension k.
  int Dimensions() const { return k_; }

  /// The k coordinates of node v.
  std::span<const double> Coordinates(NodeId v) const {
    GEER_DCHECK(v < num_nodes_);
    return {table_.data() + static_cast<std::size_t>(v) * k_,
            static_cast<std::size_t>(k_)};
  }

  /// Approximate r(s, t) = ‖z_s − z_t‖². O(k).
  double PairwiseEr(NodeId s, NodeId t) const;

  /// Approximate ER from `s` to every node; out[v] = r̂(s, v) (0 at s).
  /// O(nk), one linear pass over the table.
  void SingleSource(NodeId s, Vector* out) const;

  /// The `count` nodes most similar to `s` (smallest ER, excluding `s`),
  /// sorted ascending by ER with node id as tie-break. O(nk + n log c).
  std::vector<ErNeighbor> TopKNearest(NodeId s, std::size_t count) const;

  /// Approximate ER of every edge of the embedded graph, in the order of
  /// Graph::Edges(). Feeds the spectral sparsifier. O(mk).
  std::vector<double> AllEdgeEr() const;

  /// Bytes for an n×k table (pre-construction feasibility check).
  static std::uint64_t TableBytes(NodeId num_nodes, int dimensions) {
    return static_cast<std::uint64_t>(num_nodes) * dimensions *
           sizeof(double);
  }

  /// The k implied by `options` for an n-node graph.
  static int DeriveDimensions(NodeId num_nodes,
                              const ErEmbeddingOptions& options);

 private:
  // Shared core: fills table_ given the edge list (with weights) and a
  // Laplacian solve callback.
  struct EdgeRef {
    NodeId u;
    NodeId v;
    double weight;
  };
  void Build(const std::vector<EdgeRef>& edges,
             const std::function<Vector(const Vector&)>& solve,
             const ErEmbeddingOptions& options);

  NodeId num_nodes_ = 0;
  int k_ = 0;
  std::vector<EdgeRef> edges_;  // retained for AllEdgeEr()
  std::vector<double> table_;   // row-major n×k
};

}  // namespace geer

#endif  // GEER_EMBED_ER_EMBEDDING_H_
