// Weighted AMC (Alg. 1 with strengths): adaptive Monte Carlo estimation of
//   q(s,t) = Σ_{i=1}^{ℓf} Σ_v (p_i(s,v) − p_i(t,v)) (s(v)/w(s) − t(v)/w(t))
// where walks follow the weighted transition matrix (alias sampling) and
// every 1/d(·) of the unweighted analysis becomes 1/w(·). The empirical
// Bernstein machinery is unchanged: Lemma 3.3 bounds walk sums by visit
// counts, which do not depend on edge weights. Mirrors core/amc.h.

#ifndef GEER_WEIGHTED_WEIGHTED_AMC_H_
#define GEER_WEIGHTED_WEIGHTED_AMC_H_

#include "core/amc.h"
#include "core/options.h"
#include "linalg/dense.h"
#include "rw/rng.h"
#include "weighted/alias.h"
#include "weighted/weighted_estimator.h"

namespace geer {

/// The range bound ψ of Eq. (9) with strengths in place of degrees.
double WeightedAmcPsi(std::uint32_t ell_f, double max1_s, double max2_s,
                      double strength_s, double max1_t, double max2_t,
                      double strength_t);

/// Runs weighted Algorithm 1. `walker` must be built on `graph`; passing
/// it in lets GEER amortize the O(m) alias construction across queries.
AmcRunResult RunWeightedAmc(const WeightedGraph& graph,
                            const WeightedWalker& walker, NodeId s, NodeId t,
                            const Vector& svec, const Vector& tvec,
                            const AmcParams& params, Rng& rng);

/// Standalone weighted AMC: refined weighted ℓ + Alg. 1 with one-hot
/// inputs, returning r_f + 1_{s≠t}(1/w(s)+1/w(t)).
class WeightedAmcEstimator : public WeightedErEstimator {
 public:
  explicit WeightedAmcEstimator(const WeightedGraph& graph,
                                ErOptions options = {});
  // Stores a pointer to `graph`; a temporary would dangle.
  explicit WeightedAmcEstimator(WeightedGraph&&, ErOptions = {}) = delete;

  std::string Name() const override { return "W-AMC"; }
  QueryStats EstimateWithStats(NodeId s, NodeId t) override;

  double lambda() const { return lambda_; }

 private:
  const WeightedGraph* graph_;
  ErOptions options_;
  double lambda_;
  WeightedWalker walker_;
  Vector svec_;  // reusable one-hot buffers
  Vector tvec_;
};

}  // namespace geer

#endif  // GEER_WEIGHTED_WEIGHTED_AMC_H_
