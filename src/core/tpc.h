// TPC baseline [Peng et al., KDD'21]: the collision refinement of TP.
// Each length-i probability in Eq. (4) is expressed through two
// half-length walk populations using reversibility
// (p_b(v,x) = w(x) p_b(x,v)/w(v) with a = ⌈i/2⌉, b = ⌊i/2⌋, a + b = i):
//
//   p_i(x,y)/w(y) = Σ_v p_a(x,v) · p_b(y,v) / w(v),
//
// estimated by the collision statistic Σ_v cntA(v)·cntB(v)/w(v) / N².
// The per-length sample count is 40000·(ℓ√(ℓβ_i)/ε + ℓ³β_i^{3/2}/ε²)
// where β_i ≥ max{Σ_v p_i(s,v)²/w(v), Σ_v p_i(t,v)²/w(v)} is unknown in
// practice (paper §2.3.2); we use the documented heuristic
//   β_i = max(1/(2W), 2^{-i}·max(1/w(s), 1/w(t)))
// which interpolates the i=0 value toward the stationary limit 1/(2W),
// and options.tpc_scale rescales the constant. With heuristic β the
// ε-guarantee is forfeited — exactly the caveat the paper states.
//
// Perf: the four walk populations (A/B sides from s and t) are cached
// across the per-length loop. When the half-length grows from ⌈(i−1)/2⌉
// to ⌈i/2⌉ every cached walk is EXTENDED by the difference instead of
// being re-simulated from the source, so a query costs O(Σ_i η_i) steps
// instead of O(Σ_i η_i·i). The A and B populations stay mutually
// independent, which is all the collision statistic's unbiasedness needs;
// only the (already heuristic) across-length variance cancellation
// changes. Weight-generic over graph/weight_policy.h.

#ifndef GEER_CORE_TPC_H_
#define GEER_CORE_TPC_H_

#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/options.h"
#include "graph/weight_policy.h"
#include "rw/walker_policy.h"

namespace geer {

template <WeightPolicy WP>
class TpcEstimatorT : public ErEstimator {
 public:
  using GraphT = typename WP::GraphT;

  explicit TpcEstimatorT(const GraphT& graph, ErOptions options = {});
  // Stores a pointer to `graph`; a temporary would dangle.
  explicit TpcEstimatorT(GraphT&&, ErOptions = {}) = delete;

  std::string Name() const override {
    return std::string(WP::kNamePrefix) + "TPC";
  }
  QueryStats EstimateWithStats(NodeId s, NodeId t) override;

  double lambda() const { return lambda_; }

  /// The heuristic β_i used for the sample-count formula.
  double BetaHeuristic(std::uint32_t i, NodeId s, NodeId t) const;

  /// Walks per population for length i (after scaling).
  std::uint64_t WalksForLength(std::uint32_t i, std::uint32_t ell, NodeId s,
                               NodeId t) const;

 private:
  /// A cached endpoint population: ends[k] is the current endpoint of the
  /// k-th walk, all of the same current length.
  struct Population {
    std::vector<NodeId> ends;
    std::uint32_t length = 0;
  };

  /// Brings `pop` to `length` (extending every cached walk by the
  /// difference) and to `n_walks` walks (spawning fresh full-length walks
  /// or dropping surplus ones), charging the work to `stats`.
  void AdvancePopulation(Population* pop, NodeId source, std::uint32_t length,
                         std::uint64_t n_walks, Rng& rng, QueryStats* stats);

  /// Collision statistic Σ_v cntA(v)·cntB(v)/w(v) / (|a|·|b|) between two
  /// independent endpoint populations.
  double Collide(const std::vector<NodeId>& a, const std::vector<NodeId>& b);

  const GraphT* graph_;
  ErOptions options_;
  double lambda_;
  WalkerFor<WP> walker_;
  // Scratch: endpoint histograms with touched-lists, reused across calls.
  std::vector<std::uint32_t> count_a_;
  std::vector<std::uint32_t> count_b_;
  std::vector<NodeId> touched_;
};

/// The two stacks, by their historical names.
using TpcEstimator = TpcEstimatorT<UnitWeight>;
using WeightedTpcEstimator = TpcEstimatorT<EdgeWeight>;

extern template class TpcEstimatorT<UnitWeight>;
extern template class TpcEstimatorT<EdgeWeight>;

}  // namespace geer

#endif  // GEER_CORE_TPC_H_
