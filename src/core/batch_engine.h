// The batch query engine: answers a query set through an estimator's
// BatchPlan + EstimateBatch surface, optionally on a work-stealing thread
// pool, with a cooperatively enforced deadline.
//
// Determinism contract: per-query values are bit-identical to the serial
// loop `for q: estimator.Estimate(q.s, q.t)` at ANY worker count,
// including 1, and under any permutation of the input — because every
// estimator derives each query's random stream from (seed, s, t) and
// shared-precomputation overrides are content-addressed by source. What
// IS execution-dependent is the per-query cost instrumentation (shared
// work is charged to the query that triggered it) and, under a deadline,
// WHICH queries complete before the cut.

#ifndef GEER_CORE_BATCH_ENGINE_H_
#define GEER_CORE_BATCH_ENGINE_H_

#include <span>
#include <vector>

#include "core/estimator.h"

namespace geer {

/// Execution knobs for one batch run.
struct BatchOptions {
  /// Worker threads; 0 = hardware concurrency, 1 = run on the caller.
  int threads = 1;
  /// Cooperative wall-clock budget; ≤ 0 = none. At least one query is
  /// always answered; the cut granularity is one plan group.
  double deadline_seconds = 0.0;
  /// Apply the estimator's PlanBatch grouping. When false the engine
  /// schedules one group per query in input order (no sharing).
  bool use_plan = true;
};

/// Outcome of one batch run.
struct BatchReport {
  /// processed[i] == 1 iff query i was reached before any deadline cut
  /// (its stats slot is valid; zeroed if the query was unsupported).
  std::vector<std::uint8_t> processed;
  /// Number of processed queries.
  std::size_t answered = 0;
  /// False iff the deadline cut the batch short.
  bool completed = true;
  /// Workers actually used: options.threads resolved against the plan's
  /// group count (and collapsed to 1 when the estimator is not
  /// clonable).
  int workers = 1;
};

/// Runs `queries` through `estimator`, writing stats[i] for queries[i].
/// With threads > 1, workers 1… run on CloneForBatch() clones (worker 0
/// reuses `estimator`); if the estimator is not clonable the run falls
/// back to single-threaded. `stats.size() >= queries.size()`.
BatchReport RunQueryBatch(ErEstimator& estimator,
                          std::span<const QueryPair> queries,
                          std::span<QueryStats> stats,
                          const BatchOptions& options = {});

}  // namespace geer

#endif  // GEER_CORE_BATCH_ENGINE_H_
