// Jacobi-preconditioned conjugate gradient for weighted graph Laplacian
// systems L_w x = b with L_w = D_w − A_w. This is the ground-truth oracle
// for the weighted estimators: r(s,t) = (e_s − e_t)ᵀ L_w† (e_s − e_t) is
// exactly the equivalent resistance of the circuit whose edge conductances
// are the weights.

#ifndef GEER_WEIGHTED_WEIGHTED_LAPLACIAN_H_
#define GEER_WEIGHTED_WEIGHTED_LAPLACIAN_H_

#include "linalg/laplacian_solver.h"
#include "weighted/weighted_graph.h"

namespace geer {

/// Solves connected weighted-Laplacian systems; see LaplacianSolver for
/// the kernel-projection contract (b and iterates live in 𝟙^⊥).
class WeightedLaplacianSolver {
 public:
  using Options = LaplacianSolver::Options;

  explicit WeightedLaplacianSolver(const WeightedGraph& graph)
      : WeightedLaplacianSolver(graph, Options()) {}
  WeightedLaplacianSolver(const WeightedGraph& graph, Options options);
  // Stores a pointer to `graph`; a temporary would dangle.
  explicit WeightedLaplacianSolver(WeightedGraph&&) = delete;
  WeightedLaplacianSolver(WeightedGraph&&, Options) = delete;

  /// Solves L_w x = b (b projected onto 𝟙^⊥ internally).
  Vector Solve(const Vector& b, CgStats* stats = nullptr) const;

  /// Equivalent resistance between s and t of the conductance network:
  /// r(s,t) = (e_s − e_t)ᵀ L_w† (e_s − e_t).
  double EffectiveResistance(NodeId s, NodeId t,
                             CgStats* stats = nullptr) const;

  /// y ← L_w·x, dense.
  void ApplyLaplacian(const Vector& x, Vector* y) const;

 private:
  const WeightedGraph* graph_;
  Options options_;
  Vector inv_strength_;  // Jacobi preconditioner diag(D_w)^{-1}
};

}  // namespace geer

#endif  // GEER_WEIGHTED_WEIGHTED_LAPLACIAN_H_
