// Compact per-cache-entry visit filter for the walk estimators' session
// populations (TP/TPC). A population records (conservatively) every node
// whose CSR row influenced its walks; on an epoch swap, RebindGraph keeps
// exactly the entries whose filter is disjoint from epoch.touched —
// selective retention at O(|touched|) per entry instead of flushing the
// whole cache. The filter is a power-of-two bit array indexed by
// node & mask: exact for graphs up to the capacity cap, aliased above it.
// Aliasing only produces false POSITIVES (spurious intersections), so the
// failure mode is safe over-eviction, never a stale retained walk.

#ifndef GEER_UTIL_VISIT_FILTER_H_
#define GEER_UTIL_VISIT_FILTER_H_

#include <cstdint>
#include <span>
#include <vector>

#include "graph/graph.h"

namespace geer {

class VisitFilter {
 public:
  VisitFilter() = default;

  /// Sizes the filter for a graph of `num_nodes` nodes: the smallest
  /// power of two ≥ num_nodes, capped at kMaxBits (8 KiB of bits) so the
  /// per-entry overhead stays bounded on huge graphs.
  explicit VisitFilter(NodeId num_nodes) {
    std::uint64_t bits = 64;
    while (bits < num_nodes && bits < kMaxBits) bits <<= 1;
    mask_ = static_cast<std::uint32_t>(bits - 1);
    bits_.assign(bits >> 6, 0);
  }

  bool Initialized() const { return !bits_.empty(); }

  void Add(NodeId v) {
    const std::uint32_t b = v & mask_;
    bits_[b >> 6] |= 1ull << (b & 63);
  }

  bool MayContain(NodeId v) const {
    if (bits_.empty()) return false;
    const std::uint32_t b = v & mask_;
    return (bits_[b >> 6] & (1ull << (b & 63))) != 0;
  }

  /// True iff any of `nodes` may have been visited. An uninitialized
  /// filter reports true — an entry that never recorded its visits must
  /// be treated as depending on everything.
  bool Intersects(std::span<const NodeId> nodes) const {
    if (bits_.empty()) return true;
    for (const NodeId v : nodes) {
      if (MayContain(v)) return true;
    }
    return false;
  }

  std::size_t bytes() const { return bits_.size() * sizeof(std::uint64_t); }

 private:
  static constexpr std::uint64_t kMaxBits = 1ull << 16;

  std::uint32_t mask_ = 0;
  std::vector<std::uint64_t> bits_;
};

}  // namespace geer

#endif  // GEER_UTIL_VISIT_FILTER_H_
