#include "rw/alias.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "graph/weighted_generators.h"

namespace geer {
namespace {

TEST(AliasTableTest, SingleOutcomeAlwaysSampled) {
  const double w[] = {3.0};
  AliasTable table{std::span<const double>(w, 1)};
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(table.Sample(rng), 0u);
}

TEST(AliasTableTest, ZeroWeightNeverSampled) {
  const double w[] = {1.0, 0.0, 1.0};
  AliasTable table{std::span<const double>(w, 3)};
  Rng rng(2);
  for (int i = 0; i < 20000; ++i) EXPECT_NE(table.Sample(rng), 1u);
}

TEST(AliasTableTest, UniformWeightsSampleUniformly) {
  const std::vector<double> w(8, 2.5);
  AliasTable table{std::span<const double>(w)};
  Rng rng(3);
  std::vector<int> counts(8, 0);
  const int trials = 80000;
  for (int i = 0; i < trials; ++i) ++counts[table.Sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.125, 0.01);
  }
}

TEST(AliasTableTest, SkewedWeightsMatchProbabilities) {
  const std::vector<double> w = {1.0, 2.0, 4.0, 8.0, 16.0};
  const double total = 31.0;
  AliasTable table{std::span<const double>(w)};
  Rng rng(4);
  std::vector<int> counts(w.size(), 0);
  const int trials = 200000;
  for (int i = 0; i < trials; ++i) ++counts[table.Sample(rng)];
  for (std::size_t i = 0; i < w.size(); ++i) {
    const double expected = w[i] / total;
    EXPECT_NEAR(static_cast<double>(counts[i]) / trials, expected,
                5.0 * std::sqrt(expected * (1 - expected) / trials) + 1e-3)
        << "outcome " << i;
  }
}

TEST(AliasTableTest, DeterministicGivenSeed) {
  const std::vector<double> w = {0.3, 0.5, 0.2};
  AliasTable table{std::span<const double>(w)};
  std::vector<std::uint32_t> a, b;
  Rng rng_a(7), rng_b(7);
  for (int i = 0; i < 50; ++i) {
    a.push_back(table.Sample(rng_a));
    b.push_back(table.Sample(rng_b));
  }
  EXPECT_EQ(a, b);
}

TEST(AliasTableDeathTest, RejectsEmptyAndAllZero) {
  const std::vector<double> zeros = {0.0, 0.0};
  AliasTable table;
  EXPECT_DEATH(table.Build(std::span<const double>(zeros)), "positive");
}

TEST(WeightedWalkerTest, StepDistributionMatchesConductances) {
  // Node 0 with three neighbors at conductances 1:2:5.
  WeightedGraphBuilder b;
  b.AddEdge(0, 1, 1.0).AddEdge(0, 2, 2.0).AddEdge(0, 3, 5.0);
  b.AddEdge(1, 2, 1.0);  // keep it connected beyond the star
  WeightedGraph g = b.Build();
  WeightedWalker walker(g);
  Rng rng(11);
  std::vector<int> counts(4, 0);
  const int trials = 160000;
  for (int i = 0; i < trials; ++i) ++counts[walker.Step(0, rng)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(counts[1] / static_cast<double>(trials), 1.0 / 8.0, 0.008);
  EXPECT_NEAR(counts[2] / static_cast<double>(trials), 2.0 / 8.0, 0.008);
  EXPECT_NEAR(counts[3] / static_cast<double>(trials), 5.0 / 8.0, 0.008);
}

TEST(WeightedWalkerTest, UnitWeightsBehaveLikeSimpleWalk) {
  // With equal conductances every neighbor is equally likely.
  WeightedGraphBuilder b;
  for (NodeId v = 1; v <= 4; ++v) b.AddEdge(0, v, 3.0);
  WeightedGraph g = b.Build();
  WeightedWalker walker(g);
  Rng rng(13);
  std::vector<int> counts(5, 0);
  const int trials = 100000;
  for (int i = 0; i < trials; ++i) ++counts[walker.Step(0, rng)];
  for (NodeId v = 1; v <= 4; ++v) {
    EXPECT_NEAR(counts[v] / static_cast<double>(trials), 0.25, 0.01);
  }
}

TEST(WeightedWalkerTest, WalkEndpointStationaryOnStrength) {
  // Long weighted walks land on v with probability ~ w(v)/(2W).
  WeightedGraph g = gen::TriangulatedGridCircuit(4, 4, 0.5, 2.0, 17);
  WeightedWalker walker(g);
  Rng rng(19);
  std::vector<int> counts(g.NumNodes(), 0);
  const int trials = 60000;
  for (int i = 0; i < trials; ++i) {
    ++counts[walker.WalkEndpoint(0, 40, rng)];
  }
  const double two_w = 2.0 * g.TotalWeight();
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    const double expected = g.Strength(v) / two_w;
    EXPECT_NEAR(counts[v] / static_cast<double>(trials), expected,
                5.0 * std::sqrt(expected * (1 - expected) / trials) + 2e-3)
        << "node " << v;
  }
}

}  // namespace
}  // namespace geer
