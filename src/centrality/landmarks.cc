#include "centrality/landmarks.h"

#include <algorithm>
#include <numeric>

#include "util/check.h"

namespace geer {
namespace {

// Top-`count` node ids by descending score, ties by ascending id. A full
// sort keeps this trivially deterministic; selection runs once per graph
// (serve startup), never per query.
std::vector<NodeId> TopByScore(const std::vector<double>& score,
                               std::size_t count) {
  std::vector<NodeId> nodes(score.size());
  std::iota(nodes.begin(), nodes.end(), NodeId{0});
  std::stable_sort(nodes.begin(), nodes.end(), [&score](NodeId a, NodeId b) {
    if (score[a] != score[b]) return score[a] > score[b];
    return a < b;
  });
  if (count < nodes.size()) nodes.resize(count);
  return nodes;
}

}  // namespace

std::vector<NodeId> SelectLandmarks(const Graph& graph, std::size_t count) {
  std::vector<double> score(graph.NumNodes());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    score[v] = static_cast<double>(graph.Degree(v));
  }
  return TopByScore(score, count);
}

std::vector<NodeId> SelectLandmarks(const WeightedGraph& graph,
                                    std::size_t count) {
  std::vector<double> score(graph.NumNodes());
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    score[v] = graph.Strength(v);
  }
  return TopByScore(score, count);
}

std::vector<NodeId> SelectLandmarksBySpanningCentrality(
    const Graph& graph, std::size_t count,
    const SpanningCentralityOptions& options) {
  const SpanningCentrality sc = EstimateSpanningCentrality(graph, options);
  const std::vector<Edge> edges = graph.Edges();
  GEER_CHECK_EQ(edges.size(), sc.edge_er.size());
  std::vector<double> score(graph.NumNodes(), 0.0);
  for (std::size_t e = 0; e < edges.size(); ++e) {
    score[edges[e].first] += sc.edge_er[e];
    score[edges[e].second] += sc.edge_er[e];
  }
  return TopByScore(score, count);
}

}  // namespace geer
