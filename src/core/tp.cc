#include "core/tp.h"

#include <algorithm>
#include <cmath>

#include "core/ell.h"
#include "linalg/spectral.h"
#include "util/check.h"

namespace geer {
namespace {

// Domain-separation tag for TP's per-source walk streams (keeps them
// decorrelated from TPC's per-walk streams on the same seed and source).
constexpr std::uint64_t kTpStreamTag = 0x5450u;  // "TP"

}  // namespace

template <WeightPolicy WP>
std::uint32_t TpSessionCacheT<WP>::NodePopulation::Count(std::uint32_t i,
                                                         NodeId v) const {
  GEER_DCHECK(i >= 1 && i <= ell);
  for (const auto& [endpoint, count] : hist[i - 1]) {
    if (endpoint == v) return count;
  }
  return 0;
}

template <WeightPolicy WP>
TpSessionCacheT<WP>::TpSessionCacheT(std::size_t budget_bytes)
    : budget_(budget_bytes == 0 ? 64ull << 20 : budget_bytes) {}

template <WeightPolicy WP>
const typename TpSessionCacheT<WP>::NodePopulation*
TpSessionCacheT<WP>::Find(NodeId node) {
  const auto it = index_.find(node);
  if (it == index_.end()) return nullptr;
  lru_.splice(lru_.begin(), lru_, it->second);  // bump to MRU
  return &lru_.front();
}

template <WeightPolicy WP>
void TpSessionCacheT<WP>::Insert(NodePopulation pop) {
  const auto it = index_.find(pop.node);
  if (it != index_.end()) {
    bytes_ -= it->second->bytes;
    lru_.erase(it->second);
    index_.erase(it);
  }
  if (pop.bytes > budget_) return;  // larger than the whole budget
  bytes_ += pop.bytes;
  lru_.push_front(std::move(pop));
  index_[lru_.front().node] = lru_.begin();
  while (bytes_ > budget_ && lru_.size() > 1) {
    bytes_ -= lru_.back().bytes;
    index_.erase(lru_.back().node);
    lru_.pop_back();
  }
}

template <WeightPolicy WP>
void TpSessionCacheT<WP>::Clear() {
  lru_.clear();
  index_.clear();
  bytes_ = 0;
}

template <WeightPolicy WP>
TpEstimatorT<WP>::TpEstimatorT(const GraphT& graph, ErOptions options)
    : graph_(&graph), options_(options), walker_(graph) {
  ValidateOptions(options_);
  lambda_ = options_.lambda.has_value()
                ? *options_.lambda
                : ComputeSpectralBoundsT<WP>(graph).lambda;
}

template <WeightPolicy WP>
bool TpEstimatorT<WP>::RebindGraph(const GraphT& graph,
                                   const GraphEpoch& epoch) {
  graph_ = &graph;
  walker_ = WalkerFor<WP>(graph);
  lambda_ = epoch.lambda.has_value()
                ? *epoch.lambda
                : ComputeSpectralBoundsT<WP>(graph).lambda;
  // Conservative flush: populations do not track which rows their walks
  // visited, and the new λ changes ℓ/η anyway.
  if (session_ != nullptr) session_->Clear();
  hist_count_.clear();
  return true;
}

template <WeightPolicy WP>
std::uint64_t TpEstimatorT<WP>::WalksPerLength(std::uint32_t ell) const {
  if (ell == 0) return 0;
  const double l = static_cast<double>(ell);
  const double raw = 40.0 * l * l * std::log(8.0 * l / options_.delta) /
                     (options_.epsilon * options_.epsilon);
  return static_cast<std::uint64_t>(
      std::ceil(std::max(raw * options_.tp_scale, 1.0)));
}

template <WeightPolicy WP>
void TpEstimatorT<WP>::ResetHistScratch() {
  for (const NodeId v : hist_touched_) hist_count_[v] = 0;
  hist_touched_.clear();
}

template <WeightPolicy WP>
void TpEstimatorT<WP>::SimulateLength(NodeId node, std::uint32_t i,
                                      std::uint64_t eta, Rng& rng,
                                      SessionPopulation* record) {
  ResetHistScratch();
  for (std::uint64_t k = 0; k < eta; ++k) {
    const NodeId end = walker_.WalkEndpoint(node, i, rng);
    if (hist_count_[end] == 0) hist_touched_.push_back(end);
    ++hist_count_[end];
  }
  if (record != nullptr) {
    auto& row = record->hist.emplace_back();
    row.reserve(hist_touched_.size());
    // First-visit order: deterministic in the walk stream, no sort.
    for (const NodeId v : hist_touched_) row.emplace_back(v, hist_count_[v]);
  }
}

template <WeightPolicy WP>
void TpEstimatorT<WP>::SplatRow(
    const std::vector<std::pair<NodeId, std::uint32_t>>& row) {
  ResetHistScratch();
  for (const auto& [endpoint, count] : row) {
    hist_count_[endpoint] = count;
    hist_touched_.push_back(endpoint);
  }
}

template <WeightPolicy WP>
void TpEstimatorT<WP>::EstimateSourceGroup(NodeId s,
                                           std::span<const QueryPair> queries,
                                           std::span<QueryStats> stats) {
  if (session_ != nullptr) {
    EstimateSourceGroupSession(s, queries, stats);
  } else {
    EstimateSourceGroupDirect(s, queries, stats);
  }
}

// The original (session-less) hot loop: endpoint hits are counted with
// per-node target chains during the walk pass — no histogram
// maintenance on the per-walk path.
template <WeightPolicy WP>
void TpEstimatorT<WP>::EstimateSourceGroupDirect(
    NodeId s, std::span<const QueryPair> queries,
    std::span<QueryStats> stats) {
  const NodeId n = graph_->NumNodes();
  GEER_CHECK(s < n);
  const std::uint32_t ell =
      PengEll(options_.epsilon, lambda_, options_.max_ell);
  const bool truncated =
      EllWasTruncated(options_.epsilon, lambda_, 1, 1, options_.max_ell,
                      /*use_peng=*/true);
  const std::uint64_t eta = WalksPerLength(ell);
  const double inv_eta = 1.0 / static_cast<double>(eta);
  const double inv_ws = 1.0 / WP::NodeWeight(*graph_, s);
  const std::size_t m = queries.size();

  // Per-query live state; the i = 0 term of Eq. (4) seeds the estimate.
  struct QueryState {
    bool live = false;
    double inv_wt = 0.0;
    double estimate = 0.0;
    Rng rng_t{0};
  };
  std::vector<QueryState> state(m);
  if (target_head_.size() != n) target_head_.assign(n, 0);
  target_next_.assign(m, 0);
  target_touched_.clear();
  std::size_t first_live = m;
  for (std::size_t j = 0; j < m; ++j) {
    const QueryPair& q = queries[j];
    GEER_CHECK(q.s < n);
    GEER_CHECK(q.t < n);
    GEER_CHECK_EQ(q.s, s);
    stats[j] = QueryStats{};
    if (q.s == q.t) continue;  // r(v, v) = 0, zero stats like serial
    QueryState& st = state[j];
    st.live = true;
    st.inv_wt = 1.0 / WP::NodeWeight(*graph_, q.t);
    st.estimate = inv_ws + st.inv_wt;
    // The target side keeps the same per-source stream law as the shared
    // side, so (t, x) queries elsewhere in the batch reuse nothing but
    // stay bit-identical.
    st.rng_t = Rng(MixSeed(MixSeed(options_.seed, kTpStreamTag), q.t));
    stats[j].ell = ell;
    stats[j].truncated = truncated;
    // Chain query j under its target node for the shared counting pass.
    target_next_[j] = target_head_[q.t];
    target_head_[q.t] = static_cast<std::uint32_t>(j) + 1;
    target_touched_.push_back(q.t);
    if (first_live == m) first_live = j;
  }
  if (first_live == m) return;  // every query was s == t

  Rng rng_s(MixSeed(MixSeed(options_.seed, kTpStreamTag), s));
  QueryStats shared;  // source-side cost, charged to the first live query
  std::vector<std::uint64_t> count_st(m, 0);

  for (std::uint32_t i = 1; i <= ell; ++i) {
    // Source side once for the whole group: count walks ending at s and,
    // through the target chains, at every live query's t.
    std::uint64_t count_ss = 0;
    std::fill(count_st.begin(), count_st.end(), 0);
    for (std::uint64_t k = 0; k < eta; ++k) {
      const NodeId end = walker_.WalkEndpoint(s, i, rng_s);
      if (end == s) ++count_ss;
      for (std::uint32_t idx = target_head_[end]; idx != 0;
           idx = target_next_[idx - 1]) {
        ++count_st[idx - 1];
      }
    }
    shared.walks += eta;
    shared.walk_steps += eta * i;

    // Target sides per query.
    for (std::size_t j = 0; j < m; ++j) {
      QueryState& st = state[j];
      if (!st.live) continue;
      const NodeId t = queries[j].t;
      std::uint64_t count_tt = 0;
      std::uint64_t count_ts = 0;
      for (std::uint64_t k = 0; k < eta; ++k) {
        const NodeId end = walker_.WalkEndpoint(t, i, st.rng_t);
        if (end == t) ++count_tt;
        if (end == s) ++count_ts;
      }
      stats[j].walks += eta;
      stats[j].walk_steps += eta * i;
      // Eq. (4) term for length i with the empirical probabilities.
      st.estimate += (static_cast<double>(count_ss) * inv_ws +
                      static_cast<double>(count_tt) * st.inv_wt -
                      static_cast<double>(count_st[j]) * st.inv_wt -
                      static_cast<double>(count_ts) * inv_ws) *
                     inv_eta;
    }
  }

  for (std::size_t j = 0; j < m; ++j) {
    if (state[j].live) stats[j].value = state[j].estimate;
  }
  stats[first_live].walks += shared.walks;
  stats[first_live].walk_steps += shared.walk_steps;
  for (const NodeId t : target_touched_) target_head_[t] = 0;
}

// The session path: counts come from the dense histogram scratch, fed
// either by a fresh simulation (recorded into the session) or by
// splatting a retained population's row. Bit-identical to the direct
// path — the counts are the same integers either way.
template <WeightPolicy WP>
void TpEstimatorT<WP>::EstimateSourceGroupSession(
    NodeId s, std::span<const QueryPair> queries,
    std::span<QueryStats> stats) {
  const NodeId n = graph_->NumNodes();
  GEER_CHECK(s < n);
  const std::uint32_t ell =
      PengEll(options_.epsilon, lambda_, options_.max_ell);
  const bool truncated =
      EllWasTruncated(options_.epsilon, lambda_, 1, 1, options_.max_ell,
                      /*use_peng=*/true);
  const std::uint64_t eta = WalksPerLength(ell);
  const double inv_eta = 1.0 / static_cast<double>(eta);
  const double inv_ws = 1.0 / WP::NodeWeight(*graph_, s);
  const std::size_t m = queries.size();
  if (hist_count_.size() != n) {
    hist_count_.assign(n, 0);
    hist_touched_.clear();
  }

  // Per-query live state; the i = 0 term of Eq. (4) seeds the estimate.
  struct QueryState {
    bool live = false;
    double inv_wt = 0.0;
    double estimate = 0.0;
    Rng rng_t{0};
    const SessionPopulation* t_pop = nullptr;  // session hit for the target
    SessionPopulation t_rec;                   // session recorder (miss)
    bool record_t = false;
  };
  std::vector<QueryState> state(m);
  std::size_t first_live = m;
  for (std::size_t j = 0; j < m; ++j) {
    const QueryPair& q = queries[j];
    GEER_CHECK(q.s < n);
    GEER_CHECK(q.t < n);
    GEER_CHECK_EQ(q.s, s);
    stats[j] = QueryStats{};
    if (q.s == q.t) continue;  // r(v, v) = 0, zero stats like serial
    QueryState& st = state[j];
    st.live = true;
    st.inv_wt = 1.0 / WP::NodeWeight(*graph_, q.t);
    st.estimate = inv_ws + st.inv_wt;
    // The target side keeps the same per-source stream law as the shared
    // side, so one node's cached population serves both roles and stays
    // bit-identical to the serial simulation.
    st.rng_t = Rng(MixSeed(MixSeed(options_.seed, kTpStreamTag), q.t));
    stats[j].ell = ell;
    stats[j].truncated = truncated;
    st.t_pop = session_->Find(q.t);
    if (st.t_pop != nullptr) {
      GEER_DCHECK(st.t_pop->ell == ell && st.t_pop->eta == eta);
    } else {
      st.record_t = true;
      st.t_rec.node = q.t;
      st.t_rec.hist.reserve(ell);
    }
    if (first_live == m) first_live = j;
  }
  if (first_live == m) return;  // every query was s == t

  const SessionPopulation* s_pop = session_->Find(s);
  if (s_pop != nullptr) {
    GEER_DCHECK(s_pop->ell == ell && s_pop->eta == eta);
  }
  SessionPopulation s_rec;
  const bool record_s = s_pop == nullptr;
  if (record_s) {
    s_rec.node = s;
    s_rec.hist.reserve(ell);
  }

  Rng rng_s(MixSeed(MixSeed(options_.seed, kTpStreamTag), s));
  QueryStats shared;  // source-side cost, charged to the first live query
  std::vector<std::uint64_t> count_st(m, 0);

  for (std::uint32_t i = 1; i <= ell; ++i) {
    // Source side once for the whole group: the endpoint histogram of
    // the η length-i walks (simulated + recorded, or splatted from the
    // retained population) answers p̂_i(·, s) for s itself and every
    // live target. The dense scratch is reused by the target sides
    // below, so every s-side count is extracted before they run.
    if (s_pop == nullptr) {
      SimulateLength(s, i, eta, rng_s, record_s ? &s_rec : nullptr);
      shared.walks += eta;
      shared.walk_steps += eta * i;
    } else {
      SplatRow(s_pop->hist[i - 1]);
    }
    const std::uint64_t count_ss = hist_count_[s];
    for (std::size_t j = 0; j < m; ++j) {
      if (state[j].live) count_st[j] = hist_count_[queries[j].t];
    }

    // Target sides per query: a retained population answers its two
    // lookups by row scan; a miss simulates (and records).
    for (std::size_t j = 0; j < m; ++j) {
      QueryState& st = state[j];
      if (!st.live) continue;
      const NodeId t = queries[j].t;
      std::uint64_t count_tt = 0;
      std::uint64_t count_ts = 0;
      if (st.t_pop != nullptr) {
        count_tt = st.t_pop->Count(i, t);
        count_ts = st.t_pop->Count(i, s);
      } else {
        SimulateLength(t, i, eta, st.rng_t,
                       st.record_t ? &st.t_rec : nullptr);
        stats[j].walks += eta;
        stats[j].walk_steps += eta * i;
        count_tt = hist_count_[t];
        count_ts = hist_count_[s];
      }
      // Eq. (4) term for length i with the empirical probabilities.
      st.estimate += (static_cast<double>(count_ss) * inv_ws +
                      static_cast<double>(count_tt) * st.inv_wt -
                      static_cast<double>(count_st[j]) * st.inv_wt -
                      static_cast<double>(count_ts) * inv_ws) *
                     inv_eta;
    }
  }

  for (std::size_t j = 0; j < m; ++j) {
    if (state[j].live) stats[j].value = state[j].estimate;
  }
  stats[first_live].walks += shared.walks;
  stats[first_live].walk_steps += shared.walk_steps;

  // Retain the populations built this group.
  auto finalize = [ell, eta](SessionPopulation* rec) {
    rec->ell = ell;
    rec->eta = eta;
    std::size_t bytes = sizeof(SessionPopulation);
    for (const auto& row : rec->hist) {
      bytes += row.size() * sizeof(std::pair<NodeId, std::uint32_t>) +
               sizeof(row);
    }
    rec->bytes = bytes;
  };
  if (record_s) {
    finalize(&s_rec);
    session_->Insert(std::move(s_rec));
  }
  for (std::size_t j = 0; j < m; ++j) {
    if (state[j].live && state[j].record_t) {
      finalize(&state[j].t_rec);
      session_->Insert(std::move(state[j].t_rec));
    }
  }
}

template <WeightPolicy WP>
QueryStats TpEstimatorT<WP>::EstimateWithStats(NodeId s, NodeId t) {
  const QueryPair query{s, t};
  QueryStats stats;
  EstimateSourceGroup(s, std::span<const QueryPair>(&query, 1),
                      std::span<QueryStats>(&stats, 1));
  return stats;
}

template <WeightPolicy WP>
std::size_t TpEstimatorT<WP>::EstimateBatch(
    std::span<const QueryPair> queries, std::span<QueryStats> stats,
    const BatchContext& context) {
  // Groups are answered in lockstep, so a run is all-or-nothing — the
  // deadline's cut granularity is one same-source group.
  return EstimateBySourceRuns(
      queries, stats, context,
      [this, &context](NodeId s, std::span<const QueryPair> run_queries,
                       std::span<QueryStats> run_stats) {
        EstimateSourceGroup(s, run_queries, run_stats);
        context.ReportAnswered(run_queries.size());
        return run_queries.size();
      });
}

template class TpSessionCacheT<UnitWeight>;
template class TpSessionCacheT<EdgeWeight>;
template class TpEstimatorT<UnitWeight>;
template class TpEstimatorT<EdgeWeight>;

}  // namespace geer
