#include "net/partition.h"

#include <algorithm>

namespace geer::net {

std::optional<PartitionStrategy> ParseStrategy(const std::string& name) {
  if (name == "range") return PartitionStrategy::kRange;
  if (name == "hash") return PartitionStrategy::kHash;
  return std::nullopt;
}

const char* StrategyName(PartitionStrategy strategy) {
  return strategy == PartitionStrategy::kRange ? "range" : "hash";
}

PartitionMap::PartitionMap(NodeId num_nodes, int num_shards,
                           PartitionStrategy strategy)
    : num_nodes_(num_nodes),
      num_shards_(std::max(num_shards, 1)),
      strategy_(strategy) {
  const NodeId shards = static_cast<NodeId>(num_shards_);
  block_ = num_nodes_ == 0 ? 1 : (num_nodes_ + shards - 1) / shards;
  if (block_ == 0) block_ = 1;
}

int PartitionMap::ShardOf(NodeId node) const {
  if (strategy_ == PartitionStrategy::kRange) {
    const NodeId shard = node / block_;
    return static_cast<int>(
        std::min<NodeId>(shard, static_cast<NodeId>(num_shards_ - 1)));
  }
  // Fibonacci multiplicative hash on the 32-bit id: cheap, stateless,
  // and stable across platforms (no std::hash, whose spread is
  // implementation-defined).
  const std::uint32_t h = node * 2654435769u;
  return static_cast<int>(
      (static_cast<std::uint64_t>(h) * static_cast<std::uint64_t>(num_shards_)) >>
      32);
}

int PartitionMap::HomeShard(const QueryPair& pair) const {
  const int shard_s = ShardOf(pair.s);
  const int shard_t = ShardOf(pair.t);
  if (shard_s == shard_t) return shard_s;
  return ShardOf(std::min(pair.s, pair.t));
}

}  // namespace geer::net

