#include "util/format.h"

#include <cmath>
#include <cstdio>
#include <sstream>

namespace geer {

std::string FormatSig(double value, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*g", digits, value);
  return buf;
}

std::string FormatMillis(double millis) {
  char buf[64];
  if (millis < 1.0) {
    std::snprintf(buf, sizeof(buf), "%.3f ms", millis);
  } else if (millis < 1e3) {
    std::snprintf(buf, sizeof(buf), "%.2f ms", millis);
  } else if (millis < 6e4) {
    std::snprintf(buf, sizeof(buf), "%.2f s", millis / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f min", millis / 6e4);
  }
  return buf;
}

std::string FormatCount(std::int64_t value) {
  std::string raw = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = raw.rbegin(); it != raw.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (value < 0) out.push_back('-');
  return std::string(out.rbegin(), out.rend());
}

std::string Join(const std::vector<std::string>& parts,
                 const std::string& sep) {
  std::ostringstream os;
  for (std::size_t i = 0; i < parts.size(); ++i) {
    if (i != 0) os << sep;
    os << parts[i];
  }
  return os.str();
}

}  // namespace geer
