// The weight-policy layer that unifies the unweighted and weighted stacks.
//
// Every quantity in the paper (Yang & Tang, SIGMOD'23) generalizes from
// unweighted to weighted graphs by replacing the degree d(v) with the
// strength w(v) = Σ_{u∈N(v)} w(v,u) and each implicit arc weight 1 with
// w(v,u). A weight policy captures exactly that substitution as a set of
// static accessors over its graph type:
//
//   * UnitWeight  — Graph;         NodeWeight = d(v), ArcWeight ≡ 1
//   * EdgeWeight  — WeightedGraph; NodeWeight = w(v), ArcWeight = w[k]
//
// The transition operator, spectral bounds, Laplacian CG solver, random
// walkers and all estimator bodies are templates over a WeightPolicy; the
// two instantiations ARE the unweighted and weighted stacks. Because
// UnitWeight::ArcWeight is a constexpr 1.0 and its graph type has no
// weight array at all, the unit-weight instantiation compiles to the same
// weight-load-free hot path as the hand-written unweighted code it
// replaced (verified by bench/micro_kernels and bench/micro_estimators).

#ifndef GEER_GRAPH_WEIGHT_POLICY_H_
#define GEER_GRAPH_WEIGHT_POLICY_H_

#include <concepts>
#include <cstdint>

#include "graph/graph.h"
#include "graph/weighted_graph.h"

namespace geer {

/// Weight policy of the unweighted stack: every edge has conductance 1,
/// so the node weight is the degree and arc weights constant-fold away.
struct UnitWeight {
  using GraphT = Graph;

  static constexpr bool kWeighted = false;

  /// Prefix for estimator Name()s ("" → "GEER", "W-" → "W-GEER").
  static constexpr const char* kNamePrefix = "";

  /// The paper's d(v): what replaces w(v) on unweighted inputs.
  static double NodeWeight(const Graph& graph, NodeId v) {
    return static_cast<double>(graph.Degree(v));
  }

  /// Weight of the k-th CSR arc — identically 1, so generic kernels that
  /// multiply by it compile to the weight-free unweighted loop.
  static constexpr double ArcWeight(const Graph&, std::uint64_t) {
    return 1.0;
  }

  /// Σ_v NodeWeight(v) = 2m.
  static double TotalNodeWeight(const Graph& graph) {
    return static_cast<double>(graph.NumArcs());
  }

  /// Conductance of the undirected edge {u, v}; 0 if absent.
  static double EdgeConductance(const Graph& graph, NodeId u, NodeId v) {
    return graph.HasEdge(u, v) ? 1.0 : 0.0;
  }

  /// Register-friendly arc-weight view for hot kernels: a value type the
  /// compiler keeps in registers across opaque calls (vector-backed
  /// lookups would be reloaded). Indexing it yields a constexpr 1.
  struct ArcView {
    constexpr double operator[](std::uint64_t) const { return 1.0; }
  };
  static ArcView Arcs(const Graph&) { return {}; }
};

/// Weight policy of the weighted (conductance) stack.
struct EdgeWeight {
  using GraphT = WeightedGraph;

  static constexpr bool kWeighted = true;

  static constexpr const char* kNamePrefix = "W-";

  /// The strength w(v) that replaces d(v) throughout the paper's formulas.
  static double NodeWeight(const WeightedGraph& graph, NodeId v) {
    return graph.Strength(v);
  }

  /// Weight of the k-th CSR arc (parallel to NeighborArray()).
  static double ArcWeight(const WeightedGraph& graph, std::uint64_t k) {
    return graph.WeightArray()[k];
  }

  /// Σ_v w(v) = 2W.
  static double TotalNodeWeight(const WeightedGraph& graph) {
    return 2.0 * graph.TotalWeight();
  }

  static double EdgeConductance(const WeightedGraph& graph, NodeId u, NodeId v) {
    return graph.EdgeWeight(u, v);
  }

  /// Raw pointer into the CSR weight array (parallel to NeighborArray),
  /// so hot kernels index arc weights without re-loading the vector's
  /// data pointer around opaque calls.
  using ArcView = const double*;
  static ArcView Arcs(const WeightedGraph& graph) {
    return graph.WeightArray().data();
  }
};

/// The contract generic substrate code compiles against. Both stacks'
/// graph types share the CSR surface (NumNodes/Offsets/NeighborArray/…);
/// the policy adds the weight view on top.
template <typename WP>
concept WeightPolicy = requires(const typename WP::GraphT& graph, NodeId v,
                                std::uint64_t k) {
  requires std::same_as<decltype(WP::kWeighted), const bool>;
  { WP::NodeWeight(graph, v) } -> std::convertible_to<double>;
  { WP::ArcWeight(graph, k) } -> std::convertible_to<double>;
  { WP::TotalNodeWeight(graph) } -> std::convertible_to<double>;
  { WP::EdgeConductance(graph, v, v) } -> std::convertible_to<double>;
  { WP::Arcs(graph)[k] } -> std::convertible_to<double>;
  { graph.NumNodes() } -> std::convertible_to<NodeId>;
  { graph.NumArcs() } -> std::convertible_to<std::uint64_t>;
  { graph.Degree(v) } -> std::convertible_to<std::uint64_t>;
};

static_assert(WeightPolicy<UnitWeight>);
static_assert(WeightPolicy<EdgeWeight>);

}  // namespace geer

#endif  // GEER_GRAPH_WEIGHT_POLICY_H_
