#include "net/roles.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <numeric>
#include <optional>
#include <thread>

#include "eval/datasets.h"
#include "eval/experiment.h"
#include "net/client.h"
#include "net/router.h"
#include "net/shard_service.h"
#include "net/submitter.h"
#include "obs/stats.h"
#include "obs/trace.h"
#include "serve/trace.h"

namespace geer::net {
namespace {

std::optional<std::string> FlagValue(const std::string& arg,
                                     const char* key) {
  const std::string prefix = std::string(key) + "=";
  if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
  return std::nullopt;
}

std::optional<ShardAddress> ParseHostPort(const std::string& text) {
  const std::size_t colon = text.rfind(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 >= text.size()) {
    return std::nullopt;
  }
  ShardAddress addr;
  addr.host = text.substr(0, colon);
  addr.port = static_cast<std::uint16_t>(
      std::strtoul(text.c_str() + colon + 1, nullptr, 10));
  return addr;
}

bool WritePortFile(const std::string& path, std::uint16_t port) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  std::fprintf(f, "%u\n", static_cast<unsigned>(port));
  std::fclose(f);
  return true;
}

/// Blocks until `stopping()` (via poll) or the guard timeout, then makes
/// sure the server is stopped. The guard keeps a CI deployment from
/// outliving its test when the teardown signal is lost.
template <typename Server>
int ServeUntilDone(Server& server, double timeout_seconds,
                   const char* role) {
  std::atomic<bool> timed_out{false};
  std::thread watchdog([&] {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(
                timeout_seconds > 0.0 ? timeout_seconds : 3600.0));
    while (!server.stopping()) {
      if (timeout_seconds > 0.0 &&
          std::chrono::steady_clock::now() >= deadline) {
        timed_out.store(true);
        server.Stop();
        break;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  });
  server.Wait();
  watchdog.join();
  if (timed_out.load()) {
    std::fprintf(stderr, "# %s: timeout guard fired (--timeout-seconds)\n",
                 role);
  }
  return 0;
}

int NetUsage() {
  std::fprintf(
      stderr,
      "usage: geer net shard  (--dataset=NAME [--scale=F] | --graph=PATH)\n"
      "                       [--method=NAME] [--epsilon=F] [--seed=N]\n"
      "                       [--threads=N] [--batch-size=N] [--linger-ms=F]\n"
      "                       [--shard-id=N] [--num-shards=N] [--host=H]\n"
      "                       [--port=P] [--port-file=PATH]\n"
      "                       [--timeout-seconds=F] [--trace-out=PATH]\n"
      "       geer net router --shards=H:P,H:P,... [--strategy=range|hash]\n"
      "                       [--connections=N] [--no-propagate-shutdown]\n"
      "                       [--host=H] [--port=P] [--port-file=PATH]\n"
      "                       [--timeout-seconds=F]\n"
      "       geer net client --connect=H:P [--clients=K] [--queries=N]\n"
      "                       [--zipf-exp=F] [--qps=F] [--deadline-ms=F]\n"
      "                       [--seed=N] [--csv] [--shutdown]\n"
      "       geer net stats  --connect=H:P [--prefix=NAME] [--raw]\n");
  return 2;
}

}  // namespace

int RunShardRole(const std::vector<std::string>& args) {
  std::string dataset_name;
  std::string graph_path;
  double scale = 1.0;
  std::string port_file;
  std::string trace_out;
  double timeout_seconds = 0.0;
  ShardOptions options;
  for (const std::string& arg : args) {
    if (auto v = FlagValue(arg, "--dataset")) {
      dataset_name = *v;
    } else if (auto v = FlagValue(arg, "--graph")) {
      graph_path = *v;
    } else if (auto v = FlagValue(arg, "--scale")) {
      scale = std::atof(v->c_str());
    } else if (auto v = FlagValue(arg, "--method")) {
      options.method = *v;
    } else if (auto v = FlagValue(arg, "--epsilon")) {
      options.er.epsilon = std::atof(v->c_str());
    } else if (auto v = FlagValue(arg, "--delta")) {
      options.er.delta = std::atof(v->c_str());
    } else if (auto v = FlagValue(arg, "--tau")) {
      options.er.tau = std::atoi(v->c_str());
    } else if (auto v = FlagValue(arg, "--seed")) {
      options.er.seed = static_cast<std::uint64_t>(std::atoll(v->c_str()));
    } else if (auto v = FlagValue(arg, "--threads")) {
      options.serve.threads = std::atoi(v->c_str());
    } else if (auto v = FlagValue(arg, "--batch-size")) {
      options.serve.max_batch_size =
          static_cast<std::size_t>(std::atoll(v->c_str()));
    } else if (auto v = FlagValue(arg, "--linger-ms")) {
      options.serve.max_linger_seconds = std::atof(v->c_str()) / 1e3;
    } else if (auto v = FlagValue(arg, "--shard-id")) {
      options.shard_id = std::atoi(v->c_str());
    } else if (auto v = FlagValue(arg, "--num-shards")) {
      options.num_shards = std::atoi(v->c_str());
    } else if (auto v = FlagValue(arg, "--host")) {
      options.host = *v;
    } else if (auto v = FlagValue(arg, "--port")) {
      options.port = static_cast<std::uint16_t>(std::atoi(v->c_str()));
    } else if (auto v = FlagValue(arg, "--port-file")) {
      port_file = *v;
    } else if (auto v = FlagValue(arg, "--trace-out")) {
      trace_out = *v;
    } else if (auto v = FlagValue(arg, "--timeout-seconds")) {
      timeout_seconds = std::atof(v->c_str());
    } else {
      return NetUsage();
    }
  }
  std::optional<Dataset> dataset;
  if (!graph_path.empty()) {
    dataset = LoadDatasetFromFile(graph_path);
  } else if (!dataset_name.empty()) {
    dataset = MakeDataset(dataset_name, scale);
  } else {
    std::fprintf(stderr, "error: shard needs --dataset or --graph\n");
    return 2;
  }
  if (!dataset) {
    std::fprintf(stderr, "error: cannot load replica graph\n");
    return 1;
  }
  // Install the tracer BEFORE the service exists so estimator
  // construction and cache warming land in the trace too.
  std::unique_ptr<obs::Tracer> tracer;
  if (!trace_out.empty()) {
    tracer = std::make_unique<obs::Tracer>();
    obs::Tracer::Install(tracer.get());
  }
  ShardServer server(std::move(dataset->graph), options);
  std::string error;
  if (!server.Start(&error)) {
    std::fprintf(stderr, "error: shard start failed: %s\n", error.c_str());
    return 1;
  }
  if (!port_file.empty() && !WritePortFile(port_file, server.port())) {
    std::fprintf(stderr, "error: cannot write --port-file\n");
    server.Stop();
    return 1;
  }
  std::printf("# shard %d/%d serving %s on %s:%u (method=%s)\n",
              options.shard_id, options.num_shards, dataset->name.c_str(),
              options.host.c_str(), static_cast<unsigned>(server.port()),
              options.method.c_str());
  std::fflush(stdout);
  const int rc = ServeUntilDone(server, timeout_seconds, "shard");
  if (tracer != nullptr) {
    obs::Tracer::Install(nullptr);
    if (!tracer->WriteChromeTrace(trace_out)) {
      std::fprintf(stderr, "warning: cannot write --trace-out=%s\n",
                   trace_out.c_str());
    } else {
      std::fprintf(stderr, "# trace written to %s\n", trace_out.c_str());
    }
  }
  return rc;
}

int RunRouterRole(const std::vector<std::string>& args) {
  std::vector<ShardAddress> shards;
  std::string port_file;
  double timeout_seconds = 0.0;
  RouterOptions options;
  for (const std::string& arg : args) {
    if (auto v = FlagValue(arg, "--shards")) {
      std::size_t start = 0;
      while (start <= v->size()) {
        const std::size_t comma = v->find(',', start);
        const std::string item =
            v->substr(start, comma == std::string::npos ? std::string::npos
                                                        : comma - start);
        if (!item.empty()) {
          auto addr = ParseHostPort(item);
          if (!addr) {
            std::fprintf(stderr, "error: bad shard address '%s'\n",
                         item.c_str());
            return 2;
          }
          shards.push_back(*addr);
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else if (auto v = FlagValue(arg, "--strategy")) {
      auto strategy = ParseStrategy(*v);
      if (!strategy) {
        std::fprintf(stderr, "error: unknown strategy '%s'\n", v->c_str());
        return 2;
      }
      options.strategy = *strategy;
    } else if (auto v = FlagValue(arg, "--connections")) {
      options.connections_per_shard = std::atoi(v->c_str());
    } else if (auto v = FlagValue(arg, "--host")) {
      options.host = *v;
    } else if (auto v = FlagValue(arg, "--port")) {
      options.port = static_cast<std::uint16_t>(std::atoi(v->c_str()));
    } else if (auto v = FlagValue(arg, "--port-file")) {
      port_file = *v;
    } else if (auto v = FlagValue(arg, "--timeout-seconds")) {
      timeout_seconds = std::atof(v->c_str());
    } else if (arg == "--no-propagate-shutdown") {
      options.propagate_shutdown = false;
    } else {
      return NetUsage();
    }
  }
  if (shards.empty()) {
    std::fprintf(stderr, "error: router needs --shards=H:P,...\n");
    return 2;
  }
  Router router(std::move(shards), options);
  std::string error;
  if (!router.Start(&error)) {
    std::fprintf(stderr, "error: router start failed: %s\n", error.c_str());
    return 1;
  }
  if (!port_file.empty() && !WritePortFile(port_file, router.port())) {
    std::fprintf(stderr, "error: cannot write --port-file\n");
    router.Stop();
    return 1;
  }
  std::printf("# router over %d shard(s) on %s:%u (strategy=%s)\n",
              router.num_shards(), options.host.c_str(),
              static_cast<unsigned>(router.port()),
              StrategyName(options.strategy));
  std::fflush(stdout);
  return ServeUntilDone(router, timeout_seconds, "router");
}

int RunClientRole(const std::vector<std::string>& args) {
  std::string connect;
  int clients = 4;
  std::size_t num_queries = 100;
  double zipf_exponent = 0.0;
  double qps = 0.0;
  double deadline_ms = 0.0;
  std::uint64_t seed = 1;
  bool csv = false;
  bool shutdown_server = false;
  for (const std::string& arg : args) {
    if (auto v = FlagValue(arg, "--connect")) {
      connect = *v;
    } else if (auto v = FlagValue(arg, "--clients")) {
      clients = std::atoi(v->c_str());
    } else if (auto v = FlagValue(arg, "--queries")) {
      num_queries = static_cast<std::size_t>(std::atoll(v->c_str()));
    } else if (auto v = FlagValue(arg, "--zipf-exp")) {
      zipf_exponent = std::atof(v->c_str());
    } else if (auto v = FlagValue(arg, "--qps")) {
      qps = std::atof(v->c_str());
    } else if (auto v = FlagValue(arg, "--deadline-ms")) {
      deadline_ms = std::atof(v->c_str());
    } else if (auto v = FlagValue(arg, "--seed")) {
      seed = static_cast<std::uint64_t>(std::atoll(v->c_str()));
    } else if (arg == "--csv") {
      csv = true;
    } else if (arg == "--shutdown") {
      shutdown_server = true;
    } else {
      return NetUsage();
    }
  }
  auto addr = ParseHostPort(connect);
  if (!addr) {
    std::fprintf(stderr, "error: client needs --connect=HOST:PORT\n");
    return 2;
  }
  NetSubmitter submitter(addr->host, addr->port, clients);
  std::string error;
  if (!submitter.Connect(&error)) {
    std::fprintf(stderr, "error: connect failed: %s\n", error.c_str());
    return 1;
  }
  const HelloAckMsg& info = submitter.info();
  if (info.num_nodes < 2) {
    std::fprintf(stderr, "error: deployment serves a degenerate graph\n");
    return 1;
  }
  if (!csv) {
    std::printf("# connected: n=%u m=%llu epoch=%llu shards=%u\n",
                info.num_nodes,
                static_cast<unsigned long long>(info.num_edges),
                static_cast<unsigned long long>(info.epoch),
                info.num_shards);
  }
  // Node-id order doubles as the popularity ranking (registry datasets
  // ship degree-descending ids); exponent 0 degenerates to uniform.
  std::vector<NodeId> ranking(info.num_nodes);
  std::iota(ranking.begin(), ranking.end(), NodeId{0});
  const std::vector<QueryPair> queries =
      MakeZipfQueries(ranking, num_queries, zipf_exponent, seed);

  ServedWorkloadResult result;
  if (qps > 0.0) {
    const std::vector<TraceEvent> trace =
        MakeOpenLoopTrace(queries, qps, seed);
    result = RunServedWorkload(submitter, trace, deadline_ms / 1e3, true);
  } else {
    result = RunClosedLoopWorkload(submitter, queries, clients,
                                   deadline_ms / 1e3);
  }
  if (shutdown_server) {
    std::string err;
    if (!submitter.ShutdownServer(&err)) {
      std::fprintf(stderr, "warning: shutdown request failed: %s\n",
                   err.c_str());
    }
  }
  submitter.Close();

  if (csv) {
    std::printf(
        "mode,clients,queries,answered,failed,throughput_qps,p50_ms,p95_ms,"
        "p99_ms\n");
    std::printf("%s,%d,%zu,%zu,%zu,%.1f,%.3f,%.3f,%.3f\n",
                qps > 0.0 ? "open" : "closed", clients, result.num_events,
                result.answered, result.failed, result.throughput_qps,
                result.p50_ms, result.p95_ms, result.p99_ms);
  } else {
    std::printf(
        "# %s-loop: %zu/%zu answered in %.1f ms: p50=%.2f p95=%.2f "
        "p99=%.2f ms, %.0f q/s, clients=%d%s\n",
        qps > 0.0 ? "open" : "closed", result.answered, result.num_events,
        result.wall_seconds * 1e3, result.p50_ms, result.p95_ms,
        result.p99_ms, result.throughput_qps, clients,
        result.failed > 0 ? " — some FAILED" : "");
  }
  return result.failed > 0 ? 1 : 0;
}

int RunStatsRole(const std::vector<std::string>& args) {
  std::string connect;
  std::string prefix;
  bool raw = false;
  for (const std::string& arg : args) {
    if (auto v = FlagValue(arg, "--connect")) {
      connect = *v;
    } else if (auto v = FlagValue(arg, "--prefix")) {
      prefix = *v;
    } else if (arg == "--raw") {
      raw = true;
    } else {
      return NetUsage();
    }
  }
  auto addr = ParseHostPort(connect);
  if (!addr) {
    std::fprintf(stderr, "error: stats needs --connect=HOST:PORT\n");
    return 2;
  }
  Client client;
  std::string error;
  if (!client.Connect(addr->host, addr->port, &error)) {
    std::fprintf(stderr, "error: connect failed: %s\n", error.c_str());
    return 1;
  }
  StatsRequestMsg request;
  request.prefix = prefix;
  StatsReplyMsg reply;
  if (!client.Stats(request, &reply, &error)) {
    std::fprintf(stderr, "error: stats scrape failed: %s\n", error.c_str());
    return 1;
  }
  client.Close();
  if (!raw) {
    std::printf("# stats from %s:%u: shards=%u counters=%zu gauges=%zu "
                "histograms=%zu\n",
                addr->host.c_str(), static_cast<unsigned>(addr->port),
                reply.num_shards, reply.snapshot.counters.size(),
                reply.snapshot.gauges.size(),
                reply.snapshot.histograms.size());
  }
  std::fputs(obs::RenderPrometheusText(reply.snapshot).c_str(), stdout);
  if (!raw) {
    // Human summary per latency series, in ms (the exposition text above
    // is in ns, the recording unit).
    for (const auto& [name, h] : reply.snapshot.histograms) {
      if (h.count == 0) continue;
      std::printf("# %s: count=%llu mean=%.3fms p50=%.3fms p95=%.3fms "
                  "p99=%.3fms\n",
                  name.c_str(), static_cast<unsigned long long>(h.count),
                  static_cast<double>(h.sum_ns) /
                      static_cast<double>(h.count) / 1e6,
                  obs::HistogramQuantile(h, 0.5) / 1e6,
                  obs::HistogramQuantile(h, 0.95) / 1e6,
                  obs::HistogramQuantile(h, 0.99) / 1e6);
    }
  }
  return 0;
}

int RunNetCommand(const std::vector<std::string>& args) {
  if (args.empty()) return NetUsage();
  const std::string role = args[0];
  const std::vector<std::string> rest(args.begin() + 1, args.end());
  if (role == "shard") return RunShardRole(rest);
  if (role == "router") return RunRouterRole(rest);
  if (role == "client") return RunClientRole(rest);
  if (role == "stats") return RunStatsRole(rest);
  return NetUsage();
}

}  // namespace geer::net
