#include "rw/walker.h"

#include <gtest/gtest.h>

#include <vector>

#include "graph/generators.h"
#include "test_util.h"

namespace geer {
namespace {

TEST(WalkerTest, StepStaysOnNeighbors) {
  Graph g = testing::TriangleWithTail();
  Walker walker(g);
  Rng rng(1);
  for (int i = 0; i < 200; ++i) {
    const NodeId next = walker.Step(2, rng);
    EXPECT_TRUE(g.HasEdge(2, next));
  }
}

TEST(WalkerTest, StepIsUniformOverNeighbors) {
  Graph g = gen::Star(5);  // hub 0 with leaves 1..4
  Walker walker(g);
  Rng rng(2);
  std::vector<int> counts(5, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[walker.Step(0, rng)];
  for (NodeId leaf = 1; leaf < 5; ++leaf) {
    EXPECT_NEAR(counts[leaf], n / 4, 400);
  }
}

TEST(WalkerTest, WalkEndpointZeroLengthIsSource) {
  Graph g = gen::Cycle(5);
  Walker walker(g);
  Rng rng(3);
  EXPECT_EQ(walker.WalkEndpoint(2, 0, rng), 2u);
}

TEST(WalkerTest, WalkPathHasRequestedLength) {
  Graph g = gen::Cycle(7);
  Walker walker(g);
  Rng rng(4);
  std::vector<NodeId> path;
  walker.WalkPath(3, 10, rng, &path);
  ASSERT_EQ(path.size(), 10u);
  // Consecutive nodes adjacent; first node adjacent to source.
  EXPECT_TRUE(g.HasEdge(3, path[0]));
  for (std::size_t i = 1; i < path.size(); ++i) {
    EXPECT_TRUE(g.HasEdge(path[i - 1], path[i]));
  }
}

TEST(WalkerTest, WalkDistributionMatchesTransitionPower) {
  // Empirical endpoint distribution of length-2 walks from node 0 on the
  // triangle-with-tail graph vs exact p_2(0, ·).
  Graph g = testing::TriangleWithTail();
  Walker walker(g);
  Rng rng(5);
  std::vector<int> counts(g.NumNodes(), 0);
  const int n = 200000;
  for (int i = 0; i < n; ++i) ++counts[walker.WalkEndpoint(0, 2, rng)];
  // p_2(0,·): from 0 → {1,2} each 1/2; then from 1 → {0,2}/2,
  // from 2 → {0,1,3}/3. p_2(0,0)=1/4+1/6, p_2(0,1)=1/6, p_2(0,2)=1/4,
  // p_2(0,3)=1/6.
  const double expected[5] = {1.0 / 4 + 1.0 / 6, 1.0 / 6, 1.0 / 4, 1.0 / 6,
                              0.0};
  for (NodeId v = 0; v < 5; ++v) {
    EXPECT_NEAR(counts[v] / static_cast<double>(n), expected[v], 0.005)
        << "node " << v;
  }
}

TEST(WalkerTest, EscapeTrialProbabilityMatchesTheory) {
  // Pr[hit t before returning to s] = 1/(d(s)·r(s,t)).
  Graph g = testing::DenseTestGraph(12);
  const NodeId s = 0;
  const NodeId t = 7;
  const double r = testing::ExactEr(g, s, t);
  const double p_escape = 1.0 / (static_cast<double>(g.Degree(s)) * r);
  Walker walker(g);
  Rng rng(6);
  const int n = 150000;
  int hits = 0;
  for (int i = 0; i < n; ++i) {
    if (walker.EscapeTrial(s, t, 1u << 20, rng) ==
        Walker::Absorption::kHitTarget) {
      ++hits;
    }
  }
  EXPECT_NEAR(hits / static_cast<double>(n), p_escape, 0.01);
}

TEST(WalkerTest, EscapeTrialStepLimit) {
  Graph g = gen::Path(50);
  Walker walker(g);
  Rng rng(7);
  int limited = 0;
  for (int i = 0; i < 50; ++i) {
    if (walker.EscapeTrial(0, 49, 3, rng) ==
        Walker::Absorption::kStepLimit) {
      ++limited;
    }
  }
  EXPECT_GT(limited, 0);  // can't reach node 49 in 3 steps
}

TEST(WalkerTest, FirstVisitProbabilityEqualsEdgeEr) {
  // For (s,t) ∈ E: Pr[first visit to t uses edge (s,t)] = r(s,t).
  Graph g = testing::DenseTestGraph(12);
  const NodeId s = 0;
  const NodeId t = 1;
  ASSERT_TRUE(g.HasEdge(s, t));
  const double r = testing::ExactEr(g, s, t);
  Walker walker(g);
  Rng rng(8);
  const int n = 150000;
  int direct = 0;
  for (int i = 0; i < n; ++i) {
    const auto trial = walker.FirstVisitTrial(s, t, 1u << 20, rng);
    ASSERT_TRUE(trial.hit);
    if (trial.used_direct_edge) ++direct;
  }
  EXPECT_NEAR(direct / static_cast<double>(n), r, 0.01);
}

}  // namespace
}  // namespace geer
