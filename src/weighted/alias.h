// Compatibility shim: AliasTable/WeightedWalker moved into the rw layer
// when the stacks were unified behind the weight-policy API (see
// graph/weight_policy.h). Include "rw/alias.h" directly.

#ifndef GEER_WEIGHTED_ALIAS_SHIM_H_
#define GEER_WEIGHTED_ALIAS_SHIM_H_

#include "rw/alias.h"

#endif  // GEER_WEIGHTED_ALIAS_SHIM_H_
