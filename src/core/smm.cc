#include "core/smm.h"

#include <algorithm>
#include <optional>

#include "core/ell.h"
#include "util/check.h"

namespace geer {

template <WeightPolicy WP>
SmmSessionCacheT<WP>::SmmSessionCacheT(const GraphT& graph,
                                       TransitionOperatorT<WP>* op,
                                       std::size_t budget_bytes)
    : graph_(&graph), op_(op) {
  constexpr std::size_t kDefaultBudgetBytes = 64ull << 20;
  if (budget_bytes == 0) budget_bytes = kDefaultBudgetBytes;
  const std::uint64_t per_iterate =
      static_cast<std::uint64_t>(graph.NumNodes()) * sizeof(double);
  const std::uint64_t derived =
      (budget_bytes / kMaxSources) / std::max<std::uint64_t>(per_iterate, 1);
  // Floor of 2 so there is always something to share (the one-shot
  // SmmSourceCacheT applies the same floor against its own budget).
  per_source_cap_ = static_cast<std::uint32_t>(
      std::clamp<std::uint64_t>(derived, 2, 1u << 20));
}

template <WeightPolicy WP>
void SmmSessionCacheT<WP>::Rebind(const GraphT& graph,
                                  const GraphEpoch& epoch) {
  graph_ = &graph;
  if (epoch.resized) {
    caches_.clear();  // dense iterates are sized to the old node count
    return;
  }
  caches_.remove_if([&epoch](const SmmSourceCacheT<WP>& cache) {
    return cache.DependsOn(epoch.touched);
  });
}

template <WeightPolicy WP>
SmmSourceCacheT<WP>* SmmSessionCacheT<WP>::CacheFor(NodeId source) {
  for (auto it = caches_.begin(); it != caches_.end(); ++it) {
    if (it->source() == source) {
      caches_.splice(caches_.begin(), caches_, it);  // bump to MRU
      return &caches_.front();
    }
  }
  if (caches_.size() >= kMaxSources) caches_.pop_back();
  caches_.emplace_front(*graph_, op_, source, per_source_cap_);
  return &caches_.front();
}

template <WeightPolicy WP>
SmmSourceCacheT<WP>::SmmSourceCacheT(const GraphT& graph,
                                     TransitionOperatorT<WP>* op,
                                     NodeId source, std::uint32_t max_cached)
    : source_(source), op_(op) {
  GEER_CHECK(source < graph.NumNodes());
  if (max_cached > 0) {
    max_cached_ = max_cached;
  } else {
    // ~256 MB of cached dense iterates: deep enough for every ℓ_b that
    // arises on graphs small enough for the cache to be cheap, and a
    // hard bound on the ones where it would not be (the floor is 2 so
    // there is always SOMETHING to share — never enough to break the
    // byte budget by more than one iterate).
    constexpr std::uint64_t kMaxCachedBytes = 256ull << 20;
    const std::uint64_t per_iterate =
        static_cast<std::uint64_t>(graph.NumNodes()) * sizeof(double);
    const std::uint64_t derived = kMaxCachedBytes / std::max<std::uint64_t>(
                                                        per_iterate, 1);
    max_cached_ = static_cast<std::uint32_t>(
        std::clamp<std::uint64_t>(derived, 2, 1u << 20));
  }
  live_.InitOneHot(source, graph);
  iterates_.push_back(live_.values);
  support_costs_.push_back(live_.support_degree_sum);
  dep_mark_.assign(graph.NumNodes(), 0);
  AbsorbSupport();
}

template <WeightPolicy WP>
void SmmSourceCacheT<WP>::AbsorbSupport() {
  if (live_.dense) {
    dep_dense_ = true;  // support tracking stopped; dependency unknown
    return;
  }
  for (const NodeId v : live_.support) dep_mark_[v] = 1;
}

template <WeightPolicy WP>
bool SmmSourceCacheT<WP>::DependsOn(std::span<const NodeId> touched) const {
  if (dep_dense_) return true;
  for (const NodeId v : touched) {
    if (v < dep_mark_.size() && dep_mark_[v] != 0) return true;
  }
  return false;
}

template <WeightPolicy WP>
void SmmSourceCacheT<WP>::EnsureIterations(std::uint32_t j,
                                           std::uint64_t* fresh_ops) {
  const std::uint32_t target = std::min(j, max_cached_);
  while (iterates_.size() <= target) {
    *fresh_ops += op_->ApplyAuto(&live_);
    iterates_.push_back(live_.values);
    support_costs_.push_back(live_.support_degree_sum);
    AbsorbSupport();
  }
}

template <WeightPolicy WP>
SmmIteratorT<WP>::SmmIteratorT(const GraphT& graph,
                               TransitionOperatorT<WP>* op, NodeId s,
                               NodeId t, SmmSourceCacheT<WP>* s_cache)
    : graph_(&graph), op_(op), s_(s), t_(t), s_cache_(s_cache) {
  GEER_CHECK(s < graph.NumNodes());
  GEER_CHECK(t < graph.NumNodes());
  inv_ws_ = 1.0 / WP::NodeWeight(graph, s);
  inv_wt_ = 1.0 / WP::NodeWeight(graph, t);
  if (s_cache_ != nullptr) {
    GEER_CHECK_EQ(s_cache_->source(), s);
  } else {
    s_vec_.InitOneHot(s, graph);
  }
  t_vec_.InitOneHot(t, graph);
  // i = 0 term of Eq. (4): p_0(s,s)/w(s) + p_0(t,t)/w(t)
  //                        − p_0(s,t)/w(s) − p_0(t,s)/w(t).
  const Vector& sv = svec();
  rb_ = sv[s_] * inv_ws_ + t_vec_.values[t_] * inv_wt_ -
        sv[t_] * inv_ws_ - t_vec_.values[s_] * inv_wt_;
}

template <WeightPolicy WP>
void SmmIteratorT<WP>::Advance() {
  if (ReadsCache() &&
      iterations_ + 1 > s_cache_->max_cached_iterations()) {
    // Past the cache's memory cap: continue on a private copy of the
    // boundary state. The copy is the exact live state a serial query
    // would hold at this depth, so the remaining iteration stays
    // bit-identical — it just stops being shared.
    s_vec_ = s_cache_->BoundaryState();
    spilled_ = true;
  }
  if (ReadsCache()) {
    // Only freshly materialized cache steps cost anything — the point of
    // same-source sharing. The cached vector is produced by the same
    // ApplyAuto sequence the uncached path runs, so rb stays
    // bit-identical.
    std::uint64_t fresh = 0;
    s_cache_->EnsureIterations(iterations_ + 1, &fresh);
    spmv_ops_ += fresh;
  } else {
    spmv_ops_ += op_->ApplyAuto(&s_vec_);
  }
  spmv_ops_ += op_->ApplyAuto(&t_vec_);
  ++iterations_;
  const Vector& sv = svec();
  rb_ += sv[s_] * inv_ws_ + t_vec_.values[t_] * inv_wt_ -
         sv[t_] * inv_ws_ - t_vec_.values[s_] * inv_wt_;
}

template <WeightPolicy WP>
SmmEstimatorT<WP>::SmmEstimatorT(const GraphT& graph, ErOptions options)
    : graph_(&graph), options_(options), op_(graph) {
  ValidateOptions(options_);
  lambda_ = options_.lambda.has_value()
                ? *options_.lambda
                : ComputeSpectralBoundsT<WP>(graph).lambda;
}

template <WeightPolicy WP>
bool SmmEstimatorT<WP>::RebindGraph(const GraphT& graph,
                                    const GraphEpoch& epoch) {
  graph_ = &graph;
  op_ = TransitionOperatorT<WP>(graph);  // member address is stable, so
                                         // retained caches keep their op_
  lambda_ = epoch.lambda.has_value()
                ? *epoch.lambda
                : ComputeSpectralBoundsT<WP>(graph).lambda;
  if (session_ != nullptr) session_->Rebind(graph, epoch);
  return true;
}

template <WeightPolicy WP>
QueryStats SmmEstimatorT<WP>::EstimateWithCache(
    NodeId s, NodeId t, SmmSourceCacheT<WP>* s_cache) {
  QueryStats stats;
  if (s == t) return stats;
  const double ws = WP::NodeWeight(*graph_, s);
  const double wt = WP::NodeWeight(*graph_, t);
  std::uint32_t ell;
  if (options_.smm_iterations > 0) {
    ell = options_.smm_iterations;
  } else if (options_.use_peng_ell) {
    ell = PengEll(options_.epsilon, lambda_, options_.max_ell);
    stats.truncated = EllWasTruncated(options_.epsilon, lambda_, 1, 1,
                                      options_.max_ell, /*use_peng=*/true);
  } else {
    ell = RefinedEllWeighted(options_.epsilon, lambda_, ws, wt,
                             options_.max_ell);
    stats.truncated = EllWasTruncated(options_.epsilon, lambda_, ws, wt,
                                      options_.max_ell, /*use_peng=*/false);
  }
  SmmIteratorT<WP> iter(*graph_, &op_, s, t, s_cache);
  for (std::uint32_t i = 0; i < ell; ++i) iter.Advance();
  stats.value = iter.rb();
  stats.ell = ell;
  stats.ell_b = iter.iterations();
  stats.spmv_ops = iter.spmv_ops();
  return stats;
}

template <WeightPolicy WP>
QueryStats SmmEstimatorT<WP>::EstimateWithStats(NodeId s, NodeId t) {
  GEER_CHECK(s < graph_->NumNodes());
  GEER_CHECK(t < graph_->NumNodes());
  return EstimateWithCache(s, t, nullptr);
}

template <WeightPolicy WP>
std::size_t SmmEstimatorT<WP>::EstimateBatch(
    std::span<const QueryPair> queries, std::span<QueryStats> stats,
    const BatchContext& context) {
  // One iterate cache per same-source run — retained across calls when a
  // session is enabled, rebuilt per run otherwise. Queries answer one at
  // a time against it, so the deadline can cut inside a run.
  return EstimateBySourceRuns(
      queries, stats, context,
      [this, &context](NodeId s, std::span<const QueryPair> run_queries,
                       std::span<QueryStats> run_stats) -> std::size_t {
        std::optional<SmmSourceCacheT<WP>> local;
        SmmSourceCacheT<WP>* cache;
        if (session_ != nullptr) {
          cache = session_->CacheFor(s);
        } else {
          local.emplace(*graph_, &op_, s);
          cache = &*local;
        }
        for (std::size_t k = 0; k < run_queries.size(); ++k) {
          if (context.Cancelled()) return k;
          const QueryPair& q = run_queries[k];
          GEER_CHECK(q.t < graph_->NumNodes());
          run_stats[k] = EstimateWithCache(q.s, q.t, cache);
          context.ReportAnswered();
        }
        return run_queries.size();
      });
}

template class SmmSourceCacheT<UnitWeight>;
template class SmmSourceCacheT<EdgeWeight>;
template class SmmSessionCacheT<UnitWeight>;
template class SmmSessionCacheT<EdgeWeight>;
template class SmmIteratorT<UnitWeight>;
template class SmmIteratorT<EdgeWeight>;
template class SmmEstimatorT<UnitWeight>;
template class SmmEstimatorT<EdgeWeight>;

}  // namespace geer
