#include "linalg/cholesky.h"

#include <cmath>

namespace geer {

std::optional<CholeskyFactor> CholeskyFactor::Factorize(const Matrix& m) {
  GEER_CHECK_EQ(m.Rows(), m.Cols());
  const std::size_t n = m.Rows();
  Matrix l(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    double diag = m(j, j);
    for (std::size_t k = 0; k < j; ++k) diag -= l(j, k) * l(j, k);
    if (diag <= 0.0 || !std::isfinite(diag)) return std::nullopt;
    const double pivot = std::sqrt(diag);
    l(j, j) = pivot;
    for (std::size_t i = j + 1; i < n; ++i) {
      double acc = m(i, j);
      const double* li = l.Row(i);
      const double* lj = l.Row(j);
      for (std::size_t k = 0; k < j; ++k) acc -= li[k] * lj[k];
      l(i, j) = acc / pivot;
    }
  }
  return CholeskyFactor(std::move(l));
}

void CholeskyFactor::RankOneUpdate(const Vector& x) {
  const std::size_t n = Dim();
  GEER_CHECK_EQ(x.size(), n);
  Vector w = x;
  std::size_t start = 0;
  while (start < n && w[start] == 0.0) ++start;  // sparse prefix skip
  for (std::size_t k = start; k < n; ++k) {
    const double lkk = l_(k, k);
    const double r = std::hypot(lkk, w[k]);
    const double c = r / lkk;
    const double s = w[k] / lkk;
    l_(k, k) = r;
    for (std::size_t i = k + 1; i < n; ++i) {
      l_(i, k) = (l_(i, k) + s * w[i]) / c;
      w[i] = c * w[i] - s * l_(i, k);
    }
  }
}

bool CholeskyFactor::RankOneDowndate(const Vector& x) {
  const std::size_t n = Dim();
  GEER_CHECK_EQ(x.size(), n);
  Vector w = x;
  std::size_t start = 0;
  while (start < n && w[start] == 0.0) ++start;
  for (std::size_t k = start; k < n; ++k) {
    const double lkk = l_(k, k);
    const double r2 = lkk * lkk - w[k] * w[k];
    if (r2 <= 0.0 || !std::isfinite(r2)) return false;
    const double r = std::sqrt(r2);
    const double c = r / lkk;
    const double s = w[k] / lkk;
    l_(k, k) = r;
    for (std::size_t i = k + 1; i < n; ++i) {
      l_(i, k) = (l_(i, k) - s * w[i]) / c;
      w[i] = c * w[i] - s * l_(i, k);
    }
  }
  return true;
}

Vector CholeskyFactor::Solve(const Vector& b) const {
  const std::size_t n = Dim();
  GEER_CHECK_EQ(b.size(), n);
  // Forward: L y = b.
  Vector y(n, 0.0);
  for (std::size_t i = 0; i < n; ++i) {
    double acc = b[i];
    const double* li = l_.Row(i);
    for (std::size_t k = 0; k < i; ++k) acc -= li[k] * y[k];
    y[i] = acc / li[i];
  }
  // Backward: Lᵀ x = y.
  Vector x(n, 0.0);
  for (std::size_t ii = n; ii-- > 0;) {
    double acc = y[ii];
    for (std::size_t k = ii + 1; k < n; ++k) acc -= l_(k, ii) * x[k];
    x[ii] = acc / l_(ii, ii);
  }
  return x;
}

}  // namespace geer
