#include "net/server.h"

namespace geer::net {

bool FrameServer::Start(const std::string& host, std::uint16_t port,
                        Handler handler, std::string* error) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) {
      if (error != nullptr) *error = "server already started";
      return false;
    }
  }
  if (!listener_.Bind(host, port, error)) return false;
  handler_ = std::move(handler);
  {
    std::lock_guard<std::mutex> lock(mu_);
    started_ = true;
    stop_ = false;
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return true;
}

void FrameServer::AcceptLoop() {
  while (true) {
    Socket conn = listener_.Accept();
    if (!conn.valid()) break;  // listener closed by RequestStop
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) break;  // raced with shutdown: drop the connection
    connections_.emplace_back();
    Connection* slot = &connections_.back();
    slot->sock = std::move(conn);
    ++live_connections_;
    slot->thread = std::thread([this, slot] { ServeConnection(slot); });
  }
}

void FrameServer::ServeConnection(Connection* conn) {
  FrameReader reader;
  Frame frame;
  std::string error;
  while (RecvFrame(conn->sock, reader, &frame, &error)) {
    const HandlerReply reply = handler_(frame);
    const bool sent = SendFrame(conn->sock, reply.type, frame.request_id,
                                reply.payload);
    if (reply.stop_server) {
      RequestStop();
      break;
    }
    if (!sent) break;
  }
  conn->sock.ShutdownBoth();
  std::lock_guard<std::mutex> lock(mu_);
  --live_connections_;
  drained_cv_.notify_all();
}

void FrameServer::RequestStop() {
  std::lock_guard<std::mutex> lock(mu_);
  if (stop_ || !started_) {
    stop_ = true;
    return;
  }
  stop_ = true;
  listener_.Close();  // unblocks Accept()
  for (Connection& conn : connections_) {
    conn.sock.ShutdownBoth();  // unblocks each connection's recv
  }
}

void FrameServer::Wait() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!started_) return;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::unique_lock<std::mutex> lock(mu_);
  drained_cv_.wait(lock, [this] { return live_connections_ == 0; });
  for (Connection& conn : connections_) {
    if (conn.thread.joinable()) conn.thread.join();
  }
  connections_.clear();
  started_ = false;
}

void FrameServer::Stop() {
  RequestStop();
  Wait();
}

bool FrameServer::stopping() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stop_;
}

}  // namespace geer::net
