// TP baseline [Peng et al., KDD'21]: truncated-walk Monte Carlo on the
// Eq. (4) expansion with the generic ℓ of Eq. (5). For every length
// i ∈ [1, ℓ] it draws 40 ℓ² ln(8ℓ/δ)/ε² walks from s and from t and uses
// the end-node frequencies as estimates of p_i(s,·), p_i(t,·). The sheer
// walk count makes it impractical at small ε — the inefficiency AMC/GEER
// fix. Weight-generic: weighted walks step through the alias sampler and
// every 1/d(·) becomes 1/w(·). options.tp_scale linearly rescales the
// sample constant so the harness can extrapolate timings (see
// EXPERIMENTS.md).

#ifndef GEER_CORE_TP_H_
#define GEER_CORE_TP_H_

#include <string>

#include "core/estimator.h"
#include "core/options.h"
#include "graph/weight_policy.h"
#include "rw/walker_policy.h"

namespace geer {

template <WeightPolicy WP>
class TpEstimatorT : public ErEstimator {
 public:
  using GraphT = typename WP::GraphT;

  explicit TpEstimatorT(const GraphT& graph, ErOptions options = {});
  // Stores a pointer to `graph`; a temporary would dangle.
  explicit TpEstimatorT(GraphT&&, ErOptions = {}) = delete;

  std::string Name() const override {
    return std::string(WP::kNamePrefix) + "TP";
  }
  QueryStats EstimateWithStats(NodeId s, NodeId t) override;

  double lambda() const { return lambda_; }

  /// Walks per length per endpoint at the current options (after scaling).
  std::uint64_t WalksPerLength(std::uint32_t ell) const;

 private:
  const GraphT* graph_;
  ErOptions options_;
  double lambda_;
  WalkerFor<WP> walker_;
};

/// The two stacks, by their historical names.
using TpEstimator = TpEstimatorT<UnitWeight>;
using WeightedTpEstimator = TpEstimatorT<EdgeWeight>;

extern template class TpEstimatorT<UnitWeight>;
extern template class TpEstimatorT<EdgeWeight>;

}  // namespace geer

#endif  // GEER_CORE_TP_H_
