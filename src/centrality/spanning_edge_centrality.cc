#include "centrality/spanning_edge_centrality.h"

#include <algorithm>
#include <cmath>

#include "rw/rng.h"
#include "rw/wilson.h"
#include "util/check.h"

namespace geer {
namespace {

// arc_edge_id[k] = index (in Graph::Edges() order) of the undirected edge
// stored at CSR arc slot k. Edges() enumerates u < v in lexicographic
// order, which is exactly ascending (u, adjacency) order, so a single
// sweep assigns ids; the reverse arcs are filled by binary search.
std::vector<std::uint64_t> BuildArcEdgeIds(const Graph& graph) {
  const auto& offsets = graph.Offsets();
  const auto& adj = graph.NeighborArray();
  std::vector<std::uint64_t> arc_edge_id(adj.size(), 0);
  std::uint64_t next_id = 0;
  for (NodeId u = 0; u < graph.NumNodes(); ++u) {
    for (std::uint64_t k = offsets[u]; k < offsets[u + 1]; ++k) {
      const NodeId v = adj[k];
      if (u >= v) continue;
      arc_edge_id[k] = next_id;
      // Locate the reverse arc v→u.
      const auto begin = adj.begin() + static_cast<std::ptrdiff_t>(offsets[v]);
      const auto end = adj.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]);
      const auto it = std::lower_bound(begin, end, u);
      GEER_DCHECK(it != end && *it == u);
      arc_edge_id[static_cast<std::uint64_t>(it - adj.begin())] = next_id;
      ++next_id;
    }
  }
  GEER_CHECK_EQ(next_id, graph.NumEdges());
  return arc_edge_id;
}

// Edge id of the tree edge {v, parent}: binary search parent within v's
// adjacency, then read the precomputed arc id.
std::uint64_t EdgeIdOf(const Graph& graph,
                       const std::vector<std::uint64_t>& arc_edge_id,
                       NodeId v, NodeId parent) {
  const auto& offsets = graph.Offsets();
  const auto& adj = graph.NeighborArray();
  const auto begin = adj.begin() + static_cast<std::ptrdiff_t>(offsets[v]);
  const auto end = adj.begin() + static_cast<std::ptrdiff_t>(offsets[v + 1]);
  const auto it = std::lower_bound(begin, end, parent);
  GEER_DCHECK(it != end && *it == parent);
  return arc_edge_id[static_cast<std::uint64_t>(it - adj.begin())];
}

}  // namespace

std::uint64_t SpanningCentralityTreeCount(
    std::uint64_t num_edges, const SpanningCentralityOptions& o) {
  if (o.num_trees > 0) return o.num_trees;
  GEER_CHECK(o.epsilon > 0.0);
  GEER_CHECK(o.delta > 0.0 && o.delta < 1.0);
  // Hoeffding + union bound over all m edges: each r̂(e) is a mean of
  // Bernoulli(r(e)) indicators.
  const double trees = std::log(2.0 * static_cast<double>(num_edges) /
                                o.delta) /
                       (2.0 * o.epsilon * o.epsilon);
  return static_cast<std::uint64_t>(std::ceil(std::max(trees, 1.0)));
}

SpanningCentrality EstimateSpanningCentrality(
    const Graph& graph, const SpanningCentralityOptions& options) {
  GEER_CHECK_GE(graph.NumNodes(), 2u);
  const std::vector<std::uint64_t> arc_edge_id = BuildArcEdgeIds(graph);
  const std::uint64_t trees =
      SpanningCentralityTreeCount(graph.NumEdges(), options);

  std::vector<std::uint64_t> occurrences(graph.NumEdges(), 0);
  Rng rng(options.seed ^ 0x57ee5a3b1ed6e1afULL);
  for (std::uint64_t i = 0; i < trees; ++i) {
    // Rotating the root does not change the UST distribution but spreads
    // Wilson's walk cost across the graph.
    const NodeId root =
        static_cast<NodeId>(i % static_cast<std::uint64_t>(graph.NumNodes()));
    const SpanningTree tree = SampleUniformSpanningTree(graph, root, rng);
    for (NodeId v = 0; v < graph.NumNodes(); ++v) {
      if (v == tree.root) continue;
      ++occurrences[EdgeIdOf(graph, arc_edge_id, v, tree.parent[v])];
    }
  }

  SpanningCentrality out;
  out.trees = trees;
  out.edge_er.reserve(graph.NumEdges());
  const double inv_trees = 1.0 / static_cast<double>(trees);
  for (std::uint64_t e = 0; e < graph.NumEdges(); ++e) {
    out.edge_er.push_back(static_cast<double>(occurrences[e]) * inv_trees);
  }
  return out;
}

}  // namespace geer
