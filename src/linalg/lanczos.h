// Lanczos iteration with full reorthogonalization for extreme eigenvalues
// of a symmetric operator. This replaces the paper's ARPACK dependency for
// the λ = max(|λ₂|, |λ_n|) preprocessing step (§3.1).

#ifndef GEER_LINALG_LANCZOS_H_
#define GEER_LINALG_LANCZOS_H_

#include <functional>
#include <vector>

#include "linalg/dense.h"

namespace geer {

/// Options controlling the Lanczos run.
struct LanczosOptions {
  int max_iterations = 200;   ///< Krylov dimension cap
  double tolerance = 1e-10;   ///< residual/beta breakdown tolerance
  std::uint64_t seed = 42;    ///< deterministic start vector
  /// When non-null and non-empty, the start vector is the (deflated,
  /// normalized) SUM of these vectors instead of the seeded random
  /// vector — the warm-start hook for incremental epoch maintenance,
  /// where the previous epoch's extreme Ritz vectors are excellent
  /// starts for the perturbed operator. Vectors whose dimension does
  /// not match, or whose deflated sum is numerically zero, fall back
  /// to the deterministic seeded cold start.
  const std::vector<Vector>* warm_start = nullptr;
  /// Ritz-value stagnation early exit (0 disables). When positive, each
  /// iteration past a small minimum solves the values-only tridiagonal
  /// problem (O(k²), cheap next to the O(k·dim) reorthogonalization) and
  /// stops once BOTH extreme Ritz values moved by less than this
  /// relative tolerance since the previous iteration. Intended for the
  /// warm-started spectral path, where a near-eigenvector start
  /// converges the extremes in a handful of iterations; cold runs leave
  /// it 0 so their fixed Krylov budget — and hence every bit of the
  /// returned eigenvalues — is unchanged.
  double stagnation_tolerance = 0.0;
  /// Also return the Ritz VECTORS of the extreme Ritz values (costs one
  /// k×k eigenvector accumulation plus two basis combinations). The
  /// returned eigenVALUES are bit-identical either way.
  bool want_ritz_vectors = false;
};

/// Result: extreme Ritz values of the operator restricted to the subspace
/// orthogonal to the supplied deflation vectors.
struct LanczosResult {
  double max_eigenvalue = 0.0;  ///< largest Ritz value
  double min_eigenvalue = 0.0;  ///< smallest Ritz value
  int iterations = 0;           ///< Krylov dimension actually built
  bool converged = false;
  bool warm_started = false;    ///< start vector came from warm_start
  /// Ritz vectors for the extreme Ritz values, in operator coordinates;
  /// empty unless options.want_ritz_vectors and the Krylov space is
  /// non-trivial.
  Vector max_ritz_vector;
  Vector min_ritz_vector;
};

/// Runs Lanczos on the symmetric operator `apply` (y ← Op·x) of dimension
/// `dim`, deflating the (orthonormal) vectors in `deflate` — pass the
/// known top eigenvector to expose λ₂. Full reorthogonalization keeps the
/// basis numerically orthogonal; fine for the ≤ few-hundred iterations the
/// spectral preprocessing needs.
LanczosResult LanczosExtremeEigenvalues(
    const std::function<void(const Vector&, Vector*)>& apply,
    std::size_t dim, const std::vector<Vector>& deflate,
    const LanczosOptions& options = {});

}  // namespace geer

#endif  // GEER_LINALG_LANCZOS_H_
