// Cross-cutting contract tests every registered estimator must satisfy:
// determinism under a fixed seed, query-order independence (each query
// derives its own stream), symmetry within the accuracy budget, zero at
// s = t, and honest instrumentation. These pin the ErEstimator interface
// promises that the bench harness and downstream users rely on.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "core/registry.h"
#include "graph/generators.h"
#include "test_util.h"

namespace geer {
namespace {

ErOptions FastOptions() {
  ErOptions opt;
  opt.epsilon = 0.3;
  opt.delta = 0.05;
  opt.seed = 2024;
  opt.tp_scale = 0.01;
  opt.tpc_scale = 0.001;
  opt.mc_gamma_upper = 8.0;
  return opt;
}

class EstimatorContractTest : public ::testing::TestWithParam<std::string> {
 protected:
  // Fast-mixing dense ER graph (λ ≈ 0.35): the contract properties under
  // test are mixing-independent, and a small Peng ℓ keeps TP/TPC cheap.
  void SetUp() override { graph_ = gen::ErdosRenyi(40, 400, 9); }
  Graph graph_;
};

TEST_P(EstimatorContractTest, DeterministicUnderFixedSeed) {
  ErOptions opt = FastOptions();
  auto a = CreateEstimator(GetParam(), graph_, opt);
  auto b = CreateEstimator(GetParam(), graph_, opt);
  ASSERT_NE(a, nullptr);
  for (auto [s, t] : {std::pair<NodeId, NodeId>{0, 1}, {2, 9}}) {
    if (!a->SupportsQuery(s, t)) continue;
    EXPECT_DOUBLE_EQ(a->Estimate(s, t), b->Estimate(s, t))
        << GetParam() << " (" << s << "," << t << ")";
  }
}

TEST_P(EstimatorContractTest, QueryOrderDoesNotChangeAnswers) {
  ErOptions opt = FastOptions();
  auto forward = CreateEstimator(GetParam(), graph_, opt);
  auto backward = CreateEstimator(GetParam(), graph_, opt);
  const std::pair<NodeId, NodeId> pairs[] = {{0, 1}, {2, 9}, {4, 12}};
  double fwd[3] = {0, 0, 0};
  double bwd[3] = {0, 0, 0};
  for (int i = 0; i < 3; ++i) {
    if (!forward->SupportsQuery(pairs[i].first, pairs[i].second)) continue;
    fwd[i] = forward->Estimate(pairs[i].first, pairs[i].second);
  }
  for (int i = 2; i >= 0; --i) {
    if (!backward->SupportsQuery(pairs[i].first, pairs[i].second)) continue;
    bwd[i] = backward->Estimate(pairs[i].first, pairs[i].second);
  }
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(fwd[i], bwd[i]) << GetParam() << " query " << i;
  }
}

TEST_P(EstimatorContractTest, SameNodeIsZero) {
  auto estimator = CreateEstimator(GetParam(), graph_, FastOptions());
  if (estimator->SupportsQuery(5, 5)) {
    EXPECT_DOUBLE_EQ(estimator->Estimate(5, 5), 0.0) << GetParam();
  }
}

TEST_P(EstimatorContractTest, SymmetricWithinAccuracyBudget) {
  // r(s,t) = r(t,s); two randomized runs may differ by 2ε at most
  // (both within ε of the truth w.h.p.).
  ErOptions opt = FastOptions();
  auto estimator = CreateEstimator(GetParam(), graph_, opt);
  const NodeId s = 1, t = 10;
  if (!estimator->SupportsQuery(s, t)) GTEST_SKIP();
  const double forward = estimator->Estimate(s, t);
  const double backward = estimator->Estimate(t, s);
  const double budget =
      GetParam() == "RP" ? 0.7 * std::max(forward, backward) + 0.05
                         : 2.0 * opt.epsilon + 1e-9;
  EXPECT_NEAR(forward, backward, budget) << GetParam();
}

TEST_P(EstimatorContractTest, StatsValueMatchesEstimate) {
  auto a = CreateEstimator(GetParam(), graph_, FastOptions());
  auto b = CreateEstimator(GetParam(), graph_, FastOptions());
  if (!a->SupportsQuery(0, 9)) GTEST_SKIP();
  const QueryStats stats = a->EstimateWithStats(0, 9);
  EXPECT_DOUBLE_EQ(stats.value, b->Estimate(0, 9)) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllEstimators, EstimatorContractTest,
    ::testing::Values("GEER", "AMC", "SMM", "SMM-PengEll", "TP", "TPC", "MC",
                      "MC2", "HAY", "RP", "EXACT", "CG"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(EstimatorInstrumentationTest, GeerSplitsLengthBetweenSmmAndAmc) {
  Graph g = testing::DenseTestGraph(18);
  ErOptions opt = FastOptions();
  opt.epsilon = 0.1;
  auto geer = CreateEstimator("GEER", g, opt);
  const QueryStats stats = geer->EstimateWithStats(0, 9);
  EXPECT_LE(stats.ell_b, stats.ell);
  if (stats.ell_b > 0) EXPECT_GT(stats.spmv_ops, 0u);
  if (stats.ell_b == stats.ell) EXPECT_EQ(stats.walks, 0u);
}

TEST(EstimatorInstrumentationTest, AmcBatchesBounded) {
  Graph g = testing::DenseTestGraph(18);
  ErOptions opt = FastOptions();
  auto amc = CreateEstimator("AMC", g, opt);
  const QueryStats stats = amc->EstimateWithStats(0, 9);
  EXPECT_GE(stats.batches, 1);
  EXPECT_LE(stats.batches, opt.tau);
  EXPECT_EQ(stats.walks % 2, 0u);  // always paired: one from s, one from t
  EXPECT_EQ(stats.walk_steps, stats.walks * stats.ell);
}

TEST(EstimatorInstrumentationTest, TruncationFlagOnNearBipartiteInput) {
  // A long odd cycle has λ ≈ 1: the required ℓ blows past a tiny cap and
  // estimators must disclose the truncation instead of silently lying.
  Graph g = gen::Cycle(401);
  ErOptions opt;
  opt.epsilon = 0.1;
  opt.max_ell = 32;
  for (const char* name : {"GEER", "AMC", "SMM"}) {
    auto estimator = CreateEstimator(name, g, opt);
    const QueryStats stats = estimator->EstimateWithStats(0, 200);
    EXPECT_TRUE(stats.truncated) << name;
    EXPECT_EQ(stats.ell, 32u) << name;
  }
}

}  // namespace
}  // namespace geer
