#include "linalg/laplacian_solver.h"

#include <gtest/gtest.h>

#include "graph/generators.h"
#include "test_util.h"

namespace geer {
namespace {

TEST(LaplacianSolverTest, ResidualIsSmall) {
  Graph g = gen::ErdosRenyi(80, 240, 11);
  LaplacianSolver solver(g);
  Vector b(g.NumNodes(), 0.0);
  b[3] = 1.0;
  b[40] = -1.0;
  CgStats stats;
  Vector x = solver.Solve(b, &stats);
  EXPECT_TRUE(stats.converged);
  Vector lx;
  solver.ApplyLaplacian(x, &lx);
  for (std::size_t i = 0; i < b.size(); ++i) {
    EXPECT_NEAR(lx[i], b[i], 1e-7);
  }
}

TEST(LaplacianSolverTest, SolutionIsMeanFree) {
  Graph g = gen::Complete(10);
  LaplacianSolver solver(g);
  Vector b(10, 0.0);
  b[0] = 1.0;
  b[1] = -1.0;
  Vector x = solver.Solve(b);
  EXPECT_NEAR(Sum(x), 0.0, 1e-10);
}

TEST(LaplacianSolverTest, ProjectsUnbalancedRhs) {
  // b with a 𝟙-component: the solver must strip it, not diverge.
  Graph g = gen::Cycle(9);
  LaplacianSolver solver(g);
  Vector b(9, 1.0);  // pure kernel component
  CgStats stats;
  Vector x = solver.Solve(b, &stats);
  EXPECT_TRUE(stats.converged);
  EXPECT_NEAR(Norm2(x), 0.0, 1e-10);
}

TEST(LaplacianSolverTest, ErOnPathEqualsDistance) {
  Graph g = gen::Path(8);
  LaplacianSolver solver(g);
  EXPECT_NEAR(solver.EffectiveResistance(0, 7), 7.0, 1e-8);
  EXPECT_NEAR(solver.EffectiveResistance(2, 5), 3.0, 1e-8);
}

TEST(LaplacianSolverTest, ErOnCompleteGraph) {
  const NodeId n = 12;
  Graph g = gen::Complete(n);
  LaplacianSolver solver(g);
  EXPECT_NEAR(solver.EffectiveResistance(1, 7), 2.0 / n, 1e-9);
}

TEST(LaplacianSolverTest, ErOnCycleClosedForm) {
  const NodeId n = 10;
  Graph g = gen::Cycle(n);
  LaplacianSolver solver(g);
  for (NodeId t = 1; t < n; ++t) {
    EXPECT_NEAR(solver.EffectiveResistance(0, t),
                testing::CycleEr(n, 0, t), 1e-8)
        << "t=" << t;
  }
}

TEST(LaplacianSolverTest, SameNodeIsZero) {
  Graph g = gen::Complete(5);
  LaplacianSolver solver(g);
  EXPECT_DOUBLE_EQ(solver.EffectiveResistance(3, 3), 0.0);
}

TEST(LaplacianSolverTest, SymmetricInArguments) {
  Graph g = testing::TriangleWithTail();
  LaplacianSolver solver(g);
  EXPECT_NEAR(solver.EffectiveResistance(0, 4),
              solver.EffectiveResistance(4, 0), 1e-10);
}

TEST(LaplacianSolverTest, MatchesDenseExact) {
  Graph g = gen::BarabasiAlbert(60, 3, 7);
  LaplacianSolver solver(g);
  for (auto [s, t] : {std::pair<NodeId, NodeId>{0, 59},
                      {5, 20},
                      {10, 11}}) {
    EXPECT_NEAR(solver.EffectiveResistance(s, t),
                testing::ExactEr(g, s, t), 1e-7);
  }
}

}  // namespace
}  // namespace geer
