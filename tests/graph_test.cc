#include "graph/graph.h"

#include <gtest/gtest.h>

#include "graph/builder.h"

namespace geer {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.NumNodes(), 0u);
  EXPECT_EQ(g.NumEdges(), 0u);
  EXPECT_EQ(g.NumArcs(), 0u);
  EXPECT_EQ(g.MaxDegree(), 0u);
  EXPECT_EQ(g.MinDegree(), 0u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 0.0);
  EXPECT_TRUE(g.Edges().empty());
}

TEST(GraphTest, SingleEdge) {
  Graph g = BuildGraph(2, {{0, 1}});
  EXPECT_EQ(g.NumNodes(), 2u);
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.NumArcs(), 2u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 1u);
  EXPECT_TRUE(g.HasEdge(0, 1));
  EXPECT_TRUE(g.HasEdge(1, 0));
}

TEST(GraphTest, TriangleDegreesAndNeighbors) {
  Graph g = BuildGraph(3, {{0, 1}, {1, 2}, {2, 0}});
  EXPECT_EQ(g.NumEdges(), 3u);
  for (NodeId v = 0; v < 3; ++v) EXPECT_EQ(g.Degree(v), 2u);
  auto n0 = g.Neighbors(0);
  ASSERT_EQ(n0.size(), 2u);
  EXPECT_EQ(n0[0], 1u);
  EXPECT_EQ(n0[1], 2u);
}

TEST(GraphTest, NeighborsAreSorted) {
  Graph g = BuildGraph(6, {{0, 5}, {0, 2}, {0, 4}, {0, 1}, {0, 3}});
  auto adj = g.Neighbors(0);
  for (std::size_t i = 1; i < adj.size(); ++i) {
    EXPECT_LT(adj[i - 1], adj[i]);
  }
}

TEST(GraphTest, NeighborAtMatchesSpan) {
  Graph g = BuildGraph(5, {{0, 1}, {0, 2}, {0, 3}, {0, 4}, {1, 2}});
  auto adj = g.Neighbors(0);
  for (std::uint64_t k = 0; k < g.Degree(0); ++k) {
    EXPECT_EQ(g.NeighborAt(0, k), adj[k]);
  }
}

TEST(GraphTest, HasEdgeNegativeCases) {
  Graph g = BuildGraph(4, {{0, 1}, {1, 2}});
  EXPECT_FALSE(g.HasEdge(0, 2));
  EXPECT_FALSE(g.HasEdge(0, 3));
  EXPECT_FALSE(g.HasEdge(3, 3));
}

TEST(GraphTest, HasEdgeSearchesSmallerList) {
  // Star: hub degree n−1, leaves degree 1; exercise both directions.
  GraphBuilder b(50);
  for (NodeId v = 1; v < 50; ++v) b.AddEdge(0, v);
  Graph g = b.Build();
  EXPECT_TRUE(g.HasEdge(0, 17));
  EXPECT_TRUE(g.HasEdge(17, 0));
  EXPECT_FALSE(g.HasEdge(17, 18));
}

TEST(GraphTest, EdgesReturnsCanonicalPairs) {
  Graph g = BuildGraph(4, {{2, 1}, {3, 0}, {0, 1}});
  std::vector<Edge> edges = g.Edges();
  ASSERT_EQ(edges.size(), 3u);
  for (const auto& [u, v] : edges) EXPECT_LT(u, v);
  EXPECT_EQ(edges[0], (Edge{0, 1}));
  EXPECT_EQ(edges[1], (Edge{0, 3}));
  EXPECT_EQ(edges[2], (Edge{1, 2}));
}

TEST(GraphTest, DegreeStats) {
  Graph g = BuildGraph(4, {{0, 1}, {0, 2}, {0, 3}});
  EXPECT_EQ(g.MaxDegree(), 3u);
  EXPECT_EQ(g.MinDegree(), 1u);
  EXPECT_DOUBLE_EQ(g.AverageDegree(), 6.0 / 4.0);
}

TEST(GraphTest, IsolatedNodeCountsInN) {
  Graph g = BuildGraph(5, {{0, 1}});
  EXPECT_EQ(g.NumNodes(), 5u);
  EXPECT_EQ(g.Degree(4), 0u);
  EXPECT_EQ(g.MinDegree(), 0u);
}

TEST(GraphBuilderTest, DropsSelfLoops) {
  GraphBuilder b(3);
  b.AddEdge(1, 1);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_FALSE(g.HasEdge(1, 1));
}

TEST(GraphBuilderTest, DeduplicatesParallelEdges) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  b.AddEdge(1, 0);
  b.AddEdge(0, 1);
  Graph g = b.Build();
  EXPECT_EQ(g.NumEdges(), 1u);
  EXPECT_EQ(g.Degree(0), 1u);
  EXPECT_EQ(g.Degree(1), 1u);
}

TEST(GraphBuilderTest, GrowsNodeCountFromEndpoints) {
  GraphBuilder b;
  b.AddEdge(0, 9);
  EXPECT_EQ(b.NumNodes(), 10u);
  Graph g = b.Build();
  EXPECT_EQ(g.NumNodes(), 10u);
}

TEST(GraphBuilderTest, ReusableAfterBuild) {
  GraphBuilder b(3);
  b.AddEdge(0, 1);
  Graph g1 = b.Build();
  b.AddEdge(1, 2);
  Graph g2 = b.Build();
  EXPECT_EQ(g1.NumEdges(), 1u);
  EXPECT_EQ(g2.NumEdges(), 2u);
}

TEST(GraphBuilderTest, AddEdgesBulk) {
  GraphBuilder b(4);
  b.AddEdges({{0, 1}, {1, 2}, {2, 3}});
  EXPECT_EQ(b.NumRecordedEdges(), 3u);
  EXPECT_EQ(b.Build().NumEdges(), 3u);
}

TEST(GraphTest, CsrArraysConsistent) {
  Graph g = BuildGraph(4, {{0, 1}, {1, 2}, {2, 3}, {3, 0}});
  const auto& offsets = g.Offsets();
  ASSERT_EQ(offsets.size(), 5u);
  EXPECT_EQ(offsets.front(), 0u);
  EXPECT_EQ(offsets.back(), g.NumArcs());
  EXPECT_EQ(g.NeighborArray().size(), g.NumArcs());
}

}  // namespace
}  // namespace geer
