// RP baseline [Spielman & Srivastava, STOC'08]: approximate all-pairs ER
// via Johnson–Lindenstrauss projection of W^{1/2} B L†. Preprocessing
// builds a k×n sketch with k = ⌈24 ln n / ε²⌉ (one Laplacian solve per
// row); queries are then O(k). Memory for the sketch is the bottleneck
// the paper reports (OOM on Orkut/LiveJournal/Friendster). Weight-generic
// over graph/weight_policy.h: each edge's sketch entry is scaled by
// √w(e), which is identically 1 on the unweighted stack.

#ifndef GEER_CORE_RP_H_
#define GEER_CORE_RP_H_

#include <memory>
#include <string>

#include "core/epoch_shared.h"
#include "core/estimator.h"
#include "core/options.h"
#include "graph/weight_policy.h"
#include "linalg/dense.h"
#include "linalg/laplacian_solver.h"

namespace geer {

template <WeightPolicy WP>
class RpEstimatorT : public ErEstimator {
 public:
  using GraphT = typename WP::GraphT;

  /// Builds the sketch. Aborts if the k×n sketch exceeds
  /// options.rp_max_bytes — use Feasible() to pre-check (the benchmark
  /// harness reports those configurations as OOM, like the paper).
  explicit RpEstimatorT(const GraphT& graph, ErOptions options = {});
  // Stores a pointer to `graph`; a temporary would dangle.
  explicit RpEstimatorT(GraphT&&, ErOptions = {}) = delete;

  std::string Name() const override {
    return std::string(WP::kNamePrefix) + "RP";
  }
  QueryStats EstimateWithStats(NodeId s, NodeId t) override;

  /// Batch workers share the k×n sketch — the k Laplacian solves of the
  /// preprocessing are paid once, not per thread.
  std::unique_ptr<ErEstimator> CloneForBatch() const override {
    return std::unique_ptr<ErEstimator>(new RpEstimatorT<WP>(*this));
  }

  /// Dynamic-graph hook: the sketch depends on the whole graph (one
  /// Laplacian solve per row), so any epoch change rebuilds it — once
  /// per epoch across every clone sharing it. Aborts like construction
  /// if the new sketch exceeds rp_max_bytes — pre-check with Feasible().
  using ErEstimator::RebindGraph;
  bool RebindGraph(const GraphT& graph, const GraphEpoch& epoch) override;

  /// Projection dimension in use.
  int Dimensions() const { return k_; }

  /// Derived sketch size in bytes for the given graph/options.
  static std::uint64_t SketchBytes(const GraphT& graph,
                                   const ErOptions& options);

  /// True iff the sketch fits the options' memory budget.
  static bool Feasible(const GraphT& graph, const ErOptions& options) {
    return SketchBytes(graph, options) <= options.rp_max_bytes;
  }

  /// The projection dimension k implied by the options (paper's
  /// 24 ln n / ε² unless overridden).
  static int DeriveDimensions(const GraphT& graph, const ErOptions& options);

 private:
  // Clone constructor: adopts the shared sketch and its epoch holder.
  RpEstimatorT(const RpEstimatorT& other) = default;

  static std::shared_ptr<const Matrix> BuildSketch(const GraphT& graph,
                                                   const ErOptions& options,
                                                   int k);

  const GraphT* graph_;
  ErOptions options_;
  int k_ = 0;
  // Row-major k×n sketch Z̃; r̂(s,t) = Σ_j (Z̃(j,s) − Z̃(j,t))².
  std::shared_ptr<const Matrix> sketch_;
  std::shared_ptr<EpochShared<Matrix>> shared_sketch_;
};

/// The two stacks, by their historical names.
using RpEstimator = RpEstimatorT<UnitWeight>;
using WeightedRpEstimator = RpEstimatorT<EdgeWeight>;

extern template class RpEstimatorT<UnitWeight>;
extern template class RpEstimatorT<EdgeWeight>;

}  // namespace geer

#endif  // GEER_CORE_RP_H_
