// Compatibility shim: weighted AMC is now the EdgeWeight instantiation of
// the weight-generic AmcEstimatorT / RunAmcT (core/amc.h); see
// graph/weight_policy.h. WeightedAmcEstimator is an alias defined there.

#ifndef GEER_WEIGHTED_WEIGHTED_AMC_SHIM_H_
#define GEER_WEIGHTED_WEIGHTED_AMC_SHIM_H_

#include "core/amc.h"
#include "weighted/weighted_estimator.h"

namespace geer {

/// Historical spelling of the weight-generic AmcPsi (Eq. 9 with
/// strengths in place of degrees).
inline double WeightedAmcPsi(std::uint32_t ell_f, double max1_s,
                             double max2_s, double strength_s, double max1_t,
                             double max2_t, double strength_t) {
  return AmcPsi(ell_f, max1_s, max2_s, strength_s, max1_t, max2_t,
                strength_t);
}

/// Historical spelling of RunAmcT<EdgeWeight>.
inline AmcRunResult RunWeightedAmc(const WeightedGraph& graph,
                                   const WeightedWalker& walker, NodeId s,
                                   NodeId t, const Vector& svec,
                                   const Vector& tvec,
                                   const AmcParams& params, Rng& rng) {
  return RunAmcT<EdgeWeight>(graph, walker, s, t, svec, tvec, params, rng);
}

}  // namespace geer

#endif  // GEER_WEIGHTED_WEIGHTED_AMC_SHIM_H_
