#include "serve/query_service.h"

#include <algorithm>
#include <span>
#include <utility>

#include "core/batch_engine.h"
#include "obs/trace.h"
#include "util/check.h"

namespace geer {
namespace {

using MillisD = std::chrono::duration<double, std::milli>;

std::chrono::steady_clock::duration SecondsToDuration(double seconds) {
  return std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds));
}

std::uint64_t ToNs(std::chrono::steady_clock::duration d) {
  const auto ns = std::chrono::duration_cast<std::chrono::nanoseconds>(d);
  return ns.count() > 0 ? static_cast<std::uint64_t>(ns.count()) : 0;
}

/// steady_clock time_point on obs::NowNs()'s axis (same clock).
std::uint64_t ToNs(std::chrono::steady_clock::time_point t) {
  return ToNs(t.time_since_epoch());
}

}  // namespace

DeadlineClass ClassifyDeadline(double deadline_seconds) {
  if (deadline_seconds <= 0.0) return DeadlineClass::kNone;
  if (deadline_seconds < 0.010) return DeadlineClass::kTight;
  if (deadline_seconds < 0.100) return DeadlineClass::kNormal;
  return DeadlineClass::kLoose;
}

const char* DeadlineClassName(DeadlineClass c) {
  switch (c) {
    case DeadlineClass::kNone: return "none";
    case DeadlineClass::kTight: return "tight";
    case DeadlineClass::kNormal: return "normal";
    case DeadlineClass::kLoose: return "loose";
  }
  return "?";
}

QueryService::QueryService(ErEstimator& estimator,
                           const ServeOptions& options)
    : options_(options), primary_(&estimator) {
  if (options_.max_batch_size == 0) options_.max_batch_size = 1;
  int requested = options_.threads;
  if (requested <= 0) {
    requested = static_cast<int>(std::thread::hardware_concurrency());
  }
  if (requested < 1) requested = 1;
  workers_.push_back(primary_);
  // Non-clonable estimators degrade to a single worker, exactly like the
  // one-shot engine path.
  for (int w = 1; w < requested; ++w) {
    std::unique_ptr<ErEstimator> clone = primary_->CloneForBatch();
    if (clone == nullptr) break;
    workers_.push_back(clone.get());
    session_clones_.push_back(std::move(clone));
  }
  if (options_.session_cache_bytes > 0) {
    for (ErEstimator* worker : workers_) {
      worker->EnableSessionCache(options_.session_cache_bytes);
    }
  }
  {
    // One registration per method label; re-construction over the same
    // method reuses the process-wide series (registration is idempotent).
    obs::Registry& reg = obs::Registry::Global();
    const std::string method = "{method=\"" + primary_->Name() + "\"}";
    obs_.submitted = reg.Counter("geer_serve_submitted_total" + method);
    obs_.answered = reg.Counter("geer_serve_answered_total" + method);
    obs_.rejected = reg.Counter("geer_serve_rejected_total" + method);
    obs_.batches = reg.Counter("geer_serve_batches_total" + method);
    for (std::size_t c = 0; c < kNumDeadlineClasses; ++c) {
      obs_.expired[c] = reg.Counter(
          "geer_serve_expired_total{method=\"" + primary_->Name() +
          "\",class=\"" +
          DeadlineClassName(static_cast<DeadlineClass>(c)) + "\"}");
    }
    obs_.served_latency_ns = reg.Histogram("geer_serve_latency_ns" + method);
    obs_.queue_wait_ns = reg.Histogram("geer_serve_queue_wait_ns" + method);
    obs_.epoch_swap_ns = reg.Histogram("geer_serve_epoch_swap_ns" + method);
    obs_.cache_bytes_gauge = "geer_serve_session_cache_bytes" + method;
  }
  if (!options_.landmarks.empty()) {
    obs::Span warm_span("cache_warm");
    warm_span.Arg("landmarks", options_.landmarks.size());
    warm_span.Arg("workers", workers_.size());
    // Every worker pins its own landmark state (session caches are
    // per-worker); warming before the scheduler starts keeps the first
    // micro-batch fast and data-race-free.
    const std::span<const NodeId> landmarks(options_.landmarks);
    for (ErEstimator* worker : workers_) {
      worker->WarmLandmarks(landmarks);
    }
    std::lock_guard<std::mutex> lock(mu_);
    for (ErEstimator* worker : workers_) {
      metrics_.session_cache += worker->SessionCacheStats();
    }
  }
  scheduler_ = std::thread(&QueryService::SchedulerLoop, this);
}

QueryService::~QueryService() { Shutdown(); }

std::future<QueryResult> QueryService::Submit(QueryPair query,
                                              double deadline_seconds) {
  std::promise<QueryResult> promise;
  std::future<QueryResult> future = promise.get_future();
  const Clock::time_point now = Clock::now();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      QueryResult result;
      result.status = ServeStatus::kShutdown;
      promise.set_value(result);
      return future;
    }
    if (queue_.size() >= options_.max_queue) {
      ++metrics_.rejected;
      obs::Registry::Global().Add(obs_.rejected);
      QueryResult result;
      result.status = ServeStatus::kRejected;
      promise.set_value(result);
      return future;
    }
    ++metrics_.submitted;
    obs::Registry::Global().Add(obs_.submitted);
    Pending pending;
    pending.query = query;
    pending.promise = std::move(promise);
    pending.submitted = now;
    pending.deadline = deadline_seconds > 0.0
                           ? now + SecondsToDuration(deadline_seconds)
                           : Clock::time_point::max();
    pending.dclass = ClassifyDeadline(deadline_seconds);
    pending.seq = next_seq_++;
    earliest_deadline_ = std::min(earliest_deadline_, pending.deadline);
    queue_.push_back(std::move(pending));
  }
  cv_.notify_one();
  return future;
}

void QueryService::Flush() {
  bool notify = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Publish final cache state: dispatch/swap refresh these counters
    // too, but a one-shot run whose LAST action touched the caches (an
    // epoch swap flush, a landmark warm) would otherwise report stale
    // numbers. Safe only while the scheduler is not running the worker
    // estimators (they are not thread-safe).
    if (!workers_busy_) {
      metrics_.session_cache = CacheStats{};
      for (const ErEstimator* worker : workers_) {
        metrics_.session_cache += worker->SessionCacheStats();
      }
      obs::Registry::Global().SetGauge(
          obs_.cache_bytes_gauge,
          static_cast<double>(metrics_.session_cache.bytes));
    }
    if (!queue_.empty()) {  // a stale flag would drain the NEXT arrival
      flush_requested_ = true;  // uncoalesced
      notify = true;
    }
  }
  if (notify) cv_.notify_one();
}

std::future<bool> QueryService::ApplyUpdates(
    std::uint64_t epoch, EpochRebindFn rebind,
    std::shared_ptr<const void> keep_alive) {
  GEER_CHECK(rebind != nullptr);
  PendingSwap swap;
  swap.epoch = epoch;
  swap.rebind = std::move(rebind);
  swap.keep_alive = std::move(keep_alive);
  std::future<bool> future = swap.done.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_) {
      swap.done.set_value(false);
      return future;
    }
    // Barrier: everything submitted so far dispatches on the old epoch
    // before this swap applies.
    swap.watermark = next_seq_;
    swaps_.push_back(std::move(swap));
  }
  cv_.notify_one();
  return future;
}

void QueryService::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  cv_.notify_all();
  std::lock_guard<std::mutex> join_lock(lifecycle_mu_);
  if (scheduler_.joinable()) scheduler_.join();
}

void QueryService::ShutdownNow() {
  cancel_.store(true, std::memory_order_relaxed);
  Shutdown();
}

ServeMetrics QueryService::Metrics() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServeMetrics snapshot = metrics_;
  snapshot.served_latency =
      obs::Registry::Global().ReadHistogram(obs_.served_latency_ns);
  return snapshot;
}

std::vector<std::size_t> QueryService::EdfOrder(
    std::span<const std::chrono::steady_clock::time_point> deadlines,
    std::size_t take) {
  std::vector<std::size_t> order(deadlines.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  const auto earlier = [&deadlines](std::size_t a, std::size_t b) {
    if (deadlines[a] != deadlines[b]) return deadlines[a] < deadlines[b];
    return a < b;  // arrival order among equal deadlines
  };
  // Select-then-sort: O(n + take log take), not a full O(n log n) sort —
  // under deadline pressure this runs per micro-batch over the whole
  // backlog. The comparator is a total order, so the result equals the
  // full sort's prefix.
  if (order.size() > take) {
    std::nth_element(order.begin(),
                     order.begin() + static_cast<std::ptrdiff_t>(take),
                     order.end(), earlier);
    order.resize(take);
  }
  std::sort(order.begin(), order.end(), earlier);
  return order;
}

std::vector<QueryService::Pending> QueryService::PopBatchLocked(
    std::size_t take, std::size_t limit) {
  limit = std::min(limit, queue_.size());
  take = std::min(take, limit);
  // Fast path: with no deadline anywhere in the queue, EDF order IS
  // arrival order — pop the front without the selection machinery (the
  // common high-qps case; per-dispatch allocations would dominate
  // microsecond queries).
  if (earliest_deadline_ == Clock::time_point::max()) {
    std::vector<Pending> batch;
    batch.reserve(take);
    for (std::size_t i = 0; i < take; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    return batch;  // earliest_deadline_ is already ::max()
  }
  std::vector<Clock::time_point> deadlines;
  deadlines.reserve(limit);
  for (std::size_t i = 0; i < limit; ++i) {
    deadlines.push_back(queue_[i].deadline);
  }
  const std::vector<std::size_t> order =
      EdfOrder(std::span<const Clock::time_point>(deadlines), take);

  std::vector<Pending> batch;
  batch.reserve(order.size());
  std::vector<char> selected(limit, 0);
  for (const std::size_t idx : order) {
    batch.push_back(std::move(queue_[idx]));
    selected[idx] = 1;
  }
  std::deque<Pending> remaining;
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    if (i < limit && selected[i] != 0) continue;
    remaining.push_back(std::move(queue_[i]));
  }
  queue_ = std::move(remaining);
  earliest_deadline_ = Clock::time_point::max();
  for (const Pending& p : queue_) {
    earliest_deadline_ = std::min(earliest_deadline_, p.deadline);
  }
  return batch;
}

void QueryService::SchedulerLoop() {
  const Clock::duration linger =
      SecondsToDuration(std::max(options_.max_linger_seconds, 0.0));
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cancel_.load(std::memory_order_relaxed) &&
        (!queue_.empty() || !swaps_.empty())) {
      // ShutdownNow(): drop the queue and abandon pending swaps.
      std::vector<Pending> dropped(std::make_move_iterator(queue_.begin()),
                                   std::make_move_iterator(queue_.end()));
      queue_.clear();
      earliest_deadline_ = Clock::time_point::max();
      metrics_.cancelled += dropped.size();
      std::deque<PendingSwap> abandoned = std::move(swaps_);
      swaps_.clear();
      lock.unlock();
      const Clock::time_point now = Clock::now();
      for (Pending& p : dropped) {
        Fulfill(p, ServeStatus::kCancelled, QueryStats{}, now, now, 0, 0);
      }
      for (PendingSwap& swap : abandoned) swap.done.set_value(false);
      lock.lock();
      continue;
    }

    // A pending epoch swap acts as a barrier: drain every pre-watermark
    // query now (no lingering — the writer is waiting), then rebind all
    // workers between micro-batches.
    if (!swaps_.empty()) {
      const std::uint64_t watermark = swaps_.front().watermark;
      std::size_t dispatchable = 0;
      // queue_ is submission-ordered, so the pre-watermark queries are a
      // prefix.
      while (dispatchable < queue_.size() &&
             queue_[dispatchable].seq < watermark) {
        ++dispatchable;
      }
      if (dispatchable > 0) {
        const std::size_t take =
            std::min(dispatchable, options_.max_batch_size);
        std::vector<Pending> batch = PopBatchLocked(take, dispatchable);
        ++metrics_.flush_swap;
        const std::uint64_t batch_id = next_batch_id_++;
        workers_busy_ = true;
        lock.unlock();
        DispatchBatch(std::move(batch), batch_id);
        lock.lock();
        workers_busy_ = false;
        continue;
      }
      PendingSwap swap = std::move(swaps_.front());
      swaps_.pop_front();
      workers_busy_ = true;
      lock.unlock();
      // Worker 0 first: a false return means "cannot rebind", which by
      // the RebindGraph contract mutated nothing — the swap is abandoned
      // with every worker still on the old epoch. Once any worker
      // rebound, the rest MUST follow (they are clones of the same
      // estimator); a mixed fleet would answer inconsistently.
      bool ok = true;
      {
        obs::Span swap_span("epoch_swap");
        swap_span.Arg("epoch", swap.epoch);
        swap_span.Arg("workers", workers_.size());
        const std::uint64_t swap_start = obs::NowNs();
        for (std::size_t w = 0; w < workers_.size(); ++w) {
          if (!swap.rebind(*workers_[w])) {
            GEER_CHECK(w == 0)
                << "epoch swap failed on worker " << w
                << " after earlier workers rebound — heterogeneous workers?";
            ok = false;
            break;
          }
        }
        obs::Registry::Global().RecordNs(obs_.epoch_swap_ns,
                                         obs::NowNs() - swap_start);
      }
      lock.lock();
      workers_busy_ = false;
      if (ok) {
        current_epoch_ = swap.epoch;
        epoch_keep_alive_ = std::move(swap.keep_alive);
        ++metrics_.epoch_swaps;
        // Refresh here as well as post-dispatch, so swap-only sequences
        // (no queries after the swap) still observe the counter.
        metrics_.incremental_rebinds = 0;
        for (const ErEstimator* worker : workers_) {
          metrics_.incremental_rebinds += worker->IncrementalRebinds();
        }
      }
      swap.done.set_value(ok);
      continue;
    }

    if (queue_.empty()) {
      flush_requested_ = false;  // nothing left to flush
      if (shutdown_) break;
      cv_.wait(lock, [this] {
        return !queue_.empty() || shutdown_ || !swaps_.empty();
      });
      continue;
    }

    enum class Trigger { kSize, kLinger, kDeadline, kDrain };
    Trigger trigger;
    const Clock::time_point now = Clock::now();
    if (queue_.size() >= options_.max_batch_size) {
      trigger = Trigger::kSize;
    } else if (flush_requested_ || shutdown_) {
      trigger = Trigger::kDrain;
    } else {
      // Next flush instant: the oldest query's linger expiry, pulled
      // forward if some queued deadline would lapse before a
      // linger-length dispatch window (earliest_deadline_ is maintained
      // incrementally — the scheduler wakes per submission, so an
      // O(queue) rescan per wakeup would be quadratic under load).
      Clock::time_point flush_at = queue_.front().submitted + linger;
      Trigger cause = Trigger::kLinger;
      if (earliest_deadline_ != Clock::time_point::max() &&
          earliest_deadline_ - linger < flush_at) {
        flush_at = earliest_deadline_ - linger;
        cause = Trigger::kDeadline;
      }
      if (now < flush_at) {
        cv_.wait_until(lock, flush_at);
        continue;  // re-evaluate: new arrivals may have filled the batch
      }
      trigger = cause;
    }

    const std::size_t take =
        std::min(queue_.size(), options_.max_batch_size);
    // Earliest-deadline-first: when the flush cannot take everything, a
    // tight-deadline query is never stuck behind earlier loose ones.
    std::vector<Pending> batch = PopBatchLocked(take, queue_.size());
    switch (trigger) {
      case Trigger::kSize: ++metrics_.flush_size; break;
      case Trigger::kLinger: ++metrics_.flush_linger; break;
      case Trigger::kDeadline: ++metrics_.flush_deadline; break;
      case Trigger::kDrain: ++metrics_.flush_drain; break;
    }
    const std::uint64_t batch_id = next_batch_id_++;
    workers_busy_ = true;
    lock.unlock();
    DispatchBatch(std::move(batch), batch_id);
    lock.lock();
    workers_busy_ = false;
  }
  // Shutdown with swaps still pending (submitted after the final drain):
  // resolve their futures so no writer blocks forever.
  std::deque<PendingSwap> leftover = std::move(swaps_);
  swaps_.clear();
  lock.unlock();
  for (PendingSwap& swap : leftover) swap.done.set_value(false);
}

void QueryService::DispatchBatch(std::vector<Pending> batch,
                                 std::uint64_t batch_id) {
  const Clock::time_point dispatched = Clock::now();
  obs::Span batch_span("batch");
  batch_span.Arg("batch", batch_id);
  batch_span.Arg("size", batch.size());

  // Queue-drop expiry: a query whose deadline lapsed while queued is
  // answered kExpired without costing any estimator work.
  std::vector<std::size_t> live;
  live.reserve(batch.size());
  std::uint64_t dropped = 0;
  std::array<std::uint64_t, kNumDeadlineClasses> expired_by_class{};
  for (std::size_t i = 0; i < batch.size(); ++i) {
    if (batch[i].deadline <= dispatched) {
      Fulfill(batch[i], ServeStatus::kExpired, QueryStats{}, dispatched,
              dispatched, 0, batch_id);
      ++dropped;
      ++expired_by_class[static_cast<std::size_t>(batch[i].dclass)];
    } else {
      live.push_back(i);
    }
  }

  std::uint64_t answered = 0;
  std::uint64_t unsupported = 0;
  std::uint64_t expired = dropped;
  std::uint64_t cancelled = 0;
  if (!live.empty()) {
    std::vector<QueryPair> queries;
    queries.reserve(live.size());
    bool all_deadlined = true;
    Clock::time_point latest_deadline = Clock::time_point::min();
    for (const std::size_t i : live) {
      queries.push_back(batch[i].query);
      if (batch[i].deadline == Clock::time_point::max()) {
        all_deadlined = false;
      } else {
        latest_deadline = std::max(latest_deadline, batch[i].deadline);
      }
    }

    BatchOptions engine_options;
    engine_options.session_workers =
        std::span<ErEstimator* const>(workers_.data(), workers_.size());
    engine_options.cancel = &cancel_;  // ShutdownNow() cuts in-flight work
    if (all_deadlined) {
      // Once every deadline in the batch has passed there is nobody left
      // to answer — let the engine's deadline machinery cut the run (it
      // still guarantees ≥ 1 answered query).
      engine_options.deadline_seconds =
          std::chrono::duration<double>(latest_deadline - dispatched)
              .count();
    }
    // A dispatch that throws (the pool rethrows the first task exception
    // here — realistically an allocation failure) must not escape the
    // scheduler thread: that would std::terminate the process with every
    // client's future left unresolved. Resolve the batch as kFailed and
    // keep serving instead.
    std::vector<QueryStats> stats(queries.size());
    BatchReport report;
    bool dispatch_failed = false;
    try {
      report = RunQueryBatch(*primary_, queries, stats, engine_options);
    } catch (...) {
      dispatch_failed = true;
    }
    if (dispatch_failed) {
      const Clock::time_point done = Clock::now();
      for (const std::size_t i : live) {
        Fulfill(batch[i], ServeStatus::kFailed, QueryStats{}, dispatched,
                done, static_cast<std::uint32_t>(live.size()), batch_id);
      }
      std::lock_guard<std::mutex> lock(mu_);
      metrics_.failed += live.size();
      metrics_.expired += dropped;  // queue-drop expiries above still count
      for (std::size_t c = 0; c < kNumDeadlineClasses; ++c) {
        metrics_.expired_by_class[c] += expired_by_class[c];
      }
      return;
    }

    const Clock::time_point done = Clock::now();
    const std::uint32_t batch_size = static_cast<std::uint32_t>(live.size());
    obs::Span reply_span("reply");
    reply_span.Arg("batch", batch_id);
    for (std::size_t k = 0; k < live.size(); ++k) {
      Pending& p = batch[live[k]];
      if (!report.processed[k]) {
        if (cancel_.load(std::memory_order_relaxed)) {
          Fulfill(p, ServeStatus::kCancelled, QueryStats{}, dispatched, done,
                  batch_size, batch_id);
          ++cancelled;
        } else {
          Fulfill(p, ServeStatus::kExpired, QueryStats{}, dispatched, done,
                  batch_size, batch_id);
          ++expired;
          ++expired_by_class[static_cast<std::size_t>(p.dclass)];
        }
      } else if (!primary_->SupportsQuery(p.query.s, p.query.t)) {
        Fulfill(p, ServeStatus::kUnsupported, QueryStats{}, dispatched, done,
                batch_size, batch_id);
        ++unsupported;
      } else {
        Fulfill(p, ServeStatus::kAnswered, stats[k], dispatched, done,
                batch_size, batch_id);
        ++answered;
      }
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  if (!live.empty()) {
    ++metrics_.batches;
    metrics_.coalesced += live.size();
    metrics_.max_batch =
        std::max<std::uint64_t>(metrics_.max_batch, live.size());
    obs::Registry::Global().Add(obs_.batches);
  }
  metrics_.answered += answered;
  metrics_.unsupported += unsupported;
  metrics_.expired += expired;
  metrics_.cancelled += cancelled;
  for (std::size_t c = 0; c < kNumDeadlineClasses; ++c) {
    metrics_.expired_by_class[c] += expired_by_class[c];
  }
  // Cache counters are read worker-by-worker AFTER the batch finished
  // (workers are idle between dispatches), then published under mu_ —
  // Metrics() readers never race the estimators themselves.
  metrics_.session_cache = CacheStats{};
  metrics_.incremental_rebinds = 0;
  for (const ErEstimator* worker : workers_) {
    metrics_.session_cache += worker->SessionCacheStats();
    metrics_.incremental_rebinds += worker->IncrementalRebinds();
  }
}

void QueryService::Fulfill(Pending& p, ServeStatus status,
                           const QueryStats& stats,
                           Clock::time_point dispatched,
                           Clock::time_point done, std::uint32_t batch_size,
                           std::uint64_t batch_id) const {
  QueryResult result;
  result.status = status;
  result.stats = stats;
  result.queue_ms = MillisD(dispatched - p.submitted).count();
  result.total_ms = MillisD(done - p.submitted).count();
  result.batch_size = batch_size;
  result.batch_id = batch_id;
  // Written only by the scheduler thread, which also runs every Fulfill.
  result.epoch = current_epoch_;

  obs::Registry& reg = obs::Registry::Global();
  reg.RecordNs(obs_.served_latency_ns, ToNs(done - p.submitted));
  reg.RecordNs(obs_.queue_wait_ns, ToNs(dispatched - p.submitted));
  if (status == ServeStatus::kAnswered) {
    reg.Add(obs_.answered);
  } else if (status == ServeStatus::kExpired) {
    reg.Add(obs_.expired[static_cast<std::size_t>(p.dclass)]);
  }
  if (obs::Tracer* tracer = obs::Tracer::Current()) {
    // Per-query slices go on synthetic lanes (hashed by submission seq)
    // so concurrent queries render side by side instead of stacking on
    // the scheduler's lane; queue_wait nests inside the query slice.
    const std::uint32_t lane =
        10000 + static_cast<std::uint32_t>(p.seq % 64);
    obs::SpanEvent query_ev;
    query_ev.name = "query";
    query_ev.tid = lane;
    query_ev.start_ns = ToNs(p.submitted);
    query_ev.dur_ns = ToNs(done - p.submitted);
    query_ev.arg_key0 = "batch";
    query_ev.arg_val0 = batch_id;
    query_ev.arg_key1 = "status";
    query_ev.arg_val1 = static_cast<std::uint64_t>(status);
    tracer->Record(query_ev);
    obs::SpanEvent wait_ev;
    wait_ev.name = "queue_wait";
    wait_ev.tid = lane;
    wait_ev.start_ns = ToNs(p.submitted);
    wait_ev.dur_ns = ToNs(dispatched - p.submitted);
    tracer->Record(wait_ev);
  }

  p.promise.set_value(result);
}

}  // namespace geer
