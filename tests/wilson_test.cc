#include "rw/wilson.h"

#include <gtest/gtest.h>

#include <map>

#include "graph/algorithms.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "test_util.h"

namespace geer {
namespace {

// Checks that `tree` is a spanning tree of `g`: n−1 edges, all in g, and
// every node reaches the root through parent pointers.
void ExpectSpanningTree(const Graph& g, const SpanningTree& tree) {
  ASSERT_EQ(tree.parent.size(), g.NumNodes());
  EXPECT_EQ(tree.parent[tree.root], tree.root);
  for (NodeId v = 0; v < g.NumNodes(); ++v) {
    if (v == tree.root) continue;
    EXPECT_TRUE(g.HasEdge(v, tree.parent[v])) << "node " << v;
    // Walk to the root; must terminate within n steps.
    NodeId cur = v;
    for (NodeId steps = 0; cur != tree.root; ++steps) {
      ASSERT_LT(steps, g.NumNodes()) << "cycle through node " << v;
      cur = tree.parent[cur];
    }
  }
}

TEST(WilsonTest, ProducesSpanningTrees) {
  Graph g = gen::ErdosRenyi(40, 120, 13);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    ExpectSpanningTree(g, SampleUniformSpanningTree(g, i % 40, rng));
  }
}

TEST(WilsonTest, TreeGraphHasUniqueSpanningTree) {
  Graph g = gen::BalancedBinaryTree(4);
  Rng rng(2);
  SpanningTree tree = SampleUniformSpanningTree(g, 0, rng);
  ExpectSpanningTree(g, tree);
  // Every tree edge must be in the spanning tree.
  for (const auto& [u, v] : g.Edges()) {
    EXPECT_TRUE(tree.ContainsEdge(u, v));
  }
}

TEST(WilsonTest, CycleTreesOmitExactlyOneEdge) {
  const NodeId n = 7;
  Graph g = gen::Cycle(n);
  Rng rng(3);
  std::map<int, int> omitted;  // count of which edge index was dropped
  const int trials = 7000;
  for (int i = 0; i < trials; ++i) {
    SpanningTree tree = SampleUniformSpanningTree(g, 0, rng);
    int missing = -1;
    int missing_count = 0;
    const auto edges = g.Edges();
    for (std::size_t e = 0; e < edges.size(); ++e) {
      if (!tree.ContainsEdge(edges[e].first, edges[e].second)) {
        missing = static_cast<int>(e);
        ++missing_count;
      }
    }
    ASSERT_EQ(missing_count, 1);
    ++omitted[missing];
  }
  // Uniformity: each of the n edges omitted ~ trials/n times.
  for (const auto& [edge, count] : omitted) {
    EXPECT_NEAR(count, trials / static_cast<int>(n), 300) << edge;
  }
  EXPECT_EQ(omitted.size(), static_cast<std::size_t>(n));
}

TEST(WilsonTest, EdgeFrequencyMatchesEffectiveResistance) {
  // Pr[e ∈ UST] = r(e) — the identity HAY relies on.
  Graph g = testing::DenseTestGraph(10);
  const NodeId s = 0;
  const NodeId t = 1;
  ASSERT_TRUE(g.HasEdge(s, t));
  const double r = testing::ExactEr(g, s, t);
  Rng rng(4);
  const int trials = 60000;
  int hits = 0;
  for (int i = 0; i < trials; ++i) {
    if (SampleUniformSpanningTree(g, s, rng).ContainsEdge(s, t)) ++hits;
  }
  EXPECT_NEAR(hits / static_cast<double>(trials), r, 0.01);
}

TEST(WilsonTest, RootParameterRespected) {
  Graph g = gen::Complete(8);
  Rng rng(5);
  SpanningTree tree = SampleUniformSpanningTree(g, 5, rng);
  EXPECT_EQ(tree.root, 5u);
  EXPECT_EQ(tree.parent[5], 5u);
}

}  // namespace
}  // namespace geer
