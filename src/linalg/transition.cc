#include "linalg/transition.h"

#include <cmath>

#include "util/check.h"

namespace geer {

template <WeightPolicy WP>
std::uint64_t TransitionOperatorT<WP>::ApplyAuto(SparseVector* x) {
  const NodeId n = graph_->NumNodes();
  GEER_CHECK_EQ(x->values.size(), static_cast<std::size_t>(n));
  if (!x->dense &&
      x->support.size() > static_cast<std::size_t>(kDenseThreshold * n)) {
    x->dense = true;
  }
  if (x->dense) {
    ApplyDense(x->values, &scratch_);
    x->values.swap(scratch_);
    x->support.clear();
    x->support_degree_sum = graph_->NumArcs();
    return graph_->NumArcs();
  }
  const std::uint64_t work = x->support_degree_sum;
  ApplySparse(x);
  return work;
}

template <WeightPolicy WP>
void TransitionOperatorT<WP>::ApplyDense(const Vector& x, Vector* y) const {
  const NodeId n = graph_->NumNodes();
  GEER_CHECK_EQ(x.size(), static_cast<std::size_t>(n));
  y->assign(n, 0.0);
  const std::uint64_t* offsets = graph_->Offsets().data();
  const NodeId* adj = graph_->NeighborArray().data();
  const auto arcs = WP::Arcs(*graph_);
  for (NodeId u = 0; u < n; ++u) {
    double acc = 0.0;
    for (std::uint64_t k = offsets[u]; k < offsets[u + 1]; ++k) {
      // UnitWeight: the arc view yields a constexpr 1 that folds away.
      acc += arcs[k] * x[adj[k]];
    }
    const double weight = WP::NodeWeight(*graph_, u);
    (*y)[u] = weight == 0.0 ? 0.0 : acc / weight;
  }
}

template <WeightPolicy WP>
void TransitionOperatorT<WP>::ApplySparse(SparseVector* x) {
  // Scatter: for v in supp(x), for u in N(v): y(u) += w(v,u)·x(v); then
  // divide each touched u by w(u). Weight symmetry makes the scatter view
  // (over v's arcs) equal the gather view (over u's arcs). New support =
  // N(supp(x)).
  touched_.clear();
  // Raw pointers and the policy's arc view stay in registers across the
  // opaque touched_.push_back call below; vector-backed accesses would be
  // reloaded every iteration.
  const std::uint64_t* offsets = graph_->Offsets().data();
  const NodeId* adj = graph_->NeighborArray().data();
  const auto arcs = WP::Arcs(*graph_);
  for (NodeId v : x->support) {
    const double xv = x->values[v];
    if (xv == 0.0) continue;
    const std::uint64_t row_end = offsets[v + 1];
    for (std::uint64_t k = offsets[v]; k < row_end; ++k) {
      const NodeId u = adj[k];
      if (!touched_flag_[u]) {
        touched_flag_[u] = 1;
        touched_.push_back(u);
        scratch_[u] = 0.0;
      }
      scratch_[u] += arcs[k] * xv;
    }
  }
  // Clear old support entries in the destination, then commit.
  for (NodeId v : x->support) x->values[v] = 0.0;
  std::uint64_t degree_sum = 0;
  for (NodeId u : touched_) {
    x->values[u] = scratch_[u] / WP::NodeWeight(*graph_, u);
    touched_flag_[u] = 0;
    degree_sum += graph_->Degree(u);
  }
  x->support.assign(touched_.begin(), touched_.end());
  x->support_degree_sum = degree_sum;
}

template <WeightPolicy WP>
NormalizedAdjacencyOperatorT<WP>::NormalizedAdjacencyOperatorT(
    const GraphT& graph)
    : graph_(&graph),
      inv_sqrt_weight_(graph.NumNodes(), 0.0),
      top_eigenvector_(graph.NumNodes(), 0.0) {
  double norm_sq = 0.0;
  for (NodeId v = 0; v < graph.NumNodes(); ++v) {
    const double w = WP::NodeWeight(graph, v);
    GEER_CHECK(w > 0.0) << "isolated node " << v
                        << " — graph must be connected";
    inv_sqrt_weight_[v] = 1.0 / std::sqrt(w);
    top_eigenvector_[v] = std::sqrt(w);
    norm_sq += w;
  }
  const double inv_norm = 1.0 / std::sqrt(norm_sq);
  for (double& e : top_eigenvector_) e *= inv_norm;
}

template <WeightPolicy WP>
void NormalizedAdjacencyOperatorT<WP>::Apply(const Vector& x,
                                             Vector* y) const {
  const NodeId n = graph_->NumNodes();
  GEER_CHECK_EQ(x.size(), static_cast<std::size_t>(n));
  y->assign(n, 0.0);
  const std::uint64_t* offsets = graph_->Offsets().data();
  const NodeId* adj = graph_->NeighborArray().data();
  const auto arcs = WP::Arcs(*graph_);
  for (NodeId u = 0; u < n; ++u) {
    double acc = 0.0;
    for (std::uint64_t k = offsets[u]; k < offsets[u + 1]; ++k) {
      const NodeId v = adj[k];
      acc += arcs[k] * x[v] * inv_sqrt_weight_[v];
    }
    (*y)[u] = acc * inv_sqrt_weight_[u];
  }
}

template class TransitionOperatorT<UnitWeight>;
template class TransitionOperatorT<EdgeWeight>;
template class NormalizedAdjacencyOperatorT<UnitWeight>;
template class NormalizedAdjacencyOperatorT<EdgeWeight>;

}  // namespace geer
