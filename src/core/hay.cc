#include "core/hay.h"

#include <cmath>

#include "rw/wilson.h"
#include "util/check.h"

namespace geer {

template <WeightPolicy WP>
HayEstimatorT<WP>::HayEstimatorT(const GraphT& graph, ErOptions options)
    : graph_(&graph), options_(options), walker_(graph) {
  ValidateOptions(options_);
}

template <WeightPolicy WP>
bool HayEstimatorT<WP>::RebindGraph(const GraphT& graph,
                                    const GraphEpoch& epoch) {
  (void)epoch;
  graph_ = &graph;
  walker_ = WalkerFor<WP>(graph);
  return true;
}

template <WeightPolicy WP>
std::uint64_t HayEstimatorT<WP>::NumTrees() const {
  if (options_.hay_num_trees > 0) return options_.hay_num_trees;
  const double n = std::log(2.0 / options_.delta) /
                   (2.0 * options_.epsilon * options_.epsilon);
  return static_cast<std::uint64_t>(std::ceil(std::max(n, 1.0)));
}

template <WeightPolicy WP>
QueryStats HayEstimatorT<WP>::EstimateWithStats(NodeId s, NodeId t) {
  GEER_CHECK(SupportsQuery(s, t))
      << "HAY answers edge queries only: (" << s << "," << t << ") ∉ E";
  QueryStats stats;
  const std::uint64_t trees = NumTrees();
  Rng rng(options_.seed ^ (static_cast<std::uint64_t>(s) << 32) ^ t);
  std::uint64_t hits = 0;
  for (std::uint64_t k = 0; k < trees; ++k) {
    const SpanningTree tree = SampleSpanningTree(walker_, s, rng);
    if (tree.ContainsEdge(s, t)) ++hits;
  }
  stats.walks = trees;  // one loop-erased-walk forest per tree
  // Pr[e ∈ T] = w(e)·r(e) under the w-weighted tree measure.
  stats.value = static_cast<double>(hits) / static_cast<double>(trees) /
                WP::EdgeConductance(*graph_, s, t);
  return stats;
}

template class HayEstimatorT<UnitWeight>;
template class HayEstimatorT<EdgeWeight>;

}  // namespace geer
