#include "linalg/transition.h"

#include <gtest/gtest.h>

#include <cmath>

#include "graph/weighted_generators.h"
#include "graph/weighted_graph.h"

namespace geer {
namespace {

WeightedGraph SmallTestCircuit() {
  // Triangle 0-1-2 with a tail 2-3, mixed conductances.
  WeightedGraphBuilder b;
  b.AddEdge(0, 1, 2.0).AddEdge(1, 2, 1.0).AddEdge(0, 2, 0.5).AddEdge(2, 3,
                                                                     4.0);
  return b.Build();
}

TEST(WeightedTransitionTest, RowStochastic) {
  WeightedGraph g = SmallTestCircuit();
  WeightedTransitionOperator op(g);
  Vector ones(g.NumNodes(), 1.0);
  Vector y;
  op.ApplyDense(ones, &y);
  for (double v : y) EXPECT_NEAR(v, 1.0, 1e-12);
}

TEST(WeightedTransitionTest, OneHotGivesColumnProbabilities) {
  // After one application to e_s: y(v) = P(v, s) = w(v,s)/w(v).
  WeightedGraph g = SmallTestCircuit();
  WeightedTransitionOperator op(g);
  WeightedTransitionOperator::SparseVector x;
  x.InitOneHot(2, g);
  op.ApplyAuto(&x);
  EXPECT_NEAR(x.values[0], 0.5 / 2.5, 1e-12);   // w(0,2)/w(0)
  EXPECT_NEAR(x.values[1], 1.0 / 3.0, 1e-12);   // w(1,2)/w(1)
  EXPECT_NEAR(x.values[3], 4.0 / 4.0, 1e-12);   // w(3,2)/w(3)
  EXPECT_NEAR(x.values[2], 0.0, 1e-12);
}

TEST(WeightedTransitionTest, SparseAgreesWithDense) {
  WeightedGraph g = gen::TriangulatedGridCircuit(5, 5, 0.5, 2.0, 7);
  WeightedTransitionOperator op(g);
  WeightedTransitionOperator::SparseVector sparse;
  sparse.InitOneHot(12, g);
  Vector dense(g.NumNodes(), 0.0);
  dense[12] = 1.0;
  Vector scratch;
  for (int iter = 0; iter < 6; ++iter) {
    op.ApplyAuto(&sparse);
    op.ApplyDense(dense, &scratch);
    dense.swap(scratch);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      ASSERT_NEAR(sparse.values[v], dense[v], 1e-12)
          << "iter " << iter << " node " << v;
    }
  }
}

TEST(WeightedTransitionTest, DetailedBalanceOfWeightedChain) {
  // Reversibility: w(u) P(u,v) = w(u,v) = w(v) P(v,u).
  WeightedGraph g = gen::TriangulatedGridCircuit(3, 4, 0.25, 4.0, 9);
  WeightedTransitionOperator op(g);
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    Vector eu(g.NumNodes(), 0.0);
    eu[u] = 1.0;
    Vector pu;
    op.ApplyDense(eu, &pu);  // pu(v) = P(v, u)
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      EXPECT_NEAR(g.Strength(v) * pu[v], g.EdgeWeight(v, u), 1e-10);
    }
  }
}

TEST(WeightedTransitionTest, SupportDegreeSumMatchesUnweightedCostModel) {
  // The Eq. 17 cost is arc traversals: weights must not change it.
  WeightedGraphBuilder b;
  b.AddEdge(0, 1, 5.0).AddEdge(1, 2, 0.25).AddEdge(2, 3, 1.0).AddEdge(3, 4,
                                                                      2.0);
  WeightedGraph g = b.Build();  // path of 5 nodes
  WeightedTransitionOperator op(g);
  WeightedTransitionOperator::SparseVector x;
  x.InitOneHot(2, g);
  EXPECT_EQ(x.support_degree_sum, 2u);
  op.ApplyAuto(&x);
  EXPECT_EQ(x.support_degree_sum, 4u);  // support {1,3}, degrees 2+2
}

TEST(WeightedTransitionTest, SwitchesToDenseOnSaturation) {
  WeightedGraph g = gen::TriangulatedGridCircuit(4, 4, 1.0, 1.0, 1);
  WeightedTransitionOperator op(g);
  WeightedTransitionOperator::SparseVector x;
  x.InitOneHot(5, g);
  for (int i = 0; i < 6; ++i) op.ApplyAuto(&x);
  EXPECT_TRUE(x.dense);
  EXPECT_EQ(x.support_degree_sum, g.NumArcs());
}

TEST(WeightedTransitionTest, MassConservedUnderIteration) {
  // P is a stochastic-matrix action on column vectors through P(v,u)
  // entries weighted by strengths; the strength-weighted total
  // Σ_v w(v)·x_i(v) is invariant when x_0 = e_s (detailed balance).
  WeightedGraph g = SmallTestCircuit();
  WeightedTransitionOperator op(g);
  WeightedTransitionOperator::SparseVector x;
  x.InitOneHot(1, g);
  auto weighted_mass = [&g](const Vector& v) {
    double sum = 0.0;
    for (NodeId u = 0; u < g.NumNodes(); ++u) sum += v[u] * g.Strength(u);
    return sum;
  };
  const double initial = weighted_mass(x.values);
  for (int i = 0; i < 10; ++i) {
    op.ApplyAuto(&x);
    EXPECT_NEAR(weighted_mass(x.values), initial, 1e-9);
  }
}

TEST(NormalizedWeightedAdjacencyTest, TopEigenvectorIsFixedPoint) {
  WeightedGraph g = gen::TriangulatedGridCircuit(4, 5, 0.5, 3.0, 21);
  NormalizedWeightedAdjacencyOperator op(g);
  Vector y;
  op.Apply(op.TopEigenvector(), &y);
  for (std::size_t i = 0; i < y.size(); ++i) {
    EXPECT_NEAR(y[i], op.TopEigenvector()[i], 1e-10);
  }
}

TEST(NormalizedWeightedAdjacencyTest, UnitNorm) {
  WeightedGraph g = SmallTestCircuit();
  NormalizedWeightedAdjacencyOperator op(g);
  EXPECT_NEAR(Norm2(op.TopEigenvector()), 1.0, 1e-12);
}

}  // namespace
}  // namespace geer
