#!/usr/bin/env bash
# Shell-level self-test for tools/check_bench.sh: synthesizes a small
# BENCH_pr*.json trajectory in a scratch BENCH_DIR and asserts the
# gate's observable contract —
#   1. a >threshold throughput drop between the last two files exits 1,
#   2. a within-threshold wiggle exits 0,
#   3. a slow monotone decline (each step under the threshold) passes the
#      pairwise gate but earns a "drift" warning from the trajectory scan,
#   4. non-gated time series never hard-fail (warn only),
#   5. a single-file trajectory skips cleanly (exit 0),
#   6. gated latency series (swap_ms / p95_ms): growth past the
#      --time-threshold exits 1, growth under it passes silently,
#   7. the obs overhead series warns past its absolute 2% budget and is
#      exempt from the relative gates.
# Registered in CMakeLists.txt as test check_bench_selftest; needs only
# bash + awk, like the script under test.

set -euo pipefail

SCRIPT_DIR="$(cd "$(dirname "${BASH_SOURCE[0]}")" && pwd)"
CHECK="$SCRIPT_DIR/../tools/check_bench.sh"
[[ -x "$CHECK" ]] || { echo "missing $CHECK" >&2; exit 2; }

TMP="$(mktemp -d)"
trap 'rm -rf "$TMP"' EXIT

fails=0
expect() {  # expect <name> <want_status> <grep_pattern|-> <cmd...>
  local name="$1" want="$2" pattern="$3"
  shift 3
  local out status=0
  out="$("$@" 2>&1)" || status=$?
  if [[ "$status" != "$want" ]]; then
    echo "FAIL $name: exit $status, want $want"
    echo "$out" | sed 's/^/    /'
    fails=$((fails + 1))
  elif [[ "$pattern" != "-" ]] && ! grep -q "$pattern" <<< "$out"; then
    echo "FAIL $name: output lacks /$pattern/"
    echo "$out" | sed 's/^/    /'
    fails=$((fails + 1))
  else
    echo "ok   $name"
  fi
}

# One entry object per line, run_bench.sh's exact shape.
entry() {  # entry <method> <metric> <value>
  printf '{"method": "%s", "metric": "%s", "value": %s, "threads": 2}\n' \
      "$1" "$2" "$3"
}
bench_file() {  # bench_file <dir> <pr> <tp_qps> <smm_ms>
  local dir="$1" pr="$2" qps="$3" ms="$4"
  {
    echo "["
    entry TP "serve/facebook/session/throughput_qps" "$qps" | sed 's/^/ /'
    entry SMM "batch_shared/dblp/eps0.05/shared/ms_per_q" "$ms" | sed 's/^/,/'
    echo "]"
  } > "$dir/BENCH_pr${pr}.json"
}

# 1. >15% throughput drop between the last two files must exit 1.
DIR="$TMP/drop"; mkdir -p "$DIR"
bench_file "$DIR" 1 1000 2.0
bench_file "$DIR" 2 700 2.0
expect "throughput-drop-fails" 1 "FAIL" \
    env BENCH_DIR="$DIR" "$CHECK" "$DIR/BENCH_pr2.json"

# 2. A within-threshold wiggle is clean.
DIR="$TMP/ok"; mkdir -p "$DIR"
bench_file "$DIR" 1 1000 2.0
bench_file "$DIR" 2 950 2.1
expect "small-wiggle-passes" 0 "0 failures" \
    env BENCH_DIR="$DIR" "$CHECK" "$DIR/BENCH_pr2.json"

# 3. Slow leak: -8% per PR over 4 PRs — every pairwise step passes, the
#    trajectory scan must still report the monotone drift.
DIR="$TMP/leak"; mkdir -p "$DIR"
bench_file "$DIR" 1 1000 2.0
bench_file "$DIR" 2 920 2.0
bench_file "$DIR" 3 850 2.0
bench_file "$DIR" 4 780 2.0
expect "slow-leak-warns-drift" 0 "drift .*throughput_qps.* over last 4 PRs" \
    env BENCH_DIR="$DIR" "$CHECK" "$DIR/BENCH_pr4.json"

# 4. Time-series growth warns but never gates.
DIR="$TMP/time"; mkdir -p "$DIR"
bench_file "$DIR" 1 1000 2.0
bench_file "$DIR" 2 1000 3.0
expect "time-growth-warns-only" 0 "warn .*ms_per_q" \
    env BENCH_DIR="$DIR" "$CHECK" "$DIR/BENCH_pr2.json"

# 5. No predecessor → skip cleanly.
DIR="$TMP/single"; mkdir -p "$DIR"
bench_file "$DIR" 1 1000 2.0
expect "no-baseline-skips" 0 "skipping" \
    env BENCH_DIR="$DIR" "$CHECK" "$DIR/BENCH_pr1.json"

# 6. Gated latency series: swap_ms growth past --time-threshold (35%
#    default) hard-fails; growth under it is clean (not even a warning).
swap_file() {  # swap_file <dir> <pr> <swap_ms>
  local dir="$1" pr="$2" ms="$3"
  {
    echo "["
    entry DYN "dyn/dblp/smm_touch1%_incr/swap_ms" "$ms" | sed 's/^/ /'
    echo "]"
  } > "$dir/BENCH_pr${pr}.json"
}
DIR="$TMP/swap-grow"; mkdir -p "$DIR"
swap_file "$DIR" 1 10.0
swap_file "$DIR" 2 20.0
expect "swap-ms-growth-fails" 1 "FAIL .*swap_ms" \
    env BENCH_DIR="$DIR" "$CHECK" "$DIR/BENCH_pr2.json"
DIR="$TMP/swap-ok"; mkdir -p "$DIR"
swap_file "$DIR" 1 10.0
swap_file "$DIR" 2 12.0
expect "swap-ms-wiggle-passes" 0 "1 series ok, 0 warnings, 0 failures" \
    env BENCH_DIR="$DIR" "$CHECK" "$DIR/BENCH_pr2.json"

# 7. Networked-tier latency series (net/<dataset>/<mode>/p95_ms) is
#    gated exactly like swap_ms: growth past the threshold fails, a
#    wiggle under it passes.
net_file() {  # net_file <dir> <pr> <p95_ms>
  local dir="$1" pr="$2" ms="$3"
  {
    echo "["
    entry GEER "net/facebook/net_closed/p95_ms" "$ms" | sed 's/^/ /'
    echo "]"
  } > "$dir/BENCH_pr${pr}.json"
}
DIR="$TMP/net-grow"; mkdir -p "$DIR"
net_file "$DIR" 1 1.0
net_file "$DIR" 2 2.0
expect "net-p95-growth-fails" 1 "FAIL .*net/facebook" \
    env BENCH_DIR="$DIR" "$CHECK" "$DIR/BENCH_pr2.json"
DIR="$TMP/net-ok"; mkdir -p "$DIR"
net_file "$DIR" 1 1.0
net_file "$DIR" 2 1.1
expect "net-p95-wiggle-passes" 0 "1 series ok, 0 warnings, 0 failures" \
    env BENCH_DIR="$DIR" "$CHECK" "$DIR/BENCH_pr2.json"

# 8. Instrumentation-overhead series (obs/<dataset>/overhead_pct): an
#    absolute value past the 2% budget warns without gating, and even a
#    large relative swing between two in-budget values stays silent
#    (the series is excluded from the relative gates).
obs_file() {  # obs_file <dir> <pr> <overhead_pct>
  local dir="$1" pr="$2" pct="$3"
  {
    echo "["
    entry GEER "obs/dblp/overhead_pct" "$pct" | sed 's/^/ /'
    echo "]"
  } > "$dir/BENCH_pr${pr}.json"
}
DIR="$TMP/obs-over"; mkdir -p "$DIR"
obs_file "$DIR" 1 0.5
obs_file "$DIR" 2 3.5
expect "obs-overhead-budget-warns" 0 "warn .*overhead_pct.*budget" \
    env BENCH_DIR="$DIR" "$CHECK" "$DIR/BENCH_pr2.json"
DIR="$TMP/obs-ok"; mkdir -p "$DIR"
obs_file "$DIR" 1 0.1
obs_file "$DIR" 2 1.5  # 15x relative, still inside the absolute budget
expect "obs-overhead-relative-exempt" 0 "1 series ok, 0 warnings, 0 failures" \
    env BENCH_DIR="$DIR" "$CHECK" "$DIR/BENCH_pr2.json"

if [[ "$fails" -gt 0 ]]; then
  echo "== check_bench_selftest: $fails failure(s) =="
  exit 1
fi
echo "== check_bench_selftest: all cases ok =="
