// Name-based estimator factories, so the benchmark harness, CLI and
// examples can select algorithms from the command line — one factory per
// weight mode, both returning the same ErEstimator interface (every
// estimator body is a weight-generic template; see graph/weight_policy.h).

#ifndef GEER_CORE_REGISTRY_H_
#define GEER_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/options.h"
#include "graph/graph.h"
#include "graph/weighted_graph.h"

namespace geer {

/// Creates the estimator registered under `name`. Known names:
/// "GEER", "AMC", "SMM", "SMM-PengEll", "TP", "TPC", "MC", "MC2", "HAY",
/// "RP", "EXACT", "CG" (case-sensitive). Returns nullptr for unknown
/// names. Construction may abort if the algorithm's preconditions fail
/// (e.g. EXACT on a too-large graph) — pre-check with EstimatorFeasible.
std::unique_ptr<ErEstimator> CreateEstimator(const std::string& name,
                                             const Graph& graph,
                                             const ErOptions& options);

/// Estimators hold a pointer to `graph` for their whole lifetime, so a
/// temporary would dangle past the call — rejected at compile time.
std::unique_ptr<ErEstimator> CreateEstimator(const std::string& name,
                                             Graph&& graph,
                                             const ErOptions& options) = delete;

/// All registered names, in the paper's presentation order.
std::vector<std::string> EstimatorNames();

/// True iff `name` can be constructed for this graph/options without
/// violating resource preconditions (EXACT's dense cap, RP's sketch
/// memory budget).
bool EstimatorFeasible(const std::string& name, const Graph& graph,
                       const ErOptions& options);

/// Weighted factory: creates the EdgeWeight instantiation of the
/// algorithm registered under `name` on a conductance graph. Accepts the
/// same canonical names as CreateEstimator (every registered algorithm is
/// weight-generalizable) plus their "W-"-prefixed display names
/// ("W-GEER" ≡ "GEER"). Returns nullptr for unknown names.
std::unique_ptr<ErEstimator> CreateWeightedEstimator(
    const std::string& name, const WeightedGraph& graph,
    const ErOptions& options);

/// Estimators hold a pointer to `graph`; a temporary would dangle.
std::unique_ptr<ErEstimator> CreateWeightedEstimator(
    const std::string& name, WeightedGraph&& graph,
    const ErOptions& options) = delete;

/// All names accepted by CreateWeightedEstimator, canonical form.
std::vector<std::string> WeightedEstimatorNames();

/// Weighted analogue of EstimatorFeasible.
bool WeightedEstimatorFeasible(const std::string& name,
                               const WeightedGraph& graph,
                               const ErOptions& options);

/// Strips the "W-" display prefix ("W-GEER" → "GEER"); canonical names
/// pass through unchanged. Does not validate the name.
std::string CanonicalEstimatorName(const std::string& name);

/// True iff the algorithm behind `name` (canonical or "W-"-prefixed)
/// reads options.lambda — the walk-length formulas of Eq. (5)/(6).
/// Callers use it to decide whether to precompute λ once per graph;
/// estimators without a precomputed λ run Lanczos themselves.
bool EstimatorReadsLambda(const std::string& name);

/// True iff the algorithm's EstimateBatch amortizes work across a
/// same-source query group (TP/TPC reuse the source's walk populations,
/// SMM/GEER the source-side SpMV push vectors) — mirrors
/// ErEstimator::SharesBatchWork so the harness can report capability
/// without constructing. EXACT/CG/RP instead share construction-time
/// state (factorization / solver / sketch) across batch workers, which
/// this predicate does not count.
bool EstimatorSharesBatchWork(const std::string& name);

}  // namespace geer

#endif  // GEER_CORE_REGISTRY_H_
