// Dense symmetric eigensolver (cyclic Jacobi rotations). O(n³)-per-sweep;
// used as the ground-truth oracle for the Lanczos spectral bounds and by
// tests. Not intended for large n.

#ifndef GEER_LINALG_JACOBI_EIGEN_H_
#define GEER_LINALG_JACOBI_EIGEN_H_

#include <vector>

#include "linalg/dense.h"

namespace geer {

/// Full eigendecomposition of a symmetric matrix.
struct EigenDecomposition {
  Vector eigenvalues;   ///< ascending order
  Matrix eigenvectors;  ///< column j pairs with eigenvalues[j]
};

/// Computes all eigenvalues/vectors of symmetric `m` by cyclic Jacobi.
/// `tol` bounds the off-diagonal Frobenius mass at convergence.
EigenDecomposition JacobiEigenSolve(const Matrix& m, double tol = 1e-12,
                                    int max_sweeps = 100);

}  // namespace geer

#endif  // GEER_LINALG_JACOBI_EIGEN_H_
