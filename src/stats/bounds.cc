#include "stats/bounds.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace geer {

double EmpiricalBernsteinBound(std::uint64_t num_samples,
                               double empirical_variance, double range_psi,
                               double delta) {
  GEER_CHECK_GT(num_samples, 0u);
  GEER_CHECK(delta > 0.0 && delta < 1.0);
  GEER_CHECK_GE(empirical_variance, -1e-12);
  const double n = static_cast<double>(num_samples);
  const double log_term = std::log(3.0 / delta);
  const double var = std::max(empirical_variance, 0.0);
  return std::sqrt(2.0 * var * log_term / n) +
         3.0 * range_psi * log_term / n;
}

double HoeffdingBound(std::uint64_t num_samples, double range_psi,
                      double delta) {
  GEER_CHECK_GT(num_samples, 0u);
  GEER_CHECK(delta > 0.0 && delta < 1.0);
  const double n = static_cast<double>(num_samples);
  return range_psi * std::sqrt(std::log(2.0 / delta) / (2.0 * n));
}

std::uint64_t HoeffdingSampleCount(double epsilon, double range_psi,
                                   double delta) {
  GEER_CHECK(epsilon > 0.0);
  GEER_CHECK(delta > 0.0 && delta < 1.0);
  const double n =
      range_psi * range_psi * std::log(2.0 / delta) / (2.0 * epsilon * epsilon);
  return static_cast<std::uint64_t>(std::ceil(std::max(n, 1.0)));
}

std::uint64_t AmcMaxSamples(double epsilon, double range_psi, double delta,
                            int num_batches_tau) {
  GEER_CHECK(epsilon > 0.0);
  GEER_CHECK(delta > 0.0 && delta < 1.0);
  GEER_CHECK_GE(num_batches_tau, 1);
  const double n = 2.0 * range_psi * range_psi *
                   std::log(2.0 * num_batches_tau / delta) /
                   (epsilon * epsilon);
  return static_cast<std::uint64_t>(std::ceil(std::max(n, 1.0)));
}

}  // namespace geer
