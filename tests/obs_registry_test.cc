// The metrics-registry contract (obs/metrics.h + obs/stats.h): counters
// are monotone and sum across per-thread blocks; the log2 histogram
// bucketing is frozen (scheme id 1); registration is idempotent per
// name; the SetEnabled() gate drops recordings without losing already-
// recorded values; snapshots filter by prefix, merge bucket-wise across
// shards, and render deterministically as Prometheus text.

#include <gtest/gtest.h>

#include <cstdint>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"
#include "obs/stats.h"

namespace geer::obs {
namespace {

/// Restores the global recording gate whatever a test does to it — the
/// gate is process-wide, and other suites in this binary record too.
class ScopedEnabled {
 public:
  explicit ScopedEnabled(bool on) : prev_(Enabled()) { SetEnabled(on); }
  ~ScopedEnabled() { SetEnabled(prev_); }

 private:
  bool prev_;
};

// ---------------------------------------------------------- bucket scheme

TEST(HistogramBucketTest, SchemeIsFrozen) {
  // Scheme id 1: bucket 0 = {0}, bucket i = [2^(i-1), 2^i), top bucket
  // absorbs everything past 2^46. A change here is a wire break and must
  // bump kHistogramSchemeId, not edit this test.
  EXPECT_EQ(kHistogramBuckets, 48u);
  EXPECT_EQ(kHistogramSchemeId, 1);
  EXPECT_EQ(HistogramBucket(0), 0u);
  EXPECT_EQ(HistogramBucket(1), 1u);
  EXPECT_EQ(HistogramBucket(2), 2u);
  EXPECT_EQ(HistogramBucket(3), 2u);
  EXPECT_EQ(HistogramBucket(4), 3u);
  for (std::size_t k = 1; k < 47; ++k) {
    const std::uint64_t pow = 1ull << k;
    EXPECT_EQ(HistogramBucket(pow - 1), k) << "2^" << k << " - 1";
    EXPECT_EQ(HistogramBucket(pow), k + 1) << "2^" << k;
  }
  EXPECT_EQ(HistogramBucket(1ull << 47), 47u);
  EXPECT_EQ(HistogramBucket(std::numeric_limits<std::uint64_t>::max()), 47u);
}

TEST(HistogramBucketTest, BoundsBracketEveryBucket) {
  for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
    const std::uint64_t lo = HistogramBucketLower(b);
    const std::uint64_t hi = HistogramBucketUpper(b);
    EXPECT_LE(lo, hi) << "bucket " << b;
    EXPECT_EQ(HistogramBucket(lo), b) << "lower bound of bucket " << b;
  }
  EXPECT_EQ(HistogramBucketLower(0), 0u);
  EXPECT_EQ(HistogramBucketLower(1), 1u);
  EXPECT_EQ(HistogramBucketUpper(1), 2u);
}

// --------------------------------------------------------------- registry

TEST(RegistryTest, CounterAddsAndStaysMonotone) {
  Registry reg;
  const Registry::MetricId id = reg.Counter("test_total");
  reg.Add(id);
  reg.Add(id, 41);
  StatsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("test_total"), 42u);
  reg.Add(id, 0);  // a zero delta must not move the value
  snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("test_total"), 42u);
}

TEST(RegistryTest, RegistrationIsIdempotentPerName) {
  Registry reg;
  const Registry::MetricId a = reg.Counter("same_total");
  const Registry::MetricId b = reg.Counter("same_total");
  EXPECT_EQ(a, b);
  reg.Add(a);
  reg.Add(b);
  EXPECT_EQ(reg.Snapshot().counters.at("same_total"), 2u);

  const Registry::MetricId h1 = reg.Histogram("lat_ns");
  const Registry::MetricId h2 = reg.Histogram("lat_ns");
  EXPECT_EQ(h1, h2);
}

TEST(RegistryTest, HistogramRecordsIntoFrozenBuckets) {
  Registry reg;
  const Registry::MetricId id = reg.Histogram("lat_ns");
  reg.RecordNs(id, 0);     // bucket 0
  reg.RecordNs(id, 1);     // bucket 1
  reg.RecordNs(id, 1000);  // bucket 10: [512, 1024)
  reg.RecordNs(id, 1024);  // bucket 11
  const HistogramData h = reg.ReadHistogram(id);
  EXPECT_EQ(h.count, 4u);
  EXPECT_EQ(h.sum_ns, 2025u);
  EXPECT_EQ(h.buckets[0], 1u);
  EXPECT_EQ(h.buckets[1], 1u);
  EXPECT_EQ(h.buckets[10], 1u);
  EXPECT_EQ(h.buckets[11], 1u);
}

TEST(RegistryTest, ThreadsMergeIntoOneSeries) {
  // Each thread writes through its own private cell block; the snapshot
  // must sum them all — including blocks of threads that have exited.
  Registry reg;
  const Registry::MetricId counter = reg.Counter("threaded_total");
  const Registry::MetricId hist = reg.Histogram("threaded_ns");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, counter, hist] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) {
        reg.Add(counter);
        reg.RecordNs(hist, 100);  // bucket 7: [64, 128)
      }
    });
  }
  for (auto& t : threads) t.join();
  const StatsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("threaded_total"), kThreads * kPerThread);
  const HistogramData h = reg.ReadHistogram(hist);
  EXPECT_EQ(h.count, kThreads * kPerThread);
  EXPECT_EQ(h.buckets[7], kThreads * kPerThread);
  EXPECT_EQ(h.sum_ns, kThreads * kPerThread * 100);
}

TEST(RegistryTest, GateDropsRecordingsButKeepsHistory) {
  ScopedEnabled on(true);
  Registry reg;
  const Registry::MetricId counter = reg.Counter("gated_total");
  const Registry::MetricId hist = reg.Histogram("gated_ns");
  reg.Add(counter, 5);
  reg.RecordNs(hist, 10);

  SetEnabled(false);
  reg.Add(counter, 100);    // dropped
  reg.RecordNs(hist, 999);  // dropped
  StatsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("gated_total"), 5u);
  EXPECT_EQ(reg.ReadHistogram(hist).count, 1u);

  SetEnabled(true);
  reg.Add(counter, 2);
  snap = reg.Snapshot();
  EXPECT_EQ(snap.counters.at("gated_total"), 7u);
}

TEST(RegistryTest, GaugesSetNotAccumulate) {
  Registry reg;
  reg.SetGauge("bytes", 10.0);
  reg.SetGauge("bytes", 3.5);  // overwrite, not add
  const StatsSnapshot snap = reg.Snapshot();
  EXPECT_EQ(snap.gauges.at("bytes"), 3.5);
}

TEST(RegistryTest, SnapshotFiltersByPrefix) {
  Registry reg;
  reg.Add(reg.Counter("geer_a_total"), 1);
  reg.Add(reg.Counter("other_total"), 1);
  reg.RecordNs(reg.Histogram("geer_b_ns"), 7);
  reg.SetGauge("geer_g", 1.0);
  reg.SetGauge("other_g", 1.0);

  const StatsSnapshot all = reg.Snapshot();
  EXPECT_EQ(all.counters.size(), 2u);
  const StatsSnapshot geer = reg.Snapshot("geer_");
  EXPECT_EQ(geer.counters.size(), 1u);
  EXPECT_EQ(geer.counters.count("geer_a_total"), 1u);
  EXPECT_EQ(geer.histograms.size(), 1u);
  EXPECT_EQ(geer.gauges.size(), 1u);
  EXPECT_EQ(geer.gauges.count("geer_g"), 1u);
}

TEST(RegistryTest, GlobalIsOneSharedInstance) {
  EXPECT_EQ(&Registry::Global(), &Registry::Global());
}

// ------------------------------------------------------ snapshot algebra

TEST(StatsTest, MergeSnapshotsSumsEverything) {
  StatsSnapshot a;
  a.counters["answered"] = 10;
  a.counters["only_a"] = 1;
  a.gauges["bytes"] = 100.0;
  a.histograms["lat"].buckets[3] = 4;
  a.histograms["lat"].count = 4;
  a.histograms["lat"].sum_ns = 24;

  StatsSnapshot b;
  b.counters["answered"] = 5;
  b.gauges["bytes"] = 50.0;
  b.histograms["lat"].buckets[3] = 1;
  b.histograms["lat"].buckets[9] = 2;
  b.histograms["lat"].count = 3;
  b.histograms["lat"].sum_ns = 1030;

  const std::vector<StatsSnapshot> shards = {a, b};
  const StatsSnapshot merged = MergeSnapshots(shards);
  EXPECT_EQ(merged.counters.at("answered"), 15u);
  EXPECT_EQ(merged.counters.at("only_a"), 1u);
  EXPECT_EQ(merged.gauges.at("bytes"), 150.0);
  EXPECT_EQ(merged.histograms.at("lat").buckets[3], 5u);
  EXPECT_EQ(merged.histograms.at("lat").buckets[9], 2u);
  EXPECT_EQ(merged.histograms.at("lat").count, 7u);
  EXPECT_EQ(merged.histograms.at("lat").sum_ns, 1054u);
}

TEST(StatsTest, QuantileInterpolatesWithinBucket) {
  HistogramData h;
  h.buckets[10] = 100;  // all mass in [512, 1024)
  h.count = 100;
  const double p0 = HistogramQuantile(h, 0.0);
  const double p50 = HistogramQuantile(h, 0.5);
  const double p100 = HistogramQuantile(h, 1.0);
  EXPECT_GE(p0, 512.0);
  EXPECT_LE(p100, 1024.0);
  EXPECT_LT(p0, p50);
  EXPECT_LT(p50, p100);
}

TEST(StatsTest, QuantileWalksAcrossBuckets) {
  HistogramData h;
  h.buckets[4] = 90;   // [8, 16)
  h.buckets[20] = 10;  // [2^19, 2^20)
  h.count = 100;
  EXPECT_LT(HistogramQuantile(h, 0.5), 16.0);
  EXPECT_GE(HistogramQuantile(h, 0.95), static_cast<double>(1u << 19));
  EXPECT_EQ(HistogramQuantile(HistogramData{}, 0.5), 0.0);  // empty
}

TEST(StatsTest, PrometheusTextIsDeterministic) {
  StatsSnapshot snap;
  snap.counters["geer_serve_answered_total{method=\"GEER\"}"] = 7;
  snap.gauges["geer_cache_bytes"] = 2048.0;
  snap.histograms["geer_serve_latency_ns{method=\"GEER\"}"].buckets[10] = 3;
  snap.histograms["geer_serve_latency_ns{method=\"GEER\"}"].count = 3;
  snap.histograms["geer_serve_latency_ns{method=\"GEER\"}"].sum_ns = 2100;

  const std::string text = RenderPrometheusText(snap);
  EXPECT_EQ(text, RenderPrometheusText(snap));  // bit-identical re-render
  EXPECT_NE(
      text.find("geer_serve_answered_total{method=\"GEER\"} 7"),
      std::string::npos);
  EXPECT_NE(text.find("geer_cache_bytes 2048"), std::string::npos);
  EXPECT_NE(text.find("geer_serve_latency_ns_count{method=\"GEER\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("geer_serve_latency_ns_sum_ns{method=\"GEER\"} 2100"),
            std::string::npos);
  EXPECT_NE(text.find("quantile=\"0.95\""), std::string::npos);
  EXPECT_EQ(text.back(), '\n');
}

}  // namespace
}  // namespace geer::obs
