// The dynamic serving contract (dyn/dyn_serve.h + QueryService epoch
// swaps): every answer produced around concurrent epoch swaps is
// bit-identical to the serial estimate on the SNAPSHOT the result's
// epoch stamp names — regardless of scheduler threads, micro-batch
// boundaries, concurrent client submitters, or session caches. Also
// pins the ApplyUpdates barrier semantics (pre-swap submissions answer
// on the old epoch, post-swap on the new one) and the swap lifecycle
// (shutdown resolves pending swap futures). Runs under ThreadSanitizer
// in CI.

#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <limits>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "core/registry.h"
#include "dyn/dyn_serve.h"
#include "dyn/dynamic_graph.h"
#include "eval/dynamic_workload.h"
#include "graph/generators.h"
#include "serve/query_service.h"

namespace geer {
namespace {

ErOptions TestOptions() {
  ErOptions opt;
  opt.epsilon = 0.5;
  opt.delta = 0.1;
  opt.seed = 20260801;
  opt.tp_scale = 0.01;   // scaled constants keep the suite fast; this
  opt.tpc_scale = 0.01;  // suite checks determinism, not accuracy
  opt.mc_gamma_upper = 8.0;
  return opt;
}

Graph BaseGraph() { return gen::ErdosRenyi(36, 280, 9); }

// Three commits of chord insertions/deletions on the base graph (chords
// picked deterministically among its non-edges; deletions remove only
// previously inserted chords, so the graph stays connected).
std::vector<std::vector<EdgeUpdate>> UpdateBatches() {
  const Graph base = BaseGraph();
  std::vector<Edge> chords;
  for (NodeId u = 0; u < base.NumNodes() && chords.size() < 4; ++u) {
    for (NodeId v = u + 10; v < base.NumNodes(); ++v) {
      if (!base.HasEdge(u, v)) {
        chords.push_back({u, v});
        break;  // at most one chord per u keeps them distinct
      }
    }
  }
  auto insert = [](const Edge& e) {
    return EdgeUpdate{EdgeUpdateKind::kInsert, e.first, e.second, 1.0};
  };
  auto remove = [](const Edge& e) {
    return EdgeUpdate{EdgeUpdateKind::kDelete, e.first, e.second, 0.0};
  };
  return {
      {insert(chords[0]), insert(chords[1])},
      {remove(chords[0]), insert(chords[2])},
      {insert(chords[3]), remove(chords[1])},
  };
}

// Snapshot graphs of every epoch the batches produce (epoch 0 first).
std::vector<std::shared_ptr<const DynSnapshot>> EpochSnapshots() {
  auto graph = std::make_shared<DynamicGraph>(BaseGraph());
  std::vector<std::shared_ptr<const DynSnapshot>> snapshots;
  snapshots.push_back(graph->Current());
  for (const auto& batch : UpdateBatches()) {
    for (const EdgeUpdate& op : batch) graph->Apply(op);
    snapshots.push_back(graph->Commit());
  }
  return snapshots;
}

// Serial oracle: per epoch, per query, the plain Estimate value (NaN =
// unsupported).
std::vector<std::vector<double>> SerialPerEpoch(
    const std::string& name,
    const std::vector<std::shared_ptr<const DynSnapshot>>& snapshots,
    const std::vector<QueryPair>& queries, const ErOptions& options) {
  std::vector<std::vector<double>> values;
  for (const auto& snapshot : snapshots) {
    auto estimator = CreateEstimator(name, *snapshot->graph, options);
    std::vector<double> epoch_values(
        queries.size(), std::numeric_limits<double>::quiet_NaN());
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (!estimator->SupportsQuery(queries[i].s, queries[i].t)) continue;
      epoch_values[i] = estimator->Estimate(queries[i].s, queries[i].t);
    }
    values.push_back(std::move(epoch_values));
  }
  return values;
}

std::vector<QueryPair> TestQueries() {
  return {{3, 1}, {3, 5}, {3, 9}, {3, 13}, {7, 2},
          {11, 4}, {0, 19}, {6, 6}, {3, 5}, {12, 27}};
}

// Phase replay through RunDynamicWorkload: every estimator, every epoch
// stamped answer equals the serial oracle on that epoch's snapshot.
TEST(DynServeDeterminismTest, EveryAlgorithmBitIdenticalAcrossEpochs) {
  const ErOptions options = TestOptions();
  const std::vector<QueryPair> queries = TestQueries();
  const auto snapshots = EpochSnapshots();
  const auto batches = UpdateBatches();

  // Interleave: all queries on epoch 0, then per batch an update event
  // followed by the full query set on the new epoch.
  std::vector<DynTraceEvent> trace;
  for (const QueryPair& q : queries) trace.push_back(DynTraceEvent::Query(q));
  for (const auto& batch : batches) {
    trace.push_back(DynTraceEvent::Update(batch));
    for (const QueryPair& q : queries) {
      trace.push_back(DynTraceEvent::Query(q));
    }
  }

  for (const std::string& name : EstimatorNames()) {
    const auto serial = SerialPerEpoch(name, snapshots, queries, options);

    DynamicGraph graph(BaseGraph());
    ServeOptions serve_options;
    serve_options.threads = 2;
    serve_options.max_batch_size = 4;
    serve_options.max_linger_seconds = 0.0;
    const DynamicWorkloadResult result = RunDynamicWorkload<UnitWeight>(
        graph, name, options, trace, serve_options);

    ASSERT_EQ(result.commits, batches.size()) << name;
    ASSERT_EQ(result.epochs.size(), snapshots.size()) << name;
    std::size_t qi = 0;  // index into the repeated query set
    for (std::size_t i = 0; i < trace.size(); ++i) {
      if (trace[i].is_update) continue;
      const std::size_t query_index = qi % queries.size();
      const std::uint64_t expected_epoch = qi / queries.size();
      ++qi;
      ASSERT_EQ(result.value_epochs[i], expected_epoch)
          << name << " event " << i << ": barrier semantics pin the epoch";
      const double expected = serial[expected_epoch][query_index];
      if (std::isnan(expected)) {
        EXPECT_EQ(result.statuses[i], ServeStatus::kUnsupported)
            << name << " event " << i;
      } else {
        EXPECT_EQ(result.statuses[i], ServeStatus::kAnswered)
            << name << " event " << i;
        EXPECT_EQ(result.values[i], expected)
            << name << " event " << i << " epoch " << expected_epoch;
      }
    }
  }
}

// Concurrent submitters hammer the service while the writer thread
// commits and swaps epochs: every resolved future must carry a valid
// epoch stamp and the serial value OF THAT EPOCH. Sessions stay on
// (the serve default), so selective invalidation is in the loop. This
// is the TSan cell of the acceptance criteria.
TEST(DynServeDeterminismTest, ConcurrentSubmittersAcrossEpochSwaps) {
  const ErOptions options = TestOptions();
  const std::vector<QueryPair> queries = TestQueries();
  const auto snapshots = EpochSnapshots();
  const auto batches = UpdateBatches();
  for (const std::string& name : {std::string("GEER"), std::string("TP"),
                                  std::string("EXACT")}) {
    const auto serial = SerialPerEpoch(name, snapshots, queries, options);

    DynamicGraph graph(BaseGraph());
    auto initial = graph.Current();
    auto estimator = CreateEstimator(name, *initial->graph, options);
    ServeOptions serve_options;
    serve_options.threads = 2;
    serve_options.max_batch_size = 3;
    serve_options.max_linger_seconds = 0.0;
    QueryService service(*estimator, serve_options);

    constexpr std::size_t kClients = 4;
    constexpr int kRounds = 6;
    std::vector<std::vector<std::pair<std::size_t,
                                      std::future<QueryResult>>>>
        per_client(kClients);
    std::vector<std::thread> clients;
    clients.reserve(kClients);
    for (std::size_t c = 0; c < kClients; ++c) {
      clients.emplace_back([&, c]() {
        for (int round = 0; round < kRounds; ++round) {
          for (std::size_t i = c; i < queries.size(); i += kClients) {
            per_client[c].emplace_back(i, service.Submit(queries[i]));
          }
        }
      });
    }
    // The writer thread swaps epochs while the clients submit.
    std::thread writer([&]() {
      for (const auto& batch : batches) {
        for (const EdgeUpdate& op : batch) graph.Apply(op);
        auto snapshot = graph.Commit();
        std::future<bool> swapped =
            ApplyEpochUpdate<UnitWeight>(service, snapshot);
        ASSERT_TRUE(swapped.get()) << name;
      }
    });
    for (std::thread& t : clients) t.join();
    writer.join();
    service.Flush();

    for (auto& client : per_client) {
      for (auto& [i, future] : client) {
        const QueryResult result = future.get();
        ASSERT_LT(result.epoch, serial.size()) << name;
        const double expected = serial[result.epoch][i];
        if (std::isnan(expected)) {
          EXPECT_EQ(result.status, ServeStatus::kUnsupported) << name;
        } else {
          EXPECT_EQ(result.status, ServeStatus::kAnswered) << name;
          EXPECT_EQ(result.stats.value, expected)
              << name << " query " << i << " epoch " << result.epoch;
        }
      }
    }
    service.Shutdown();
    const ServeMetrics metrics = service.Metrics();
    EXPECT_EQ(metrics.epoch_swaps, batches.size()) << name;
  }
}

// Barrier semantics, pinned without the workload driver: a query
// submitted BEFORE ApplyUpdates answers on the old epoch even though
// the swap is already queued; one submitted after the future resolves
// answers on the new epoch.
TEST(DynServeDeterminismTest, ApplyUpdatesIsASubmissionBarrier) {
  const ErOptions options = TestOptions();
  DynamicGraph graph(BaseGraph());
  auto initial = graph.Current();
  auto estimator = CreateEstimator("GEER", *initial->graph, options);
  ServeOptions serve_options;
  serve_options.threads = 1;
  serve_options.max_batch_size = 64;
  serve_options.max_linger_seconds = 1.0;  // long: the swap must cut it
  QueryService service(*estimator, serve_options);

  // Query the chord's own endpoints: inserting the chord turns the pair
  // into an edge, so its resistance is guaranteed to move.
  const EdgeUpdate chord = UpdateBatches()[0][0];
  const QueryPair probe{chord.u, chord.v};
  auto before = service.Submit(probe);
  graph.Apply(chord);
  auto snapshot = graph.Commit();
  std::future<bool> swapped = ApplyEpochUpdate<UnitWeight>(service, snapshot);
  ASSERT_TRUE(swapped.get());
  auto after = service.Submit(probe);
  service.Flush();

  const QueryResult r_before = before.get();
  const QueryResult r_after = after.get();
  EXPECT_EQ(r_before.epoch, 0u);
  EXPECT_EQ(r_after.epoch, 1u);
  auto on_old = CreateEstimator("GEER", *initial->graph, options);
  auto on_new = CreateEstimator("GEER", *snapshot->graph, options);
  EXPECT_EQ(r_before.stats.value, on_old->Estimate(probe.s, probe.t));
  EXPECT_EQ(r_after.stats.value, on_new->Estimate(probe.s, probe.t));
  EXPECT_NE(r_before.stats.value, r_after.stats.value)
      << "the inserted chord must change its endpoints' resistance";
  service.Shutdown();
}

// Incremental swaps surface in ServeMetrics: with a shared spectral
// holder carried across epochs, the second swap onward warm-starts λ on
// every worker, and the counter is refreshed at the swap itself — a
// swap-only sequence (no queries after the update) still observes it.
TEST(DynServeDeterminismTest, IncrementalSwapsCountRebindsInMetrics) {
  const ErOptions options = TestOptions();
  DynamicGraph graph(BaseGraph());
  auto initial = graph.Current();
  auto estimator = CreateEstimator("GEER", *initial->graph, options);
  ServeOptions serve_options;
  serve_options.threads = 2;
  QueryService service(*estimator, serve_options);
  auto spectral = MakeSharedSpectral();

  std::uint64_t after_first = 0;
  for (const auto& batch : UpdateBatches()) {
    for (const EdgeUpdate& op : batch) graph.Apply(op);
    std::future<bool> swapped = ApplyEpochUpdate<UnitWeight>(
        service, graph.Commit(), std::nullopt, /*incremental=*/true,
        spectral);
    ASSERT_TRUE(swapped.get());
    if (after_first == 0) {
      // The first swap has no prior Ritz vectors to warm from: the
      // holder is populated cold, and no rebind counts as incremental.
      after_first = 1;
      EXPECT_EQ(service.Metrics().incremental_rebinds, 0u);
    }
  }
  // Swaps 2 and 3 warm-start on both workers.
  EXPECT_GE(service.Metrics().incremental_rebinds, 4u);
  service.Shutdown();
}

// Same contract through the workload driver: incremental_epochs wires
// the holder automatically and reports the final counter.
TEST(DynServeDeterminismTest, WorkloadReportsIncrementalRebinds) {
  const ErOptions options = TestOptions();
  const std::vector<QueryPair> queries = TestQueries();
  std::vector<DynTraceEvent> trace;
  for (const auto& batch : UpdateBatches()) {
    trace.push_back(DynTraceEvent::Update(batch));
    for (const QueryPair& q : queries) {
      trace.push_back(DynTraceEvent::Query(q));
    }
  }
  DynamicGraph graph(BaseGraph());
  ServeOptions serve_options;
  serve_options.threads = 2;
  serve_options.max_batch_size = 4;
  serve_options.max_linger_seconds = 0.0;
  const DynamicWorkloadResult result = RunDynamicWorkload<UnitWeight>(
      graph, "GEER", options, trace, serve_options,
      /*deadline_seconds=*/0.0, /*realtime=*/false,
      /*incremental_epochs=*/true);
  EXPECT_EQ(result.commits, UpdateBatches().size());
  EXPECT_EQ(result.answered, result.num_queries);
  EXPECT_GT(result.incremental_rebinds, 0u);
}

TEST(DynServeDeterminismTest, ShutdownResolvesPendingSwapFutures) {
  const ErOptions options = TestOptions();
  DynamicGraph graph(BaseGraph());
  auto initial = graph.Current();
  auto estimator = CreateEstimator("GEER", *initial->graph, options);
  QueryService service(*estimator, ServeOptions{});
  service.Shutdown();
  graph.Apply(UpdateBatches()[0][0]);
  std::future<bool> swapped =
      ApplyEpochUpdate<UnitWeight>(service, graph.Commit());
  EXPECT_FALSE(swapped.get());  // submitted after shutdown: abandoned
}

}  // namespace
}  // namespace geer
