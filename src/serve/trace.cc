#include "serve/trace.h"

#include <algorithm>
#include <cmath>

#include "rw/rng.h"
#include "util/check.h"

namespace geer {

std::vector<TraceEvent> MakeOpenLoopTrace(std::span<const QueryPair> queries,
                                          double qps, std::uint64_t seed) {
  std::vector<TraceEvent> trace;
  trace.reserve(queries.size());
  Rng rng(MixSeed(seed, 0x7261636521ULL));  // "race!"
  double t = 0.0;
  for (const QueryPair& q : queries) {
    if (qps > 0.0) {
      // Inverse-CDF exponential gap; 1 − u keeps the argument in (0, 1].
      t += -std::log(1.0 - rng.NextDouble()) / qps;
    }
    trace.push_back({t, q});
  }
  return trace;
}

std::vector<TraceEvent> ShuffleTracePayloads(std::span<const TraceEvent> trace,
                                             std::uint64_t seed) {
  std::vector<QueryPair> payloads;
  payloads.reserve(trace.size());
  for (const TraceEvent& e : trace) payloads.push_back(e.query);
  Rng rng(MixSeed(seed, 0x73687566ULL));  // "shuf"
  for (std::size_t i = payloads.size(); i > 1; --i) {
    const std::size_t j = rng.NextBounded(i);
    std::swap(payloads[i - 1], payloads[j]);
  }
  std::vector<TraceEvent> out(trace.begin(), trace.end());
  for (std::size_t i = 0; i < out.size(); ++i) out[i].query = payloads[i];
  return out;
}

std::vector<QueryPair> MakeZipfQueries(std::span<const NodeId> ranking,
                                       std::size_t count, double exponent,
                                       std::uint64_t seed) {
  GEER_CHECK_GE(ranking.size(), 2u) << "Zipf workload needs >= 2 nodes";
  // Cumulative (k+1)^(-exponent) weights; a draw is one binary search.
  std::vector<double> cdf(ranking.size());
  double acc = 0.0;
  for (std::size_t k = 0; k < ranking.size(); ++k) {
    acc += std::pow(static_cast<double>(k + 1), -exponent);
    cdf[k] = acc;
  }
  Rng rng(MixSeed(seed, 0x7a697066ULL));  // "zipf"
  const auto draw = [&]() {
    const double u = rng.NextDouble() * acc;
    const auto it = std::lower_bound(cdf.begin(), cdf.end(), u);
    const std::size_t k =
        std::min(static_cast<std::size_t>(it - cdf.begin()),
                 ranking.size() - 1);
    return ranking[k];
  };
  std::vector<QueryPair> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId s = draw();
    NodeId t = draw();
    while (t == s) t = draw();  // r(v, v) = 0 — not a served workload
    queries.push_back({s, t});
  }
  return queries;
}

}  // namespace geer
