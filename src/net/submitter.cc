#include "net/submitter.h"

#include <chrono>
#include <utility>

namespace geer::net {

NetSubmitter::NetSubmitter(std::string host, std::uint16_t port, int clients)
    : host_(std::move(host)), port_(port) {
  if (clients < 1) clients = 1;
  connections_.reserve(static_cast<std::size_t>(clients));
  for (int i = 0; i < clients; ++i) {
    connections_.push_back(std::make_unique<Client>());
  }
}

NetSubmitter::~NetSubmitter() { Close(); }

bool NetSubmitter::Connect(std::string* error) {
  for (std::unique_ptr<Client>& conn : connections_) {
    if (!conn->Connect(host_, port_, error)) return false;
  }
  if (!control_.Connect(host_, port_, error)) return false;
  info_ = control_.info();
  senders_.reserve(connections_.size());
  for (std::size_t i = 0; i < connections_.size(); ++i) {
    senders_.emplace_back([this, i] { SenderLoop(i); });
  }
  return true;
}

std::future<QueryResult> NetSubmitter::Submit(QueryPair query,
                                              double deadline_seconds) {
  Task task;
  task.request.s = query.s;
  task.request.t = query.t;
  task.request.deadline_seconds = deadline_seconds;
  std::future<QueryResult> future = task.promise.get_future();
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_) {
      QueryResult result;
      result.status = ServeStatus::kShutdown;
      task.promise.set_value(result);
      return future;
    }
    queue_.push_back(std::move(task));
  }
  cv_.notify_one();
  return future;
}

void NetSubmitter::SenderLoop(std::size_t index) {
  Client& conn = *connections_[index];
  while (true) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ with nothing left
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    const auto sent = std::chrono::steady_clock::now();
    ServiceResponse response;
    std::string error;
    QueryResult result;
    if (conn.Query(task.request, &response, &error)) {
      result = response.ToQueryResult();
    } else {
      result.status = ServeStatus::kFailed;
    }
    result.total_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - sent)
            .count();
    task.promise.set_value(result);
  }
}

void NetSubmitter::Flush() {
  std::lock_guard<std::mutex> lock(control_mu_);
  std::string error;
  (void)control_.Flush(&error);
}

bool NetSubmitter::ApplyUpdates(const ApplyUpdatesMsg& msg,
                                ApplyUpdatesAckMsg* ack, std::string* error) {
  std::lock_guard<std::mutex> lock(control_mu_);
  return control_.ApplyUpdates(msg, ack, error);
}

bool NetSubmitter::ShutdownServer(std::string* error) {
  std::lock_guard<std::mutex> lock(control_mu_);
  return control_.Shutdown(error);
}

void NetSubmitter::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && senders_.empty()) return;
    stop_ = true;
  }
  cv_.notify_all();
  for (std::thread& t : senders_) t.join();
  senders_.clear();
  // Anything still queued after the drain (stop raced a burst) resolves
  // kCancelled so no future ever dangles.
  std::lock_guard<std::mutex> lock(mu_);
  while (!queue_.empty()) {
    QueryResult result;
    result.status = ServeStatus::kCancelled;
    queue_.front().promise.set_value(result);
    queue_.pop_front();
  }
  for (std::unique_ptr<Client>& conn : connections_) conn->Close();
  control_.Close();
}

}  // namespace geer::net
