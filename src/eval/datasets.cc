#include "eval/datasets.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "graph/algorithms.h"
#include "graph/generators.h"
#include "graph/io.h"
#include "util/check.h"
#include "util/format.h"

namespace geer {
namespace {

Graph Normalize(Graph g) {
  if (!IsConnected(g)) g = LargestConnectedComponent(g);
  if (IsBipartite(g)) g = EnsureNonBipartite(g);
  return g;
}

// Nearest power-of-two exponent for RMAT scaling.
std::uint32_t ScaleExponent(double nodes) {
  const double exponent = std::round(std::log2(std::max(nodes, 16.0)));
  return static_cast<std::uint32_t>(std::clamp(exponent, 4.0, 26.0));
}

}  // namespace

std::vector<std::string> DatasetNames() {
  return {"facebook", "dblp",        "youtube",
          "orkut",    "livejournal", "friendster"};
}

std::optional<Dataset> MakeDataset(const std::string& name, double scale) {
  GEER_CHECK(scale > 0.0);
  Dataset out;
  out.name = name;
  Graph g;
  if (name == "facebook") {
    // SNAP: 4,039 nodes / 88,234 edges, avg deg 43.7 → dense BA graph.
    const NodeId n = std::max<NodeId>(64, static_cast<NodeId>(4000 * scale));
    g = gen::BarabasiAlbert(n, 22, /*seed=*/0xFB);
    out.paper_nodes = 4039;
    out.paper_edges = 88234;
  } else if (name == "dblp") {
    // SNAP: 317k / 1.05M, avg deg 6.6 → low-degree small world.
    const NodeId n =
        std::max<NodeId>(128, static_cast<NodeId>(32768 * scale));
    g = gen::WattsStrogatz(n, 3, 0.2, /*seed=*/0xDB);
    out.paper_nodes = 317080;
    out.paper_edges = 1049866;
  } else if (name == "youtube") {
    // SNAP: 1.13M / 2.99M, avg deg 5.3 → sparse power-law R-MAT.
    g = gen::RMat(ScaleExponent(65536 * scale), 3, /*seed=*/0x17);
    out.paper_nodes = 1134890;
    out.paper_edges = 2987624;
  } else if (name == "orkut") {
    // SNAP: 3.07M / 117M, avg deg 76.3 → dense power-law R-MAT.
    g = gen::RMat(ScaleExponent(32768 * scale), 38, /*seed=*/0x02);
    out.paper_nodes = 3072441;
    out.paper_edges = 117185082;
  } else if (name == "livejournal") {
    // SNAP: 4.0M / 34.7M, avg deg 17.3.
    g = gen::RMat(ScaleExponent(65536 * scale), 9, /*seed=*/0x15);
    out.paper_nodes = 3997962;
    out.paper_edges = 34681189;
  } else if (name == "friendster") {
    // SNAP: 65.6M / 1.81B, avg deg 55.1 — the largest substitute.
    g = gen::RMat(ScaleExponent(131072 * scale), 28, /*seed=*/0xF5);
    out.paper_nodes = 65608366;
    out.paper_edges = 1806067135;
  } else {
    return std::nullopt;
  }
  out.graph = Normalize(std::move(g));
  out.spectral = ComputeSpectralBounds(out.graph);
  return out;
}

std::optional<Dataset> LoadDatasetFromFile(const std::string& path) {
  std::optional<Graph> g = LoadEdgeList(path);
  if (!g.has_value()) return std::nullopt;
  Dataset out;
  out.name = path;
  out.graph = Normalize(std::move(*g));
  out.spectral = ComputeSpectralBounds(out.graph);
  return out;
}

std::string DescribeDataset(const Dataset& dataset) {
  std::ostringstream os;
  os << dataset.name << ": n=" << FormatCount(dataset.graph.NumNodes())
     << " m=" << FormatCount(static_cast<std::int64_t>(
            dataset.graph.NumEdges()))
     << " avg-deg=" << FormatSig(dataset.graph.AverageDegree(), 3)
     << " lambda=" << FormatSig(dataset.spectral.lambda, 4);
  if (dataset.paper_nodes != 0) {
    os << "  (stand-in for SNAP n="
       << FormatCount(static_cast<std::int64_t>(dataset.paper_nodes))
       << ", m="
       << FormatCount(static_cast<std::int64_t>(dataset.paper_edges)) << ")";
  }
  return os.str();
}

}  // namespace geer
