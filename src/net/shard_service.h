// One serving shard: a QueryService over a full graph replica, exposed
// through the frame protocol. The shard owns a DynamicGraph (so
// ApplyUpdates frames mutate + commit + epoch-swap with the usual
// submission-barrier semantics), the estimator built on the published
// snapshot, and a FrameServer dispatching the wire frames onto them.
//
// Replication model (see net/partition.h): every shard loads the SAME
// graph — effective resistance is a global quantity — and the partition
// map only decides which shard answers which query. Because all shards
// build the same estimator from the same seed and apply identical
// update batches, any replica answers any query bit-identically to the
// in-process QueryService (net_determinism_test pins this down).
//
// This tier serves the unit-weight stack only for now; weighted graphs
// stay in-process (README "Networked serving").

#ifndef GEER_NET_SHARD_SERVICE_H_
#define GEER_NET_SHARD_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "core/options.h"
#include "core/spectral_epoch.h"
#include "dyn/dynamic_graph.h"
#include "net/codec.h"
#include "net/server.h"
#include "serve/query_service.h"

namespace geer::net {

struct ShardOptions {
  int shard_id = 0;
  int num_shards = 1;
  std::string method = "GEER";
  ErOptions er;
  ServeOptions serve;
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;  ///< 0 = ephemeral; see port() after Start
};

class ShardServer {
 public:
  /// Takes the replica by value (epoch 0 of the shard's DynamicGraph).
  ShardServer(Graph graph, const ShardOptions& options);

  ShardServer(const ShardServer&) = delete;
  ShardServer& operator=(const ShardServer&) = delete;

  /// Builds the estimator + service and starts listening. False (and
  /// *error) on bind failure or unknown/ infeasible method.
  bool Start(std::string* error);

  std::uint16_t port() const { return server_.port(); }
  std::uint64_t epoch() const { return epoch_.load(); }

  /// Blocks until a kShutdown frame (or Stop()) drained the server.
  void Wait() { server_.Wait(); }

  /// Stops the frame server; the QueryService drains on destruction.
  void Stop() { server_.Stop(); }

  bool stopping() const { return server_.stopping(); }

 private:
  HandlerReply Handle(const Frame& frame);
  HandlerReply HandleQuery(const Frame& frame);
  HandlerReply HandleApplyUpdates(const Frame& frame);
  static HandlerReply Error(std::uint16_t code, std::string message);

  ShardOptions options_;
  DynamicGraph graph_;
  /// Epoch-0 snapshot, pinned for the estimator's whole lifetime (later
  /// epochs are pinned by the service's keep_alive).
  std::shared_ptr<const DynSnapshot> initial_;
  std::unique_ptr<ErEstimator> estimator_;
  std::unique_ptr<QueryService> service_;
  bool reads_lambda_ = false;

  /// Serializes ApplyUpdates frames: DynamicGraph has a single-writer
  /// contract, and concurrent connections may all carry updates.
  std::mutex update_mu_;
  /// Cross-epoch spectral holder for incremental swaps (created on the
  /// first incremental ApplyUpdates; null until then).
  std::shared_ptr<EpochShared<EpochSpectral>> spectral_;

  std::atomic<std::uint64_t> epoch_{0};
  std::atomic<std::uint32_t> num_nodes_{0};  ///< served epoch's node count
  std::atomic<std::uint64_t> num_edges_{0};

  FrameServer server_;
};

}  // namespace geer::net

#endif  // GEER_NET_SHARD_SERVICE_H_
