#include "linalg/lanczos.h"

#include <algorithm>
#include <cmath>

#include "rw/rng.h"
#include "util/check.h"

namespace geer {
namespace {

// Eigenvalues of a symmetric tridiagonal matrix by bisection-free QL with
// implicit shifts (standard tql1-style routine, eigenvalues only).
std::vector<double> TridiagonalEigenvalues(std::vector<double> diag,
                                           std::vector<double> off) {
  const int n = static_cast<int>(diag.size());
  if (n == 0) return {};
  off.push_back(0.0);  // off[i] couples i and i+1; pad.
  for (int l = 0; l < n; ++l) {
    int iter = 0;
    int m = 0;
    do {
      for (m = l; m < n - 1; ++m) {
        const double dd = std::abs(diag[m]) + std::abs(diag[m + 1]);
        if (std::abs(off[m]) <= 1e-15 * dd) break;
      }
      if (m != l) {
        GEER_CHECK_LT(iter++, 100) << "tridiagonal QL failed to converge";
        double g = (diag[l + 1] - diag[l]) / (2.0 * off[l]);
        double r = std::hypot(g, 1.0);
        g = diag[m] - diag[l] + off[l] / (g + std::copysign(r, g));
        double s = 1.0;
        double c = 1.0;
        double p = 0.0;
        int i = m - 1;
        for (; i >= l; --i) {
          double f = s * off[i];
          const double b = c * off[i];
          r = std::hypot(f, g);
          off[i + 1] = r;
          if (r == 0.0) {
            diag[i + 1] -= p;
            off[m] = 0.0;
            break;
          }
          s = f / r;
          c = g / r;
          g = diag[i + 1] - p;
          r = (diag[i] - g) * s + 2.0 * c * b;
          p = s * r;
          diag[i + 1] = g + p;
          g = c * r - b;
        }
        if (r == 0.0 && i >= l) continue;
        diag[l] -= p;
        off[l] = g;
        off[m] = 0.0;
      }
    } while (m != l);
  }
  std::sort(diag.begin(), diag.end());
  return diag;
}

void OrthogonalizeAgainst(const std::vector<Vector>& basis, Vector* v) {
  for (const Vector& b : basis) {
    const double coeff = Dot(b, *v);
    Axpy(-coeff, b, v);
  }
}

}  // namespace

LanczosResult LanczosExtremeEigenvalues(
    const std::function<void(const Vector&, Vector*)>& apply,
    std::size_t dim, const std::vector<Vector>& deflate,
    const LanczosOptions& options) {
  GEER_CHECK_GT(dim, 0u);
  LanczosResult result;

  // Random start vector, deflated and normalized.
  Rng rng(options.seed);
  Vector v(dim);
  for (double& e : v) e = rng.NextDouble() - 0.5;
  OrthogonalizeAgainst(deflate, &v);
  double norm = Norm2(v);
  if (norm < options.tolerance) {
    // Deflation space covers the start vector (tiny graphs): retry once
    // with a different seed, else report the trivial subspace.
    Rng retry(options.seed + 0x51ed2700);
    for (double& e : v) e = retry.NextDouble() - 0.5;
    OrthogonalizeAgainst(deflate, &v);
    norm = Norm2(v);
    if (norm < options.tolerance) {
      result.converged = true;
      return result;
    }
  }
  Scale(1.0 / norm, &v);

  std::vector<Vector> basis;
  basis.push_back(v);
  std::vector<double> alpha;
  std::vector<double> beta;
  Vector w(dim, 0.0);

  const int max_iter =
      std::min<int>(options.max_iterations, static_cast<int>(dim));
  for (int j = 0; j < max_iter; ++j) {
    apply(basis.back(), &w);
    const double a = Dot(basis.back(), w);
    alpha.push_back(a);
    // w ← w − a·v_j − β_{j−1}·v_{j−1}, then fully reorthogonalize against
    // the deflation space and all previous basis vectors.
    Axpy(-a, basis.back(), &w);
    if (j > 0) Axpy(-beta.back(), basis[basis.size() - 2], &w);
    OrthogonalizeAgainst(deflate, &w);
    OrthogonalizeAgainst(basis, &w);
    const double b = Norm2(w);
    if (b < options.tolerance) {
      result.converged = true;  // Invariant subspace found: exact values.
      result.iterations = j + 1;
      break;
    }
    beta.push_back(b);
    Scale(1.0 / b, &w);
    basis.push_back(w);
    result.iterations = j + 1;
  }
  if (!alpha.empty()) {
    std::vector<double> off(beta.begin(),
                            beta.begin() + (alpha.size() - 1));
    std::vector<double> ritz = TridiagonalEigenvalues(alpha, off);
    result.min_eigenvalue = ritz.front();
    result.max_eigenvalue = ritz.back();
    if (result.iterations >= max_iter) result.converged = true;
  }
  return result;
}

}  // namespace geer
