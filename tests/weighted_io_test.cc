#include "graph/weighted_io.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <vector>

#include "graph/weighted_generators.h"

namespace geer {
namespace {

TEST(WeightedIoTest, ParsesThreeColumnFormat) {
  auto g = ParseWeightedEdgeList("0 1 2.5\n1 2 0.5\n# comment\n\n2 0 1.0\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumNodes(), 3u);
  EXPECT_EQ(g->NumEdges(), 3u);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(0, 1), 2.5);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(1, 2), 0.5);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(0, 2), 1.0);
}

TEST(WeightedIoTest, MissingWeightColumnDefaultsToOne) {
  auto g = ParseWeightedEdgeList("0 1\n1 2 3.0\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_DOUBLE_EQ(g->EdgeWeight(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(1, 2), 3.0);
}

TEST(WeightedIoTest, ParallelEdgesMergeBySummingConductance) {
  auto g = ParseWeightedEdgeList("0 1 0.25\n1 0 0.25\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumEdges(), 1u);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(0, 1), 0.5);
}

TEST(WeightedIoTest, SelfLoopDroppedButNodeInterned) {
  auto g = ParseWeightedEdgeList("0 1 1.0\n2 2 9.0\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumNodes(), 3u);
  EXPECT_EQ(g->NumEdges(), 1u);
}

TEST(WeightedIoTest, RejectsNonPositiveOrMalformedWeights) {
  EXPECT_FALSE(ParseWeightedEdgeList("0 1 0.0\n").has_value());
  EXPECT_FALSE(ParseWeightedEdgeList("0 1 -2\n").has_value());
  EXPECT_FALSE(ParseWeightedEdgeList("0 1 nan\n").has_value());
  EXPECT_FALSE(ParseWeightedEdgeList("zero one 1.0\n").has_value());
}

TEST(WeightedIoTest, MissingFileFails) {
  EXPECT_FALSE(LoadWeightedEdgeList("/nonexistent/geer_w.txt").has_value());
}

TEST(WeightedIoTest, SaveLoadRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "geer_wio_test.txt").string();
  WeightedGraph original = gen::GridCircuit(5, 6, 0.5, 2.0, 3);
  ASSERT_TRUE(SaveWeightedEdgeList(original, path));
  auto loaded = LoadWeightedEdgeList(path);
  ASSERT_TRUE(loaded.has_value());
  // The loader interns ids in first-appearance order, so node labels may
  // permute; the graph itself must survive. Compare label-invariant
  // views: edge count, full-precision weight multiset, strength multiset.
  EXPECT_EQ(loaded->NumNodes(), original.NumNodes());
  EXPECT_EQ(loaded->NumEdges(), original.NumEdges());
  EXPECT_DOUBLE_EQ(loaded->TotalWeight(), original.TotalWeight());
  auto weight_multiset = [](const WeightedGraph& g) {
    std::vector<double> w;
    for (const auto& e : g.Edges()) w.push_back(e.weight);
    std::sort(w.begin(), w.end());
    return w;
  };
  auto strength_multiset = [](const WeightedGraph& g) {
    std::vector<double> s;
    for (NodeId v = 0; v < g.NumNodes(); ++v) s.push_back(g.Strength(v));
    std::sort(s.begin(), s.end());
    return s;
  };
  EXPECT_EQ(weight_multiset(*loaded), weight_multiset(original));
  const auto ls = strength_multiset(*loaded);
  const auto os = strength_multiset(original);
  ASSERT_EQ(ls.size(), os.size());
  for (std::size_t i = 0; i < ls.size(); ++i) {
    EXPECT_NEAR(ls[i], os[i], 1e-12);
  }
  std::remove(path.c_str());
}

TEST(WeightedIoTest, NonContiguousIdsInterned) {
  auto g = ParseWeightedEdgeList("100 200 1.5\n200 300 2.5\n");
  ASSERT_TRUE(g.has_value());
  EXPECT_EQ(g->NumNodes(), 3u);
  EXPECT_DOUBLE_EQ(g->EdgeWeight(0, 1), 1.5);
}

}  // namespace
}  // namespace geer
