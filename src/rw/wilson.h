// Wilson's algorithm: exact uniform spanning tree (UST) sampling via
// loop-erased random walks. Substrate for the HAY baseline (Hayashi et
// al.), which uses Pr[e ∈ UST] = r(e) for edges e.

#ifndef GEER_RW_WILSON_H_
#define GEER_RW_WILSON_H_

#include <vector>

#include "graph/graph.h"
#include "rw/rng.h"

namespace geer {

/// A spanning tree represented by a parent pointer per node; the root's
/// parent is itself.
struct SpanningTree {
  NodeId root = 0;
  std::vector<NodeId> parent;

  /// True iff the undirected edge {u, v} is a tree edge.
  bool ContainsEdge(NodeId u, NodeId v) const {
    return parent[u] == v || parent[v] == u;
  }
};

/// Samples a uniformly random spanning tree of the (connected) graph
/// rooted at `root` using Wilson's loop-erased random-walk algorithm.
/// Expected time O(mean hitting time).
SpanningTree SampleUniformSpanningTree(const Graph& graph, NodeId root,
                                       Rng& rng);

}  // namespace geer

#endif  // GEER_RW_WILSON_H_
