// Compatibility shim: the weighted transition operator is now the
// EdgeWeight instantiation of the weight-generic TransitionOperatorT in
// linalg/transition.h (see graph/weight_policy.h). The historical names
// WeightedTransitionOperator / NormalizedWeightedAdjacencyOperator are
// aliases defined there.

#ifndef GEER_WEIGHTED_WEIGHTED_TRANSITION_SHIM_H_
#define GEER_WEIGHTED_WEIGHTED_TRANSITION_SHIM_H_

#include "linalg/transition.h"

#endif  // GEER_WEIGHTED_WEIGHTED_TRANSITION_SHIM_H_
