// Shared configuration for all estimators. One options struct keeps the
// benchmark harness uniform; each algorithm reads only its own knobs.

#ifndef GEER_CORE_OPTIONS_H_
#define GEER_CORE_OPTIONS_H_

#include <cstdint>
#include <optional>

namespace geer {

/// Options for ε-approximate PER estimators. Defaults follow the paper's
/// experimental setup (δ = 0.01, τ = 5).
struct ErOptions {
  /// Additive error threshold ε of the PER query.
  double epsilon = 0.1;

  /// Failure probability δ.
  double delta = 0.01;

  /// Maximum number of adaptive batches τ in AMC/GEER (paper default 5).
  int tau = 5;

  /// Seed for all randomized estimators; combined with (s, t) per query.
  std::uint64_t seed = 1;

  /// Precomputed λ = max(|λ₂|, |λ_n|) of P. If unset, estimators that
  /// need it run the Lanczos preprocessing themselves (once).
  std::optional<double> lambda;

  /// Safety cap on the truncated walk length ℓ; queries that would exceed
  /// it are answered best-effort with QueryStats::truncated set. Guards
  /// against near-bipartite inputs where Eq. (5)/(6) explode.
  std::uint32_t max_ell = 200000;

  /// Use Peng et al.'s generic ℓ (Eq. 5) instead of the refined per-pair
  /// ℓ (Eq. 6) — the ablation axis of Fig. 11 (applies to SMM/AMC/GEER).
  bool use_peng_ell = false;

  // --- MC (commute-time Monte Carlo) ---------------------------------------
  /// Assumed upper bound γ on r(s, t) (drives the trial count).
  double mc_gamma_upper = 4.0;
  /// Per-trial step cap, as a multiple of the expected return time 2m/d(s).
  double mc_step_cap_multiplier = 100.0;

  // --- MC2 (edge queries) ---------------------------------------------------
  /// Assumed lower bound γ on r(s, t); 0 means the worst case 1/(2m).
  double mc2_gamma_lower = 0.05;
  /// Per-trial step cap for the first-visit walk.
  std::uint64_t mc2_max_steps_per_trial = 1u << 22;

  // --- TP / TPC -------------------------------------------------------------
  /// Multiplier on the paper's theoretical sample constants. 1.0 is
  /// faithful; benchmarks may down-scale and extrapolate timings linearly
  /// (documented in EXPERIMENTS.md).
  double tp_scale = 1.0;
  double tpc_scale = 1.0;

  // --- RP (random projection) -----------------------------------------------
  /// Projection dimension k; 0 derives the paper's 24·ln(n)/ε².
  int rp_dimensions = 0;
  /// Memory budget for the k×n sketch; exceeding it fails construction
  /// (reproduces the paper's out-of-memory narrative).
  std::uint64_t rp_max_bytes = 4ull << 30;

  // --- HAY (spanning-tree sampling) ------------------------------------------
  /// Number of uniform spanning trees; 0 derives it from Hoeffding.
  std::uint64_t hay_num_trees = 0;

  // --- SMM -------------------------------------------------------------------
  /// Fixed iteration count override for SMM (0 = derive from ε and λ).
  std::uint32_t smm_iterations = 0;

  // --- GEER ------------------------------------------------------------------
  /// Optional override of the greedy switch point ℓ_b (−1 = greedy rule of
  /// Eq. 17). Used by the Fig. 10 ablation.
  std::int32_t geer_fixed_lb = -1;
};

/// Validates option invariants (positive ε, δ ∈ (0,1), τ ≥ 1, …); aborts
/// with a diagnostic on violation.
void ValidateOptions(const ErOptions& options);

}  // namespace geer

#endif  // GEER_CORE_OPTIONS_H_
