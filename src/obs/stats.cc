#include "obs/stats.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace geer::obs {
namespace {

/// Splits `geer_x_ns{method="GEER"}` into family + label body (empty
/// body when unlabeled) so suffixes like `_count` attach to the family,
/// not after the closing brace.
void SplitName(const std::string& name, std::string* family,
               std::string* labels) {
  const std::size_t brace = name.find('{');
  if (brace == std::string::npos || name.back() != '}') {
    *family = name;
    labels->clear();
    return;
  }
  *family = name.substr(0, brace);
  *labels = name.substr(brace + 1, name.size() - brace - 2);
}

std::string WithLabels(const std::string& family, const std::string& labels,
                       const std::string& extra) {
  std::string out = family;
  if (labels.empty() && extra.empty()) return out;
  out += '{';
  out += labels;
  if (!labels.empty() && !extra.empty()) out += ',';
  out += extra;
  out += '}';
  return out;
}

void AppendNumber(std::string& out, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  out += buf;
}

}  // namespace

std::size_t HistogramBucket(std::uint64_t ns) {
  const std::size_t width = static_cast<std::size_t>(std::bit_width(ns));
  return std::min(width, kHistogramBuckets - 1);
}

std::uint64_t HistogramBucketLower(std::size_t bucket) {
  return bucket == 0 ? 0 : std::uint64_t{1} << (bucket - 1);
}

std::uint64_t HistogramBucketUpper(std::size_t bucket) {
  return bucket == 0 ? 1 : std::uint64_t{1} << bucket;
}

StatsSnapshot MergeSnapshots(std::span<const StatsSnapshot> snapshots) {
  StatsSnapshot merged;
  for (const StatsSnapshot& s : snapshots) {
    for (const auto& [name, value] : s.counters) {
      merged.counters[name] += value;
    }
    for (const auto& [name, value] : s.gauges) {
      merged.gauges[name] += value;
    }
    for (const auto& [name, h] : s.histograms) {
      HistogramData& into = merged.histograms[name];
      for (std::size_t b = 0; b < kHistogramBuckets; ++b) {
        into.buckets[b] += b < h.buckets.size() ? h.buckets[b] : 0;
      }
      into.count += h.count;
      into.sum_ns += h.sum_ns;
    }
  }
  return merged;
}

double HistogramQuantile(const HistogramData& h, double q) {
  if (h.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(h.count);
  std::uint64_t cumulative = 0;
  for (std::size_t b = 0; b < h.buckets.size(); ++b) {
    const std::uint64_t in_bucket = h.buckets[b];
    if (in_bucket == 0) continue;
    if (static_cast<double>(cumulative + in_bucket) >= rank) {
      // Linear interpolation inside the bucket: how far into this
      // bucket's mass the requested rank lands.
      const double lower = static_cast<double>(HistogramBucketLower(b));
      const double upper = static_cast<double>(HistogramBucketUpper(b));
      const double frac =
          (rank - static_cast<double>(cumulative)) /
          static_cast<double>(in_bucket);
      return lower + (upper - lower) * std::clamp(frac, 0.0, 1.0);
    }
    cumulative += in_bucket;
  }
  return static_cast<double>(HistogramBucketUpper(h.buckets.size() - 1));
}

std::string RenderPrometheusText(const StatsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    out += name;
    out += ' ';
    AppendNumber(out, static_cast<double>(value));
    out += '\n';
  }
  for (const auto& [name, value] : snapshot.gauges) {
    out += name;
    out += ' ';
    AppendNumber(out, value);
    out += '\n';
  }
  const double quantiles[] = {0.5, 0.95, 0.99};
  const char* quantile_labels[] = {"quantile=\"0.5\"", "quantile=\"0.95\"",
                                   "quantile=\"0.99\""};
  for (const auto& [name, h] : snapshot.histograms) {
    std::string family;
    std::string labels;
    SplitName(name, &family, &labels);
    out += WithLabels(family + "_count", labels, "");
    out += ' ';
    AppendNumber(out, static_cast<double>(h.count));
    out += '\n';
    out += WithLabels(family + "_sum_ns", labels, "");
    out += ' ';
    AppendNumber(out, static_cast<double>(h.sum_ns));
    out += '\n';
    for (std::size_t i = 0; i < 3; ++i) {
      out += WithLabels(family, labels, quantile_labels[i]);
      out += ' ';
      AppendNumber(out, HistogramQuantile(h, quantiles[i]));
      out += '\n';
    }
  }
  return out;
}

}  // namespace geer::obs
