// Shared command-line plumbing and cost projection for the figure
// benches. Every bench accepts:
//   --scale=<f>        dataset node-count scale (default 0.25)
//   --queries=<n>      queries per set (paper: 100)
//   --deadline=<sec>   per-(method,ε) budget; expired cells report partial
//                      averages marked '*' (the paper's one-day cutoff)
//   --ops-budget=<f>   projected-cost cutoff; cells projected above it are
//                      reported DNF without running
//   --epsilons=a,b,c   ε sweep (default 0.5,0.2,0.1,0.05,0.02,0.01)
//   --datasets=a,b     dataset subset
//   --tp-scale=<f>     TP/TPC sample-constant scale (timings are also
//                      reported extrapolated to scale 1; see EXPERIMENTS.md)
//   --graph=<path>     use a real SNAP edge list instead of the registry
//   --seed=<n>, --csv, --quick (3 datasets × 3 ε, scale 0.1)

#ifndef GEER_BENCH_BENCH_COMMON_H_
#define GEER_BENCH_BENCH_COMMON_H_

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <optional>
#include <string>
#include <vector>

#include "core/ell.h"
#include "core/options.h"
#include "eval/datasets.h"
#include "eval/experiment.h"

namespace geer {
namespace bench {

struct BenchArgs {
  double scale = 0.25;
  std::size_t num_queries = 100;
  double deadline_seconds = 8.0;
  double ops_budget = 2e9;
  std::vector<double> epsilons = {0.5, 0.2, 0.1, 0.05, 0.02, 0.01};
  std::vector<std::string> datasets = DatasetNames();
  double tp_scale = 0.01;
  double tpc_scale = 0.01;
  std::uint64_t seed = 1;
  bool csv = false;
  std::string graph_path;

  static BenchArgs Parse(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
      const std::string arg = argv[i];
      auto value = [&arg](const char* key) -> std::optional<std::string> {
        const std::string prefix = std::string(key) + "=";
        if (arg.rfind(prefix, 0) == 0) return arg.substr(prefix.size());
        return std::nullopt;
      };
      if (auto v = value("--scale")) {
        args.scale = std::atof(v->c_str());
      } else if (auto v = value("--queries")) {
        args.num_queries = static_cast<std::size_t>(std::atoll(v->c_str()));
      } else if (auto v = value("--deadline")) {
        args.deadline_seconds = std::atof(v->c_str());
      } else if (auto v = value("--ops-budget")) {
        args.ops_budget = std::atof(v->c_str());
      } else if (auto v = value("--epsilons")) {
        args.epsilons = ParseDoubles(*v);
      } else if (auto v = value("--datasets")) {
        args.datasets = ParseStrings(*v);
      } else if (auto v = value("--tp-scale")) {
        args.tp_scale = std::atof(v->c_str());
        args.tpc_scale = args.tp_scale;
      } else if (auto v = value("--seed")) {
        args.seed = static_cast<std::uint64_t>(std::atoll(v->c_str()));
      } else if (auto v = value("--graph")) {
        args.graph_path = *v;
      } else if (arg == "--csv") {
        args.csv = true;
      } else if (arg == "--quick") {
        args.scale = 0.1;
        args.num_queries = 25;
        args.deadline_seconds = 3.0;
        args.epsilons = {0.5, 0.1, 0.02};
        args.datasets = {"facebook", "dblp", "orkut"};
      } else if (arg == "--help" || arg == "-h") {
        std::printf("see bench/bench_common.h header comment for flags\n");
        std::exit(0);
      } else {
        std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
        std::exit(2);
      }
    }
    return args;
  }

  /// Loads the requested datasets (or the single --graph file).
  std::vector<Dataset> LoadDatasets() const {
    std::vector<Dataset> out;
    if (!graph_path.empty()) {
      auto ds = LoadDatasetFromFile(graph_path);
      if (!ds.has_value()) {
        std::fprintf(stderr, "cannot load %s\n", graph_path.c_str());
        std::exit(2);
      }
      out.push_back(std::move(*ds));
      return out;
    }
    for (const std::string& name : datasets) {
      auto ds = MakeDataset(name, scale);
      if (!ds.has_value()) {
        std::fprintf(stderr, "unknown dataset %s\n", name.c_str());
        std::exit(2);
      }
      out.push_back(std::move(*ds));
    }
    return out;
  }

  ErOptions BaseOptions(double epsilon) const {
    ErOptions opt;
    opt.epsilon = epsilon;
    opt.delta = 0.01;
    opt.tau = 5;
    opt.seed = seed;
    opt.tp_scale = tp_scale;
    opt.tpc_scale = tpc_scale;
    return opt;
  }

 private:
  static std::vector<double> ParseDoubles(const std::string& csv) {
    std::vector<double> out;
    std::size_t pos = 0;
    while (pos < csv.size()) {
      std::size_t comma = csv.find(',', pos);
      if (comma == std::string::npos) comma = csv.size();
      out.push_back(std::atof(csv.substr(pos, comma - pos).c_str()));
      pos = comma + 1;
    }
    return out;
  }
  static std::vector<std::string> ParseStrings(const std::string& csv) {
    std::vector<std::string> out;
    std::size_t pos = 0;
    while (pos < csv.size()) {
      std::size_t comma = csv.find(',', pos);
      if (comma == std::string::npos) comma = csv.size();
      out.push_back(csv.substr(pos, comma - pos));
      pos = comma + 1;
    }
    return out;
  }
};

/// Rough upfront cost projection (elementary walk steps / arc traversals)
/// for one query, used to skip configurations that would blow the ops
/// budget — the bench-level analogue of the paper's one-day cutoff.
inline double ProjectedOpsPerQuery(const std::string& method,
                                   const Dataset& ds,
                                   const ErOptions& opt) {
  const double m2 = static_cast<double>(ds.graph.NumArcs());
  const double avg_deg = ds.graph.AverageDegree();
  const double lambda = ds.spectral.lambda;
  const double ell_peng = PengEll(opt.epsilon, lambda, opt.max_ell);
  const double ell_ref = RefinedEll(
      opt.epsilon, lambda,
      static_cast<std::uint64_t>(std::max(avg_deg, 1.0)),
      static_cast<std::uint64_t>(std::max(avg_deg, 1.0)), opt.max_ell);
  if (method == "TP") {
    const double eta = 40.0 * ell_peng * ell_peng *
                       std::log(8.0 * std::max(ell_peng, 2.0) / opt.delta) /
                       (opt.epsilon * opt.epsilon) * opt.tp_scale;
    return 2.0 * eta * ell_peng * (ell_peng + 1.0) / 2.0;
  }
  if (method == "TPC") {
    // 3 collision populations × 2 walk sets × ~i/2 steps per length i.
    const double beta = 1.0 / m2;
    const double n_i = 40000.0 *
                       (ell_peng * std::sqrt(ell_peng * beta) / opt.epsilon +
                        std::pow(ell_peng, 3.0) * std::pow(beta, 1.5) /
                            (opt.epsilon * opt.epsilon)) *
                       opt.tpc_scale;
    return 6.0 * n_i * ell_peng * ell_peng / 2.0;
  }
  if (method == "MC") {
    const double eta = 3.0 * opt.mc_gamma_upper * avg_deg *
                       std::log(1.0 / opt.delta) /
                       (opt.epsilon * opt.epsilon);
    return eta * (m2 / avg_deg);  // expected trial length ≈ 2m/d(s)
  }
  if (method == "MC2") {
    const double gamma = opt.mc2_gamma_lower > 0 ? opt.mc2_gamma_lower
                                                 : 1.0 / m2;
    const double eta = 3.0 * std::log(1.0 / opt.delta) /
                       (opt.epsilon * opt.epsilon * gamma);
    return eta * (m2 / avg_deg);
  }
  if (method == "HAY") {
    const double trees = std::log(2.0 / opt.delta) /
                         (2.0 * opt.epsilon * opt.epsilon);
    return trees * 4.0 * m2 / avg_deg;  // Wilson ≈ O(n·cover-ish); coarse
  }
  if (method == "SMM" || method == "SMM-PengEll") {
    const double ell = method == "SMM" ? ell_ref : ell_peng;
    return 2.0 * ell * m2;  // dense iterations dominate
  }
  if (method == "AMC") {
    const double psi = 2.0 * std::ceil(ell_ref / 2.0) * (2.0 / avg_deg);
    const double eta_star = 2.0 * psi * psi *
                            std::log(2.0 * opt.tau / opt.delta) /
                            (opt.epsilon * opt.epsilon);
    // Adaptive stop typically fires after the first batch (η*/2^{τ−1}).
    return 2.0 * (eta_star / std::pow(2.0, opt.tau - 1)) * ell_ref;
  }
  if (method == "RP") {
    const double k =
        std::ceil(24.0 * std::log(static_cast<double>(ds.graph.NumNodes())) /
                  (opt.epsilon * opt.epsilon));
    return k * m2 * 30.0;  // k CG solves (~30 iterations) amortized
  }
  if (method == "EXACT") {
    const double n = static_cast<double>(ds.graph.NumNodes());
    return n * n * n / 3.0;  // Cholesky, amortized over the query set
  }
  return 0.0;  // GEER / CG: always attempt
}

/// Formats a result cell: "12.3" (ms), "12.3*" (partial), "DNF", "OOM".
inline std::string Cell(const MethodResult& res, bool extrapolate = false) {
  if (!res.feasible) return "OOM";
  if (res.queries_answered == 0) return "DNF";
  char buf[64];
  const double ms = extrapolate ? res.ExtrapolatedMillis() : res.avg_millis;
  std::snprintf(buf, sizeof(buf), "%.3g%s", ms,
                res.completed ? "" : "*");
  return buf;
}

}  // namespace bench
}  // namespace geer

#endif  // GEER_BENCH_BENCH_COMMON_H_
