#include "eval/ground_truth.h"

#include <memory>

#include "core/options.h"
#include "core/smm.h"
#include "linalg/laplacian_solver.h"
#include "util/check.h"
#include "util/thread_pool.h"

namespace geer {

std::vector<double> GroundTruthCg(const Graph& graph,
                                  const std::vector<QueryPair>& queries,
                                  int num_threads) {
  std::vector<double> truth(queries.size(), 0.0);
  if (queries.empty()) return truth;
  LaplacianSolver::Options opt;
  opt.tolerance = 1e-12;
  opt.max_iterations = 50000;
  // Solve() is const and allocates per call, so one solver serves every
  // worker of the pool race-free.
  const LaplacianSolver solver(graph, opt);
  WorkStealingPool::Run(
      ResolveWorkerCount(num_threads, queries.size()), queries.size(),
      [&](int /*worker*/, std::size_t i) {
        truth[i] = solver.EffectiveResistance(queries[i].s, queries[i].t);
      });
  return truth;
}

std::vector<double> GroundTruthSmm(const Graph& graph,
                                   const std::vector<QueryPair>& queries,
                                   std::uint32_t iterations,
                                   int num_threads) {
  GEER_CHECK_GT(iterations, 0u);
  std::vector<double> truth(queries.size(), 0.0);
  if (queries.empty()) return truth;
  const int workers = ResolveWorkerCount(num_threads, queries.size());
  // The transition operator owns scratch buffers, so each worker gets
  // its own (constructed once per worker, not once per query).
  std::vector<std::unique_ptr<TransitionOperator>> ops;
  ops.reserve(static_cast<std::size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    ops.push_back(std::make_unique<TransitionOperator>(graph));
  }
  WorkStealingPool::Run(workers, queries.size(),
                        [&](int worker, std::size_t i) {
                          SmmIterator iter(graph, ops[worker].get(),
                                           queries[i].s, queries[i].t);
                          for (std::uint32_t k = 0; k < iterations; ++k) {
                            iter.Advance();
                          }
                          truth[i] = iter.rb();
                        });
  return truth;
}

}  // namespace geer
