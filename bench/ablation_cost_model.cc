// Ablation: GEER's greedy switch rule (Eq. 17) compares the NEXT SpMV's
// arc count against h(ℓ−ℓ_b), the worst-case number of remaining AMC
// *samples*. A natural alternative charges samples by their length,
// h(ℓ−ℓ_b)·(ℓ−ℓ_b) — this bench implements both switch rules over the
// public SmmIterator/RunAmc API and reports time and chosen ℓ_b, showing
// how the cost model shifts the switch point and what that does to
// latency. (DESIGN.md calls this design choice out as the ablation axis.)

#include <cstdio>

#include "bench/bench_common.h"
#include "core/amc.h"
#include "core/geer.h"
#include "core/smm.h"
#include "eval/queries.h"
#include "eval/table.h"
#include "util/format.h"
#include "util/timer.h"

namespace geer {
namespace {

enum class CostModel { kSamples, kSampleSteps };

// Keeps the estimate alive through the optimizer.
volatile double g_sink = 0.0;
void benchmark_sink(double v) { g_sink = v; }

struct AblationResult {
  double avg_ms = 0.0;
  double avg_lb = 0.0;
  double avg_walks = 0.0;
};

AblationResult RunVariant(const Dataset& ds,
                          const std::vector<QueryPair>& queries,
                          const ErOptions& opt, CostModel model,
                          double deadline_s) {
  TransitionOperator op(ds.graph);
  AblationResult out;
  std::size_t answered = 0;
  Deadline deadline(deadline_s);
  for (const QueryPair& q : queries) {
    Timer timer;
    const std::uint64_t ds_deg = ds.graph.Degree(q.s);
    const std::uint64_t dt_deg = ds.graph.Degree(q.t);
    const std::uint32_t ell = RefinedEll(opt.epsilon, *opt.lambda, ds_deg,
                                         dt_deg, opt.max_ell);
    SmmIterator smm(ds.graph, &op, q.s, q.t);
    while (smm.iterations() < ell) {
      const std::uint32_t remaining = ell - smm.iterations();
      const auto [m1s, m2s] = TopTwo(smm.svec());
      const auto [m1t, m2t] = TopTwo(smm.tvec());
      const double psi =
          AmcPsi(remaining, m1s, m2s, ds_deg, m1t, m2t, dt_deg);
      double budget = static_cast<double>(GeerEstimator::RemainingSampleBudget(
          opt.epsilon, opt.delta, opt.tau, psi));
      if (model == CostModel::kSampleSteps) budget *= remaining;
      if (static_cast<double>(smm.NextIterationCost()) > budget) break;
      smm.Advance();
    }
    AmcParams params;
    params.epsilon = opt.epsilon;
    params.delta = opt.delta;
    params.tau = opt.tau;
    params.ell_f = ell - smm.iterations();
    Rng rng(opt.seed ^ (static_cast<std::uint64_t>(q.s) << 32) ^ q.t);
    AmcRunResult run =
        RunAmc(ds.graph, q.s, q.t, smm.svec(), smm.tvec(), params, rng);
    benchmark_sink(run.r_f + smm.rb());
    out.avg_ms += timer.ElapsedMillis();
    out.avg_lb += smm.iterations();
    out.avg_walks += static_cast<double>(run.walks);
    ++answered;
    if (deadline.Expired()) break;
  }
  if (answered > 0) {
    out.avg_ms /= static_cast<double>(answered);
    out.avg_lb /= static_cast<double>(answered);
    out.avg_walks /= static_cast<double>(answered);
  }
  return out;
}

void Run(const bench::BenchArgs& args) {
  for (const Dataset& ds : args.LoadDatasets()) {
    std::printf("== Ablation: Eq.17 cost model | %s\n",
                DescribeDataset(ds).c_str());
    auto queries = RandomPairs(ds.graph, args.num_queries, args.seed);
    TextTable table({"eps", "samples: ms", "lb", "walks",
                     "sample-steps: ms", "lb", "walks"});
    for (double eps : args.epsilons) {
      ErOptions opt = args.BaseOptions(eps);
      opt.lambda = ds.spectral.lambda;
      AblationResult a = RunVariant(ds, queries, opt, CostModel::kSamples,
                                    args.deadline_seconds);
      AblationResult b = RunVariant(ds, queries, opt,
                                    CostModel::kSampleSteps,
                                    args.deadline_seconds);
      table.AddRow({FormatSig(eps, 2), FormatSig(a.avg_ms, 3),
                    FormatSig(a.avg_lb, 3), FormatSig(a.avg_walks, 3),
                    FormatSig(b.avg_ms, 3), FormatSig(b.avg_lb, 3),
                    FormatSig(b.avg_walks, 3)});
    }
    std::fputs(args.csv ? table.RenderCsv().c_str()
                        : table.Render().c_str(),
               stdout);
    std::printf("\n");
  }
}

}  // namespace
}  // namespace geer

int main(int argc, char** argv) {
  auto args = geer::bench::BenchArgs::Parse(argc, argv);
  if (args.graph_path.empty() && args.datasets == geer::DatasetNames()) {
    args.datasets = {"facebook", "orkut"};
  }
  if (args.epsilons.size() > 3) args.epsilons = {0.2, 0.05, 0.02};
  std::printf("Ablation: greedy switch rule cost models (Eq. 17 sample "
              "count vs length-weighted sample steps)\n\n");
  geer::Run(args);
  return 0;
}
