// The dynamic-graph correctness contract (src/dyn/): after ANY update
// sequence, (1) the incrementally committed snapshot's CSR arrays are
// IDENTICAL to a from-scratch build from the final edge list, in both
// weight modes and under shuffled update orders / commit partitions, and
// (2) every registered estimator — all 12 algorithms, both weight modes
// — answers bit-identically on the rebound estimator (constructed on
// epoch 0, RebindGraph'd through every commit) and on a freshly
// constructed estimator over the from-scratch rebuild. Also pins the
// commit metadata (touched rows, resized flag, epochs) and the
// SELECTIVE session invalidation: SMM/GEER iterate caches survive
// updates outside their dependency set (zero fresh source-side SpMV on
// the next visit) and are evicted by updates inside it.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include <cmath>

#include "core/batch_engine.h"
#include "core/exact.h"
#include "core/registry.h"
#include "core/smm.h"
#include "core/solver_er.h"
#include "core/spectral_epoch.h"
#include "core/tp.h"
#include "core/tpc.h"
#include "dyn/dynamic_graph.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/weighted_generators.h"
#include "linalg/spectral.h"
#include "rw/rng.h"
#include "test_util.h"

namespace geer {
namespace {

ErOptions TestOptions() {
  ErOptions opt;
  opt.epsilon = 0.5;
  opt.delta = 0.1;
  opt.seed = 20260801;
  opt.tp_scale = 0.01;   // scaled constants keep the suite fast; this
  opt.tpc_scale = 0.01;  // suite checks bit-identity, not accuracy
  opt.mc_gamma_upper = 8.0;
  return opt;
}

template <WeightPolicy WP>
void ExpectSameArrays(const typename WP::GraphT& a,
                      const typename WP::GraphT& b,
                      const std::string& label) {
  ASSERT_EQ(a.NumNodes(), b.NumNodes()) << label;
  EXPECT_EQ(a.Offsets(), b.Offsets()) << label;
  EXPECT_EQ(a.NeighborArray(), b.NeighborArray()) << label;
  if constexpr (WP::kWeighted) {
    EXPECT_EQ(a.WeightArray(), b.WeightArray()) << label;
    EXPECT_EQ(a.TotalWeight(), b.TotalWeight()) << label;
    for (NodeId v = 0; v < a.NumNodes(); ++v) {
      EXPECT_EQ(a.Strength(v), b.Strength(v)) << label << " node " << v;
    }
  }
}

template <WeightPolicy WP>
typename WP::GraphT BaseGraph();

template <>
Graph BaseGraph<UnitWeight>() {
  return gen::ErdosRenyi(30, 140, 7);
}

template <>
WeightedGraph BaseGraph<EdgeWeight>() {
  return gen::WithUniformWeights(gen::ErdosRenyi(30, 140, 7), 0.5, 2.0, 11);
}

// Generator-driven random update streams commit after every batch; the
// final snapshot must equal the from-scratch build bit for bit.
template <WeightPolicy WP>
void RunArraysMatchFromScratch() {
  DynamicGraphT<WP> dyn(BaseGraph<WP>());
  UpdateGeneratorT<WP> generator(dyn, 99);
  for (int batch = 0; batch < 6; ++batch) {
    for (const EdgeUpdate& op : generator.NextBatch(9)) dyn.Apply(op);
    // Compare BEFORE committing too: BuildFromScratch sees pending state.
    const typename WP::GraphT scratch = dyn.BuildFromScratch();
    auto snapshot = dyn.Commit();
    ExpectSameArrays<WP>(*snapshot->graph, scratch,
                         "batch " + std::to_string(batch));
    EXPECT_EQ(snapshot->epoch, static_cast<std::uint64_t>(batch + 1));
  }
}

TEST(DynConsistencyTest, ArraysMatchFromScratchUnweighted) {
  RunArraysMatchFromScratch<UnitWeight>();
}

TEST(DynConsistencyTest, ArraysMatchFromScratchWeighted) {
  RunArraysMatchFromScratch<EdgeWeight>();
}

// Logically commuting updates (distinct edges) applied in shuffled
// orders with different commit partitions converge to identical arrays:
// weights are absolute overwrites, never accumulations.
template <WeightPolicy WP>
void RunShuffledOrdersConverge() {
  const typename WP::GraphT base = BaseGraph<WP>();
  // Distinct-edge update set: chord insertions, deletions of existing
  // edges, and (weighted) re-weights of other existing edges.
  std::vector<EdgeUpdate> updates;
  Rng rng(5);
  const NodeId n = base.NumNodes();
  for (int k = 0; k < 10; ++k) {
    for (int attempt = 0; attempt < 200; ++attempt) {
      const NodeId u = static_cast<NodeId>(rng.NextBounded(n));
      const NodeId v = static_cast<NodeId>(rng.NextBounded(n));
      if (u == v || base.HasEdge(u, v)) continue;
      bool dup = false;
      for (const EdgeUpdate& op : updates) {
        if ((op.u == u && op.v == v) || (op.u == v && op.v == u)) dup = true;
      }
      if (dup) continue;
      updates.push_back({EdgeUpdateKind::kInsert, u, v,
                         WP::kWeighted ? 1.5 + 0.25 * k : 1.0});
      break;
    }
  }
  const auto base_edges = base.Edges();
  for (int k = 0; k < 6; ++k) {
    const auto& e = base_edges[(k * 37) % base_edges.size()];
    if constexpr (WP::kWeighted) {
      updates.push_back(k % 2 == 0
                            ? EdgeUpdate{EdgeUpdateKind::kDelete, e.u, e.v, 0}
                            : EdgeUpdate{EdgeUpdateKind::kSetWeight, e.u,
                                         e.v, 3.25 + k});
    } else {
      updates.push_back({EdgeUpdateKind::kDelete, e.first, e.second, 0.0});
    }
  }

  std::vector<std::vector<std::uint64_t>> reference_offsets;
  std::vector<typename WP::GraphT> finals;
  for (const std::uint64_t shuffle_seed : {0ull, 1ull, 2ull, 3ull}) {
    std::vector<EdgeUpdate> order = updates;
    if (shuffle_seed != 0) {
      Rng shuffle_rng(shuffle_seed);
      std::shuffle(order.begin(), order.end(), shuffle_rng);
    }
    DynamicGraphT<WP> dyn(BaseGraph<WP>());
    // Vary the commit partition with the order: every (2 + seed) ops.
    const std::size_t chunk = 2 + static_cast<std::size_t>(shuffle_seed);
    for (std::size_t i = 0; i < order.size(); ++i) {
      dyn.Apply(order[i]);
      if ((i + 1) % chunk == 0) dyn.Commit();
    }
    auto snapshot = dyn.Commit();
    finals.push_back(*snapshot->graph);
  }
  for (std::size_t i = 1; i < finals.size(); ++i) {
    ExpectSameArrays<WP>(finals[0], finals[i],
                         "shuffle " + std::to_string(i));
  }
}

TEST(DynConsistencyTest, ShuffledUpdateOrdersConvergeUnweighted) {
  RunShuffledOrdersConverge<UnitWeight>();
}

TEST(DynConsistencyTest, ShuffledUpdateOrdersConvergeWeighted) {
  RunShuffledOrdersConverge<EdgeWeight>();
}

TEST(DynConsistencyTest, CommitMetadataAndPendingView) {
  DynamicGraph dyn(testing::TriangleWithTail());  // 0-1,1-2,2-0,2-3,3-4
  EXPECT_EQ(dyn.Epoch(), 0u);
  EXPECT_TRUE(dyn.HasEdge(0, 1));
  EXPECT_FALSE(dyn.HasEdge(0, 3));

  dyn.InsertEdge(0, 3);
  dyn.DeleteEdge(3, 4);
  EXPECT_TRUE(dyn.HasEdge(0, 3));   // pending view sees the insert
  EXPECT_FALSE(dyn.HasEdge(3, 4));  // and the delete
  EXPECT_EQ(dyn.Current()->graph->NumEdges(), 5u);  // published view does not

  auto snapshot = dyn.Commit();
  EXPECT_EQ(snapshot->epoch, 1u);
  EXPECT_FALSE(snapshot->resized);
  // Touched = endpoints of changed edges, sorted.
  EXPECT_EQ(snapshot->touched, (std::vector<NodeId>{0, 3, 4}));
  EXPECT_TRUE(snapshot->graph->HasEdge(0, 3));
  EXPECT_FALSE(snapshot->graph->HasEdge(3, 4));

  // No-op commit publishes nothing new.
  auto same = dyn.Commit();
  EXPECT_EQ(same->epoch, 1u);
  EXPECT_EQ(same.get(), snapshot.get());

  // Insert-then-delete of the same absent edge collapses to a no-op.
  dyn.InsertEdge(1, 4);
  dyn.DeleteEdge(1, 4);
  EXPECT_EQ(dyn.Commit()->epoch, 1u);

  // ... but when the collapsed insert GREW the node count, the growth
  // itself still commits (Commit must equal BuildFromScratch, which
  // sees the larger pending node count).
  dyn.InsertEdge(0, 5);
  dyn.DeleteEdge(0, 5);
  const Graph grown_scratch = dyn.BuildFromScratch();
  auto growth_only = dyn.Commit();
  EXPECT_EQ(growth_only->epoch, 2u);
  EXPECT_TRUE(growth_only->resized);
  EXPECT_TRUE(growth_only->touched.empty());
  EXPECT_EQ(growth_only->graph->NumNodes(), 6u);
  EXPECT_EQ(growth_only->graph->NumNodes(), grown_scratch.NumNodes());
  EXPECT_EQ(growth_only->graph->NumEdges(), grown_scratch.NumEdges());

  // Node growth sets `resized` and grows the published node count.
  dyn.InsertEdge(4, 7);
  auto grown = dyn.Commit();
  EXPECT_EQ(grown->epoch, 3u);
  EXPECT_TRUE(grown->resized);
  EXPECT_EQ(grown->graph->NumNodes(), 8u);
  EXPECT_EQ(grown->graph->Degree(6), 0u);  // gap nodes exist, isolated
  EXPECT_EQ(grown->touched, (std::vector<NodeId>{4, 7}));

  // The log records every accepted update in order.
  EXPECT_EQ(dyn.Log().size(), 7u);
}

TEST(DynConsistencyTest, InvalidUpdatesAreRejected) {
  DynamicGraph dyn(testing::TriangleWithTail());
  EXPECT_DEATH(dyn.InsertEdge(0, 1), "already present");
  EXPECT_DEATH(dyn.DeleteEdge(0, 3), "not present");
  EXPECT_DEATH(dyn.InsertEdge(2, 2), "self-loop");
}

// The acceptance matrix: every registered estimator, both weight modes,
// rebound through every epoch of an update sequence, answers
// bit-identically to a fresh estimator on the from-scratch rebuild.
template <WeightPolicy WP>
std::unique_ptr<ErEstimator> MakeEstimatorFor(const typename WP::GraphT& g,
                                              const std::string& name,
                                              const ErOptions& opt) {
  if constexpr (WP::kWeighted) {
    return CreateWeightedEstimator(name, g, opt);
  } else {
    return CreateEstimator(name, g, opt);
  }
}

template <WeightPolicy WP>
void RunEveryEstimatorBitIdentical(bool enable_session) {
  const ErOptions options = TestOptions();  // no λ: rebinds re-derive it
  std::vector<std::string> names;
  if constexpr (WP::kWeighted) {
    names = WeightedEstimatorNames();
  } else {
    names = EstimatorNames();
  }

  for (const std::string& name : names) {
    DynamicGraphT<WP> graph(BaseGraph<WP>());
    auto snapshot = graph.Current();
    auto estimator = MakeEstimatorFor<WP>(*snapshot->graph, name, options);
    ASSERT_NE(estimator, nullptr) << name;
    if (enable_session) estimator->EnableSessionCache();

    UpdateGeneratorT<WP> generator(graph, 4242);
    std::vector<decltype(snapshot)> held = {snapshot};  // graphs must live
    for (int batch = 0; batch < 3; ++batch) {
      for (const EdgeUpdate& op : generator.NextBatch(7)) graph.Apply(op);
      snapshot = graph.Commit();
      held.push_back(snapshot);
      GraphEpoch epoch;
      epoch.epoch = snapshot->epoch;
      epoch.touched = std::span<const NodeId>(snapshot->touched);
      epoch.resized = snapshot->resized;
      ASSERT_TRUE(estimator->RebindGraph(*snapshot->graph, epoch)) << name;
      // Answer a query ON the intermediate epoch so session caches (when
      // enabled) actually carry state across the swaps.
      if (estimator->SupportsQuery(1, 2)) {
        (void)estimator->EstimateWithStats(1, 2);
      }
    }

    const typename WP::GraphT rebuilt = graph.BuildFromScratch();
    auto fresh = MakeEstimatorFor<WP>(rebuilt, name, options);
    const auto final_edges = snapshot->graph->Edges();
    std::vector<QueryPair> queries = {{0, 5}, {3, 17}, {3, 9}, {7, 7},
                                      {12, 28}, {3, 17}};
    if constexpr (WP::kWeighted) {
      queries.push_back({final_edges[0].u, final_edges[0].v});
      queries.push_back({final_edges[3].u, final_edges[3].v});
    } else {
      queries.push_back({final_edges[0].first, final_edges[0].second});
      queries.push_back({final_edges[3].first, final_edges[3].second});
    }
    for (const QueryPair& q : queries) {
      const bool supported = estimator->SupportsQuery(q.s, q.t);
      ASSERT_EQ(supported, fresh->SupportsQuery(q.s, q.t))
          << name << " (" << q.s << "," << q.t << ")";
      if (!supported) continue;
      EXPECT_EQ(estimator->Estimate(q.s, q.t), fresh->Estimate(q.s, q.t))
          << name << " (" << q.s << "," << q.t << ")"
          << (enable_session ? " [session]" : "");
    }
  }
}

TEST(DynConsistencyTest, EveryEstimatorBitIdenticalUnweighted) {
  RunEveryEstimatorBitIdentical<UnitWeight>(/*enable_session=*/false);
}

TEST(DynConsistencyTest, EveryEstimatorBitIdenticalWeighted) {
  RunEveryEstimatorBitIdentical<EdgeWeight>(/*enable_session=*/false);
}

TEST(DynConsistencyTest, EveryEstimatorBitIdenticalWithSessions) {
  RunEveryEstimatorBitIdentical<UnitWeight>(/*enable_session=*/true);
  RunEveryEstimatorBitIdentical<EdgeWeight>(/*enable_session=*/true);
}

// The selective-invalidation contract of the SMM/GEER session caches: a
// commit whose touched set misses a source cache's dependency set keeps
// that cache (the revisit pays ZERO fresh source-side SpMV), while a
// commit inside it evicts (full cost again) — and both revisits answer
// exactly what a fresh estimator on the new graph answers.
TEST(DynConsistencyTest, SmmSessionSurvivesDisjointUpdates) {
  // A long path: with a fixed 3-iteration SMM, the dependency set of
  // source 5 is its 3-hop ball — updates beyond it must not evict.
  GraphBuilder b(200);
  for (NodeId v = 0; v + 1 < 200; ++v) b.AddEdge(v, v + 1);
  const Graph base = b.Build();
  ErOptions options = TestOptions();
  options.smm_iterations = 3;
  options.lambda = 0.5;  // pinned: ℓ formulas are bypassed anyway

  DynamicGraph dyn{Graph(base)};
  auto snapshot = dyn.Current();
  SmmEstimator estimator(*snapshot->graph, options);
  estimator.EnableSessionCache();

  const std::vector<QueryPair> warm = {{5, 9}, {5, 12}};
  std::vector<QueryStats> cold_stats(warm.size());
  RunQueryBatch(estimator, warm, cold_stats);
  const std::uint64_t cold_spmv =
      cold_stats[0].spmv_ops + cold_stats[1].spmv_ops;
  ASSERT_GT(cold_spmv, 0u);

  // Far update: chord {150, 160} — outside source 5's 3-hop ball.
  dyn.InsertEdge(150, 160);
  snapshot = dyn.Commit();
  GraphEpoch far;
  far.epoch = snapshot->epoch;
  far.touched = std::span<const NodeId>(snapshot->touched);
  ASSERT_TRUE(estimator.RebindGraph(*snapshot->graph, far));
  std::vector<QueryStats> warm_stats(warm.size());
  RunQueryBatch(estimator, warm, warm_stats);
  // Cache kept: the revisit pays only the target-side SpMV, never the
  // shared source side again.
  const std::uint64_t warm_spmv =
      warm_stats[0].spmv_ops + warm_stats[1].spmv_ops;
  EXPECT_LT(warm_spmv, cold_spmv)
      << "far-away update must keep the iterate cache";
  {
    SmmEstimator fresh(*snapshot->graph, options);
    for (const QueryPair& q : warm) {
      EXPECT_EQ(estimator.Estimate(q.s, q.t), fresh.Estimate(q.s, q.t));
    }
  }

  // Near update: chord {6, 9} — inside the dependency set; must evict.
  dyn.InsertEdge(6, 9);
  auto near_snapshot = dyn.Commit();
  GraphEpoch near_epoch;
  near_epoch.epoch = near_snapshot->epoch;
  near_epoch.touched = std::span<const NodeId>(near_snapshot->touched);
  ASSERT_TRUE(estimator.RebindGraph(*near_snapshot->graph, near_epoch));
  std::vector<QueryStats> evicted_stats(warm.size());
  RunQueryBatch(estimator, warm, evicted_stats);
  EXPECT_GT(evicted_stats[0].spmv_ops + evicted_stats[1].spmv_ops, warm_spmv)
      << "in-dependency update must evict the iterate cache";
  {
    SmmEstimator fresh(*near_snapshot->graph, options);
    for (const QueryPair& q : warm) {
      EXPECT_EQ(estimator.Estimate(q.s, q.t), fresh.Estimate(q.s, q.t));
    }
  }
}

// ---- PR 7: incremental epoch maintenance -------------------------------

// Shared fixture for the TP/TPC retention tests: a 200-node path, λ
// pinned at 0.5 so PengEll = 3 and the walk schedule never changes
// across epochs — retention is then decided purely by the visit sets.
Graph PathGraph200() {
  GraphBuilder b(200);
  for (NodeId v = 0; v + 1 < 200; ++v) b.AddEdge(v, v + 1);
  return b.Build();
}

GraphEpoch PinnedEpoch(const DynSnapshot& snapshot) {
  GraphEpoch epoch;
  epoch.epoch = snapshot.epoch;
  epoch.touched = std::span<const NodeId>(snapshot.touched);
  epoch.resized = snapshot.resized;
  epoch.lambda = 0.5;
  return epoch;
}

// TP visit-set retention: walks from node v reach at most ℓ = 3 hops, so
// a chord far down the path keeps every warm population (the revisit
// simulates ZERO fresh walks and answers bitwise what a fresh estimator
// answers), while an update inside a population's visited rows evicts it.
TEST(DynConsistencyTest, TpSessionSurvivesDisjointUpdates) {
  ErOptions options = TestOptions();
  options.lambda = 0.5;

  DynamicGraph dyn(PathGraph200());
  auto snapshot = dyn.Current();
  TpEstimator estimator(*snapshot->graph, options);
  estimator.EnableSessionCache();
  (void)estimator.EstimateWithStats(5, 9);
  (void)estimator.EstimateWithStats(5, 12);

  // Far update: chord {150, 160} — beyond any warm walk's 3-hop reach.
  dyn.InsertEdge(150, 160);
  snapshot = dyn.Commit();
  ASSERT_TRUE(estimator.RebindGraph(*snapshot->graph,
                                    PinnedEpoch(*snapshot)));
  EXPECT_GT(estimator.IncrementalRebinds(), 0u);
  const QueryStats retained = estimator.EstimateWithStats(5, 9);
  EXPECT_EQ(retained.walks, 0u)
      << "disjoint update must keep the walk populations";
  {
    TpEstimator fresh(*snapshot->graph, options);
    EXPECT_EQ(retained.value, fresh.Estimate(5, 9));
  }

  // Near update: chord {6, 9} — node 9 is a warm population's own start
  // node, so its visit set intersects and the entry must go.
  dyn.InsertEdge(6, 9);
  auto near_snapshot = dyn.Commit();
  ASSERT_TRUE(estimator.RebindGraph(*near_snapshot->graph,
                                    PinnedEpoch(*near_snapshot)));
  const QueryStats evicted = estimator.EstimateWithStats(5, 9);
  EXPECT_GT(evicted.walks, 0u)
      << "update inside the visit set must evict";
  {
    TpEstimator fresh(*near_snapshot->graph, options);
    EXPECT_EQ(evicted.value, fresh.Estimate(5, 9));
  }
}

// TPC analogue. Populations are prefix-pure, so survival means the
// revisit spawns zero walks AND takes zero steps; values stay bitwise
// equal to a fresh estimator either way.
TEST(DynConsistencyTest, TpcSessionSurvivesDisjointUpdates) {
  ErOptions options = TestOptions();
  options.lambda = 0.5;

  DynamicGraph dyn(PathGraph200());
  auto snapshot = dyn.Current();
  TpcEstimator estimator(*snapshot->graph, options);
  estimator.EnableSessionCache();
  (void)estimator.EstimateWithStats(5, 9);

  dyn.InsertEdge(150, 160);
  snapshot = dyn.Commit();
  ASSERT_TRUE(estimator.RebindGraph(*snapshot->graph,
                                    PinnedEpoch(*snapshot)));
  EXPECT_GT(estimator.IncrementalRebinds(), 0u);
  const QueryStats retained = estimator.EstimateWithStats(5, 9);
  EXPECT_EQ(retained.walks, 0u);
  EXPECT_EQ(retained.walk_steps, 0u);
  {
    TpcEstimator fresh(*snapshot->graph, options);
    EXPECT_EQ(retained.value, fresh.Estimate(5, 9));
  }

  dyn.InsertEdge(6, 9);
  auto near_snapshot = dyn.Commit();
  ASSERT_TRUE(estimator.RebindGraph(*near_snapshot->graph,
                                    PinnedEpoch(*near_snapshot)));
  const QueryStats evicted = estimator.EstimateWithStats(5, 9);
  EXPECT_GT(evicted.walks, 0u);
  {
    TpcEstimator fresh(*near_snapshot->graph, options);
    EXPECT_EQ(evicted.value, fresh.Estimate(5, 9));
  }
}

// Warm-started Lanczos: the per-epoch λ derived through a shared
// spectral holder under GraphEpoch::incremental (a) stays within the
// documented 1e-6 drift of the cold computation, (b) actually
// warm-starts from the second non-resized epoch on, and (c) is
// DETERMINISTIC — replaying the same epoch sequence through a fresh
// holder reproduces every λ bit for bit.
template <WeightPolicy WP>
void RunWarmSpectralBoundedDriftAndDeterministic() {
  // Pre-generate the epoch sequence once so both replays see identical
  // graphs.
  DynamicGraphT<WP> dyn(BaseGraph<WP>());
  UpdateGeneratorT<WP> generator(dyn, 303);
  std::vector<std::shared_ptr<const DynSnapshotT<WP>>> snapshots;
  for (int batch = 0; batch < 4; ++batch) {
    for (const EdgeUpdate& op : generator.NextBatch(5)) dyn.Apply(op);
    snapshots.push_back(dyn.Commit());
  }

  std::vector<std::vector<double>> replays;
  for (int replay = 0; replay < 2; ++replay) {
    auto holder = MakeSharedSpectral();
    std::vector<double> lambdas;
    bool prior_epoch_warmable = false;
    for (const auto& snap : snapshots) {
      GraphEpoch epoch;
      epoch.epoch = snap->epoch;
      epoch.touched = std::span<const NodeId>(snap->touched);
      epoch.resized = snap->resized;
      epoch.incremental = true;
      epoch.spectral = holder;
      bool warm = false;
      const double lambda = RebindLambda<WP>(*snap->graph, epoch, &warm);
      const double cold = ComputeSpectralBoundsT<WP>(*snap->graph).lambda;
      EXPECT_LE(std::abs(lambda - cold), 1e-6)
          << "epoch " << snap->epoch << " warm λ drifted";
      EXPECT_EQ(warm, prior_epoch_warmable && !snap->resized)
          << "epoch " << snap->epoch;
      // A resized epoch runs cold and records nothing, so the warm
      // chain restarts at the NEXT incremental epoch.
      prior_epoch_warmable = !snap->resized;
      lambdas.push_back(lambda);
    }
    replays.push_back(std::move(lambdas));
  }
  EXPECT_EQ(replays[0], replays[1]) << "warm λ sequence not deterministic";
}

TEST(DynConsistencyTest, WarmSpectralBoundedDriftUnweighted) {
  RunWarmSpectralBoundedDriftAndDeterministic<UnitWeight>();
}

TEST(DynConsistencyTest, WarmSpectralBoundedDriftWeighted) {
  RunWarmSpectralBoundedDriftAndDeterministic<EdgeWeight>();
}

// EXACT under GraphEpoch::incremental: small touched sets take the
// rank-1 Cholesky update path (counted by IncrementalRebinds) and agree
// with a freshly factorized estimator to tight relative tolerance on
// every query.
template <WeightPolicy WP>
void RunExactIncrementalFactorMatchesFresh() {
  const ErOptions options = TestOptions();
  DynamicGraphT<WP> dyn(BaseGraph<WP>());
  auto snapshot = dyn.Current();
  ExactEstimatorT<WP> estimator(*snapshot->graph, options);

  UpdateGeneratorT<WP> generator(dyn, 818);
  const std::vector<QueryPair> queries = {{0, 5}, {3, 17}, {12, 28}};
  for (int batch = 0; batch < 3; ++batch) {
    // 2 ops per commit: well under the max(4, n/4) crossover, so the
    // incremental path engages unless the commit resized the graph.
    for (const EdgeUpdate& op : generator.NextBatch(2)) dyn.Apply(op);
    // The previous graph must outlive the rebind: the first rebinder of
    // an incremental epoch diffs old-vs-new CSR rows (the serving tier
    // guarantees this by retaining the outgoing snapshot until the swap
    // completes).
    auto prev = snapshot;
    snapshot = dyn.Commit();
    GraphEpoch epoch;
    epoch.epoch = snapshot->epoch;
    epoch.touched = std::span<const NodeId>(snapshot->touched);
    epoch.resized = snapshot->resized;
    epoch.incremental = true;
    ASSERT_TRUE(estimator.RebindGraph(*snapshot->graph, epoch));

    ExactEstimatorT<WP> fresh(*snapshot->graph, options);
    for (const QueryPair& q : queries) {
      const double got = estimator.Estimate(q.s, q.t);
      const double want = fresh.Estimate(q.s, q.t);
      EXPECT_LE(std::abs(got - want), 1e-8 * std::max(1.0, std::abs(want)))
          << "epoch " << snapshot->epoch << " (" << q.s << "," << q.t << ")";
    }
  }
  EXPECT_GT(estimator.IncrementalRebinds(), 0u)
      << "rank-1 factor path never engaged";
}

TEST(DynConsistencyTest, ExactIncrementalFactorMatchesFreshUnweighted) {
  RunExactIncrementalFactorMatchesFresh<UnitWeight>();
}

TEST(DynConsistencyTest, ExactIncrementalFactorMatchesFreshWeighted) {
  RunExactIncrementalFactorMatchesFresh<EdgeWeight>();
}

// CG's touched-row Jacobi refresh is structurally exact, so it is
// always on (no incremental flag) and already covered bit-for-bit by
// EveryEstimatorBitIdentical; here we pin that a plain non-resized
// rebind reports it through the counter.
TEST(DynConsistencyTest, CgTouchedRowRefreshCountsIncremental) {
  DynamicGraph dyn(BaseGraph<UnitWeight>());
  auto snapshot = dyn.Current();
  SolverEstimatorT<UnitWeight> estimator(*snapshot->graph, TestOptions());
  EXPECT_EQ(estimator.IncrementalRebinds(), 0u);

  dyn.InsertEdge(0, 17);
  snapshot = dyn.Commit();
  ASSERT_FALSE(snapshot->resized);
  GraphEpoch epoch;
  epoch.epoch = snapshot->epoch;
  epoch.touched = std::span<const NodeId>(snapshot->touched);
  ASSERT_TRUE(estimator.RebindGraph(*snapshot->graph, epoch));
  EXPECT_EQ(estimator.IncrementalRebinds(), 1u);

  SolverEstimatorT<UnitWeight> fresh(*snapshot->graph, TestOptions());
  EXPECT_EQ(estimator.Estimate(0, 17), fresh.Estimate(0, 17));
}

}  // namespace
}  // namespace geer
