#include "linalg/jacobi_eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace geer {

EigenDecomposition JacobiEigenSolve(const Matrix& m, double tol,
                                    int max_sweeps) {
  GEER_CHECK_EQ(m.Rows(), m.Cols());
  const std::size_t n = m.Rows();
  Matrix a = m;
  Matrix v(n, n, 0.0);
  for (std::size_t i = 0; i < n; ++i) v(i, i) = 1.0;

  auto off_diagonal_norm = [&a, n]() {
    double acc = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      for (std::size_t j = i + 1; j < n; ++j) acc += a(i, j) * a(i, j);
    }
    return std::sqrt(2.0 * acc);
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() <= tol) break;
    for (std::size_t p = 0; p < n; ++p) {
      for (std::size_t q = p + 1; q < n; ++q) {
        const double apq = a(p, q);
        if (std::abs(apq) < 1e-300) continue;
        const double app = a(p, p);
        const double aqq = a(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::abs(theta) + std::sqrt(theta * theta + 1.0));
        const double cos_r = 1.0 / std::sqrt(t * t + 1.0);
        const double sin_r = t * cos_r;
        // Rotate rows/columns p and q of A.
        for (std::size_t k = 0; k < n; ++k) {
          const double akp = a(k, p);
          const double akq = a(k, q);
          a(k, p) = cos_r * akp - sin_r * akq;
          a(k, q) = sin_r * akp + cos_r * akq;
        }
        for (std::size_t k = 0; k < n; ++k) {
          const double apk = a(p, k);
          const double aqk = a(q, k);
          a(p, k) = cos_r * apk - sin_r * aqk;
          a(q, k) = sin_r * apk + cos_r * aqk;
        }
        // Accumulate the rotation into V.
        for (std::size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = cos_r * vkp - sin_r * vkq;
          v(k, q) = sin_r * vkp + cos_r * vkq;
        }
      }
    }
  }

  // Sort eigenpairs ascending.
  std::vector<std::size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&a](std::size_t i, std::size_t j) { return a(i, i) < a(j, j); });

  EigenDecomposition out;
  out.eigenvalues.resize(n);
  out.eigenvectors = Matrix(n, n, 0.0);
  for (std::size_t j = 0; j < n; ++j) {
    out.eigenvalues[j] = a(order[j], order[j]);
    for (std::size_t i = 0; i < n; ++i) {
      out.eigenvectors(i, j) = v(i, order[j]);
    }
  }
  return out;
}

}  // namespace geer
