#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <cstdio>

namespace geer::obs {
namespace {

std::atomic<std::uint64_t> g_next_tracer_id{1};

struct TlsCache {
  std::uint64_t tracer_id = 0;
  void* ring = nullptr;
};
thread_local TlsCache t_cache;

void AppendU64(std::string& out, std::uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof buf, "%llu",
                static_cast<unsigned long long>(v));
  out += buf;
}

/// Microseconds with sub-µs precision, the unit Chrome traces use.
void AppendMicros(std::string& out, std::uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%llu.%03llu",
                static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

}  // namespace

std::uint64_t NowNs() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

struct Tracer::Ring {
  std::mutex mu;
  std::vector<SpanEvent> events;  // bounded at kRingCapacity
  std::size_t head = 0;           // next write slot once wrapped
  bool wrapped = false;
  std::uint32_t lane = 0;  // default tid for this thread's events
};

std::atomic<Tracer*> Tracer::g_current{nullptr};

Tracer::Tracer() : id_(g_next_tracer_id.fetch_add(1)) {}

Tracer::~Tracer() = default;

void Tracer::Install(Tracer* tracer) {
  g_current.store(tracer, std::memory_order_release);
}

Tracer::Ring* Tracer::AttachCurrentThread() {
  auto ring = std::make_unique<Ring>();
  ring->events.reserve(kRingCapacity);
  Ring* raw = ring.get();
  {
    std::lock_guard<std::mutex> lock(mu_);
    raw->lane = next_lane_++;
    rings_.push_back(std::move(ring));
  }
  t_cache.tracer_id = id_;
  t_cache.ring = raw;
  return raw;
}

void Tracer::Record(SpanEvent event) {
  Ring* ring = t_cache.tracer_id == id_ ? static_cast<Ring*>(t_cache.ring)
                                        : AttachCurrentThread();
  if (event.tid == 0) event.tid = ring->lane;
  std::lock_guard<std::mutex> lock(ring->mu);
  if (ring->events.size() < kRingCapacity) {
    ring->events.push_back(event);
    return;
  }
  ring->events[ring->head] = event;
  ring->head = (ring->head + 1) % kRingCapacity;
  ring->wrapped = true;
}

std::vector<SpanEvent> Tracer::Drain() const {
  std::vector<SpanEvent> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& ring : rings_) {
    std::lock_guard<std::mutex> ring_lock(ring->mu);
    if (!ring->wrapped) {
      out.insert(out.end(), ring->events.begin(), ring->events.end());
      continue;
    }
    // Oldest first: head..end, then begin..head.
    out.insert(out.end(), ring->events.begin() + ring->head,
               ring->events.end());
    out.insert(out.end(), ring->events.begin(),
               ring->events.begin() + ring->head);
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const SpanEvent& a, const SpanEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  return out;
}

std::string Tracer::ToChromeJson() const {
  const std::vector<SpanEvent> events = Drain();
  std::uint64_t epoch = events.empty() ? 0 : events.front().start_ns;
  for (const SpanEvent& e : events) epoch = std::min(epoch, e.start_ns);

  std::string out = "{\"traceEvents\":[";
  bool first = true;
  for (const SpanEvent& e : events) {
    if (!first) out += ',';
    first = false;
    out += "{\"ph\":\"X\",\"pid\":1,\"tid\":";
    AppendU64(out, e.tid);
    out += ",\"name\":\"";
    out += e.name != nullptr ? e.name : "?";
    out += "\",\"ts\":";
    AppendMicros(out, e.start_ns - epoch);
    out += ",\"dur\":";
    AppendMicros(out, e.dur_ns);
    if (e.arg_key0 != nullptr) {
      out += ",\"args\":{\"";
      out += e.arg_key0;
      out += "\":";
      AppendU64(out, e.arg_val0);
      if (e.arg_key1 != nullptr) {
        out += ",\"";
        out += e.arg_key1;
        out += "\":";
        AppendU64(out, e.arg_val1);
      }
      out += '}';
    }
    out += '}';
  }
  out += "]}\n";
  return out;
}

bool Tracer::WriteChromeTrace(const std::string& path) const {
  const std::string json = ToChromeJson();
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::size_t written = std::fwrite(json.data(), 1, json.size(), f);
  const bool ok = std::fclose(f) == 0 && written == json.size();
  return ok;
}

}  // namespace geer::obs
