#include "core/registry.h"

#include "core/amc.h"
#include "core/exact.h"
#include "core/geer.h"
#include "core/hay.h"
#include "core/mc.h"
#include "core/mc2.h"
#include "core/rp.h"
#include "core/smm.h"
#include "core/solver_er.h"
#include "core/tp.h"
#include "core/tpc.h"

namespace geer {

std::unique_ptr<ErEstimator> CreateEstimator(const std::string& name,
                                             const Graph& graph,
                                             const ErOptions& options) {
  if (name == "GEER") return std::make_unique<GeerEstimator>(graph, options);
  if (name == "AMC") return std::make_unique<AmcEstimator>(graph, options);
  if (name == "SMM") return std::make_unique<SmmEstimator>(graph, options);
  if (name == "SMM-PengEll") {
    ErOptions opt = options;
    opt.use_peng_ell = true;
    return std::make_unique<SmmEstimator>(graph, opt);
  }
  if (name == "TP") return std::make_unique<TpEstimator>(graph, options);
  if (name == "TPC") return std::make_unique<TpcEstimator>(graph, options);
  if (name == "MC") return std::make_unique<McEstimator>(graph, options);
  if (name == "MC2") return std::make_unique<Mc2Estimator>(graph, options);
  if (name == "HAY") return std::make_unique<HayEstimator>(graph, options);
  if (name == "RP") return std::make_unique<RpEstimator>(graph, options);
  if (name == "EXACT") {
    return std::make_unique<ExactEstimator>(graph, options);
  }
  if (name == "CG") return std::make_unique<SolverEstimator>(graph, options);
  return nullptr;
}

std::vector<std::string> EstimatorNames() {
  return {"GEER", "AMC", "SMM", "SMM-PengEll", "TP",    "TPC",
          "MC",   "MC2", "HAY", "RP",          "EXACT", "CG"};
}

bool EstimatorFeasible(const std::string& name, const Graph& graph,
                       const ErOptions& options) {
  if (name == "EXACT") return ExactEstimator::Feasible(graph);
  if (name == "RP") return RpEstimator::Feasible(graph, options);
  for (const std::string& known : EstimatorNames()) {
    if (known == name) return true;
  }
  return false;
}

}  // namespace geer
