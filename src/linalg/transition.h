// The random-walk (transition) operator P = D_w^{-1} A_w applied to
// vectors, generic over the weight policy (graph/weight_policy.h), with
// two execution modes:
//
//  * sparse "scatter" mode — iterates only the support of x; cost
//    proportional to Σ_{v∈supp(x)} d(v), exactly the cost model GEER's
//    greedy switch rule (Eq. 17) charges per SMM iteration;
//  * dense "gather" mode — one cache-friendly sweep over the CSR arrays,
//    the mode the paper credits for SMM's locality on saturated iterates.
//
// ApplyAuto picks the mode from the support size, and reports the support
// degree-sum the greedy rule needs — so GEER never pays an extra pass.
//
// The UnitWeight instantiation multiplies by the constexpr arc weight 1,
// which constant-folds away: it is the paper's unweighted P = D^{-1} A
// with no weight loads on the hot path. The EdgeWeight instantiation is
// the weighted P with (Px)(u) = Σ_{v∈N(u)} w(u,v)/w(u)·x(v). The cost
// model is identical in both modes — arc traversals — because Eq. 17
// charges memory touches, which weights do not add to.

#ifndef GEER_LINALG_TRANSITION_H_
#define GEER_LINALG_TRANSITION_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "graph/weight_policy.h"
#include "linalg/dense.h"
#include "util/check.h"

namespace geer {

/// Applies P = D_w^{-1} A_w. Stateless w.r.t. queries; owns scratch
/// buffers so repeated applications do not allocate.
template <WeightPolicy WP>
class TransitionOperatorT {
 public:
  using GraphT = typename WP::GraphT;

  explicit TransitionOperatorT(const GraphT& graph)
      : graph_(&graph),
        scratch_(graph.NumNodes(), 0.0),
        touched_flag_(graph.NumNodes(), 0) {
    touched_.reserve(graph.NumNodes());
  }
  // Stores a pointer to `graph`; a temporary would dangle.
  explicit TransitionOperatorT(GraphT&&) = delete;

  /// A vector together with its support (list of indices of non-zeros).
  /// The support list may over-approximate (contain zero entries) but
  /// never misses a non-zero.
  struct SparseVector {
    Vector values;                ///< dense storage, length n
    std::vector<NodeId> support;  ///< indices with (possibly) non-zero value
    bool dense = false;           ///< true once support tracking stopped

    /// Σ_{v∈supp} d(v): the paper's per-iteration SMM cost (Eq. 17 LHS).
    std::uint64_t support_degree_sum = 0;

    /// Initializes to the one-hot vector e_v.
    void InitOneHot(NodeId v, const GraphT& graph) {
      values.assign(graph.NumNodes(), 0.0);
      GEER_CHECK(v < graph.NumNodes());
      values[v] = 1.0;
      support.assign(1, v);
      dense = false;
      support_degree_sum = graph.Degree(v);
    }
  };

  /// x ← P·x, choosing scatter vs gather from x's density, updating the
  /// support metadata. Returns the number of arc traversals performed.
  std::uint64_t ApplyAuto(SparseVector* x);

  /// Dense gather: y(u) = (1/w(u)) Σ_{v∈N(u)} w(u,v)·x(v). Always touches
  /// all 2m arcs. `y` is resized to n.
  void ApplyDense(const Vector& x, Vector* y) const;

  /// Fraction of nodes in the support above which ApplyAuto switches to
  /// dense mode permanently.
  static constexpr double kDenseThreshold = 0.25;

  const GraphT& graph() const { return *graph_; }

 private:
  // Scatter from the support of x into scratch_, producing the new support.
  void ApplySparse(SparseVector* x);

  const GraphT* graph_;
  Vector scratch_;
  std::vector<NodeId> touched_;
  std::vector<char> touched_flag_;
};

/// Applies the symmetrically normalized adjacency
/// N = D_w^{-1/2} A_w D_w^{-1/2} (similar to P, hence same spectrum) —
/// the operator the λ preprocessing runs Lanczos on.
template <WeightPolicy WP>
class NormalizedAdjacencyOperatorT {
 public:
  using GraphT = typename WP::GraphT;

  explicit NormalizedAdjacencyOperatorT(const GraphT& graph);
  // Stores a pointer to `graph`; a temporary would dangle.
  explicit NormalizedAdjacencyOperatorT(GraphT&&) = delete;

  /// y ← N·x (dense).
  void Apply(const Vector& x, Vector* y) const;

  std::size_t Dim() const { return inv_sqrt_weight_.size(); }

  /// The known top eigenvector of N: entries ∝ √w(v), unit-normalized.
  const Vector& TopEigenvector() const { return top_eigenvector_; }

 private:
  const GraphT* graph_;
  Vector inv_sqrt_weight_;
  Vector top_eigenvector_;
};

/// The two stacks, by their historical names.
using TransitionOperator = TransitionOperatorT<UnitWeight>;
using WeightedTransitionOperator = TransitionOperatorT<EdgeWeight>;
using NormalizedAdjacencyOperator = NormalizedAdjacencyOperatorT<UnitWeight>;
using NormalizedWeightedAdjacencyOperator =
    NormalizedAdjacencyOperatorT<EdgeWeight>;

// Compiled once in transition.cc for both policies.
extern template class TransitionOperatorT<UnitWeight>;
extern template class TransitionOperatorT<EdgeWeight>;
extern template class NormalizedAdjacencyOperatorT<UnitWeight>;
extern template class NormalizedAdjacencyOperatorT<EdgeWeight>;

}  // namespace geer

#endif  // GEER_LINALG_TRANSITION_H_
