// EXACT baseline: effective resistance from a dense factorization of
// M = L_w + (1/n)𝟙𝟙ᵀ, which is SPD for connected graphs and agrees with
// L_w† on 𝟙^⊥ (L_w = D_w − A_w; unit weights give the paper's unweighted
// Laplacian). O(n³) setup, O(n²) memory — only viable for small graphs,
// reproducing the paper's OOM behaviour on everything but Facebook-scale.

#ifndef GEER_CORE_EXACT_H_
#define GEER_CORE_EXACT_H_

#include <memory>
#include <string>

#include "core/epoch_shared.h"
#include "core/estimator.h"
#include "core/options.h"
#include "graph/weight_policy.h"
#include "linalg/cholesky.h"

namespace geer {

template <WeightPolicy WP>
class ExactEstimatorT : public ErEstimator {
 public:
  using GraphT = typename WP::GraphT;

  /// Factorizes the augmented Laplacian. Aborts if the graph exceeds
  /// `max_nodes` (the library's stand-in for running out of memory) or if
  /// the graph is disconnected (M then not PD).
  explicit ExactEstimatorT(const GraphT& graph, ErOptions options = {},
                           NodeId max_nodes = 8192);
  // Stores a pointer to `graph`; a temporary would dangle.
  explicit ExactEstimatorT(GraphT&&, ErOptions = {}, NodeId = 8192) = delete;

  std::string Name() const override {
    return std::string(WP::kNamePrefix) + "EXACT";
  }
  QueryStats EstimateWithStats(NodeId s, NodeId t) override;

  /// Batch workers share the O(n²) factorization — the only per-graph
  /// state — instead of redoing the O(n³) setup per thread.
  std::unique_ptr<ErEstimator> CloneForBatch() const override {
    return std::unique_ptr<ErEstimator>(new ExactEstimatorT<WP>(*this));
  }

  /// Dynamic-graph hook: the factorization depends on the WHOLE graph,
  /// so any epoch change invalidates it — but it is rebuilt exactly once
  /// per epoch across every clone sharing it (core/epoch_shared.h), not
  /// once per worker. Aborts like construction if the new snapshot
  /// exceeds the max_nodes cap — pre-check with Feasible().
  using ErEstimator::RebindGraph;
  bool RebindGraph(const GraphT& graph, const GraphEpoch& epoch) override;

  /// True iff the dense factorization would fit under `max_nodes`.
  static bool Feasible(const GraphT& graph, NodeId max_nodes = 8192) {
    return graph.NumNodes() <= max_nodes;
  }

 private:
  // Clone constructor: adopts the shared factorization and its
  // epoch-keyed holder.
  ExactEstimatorT(const ExactEstimatorT& other) = default;

  static std::shared_ptr<const CholeskyFactor> BuildFactor(
      const GraphT& graph, NodeId max_nodes);

  const GraphT* graph_;
  NodeId max_nodes_ = 8192;
  std::shared_ptr<const CholeskyFactor> factor_;
  std::shared_ptr<EpochShared<CholeskyFactor>> shared_factor_;
};

/// The two stacks, by their historical names.
using ExactEstimator = ExactEstimatorT<UnitWeight>;
using WeightedExactEstimator = ExactEstimatorT<EdgeWeight>;

extern template class ExactEstimatorT<UnitWeight>;
extern template class ExactEstimatorT<EdgeWeight>;

}  // namespace geer

#endif  // GEER_CORE_EXACT_H_
