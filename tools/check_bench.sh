#!/usr/bin/env bash
# Bench regression gate: compares a freshly produced BENCH_pr<N>.json
# (tools/run_bench.sh) against the newest committed predecessor, per
# (method, metric, threads) series, and FAILS on a >15% THROUGHPUT
# regression — the first consumer of the per-PR perf trajectory.
#
#   tools/check_bench.sh [NEW.json] [--baseline=FILE] [--threshold=F]
#
#   NEW.json          the candidate file (default: the highest-numbered
#                     BENCH_pr*.json in the repo root)
#   --baseline=FILE   explicit baseline (default: the highest-numbered
#                     committed BENCH_pr*.json whose basename differs
#                     from the candidate's)
#   --threshold=F     relative regression tolerance (default 0.15)
#   --time-threshold=F  growth tolerance for the gated latency series
#                     (swap_ms / p95_ms; default 0.35 — wall-clock
#                     timings on shared CI machines are noisier than
#                     the best-of throughput numbers)
#
# Environment:
#   BENCH_DIR         directory holding the BENCH_pr*.json trajectory
#                     (default: the repo root). The shell-level self-test
#                     points this at a fixture directory.
#
# Besides the pairwise gate, the WHOLE committed trajectory is scanned:
# for every (method, metric, threads) series across all BENCH_pr*.json
# in PR order, a run of >= 3 consecutive points drifting in the adverse
# direction (throughput/ratio series falling, time series growing) earns
# a "drift" warning even when each individual step is under the
# threshold — the slow-leak regressions a one-step gate never sees.
#
# Policy: throughput series (metric contains "throughput" or "qps")
# hard-fail when the new value drops more than the threshold. Latency
# series the PRs gate on — epoch-swap cost ("swap_ms") and serve tail
# latency ("p95_ms", which covers both the in-process serve/* series and
# the networked net/<dataset>/<mode>/p95_ms wire-path series) — hard-fail
# in the OTHER direction: growth past
# --time-threshold (wider than the throughput threshold because raw
# wall-clock is noisier than best-of throughput). Everything else only
# WARNS past it — ratio series ("speedup"/"retention") when they drop,
# remaining time series (ms / cpu) when they grow — because those run
# on shared CI machines and are noisy, while the pinned serve-throughput
# runs are the load-bearing numbers. The obs/<dataset>/overhead_pct
# series is special-cased: it is a bounded ratio checked against an
# absolute 2% budget (warning) and excluded from the relative gates.
# Exit codes: 0 ok (possibly with warnings), 1 gated regression, 2
# usage/missing files.

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BENCH_ROOT="${BENCH_DIR:-$REPO_ROOT}"

NEW=""
BASELINE=""
THRESHOLD="0.15"
TIME_THRESHOLD="0.35"
for arg in "$@"; do
  case "$arg" in
    --baseline=*) BASELINE="${arg#--baseline=}" ;;
    --threshold=*) THRESHOLD="${arg#--threshold=}" ;;
    --time-threshold=*) TIME_THRESHOLD="${arg#--time-threshold=}" ;;
    -*) echo "unknown flag: $arg" >&2; exit 2 ;;
    *) NEW="$arg" ;;
  esac
done

# Highest PR number wins; ties cannot happen (one file per PR).
newest_bench() {
  ls "$BENCH_ROOT"/BENCH_pr*.json 2>/dev/null |
    awk -F'BENCH_pr' '{ n = $2; sub(/\.json$/, "", n);
                        printf "%012d %s\n", n, $0 }' |
    sort | awk '{ print $2 }' | tail -n "$1" | head -n 1
}

if [[ -z "$NEW" ]]; then
  NEW="$(newest_bench 1 || true)"
fi
if [[ -z "$NEW" || ! -f "$NEW" ]]; then
  echo "check_bench: no candidate BENCH file (${NEW:-none})" >&2
  exit 2
fi

if [[ -z "$BASELINE" ]]; then
  NEW_BASE="$(basename "$NEW")"
  BASELINE="$(ls "$BENCH_ROOT"/BENCH_pr*.json 2>/dev/null |
    grep -v "/${NEW_BASE}$" |
    awk -F'BENCH_pr' '{ n = $2; sub(/\.json$/, "", n);
                        printf "%012d %s\n", n, $0 }' |
    sort | tail -n 1 | awk '{ print $2 }' || true)"
fi
if [[ -z "$BASELINE" || ! -f "$BASELINE" ]]; then
  echo "check_bench: no committed predecessor to compare against — skipping"
  exit 0
fi

echo "== check_bench: $NEW vs baseline $BASELINE (threshold ${THRESHOLD}) =="

# The BENCH files are machine-written by run_bench.sh: one entry object
# per line with fixed key order — awk-extractable without jq.
extract() {
  awk '
    /"metric"/ {
      method = $0; sub(/.*"method": "/, "", method); sub(/".*/, "", method)
      metric = $0; sub(/.*"metric": "/, "", metric); sub(/".*/, "", metric)
      value = $0; sub(/.*"value": /, "", value); sub(/[,}].*/, "", value)
      threads = $0; sub(/.*"threads": /, "", threads)
      sub(/[^0-9].*/, "", threads)
      printf "%s|%s|%s\t%s\n", method, metric, threads, value
    }' "$1"
}

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT
extract "$NEW" | sort > "$TMP_DIR/new.tsv"
extract "$BASELINE" | sort > "$TMP_DIR/old.tsv"

# --- whole-trajectory drift scan (warnings only, never gates) --------------
# All committed BENCH files in PR order, the candidate appended when it is
# not already the newest on disk; every series is walked backwards from its
# latest point and a strictly-adverse run of >= 3 points is reported.
TRAJ="$TMP_DIR/traj.tsv"
: > "$TRAJ"
idx=0
NEW_BASE="$(basename "$NEW")"
new_in_trajectory=0
while IFS= read -r f; do
  [[ -z "$f" ]] && continue
  idx=$((idx + 1))
  [[ "$(basename "$f")" == "$NEW_BASE" ]] && new_in_trajectory=1
  extract "$f" | awk -v i="$idx" '{ printf "%s\t%d\t%s\n", $1, i, $2 }' \
    >> "$TRAJ"
done < <(ls "$BENCH_ROOT"/BENCH_pr*.json 2>/dev/null |
  awk -F'BENCH_pr' '{ n = $2; sub(/\.json$/, "", n);
                      printf "%012d %s\n", n, $0 }' |
  sort | awk '{ print $2 }')
if [[ "$new_in_trajectory" == 0 ]]; then
  idx=$((idx + 1))
  extract "$NEW" | awk -v i="$idx" '{ printf "%s\t%d\t%s\n", $1, i, $2 }' \
    >> "$TRAJ"
fi
if [[ "$idx" -ge 3 ]]; then
  echo "== check_bench: trajectory scan over ${idx} BENCH files =="
  sort -t "$(printf '\t')" -k1,1 -k2,2n "$TRAJ" |
    awk -F'\t' '
      function flush() {
        if (n < 3) return
        higher_is_better = (key ~ /throughput|qps|speedup|retention|hit_rate/)
        # Walk back from the newest point while each step is strictly
        # adverse; a run of >= 3 points is a drift.
        run = 1
        for (i = n; i > 1; --i) {
          adverse = higher_is_better ? (v[i] < v[i - 1]) : (v[i] > v[i - 1])
          if (!adverse) break
          run++
        }
        if (run >= 3 && v[n - run + 1] != 0) {
          printf "drift %-60s %12g -> %12g over last %d PRs\n",
                 key, v[n - run + 1], v[n], run
          drifts++
        }
      }
      $1 != key { flush(); key = $1; n = 0 }
      { v[++n] = $3 + 0 }
      END {
        flush()
        printf "== check_bench: trajectory scan: %d drift warning(s) ==\n",
               drifts + 0
      }'
fi

# --- instrumentation-overhead budget (absolute, candidate only) ------------
# The obs/<dataset>/overhead_pct series is a bounded ratio, not a
# trajectory: it is checked against an absolute 2% budget here and kept
# out of the relative-change gates below (a relative delta on a
# near-zero, sign-crossing percentage is meaningless).
awk -F'\t' '
  $1 ~ /overhead_pct/ {
    value = $2 + 0
    # Positive side only: negative readings mean "recording measured
    # faster", i.e. the cell is inside measurement noise, not a cost.
    if (value > 2) {
      printf "warn %-60s %.2f%% exceeds the 2%% obs-overhead budget\n",
             $1, value
      over++
    }
    seen++
  }
  END {
    if (seen > 0) {
      printf "== check_bench: obs overhead: %d series, %d over budget ==\n",
             seen, over + 0
    }
  }' "$TMP_DIR/new.tsv"

join -t "$(printf '\t')" "$TMP_DIR/old.tsv" "$TMP_DIR/new.tsv" |
  awk -F'\t' -v thr="$THRESHOLD" -v time_thr="$TIME_THRESHOLD" '
    {
      key = $1; old = $2 + 0; new = $3 + 0
      if (key ~ /overhead_pct/) { compared++; next }  # absolute gate above
      gated = (key ~ /throughput|qps/)
      gated_low = (key ~ /swap_ms|p95_ms/)
      higher_is_better = gated || (key ~ /speedup|retention/)
      if (old <= 0) next
      delta = (new - old) / old
      if (gated && delta < -thr) {
        printf "FAIL %-60s %12g -> %12g (%+.1f%%)\n", key, old, new,
               100 * delta
        failures++
      } else if (gated_low && delta > time_thr) {
        printf "FAIL %-60s %12g -> %12g (%+.1f%%)\n", key, old, new,
               100 * delta
        failures++
      } else if (gated_low) {
        compared++
      } else if (!gated && higher_is_better && delta < -thr) {
        printf "warn %-60s %12g -> %12g (%+.1f%%)\n", key, old, new,
               100 * delta
        warnings++
      } else if (!higher_is_better && delta > thr) {
        printf "warn %-60s %12g -> %12g (%+.1f%%)\n", key, old, new,
               100 * delta
        warnings++
      } else {
        compared++
      }
    }
    END {
      printf "== check_bench: %d series ok, %d warnings, %d failures ==\n",
             compared + 0, warnings + 0, failures + 0
      exit failures > 0 ? 1 : 0
    }'
