#include "core/tp.h"

#include <algorithm>
#include <cmath>

#include "core/ell.h"
#include "core/spectral_epoch.h"
#include "linalg/spectral.h"
#include "util/check.h"

namespace geer {
namespace {

// Domain-separation tag for TP's per-source walk streams (keeps them
// decorrelated from TPC's per-walk streams on the same seed and source).
constexpr std::uint64_t kTpStreamTag = 0x5450u;  // "TP"

// Stamps the walk schedule and the retained-byte estimate on a freshly
// recorded population (shared by the session path and WarmLandmarks).
template <typename Population>
void FinalizePopulation(std::uint32_t ell, std::uint64_t eta,
                        Population* rec) {
  rec->ell = ell;
  rec->eta = eta;
  std::size_t bytes = sizeof(Population) + rec->visits.bytes();
  for (const auto& row : rec->hist) {
    bytes += row.size() * sizeof(std::pair<NodeId, std::uint32_t>) +
             sizeof(row);
  }
  rec->bytes = bytes;
}

}  // namespace

template <WeightPolicy WP>
std::uint32_t TpSessionCacheT<WP>::NodePopulation::Count(std::uint32_t i,
                                                         NodeId v) const {
  GEER_DCHECK(i >= 1 && i <= ell);
  for (const auto& [endpoint, count] : hist[i - 1]) {
    if (endpoint == v) return count;
  }
  return 0;
}

template <WeightPolicy WP>
TpSessionCacheT<WP>::TpSessionCacheT(std::size_t budget_bytes)
    : cache_(budget_bytes == 0 ? 64ull << 20 : budget_bytes) {}

template <WeightPolicy WP>
const typename TpSessionCacheT<WP>::NodePopulation*
TpSessionCacheT<WP>::Find(NodeId node) {
  return cache_.Find(node);
}

template <WeightPolicy WP>
void TpSessionCacheT<WP>::Insert(NodePopulation pop, bool pinned) {
  // Larger than the whole budget: admitting would only evict every other
  // population and then be dropped itself next insert — skip admission
  // entirely (pinned landmarks are budget-exempt, so they always enter).
  if (!pinned && pop.bytes > cache_.budget_bytes()) return;
  const NodeId node = pop.node;
  const std::size_t bytes = pop.bytes;
  cache_.Insert(node, std::move(pop), bytes, pinned);
  cache_.EvictOverBudget();
}

template <WeightPolicy WP>
TpEstimatorT<WP>::TpEstimatorT(const GraphT& graph, ErOptions options)
    : graph_(&graph), options_(options), walker_(graph) {
  ValidateOptions(options_);
  lambda_ = options_.lambda.has_value()
                ? *options_.lambda
                : ComputeSpectralBoundsT<WP>(graph).lambda;
}

template <WeightPolicy WP>
bool TpEstimatorT<WP>::RebindGraph(const GraphT& graph,
                                   const GraphEpoch& epoch) {
  // The outgoing walk schedule, before λ is re-derived: retained
  // populations are only compatible with the new epoch if (ℓ, η) is
  // unchanged — every count lookup asserts schedule equality.
  const std::uint32_t old_ell =
      PengEll(options_.epsilon, lambda_, options_.max_ell);
  const std::uint64_t old_eta = WalksPerLength(old_ell);
  graph_ = &graph;
  walker_ = WalkerFor<WP>(graph);
  bool incremental = false;
  bool warm = false;
  lambda_ = RebindLambda<WP>(graph, epoch, &warm);
  incremental = warm;
  const std::uint32_t new_ell =
      PengEll(options_.epsilon, lambda_, options_.max_ell);
  if (session_ != nullptr) {
    if (epoch.resized || new_ell != old_ell ||
        WalksPerLength(new_ell) != old_eta) {
      // Resize or schedule change: every population is stale (wrong
      // dimension or wrong (ℓ, η)). Landmark populations are re-warmed
      // lazily — their pin-on-insert flag comes from is_landmark_, so
      // the next query (or WarmLandmarks call) restores them.
      session_->Clear();
    } else {
      // Selective retention: a population whose recorded visit set is
      // disjoint from the touched rows replays bit-identically on the
      // new graph — evict only the intersecting ones. Pinned landmarks
      // are evicted too when they intersect (lazy re-warm restores
      // them).
      session_->EvictIf([&](NodeId, const SessionPopulation& pop) {
        return pop.visits.Intersects(epoch.touched);
      });
      incremental = true;
    }
  }
  if (epoch.resized) {
    hist_count_.clear();
    hist_touched_.clear();
  }
  if (incremental) {
    incremental_rebinds_.fetch_add(1, std::memory_order_relaxed);
  }
  return true;
}

template <WeightPolicy WP>
std::uint64_t TpEstimatorT<WP>::WalksPerLength(std::uint32_t ell) const {
  if (ell == 0) return 0;
  const double l = static_cast<double>(ell);
  const double raw = 40.0 * l * l * std::log(8.0 * l / options_.delta) /
                     (options_.epsilon * options_.epsilon);
  return static_cast<std::uint64_t>(
      std::ceil(std::max(raw * options_.tp_scale, 1.0)));
}

template <WeightPolicy WP>
void TpEstimatorT<WP>::ResetHistScratch() {
  for (const NodeId v : hist_touched_) hist_count_[v] = 0;
  hist_touched_.clear();
}

template <WeightPolicy WP>
void TpEstimatorT<WP>::SimulateLength(NodeId node, std::uint32_t i,
                                      std::uint64_t eta, Rng& rng,
                                      SessionPopulation* record) {
  ResetHistScratch();
  for (std::uint64_t k = 0; k < eta; ++k) {
    NodeId end;
    if (record != nullptr) {
      // Unrolled WalkEndpoint (same Step sequence, so the RNG stream —
      // and every count — is bit-identical) that also records each node
      // stepped FROM into the population's visit filter. The final
      // endpoint is not recorded: its row never influenced a step.
      NodeId cur = node;
      for (std::uint32_t step = 0; step < i; ++step) {
        record->visits.Add(cur);
        cur = walker_.Step(cur, rng);
      }
      end = cur;
    } else {
      end = walker_.WalkEndpoint(node, i, rng);
    }
    if (hist_count_[end] == 0) hist_touched_.push_back(end);
    ++hist_count_[end];
  }
  if (record != nullptr) {
    auto& row = record->hist.emplace_back();
    row.reserve(hist_touched_.size());
    // First-visit order: deterministic in the walk stream, no sort.
    for (const NodeId v : hist_touched_) row.emplace_back(v, hist_count_[v]);
  }
}

template <WeightPolicy WP>
void TpEstimatorT<WP>::SplatRow(
    const std::vector<std::pair<NodeId, std::uint32_t>>& row) {
  ResetHistScratch();
  for (const auto& [endpoint, count] : row) {
    hist_count_[endpoint] = count;
    hist_touched_.push_back(endpoint);
  }
}

template <WeightPolicy WP>
void TpEstimatorT<WP>::EstimateKeyGroup(NodeId key,
                                        std::span<const QueryPair> queries,
                                        std::span<QueryStats> stats) {
  if (session_ != nullptr) {
    EstimateKeyGroupSession(key, queries, stats);
  } else {
    EstimateKeyGroupDirect(key, queries, stats);
  }
}

// The original (session-less) hot loop: endpoint hits are counted with
// per-node chains during the walk pass — no histogram maintenance on the
// per-walk path. `key` may be either endpoint of each query; per-length
// terms accumulate in canonical (min, max) order so the value does not
// depend on which.
template <WeightPolicy WP>
void TpEstimatorT<WP>::EstimateKeyGroupDirect(
    NodeId key, std::span<const QueryPair> queries,
    std::span<QueryStats> stats) {
  const NodeId n = graph_->NumNodes();
  GEER_CHECK(key < n);
  const std::uint32_t ell =
      PengEll(options_.epsilon, lambda_, options_.max_ell);
  const bool truncated =
      EllWasTruncated(options_.epsilon, lambda_, 1, 1, options_.max_ell,
                      /*use_peng=*/true);
  const std::uint64_t eta = WalksPerLength(ell);
  const double inv_eta = 1.0 / static_cast<double>(eta);
  const double inv_wk = 1.0 / WP::NodeWeight(*graph_, key);
  const std::size_t m = queries.size();

  // Per-query live state; the i = 0 term of Eq. (4) seeds the estimate.
  struct QueryState {
    bool live = false;
    bool key_is_min = false;
    NodeId other = 0;
    double inv_wo = 0.0;
    double estimate = 0.0;
    Rng rng_o{0};
  };
  std::vector<QueryState> state(m);
  if (target_head_.size() != n) target_head_.assign(n, 0);
  target_next_.assign(m, 0);
  target_touched_.clear();
  std::size_t first_live = m;
  for (std::size_t j = 0; j < m; ++j) {
    const QueryPair& q = queries[j];
    GEER_CHECK(q.s < n);
    GEER_CHECK(q.t < n);
    GEER_CHECK(q.s == key || q.t == key);
    stats[j] = QueryStats{};
    if (q.s == q.t) continue;  // r(v, v) = 0, zero stats like serial
    QueryState& st = state[j];
    st.live = true;
    st.other = q.s == key ? q.t : q.s;
    st.key_is_min = key < st.other;
    st.inv_wo = 1.0 / WP::NodeWeight(*graph_, st.other);
    // i = 0 seed 1/w(u) + 1/w(v): FP addition is commutative bitwise, so
    // no canonical branch is needed here.
    st.estimate = inv_wk + st.inv_wo;
    // The other side keeps the same per-node stream law as the shared
    // side, so any query elsewhere in the batch touching this node reuses
    // (or recomputes) the identical walks.
    st.rng_o = Rng(MixSeed(MixSeed(options_.seed, kTpStreamTag), st.other));
    stats[j].ell = ell;
    stats[j].truncated = truncated;
    // Chain query j under its other endpoint for the shared counting pass.
    target_next_[j] = target_head_[st.other];
    target_head_[st.other] = static_cast<std::uint32_t>(j) + 1;
    target_touched_.push_back(st.other);
    if (first_live == m) first_live = j;
  }
  if (first_live == m) return;  // every query was s == t

  Rng rng_k(MixSeed(MixSeed(options_.seed, kTpStreamTag), key));
  QueryStats shared;  // key-side cost, charged to the first live query
  std::vector<std::uint64_t> count_ko(m, 0);

  for (std::uint32_t i = 1; i <= ell; ++i) {
    // Key side once for the whole group: count walks ending at the key
    // and, through the chains, at every live query's other endpoint.
    std::uint64_t count_kk = 0;
    std::fill(count_ko.begin(), count_ko.end(), 0);
    for (std::uint64_t k = 0; k < eta; ++k) {
      const NodeId end = walker_.WalkEndpoint(key, i, rng_k);
      if (end == key) ++count_kk;
      for (std::uint32_t idx = target_head_[end]; idx != 0;
           idx = target_next_[idx - 1]) {
        ++count_ko[idx - 1];
      }
    }
    shared.walks += eta;
    shared.walk_steps += eta * i;

    // Other sides per query.
    for (std::size_t j = 0; j < m; ++j) {
      QueryState& st = state[j];
      if (!st.live) continue;
      std::uint64_t count_oo = 0;
      std::uint64_t count_ok = 0;
      for (std::uint64_t k = 0; k < eta; ++k) {
        const NodeId end = walker_.WalkEndpoint(st.other, i, st.rng_o);
        if (end == st.other) ++count_oo;
        if (end == key) ++count_ok;
      }
      stats[j].walks += eta;
      stats[j].walk_steps += eta * i;
      // Eq. (4) term for length i with the empirical probabilities, in
      // canonical (u, v) = (min, max) accumulation order — the branch is
      // what makes Estimate(s, t) ≡ Estimate(t, s) bitwise.
      if (st.key_is_min) {
        st.estimate += (static_cast<double>(count_kk) * inv_wk +
                        static_cast<double>(count_oo) * st.inv_wo -
                        static_cast<double>(count_ko[j]) * st.inv_wo -
                        static_cast<double>(count_ok) * inv_wk) *
                       inv_eta;
      } else {
        st.estimate += (static_cast<double>(count_oo) * st.inv_wo +
                        static_cast<double>(count_kk) * inv_wk -
                        static_cast<double>(count_ok) * inv_wk -
                        static_cast<double>(count_ko[j]) * st.inv_wo) *
                       inv_eta;
      }
    }
  }

  for (std::size_t j = 0; j < m; ++j) {
    if (state[j].live) stats[j].value = state[j].estimate;
  }
  stats[first_live].walks += shared.walks;
  stats[first_live].walk_steps += shared.walk_steps;
  for (const NodeId o : target_touched_) target_head_[o] = 0;
}

// The session path: counts come from the dense histogram scratch, fed
// either by a fresh simulation (recorded into the session) or by
// splatting a retained population's row. Bit-identical to the direct
// path — the counts are the same integers either way.
template <WeightPolicy WP>
void TpEstimatorT<WP>::EstimateKeyGroupSession(
    NodeId key, std::span<const QueryPair> queries,
    std::span<QueryStats> stats) {
  const NodeId n = graph_->NumNodes();
  GEER_CHECK(key < n);
  const std::uint32_t ell =
      PengEll(options_.epsilon, lambda_, options_.max_ell);
  const bool truncated =
      EllWasTruncated(options_.epsilon, lambda_, 1, 1, options_.max_ell,
                      /*use_peng=*/true);
  const std::uint64_t eta = WalksPerLength(ell);
  const double inv_eta = 1.0 / static_cast<double>(eta);
  const double inv_wk = 1.0 / WP::NodeWeight(*graph_, key);
  const std::size_t m = queries.size();
  if (hist_count_.size() != n) {
    hist_count_.assign(n, 0);
    hist_touched_.clear();
  }

  // Per-query live state; the i = 0 term of Eq. (4) seeds the estimate.
  struct QueryState {
    bool live = false;
    bool key_is_min = false;
    NodeId other = 0;
    double inv_wo = 0.0;
    double estimate = 0.0;
    Rng rng_o{0};
    const SessionPopulation* o_pop = nullptr;  // session hit, other side
    SessionPopulation o_rec;                   // session recorder (miss)
    bool record_o = false;
  };
  std::vector<QueryState> state(m);
  std::size_t first_live = m;
  for (std::size_t j = 0; j < m; ++j) {
    const QueryPair& q = queries[j];
    GEER_CHECK(q.s < n);
    GEER_CHECK(q.t < n);
    GEER_CHECK(q.s == key || q.t == key);
    stats[j] = QueryStats{};
    if (q.s == q.t) continue;  // r(v, v) = 0, zero stats like serial
    QueryState& st = state[j];
    st.live = true;
    st.other = q.s == key ? q.t : q.s;
    st.key_is_min = key < st.other;
    st.inv_wo = 1.0 / WP::NodeWeight(*graph_, st.other);
    // i = 0 seed 1/w(u) + 1/w(v): FP addition is commutative bitwise, so
    // no canonical branch is needed here.
    st.estimate = inv_wk + st.inv_wo;
    // One node population law for both roles: a cached population serves
    // as the shared key side of one group and the other side of another,
    // bit-identical to the serial simulation either way.
    st.rng_o = Rng(MixSeed(MixSeed(options_.seed, kTpStreamTag), st.other));
    stats[j].ell = ell;
    stats[j].truncated = truncated;
    st.o_pop = session_->Find(st.other);
    if (st.o_pop != nullptr) {
      GEER_DCHECK(st.o_pop->ell == ell && st.o_pop->eta == eta);
    } else {
      st.record_o = true;
      st.o_rec.node = st.other;
      st.o_rec.hist.reserve(ell);
      st.o_rec.visits = VisitFilter(n);
    }
    if (first_live == m) first_live = j;
  }
  if (first_live == m) return;  // every query was s == t

  const SessionPopulation* key_pop = session_->Find(key);
  if (key_pop != nullptr) {
    GEER_DCHECK(key_pop->ell == ell && key_pop->eta == eta);
  }
  SessionPopulation key_rec;
  const bool record_key = key_pop == nullptr;
  if (record_key) {
    key_rec.node = key;
    key_rec.hist.reserve(ell);
    key_rec.visits = VisitFilter(n);
  }

  Rng rng_k(MixSeed(MixSeed(options_.seed, kTpStreamTag), key));
  QueryStats shared;  // key-side cost, charged to the first live query
  std::vector<std::uint64_t> count_ko(m, 0);

  for (std::uint32_t i = 1; i <= ell; ++i) {
    // Key side once for the whole group: the endpoint histogram of the η
    // length-i walks (simulated + recorded, or splatted from the
    // retained population) answers p̂_i(·, key) for the key itself and
    // every live other endpoint. The dense scratch is reused by the
    // other sides below, so every key-side count is extracted before
    // they run.
    if (key_pop == nullptr) {
      SimulateLength(key, i, eta, rng_k, record_key ? &key_rec : nullptr);
      shared.walks += eta;
      shared.walk_steps += eta * i;
    } else {
      SplatRow(key_pop->hist[i - 1]);
    }
    const std::uint64_t count_kk = hist_count_[key];
    for (std::size_t j = 0; j < m; ++j) {
      if (state[j].live) count_ko[j] = hist_count_[state[j].other];
    }

    // Other sides per query: a retained population answers its two
    // lookups by row scan; a miss simulates (and records).
    for (std::size_t j = 0; j < m; ++j) {
      QueryState& st = state[j];
      if (!st.live) continue;
      std::uint64_t count_oo = 0;
      std::uint64_t count_ok = 0;
      if (st.o_pop != nullptr) {
        count_oo = st.o_pop->Count(i, st.other);
        count_ok = st.o_pop->Count(i, key);
      } else {
        SimulateLength(st.other, i, eta, st.rng_o,
                       st.record_o ? &st.o_rec : nullptr);
        stats[j].walks += eta;
        stats[j].walk_steps += eta * i;
        count_oo = hist_count_[st.other];
        count_ok = hist_count_[key];
      }
      // Eq. (4) term for length i with the empirical probabilities, in
      // canonical (u, v) = (min, max) accumulation order — the branch is
      // what makes Estimate(s, t) ≡ Estimate(t, s) bitwise.
      if (st.key_is_min) {
        st.estimate += (static_cast<double>(count_kk) * inv_wk +
                        static_cast<double>(count_oo) * st.inv_wo -
                        static_cast<double>(count_ko[j]) * st.inv_wo -
                        static_cast<double>(count_ok) * inv_wk) *
                       inv_eta;
      } else {
        st.estimate += (static_cast<double>(count_oo) * st.inv_wo +
                        static_cast<double>(count_kk) * inv_wk -
                        static_cast<double>(count_ok) * inv_wk -
                        static_cast<double>(count_ko[j]) * st.inv_wo) *
                       inv_eta;
      }
    }
  }

  for (std::size_t j = 0; j < m; ++j) {
    if (state[j].live) stats[j].value = state[j].estimate;
  }
  stats[first_live].walks += shared.walks;
  stats[first_live].walk_steps += shared.walk_steps;

  // Retain the populations built this group; landmark nodes are pinned
  // on insert (the lazy re-warm after an epoch flush).
  if (record_key) {
    FinalizePopulation(ell, eta, &key_rec);
    session_->Insert(std::move(key_rec), IsLandmark(key));
  }
  for (std::size_t j = 0; j < m; ++j) {
    if (state[j].live && state[j].record_o) {
      FinalizePopulation(ell, eta, &state[j].o_rec);
      session_->Insert(std::move(state[j].o_rec),
                       IsLandmark(state[j].other));
    }
  }
}

template <WeightPolicy WP>
std::size_t TpEstimatorT<WP>::WarmLandmarks(
    std::span<const NodeId> landmarks) {
  if (session_ == nullptr) EnableSessionCache();
  const NodeId n = graph_->NumNodes();
  is_landmark_.assign(n, 0);
  for (const NodeId lm : landmarks) {
    GEER_CHECK(lm < n);
    is_landmark_[lm] = 1;
  }
  const std::uint32_t ell =
      PengEll(options_.epsilon, lambda_, options_.max_ell);
  const std::uint64_t eta = WalksPerLength(ell);
  if (hist_count_.size() != n) {
    hist_count_.assign(n, 0);
    hist_touched_.clear();
  }
  for (const NodeId lm : landmarks) {
    // Find counts a hit or a miss — warming is part of the cache trace.
    if (session_->Find(lm) != nullptr) {
      session_->Pin(lm);
      continue;
    }
    SessionPopulation rec;
    rec.node = lm;
    rec.hist.reserve(ell);
    rec.visits = VisitFilter(n);
    Rng rng(MixSeed(MixSeed(options_.seed, kTpStreamTag), lm));
    for (std::uint32_t i = 1; i <= ell; ++i) {
      SimulateLength(lm, i, eta, rng, &rec);
    }
    FinalizePopulation(ell, eta, &rec);
    session_->Insert(std::move(rec), /*pinned=*/true);
  }
  return landmarks.size();
}

template <WeightPolicy WP>
QueryStats TpEstimatorT<WP>::EstimateWithStats(NodeId s, NodeId t) {
  const QueryPair query{s, t};
  QueryStats stats;
  EstimateKeyGroup(s, std::span<const QueryPair>(&query, 1),
                   std::span<QueryStats>(&stats, 1));
  return stats;
}

template <WeightPolicy WP>
std::size_t TpEstimatorT<WP>::EstimateBatch(
    std::span<const QueryPair> queries, std::span<QueryStats> stats,
    const BatchContext& context) {
  // Groups are answered in lockstep, so a run is all-or-nothing — the
  // deadline's cut granularity is one shared-endpoint group.
  return EstimateByEndpointRuns(
      queries, stats, context,
      [this, &context](NodeId key, std::span<const QueryPair> run_queries,
                       std::span<QueryStats> run_stats) {
        EstimateKeyGroup(key, run_queries, run_stats);
        context.ReportAnswered(run_queries.size());
        return run_queries.size();
      });
}

template class TpSessionCacheT<UnitWeight>;
template class TpSessionCacheT<EdgeWeight>;
template class TpEstimatorT<UnitWeight>;
template class TpEstimatorT<EdgeWeight>;

}  // namespace geer
