#include "core/ell.h"

#include <gtest/gtest.h>

#include <cmath>

namespace geer {
namespace {

TEST(EllTest, PengMatchesFormula) {
  const double eps = 0.1;
  const double lambda = 0.9;
  const double raw = std::log(4.0 / (eps * (1.0 - lambda))) /
                         std::log(1.0 / lambda) -
                     1.0;
  EXPECT_EQ(PengEll(eps, lambda),
            static_cast<std::uint32_t>(std::ceil(raw)));
}

TEST(EllTest, RefinedMatchesFormula) {
  const double eps = 0.1;
  const double lambda = 0.9;
  const std::uint64_t ds = 10;
  const std::uint64_t dt = 40;
  const double numer = 2.0 / ds + 2.0 / dt;
  const double raw = std::log(numer / (eps * (1.0 - lambda))) /
                         std::log(1.0 / lambda) -
                     1.0;
  EXPECT_EQ(RefinedEll(eps, lambda, ds, dt),
            static_cast<std::uint32_t>(std::ceil(raw)));
}

TEST(EllTest, RefinedNeverExceedsPengForDegreesAtLeastOne) {
  // 2/ds + 2/dt ≤ 4 always, so the refined ℓ ≤ Peng ℓ.
  for (double eps : {0.5, 0.1, 0.02}) {
    for (double lambda : {0.5, 0.9, 0.99}) {
      for (std::uint64_t d : {1ull, 2ull, 10ull, 100ull}) {
        EXPECT_LE(RefinedEll(eps, lambda, d, d), PengEll(eps, lambda))
            << eps << " " << lambda << " " << d;
      }
    }
  }
}

TEST(EllTest, RefinedShrinksWithDegree) {
  // The paper's key point: high-degree pairs get much shorter walks.
  const std::uint32_t low = RefinedEll(0.1, 0.95, 2, 2);
  const std::uint32_t high = RefinedEll(0.1, 0.95, 200, 200);
  EXPECT_LT(high, low);
  EXPECT_GE(low - high, 30u);  // log(100)/log(1/0.95) ≈ 90 steps saved
}

TEST(EllTest, GrowsAsEpsilonShrinks) {
  EXPECT_LT(RefinedEll(0.5, 0.9, 4, 4), RefinedEll(0.01, 0.9, 4, 4));
  EXPECT_LT(PengEll(0.5, 0.9), PengEll(0.01, 0.9));
}

TEST(EllTest, GrowsAsLambdaApproachesOne) {
  EXPECT_LT(PengEll(0.1, 0.5), PengEll(0.1, 0.99));
}

TEST(EllTest, LambdaZeroGivesZero) {
  EXPECT_EQ(PengEll(0.1, 0.0), 0u);
  EXPECT_EQ(RefinedEll(0.1, 0.0, 5, 5), 0u);
}

TEST(EllTest, HugeDegreesGiveZero) {
  // When 2/ds + 2/dt ≪ ε(1−λ), even ℓ = 0 meets the truncation bound.
  EXPECT_EQ(RefinedEll(0.5, 0.5, 1000000, 1000000), 0u);
}

TEST(EllTest, CapApplies) {
  // λ extremely close to 1 ⇒ astronomical ℓ; must clamp to the cap.
  EXPECT_EQ(PengEll(0.01, 1.0 - 1e-9, 1000), 1000u);
  EXPECT_TRUE(EllWasTruncated(0.01, 1.0 - 1e-9, 2, 2, 1000, true));
  EXPECT_TRUE(EllWasTruncated(0.01, 1.0 - 1e-9, 2, 2, 1000, false));
}

TEST(EllTest, NoTruncationForModerateLambda) {
  EXPECT_FALSE(EllWasTruncated(0.1, 0.9, 4, 4, 200000, false));
  EXPECT_FALSE(EllWasTruncated(0.1, 0.9, 4, 4, 200000, true));
}

TEST(EllTest, TruncationGuaranteeHolds) {
  // Theorem 3.1's bound: λ^{ℓ+1}/(1−λ) · (1/ds + 1/dt) ≤ ε/2.
  for (double eps : {0.5, 0.1, 0.02}) {
    for (double lambda : {0.3, 0.8, 0.97}) {
      for (std::uint64_t d : {1ull, 3ull, 50ull}) {
        const std::uint32_t ell = RefinedEll(eps, lambda, d, d);
        const double tail = std::pow(lambda, ell + 1.0) / (1.0 - lambda) *
                            (2.0 / static_cast<double>(d));
        EXPECT_LE(tail, eps / 2.0 + 1e-12)
            << "eps=" << eps << " lambda=" << lambda << " d=" << d;
      }
    }
  }
}

TEST(EllTest, PengTruncationGuaranteeHolds) {
  // Peng et al.'s bound uses the numerator 4: λ^{ℓ+1}/(1−λ)·4 ≤ … the
  // paper states |r − r_ℓ| ≤ ε/2 via 4λ^{ℓ+1}/(1−λ) ≤ ε... check ≤ ε/2
  // consistent with EllFromNumerator's contract numerator·λ^{ℓ+1}/(1−λ)≤ε.
  for (double eps : {0.5, 0.1}) {
    for (double lambda : {0.5, 0.9}) {
      const std::uint32_t ell = PengEll(eps, lambda);
      const double tail = 4.0 * std::pow(lambda, ell + 1.0) / (1.0 - lambda);
      EXPECT_LE(tail, eps + 1e-12);
    }
  }
}


TEST(EllWeightedTest, IntegerStrengthsMatchUnweightedRefined) {
  // With integral strengths equal to the degrees, the weighted bound is
  // the same formula evaluated at the same numbers.
  for (double eps : {0.5, 0.1, 0.02}) {
    for (double lambda : {0.5, 0.9, 0.99}) {
      for (std::uint64_t d : {1ull, 3ull, 17ull, 250ull}) {
        EXPECT_EQ(RefinedEllWeighted(eps, lambda, static_cast<double>(d),
                                     static_cast<double>(d)),
                  RefinedEll(eps, lambda, d, d));
      }
    }
  }
}

TEST(EllWeightedTest, ShrinksWithStrength) {
  // Heavier endpoints need shorter walks, continuously in the strengths.
  const double eps = 0.1;
  const double lambda = 0.9;
  std::uint32_t prev = ~0u;
  for (double w : {0.25, 1.0, 4.0, 16.0, 64.0}) {
    const std::uint32_t ell = RefinedEllWeighted(eps, lambda, w, w);
    EXPECT_LE(ell, prev);
    prev = ell;
  }
}

TEST(EllWeightedTest, FractionalStrengthsCanExceedPeng) {
  // Unlike degrees (>= 1), strengths below 1/2 push the numerator past 4:
  // the weighted refined bound may exceed Peng's generic one. This is
  // correct: a feather-weight endpoint genuinely mixes slower in the
  // weighted truncation analysis.
  const double eps = 0.1;
  const double lambda = 0.9;
  EXPECT_GT(RefinedEllWeighted(eps, lambda, 0.05, 0.05),
            PengEll(eps, lambda));
}

TEST(EllWeightedTest, TinyEpsilonStillFinite) {
  const std::uint32_t ell = RefinedEllWeighted(1e-6, 0.999, 0.5, 2.0);
  EXPECT_GT(ell, 0u);
  EXPECT_LE(ell, 200000u);
}

}  // namespace
}  // namespace geer
