// Name-based estimator factory, so the benchmark harness and examples can
// select algorithms from the command line.

#ifndef GEER_CORE_REGISTRY_H_
#define GEER_CORE_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "core/estimator.h"
#include "core/options.h"
#include "graph/graph.h"

namespace geer {

/// Creates the estimator registered under `name`. Known names:
/// "GEER", "AMC", "SMM", "SMM-PengEll", "TP", "TPC", "MC", "MC2", "HAY",
/// "RP", "EXACT", "CG" (case-sensitive). Returns nullptr for unknown
/// names. Construction may abort if the algorithm's preconditions fail
/// (e.g. EXACT on a too-large graph) — pre-check with EstimatorFeasible.
std::unique_ptr<ErEstimator> CreateEstimator(const std::string& name,
                                             const Graph& graph,
                                             const ErOptions& options);

/// Estimators hold a pointer to `graph` for their whole lifetime, so a
/// temporary would dangle past the call — rejected at compile time.
std::unique_ptr<ErEstimator> CreateEstimator(const std::string& name,
                                             Graph&& graph,
                                             const ErOptions& options) = delete;

/// All registered names, in the paper's presentation order.
std::vector<std::string> EstimatorNames();

/// True iff `name` can be constructed for this graph/options without
/// violating resource preconditions (EXACT's dense cap, RP's sketch
/// memory budget).
bool EstimatorFeasible(const std::string& name, const Graph& graph,
                       const ErOptions& options);

}  // namespace geer

#endif  // GEER_CORE_REGISTRY_H_
