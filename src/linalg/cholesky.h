// Dense Cholesky factorization for symmetric positive-definite systems.
// Used by the EXACT baseline: r(s,t) = (e_s−e_t)ᵀ M⁻¹ (e_s−e_t) with
// M = L + (1/n)𝟙𝟙ᵀ, which is SPD for connected graphs.

#ifndef GEER_LINALG_CHOLESKY_H_
#define GEER_LINALG_CHOLESKY_H_

#include <optional>

#include "linalg/dense.h"

namespace geer {

/// Lower-triangular Cholesky factor of an SPD matrix; solves M x = b.
class CholeskyFactor {
 public:
  /// Factorizes `m` (must be symmetric). Returns std::nullopt if a
  /// non-positive pivot is met (matrix not positive definite).
  static std::optional<CholeskyFactor> Factorize(const Matrix& m);

  /// Solves M x = b via forward + backward substitution.
  Vector Solve(const Vector& b) const;

  /// Rank-1 update: replaces the factor of M with the factor of M + xxᵀ
  /// in O((n − first_nonzero(x))·n) hyperbolic-rotation passes — the
  /// incremental-epoch primitive (an edge-weight increase δ on {u,v} is
  /// x = √δ·(e_u − e_v), so the pass starts at min(u,v)). Always
  /// succeeds: M + xxᵀ is SPD whenever M is.
  void RankOneUpdate(const Vector& x);

  /// Rank-1 downdate: factor of M − xxᵀ. Returns false (leaving the
  /// factor in a partially-modified, UNUSABLE state — callers must then
  /// refactorize from scratch) when M − xxᵀ is not numerically positive
  /// definite.
  bool RankOneDowndate(const Vector& x);

  std::size_t Dim() const { return l_.Rows(); }

 private:
  explicit CholeskyFactor(Matrix l) : l_(std::move(l)) {}
  Matrix l_;
};

}  // namespace geer

#endif  // GEER_LINALG_CHOLESKY_H_
