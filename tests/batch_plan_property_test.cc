// Property suite for the batch-plan surface (core/estimator.h): on
// RANDOMIZED query batches — both weight modes, duplicate endpoints,
// s == t queries — every plan (Trivial / GroupBySource /
// GroupByEndpoint) must cover each query exactly once, the
// group-by-either-endpoint plan must never split a shareable pair
// (queries connected through common endpoints land in one group, in
// original order, groups ordered by first appearance), and the sharing
// estimators must stay bit-identical to the serial loop under random
// shuffles at 1, 2 and 8 threads. Randomness comes from the library Rng,
// so every "random" batch is reproducible from its printed seed.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <numeric>
#include <unordered_map>
#include <vector>

#include "core/batch_engine.h"
#include "core/registry.h"
#include "graph/generators.h"
#include "graph/weighted_generators.h"
#include "linalg/spectral.h"
#include "rw/rng.h"
#include "test_util.h"

namespace geer {
namespace {

ErOptions TestOptions() {
  ErOptions opt;
  opt.epsilon = 0.5;
  opt.delta = 0.1;
  opt.seed = 20260809;
  opt.tp_scale = 0.01;   // scaled constants keep the suite fast; this
  opt.tpc_scale = 0.01;  // suite checks plan structure, not accuracy
  return opt;
}

// A randomized batch over n nodes: uniform pairs with deliberate
// repetition pressure (small node pool for 1/3 of the draws), duplicate
// whole queries, and occasional s == t.
std::vector<QueryPair> RandomQueries(NodeId n, std::size_t count,
                                     std::uint64_t seed) {
  Rng rng(MixSeed(seed, 0x706c616eULL));  // "plan"
  std::vector<QueryPair> queries;
  queries.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const NodeId pool = (rng.NextBounded(3) == 0) ? std::min<NodeId>(n, 5)
                                                  : n;
    QueryPair q;
    q.s = static_cast<NodeId>(rng.NextBounded(pool));
    if (rng.NextBounded(8) == 0) {
      q.t = q.s;  // s == t: a legal (zero-valued) query the plan carries
    } else {
      q.t = static_cast<NodeId>(rng.NextBounded(pool));
    }
    if (!queries.empty() && rng.NextBounded(5) == 0) {
      q = queries[rng.NextBounded(queries.size())];  // exact duplicate
    }
    queries.push_back(q);
  }
  return queries;
}

// Coverage invariant every plan must satisfy: `order` is a permutation
// of [0, n) and the group offsets tile it exactly (nonempty groups,
// front 0, back n).
void ExpectCoversEachQueryExactlyOnce(const BatchPlan& plan,
                                      std::size_t num_queries,
                                      const char* label) {
  ASSERT_EQ(plan.order.size(), num_queries) << label;
  ASSERT_GE(plan.group_offsets.size(), 1u) << label;
  EXPECT_EQ(plan.group_offsets.front(), 0u) << label;
  EXPECT_EQ(plan.group_offsets.back(), num_queries) << label;
  for (std::size_t g = 1; g < plan.group_offsets.size(); ++g) {
    EXPECT_LT(plan.group_offsets[g - 1], plan.group_offsets[g])
        << label << " empty group " << g;
  }
  std::vector<int> seen(num_queries, 0);
  for (const std::uint32_t idx : plan.order) {
    ASSERT_LT(idx, num_queries) << label;
    seen[idx]++;
  }
  for (std::size_t i = 0; i < num_queries; ++i) {
    EXPECT_EQ(seen[i], 1) << label << " query " << i;
  }
}

// Union-find over query indices via shared endpoints — the ground truth
// for what "shareable" means in the endpoint plan's contract.
struct UnionFind {
  std::vector<std::size_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), std::size_t{0});
  }
  std::size_t Find(std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void Union(std::size_t a, std::size_t b) {
    a = Find(a);
    b = Find(b);
    if (a != b) parent[std::max(a, b)] = std::min(a, b);
  }
};

std::vector<std::size_t> EndpointComponents(
    std::span<const QueryPair> queries) {
  UnionFind uf(queries.size());
  std::unordered_map<NodeId, std::size_t> first_with_endpoint;
  for (std::size_t i = 0; i < queries.size(); ++i) {
    for (const NodeId node : {queries[i].s, queries[i].t}) {
      auto [it, inserted] = first_with_endpoint.emplace(node, i);
      if (!inserted) uf.Union(it->second, i);
    }
  }
  std::vector<std::size_t> component(queries.size());
  for (std::size_t i = 0; i < queries.size(); ++i) component[i] = uf.Find(i);
  return component;
}

TEST(BatchPlanPropertyTest, EveryPlanCoversEachQueryExactlyOnce) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u, 5u}) {
    const std::vector<QueryPair> queries = RandomQueries(30, 40, seed);
    ExpectCoversEachQueryExactlyOnce(BatchPlan::Trivial(queries.size()),
                                     queries.size(), "Trivial");
    ExpectCoversEachQueryExactlyOnce(BatchPlan::GroupBySource(queries),
                                     queries.size(), "GroupBySource");
    ExpectCoversEachQueryExactlyOnce(BatchPlan::GroupByEndpoint(queries),
                                     queries.size(), "GroupByEndpoint");
  }
  // Degenerate batches.
  ExpectCoversEachQueryExactlyOnce(BatchPlan::Trivial(0), 0, "empty");
  const std::vector<QueryPair> one = {{4, 4}};
  ExpectCoversEachQueryExactlyOnce(BatchPlan::GroupByEndpoint(one), 1,
                                   "single s==t");
}

TEST(BatchPlanPropertyTest, GroupByEndpointNeverSplitsShareablePairs) {
  for (const std::uint64_t seed : {11u, 12u, 13u, 14u, 15u, 16u}) {
    const std::vector<QueryPair> queries = RandomQueries(24, 48, seed);
    const std::vector<std::size_t> component = EndpointComponents(queries);
    const BatchPlan plan = BatchPlan::GroupByEndpoint(queries);
    ExpectCoversEachQueryExactlyOnce(plan, queries.size(), "endpoint");
    // Group of each query under the plan.
    std::vector<std::size_t> group_of(queries.size());
    for (std::size_t g = 0; g < plan.NumGroups(); ++g) {
      for (std::uint32_t p = plan.group_offsets[g];
           p < plan.group_offsets[g + 1]; ++p) {
        group_of[plan.order[p]] = g;
      }
    }
    for (std::size_t i = 0; i < queries.size(); ++i) {
      for (std::size_t j = i + 1; j < queries.size(); ++j) {
        const bool shareable = component[i] == component[j];
        EXPECT_EQ(group_of[i] == group_of[j], shareable)
            << "seed " << seed << " queries " << i << " ("
            << queries[i].s << "," << queries[i].t << ") and " << j << " ("
            << queries[j].s << "," << queries[j].t << ")";
      }
    }
  }
}

TEST(BatchPlanPropertyTest, GroupsKeepOriginalOrderAndFirstAppearance) {
  for (const std::uint64_t seed : {21u, 22u, 23u}) {
    const std::vector<QueryPair> queries = RandomQueries(24, 40, seed);
    for (const bool by_endpoint : {false, true}) {
      const BatchPlan plan = by_endpoint
                                 ? BatchPlan::GroupByEndpoint(queries)
                                 : BatchPlan::GroupBySource(queries);
      std::uint32_t prev_group_first = 0;
      for (std::size_t g = 0; g < plan.NumGroups(); ++g) {
        // Within a group: original submission order.
        for (std::uint32_t p = plan.group_offsets[g] + 1;
             p < plan.group_offsets[g + 1]; ++p) {
          EXPECT_LT(plan.order[p - 1], plan.order[p])
              << "seed " << seed << " group " << g;
        }
        // Across groups: ordered by first appearance.
        const std::uint32_t group_first = plan.order[plan.group_offsets[g]];
        if (g > 0) {
          EXPECT_LT(prev_group_first, group_first)
              << "seed " << seed << " group " << g;
        }
        prev_group_first = group_first;
      }
    }
  }
}

// GroupByEndpoint is strictly coarser than GroupBySource: merging some
// same-source groups through shared targets can only reduce the group
// count, never increase it.
TEST(BatchPlanPropertyTest, EndpointPlanIsCoarserThanSourcePlan) {
  for (const std::uint64_t seed : {31u, 32u, 33u, 34u}) {
    const std::vector<QueryPair> queries = RandomQueries(30, 40, seed);
    EXPECT_LE(BatchPlan::GroupByEndpoint(queries).NumGroups(),
              BatchPlan::GroupBySource(queries).NumGroups())
        << "seed " << seed;
  }
}

// The load-bearing end: randomized batches through the real engine stay
// bit-identical to the serial loop for every sharing estimator, at 1, 2
// and 8 threads, under a random shuffle of the same batch — in both
// weight modes. (The curated-batch analogue lives in
// batch_determinism_test; this one drives the plans with adversarially
// random shapes.)
template <typename Factory>
void CheckRandomBatchesBitIdentical(const std::string& name,
                                    const Factory& make, NodeId num_nodes,
                                    std::uint64_t seed) {
  const std::vector<QueryPair> queries = RandomQueries(num_nodes, 32, seed);
  auto serial = make();
  ASSERT_NE(serial, nullptr) << name;
  std::vector<double> expected(queries.size(),
                               std::numeric_limits<double>::quiet_NaN());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (!serial->SupportsQuery(queries[i].s, queries[i].t)) continue;
    expected[i] = serial->Estimate(queries[i].s, queries[i].t);
  }

  for (const int threads : {1, 2, 8}) {
    auto estimator = make();
    std::vector<QueryStats> stats(queries.size());
    BatchOptions options;
    options.threads = threads;
    const BatchReport report =
        RunQueryBatch(*estimator, queries, stats, options);
    EXPECT_TRUE(report.completed) << name << " threads=" << threads;
    for (std::size_t i = 0; i < queries.size(); ++i) {
      if (std::isnan(expected[i])) continue;
      EXPECT_EQ(stats[i].value, expected[i])
          << name << " seed=" << seed << " threads=" << threads
          << " query #" << i << " (" << queries[i].s << ","
          << queries[i].t << ")";
    }
  }

  // Random shuffle of the same batch: per-query answers must not move.
  std::vector<std::size_t> perm(queries.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  Rng rng(MixSeed(seed, 0x73687566ULL));
  for (std::size_t i = perm.size(); i > 1; --i) {
    std::swap(perm[i - 1], perm[rng.NextBounded(i)]);
  }
  std::vector<QueryPair> shuffled(queries.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    shuffled[i] = queries[perm[i]];
  }
  auto estimator = make();
  std::vector<QueryStats> stats(shuffled.size());
  BatchOptions options;
  options.threads = 2;
  RunQueryBatch(*estimator, shuffled, stats, options);
  for (std::size_t i = 0; i < perm.size(); ++i) {
    if (std::isnan(expected[perm[i]])) continue;
    EXPECT_EQ(stats[i].value, expected[perm[i]])
        << name << " seed=" << seed << " shuffled query #" << i;
  }
}

TEST(BatchPlanPropertyTest, RandomBatchesUnweightedBitIdentical) {
  const Graph graph = gen::ErdosRenyi(40, 400, 9);
  ErOptions opt = TestOptions();
  opt.lambda = ComputeSpectralBounds(graph).lambda;
  for (const std::string& name : EstimatorNames()) {
    if (!EstimatorSharesBatchWork(name)) continue;
    CheckRandomBatchesBitIdentical(
        name, [&]() { return CreateEstimator(name, graph, opt); },
        graph.NumNodes(), /*seed=*/41);
  }
}

TEST(BatchPlanPropertyTest, RandomBatchesWeightedBitIdentical) {
  const Graph skeleton = gen::ErdosRenyi(40, 400, 9);
  const WeightedGraph graph = gen::WithUniformWeights(skeleton, 0.5, 2.0, 99);
  ErOptions opt = TestOptions();
  opt.lambda = ComputeWeightedSpectralBounds(graph).lambda;
  for (const std::string& name : WeightedEstimatorNames()) {
    if (!EstimatorSharesBatchWork("W-" + name)) continue;
    CheckRandomBatchesBitIdentical(
        "W-" + name,
        [&]() { return CreateWeightedEstimator(name, graph, opt); },
        skeleton.NumNodes(), /*seed=*/42);
  }
}

}  // namespace
}  // namespace geer
