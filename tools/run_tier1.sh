#!/usr/bin/env bash
# Tier-1 verify: configure, build, and run the full ctest suite.
# This is the CI entry point; it exits non-zero as soon as any stage fails.
#
# Usage: tools/run_tier1.sh [build-dir]
#   build-dir   defaults to "build" (relative to the repo root)
#
# Environment:
#   JOBS        parallelism for build and ctest (default: nproc)

set -euo pipefail

REPO_ROOT="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
BUILD_DIR="${1:-build}"
JOBS="${JOBS:-$(nproc)}"

cd "$REPO_ROOT"

echo "== tier-1: configure (${BUILD_DIR}) =="
cmake -B "$BUILD_DIR" -S .

echo "== tier-1: build (-j${JOBS}) =="
cmake --build "$BUILD_DIR" -j "$JOBS"

echo "== tier-1: ctest (-j${JOBS}) =="
# cd instead of `ctest --test-dir`: the latter needs CTest >= 3.20 while
# the build itself accepts CMake 3.16.
(cd "$BUILD_DIR" && ctest --output-on-failure -j "$JOBS")

echo "== tier-1: PASS =="
