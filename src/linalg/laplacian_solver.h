// Jacobi-preconditioned conjugate gradient for graph Laplacian systems
// L_w x = b with b ⊥ 𝟙, generic over the weight policy
// (graph/weight_policy.h): L = D − A for the unit-weight stack,
// L_w = D_w − A_w for the conductance stack. Substrate for the RP
// baseline (Spielman–Srivastava random projection) and the
// high-accuracy ground-truth pipeline in both weight modes —
// r(s,t) = (e_s − e_t)ᵀ L_w† (e_s − e_t) is exactly the equivalent
// resistance of the circuit whose edge conductances are the weights.

#ifndef GEER_LINALG_LAPLACIAN_SOLVER_H_
#define GEER_LINALG_LAPLACIAN_SOLVER_H_

#include <cstdint>
#include <span>

#include "graph/weight_policy.h"
#include "linalg/dense.h"

namespace geer {

/// CG convergence report.
struct CgStats {
  int iterations = 0;
  double residual_norm = 0.0;
  bool converged = false;
};

/// Solves connected-graph Laplacian systems. The Laplacian is singular
/// with kernel span{𝟙}; both b and the iterates are projected onto 𝟙^⊥,
/// making CG well-defined and returning the minimum-norm solution L† b.
template <WeightPolicy WP>
class LaplacianSolverT {
 public:
  using GraphT = typename WP::GraphT;

  struct Options {
    int max_iterations = 10000;
    double tolerance = 1e-10;  ///< relative residual ‖r‖/‖b‖
  };

  explicit LaplacianSolverT(const GraphT& graph)
      : LaplacianSolverT(graph, Options()) {}
  LaplacianSolverT(const GraphT& graph, Options options);
  /// Rebinds `prev`'s state to a new epoch of the same logical graph
  /// (same node count) by copying the Jacobi diagonal and recomputing
  /// only the `touched` rows — O(|touched|) instead of O(n), and
  /// bit-identical to a fresh construction because each diagonal entry
  /// is a pure function of its own row.
  LaplacianSolverT(const GraphT& graph, const LaplacianSolverT& prev,
                   std::span<const NodeId> touched);
  // Stores a pointer to `graph`; a temporary would dangle.
  explicit LaplacianSolverT(GraphT&&) = delete;
  LaplacianSolverT(GraphT&&, Options) = delete;
  LaplacianSolverT(GraphT&&, const LaplacianSolverT&,
                   std::span<const NodeId>) = delete;

  /// Solves L x = b. `b` is projected onto 𝟙^⊥ internally (the component
  /// along 𝟙 is unsolvable and irrelevant to ER queries).
  Vector Solve(const Vector& b, CgStats* stats = nullptr) const;

  /// Effective resistance via one CG solve worth of work:
  /// r(s,t) = (e_s − e_t)ᵀ L† (e_s − e_t) with b = e_s − e_t.
  double EffectiveResistance(NodeId s, NodeId t,
                             CgStats* stats = nullptr) const;

  /// y ← L·x (L = D_w − A_w), dense.
  void ApplyLaplacian(const Vector& x, Vector* y) const;

 private:
  const GraphT* graph_;
  Options options_;
  Vector inv_weight_;  // Jacobi preconditioner diag(D_w)^{-1}
};

/// The two stacks, by their historical names.
using LaplacianSolver = LaplacianSolverT<UnitWeight>;
using WeightedLaplacianSolver = LaplacianSolverT<EdgeWeight>;

extern template class LaplacianSolverT<UnitWeight>;
extern template class LaplacianSolverT<EdgeWeight>;

}  // namespace geer

#endif  // GEER_LINALG_LAPLACIAN_SOLVER_H_
