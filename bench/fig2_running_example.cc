// Fig. 2: the running example. Reproduces the table of #walks reachable
// by deterministic traversal from s and t versus AMC's required sample
// count η*, for ℓ_f ∈ 1..8 at ε = 0.5, δ = 0.1, on the reconstructed
// 11-node toy graph (the paper's exact topology is unspecified; ours
// matches d(s) = 2, d(t) = 7 — see generators.h). The qualitative
// crossover is the point of the figure: traversal work explodes with
// ℓ_f on the high-degree side while η* grows only quadratically.

#include <cstdio>

#include "core/amc.h"
#include "eval/table.h"
#include "graph/generators.h"
#include "stats/bounds.h"
#include "util/format.h"

namespace geer {
namespace {

// Number of distinct length-≤ℓ walks from `source` (the work a
// deterministic traversal enumerates), via the walk-count DP
// w_i(v) = Σ_{u~v} w_{i−1}(u).
std::uint64_t CountWalks(const Graph& g, NodeId source, std::uint32_t ell) {
  std::vector<std::uint64_t> cur(g.NumNodes(), 0);
  std::vector<std::uint64_t> next(g.NumNodes(), 0);
  cur[source] = 1;
  std::uint64_t total = 0;
  for (std::uint32_t i = 1; i <= ell; ++i) {
    std::fill(next.begin(), next.end(), 0);
    for (NodeId v = 0; v < g.NumNodes(); ++v) {
      if (cur[v] == 0) continue;
      for (NodeId u : g.Neighbors(v)) next[u] += cur[v];
    }
    cur.swap(next);
  }
  for (std::uint64_t c : cur) total += c;
  return total;
}

void Run() {
  gen::RunningExample ex = gen::Fig2RunningExample();
  const double epsilon = 0.5;
  const double delta = 0.1;
  std::printf("Fig. 2 reproduction: toy graph n=%u m=%llu, d(s)=%llu "
              "d(t)=%llu, eps=%.1f delta=%.1f\n\n",
              ex.graph.NumNodes(),
              static_cast<unsigned long long>(ex.graph.NumEdges()),
              static_cast<unsigned long long>(ex.graph.Degree(ex.s)),
              static_cast<unsigned long long>(ex.graph.Degree(ex.t)),
              epsilon, delta);
  TextTable table({"ell_f", "#walks(s)", "#walks(t)", "#walks(s)+#walks(t)",
                   "eta*"});
  for (std::uint32_t ell = 1; ell <= 8; ++ell) {
    const std::uint64_t ws = CountWalks(ex.graph, ex.s, ell);
    const std::uint64_t wt = CountWalks(ex.graph, ex.t, ell);
    const double psi = AmcPsi(ell, 1.0, 0.0, ex.graph.Degree(ex.s), 1.0,
                              0.0, ex.graph.Degree(ex.t));
    const std::uint64_t eta_star = AmcMaxSamples(epsilon, psi, delta, 1);
    table.AddRow({std::to_string(ell), FormatCount(ws), FormatCount(wt),
                  FormatCount(ws + wt), FormatCount(eta_star)});
  }
  std::fputs(table.Render().c_str(), stdout);
  std::printf(
      "\nExpected shape (paper): eta* dominates the traversal counts at\n"
      "small ell_f (favoring SMM there) and is overtaken by #walks(t) as\n"
      "ell_f grows past ~6-7 (favoring sampling) — the motivation for\n"
      "GEER's greedy switch.\n");
}

}  // namespace
}  // namespace geer

int main() {
  geer::Run();
  return 0;
}
