// EXACT baseline: effective resistance from a dense factorization of
// M = L + (1/n)𝟙𝟙ᵀ, which is SPD for connected graphs and agrees with L†
// on 𝟙^⊥. O(n³) setup, O(n²) memory — only viable for small graphs,
// reproducing the paper's OOM behaviour on everything but Facebook-scale.

#ifndef GEER_CORE_EXACT_H_
#define GEER_CORE_EXACT_H_

#include <memory>

#include "core/estimator.h"
#include "core/options.h"
#include "graph/graph.h"
#include "linalg/cholesky.h"

namespace geer {

class ExactEstimator : public ErEstimator {
 public:
  /// Factorizes the augmented Laplacian. Aborts if the graph exceeds
  /// `max_nodes` (the library's stand-in for running out of memory) or if
  /// the graph is disconnected (M then not PD).
  explicit ExactEstimator(const Graph& graph, ErOptions options = {},
                          NodeId max_nodes = 8192);
  // Stores a pointer to `graph`; a temporary would dangle.
  explicit ExactEstimator(Graph&&, ErOptions = {}, NodeId = 8192) = delete;

  std::string Name() const override { return "EXACT"; }
  QueryStats EstimateWithStats(NodeId s, NodeId t) override;

  /// True iff the dense factorization would fit under `max_nodes`.
  static bool Feasible(const Graph& graph, NodeId max_nodes = 8192) {
    return graph.NumNodes() <= max_nodes;
  }

 private:
  const Graph* graph_;
  std::unique_ptr<CholeskyFactor> factor_;
};

}  // namespace geer

#endif  // GEER_CORE_EXACT_H_
