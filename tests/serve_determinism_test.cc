// The serving determinism contract, the serving layer's analogue of
// batch_determinism_test: for a fixed (seed, trace), every answer the
// QueryService produces is BIT-IDENTICAL to the serial Estimate loop —
// at 1, 2 and 8 scheduler worker threads, under any micro-batch
// boundary (max_batch_size 1 / small / unbounded), under a shuffled
// arrival order, with concurrent client submitters, and with session
// caches on or off, and with landmark warm-up configured. Also pins the
// session/landmark cache observability contract (ServeMetrics exposes
// the LruByteCache counters) and the service's lifecycle semantics:
// deadline expiry, backpressure rejection, ShutdownNow cancellation and
// submit-after-shutdown all resolve every future. The suite runs under
// ThreadSanitizer in CI.

#include <gtest/gtest.h>

#include <cmath>
#include <future>
#include <limits>
#include <thread>
#include <vector>

#include "centrality/landmarks.h"
#include "core/batch_engine.h"
#include "core/registry.h"
#include "eval/experiment.h"
#include "graph/generators.h"
#include "linalg/spectral.h"
#include "serve/query_service.h"
#include "serve/trace.h"
#include "test_util.h"

namespace geer {
namespace {

ErOptions TestOptions() {
  ErOptions opt;
  opt.epsilon = 0.5;
  opt.delta = 0.1;
  opt.seed = 20260801;
  opt.tp_scale = 0.01;   // scaled constants keep the suite fast; this
  opt.tpc_scale = 0.01;  // suite checks determinism, not accuracy
  opt.mc_gamma_upper = 8.0;
  return opt;
}

// Same shape as the batch suite's set: a same-source block (with a
// duplicate), scattered pairs, an s == t query, two genuine edges (so
// the edge-only baselines answer something), and a non-consecutive
// return to the shared source.
std::vector<QueryPair> TestQueries(const Graph& skeleton) {
  std::vector<QueryPair> queries = {{3, 1},  {3, 5},  {3, 9}, {3, 13},
                                    {3, 17}, {3, 5},  {7, 2}, {11, 4},
                                    {0, 19}, {6, 6},  {3, 2}};
  queries.push_back({0, skeleton.NeighborAt(0, 0)});
  queries.push_back({4, skeleton.NeighborAt(4, 0)});
  return queries;
}

std::vector<double> SerialValues(ErEstimator* estimator,
                                 const std::vector<QueryPair>& queries) {
  std::vector<double> values(queries.size(),
                             std::numeric_limits<double>::quiet_NaN());
  for (std::size_t i = 0; i < queries.size(); ++i) {
    if (!estimator->SupportsQuery(queries[i].s, queries[i].t)) continue;
    values[i] = estimator->Estimate(queries[i].s, queries[i].t);
  }
  return values;
}

// Compressed replay (no arrival sleeps): micro-batch boundaries are
// then scheduler-timing dependent, which is exactly the perturbation
// the determinism contract must be immune to.
ServedWorkloadResult Serve(ErEstimator* estimator,
                           const std::vector<TraceEvent>& trace,
                           const ServeOptions& options) {
  return RunServedWorkload(*estimator, trace, options,
                           /*deadline_seconds=*/0.0, /*realtime=*/false);
}

void ExpectServedMatchesSerial(const ServedWorkloadResult& served,
                               const std::vector<TraceEvent>& trace,
                               const std::vector<double>& expected,
                               const std::string& label) {
  ASSERT_EQ(served.values.size(), trace.size()) << label;
  for (std::size_t i = 0; i < trace.size(); ++i) {
    if (std::isnan(expected[i])) {
      EXPECT_EQ(served.statuses[i], ServeStatus::kUnsupported)
          << label << " event #" << i;
    } else {
      EXPECT_EQ(served.statuses[i], ServeStatus::kAnswered)
          << label << " event #" << i;
      EXPECT_EQ(served.values[i], expected[i])
          << label << " event #" << i << " (" << trace[i].query.s << ","
          << trace[i].query.t << ")";
    }
  }
}

class ServeDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = gen::ErdosRenyi(40, 400, 9);
    options_ = TestOptions();
    options_.lambda = ComputeSpectralBounds(graph_).lambda;
    queries_ = TestQueries(graph_);
    trace_ = MakeOpenLoopTrace(queries_, /*qps=*/0.0, options_.seed);
  }

  Graph graph_;
  ErOptions options_;
  std::vector<QueryPair> queries_;
  std::vector<TraceEvent> trace_;
};

TEST_F(ServeDeterminismTest, EveryAlgorithmServedBitIdentical) {
  for (const std::string& name : EstimatorNames()) {
    auto serial = CreateEstimator(name, graph_, options_);
    ASSERT_NE(serial, nullptr) << name;
    const std::vector<double> expected = SerialValues(serial.get(), queries_);

    auto estimator = CreateEstimator(name, graph_, options_);
    ServeOptions serve_options;
    serve_options.threads = 2;
    serve_options.max_batch_size = 4;
    serve_options.max_linger_seconds = 0.0;
    const ServedWorkloadResult served =
        Serve(estimator.get(), trace_, serve_options);
    ExpectServedMatchesSerial(served, trace_, expected, name);
  }
}

TEST_F(ServeDeterminismTest, SchedulerConfigurationInvariance) {
  // The tentpole's acceptance matrix: {1, 2, 8} scheduler threads ×
  // micro-batch boundaries from one-query-per-dispatch to everything
  // coalesced, on one sharing SpMV method and one sharing walk method.
  for (const std::string& name : {std::string("GEER"), std::string("TP")}) {
    auto serial = CreateEstimator(name, graph_, options_);
    const std::vector<double> expected = SerialValues(serial.get(), queries_);
    for (const int threads : {1, 2, 8}) {
      for (const std::size_t batch_size : {1u, 3u, 64u}) {
        auto estimator = CreateEstimator(name, graph_, options_);
        ServeOptions serve_options;
        serve_options.threads = threads;
        serve_options.max_batch_size = batch_size;
        serve_options.max_linger_seconds = 0.0;
        const ServedWorkloadResult served =
            Serve(estimator.get(), trace_, serve_options);
        ExpectServedMatchesSerial(
            served, trace_, expected,
            name + " threads=" + std::to_string(threads) +
                " batch=" + std::to_string(batch_size));
      }
    }
  }
}

TEST_F(ServeDeterminismTest, ShuffledArrivalOrderDoesNotMoveAnswers) {
  auto serial = CreateEstimator("GEER", graph_, options_);
  const std::vector<double> expected = SerialValues(serial.get(), queries_);
  for (const std::uint64_t shuffle_seed : {1ull, 2ull, 3ull}) {
    const std::vector<TraceEvent> shuffled =
        ShuffleTracePayloads(trace_, shuffle_seed);
    // Map each shuffled event back to its serial answer by payload: the
    // trace has one duplicate pair, whose answers are identical anyway.
    std::vector<double> shuffled_expected(shuffled.size());
    for (std::size_t i = 0; i < shuffled.size(); ++i) {
      double value = std::numeric_limits<double>::quiet_NaN();
      for (std::size_t j = 0; j < queries_.size(); ++j) {
        if (queries_[j].s == shuffled[i].query.s &&
            queries_[j].t == shuffled[i].query.t) {
          value = expected[j];
          break;
        }
      }
      shuffled_expected[i] = value;
    }
    auto estimator = CreateEstimator("GEER", graph_, options_);
    ServeOptions serve_options;
    serve_options.threads = 2;
    serve_options.max_batch_size = 4;
    serve_options.max_linger_seconds = 0.0;
    const ServedWorkloadResult served =
        Serve(estimator.get(), shuffled, serve_options);
    ExpectServedMatchesSerial(served, shuffled, shuffled_expected,
                              "shuffle seed " +
                                  std::to_string(shuffle_seed));
  }
}

TEST_F(ServeDeterminismTest, ConcurrentClientsGetSerialAnswers) {
  auto serial = CreateEstimator("GEER", graph_, options_);
  const std::vector<double> expected = SerialValues(serial.get(), queries_);

  auto estimator = CreateEstimator("GEER", graph_, options_);
  ServeOptions serve_options;
  serve_options.threads = 2;
  serve_options.max_batch_size = 4;
  serve_options.max_linger_seconds = 0.0;
  QueryService service(*estimator, serve_options);

  // 4 client threads hammer Submit concurrently, each owning a strided
  // slice of the query set. Whatever interleaving the scheduler sees,
  // every future must resolve to the serial answer.
  constexpr std::size_t kClients = 4;
  std::vector<std::vector<std::pair<std::size_t,
                                    std::future<QueryResult>>>>
      per_client(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c]() {
      for (std::size_t i = c; i < queries_.size(); i += kClients) {
        per_client[c].emplace_back(i, service.Submit(queries_[i]));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  service.Flush();
  for (auto& client : per_client) {
    for (auto& [i, future] : client) {
      const QueryResult result = future.get();
      if (std::isnan(expected[i])) {
        EXPECT_EQ(result.status, ServeStatus::kUnsupported) << "query " << i;
      } else {
        EXPECT_EQ(result.status, ServeStatus::kAnswered) << "query " << i;
        EXPECT_EQ(result.stats.value, expected[i]) << "query " << i;
      }
    }
  }
  service.Shutdown();
  const ServeMetrics metrics = service.Metrics();
  EXPECT_EQ(metrics.submitted, queries_.size());
  EXPECT_EQ(metrics.answered + metrics.unsupported, queries_.size());
}

TEST_F(ServeDeterminismTest, SessionCachePersistsAcrossBatchesSameValues) {
  // Two engine runs on one session-enabled estimator: the second visit
  // to the same sources must reuse the retained iterate caches (strictly
  // less fresh SpMV work) while answering bit-identically. The
  // slow-mixing dense fixture guarantees GEER a non-empty SMM phase
  // (there is nothing to retain when ℓ_b = 0 — same reasoning as the
  // batch suite's strict-work test).
  const Graph dense = testing::DenseTestGraph(20);
  ErOptions dense_options = TestOptions();
  dense_options.lambda = ComputeSpectralBounds(dense).lambda;
  const std::vector<QueryPair> dense_queries = TestQueries(dense);
  for (const std::string& name : {std::string("SMM"), std::string("GEER")}) {
    auto serial = CreateEstimator(name, dense, dense_options);
    const std::vector<double> expected =
        SerialValues(serial.get(), dense_queries);

    auto estimator = CreateEstimator(name, dense, dense_options);
    estimator->EnableSessionCache();
    EXPECT_TRUE(estimator->SessionCacheEnabled()) << name;
    std::vector<QueryStats> first(dense_queries.size());
    std::vector<QueryStats> second(dense_queries.size());
    RunQueryBatch(*estimator, dense_queries, first);
    RunQueryBatch(*estimator, dense_queries, second);
    std::uint64_t first_spmv = 0;
    std::uint64_t second_spmv = 0;
    for (std::size_t i = 0; i < dense_queries.size(); ++i) {
      if (!std::isnan(expected[i])) {
        EXPECT_EQ(first[i].value, expected[i]) << name << " run 1 #" << i;
        EXPECT_EQ(second[i].value, expected[i]) << name << " run 2 #" << i;
      }
      first_spmv += first[i].spmv_ops;
      second_spmv += second[i].spmv_ops;
    }
    EXPECT_LT(second_spmv, first_spmv) << name;

    // Clearing drops the retained state but keeps the session enabled:
    // cost resets, values do not.
    estimator->ClearSessionCache();
    std::vector<QueryStats> third(dense_queries.size());
    RunQueryBatch(*estimator, dense_queries, third);
    std::uint64_t third_spmv = 0;
    for (std::size_t i = 0; i < dense_queries.size(); ++i) {
      if (!std::isnan(expected[i])) {
        EXPECT_EQ(third[i].value, expected[i]) << name << " run 3 #" << i;
      }
      third_spmv += third[i].spmv_ops;
    }
    EXPECT_EQ(third_spmv, first_spmv) << name;
  }
}

TEST_F(ServeDeterminismTest, WalkSessionCachesPersistAcrossBatches) {
  // TP/TPC retain their per-source walk populations across micro-batches
  // (TP: endpoint histograms per length; TPC: per-length endpoint
  // snapshots). The second visit to the same sources and targets must
  // re-simulate strictly fewer walk steps — TP's revisit is entirely
  // lookup-served — while answering bit-identically; clearing resets the
  // cost without moving any value.
  for (const std::string& name : {std::string("TP"), std::string("TPC")}) {
    auto serial = CreateEstimator(name, graph_, options_);
    const std::vector<double> expected = SerialValues(serial.get(), queries_);

    auto estimator = CreateEstimator(name, graph_, options_);
    estimator->EnableSessionCache();
    EXPECT_TRUE(estimator->SessionCacheEnabled()) << name;
    std::vector<QueryStats> first(queries_.size());
    std::vector<QueryStats> second(queries_.size());
    RunQueryBatch(*estimator, queries_, first);
    RunQueryBatch(*estimator, queries_, second);
    std::uint64_t first_steps = 0;
    std::uint64_t second_steps = 0;
    for (std::size_t i = 0; i < queries_.size(); ++i) {
      if (!std::isnan(expected[i])) {
        EXPECT_EQ(first[i].value, expected[i]) << name << " run 1 #" << i;
        EXPECT_EQ(second[i].value, expected[i]) << name << " run 2 #" << i;
      }
      first_steps += first[i].walk_steps;
      second_steps += second[i].walk_steps;
    }
    ASSERT_GT(first_steps, 0u) << name;
    EXPECT_LT(second_steps, first_steps) << name;
    if (name == "TP") {
      // Every population the revisit needs is retained: zero fresh walks.
      EXPECT_EQ(second_steps, 0u) << name;
    }

    estimator->ClearSessionCache();
    std::vector<QueryStats> third(queries_.size());
    RunQueryBatch(*estimator, queries_, third);
    std::uint64_t third_steps = 0;
    for (std::size_t i = 0; i < queries_.size(); ++i) {
      if (!std::isnan(expected[i])) {
        EXPECT_EQ(third[i].value, expected[i]) << name << " run 3 #" << i;
      }
      third_steps += third[i].walk_steps;
    }
    EXPECT_EQ(third_steps, first_steps) << name;
  }
}

TEST_F(ServeDeterminismTest, SessionCacheCountersSurfaceInServeMetrics) {
  // The observability half of the cache contract: ServeMetrics (and the
  // ServedWorkloadResult snapshot taken at shutdown) must expose the
  // per-worker LruByteCache counters. One worker keeps the accounting
  // exact: the first replay populates the cache (misses, resident bytes),
  // a second replay over the SAME estimator is fully warm — hits grow,
  // misses do not, and every answer stays bit-identical.
  auto serial = CreateEstimator("TP", graph_, options_);
  const std::vector<double> expected = SerialValues(serial.get(), queries_);

  auto estimator = CreateEstimator("TP", graph_, options_);
  ServeOptions serve_options;
  serve_options.threads = 1;
  serve_options.max_batch_size = 4;
  serve_options.max_linger_seconds = 0.0;
  QueryService service(*estimator, serve_options);

  // The refresh at each dispatch tail publishes `answered` and the cache
  // snapshot in one critical section, so once `answered` reaches a pass's
  // total the session_cache counters cover every batch of that pass.
  const auto run_pass = [&](std::uint64_t answered_target) {
    std::vector<std::future<QueryResult>> futures;
    futures.reserve(queries_.size());
    for (const QueryPair& q : queries_) futures.push_back(service.Submit(q));
    service.Flush();
    for (std::size_t i = 0; i < futures.size(); ++i) {
      const QueryResult result = futures[i].get();
      EXPECT_EQ(result.status, ServeStatus::kAnswered) << "query " << i;
      EXPECT_EQ(result.stats.value, expected[i]) << "query " << i;
    }
    while (service.Metrics().answered < answered_target) {
      std::this_thread::yield();
    }
    return service.Metrics().session_cache;
  };

  const CacheStats cold = run_pass(queries_.size());
  EXPECT_GT(cold.misses, 0u);
  EXPECT_GT(cold.entries, 0u);
  EXPECT_GT(cold.bytes, 0u);
  // The trace revisits source 3 across micro-batches, so even the cold
  // pass sees intra-run hits.
  EXPECT_GT(cold.hits, 0u);
  EXPECT_EQ(cold.pinned, 0u);  // no landmarks configured

  // Warm replay of the identical queries: every population is retained,
  // so hits grow and NOT ONE fresh miss occurs; resident state is stable.
  const CacheStats warm = run_pass(2 * queries_.size());
  EXPECT_GT(warm.hits, cold.hits);
  EXPECT_EQ(warm.misses, cold.misses);
  EXPECT_EQ(warm.bytes, cold.bytes);
  EXPECT_EQ(warm.entries, cold.entries);
  service.Shutdown();
}

TEST_F(ServeDeterminismTest, LandmarkModeServesBitIdenticalWithPinnedEntries) {
  // ServeOptions.landmarks warms and pins per-landmark state in every
  // worker before the scheduler starts. The contract: answers never move
  // (landmark combination is exact by linearity for the SpMV methods and
  // reuses the very populations the direct path would record for the walk
  // methods), and the pinned warm-up is visible in the metrics snapshot.
  const std::vector<NodeId> landmarks = SelectLandmarks(graph_, 8);
  ASSERT_EQ(landmarks.size(), 8u);
  for (const std::string name : {"GEER", "TP", "SMM"}) {
    auto serial = CreateEstimator(name, graph_, options_);
    const std::vector<double> expected = SerialValues(serial.get(), queries_);

    auto estimator = CreateEstimator(name, graph_, options_);
    ServeOptions serve_options;
    serve_options.threads = 2;
    serve_options.max_batch_size = 4;
    serve_options.max_linger_seconds = 0.0;
    serve_options.landmarks = landmarks;
    const ServedWorkloadResult served =
        Serve(estimator.get(), trace_, serve_options);
    ExpectServedMatchesSerial(served, trace_, expected, name + " landmarks");
    // Both workers warmed all 8 landmarks; the warm-up itself counts as
    // misses, and the pinned gauge proves the entries are budget-exempt.
    EXPECT_GE(served.session_cache.pinned, landmarks.size()) << name;
    EXPECT_GT(served.session_cache.misses, 0u) << name;
    EXPECT_GT(served.session_cache.bytes, 0u) << name;
  }
}

TEST_F(ServeDeterminismTest, TinyDeadlineExpiresQueriesWithoutHanging) {
  auto estimator = CreateEstimator("GEER", graph_, options_);
  ServeOptions serve_options;
  serve_options.threads = 1;
  serve_options.max_batch_size = 1;  // one dispatch per query: real queueing
  serve_options.max_linger_seconds = 0.0;
  const ServedWorkloadResult served = RunServedWorkload(
      *estimator, trace_, serve_options, /*deadline_seconds=*/1e-9,
      /*realtime=*/false);
  // Every future resolved; with a 1 ns budget nothing queued survives to
  // dispatch un-expired, but an answer that squeaked through is legal
  // (the engine's ≥ 1-query rule) — what's illegal is hanging or losing
  // a query.
  std::size_t resolved = 0;
  for (const ServeStatus status : served.statuses) {
    EXPECT_TRUE(status == ServeStatus::kExpired ||
                status == ServeStatus::kAnswered);
    ++resolved;
  }
  EXPECT_EQ(resolved, trace_.size());
  EXPECT_GT(served.expired, 0u);
}

TEST_F(ServeDeterminismTest, ZeroCapacityQueueRejectsEverySubmission) {
  auto estimator = CreateEstimator("GEER", graph_, options_);
  ServeOptions serve_options;
  serve_options.max_queue = 0;
  QueryService service(*estimator, serve_options);
  auto future = service.Submit({3, 1});
  EXPECT_EQ(future.get().status, ServeStatus::kRejected);
  service.Shutdown();
  EXPECT_EQ(service.Metrics().rejected, 1u);
}

TEST_F(ServeDeterminismTest, ShutdownNowCancelsQueuedWork) {
  auto estimator = CreateEstimator("GEER", graph_, options_);
  ServeOptions serve_options;
  serve_options.threads = 1;
  serve_options.max_batch_size = 1;
  serve_options.max_linger_seconds = 0.0;
  QueryService service(*estimator, serve_options);
  std::vector<std::future<QueryResult>> futures;
  for (int rep = 0; rep < 20; ++rep) {
    for (const QueryPair& q : queries_) futures.push_back(service.Submit(q));
  }
  service.ShutdownNow();
  std::size_t cancelled = 0;
  for (auto& future : futures) {
    const QueryResult result = future.get();  // must all resolve
    EXPECT_TRUE(result.status == ServeStatus::kAnswered ||
                result.status == ServeStatus::kUnsupported ||
                result.status == ServeStatus::kCancelled);
    if (result.status == ServeStatus::kCancelled) ++cancelled;
  }
  // Submissions after shutdown resolve immediately as kShutdown.
  EXPECT_EQ(service.Submit({3, 1}).get().status, ServeStatus::kShutdown);
  EXPECT_EQ(service.Metrics().cancelled, cancelled);
}

}  // namespace
}  // namespace geer
