// Spectral graph sparsification by effective resistances (Spielman &
// Srivastava) — the flagship downstream application cited in the paper's
// introduction. Each edge is sampled with probability proportional to
// w_e·r(e); the sampled multigraph's Laplacian approximates the original
// quadratic form. Edge ERs are estimated with GEER.
//
//   ./examples/sparsify [num_samples_per_edge_factor]

#include <cmath>
#include <cstdio>
#include <map>
#include <vector>

#include "core/geer.h"
#include "graph/generators.h"
#include "linalg/laplacian_solver.h"
#include "linalg/spectral.h"
#include "rw/rng.h"
#include "util/timer.h"

int main(int argc, char** argv) {
  using namespace geer;
  const double sample_factor = argc > 1 ? std::atof(argv[1]) : 0.35;

  Graph graph = gen::RMat(11, 24, /*seed=*/5);  // ~2k nodes, dense-ish
  std::printf("input: n=%u m=%llu\n", graph.NumNodes(),
              static_cast<unsigned long long>(graph.NumEdges()));

  // 1. Estimate r(e) for every edge with GEER.
  SpectralBounds spectral = ComputeSpectralBounds(graph);
  ErOptions opt;
  opt.epsilon = 0.1;
  opt.lambda = spectral.lambda;
  GeerEstimator geer(graph, opt);
  Timer er_timer;
  std::vector<Edge> edges = graph.Edges();
  std::vector<double> resistance(edges.size());
  double total_r = 0.0;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    resistance[e] =
        std::max(1e-9, geer.Estimate(edges[e].first, edges[e].second));
    total_r += resistance[e];
  }
  std::printf("estimated %zu edge ERs in %.0f ms (Foster check: sum=%.1f "
              "vs n-1=%u)\n",
              edges.size(), er_timer.ElapsedMillis(), total_r,
              graph.NumNodes() - 1);

  // 2. Sample q edges with prob ∝ r(e), accumulating weights w = 1/(q·p).
  const std::size_t q = static_cast<std::size_t>(
      sample_factor * static_cast<double>(edges.size()));
  std::vector<double> cumulative(edges.size());
  double acc = 0.0;
  for (std::size_t e = 0; e < edges.size(); ++e) {
    acc += resistance[e] / total_r;
    cumulative[e] = acc;
  }
  Rng rng(42);
  std::map<std::size_t, double> sampled_weight;
  for (std::size_t i = 0; i < q; ++i) {
    const double u = rng.NextDouble();
    const std::size_t e = static_cast<std::size_t>(
        std::lower_bound(cumulative.begin(), cumulative.end(), u) -
        cumulative.begin());
    const double p_e = resistance[e] / total_r;
    sampled_weight[e] += 1.0 / (static_cast<double>(q) * p_e);
  }
  std::printf("sparsifier: kept %zu distinct edges (%.1f%% of m)\n",
              sampled_weight.size(),
              100.0 * sampled_weight.size() / edges.size());

  // 3. Verify the quadratic form x'Lx is preserved on random test
  //    vectors (the sparsifier guarantee, spot-checked).
  LaplacianSolver solver(graph);
  double worst_ratio = 1.0;
  for (int trial = 0; trial < 8; ++trial) {
    Vector x(graph.NumNodes());
    for (auto& v : x) v = rng.NextGaussian();
    RemoveMean(&x);
    Vector lx;
    solver.ApplyLaplacian(x, &lx);
    const double original = Dot(x, lx);
    double sparse_form = 0.0;
    for (const auto& [e, w] : sampled_weight) {
      const double diff = x[edges[e].first] - x[edges[e].second];
      sparse_form += w * diff * diff;
    }
    const double ratio = sparse_form / original;
    worst_ratio = std::max(worst_ratio, std::max(ratio, 1.0 / ratio));
    std::printf("  test vector %d: x'Lx=%.1f  x'L~x=%.1f  ratio=%.3f\n",
                trial, original, sparse_form, ratio);
  }
  std::printf("worst distortion: %.3fx\n", worst_ratio);
  return worst_ratio < 2.0 ? 0 : 1;
}
