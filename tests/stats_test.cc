#include <gtest/gtest.h>

#include <cmath>

#include "rw/rng.h"
#include "stats/accumulator.h"
#include "stats/bounds.h"

namespace geer {
namespace {

TEST(BoundsTest, BernsteinMatchesFormula) {
  // f(n, σ̂², ψ, δ) = sqrt(2σ̂² log(3/δ)/n) + 3ψ log(3/δ)/n.
  const double expected = std::sqrt(2.0 * 0.25 * std::log(3.0 / 0.05) / 100) +
                          3.0 * 2.0 * std::log(3.0 / 0.05) / 100;
  EXPECT_NEAR(EmpiricalBernsteinBound(100, 0.25, 2.0, 0.05), expected,
              1e-12);
}

TEST(BoundsTest, BernsteinShrinksWithSamples) {
  const double f1 = EmpiricalBernsteinBound(100, 0.5, 1.0, 0.01);
  const double f2 = EmpiricalBernsteinBound(1000, 0.5, 1.0, 0.01);
  EXPECT_LT(f2, f1);
}

TEST(BoundsTest, BernsteinShrinksWithVariance) {
  const double high = EmpiricalBernsteinBound(100, 1.0, 1.0, 0.01);
  const double low = EmpiricalBernsteinBound(100, 0.01, 1.0, 0.01);
  EXPECT_LT(low, high);
}

TEST(BoundsTest, BernsteinZeroVarianceLeavesRangeTerm) {
  const double f = EmpiricalBernsteinBound(50, 0.0, 1.0, 0.1);
  EXPECT_NEAR(f, 3.0 * std::log(3.0 / 0.1) / 50, 1e-12);
}

TEST(BoundsTest, BernsteinTighterThanHoeffdingAtLowVariance)
{
  // The effect AMC exploits: at small empirical variance, Bernstein beats
  // the variance-blind Hoeffding width for variables of range ψ.
  const std::uint64_t n = 2000;
  const double psi = 1.0;
  const double bernstein = EmpiricalBernsteinBound(n, 1e-4, psi, 0.01);
  const double hoeffding = HoeffdingBound(n, psi, 0.01);
  EXPECT_LT(bernstein, hoeffding);
}

TEST(BoundsTest, HoeffdingSampleCountInverts) {
  // The derived n makes the width ≤ ε (and n−1 would not).
  const double eps = 0.05;
  const double psi = 2.0;
  const double delta = 0.01;
  const std::uint64_t n = HoeffdingSampleCount(eps, psi, delta);
  EXPECT_LE(HoeffdingBound(n, psi, delta), eps + 1e-12);
  if (n > 1) EXPECT_GT(HoeffdingBound(n - 1, psi, delta), eps);
}

TEST(BoundsTest, AmcMaxSamplesMatchesEq8) {
  // η* = 2ψ² log(2τ/δ)/ε².
  const double psi = 1.5;
  const double eps = 0.1;
  const double delta = 0.01;
  const int tau = 5;
  const double expected =
      std::ceil(2.0 * psi * psi * std::log(2.0 * tau / delta) / (eps * eps));
  EXPECT_EQ(AmcMaxSamples(eps, psi, delta, tau),
            static_cast<std::uint64_t>(expected));
}

TEST(BoundsTest, AmcMaxSamplesGrowsWithTau) {
  EXPECT_LT(AmcMaxSamples(0.1, 1.0, 0.01, 1),
            AmcMaxSamples(0.1, 1.0, 0.01, 8));
}

TEST(AccumulatorTest, MeanVarKnownValues) {
  MeanVarAccumulator acc;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.Add(v);
  EXPECT_EQ(acc.Count(), 8u);
  EXPECT_DOUBLE_EQ(acc.Mean(), 5.0);
  EXPECT_NEAR(acc.Variance(), 4.0, 1e-12);  // population variance
}

TEST(AccumulatorTest, ResetClears) {
  MeanVarAccumulator acc;
  acc.Add(10.0);
  acc.Reset();
  EXPECT_EQ(acc.Count(), 0u);
  EXPECT_DOUBLE_EQ(acc.Mean(), 0.0);
  EXPECT_DOUBLE_EQ(acc.Variance(), 0.0);
}

TEST(AccumulatorTest, AgreesWithWelford) {
  Rng rng(3);
  MeanVarAccumulator naive;
  MeanVarWelford welford;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble() * 3.0 - 1.0;
    naive.Add(v);
    welford.Add(v);
  }
  EXPECT_NEAR(naive.Mean(), welford.Mean(), 1e-10);
  EXPECT_NEAR(naive.Variance(), welford.Variance(), 1e-10);
}

TEST(AccumulatorTest, ConstantStreamZeroVariance) {
  MeanVarAccumulator acc;
  for (int i = 0; i < 100; ++i) acc.Add(3.14);
  EXPECT_NEAR(acc.Variance(), 0.0, 1e-12);
}

TEST(SummaryAccumulatorTest, TracksExtremes) {
  SummaryAccumulator acc;
  acc.Add(3.0);
  acc.Add(-1.0);
  acc.Add(2.0);
  EXPECT_EQ(acc.Count(), 3u);
  EXPECT_DOUBLE_EQ(acc.Min(), -1.0);
  EXPECT_DOUBLE_EQ(acc.Max(), 3.0);
  EXPECT_NEAR(acc.Mean(), 4.0 / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(acc.Sum(), 4.0);
}

TEST(BoundsTest, BernsteinCoverageEmpirical) {
  // Property check: the bound holds with frequency ≥ 1−δ over repeated
  // bounded samples (Bernoulli(0.3), ψ = 1).
  Rng rng(9);
  const double p = 0.3;
  const double delta = 0.1;
  const int reps = 400;
  const std::uint64_t n = 500;
  int violations = 0;
  for (int r = 0; r < reps; ++r) {
    MeanVarAccumulator acc;
    for (std::uint64_t i = 0; i < n; ++i) {
      acc.Add(rng.NextBernoulli(p) ? 1.0 : 0.0);
    }
    const double f = EmpiricalBernsteinBound(n, acc.Variance(), 1.0, delta);
    if (std::abs(acc.Mean() - p) > f) ++violations;
  }
  EXPECT_LE(violations, static_cast<int>(reps * delta));
}

}  // namespace
}  // namespace geer
