#include <gtest/gtest.h>

#include <set>

#include "eval/datasets.h"
#include "eval/experiment.h"
#include "eval/ground_truth.h"
#include "eval/queries.h"
#include "eval/table.h"
#include "graph/algorithms.h"
#include "graph/generators.h"
#include "test_util.h"

namespace geer {
namespace {

TEST(DatasetsTest, RegistryNamesMatchPaperOrder) {
  const auto names = DatasetNames();
  ASSERT_EQ(names.size(), 6u);
  EXPECT_EQ(names.front(), "facebook");
  EXPECT_EQ(names.back(), "friendster");
}

TEST(DatasetsTest, SmallScaleDatasetsAreNormalized) {
  for (const std::string& name : DatasetNames()) {
    auto ds = MakeDataset(name, /*scale=*/0.02);
    ASSERT_TRUE(ds.has_value()) << name;
    EXPECT_GT(ds->graph.NumNodes(), 10u) << name;
    EXPECT_TRUE(IsConnected(ds->graph)) << name;
    EXPECT_FALSE(IsBipartite(ds->graph)) << name;
    EXPECT_GT(ds->spectral.lambda, 0.0) << name;
    EXPECT_LT(ds->spectral.lambda, 1.0) << name;
    EXPECT_FALSE(DescribeDataset(*ds).empty());
  }
}

TEST(DatasetsTest, UnknownNameRejected) {
  EXPECT_FALSE(MakeDataset("twitter", 1.0).has_value());
}

TEST(DatasetsTest, HighDegreeDatasetsAreDenser) {
  auto orkut = MakeDataset("orkut", 0.03);
  auto youtube = MakeDataset("youtube", 0.03);
  ASSERT_TRUE(orkut.has_value() && youtube.has_value());
  EXPECT_GT(orkut->graph.AverageDegree(),
            3.0 * youtube->graph.AverageDegree());
}

TEST(QueriesTest, RandomPairsValid) {
  Graph g = testing::DenseTestGraph(20);
  auto qs = RandomPairs(g, 50, 1);
  ASSERT_EQ(qs.size(), 50u);
  for (const auto& q : qs) {
    EXPECT_NE(q.s, q.t);
    EXPECT_LT(q.s, g.NumNodes());
    EXPECT_LT(q.t, g.NumNodes());
  }
}

TEST(QueriesTest, RandomPairsDeterministic) {
  Graph g = testing::DenseTestGraph(20);
  auto a = RandomPairs(g, 20, 7);
  auto b = RandomPairs(g, 20, 7);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].s, b[i].s);
    EXPECT_EQ(a[i].t, b[i].t);
  }
}

TEST(QueriesTest, RandomEdgesAreEdges) {
  Graph g = gen::BarabasiAlbert(100, 3, 5);
  auto qs = RandomEdges(g, 80, 2);
  for (const auto& q : qs) {
    EXPECT_TRUE(g.HasEdge(q.s, q.t));
  }
}

TEST(QueriesTest, ArcSourceInvertsCsr) {
  Graph g = testing::TriangleWithTail();
  for (NodeId u = 0; u < g.NumNodes(); ++u) {
    for (std::uint64_t k = g.Offsets()[u]; k < g.Offsets()[u + 1]; ++k) {
      EXPECT_EQ(ArcSource(g, k), u);
    }
  }
}

TEST(QueriesTest, EdgeSamplingHitsHighDegreeMore) {
  // Arc-uniform sampling: the hub of a star is an endpoint of every edge.
  Graph g = gen::Star(30);
  auto qs = RandomEdges(g, 100, 3);
  for (const auto& q : qs) {
    EXPECT_TRUE(q.s == 0 || q.t == 0);
  }
}

TEST(GroundTruthTest, CgMatchesExact) {
  Graph g = testing::DenseTestGraph(16);
  auto qs = RandomPairs(g, 10, 4);
  auto truth = GroundTruthCg(g, qs);
  ASSERT_EQ(truth.size(), qs.size());
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_NEAR(truth[i], testing::ExactEr(g, qs[i].s, qs[i].t), 1e-7);
  }
}

TEST(GroundTruthTest, SmmMatchesCg) {
  Graph g = testing::DenseTestGraph(16);
  auto qs = RandomPairs(g, 8, 5);
  auto cg = GroundTruthCg(g, qs);
  auto smm = GroundTruthSmm(g, qs, 800);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_NEAR(cg[i], smm[i], 1e-6);
  }
}

TEST(GroundTruthTest, SingleThreadMatchesMulti) {
  Graph g = testing::DenseTestGraph(16);
  auto qs = RandomPairs(g, 6, 6);
  auto multi = GroundTruthCg(g, qs, 0);
  auto single = GroundTruthCg(g, qs, 1);
  for (std::size_t i = 0; i < qs.size(); ++i) {
    EXPECT_NEAR(multi[i], single[i], 1e-12);
  }
}

TEST(ExperimentTest, RunMethodCollectsStats) {
  auto ds = MakeDataset("facebook", 0.05);
  ASSERT_TRUE(ds.has_value());
  auto qs = RandomPairs(ds->graph, 10, 1);
  auto truth = GroundTruthCg(ds->graph, qs);
  ErOptions opt;
  opt.epsilon = 0.2;
  MethodResult res = RunMethod(*ds, "GEER", opt, qs, truth);
  EXPECT_TRUE(res.feasible);
  EXPECT_TRUE(res.completed);
  EXPECT_EQ(res.queries_answered, qs.size());
  EXPECT_LE(res.avg_abs_error, opt.epsilon);
  EXPECT_GE(res.avg_millis, 0.0);
}

TEST(ExperimentTest, InfeasibleMethodShortCircuits) {
  auto ds = MakeDataset("facebook", 0.05);
  ASSERT_TRUE(ds.has_value());
  auto qs = RandomPairs(ds->graph, 5, 1);
  ErOptions opt;
  opt.epsilon = 0.01;
  opt.rp_max_bytes = 1024;  // force the RP OOM path
  MethodResult res = RunMethod(*ds, "RP", opt, qs, {});
  EXPECT_FALSE(res.feasible);
  EXPECT_EQ(res.queries_answered, 0u);
}

TEST(ExperimentTest, EdgeOnlyMethodSkipsNonEdges) {
  auto ds = MakeDataset("facebook", 0.05);
  ASSERT_TRUE(ds.has_value());
  auto edges = RandomEdges(ds->graph, 10, 2);
  ErOptions opt;
  opt.epsilon = 0.3;
  MethodResult res = RunMethod(*ds, "MC2", opt, edges, {});
  EXPECT_EQ(res.queries_answered, edges.size());
}

TEST(ExperimentTest, ExtrapolationUndoesScale) {
  MethodResult res;
  res.method = "TP";
  res.avg_millis = 5.0;
  res.sample_scale = 0.01;
  EXPECT_NEAR(res.ExtrapolatedMillis(), 500.0, 1e-9);
}

TEST(TableTest, RenderAlignsColumns) {
  TextTable table({"method", "ms"});
  table.AddRow({"GEER", "1.5"});
  table.AddRow({"AMC", "123.0"});
  const std::string out = table.Render();
  EXPECT_NE(out.find("method"), std::string::npos);
  EXPECT_NE(out.find("GEER"), std::string::npos);
  EXPECT_NE(out.find("-----"), std::string::npos);
}

TEST(TableTest, CsvRendering) {
  TextTable table({"a", "b"});
  table.AddRow({"1", "2"});
  EXPECT_EQ(table.RenderCsv(), "a,b\n1,2\n");
}

}  // namespace
}  // namespace geer
