// Shared fixtures and oracles for the test suite.

#ifndef GEER_TESTS_TEST_UTIL_H_
#define GEER_TESTS_TEST_UTIL_H_

#include <cmath>
#include <vector>

#include "core/exact.h"
#include "graph/builder.h"
#include "graph/generators.h"
#include "graph/graph.h"

namespace geer {
namespace testing {

/// Exact ER via the dense pseudo-inverse — the oracle most estimator
/// tests compare against.
inline double ExactEr(const Graph& graph, NodeId s, NodeId t) {
  ExactEstimator exact(graph);
  return exact.Estimate(s, t);
}

/// Closed form for the cycle C_n: r(i,j) = k(n−k)/n with k = hop distance.
inline double CycleEr(NodeId n, NodeId i, NodeId j) {
  const double k = std::min<double>((i > j ? i - j : j - i),
                                    n - (i > j ? i - j : j - i));
  return k * (static_cast<double>(n) - k) / static_cast<double>(n);
}

/// A small connected non-bipartite test graph (triangle with a tail):
///   0-1, 1-2, 2-0, 2-3, 3-4.
inline Graph TriangleWithTail() {
  GraphBuilder b(5);
  b.AddEdge(0, 1);
  b.AddEdge(1, 2);
  b.AddEdge(2, 0);
  b.AddEdge(2, 3);
  b.AddEdge(3, 4);
  return b.Build();
}

/// A moderate non-bipartite well-connected graph for randomized-estimator
/// tests: complete core + ring, n nodes.
inline Graph DenseTestGraph(NodeId n = 24) {
  GraphBuilder b(n);
  const NodeId core = n / 2;
  for (NodeId u = 0; u < core; ++u) {
    for (NodeId v = u + 1; v < core; ++v) b.AddEdge(u, v);
  }
  for (NodeId u = 0; u < n; ++u) b.AddEdge(u, (u + 1) % n);
  return b.Build();
}

}  // namespace testing
}  // namespace geer

#endif  // GEER_TESTS_TEST_UTIL_H_
