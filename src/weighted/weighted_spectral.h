// Compatibility shim: weighted spectral preprocessing is now the
// EdgeWeight instantiation of ComputeSpectralBoundsT in linalg/spectral.h
// (see graph/weight_policy.h); ComputeWeightedSpectralBounds[Dense] are
// inline wrappers defined there.

#ifndef GEER_WEIGHTED_WEIGHTED_SPECTRAL_SHIM_H_
#define GEER_WEIGHTED_WEIGHTED_SPECTRAL_SHIM_H_

#include "linalg/spectral.h"

#endif  // GEER_WEIGHTED_WEIGHTED_SPECTRAL_SHIM_H_
