#include "core/tp.h"

#include <cmath>

#include "core/ell.h"
#include "linalg/spectral.h"
#include "util/check.h"

namespace geer {

template <WeightPolicy WP>
TpEstimatorT<WP>::TpEstimatorT(const GraphT& graph, ErOptions options)
    : graph_(&graph), options_(options), walker_(graph) {
  ValidateOptions(options_);
  lambda_ = options_.lambda.has_value()
                ? *options_.lambda
                : ComputeSpectralBoundsT<WP>(graph).lambda;
}

template <WeightPolicy WP>
std::uint64_t TpEstimatorT<WP>::WalksPerLength(std::uint32_t ell) const {
  if (ell == 0) return 0;
  const double l = static_cast<double>(ell);
  const double raw = 40.0 * l * l * std::log(8.0 * l / options_.delta) /
                     (options_.epsilon * options_.epsilon);
  return static_cast<std::uint64_t>(
      std::ceil(std::max(raw * options_.tp_scale, 1.0)));
}

template <WeightPolicy WP>
QueryStats TpEstimatorT<WP>::EstimateWithStats(NodeId s, NodeId t) {
  GEER_CHECK(s < graph_->NumNodes());
  GEER_CHECK(t < graph_->NumNodes());
  QueryStats stats;
  if (s == t) return stats;

  const std::uint32_t ell =
      PengEll(options_.epsilon, lambda_, options_.max_ell);
  stats.ell = ell;
  stats.truncated =
      EllWasTruncated(options_.epsilon, lambda_, 1, 1, options_.max_ell,
                      /*use_peng=*/true);
  const double inv_ws = 1.0 / WP::NodeWeight(*graph_, s);
  const double inv_wt = 1.0 / WP::NodeWeight(*graph_, t);

  // i = 0 term of Eq. (4).
  double estimate = inv_ws + inv_wt;
  const std::uint64_t eta = WalksPerLength(ell);
  Rng rng(options_.seed ^ (static_cast<std::uint64_t>(s) << 32) ^ t);

  for (std::uint32_t i = 1; i <= ell; ++i) {
    std::uint64_t count_ss = 0;  // s-walks of length i ending at s
    std::uint64_t count_st = 0;  // s-walks ending at t
    std::uint64_t count_tt = 0;  // t-walks ending at t
    std::uint64_t count_ts = 0;  // t-walks ending at s
    for (std::uint64_t k = 0; k < eta; ++k) {
      const NodeId end_s = walker_.WalkEndpoint(s, i, rng);
      if (end_s == s) ++count_ss;
      if (end_s == t) ++count_st;
      const NodeId end_t = walker_.WalkEndpoint(t, i, rng);
      if (end_t == t) ++count_tt;
      if (end_t == s) ++count_ts;
    }
    stats.walks += 2 * eta;
    stats.walk_steps += 2 * eta * i;
    const double inv_eta = 1.0 / static_cast<double>(eta);
    // Eq. (4) term for length i with the empirical probabilities.
    estimate += (static_cast<double>(count_ss) * inv_ws +
                 static_cast<double>(count_tt) * inv_wt -
                 static_cast<double>(count_st) * inv_wt -
                 static_cast<double>(count_ts) * inv_ws) *
                inv_eta;
  }
  stats.value = estimate;
  return stats;
}

template class TpEstimatorT<UnitWeight>;
template class TpEstimatorT<EdgeWeight>;

}  // namespace geer
