// Typed messages riding inside net/frame.h payloads, with their
// (de)serializers. Every encoder appends to a byte vector using the
// little-endian primitives of serve/service_api.h; every decoder
// consumes a payload span and returns false on truncation, trailing
// garbage, or out-of-range enum values — it never throws and never
// aborts, whatever the bytes (the codec fuzz suite feeds it prefixes,
// suffixes and random garbage of every message).
//
// Query payloads are the transport-neutral ServiceRequest /
// ServiceResponse PODs from serve/service_api.h (shared with in-process
// callers); this header adds the control-plane messages: the version
// handshake, Flush, ApplyUpdates (edge updates + coordinated epoch
// swap) and Shutdown.

#ifndef GEER_NET_CODEC_H_
#define GEER_NET_CODEC_H_

#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "dyn/dynamic_graph.h"
#include "obs/stats.h"
#include "serve/service_api.h"

namespace geer::net {

/// kHelloAck payload: what a client learns about the deployment it just
/// connected to. A shard server reports its own replica; the router
/// reports the aggregate (num_shards > 1) — same n/m on every shard,
/// since shards are full replicas partitioned by ownership (see
/// net/partition.h).
struct HelloAckMsg {
  std::uint32_t num_nodes = 0;
  std::uint64_t num_edges = 0;
  std::uint64_t epoch = 0;       ///< currently served graph epoch
  std::uint32_t num_shards = 1;  ///< 1 for a shard server
};

/// kApplyUpdates payload: one update batch to apply + commit + swap.
/// The receiving shard applies the updates to its dynamic-graph
/// replica, commits (publishing the next epoch) and swaps the epoch
/// into its QueryService with the usual submission-barrier semantics;
/// the router broadcasts the SAME message to every shard and only acks
/// once all shards acked (see net/router.h for the cross-shard
/// barrier).
struct ApplyUpdatesMsg {
  /// Opt into GraphEpoch::incremental maintenance on the shard (answers
  /// may then drift within the documented tolerances; leave false for
  /// the strict bit-identity contract).
  bool incremental = false;
  /// Precomputed λ for the post-update graph; absent = each shard
  /// re-derives it deterministically.
  std::optional<double> lambda;
  std::vector<EdgeUpdate> updates;
};

/// kApplyUpdatesAck payload.
struct ApplyUpdatesAckMsg {
  bool ok = false;         ///< every worker (every shard) swapped
  std::uint64_t epoch = 0; ///< epoch now served (valid when ok)
};

/// kStats payload: scrape request. `prefix` filters metric names by
/// leading match ("" = everything).
struct StatsRequestMsg {
  std::string prefix;
};

/// kStatsReply payload: one registry snapshot (shard server) or the
/// bucket-wise merge across every shard (router). The histogram bucket
/// scheme is stamped on the wire (obs::kHistogramSchemeId) so a future
/// re-bucketing surfaces as a decode failure, never a silently wrong
/// merged quantile.
struct StatsReplyMsg {
  obs::StatsSnapshot snapshot;
  std::uint32_t num_shards = 1;  ///< snapshots merged into this reply
};

/// kError payload: machine code + human-readable message.
struct ErrorMsg {
  enum Code : std::uint16_t {
    kBadRequest = 1,   ///< undecodable payload
    kUnknownType = 2,  ///< unrecognized frame type
    kOutOfRange = 3,   ///< query endpoint >= num_nodes
    kUpstream = 4,     ///< router: a shard connection failed
    kInternal = 5,
  };
  std::uint16_t code = kInternal;
  std::string message;
};

// Encoders: message -> payload bytes.
std::vector<std::uint8_t> EncodeHelloAck(const HelloAckMsg& msg);
std::vector<std::uint8_t> EncodeApplyUpdates(const ApplyUpdatesMsg& msg);
std::vector<std::uint8_t> EncodeApplyUpdatesAck(const ApplyUpdatesAckMsg& msg);
std::vector<std::uint8_t> EncodeError(const ErrorMsg& msg);
std::vector<std::uint8_t> EncodeStatsRequest(const StatsRequestMsg& msg);
std::vector<std::uint8_t> EncodeStatsReply(const StatsReplyMsg& msg);

// Decoders: payload bytes -> message; false on any malformation.
// Strict-length: trailing bytes after the message are rejected (a
// well-formed peer never pads).
bool DecodeHelloAck(std::span<const std::uint8_t> payload, HelloAckMsg* out);
bool DecodeApplyUpdates(std::span<const std::uint8_t> payload,
                        ApplyUpdatesMsg* out);
bool DecodeApplyUpdatesAck(std::span<const std::uint8_t> payload,
                           ApplyUpdatesAckMsg* out);
bool DecodeError(std::span<const std::uint8_t> payload, ErrorMsg* out);
bool DecodeStatsRequest(std::span<const std::uint8_t> payload,
                        StatsRequestMsg* out);
bool DecodeStatsReply(std::span<const std::uint8_t> payload,
                      StatsReplyMsg* out);

// ServiceRequest / ServiceResponse payloads (strict-length wrappers over
// the PODs' own ParseFrom).
std::vector<std::uint8_t> EncodeServiceRequest(const ServiceRequest& msg);
std::vector<std::uint8_t> EncodeServiceResponse(const ServiceResponse& msg);
bool DecodeServiceRequest(std::span<const std::uint8_t> payload,
                          ServiceRequest* out);
bool DecodeServiceResponse(std::span<const std::uint8_t> payload,
                           ServiceResponse* out);

}  // namespace geer::net

#endif  // GEER_NET_CODEC_H_
