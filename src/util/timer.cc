#include "util/timer.h"

// Header-only; this translation unit exists so the target has a stable
// object for the module and to catch header self-containment regressions.
