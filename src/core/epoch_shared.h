// Epoch-keyed shared preprocessing for the construction-heavy estimators
// (EXACT's Cholesky factorization, CG's Laplacian solver, RP's sketch).
// Batch/serve workers are clones sharing this holder: when a dynamic
// epoch swap rebinds every worker, the FIRST rebind rebuilds the value
// for the new epoch and the rest adopt it — one O(n³) refactorization
// per epoch, not one per worker. The dependency set of these
// preprocessing artifacts is the whole graph, so "invalidation" here is
// total by construction; the epoch key is what makes it happen exactly
// once.

#ifndef GEER_CORE_EPOCH_SHARED_H_
#define GEER_CORE_EPOCH_SHARED_H_

#include <cstdint>
#include <memory>
#include <mutex>
#include <utility>

namespace geer {

template <typename T>
class EpochShared {
 public:
  /// Seeds the holder with the construction-time value (epoch 0).
  explicit EpochShared(std::shared_ptr<const T> initial)
      : value_(std::move(initial)) {}

  /// The value for `epoch`: rebuilt via `build()` on the first call with
  /// a new epoch number, adopted by every later caller with the same one.
  template <typename BuildFn>
  std::shared_ptr<const T> GetOrBuild(std::uint64_t epoch, BuildFn&& build) {
    std::lock_guard<std::mutex> lock(mu_);
    if (epoch != epoch_) {
      value_ = build();
      epoch_ = epoch;
    }
    return value_;
  }

  /// Like GetOrBuild, but the builder receives the PREVIOUS epoch's value
  /// (possibly null) — the incremental-maintenance hook: the first
  /// rebinder of an epoch derives the new value from the old one (rank-k
  /// factor update, warm-started Lanczos) instead of from scratch, and
  /// every other clone adopts the result.
  template <typename UpdateFn>
  std::shared_ptr<const T> GetOrUpdate(std::uint64_t epoch,
                                       UpdateFn&& update) {
    std::lock_guard<std::mutex> lock(mu_);
    if (epoch != epoch_) {
      value_ = update(std::as_const(value_));
      epoch_ = epoch;
    }
    return value_;
  }

 private:
  std::mutex mu_;
  std::uint64_t epoch_ = 0;
  std::shared_ptr<const T> value_;
};

}  // namespace geer

#endif  // GEER_CORE_EPOCH_SHARED_H_
